# Empty compiler generated dependencies file for stats_service.
# This may be replaced when dependencies are built.
