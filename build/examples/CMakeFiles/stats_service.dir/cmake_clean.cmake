file(REMOVE_RECURSE
  "CMakeFiles/stats_service.dir/stats_service.cpp.o"
  "CMakeFiles/stats_service.dir/stats_service.cpp.o.d"
  "stats_service"
  "stats_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
