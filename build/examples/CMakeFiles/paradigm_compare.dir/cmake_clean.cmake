file(REMOVE_RECURSE
  "CMakeFiles/paradigm_compare.dir/paradigm_compare.cpp.o"
  "CMakeFiles/paradigm_compare.dir/paradigm_compare.cpp.o.d"
  "paradigm_compare"
  "paradigm_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradigm_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
