# Empty dependencies file for paradigm_compare.
# This may be replaced when dependencies are built.
