# Empty compiler generated dependencies file for adaptive_rpc.
# This may be replaced when dependencies are built.
