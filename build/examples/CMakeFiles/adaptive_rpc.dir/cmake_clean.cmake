file(REMOVE_RECURSE
  "CMakeFiles/adaptive_rpc.dir/adaptive_rpc.cpp.o"
  "CMakeFiles/adaptive_rpc.dir/adaptive_rpc.cpp.o.d"
  "adaptive_rpc"
  "adaptive_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
