file(REMOVE_RECURSE
  "CMakeFiles/sim_signal_test.dir/signal_test.cc.o"
  "CMakeFiles/sim_signal_test.dir/signal_test.cc.o.d"
  "sim_signal_test"
  "sim_signal_test.pdb"
  "sim_signal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_signal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
