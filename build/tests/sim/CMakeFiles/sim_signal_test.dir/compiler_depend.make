# Empty compiler generated dependencies file for sim_signal_test.
# This may be replaced when dependencies are built.
