# Empty dependencies file for kv_memcached_test.
# This may be replaced when dependencies are built.
