file(REMOVE_RECURSE
  "CMakeFiles/kv_memcached_test.dir/memcached_test.cc.o"
  "CMakeFiles/kv_memcached_test.dir/memcached_test.cc.o.d"
  "kv_memcached_test"
  "kv_memcached_test.pdb"
  "kv_memcached_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_memcached_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
