file(REMOVE_RECURSE
  "CMakeFiles/kv_lease_cache_test.dir/lease_cache_test.cc.o"
  "CMakeFiles/kv_lease_cache_test.dir/lease_cache_test.cc.o.d"
  "kv_lease_cache_test"
  "kv_lease_cache_test.pdb"
  "kv_lease_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_lease_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
