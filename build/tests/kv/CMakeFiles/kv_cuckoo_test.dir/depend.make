# Empty dependencies file for kv_cuckoo_test.
# This may be replaced when dependencies are built.
