file(REMOVE_RECURSE
  "CMakeFiles/kv_cuckoo_test.dir/cuckoo_test.cc.o"
  "CMakeFiles/kv_cuckoo_test.dir/cuckoo_test.cc.o.d"
  "kv_cuckoo_test"
  "kv_cuckoo_test.pdb"
  "kv_cuckoo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_cuckoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
