file(REMOVE_RECURSE
  "CMakeFiles/kv_crc64_test.dir/crc64_test.cc.o"
  "CMakeFiles/kv_crc64_test.dir/crc64_test.cc.o.d"
  "kv_crc64_test"
  "kv_crc64_test.pdb"
  "kv_crc64_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_crc64_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
