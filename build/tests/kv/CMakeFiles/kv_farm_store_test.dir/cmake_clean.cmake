file(REMOVE_RECURSE
  "CMakeFiles/kv_farm_store_test.dir/farm_store_test.cc.o"
  "CMakeFiles/kv_farm_store_test.dir/farm_store_test.cc.o.d"
  "kv_farm_store_test"
  "kv_farm_store_test.pdb"
  "kv_farm_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_farm_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
