file(REMOVE_RECURSE
  "CMakeFiles/kv_bucket_table_test.dir/bucket_table_test.cc.o"
  "CMakeFiles/kv_bucket_table_test.dir/bucket_table_test.cc.o.d"
  "kv_bucket_table_test"
  "kv_bucket_table_test.pdb"
  "kv_bucket_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_bucket_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
