file(REMOVE_RECURSE
  "CMakeFiles/kv_jakiro_test.dir/jakiro_test.cc.o"
  "CMakeFiles/kv_jakiro_test.dir/jakiro_test.cc.o.d"
  "kv_jakiro_test"
  "kv_jakiro_test.pdb"
  "kv_jakiro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_jakiro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
