file(REMOVE_RECURSE
  "CMakeFiles/kv_pilaf_test.dir/pilaf_test.cc.o"
  "CMakeFiles/kv_pilaf_test.dir/pilaf_test.cc.o.d"
  "kv_pilaf_test"
  "kv_pilaf_test.pdb"
  "kv_pilaf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_pilaf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
