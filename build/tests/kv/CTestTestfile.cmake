# CMake generated Testfile for 
# Source directory: /root/repo/tests/kv
# Build directory: /root/repo/build/tests/kv
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/kv/kv_crc64_test[1]_include.cmake")
include("/root/repo/build/tests/kv/kv_bucket_table_test[1]_include.cmake")
include("/root/repo/build/tests/kv/kv_cuckoo_test[1]_include.cmake")
include("/root/repo/build/tests/kv/kv_jakiro_test[1]_include.cmake")
include("/root/repo/build/tests/kv/kv_pilaf_test[1]_include.cmake")
include("/root/repo/build/tests/kv/kv_memcached_test[1]_include.cmake")
include("/root/repo/build/tests/kv/kv_farm_store_test[1]_include.cmake")
include("/root/repo/build/tests/kv/kv_lease_cache_test[1]_include.cmake")
