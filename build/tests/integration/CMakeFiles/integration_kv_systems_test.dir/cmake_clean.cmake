file(REMOVE_RECURSE
  "CMakeFiles/integration_kv_systems_test.dir/kv_systems_test.cc.o"
  "CMakeFiles/integration_kv_systems_test.dir/kv_systems_test.cc.o.d"
  "integration_kv_systems_test"
  "integration_kv_systems_test.pdb"
  "integration_kv_systems_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_kv_systems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
