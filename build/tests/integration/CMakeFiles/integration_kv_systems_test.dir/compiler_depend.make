# Empty compiler generated dependencies file for integration_kv_systems_test.
# This may be replaced when dependencies are built.
