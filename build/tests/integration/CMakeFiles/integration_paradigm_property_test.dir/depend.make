# Empty dependencies file for integration_paradigm_property_test.
# This may be replaced when dependencies are built.
