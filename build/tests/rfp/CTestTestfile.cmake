# CMake generated Testfile for 
# Source directory: /root/repo/tests/rfp
# Build directory: /root/repo/build/tests/rfp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rfp/rfp_wire_test[1]_include.cmake")
include("/root/repo/build/tests/rfp/rfp_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/rfp/rfp_channel_test[1]_include.cmake")
include("/root/repo/build/tests/rfp/rfp_rpc_test[1]_include.cmake")
include("/root/repo/build/tests/rfp/rfp_params_test[1]_include.cmake")
include("/root/repo/build/tests/rfp/rfp_legacy_api_test[1]_include.cmake")
include("/root/repo/build/tests/rfp/rfp_ud_rpc_test[1]_include.cmake")
