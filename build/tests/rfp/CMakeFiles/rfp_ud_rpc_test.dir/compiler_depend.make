# Empty compiler generated dependencies file for rfp_ud_rpc_test.
# This may be replaced when dependencies are built.
