file(REMOVE_RECURSE
  "CMakeFiles/rfp_ud_rpc_test.dir/ud_rpc_test.cc.o"
  "CMakeFiles/rfp_ud_rpc_test.dir/ud_rpc_test.cc.o.d"
  "rfp_ud_rpc_test"
  "rfp_ud_rpc_test.pdb"
  "rfp_ud_rpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfp_ud_rpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
