# Empty dependencies file for rfp_rpc_test.
# This may be replaced when dependencies are built.
