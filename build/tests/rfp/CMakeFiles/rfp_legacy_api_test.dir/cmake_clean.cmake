file(REMOVE_RECURSE
  "CMakeFiles/rfp_legacy_api_test.dir/legacy_api_test.cc.o"
  "CMakeFiles/rfp_legacy_api_test.dir/legacy_api_test.cc.o.d"
  "rfp_legacy_api_test"
  "rfp_legacy_api_test.pdb"
  "rfp_legacy_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfp_legacy_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
