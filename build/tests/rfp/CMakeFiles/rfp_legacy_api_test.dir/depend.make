# Empty dependencies file for rfp_legacy_api_test.
# This may be replaced when dependencies are built.
