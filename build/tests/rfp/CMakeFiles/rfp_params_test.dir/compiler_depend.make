# Empty compiler generated dependencies file for rfp_params_test.
# This may be replaced when dependencies are built.
