file(REMOVE_RECURSE
  "CMakeFiles/rfp_params_test.dir/params_test.cc.o"
  "CMakeFiles/rfp_params_test.dir/params_test.cc.o.d"
  "rfp_params_test"
  "rfp_params_test.pdb"
  "rfp_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfp_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
