file(REMOVE_RECURSE
  "CMakeFiles/rfp_buffer_test.dir/buffer_test.cc.o"
  "CMakeFiles/rfp_buffer_test.dir/buffer_test.cc.o.d"
  "rfp_buffer_test"
  "rfp_buffer_test.pdb"
  "rfp_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfp_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
