# Empty dependencies file for rfp_buffer_test.
# This may be replaced when dependencies are built.
