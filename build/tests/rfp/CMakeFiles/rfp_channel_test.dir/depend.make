# Empty dependencies file for rfp_channel_test.
# This may be replaced when dependencies are built.
