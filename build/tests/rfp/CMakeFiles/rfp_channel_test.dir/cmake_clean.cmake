file(REMOVE_RECURSE
  "CMakeFiles/rfp_channel_test.dir/channel_test.cc.o"
  "CMakeFiles/rfp_channel_test.dir/channel_test.cc.o.d"
  "rfp_channel_test"
  "rfp_channel_test.pdb"
  "rfp_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfp_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
