# Empty dependencies file for rfp_wire_test.
# This may be replaced when dependencies are built.
