file(REMOVE_RECURSE
  "CMakeFiles/rfp_wire_test.dir/wire_test.cc.o"
  "CMakeFiles/rfp_wire_test.dir/wire_test.cc.o.d"
  "rfp_wire_test"
  "rfp_wire_test.pdb"
  "rfp_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfp_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
