# Empty dependencies file for workload_ycsb_test.
# This may be replaced when dependencies are built.
