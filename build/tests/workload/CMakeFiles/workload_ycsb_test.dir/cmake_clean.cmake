file(REMOVE_RECURSE
  "CMakeFiles/workload_ycsb_test.dir/ycsb_test.cc.o"
  "CMakeFiles/workload_ycsb_test.dir/ycsb_test.cc.o.d"
  "workload_ycsb_test"
  "workload_ycsb_test.pdb"
  "workload_ycsb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_ycsb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
