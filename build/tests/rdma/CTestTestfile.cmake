# CMake generated Testfile for 
# Source directory: /root/repo/tests/rdma
# Build directory: /root/repo/build/tests/rdma
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rdma/rdma_memory_test[1]_include.cmake")
include("/root/repo/build/tests/rdma/rdma_nic_test[1]_include.cmake")
include("/root/repo/build/tests/rdma/rdma_qp_test[1]_include.cmake")
include("/root/repo/build/tests/rdma/rdma_fabric_test[1]_include.cmake")
include("/root/repo/build/tests/rdma/rdma_calibration_test[1]_include.cmake")
include("/root/repo/build/tests/rdma/rdma_stress_test[1]_include.cmake")
