# Empty compiler generated dependencies file for rdma_fabric_test.
# This may be replaced when dependencies are built.
