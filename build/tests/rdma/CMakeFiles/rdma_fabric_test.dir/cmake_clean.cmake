file(REMOVE_RECURSE
  "CMakeFiles/rdma_fabric_test.dir/fabric_test.cc.o"
  "CMakeFiles/rdma_fabric_test.dir/fabric_test.cc.o.d"
  "rdma_fabric_test"
  "rdma_fabric_test.pdb"
  "rdma_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
