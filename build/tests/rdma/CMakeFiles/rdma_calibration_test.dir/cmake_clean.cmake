file(REMOVE_RECURSE
  "CMakeFiles/rdma_calibration_test.dir/calibration_test.cc.o"
  "CMakeFiles/rdma_calibration_test.dir/calibration_test.cc.o.d"
  "rdma_calibration_test"
  "rdma_calibration_test.pdb"
  "rdma_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
