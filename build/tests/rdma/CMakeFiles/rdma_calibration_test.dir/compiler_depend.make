# Empty compiler generated dependencies file for rdma_calibration_test.
# This may be replaced when dependencies are built.
