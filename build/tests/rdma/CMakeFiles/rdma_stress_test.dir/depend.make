# Empty dependencies file for rdma_stress_test.
# This may be replaced when dependencies are built.
