file(REMOVE_RECURSE
  "CMakeFiles/rdma_stress_test.dir/stress_test.cc.o"
  "CMakeFiles/rdma_stress_test.dir/stress_test.cc.o.d"
  "rdma_stress_test"
  "rdma_stress_test.pdb"
  "rdma_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
