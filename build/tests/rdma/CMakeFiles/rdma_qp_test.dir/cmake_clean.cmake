file(REMOVE_RECURSE
  "CMakeFiles/rdma_qp_test.dir/qp_test.cc.o"
  "CMakeFiles/rdma_qp_test.dir/qp_test.cc.o.d"
  "rdma_qp_test"
  "rdma_qp_test.pdb"
  "rdma_qp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_qp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
