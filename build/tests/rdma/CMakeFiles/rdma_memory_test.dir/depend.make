# Empty dependencies file for rdma_memory_test.
# This may be replaced when dependencies are built.
