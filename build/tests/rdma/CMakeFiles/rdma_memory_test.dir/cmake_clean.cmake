file(REMOVE_RECURSE
  "CMakeFiles/rdma_memory_test.dir/memory_test.cc.o"
  "CMakeFiles/rdma_memory_test.dir/memory_test.cc.o.d"
  "rdma_memory_test"
  "rdma_memory_test.pdb"
  "rdma_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
