# Empty dependencies file for rdma_nic_test.
# This may be replaced when dependencies are built.
