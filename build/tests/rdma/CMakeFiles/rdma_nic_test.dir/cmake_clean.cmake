file(REMOVE_RECURSE
  "CMakeFiles/rdma_nic_test.dir/nic_test.cc.o"
  "CMakeFiles/rdma_nic_test.dir/nic_test.cc.o.d"
  "rdma_nic_test"
  "rdma_nic_test.pdb"
  "rdma_nic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_nic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
