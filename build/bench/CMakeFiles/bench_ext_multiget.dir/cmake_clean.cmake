file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multiget.dir/bench_ext_multiget.cc.o"
  "CMakeFiles/bench_ext_multiget.dir/bench_ext_multiget.cc.o.d"
  "bench_ext_multiget"
  "bench_ext_multiget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multiget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
