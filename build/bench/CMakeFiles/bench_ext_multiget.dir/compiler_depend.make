# Empty compiler generated dependencies file for bench_ext_multiget.
# This may be replaced when dependencies are built.
