
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig17_value_size.cc" "bench/CMakeFiles/bench_fig17_value_size.dir/bench_fig17_value_size.cc.o" "gcc" "bench/CMakeFiles/bench_fig17_value_size.dir/bench_fig17_value_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/rfp_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/rfp/CMakeFiles/rfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/rfp_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rfp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rfp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
