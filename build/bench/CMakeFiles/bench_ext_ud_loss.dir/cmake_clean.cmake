file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ud_loss.dir/bench_ext_ud_loss.cc.o"
  "CMakeFiles/bench_ext_ud_loss.dir/bench_ext_ud_loss.cc.o.d"
  "bench_ext_ud_loss"
  "bench_ext_ud_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ud_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
