# Empty dependencies file for bench_ext_ud_loss.
# This may be replaced when dependencies are built.
