file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_batching.dir/bench_ext_batching.cc.o"
  "CMakeFiles/bench_ext_batching.dir/bench_ext_batching.cc.o.d"
  "bench_ext_batching"
  "bench_ext_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
