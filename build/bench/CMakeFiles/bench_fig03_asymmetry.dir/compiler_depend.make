# Empty compiler generated dependencies file for bench_fig03_asymmetry.
# This may be replaced when dependencies are built.
