file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_asymmetry.dir/bench_fig03_asymmetry.cc.o"
  "CMakeFiles/bench_fig03_asymmetry.dir/bench_fig03_asymmetry.cc.o.d"
  "bench_fig03_asymmetry"
  "bench_fig03_asymmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_asymmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
