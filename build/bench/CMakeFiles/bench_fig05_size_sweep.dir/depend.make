# Empty dependencies file for bench_fig05_size_sweep.
# This may be replaced when dependencies are built.
