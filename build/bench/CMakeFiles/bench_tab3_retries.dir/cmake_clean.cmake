file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_retries.dir/bench_tab3_retries.cc.o"
  "CMakeFiles/bench_tab3_retries.dir/bench_tab3_retries.cc.o.d"
  "bench_tab3_retries"
  "bench_tab3_retries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_retries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
