# Empty dependencies file for bench_fig18_fetch_size.
# This may be replaced when dependencies are built.
