file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_vs_pilaf.dir/bench_fig11_vs_pilaf.cc.o"
  "CMakeFiles/bench_fig11_vs_pilaf.dir/bench_fig11_vs_pilaf.cc.o.d"
  "bench_fig11_vs_pilaf"
  "bench_fig11_vs_pilaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vs_pilaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
