# Empty dependencies file for bench_ext_load_latency.
# This may be replaced when dependencies are built.
