file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_load_latency.dir/bench_ext_load_latency.cc.o"
  "CMakeFiles/bench_ext_load_latency.dir/bench_ext_load_latency.cc.o.d"
  "bench_ext_load_latency"
  "bench_ext_load_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_load_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
