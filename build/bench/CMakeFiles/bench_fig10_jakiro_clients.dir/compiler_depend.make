# Empty compiler generated dependencies file for bench_fig10_jakiro_clients.
# This may be replaced when dependencies are built.
