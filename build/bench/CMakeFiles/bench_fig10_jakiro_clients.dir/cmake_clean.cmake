file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_jakiro_clients.dir/bench_fig10_jakiro_clients.cc.o"
  "CMakeFiles/bench_fig10_jakiro_clients.dir/bench_fig10_jakiro_clients.cc.o.d"
  "bench_fig10_jakiro_clients"
  "bench_fig10_jakiro_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_jakiro_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
