# Empty compiler generated dependencies file for bench_fig16_get_ratio.
# This may be replaced when dependencies are built.
