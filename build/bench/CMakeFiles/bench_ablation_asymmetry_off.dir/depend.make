# Empty dependencies file for bench_ablation_asymmetry_off.
# This may be replaced when dependencies are built.
