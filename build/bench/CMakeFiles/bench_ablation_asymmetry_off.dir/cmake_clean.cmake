file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_asymmetry_off.dir/bench_ablation_asymmetry_off.cc.o"
  "CMakeFiles/bench_ablation_asymmetry_off.dir/bench_ablation_asymmetry_off.cc.o.d"
  "bench_ablation_asymmetry_off"
  "bench_ablation_asymmetry_off.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_asymmetry_off.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
