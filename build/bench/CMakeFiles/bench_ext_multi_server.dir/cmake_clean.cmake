file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multi_server.dir/bench_ext_multi_server.cc.o"
  "CMakeFiles/bench_ext_multi_server.dir/bench_ext_multi_server.cc.o.d"
  "bench_ext_multi_server"
  "bench_ext_multi_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multi_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
