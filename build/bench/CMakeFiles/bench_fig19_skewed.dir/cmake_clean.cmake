file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_skewed.dir/bench_fig19_skewed.cc.o"
  "CMakeFiles/bench_fig19_skewed.dir/bench_fig19_skewed.cc.o.d"
  "bench_fig19_skewed"
  "bench_fig19_skewed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_skewed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
