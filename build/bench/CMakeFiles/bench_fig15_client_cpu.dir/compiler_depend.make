# Empty compiler generated dependencies file for bench_fig15_client_cpu.
# This may be replaced when dependencies are built.
