file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_client_cpu.dir/bench_fig15_client_cpu.cc.o"
  "CMakeFiles/bench_fig15_client_cpu.dir/bench_fig15_client_cpu.cc.o.d"
  "bench_fig15_client_cpu"
  "bench_fig15_client_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_client_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
