file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_fetch_vs_reply.dir/bench_fig09_fetch_vs_reply.cc.o"
  "CMakeFiles/bench_fig09_fetch_vs_reply.dir/bench_fig09_fetch_vs_reply.cc.o.d"
  "bench_fig09_fetch_vs_reply"
  "bench_fig09_fetch_vs_reply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_fetch_vs_reply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
