# Empty compiler generated dependencies file for bench_fig09_fetch_vs_reply.
# This may be replaced when dependencies are built.
