
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rfp/buffer.cc" "src/rfp/CMakeFiles/rfp_core.dir/buffer.cc.o" "gcc" "src/rfp/CMakeFiles/rfp_core.dir/buffer.cc.o.d"
  "/root/repo/src/rfp/channel.cc" "src/rfp/CMakeFiles/rfp_core.dir/channel.cc.o" "gcc" "src/rfp/CMakeFiles/rfp_core.dir/channel.cc.o.d"
  "/root/repo/src/rfp/params.cc" "src/rfp/CMakeFiles/rfp_core.dir/params.cc.o" "gcc" "src/rfp/CMakeFiles/rfp_core.dir/params.cc.o.d"
  "/root/repo/src/rfp/rpc.cc" "src/rfp/CMakeFiles/rfp_core.dir/rpc.cc.o" "gcc" "src/rfp/CMakeFiles/rfp_core.dir/rpc.cc.o.d"
  "/root/repo/src/rfp/ud_rpc.cc" "src/rfp/CMakeFiles/rfp_core.dir/ud_rpc.cc.o" "gcc" "src/rfp/CMakeFiles/rfp_core.dir/ud_rpc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdma/CMakeFiles/rfp_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rfp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
