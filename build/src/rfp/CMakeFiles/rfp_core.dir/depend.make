# Empty dependencies file for rfp_core.
# This may be replaced when dependencies are built.
