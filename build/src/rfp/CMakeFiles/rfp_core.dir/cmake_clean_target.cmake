file(REMOVE_RECURSE
  "librfp_core.a"
)
