file(REMOVE_RECURSE
  "CMakeFiles/rfp_core.dir/buffer.cc.o"
  "CMakeFiles/rfp_core.dir/buffer.cc.o.d"
  "CMakeFiles/rfp_core.dir/channel.cc.o"
  "CMakeFiles/rfp_core.dir/channel.cc.o.d"
  "CMakeFiles/rfp_core.dir/params.cc.o"
  "CMakeFiles/rfp_core.dir/params.cc.o.d"
  "CMakeFiles/rfp_core.dir/rpc.cc.o"
  "CMakeFiles/rfp_core.dir/rpc.cc.o.d"
  "CMakeFiles/rfp_core.dir/ud_rpc.cc.o"
  "CMakeFiles/rfp_core.dir/ud_rpc.cc.o.d"
  "librfp_core.a"
  "librfp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
