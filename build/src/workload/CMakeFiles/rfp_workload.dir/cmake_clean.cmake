file(REMOVE_RECURSE
  "CMakeFiles/rfp_workload.dir/ycsb.cc.o"
  "CMakeFiles/rfp_workload.dir/ycsb.cc.o.d"
  "librfp_workload.a"
  "librfp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
