# Empty compiler generated dependencies file for rfp_workload.
# This may be replaced when dependencies are built.
