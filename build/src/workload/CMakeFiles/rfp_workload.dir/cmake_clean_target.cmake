file(REMOVE_RECURSE
  "librfp_workload.a"
)
