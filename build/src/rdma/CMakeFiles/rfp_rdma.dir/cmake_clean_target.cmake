file(REMOVE_RECURSE
  "librfp_rdma.a"
)
