# Empty compiler generated dependencies file for rfp_rdma.
# This may be replaced when dependencies are built.
