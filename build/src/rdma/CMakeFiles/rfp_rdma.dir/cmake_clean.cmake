file(REMOVE_RECURSE
  "CMakeFiles/rfp_rdma.dir/fabric.cc.o"
  "CMakeFiles/rfp_rdma.dir/fabric.cc.o.d"
  "CMakeFiles/rfp_rdma.dir/nic.cc.o"
  "CMakeFiles/rfp_rdma.dir/nic.cc.o.d"
  "CMakeFiles/rfp_rdma.dir/node.cc.o"
  "CMakeFiles/rfp_rdma.dir/node.cc.o.d"
  "CMakeFiles/rfp_rdma.dir/qp.cc.o"
  "CMakeFiles/rfp_rdma.dir/qp.cc.o.d"
  "librfp_rdma.a"
  "librfp_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfp_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
