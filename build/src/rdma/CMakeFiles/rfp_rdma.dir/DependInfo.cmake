
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdma/fabric.cc" "src/rdma/CMakeFiles/rfp_rdma.dir/fabric.cc.o" "gcc" "src/rdma/CMakeFiles/rfp_rdma.dir/fabric.cc.o.d"
  "/root/repo/src/rdma/nic.cc" "src/rdma/CMakeFiles/rfp_rdma.dir/nic.cc.o" "gcc" "src/rdma/CMakeFiles/rfp_rdma.dir/nic.cc.o.d"
  "/root/repo/src/rdma/node.cc" "src/rdma/CMakeFiles/rfp_rdma.dir/node.cc.o" "gcc" "src/rdma/CMakeFiles/rfp_rdma.dir/node.cc.o.d"
  "/root/repo/src/rdma/qp.cc" "src/rdma/CMakeFiles/rfp_rdma.dir/qp.cc.o" "gcc" "src/rdma/CMakeFiles/rfp_rdma.dir/qp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rfp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
