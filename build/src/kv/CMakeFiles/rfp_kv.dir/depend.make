# Empty dependencies file for rfp_kv.
# This may be replaced when dependencies are built.
