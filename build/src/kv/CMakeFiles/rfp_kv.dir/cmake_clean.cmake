file(REMOVE_RECURSE
  "CMakeFiles/rfp_kv.dir/bucket_table.cc.o"
  "CMakeFiles/rfp_kv.dir/bucket_table.cc.o.d"
  "CMakeFiles/rfp_kv.dir/crc64.cc.o"
  "CMakeFiles/rfp_kv.dir/crc64.cc.o.d"
  "CMakeFiles/rfp_kv.dir/cuckoo.cc.o"
  "CMakeFiles/rfp_kv.dir/cuckoo.cc.o.d"
  "CMakeFiles/rfp_kv.dir/farm_store.cc.o"
  "CMakeFiles/rfp_kv.dir/farm_store.cc.o.d"
  "CMakeFiles/rfp_kv.dir/jakiro.cc.o"
  "CMakeFiles/rfp_kv.dir/jakiro.cc.o.d"
  "CMakeFiles/rfp_kv.dir/lease_cache.cc.o"
  "CMakeFiles/rfp_kv.dir/lease_cache.cc.o.d"
  "CMakeFiles/rfp_kv.dir/memcached_store.cc.o"
  "CMakeFiles/rfp_kv.dir/memcached_store.cc.o.d"
  "CMakeFiles/rfp_kv.dir/pilaf_store.cc.o"
  "CMakeFiles/rfp_kv.dir/pilaf_store.cc.o.d"
  "librfp_kv.a"
  "librfp_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfp_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
