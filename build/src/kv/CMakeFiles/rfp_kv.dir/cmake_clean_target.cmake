file(REMOVE_RECURSE
  "librfp_kv.a"
)
