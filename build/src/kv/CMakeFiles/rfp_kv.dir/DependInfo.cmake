
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/bucket_table.cc" "src/kv/CMakeFiles/rfp_kv.dir/bucket_table.cc.o" "gcc" "src/kv/CMakeFiles/rfp_kv.dir/bucket_table.cc.o.d"
  "/root/repo/src/kv/crc64.cc" "src/kv/CMakeFiles/rfp_kv.dir/crc64.cc.o" "gcc" "src/kv/CMakeFiles/rfp_kv.dir/crc64.cc.o.d"
  "/root/repo/src/kv/cuckoo.cc" "src/kv/CMakeFiles/rfp_kv.dir/cuckoo.cc.o" "gcc" "src/kv/CMakeFiles/rfp_kv.dir/cuckoo.cc.o.d"
  "/root/repo/src/kv/farm_store.cc" "src/kv/CMakeFiles/rfp_kv.dir/farm_store.cc.o" "gcc" "src/kv/CMakeFiles/rfp_kv.dir/farm_store.cc.o.d"
  "/root/repo/src/kv/jakiro.cc" "src/kv/CMakeFiles/rfp_kv.dir/jakiro.cc.o" "gcc" "src/kv/CMakeFiles/rfp_kv.dir/jakiro.cc.o.d"
  "/root/repo/src/kv/lease_cache.cc" "src/kv/CMakeFiles/rfp_kv.dir/lease_cache.cc.o" "gcc" "src/kv/CMakeFiles/rfp_kv.dir/lease_cache.cc.o.d"
  "/root/repo/src/kv/memcached_store.cc" "src/kv/CMakeFiles/rfp_kv.dir/memcached_store.cc.o" "gcc" "src/kv/CMakeFiles/rfp_kv.dir/memcached_store.cc.o.d"
  "/root/repo/src/kv/pilaf_store.cc" "src/kv/CMakeFiles/rfp_kv.dir/pilaf_store.cc.o" "gcc" "src/kv/CMakeFiles/rfp_kv.dir/pilaf_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rfp/CMakeFiles/rfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rfp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/rfp_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rfp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
