# Empty compiler generated dependencies file for rfp_sim.
# This may be replaced when dependencies are built.
