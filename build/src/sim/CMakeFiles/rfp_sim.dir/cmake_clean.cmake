file(REMOVE_RECURSE
  "CMakeFiles/rfp_sim.dir/engine.cc.o"
  "CMakeFiles/rfp_sim.dir/engine.cc.o.d"
  "CMakeFiles/rfp_sim.dir/random.cc.o"
  "CMakeFiles/rfp_sim.dir/random.cc.o.d"
  "CMakeFiles/rfp_sim.dir/resource.cc.o"
  "CMakeFiles/rfp_sim.dir/resource.cc.o.d"
  "CMakeFiles/rfp_sim.dir/stats.cc.o"
  "CMakeFiles/rfp_sim.dir/stats.cc.o.d"
  "librfp_sim.a"
  "librfp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
