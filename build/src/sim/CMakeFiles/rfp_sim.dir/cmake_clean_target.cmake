file(REMOVE_RECURSE
  "librfp_sim.a"
)
