#include "src/kv/lease_cache.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"
#include "src/workload/ycsb.h"

namespace kv {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

class LeaseCacheTest : public ::testing::Test {
 protected:
  LeaseCacheTest() {
    server_ = std::make_unique<PilafServer>(fabric_, *server_node_, PilafConfig{});
    client_ = std::make_unique<PilafClient>(fabric_, *client_node_, *server_, 0);
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node* server_node_{&fabric_.AddNode("server")};
  rdma::Node* client_node_{&fabric_.AddNode("client")};
  std::unique_ptr<PilafServer> server_;
  std::unique_ptr<PilafClient> client_;
};

TEST_F(LeaseCacheTest, HitWithinLeaseCostsNoNetworkOps) {
  ASSERT_TRUE(server_->Preload(Bytes("key"), Bytes("cached!!")));
  LeaseCacheConfig config;
  config.lease_ns = sim::Micros(100);
  LeaseCachedClient cached(engine_, client_.get(), config);
  server_->Start();

  engine_.Spawn([](LeaseCachedClient* c, PilafClient* base) -> sim::Task<void> {
    std::vector<std::byte> out(256);
    auto first = co_await c->Get(Bytes("key"), out);
    EXPECT_TRUE(first.has_value());
    const uint64_t reads_after_first = base->stats().slot_reads + base->stats().extent_reads;
    for (int i = 0; i < 10; ++i) {
      auto hit = co_await c->Get(Bytes("key"), out);
      EXPECT_TRUE(hit.has_value());
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), *hit), "cached!!");
    }
    // The 10 lease hits issued zero additional one-sided READs.
    EXPECT_EQ(base->stats().slot_reads + base->stats().extent_reads, reads_after_first);
  }(&cached, client_.get()));
  engine_.RunUntil(sim::Millis(2));
  server_->Stop();
  EXPECT_EQ(cached.stats().cache_hits, 10u);
  EXPECT_EQ(cached.stats().cache_misses, 1u);
}

TEST_F(LeaseCacheTest, ExpiredLeaseRefetchesAndSeesNewValue) {
  ASSERT_TRUE(server_->Preload(Bytes("key"), Bytes("old")));
  LeaseCacheConfig config;
  config.lease_ns = sim::Micros(50);
  LeaseCachedClient cached(engine_, client_.get(), config);
  rdma::Node* writer_node = &fabric_.AddNode("writer");
  PilafClient writer(fabric_, *writer_node, *server_, 1);
  server_->Start();

  engine_.Spawn([](sim::Engine& eng, LeaseCachedClient* c, PilafClient* w) -> sim::Task<void> {
    std::vector<std::byte> out(256);
    auto v1 = co_await c->Get(Bytes("key"), out);  // caches "old"
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), *v1), "old");
    co_await w->Put(Bytes("key"), Bytes("new"));
    // Still within the lease: the cache may (and does) serve the old value —
    // the bounded staleness this design trades for.
    auto stale = co_await c->Get(Bytes("key"), out);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), *stale), "old");
    // Wait out the lease: the next read refetches and sees the new value.
    co_await eng.Sleep(sim::Micros(60));
    auto fresh = co_await c->Get(Bytes("key"), out);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), *fresh), "new");
  }(engine_, &cached, &writer));
  engine_.RunUntil(sim::Millis(2));
  server_->Stop();
  EXPECT_EQ(cached.stats().lease_expired, 1u);
}

TEST_F(LeaseCacheTest, OwnWritesAreImmediatelyVisible) {
  LeaseCacheConfig config;
  config.lease_ns = sim::Millis(10);  // long lease: only write-through saves us
  LeaseCachedClient cached(engine_, client_.get(), config);
  server_->Start();
  engine_.Spawn([](LeaseCachedClient* c) -> sim::Task<void> {
    std::vector<std::byte> out(256);
    EXPECT_TRUE(co_await c->Put(Bytes("k"), Bytes("v1")));
    auto r1 = co_await c->Get(Bytes("k"), out);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), *r1), "v1");
    EXPECT_TRUE(co_await c->Put(Bytes("k"), Bytes("v2")));
    auto r2 = co_await c->Get(Bytes("k"), out);
    // Read-your-writes despite the live lease on "v1".
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), *r2), "v2");
  }(&cached));
  engine_.RunUntil(sim::Millis(2));
  server_->Stop();
}

TEST_F(LeaseCacheTest, LruEvictionBoundsTheCache) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(server_->Preload(Bytes("key" + std::to_string(i)), Bytes("v")));
  }
  LeaseCacheConfig config;
  config.capacity = 8;
  config.lease_ns = sim::Millis(10);
  LeaseCachedClient cached(engine_, client_.get(), config);
  server_->Start();
  engine_.Spawn([](LeaseCachedClient* c) -> sim::Task<void> {
    std::vector<std::byte> out(256);
    for (int i = 0; i < 20; ++i) {
      co_await c->Get(Bytes("key" + std::to_string(i)), out);
    }
  }(&cached));
  engine_.RunUntil(sim::Millis(5));
  server_->Stop();
  EXPECT_EQ(cached.size(), 8u);
  EXPECT_EQ(cached.stats().evictions, 12u);
}

TEST_F(LeaseCacheTest, StalenessNeverExceedsTheLease) {
  // Property: whenever the cached reader observes version v while the
  // writer has already committed v' > v, the commit of the NEXT version
  // the reader eventually sees lies within lease_ns of the stale read.
  ASSERT_TRUE(server_->Preload(Bytes("hot"), Bytes(std::string(16, '\0'))));
  LeaseCacheConfig config;
  config.lease_ns = sim::Micros(80);
  LeaseCachedClient cached(engine_, client_.get(), config);
  rdma::Node* writer_node = &fabric_.AddNode("writer");
  PilafClient writer(fabric_, *writer_node, *server_, 1);
  server_->Start();

  // Writer bumps a version counter value every ~20 us.
  auto commit_times = std::make_shared<std::vector<sim::Time>>();
  commit_times->push_back(0);
  engine_.Spawn([](sim::Engine& eng, PilafClient* w,
                   std::shared_ptr<std::vector<sim::Time>> commits) -> sim::Task<void> {
    std::vector<std::byte> value(16);
    for (uint64_t version = 1; version <= 100; ++version) {
      std::memcpy(value.data(), &version, sizeof(version));
      co_await w->Put(Bytes("hot"), value);
      commits->push_back(eng.now());
      co_await eng.Sleep(sim::Micros(20));
    }
  }(engine_, &writer, commit_times));

  uint64_t violations = 0;
  engine_.Spawn([](sim::Engine& eng, LeaseCachedClient* c,
                   std::shared_ptr<std::vector<sim::Time>> commits,
                   uint64_t* bad) -> sim::Task<void> {
    std::vector<std::byte> out(256);
    while (eng.now() < sim::Millis(2)) {
      auto size = co_await c->Get(Bytes("hot"), out);
      if (size.has_value() && *size >= 8) {
        uint64_t version = 0;
        std::memcpy(&version, out.data(), sizeof(version));
        // The next version's commit must not be older than lease_ns: that
        // would mean we served data staler than the lease allows.
        if (version + 1 < commits->size()) {
          const sim::Time next_commit = (*commits)[static_cast<size_t>(version + 1)];
          if (eng.now() - next_commit > sim::Micros(80) + sim::Micros(5)) {
            ++*bad;
          }
        }
      }
      co_await eng.Sleep(sim::Micros(7));
    }
  }(engine_, &cached, commit_times, &violations));

  engine_.RunUntil(sim::Millis(2));
  server_->Stop();
  EXPECT_EQ(violations, 0u);
  EXPECT_GT(cached.stats().cache_hits, 0u);
}

}  // namespace
}  // namespace kv
