#include "src/kv/jakiro.h"

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/explore/history.h"
#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"
#include "src/workload/ycsb.h"

namespace kv {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

class JakiroTest : public ::testing::Test {
 protected:
  JakiroServer* MakeServer(JakiroConfig config = {}) {
    server_ = std::make_unique<JakiroServer>(fabric_, *server_node_, config);
    return server_.get();
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node* server_node_{&fabric_.AddNode("server")};
  rdma::Node* client_node_{&fabric_.AddNode("client")};
  std::unique_ptr<JakiroServer> server_;
};

TEST_F(JakiroTest, PutGetDeleteRoundTrip) {
  JakiroServer* server = MakeServer();
  JakiroClient client(*server, *client_node_);
  server->Start();

  bool done = false;
  engine_.Spawn([](JakiroClient* c, bool* out) -> sim::Task<void> {
    std::vector<std::byte> value(8192);
    EXPECT_TRUE(co_await c->Put(Bytes("hello"), Bytes("world")));
    auto got = co_await c->Get(Bytes("hello"), value);
    EXPECT_TRUE(got.has_value());
    EXPECT_EQ(*got, 5u);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(value.data()), *got), "world");
    EXPECT_TRUE(co_await c->Delete(Bytes("hello")));
    EXPECT_FALSE((co_await c->Get(Bytes("hello"), value)).has_value());
    EXPECT_FALSE(co_await c->Delete(Bytes("hello")));
    *out = true;
  }(&client, &done));
  engine_.RunUntil(sim::Millis(10));
  server->Stop();
  EXPECT_TRUE(done);
}

TEST_F(JakiroTest, KeysRouteToOwnerPartitionsErew) {
  JakiroConfig config;
  config.server_threads = 4;
  JakiroServer* server = MakeServer(config);
  JakiroClient client(*server, *client_node_);
  server->Start();

  const int n = 200;
  engine_.Spawn([](JakiroClient* c, int count) -> sim::Task<void> {
    for (int i = 0; i < count; ++i) {
      EXPECT_TRUE(co_await c->Put(Bytes("key" + std::to_string(i)), Bytes("v")));
    }
  }(&client, n));
  engine_.RunUntil(sim::Millis(50));
  server->Stop();

  // Every key lives exactly in its owner's partition and nowhere else.
  size_t total = 0;
  for (int t = 0; t < 4; ++t) {
    total += server->partition(t).size();
    EXPECT_GT(server->partition(t).size(), 0u) << "partition " << t << " unused";
  }
  EXPECT_EQ(total, static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto key = Bytes("key" + std::to_string(i));
    const int owner = server->OwnerThread(key);
    for (int t = 0; t < 4; ++t) {
      EXPECT_EQ(server->partition(t).Get(key).has_value(), t == owner);
    }
  }
}

TEST_F(JakiroTest, WorkloadValuesVerifyEndToEnd) {
  JakiroServer* server = MakeServer();
  JakiroClient client(*server, *client_node_);
  server->Start();

  int verified = 0;
  engine_.Spawn([](JakiroClient* c, int* out) -> sim::Task<void> {
    std::vector<std::byte> key(16);
    std::vector<std::byte> value(1024);
    std::vector<std::byte> got(8192);
    for (uint64_t id = 0; id < 50; ++id) {
      workload::MakeKey(id, key);
      workload::FillValue(id, std::span(value.data(), 100 + id));
      EXPECT_TRUE(co_await c->Put(key, std::span<const std::byte>(value.data(), 100 + id)));
    }
    for (uint64_t id = 0; id < 50; ++id) {
      workload::MakeKey(id, key);
      auto size = co_await c->Get(key, got);
      EXPECT_TRUE(size.has_value());
      if (size.has_value()) {
        EXPECT_EQ(*size, 100 + id);
        EXPECT_TRUE(workload::CheckValue(id, std::span<const std::byte>(got.data(), *size)));
        ++*out;
      }
    }
  }(&client, &verified));
  engine_.RunUntil(sim::Millis(50));
  server->Stop();
  EXPECT_EQ(verified, 50);
}

TEST_F(JakiroTest, ServerReplyVariantUsesOutboundPushes) {
  JakiroServer* server = MakeServer(JakiroConfig::Build().ServerReply());
  JakiroClient client(*server, *client_node_);
  server->Start();

  engine_.Spawn([](JakiroClient* c) -> sim::Task<void> {
    std::vector<std::byte> value(1024);
    for (int i = 0; i < 10; ++i) {
      co_await c->Put(Bytes("k" + std::to_string(i)), Bytes("v"));
      co_await c->Get(Bytes("k" + std::to_string(i)), value);
    }
  }(&client));
  engine_.RunUntil(sim::Millis(20));
  server->Stop();

  const auto stats = client.MergedChannelStats();
  EXPECT_EQ(stats.fetch_reads, 0u);
  EXPECT_EQ(stats.reply_pushes, 20u);
}

TEST_F(JakiroTest, RfpVariantFetchesInstead) {
  JakiroServer* server = MakeServer();
  JakiroClient client(*server, *client_node_);
  server->Start();

  engine_.Spawn([](JakiroClient* c) -> sim::Task<void> {
    std::vector<std::byte> value(1024);
    for (int i = 0; i < 10; ++i) {
      co_await c->Put(Bytes("k" + std::to_string(i)), Bytes("v"));
      co_await c->Get(Bytes("k" + std::to_string(i)), value);
    }
  }(&client));
  engine_.RunUntil(sim::Millis(20));
  server->Stop();

  const auto stats = client.MergedChannelStats();
  EXPECT_GE(stats.fetch_reads, 20u);
  EXPECT_EQ(stats.reply_pushes, 0u);
  // Fast KV ops: ~2 round trips per call (Section 4.3).
  EXPECT_LT(stats.RoundTripsPerCall(), 2.6);
}

TEST_F(JakiroTest, MultipleClientsShareNothing) {
  JakiroConfig config;
  config.server_threads = 2;
  JakiroServer* server = MakeServer(config);
  rdma::Node* client_node2 = &fabric_.AddNode("client2");
  JakiroClient c1(*server, *client_node_);
  JakiroClient c2(*server, *client_node2);
  server->Start();

  int done = 0;
  // `prefix` must be taken by value: the coroutine outlives the Spawn() call
  // expression, so a reference parameter would dangle once the temporary
  // argument is destroyed.
  auto driver = [](JakiroClient* c, std::string prefix, int* out) -> sim::Task<void> {
    std::vector<std::byte> value(1024);
    for (int i = 0; i < 30; ++i) {
      EXPECT_TRUE(co_await c->Put(Bytes(prefix + std::to_string(i)), Bytes(prefix)));
    }
    for (int i = 0; i < 30; ++i) {
      auto got = co_await c->Get(Bytes(prefix + std::to_string(i)), value);
      EXPECT_TRUE(got.has_value());
    }
    ++*out;
  };
  engine_.Spawn(driver(&c1, "alpha", &done));
  engine_.Spawn(driver(&c2, "beta", &done));
  engine_.RunUntil(sim::Millis(50));
  server->Stop();
  EXPECT_EQ(done, 2);
}

TEST_F(JakiroTest, LruEvictionUnderOverfill) {
  JakiroConfig config;
  config.server_threads = 1;
  config.buckets_per_partition = 4;  // 32 slots total
  JakiroServer* server = MakeServer(config);
  JakiroClient client(*server, *client_node_);
  server->Start();

  engine_.Spawn([](JakiroClient* c) -> sim::Task<void> {
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(co_await c->Put(Bytes("key" + std::to_string(i)), Bytes("v")));
    }
  }(&client));
  engine_.RunUntil(sim::Millis(50));
  server->Stop();
  EXPECT_LE(server->partition(0).size(), 32u);
  EXPECT_GT(server->partition(0).stats().evictions, 0u);
}

TEST_F(JakiroTest, MultiGetSpansPartitionsAndReportsMisses) {
  JakiroConfig config;
  config.server_threads = 4;
  JakiroServer* server = MakeServer(config);
  JakiroClient client(*server, *client_node_);
  server->Start();

  bool done = false;
  engine_.Spawn([](JakiroClient* c, bool* out) -> sim::Task<void> {
    // Seed 20 keys with distinct value sizes (every partition gets some).
    std::vector<std::byte> value(512);
    for (int i = 0; i < 20; ++i) {
      std::string v(static_cast<size_t>(10 + i), static_cast<char>('a' + i % 26));
      std::memcpy(value.data(), v.data(), v.size());
      EXPECT_TRUE(co_await c->Put(Bytes("mk" + std::to_string(i)),
                                  std::span<const std::byte>(value.data(), v.size())));
    }
    // Batch: all 20 present keys plus 4 misses, interleaved.
    std::vector<std::vector<std::byte>> storage;
    for (int i = 0; i < 20; ++i) {
      storage.push_back(Bytes("mk" + std::to_string(i)));
      if (i % 5 == 0) {
        storage.push_back(Bytes("missing" + std::to_string(i)));
      }
    }
    std::vector<std::span<const std::byte>> keys(storage.begin(), storage.end());
    std::vector<std::byte> arena(16384);
    std::vector<std::optional<std::span<const std::byte>>> results(keys.size());
    co_await c->MultiGet(keys, arena, results);

    for (size_t k = 0; k < keys.size(); ++k) {
      const std::string name(reinterpret_cast<const char*>(storage[k].data()),
                             storage[k].size());
      if (name.rfind("missing", 0) == 0) {
        EXPECT_FALSE(results[k].has_value()) << name;
      } else {
        EXPECT_TRUE(results[k].has_value()) << name;
        if (!results[k].has_value()) {
          continue;
        }
        const int i = std::stoi(name.substr(2));
        EXPECT_EQ(results[k]->size(), static_cast<size_t>(10 + i)) << name;
        EXPECT_EQ(static_cast<char>((*results[k])[0]), static_cast<char>('a' + i % 26));
      }
    }
    *out = true;
  }(&client, &done));
  engine_.RunUntil(sim::Millis(20));
  server->Stop();
  EXPECT_TRUE(done);
  // Grouped by owner: at most one RPC per server thread for the batch
  // (plus the 20 PUTs).
  EXPECT_LE(client.operations(), 20u + 4u);
}

TEST_F(JakiroTest, MultiGetAmortizesRoundTrips) {
  JakiroConfig config;
  config.server_threads = 1;  // single owner: the whole batch is one RPC
  JakiroServer* server = MakeServer(config);
  JakiroClient client(*server, *client_node_);
  server->Start();

  engine_.Spawn([](JakiroClient* c) -> sim::Task<void> {
    for (int i = 0; i < 16; ++i) {
      co_await c->Put(Bytes("b" + std::to_string(i)), Bytes("v"));
    }
    std::vector<std::vector<std::byte>> storage;
    for (int i = 0; i < 16; ++i) {
      storage.push_back(Bytes("b" + std::to_string(i)));
    }
    std::vector<std::span<const std::byte>> keys(storage.begin(), storage.end());
    std::vector<std::byte> arena(4096);
    std::vector<std::optional<std::span<const std::byte>>> results(keys.size());
    co_await c->MultiGet(keys, arena, results);
    for (const auto& r : results) {
      EXPECT_TRUE(r.has_value());
    }
  }(&client));
  engine_.RunUntil(sim::Millis(20));
  server->Stop();
  // 16 PUT calls + exactly 1 MULTIGET call.
  EXPECT_EQ(client.MergedChannelStats().calls, 17u);
}

// ---- Zero-copy GET (docs/memory.md) -------------------------------------------

TEST_F(JakiroTest, ZeroCopyGetAssemblesIdenticalBytes) {
  JakiroServer* server = MakeServer(JakiroConfig::Build().ZeroCopy());
  JakiroClient client(*server, *client_node_);
  server->Start();
  EXPECT_TRUE(server->partition(0).pool_backed());

  int verified = 0;
  engine_.Spawn([](JakiroClient* c, int* out) -> sim::Task<void> {
    std::vector<std::byte> key(16);
    std::vector<std::byte> value(8192);
    std::vector<std::byte> got(16384);
    // Sizes span the pool's slab classes and buddy blocks.
    for (uint64_t id = 0; id < 40; ++id) {
      workload::MakeKey(id, key);
      const size_t size = 32 + id * 150;
      workload::FillValue(id, std::span(value.data(), size));
      EXPECT_TRUE(co_await c->Put(key, std::span<const std::byte>(value.data(), size)));
    }
    for (uint64_t id = 0; id < 40; ++id) {
      workload::MakeKey(id, key);
      auto size = co_await c->Get(key, got);
      EXPECT_TRUE(size.has_value());
      if (size.has_value()) {
        EXPECT_EQ(*size, 32 + id * 150);
        EXPECT_TRUE(workload::CheckValue(id, std::span<const std::byte>(got.data(), *size)));
        ++*out;
      }
    }
  }(&client, &verified));
  engine_.RunUntil(sim::Millis(50));
  server->Stop();
  EXPECT_EQ(verified, 40);

  // Every hit GET traveled as an indirect descriptor plus one entry READ;
  // no value bytes were staged through the server's response ring.
  const auto stats = client.MergedChannelStats();
  EXPECT_EQ(stats.zero_copy_sends, 40u);
  EXPECT_EQ(stats.zero_copy_fetches, 40u);
  EXPECT_EQ(stats.zero_copy_fallbacks, 0u);
  uint64_t expected_bytes = 0;
  for (uint64_t id = 0; id < 40; ++id) {
    expected_bytes += 32 + id * 150;
  }
  EXPECT_EQ(stats.zero_copy_bytes, expected_bytes);
}

TEST_F(JakiroTest, ZeroCopyMissesAndDeletesStayOnCopyPath) {
  JakiroServer* server = MakeServer(JakiroConfig::Build().ZeroCopy());
  JakiroClient client(*server, *client_node_);
  server->Start();

  bool done = false;
  engine_.Spawn([](JakiroClient* c, bool* out) -> sim::Task<void> {
    std::vector<std::byte> got(4096);
    EXPECT_FALSE((co_await c->Get(Bytes("absent"), got)).has_value());
    EXPECT_TRUE(co_await c->Put(Bytes("k"), Bytes("v")));
    EXPECT_TRUE(co_await c->Delete(Bytes("k")));
    EXPECT_FALSE((co_await c->Get(Bytes("k"), got)).has_value());
    *out = true;
  }(&client, &done));
  engine_.RunUntil(sim::Millis(10));
  server->Stop();
  EXPECT_TRUE(done);
  EXPECT_EQ(client.MergedChannelStats().zero_copy_sends, 0u);
}

TEST_F(JakiroTest, ZeroCopyZeroLengthValueRoundTrips) {
  JakiroServer* server = MakeServer(JakiroConfig::Build().ZeroCopy());
  JakiroClient client(*server, *client_node_);
  server->Start();

  bool done = false;
  engine_.Spawn([](JakiroClient* c, bool* out) -> sim::Task<void> {
    std::vector<std::byte> got(64);
    EXPECT_TRUE(co_await c->Put(Bytes("empty"), {}));
    auto size = co_await c->Get(Bytes("empty"), got);
    EXPECT_TRUE(size.has_value());
    if (size.has_value()) {
      EXPECT_EQ(*size, 0u);
    }
    *out = true;
  }(&client, &done));
  engine_.RunUntil(sim::Millis(10));
  server->Stop();
  EXPECT_TRUE(done);
  // Empty values need no entry READ: the descriptor alone resolves the call.
  const auto stats = client.MergedChannelStats();
  EXPECT_EQ(stats.zero_copy_sends, 1u);
  EXPECT_EQ(stats.zero_copy_fetches, 0u);
}

TEST_F(JakiroTest, ZeroCopyOversizedValueThrowsLengthError) {
  JakiroServer* server = MakeServer(JakiroConfig::Build().ZeroCopy());
  JakiroClient client(*server, *client_node_);
  server->Start();
  engine_.Spawn([](JakiroClient* c) -> sim::Task<void> {
    co_await c->Put(Bytes("big"), Bytes(std::string(500, 'x')));
    std::vector<std::byte> tiny(16);
    co_await c->Get(Bytes("big"), tiny);
  }(&client));
  EXPECT_THROW(engine_.RunUntil(sim::Millis(5)), std::length_error);
}

TEST_F(JakiroTest, ZeroCopyWorksOnPipelinedChannels) {
  JakiroServer* server = MakeServer(JakiroConfig::Build().Pipelined(4).ZeroCopy());
  JakiroClient client(*server, *client_node_);
  server->Start();

  int verified = 0;
  engine_.Spawn([](JakiroClient* c, int* out) -> sim::Task<void> {
    std::vector<std::byte> value(2048);
    std::vector<std::byte> got(8192);
    for (int i = 0; i < 20; ++i) {
      const std::string v(100 + static_cast<size_t>(i) * 10, static_cast<char>('a' + i % 26));
      std::memcpy(value.data(), v.data(), v.size());
      EXPECT_TRUE(co_await c->Put(Bytes("p" + std::to_string(i)),
                                  std::span<const std::byte>(value.data(), v.size())));
    }
    for (int i = 0; i < 20; ++i) {
      auto size = co_await c->Get(Bytes("p" + std::to_string(i)), got);
      EXPECT_TRUE(size.has_value());
      if (size.has_value()) {
        EXPECT_EQ(*size, 100 + static_cast<size_t>(i) * 10);
        EXPECT_EQ(static_cast<char>(got[0]), static_cast<char>('a' + i % 26));
        ++*out;
      }
    }
  }(&client, &verified));
  engine_.RunUntil(sim::Millis(50));
  server->Stop();
  EXPECT_EQ(verified, 20);
  EXPECT_EQ(client.MergedChannelStats().zero_copy_fetches, 20u);
}

TEST_F(JakiroTest, ZeroCopyFallsBackUnderForcedReply) {
  // Forced server-reply channels cannot deliver an indirect descriptor (the
  // client never fetches): the send must materialize the value once and take
  // the copy path, counted as a fallback.
  JakiroServer* server = MakeServer(JakiroConfig::Build().ZeroCopy().ServerReply());
  JakiroClient client(*server, *client_node_);
  server->Start();

  int verified = 0;
  engine_.Spawn([](JakiroClient* c, int* out) -> sim::Task<void> {
    std::vector<std::byte> got(4096);
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(co_await c->Put(Bytes("f" + std::to_string(i)), Bytes("value")));
    }
    for (int i = 0; i < 10; ++i) {
      auto size = co_await c->Get(Bytes("f" + std::to_string(i)), got);
      EXPECT_TRUE(size.has_value());
      if (size.has_value() && *size == 5u &&
          std::string(reinterpret_cast<const char*>(got.data()), *size) == "value") {
        ++*out;
      }
    }
  }(&client, &verified));
  engine_.RunUntil(sim::Millis(20));
  server->Stop();
  EXPECT_EQ(verified, 10);

  const auto stats = client.MergedChannelStats();
  EXPECT_EQ(stats.zero_copy_fallbacks, 10u);
  EXPECT_EQ(stats.zero_copy_fetches, 0u);
  EXPECT_EQ(stats.fetch_reads, 0u);
  EXPECT_GE(stats.reply_pushes, 20u);
}

TEST_F(JakiroTest, HistoryRecorderJudgesClientVisibleOps) {
  // The explore oracle rides along on real Jakiro traffic: every client op
  // is recorded as an invoke/response pair, and the resulting history is
  // linearizable per key.
  JakiroServer* server = MakeServer();
  JakiroClient client(*server, *client_node_);
  explore::HistoryRecorder recorder;
  client.set_history_recorder(&recorder);
  server->Start();

  engine_.Spawn([](JakiroClient* c) -> sim::Task<void> {
    std::vector<std::byte> value(4096);
    EXPECT_TRUE(co_await c->Put(Bytes("h"), Bytes("v1")));
    EXPECT_TRUE((co_await c->Get(Bytes("h"), value)).has_value());
    EXPECT_TRUE(co_await c->Put(Bytes("h"), Bytes("v2")));
    EXPECT_TRUE((co_await c->Get(Bytes("h"), value)).has_value());
    EXPECT_TRUE(co_await c->Delete(Bytes("h")));
    EXPECT_FALSE((co_await c->Get(Bytes("h"), value)).has_value());
  }(&client));
  engine_.RunUntil(sim::Millis(10));
  server->Stop();

  EXPECT_EQ(recorder.ops().size(), 6u);
  EXPECT_EQ(recorder.completed_ops(), 6u);
  explore::LinResult r = recorder.CheckLinearizable();
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_NO_THROW(recorder.CheckStrict());
}

TEST_F(JakiroTest, MultiGetArenaExhaustionThrows) {
  JakiroServer* server = MakeServer();
  JakiroClient client(*server, *client_node_);
  server->Start();
  engine_.Spawn([](JakiroClient* c) -> sim::Task<void> {
    co_await c->Put(Bytes("big"), Bytes(std::string(500, 'x')));
    std::vector<std::vector<std::byte>> storage{Bytes("big")};
    std::vector<std::span<const std::byte>> keys(storage.begin(), storage.end());
    std::vector<std::byte> arena(16);  // too small
    std::vector<std::optional<std::span<const std::byte>>> results(1);
    co_await c->MultiGet(keys, arena, results);
  }(&client));
  EXPECT_THROW(engine_.RunUntil(sim::Millis(5)), std::length_error);
}

}  // namespace
}  // namespace kv
