#include "src/kv/bucket_table.h"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"

namespace kv {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

TEST(BucketTableTest, PutGetRoundTrip) {
  BucketTable table(64);
  table.Put(Bytes("key1"), Bytes("value1"));
  auto v = table.Get(Bytes("key1"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(v->data()), v->size()), "value1");
  EXPECT_EQ(table.size(), 1u);
}

TEST(BucketTableTest, MissingKeyReturnsNullopt) {
  BucketTable table(64);
  EXPECT_FALSE(table.Get(Bytes("nope")).has_value());
  EXPECT_EQ(table.stats().misses, 1u);
}

TEST(BucketTableTest, OverwriteUpdatesInPlace) {
  BucketTable table(64);
  table.Put(Bytes("k"), Bytes("old"));
  table.Put(Bytes("k"), Bytes("newer-and-longer"));
  auto v = table.Get(Bytes("k"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->size(), 16u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.stats().updates, 1u);
}

TEST(BucketTableTest, EraseRemoves) {
  BucketTable table(64);
  table.Put(Bytes("k"), Bytes("v"));
  EXPECT_TRUE(table.Erase(Bytes("k")));
  EXPECT_FALSE(table.Get(Bytes("k")).has_value());
  EXPECT_FALSE(table.Erase(Bytes("k")));
  EXPECT_EQ(table.size(), 0u);
}

TEST(BucketTableTest, BucketCountRoundsUpToPowerOfTwo) {
  BucketTable table(100);
  EXPECT_EQ(table.num_buckets(), 128u);
}

TEST(BucketTableTest, ZeroBucketsThrows) {
  EXPECT_THROW(BucketTable(0), std::invalid_argument);
}

// With a single bucket, every key collides, exposing the strict LRU policy
// (paper Section 4.1: 8 slots per bucket, strict LRU eviction).
TEST(BucketTableTest, StrictLruEvictionInFullBucket) {
  BucketTable table(1);
  for (int i = 0; i < 8; ++i) {
    table.Put(Bytes("key" + std::to_string(i)), Bytes("v"));
  }
  EXPECT_EQ(table.size(), 8u);
  // Touch key0..key6 so key7 becomes the least recently used.
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(table.Get(Bytes("key" + std::to_string(i))).has_value());
  }
  table.Put(Bytes("key8"), Bytes("v"));
  EXPECT_EQ(table.size(), 8u);
  EXPECT_EQ(table.stats().evictions, 1u);
  EXPECT_FALSE(table.Get(Bytes("key7")).has_value()) << "LRU victim must be key7";
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(table.Get(Bytes("key" + std::to_string(i))).has_value());
  }
  EXPECT_TRUE(table.Get(Bytes("key8")).has_value());
}

TEST(BucketTableTest, GetRefreshesLruRank) {
  BucketTable table(1);
  for (int i = 0; i < 8; ++i) {
    table.Put(Bytes("key" + std::to_string(i)), Bytes("v"));
  }
  // key0 is the oldest insert, but a Get refreshes it...
  EXPECT_TRUE(table.Get(Bytes("key0")).has_value());
  table.Put(Bytes("key8"), Bytes("v"));
  // ...so the eviction victim is key1, not key0.
  EXPECT_TRUE(table.Get(Bytes("key0")).has_value());
  EXPECT_FALSE(table.Get(Bytes("key1")).has_value());
}

TEST(BucketTableTest, EvictionsCascadeThroughLruOrder) {
  BucketTable table(1);
  for (int i = 0; i < 8; ++i) {
    table.Put(Bytes("key" + std::to_string(i)), Bytes("v"));
  }
  // Three more inserts evict the three oldest: key0, key1, key2.
  for (int i = 8; i < 11; ++i) {
    table.Put(Bytes("key" + std::to_string(i)), Bytes("v"));
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(table.Get(Bytes("key" + std::to_string(i))).has_value());
  }
  for (int i = 3; i < 11; ++i) {
    EXPECT_TRUE(table.Get(Bytes("key" + std::to_string(i))).has_value());
  }
}

TEST(BucketTableTest, EraseKeepsLruConsistent) {
  BucketTable table(1);
  for (int i = 0; i < 8; ++i) {
    table.Put(Bytes("key" + std::to_string(i)), Bytes("v"));
  }
  EXPECT_TRUE(table.Erase(Bytes("key3")));
  // The freed slot absorbs the next insert without eviction.
  table.Put(Bytes("key8"), Bytes("v"));
  EXPECT_EQ(table.stats().evictions, 0u);
  EXPECT_EQ(table.size(), 8u);
}

// Randomized oracle test against std::map, sized so no evictions occur.
TEST(BucketTableTest, MatchesOracleWithoutEvictions) {
  BucketTable table(4096);  // 32k slots
  std::map<std::string, std::string> oracle;
  sim::Rng rng(123);
  for (int step = 0; step < 20000; ++step) {
    const std::string key = "key" + std::to_string(rng.NextBounded(800));
    const uint64_t action = rng.NextBounded(10);
    if (action < 5) {
      const std::string value = "value" + std::to_string(rng.Next() & 0xffff);
      table.Put(Bytes(key), Bytes(value));
      oracle[key] = value;
    } else if (action < 8) {
      auto got = table.Get(Bytes(key));
      auto expect = oracle.find(key);
      if (expect == oracle.end()) {
        EXPECT_FALSE(got.has_value()) << key;
      } else {
        ASSERT_TRUE(got.has_value()) << key;
        EXPECT_EQ(std::string(reinterpret_cast<const char*>(got->data()), got->size()),
                  expect->second);
      }
    } else {
      EXPECT_EQ(table.Erase(Bytes(key)), oracle.erase(key) > 0) << key;
    }
  }
  EXPECT_EQ(table.size(), oracle.size());
  EXPECT_EQ(table.stats().evictions, 0u);
}

// ---- Pool-backed storage mode (docs/memory.md) --------------------------------

class PoolBucketTableTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node& node_{fabric_.AddNode("server")};
};

TEST_F(PoolBucketTableTest, HeapModeHasNoPinnedPath) {
  BucketTable table(64);
  EXPECT_FALSE(table.pool_backed());
  table.Put(Bytes("k"), Bytes("v"));
  EXPECT_THROW(table.GetPinned(Bytes("k")), std::logic_error);
}

TEST_F(PoolBucketTableTest, PoolModeRoundTripsThroughRegisteredSlabs) {
  BucketTable table(64, node_);
  EXPECT_TRUE(table.pool_backed());
  table.Put(Bytes("k"), Bytes("value"));
  auto v = table.Get(Bytes("k"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(v->data()), v->size()), "value");

  auto pinned = table.GetPinned(Bytes("k"));
  ASSERT_TRUE(pinned.has_value());
  EXPECT_EQ(pinned->len, 5u);
  EXPECT_EQ(pinned->epoch, 0u);
  // The descriptor resolves through the fabric like a remote client would.
  rdma::MemoryRegion* mr = fabric_.FindRemote(rdma::RemoteKey{pinned->rkey});
  ASSERT_NE(mr, nullptr);
  auto bytes = mr->bytes().subspan(pinned->offset, pinned->len);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()), "value");
}

TEST_F(PoolBucketTableTest, UnpinnedOverwriteUpdatesInPlaceAndBumpsEpoch) {
  BucketTable table(64, node_);
  table.Put(Bytes("k"), Bytes("AAAA"));
  uint32_t rkey = 0;
  size_t offset = 0;
  {
    // Scoped so the pin is released before the overwrite below.
    const auto first = table.GetPinned(Bytes("k"));
    ASSERT_TRUE(first.has_value());
    rkey = first->rkey;
    offset = first->offset;
  }

  table.Put(Bytes("k"), Bytes("BB"));  // fits, nothing pinned: in place
  const auto second = table.GetPinned(Bytes("k"));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->rkey, rkey);
  EXPECT_EQ(second->offset, offset);
  EXPECT_EQ(second->len, 2u);
  EXPECT_EQ(second->epoch, 1u) << "every overwrite must bump the reuse epoch";
  EXPECT_EQ(table.stats().cow_puts, 0u);
}

TEST_F(PoolBucketTableTest, PinnedOverwriteCopiesOnWrite) {
  BucketTable table(64, node_);
  table.Put(Bytes("k"), Bytes("AAAA"));
  auto pinned = table.GetPinned(Bytes("k"));
  ASSERT_TRUE(pinned.has_value());

  table.Put(Bytes("k"), Bytes("BBBB"));  // same size, but the entry is pinned
  EXPECT_EQ(table.stats().cow_puts, 1u);

  // The pinned snapshot still reads the old bytes...
  rdma::MemoryRegion* mr = fabric_.FindRemote(rdma::RemoteKey{pinned->rkey});
  auto old_bytes = mr->bytes().subspan(pinned->offset, pinned->len);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(old_bytes.data()), old_bytes.size()),
            "AAAA");
  // ...while the table serves the new cell at a different location.
  auto fresh = table.GetPinned(Bytes("k"));
  ASSERT_TRUE(fresh.has_value());
  EXPECT_TRUE(fresh->rkey != pinned->rkey || fresh->offset != pinned->offset);
  EXPECT_EQ(fresh->epoch, 1u);
  auto v = table.Get(Bytes("k"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(v->data()), v->size()), "BBBB");
}

TEST_F(PoolBucketTableTest, OutgrowingValueMovesToLargerSpan) {
  BucketTable table(64, node_);
  table.Put(Bytes("k"), Bytes("small"));
  table.Put(Bytes("k"), Bytes(std::string(5000, 'z')));  // outgrows the slab chunk
  auto v = table.Get(Bytes("k"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->size(), 5000u);
  EXPECT_EQ(table.stats().updates, 1u);
}

TEST_F(PoolBucketTableTest, PoolModeMatchesOracleUnderChurn) {
  BucketTable table(256, node_);
  std::map<std::string, std::string> oracle;
  sim::Rng rng(777);
  for (int step = 0; step < 5000; ++step) {
    const std::string key = "key" + std::to_string(rng.NextBounded(300));
    const uint64_t action = rng.NextBounded(10);
    if (action < 5) {
      const std::string value(1 + rng.NextBounded(600), static_cast<char>('a' + step % 26));
      table.Put(Bytes(key), Bytes(value));
      oracle[key] = value;
    } else if (action < 8) {
      auto got = table.Get(Bytes(key));
      auto expect = oracle.find(key);
      if (expect == oracle.end()) {
        EXPECT_FALSE(got.has_value()) << key;
      } else {
        ASSERT_TRUE(got.has_value()) << key;
        EXPECT_EQ(std::string(reinterpret_cast<const char*>(got->data()), got->size()),
                  expect->second);
      }
    } else {
      EXPECT_EQ(table.Erase(Bytes(key)), oracle.erase(key) > 0) << key;
    }
  }
  EXPECT_EQ(table.size(), oracle.size());
}

// Property sweep: under heavy overfill the table never exceeds its slot
// capacity and keeps serving consistent data.
class BucketTableFillTest : public ::testing::TestWithParam<int> {};

TEST_P(BucketTableFillTest, CapacityBounded) {
  const int buckets = GetParam();
  BucketTable table(static_cast<size_t>(buckets));
  const size_t capacity = table.num_buckets() * BucketTable::kSlotsPerBucket;
  for (int i = 0; i < 5000; ++i) {
    table.Put(Bytes("key" + std::to_string(i)), Bytes("v" + std::to_string(i)));
    EXPECT_LE(table.size(), capacity);
  }
  // Anything still present must carry its own value.
  int present = 0;
  for (int i = 0; i < 5000; ++i) {
    auto v = table.Get(Bytes("key" + std::to_string(i)));
    if (v.has_value()) {
      ++present;
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(v->data()), v->size()),
                "v" + std::to_string(i));
    }
  }
  EXPECT_EQ(static_cast<size_t>(present), table.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, BucketTableFillTest, ::testing::Values(1, 4, 64, 512));

}  // namespace
}  // namespace kv
