#include "src/kv/pilaf_store.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace kv {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

class PilafTest : public ::testing::Test {
 protected:
  PilafServer* MakeServer(PilafConfig config = {}) {
    server_ = std::make_unique<PilafServer>(fabric_, *server_node_, config);
    return server_.get();
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node* server_node_{&fabric_.AddNode("server")};
  rdma::Node* client_node_{&fabric_.AddNode("client")};
  std::unique_ptr<PilafServer> server_;
};

TEST_F(PilafTest, OneSidedGetFindsPreloadedData) {
  PilafServer* server = MakeServer();
  ASSERT_TRUE(server->Preload(Bytes("key"), Bytes("value")));
  PilafClient client(fabric_, *client_node_, *server, 0);
  server->Start();

  std::string got;
  engine_.Spawn([](PilafClient* c, std::string* out) -> sim::Task<void> {
    std::vector<std::byte> value(1024);
    auto size = co_await c->Get(Bytes("key"), value);
    EXPECT_TRUE(size.has_value());
    out->assign(reinterpret_cast<const char*>(value.data()), *size);
  }(&client, &got));
  engine_.RunUntil(sim::Millis(5));
  server->Stop();
  EXPECT_EQ(got, "value");
  // GETs never touched the server CPU.
  EXPECT_EQ(server->rpc().requests_served(), 0u);
  EXPECT_GT(client.stats().slot_reads, 0u);
  EXPECT_EQ(client.stats().extent_reads, 1u);
}

TEST_F(PilafTest, MissingKeyNotFound) {
  PilafServer* server = MakeServer();
  PilafClient client(fabric_, *client_node_, *server, 0);
  server->Start();
  bool checked = false;
  engine_.Spawn([](PilafClient* c, bool* out) -> sim::Task<void> {
    std::vector<std::byte> value(1024);
    EXPECT_FALSE((co_await c->Get(Bytes("ghost"), value)).has_value());
    *out = true;
  }(&client, &checked));
  engine_.RunUntil(sim::Millis(5));
  server->Stop();
  EXPECT_TRUE(checked);
  EXPECT_EQ(client.stats().not_found, 1u);
}

TEST_F(PilafTest, PutThroughRpcThenOneSidedGet) {
  PilafServer* server = MakeServer();
  PilafClient client(fabric_, *client_node_, *server, 0);
  server->Start();
  std::string got;
  engine_.Spawn([](PilafClient* c, std::string* out) -> sim::Task<void> {
    std::vector<std::byte> value(1024);
    EXPECT_TRUE(co_await c->Put(Bytes("k"), Bytes("written-via-rpc")));
    auto size = co_await c->Get(Bytes("k"), value);
    EXPECT_TRUE(size.has_value());
    out->assign(reinterpret_cast<const char*>(value.data()), *size);
  }(&client, &got));
  engine_.RunUntil(sim::Millis(5));
  server->Stop();
  EXPECT_EQ(got, "written-via-rpc");
  EXPECT_EQ(server->rpc().requests_served(), 1u);  // only the PUT
}

TEST_F(PilafTest, GetUsesAboutThreeReads) {
  // Paper Section 2.3: Pilaf averages ~3.2 READs per GET. With 3-way
  // probing (avg 2 slot probes) plus one extent read, expect ~2.5-3.5.
  PilafConfig config;
  config.num_slots = 1 << 14;
  PilafServer* server = MakeServer(config);
  for (int i = 0; i < 8000; ++i) {  // ~50% fill, plus collisions to probe past
    ASSERT_TRUE(server->Preload(Bytes("key" + std::to_string(i)), Bytes("v")));
  }
  PilafClient client(fabric_, *client_node_, *server, 0);
  server->Start();
  engine_.Spawn([](PilafClient* c) -> sim::Task<void> {
    std::vector<std::byte> value(1024);
    for (int i = 0; i < 500; ++i) {
      auto got = co_await c->Get(Bytes("key" + std::to_string(i)), value);
      EXPECT_TRUE(got.has_value());
    }
  }(&client));
  engine_.RunUntil(sim::Millis(50));
  server->Stop();
  const double reads_per_get = client.stats().ReadsPerGet();
  EXPECT_GT(reads_per_get, 2.0);
  EXPECT_LT(reads_per_get, 4.0);
}

TEST_F(PilafTest, ConcurrentPutsProduceCrcRetriesButNeverTornValues) {
  // One writer hammers a key with two alternating values while a reader
  // GETs it one-sidedly. The CRC must catch every torn read: the reader
  // only ever observes value A or value B in full.
  PilafConfig config;
  config.put_process_ns = 3000;  // wide race window
  PilafServer* server = MakeServer(config);
  ASSERT_TRUE(server->Preload(Bytes("hot"), Bytes(std::string(64, 'A'))));
  PilafClient writer(fabric_, *client_node_, *server, 0);
  rdma::Node* reader_node = &fabric_.AddNode("reader");
  PilafClient reader(fabric_, *reader_node, *server, 1);
  server->Start();

  engine_.Spawn([](PilafClient* w) -> sim::Task<void> {
    for (int i = 0; i < 300; ++i) {
      co_await w->Put(Bytes("hot"), Bytes(std::string(64, i % 2 == 0 ? 'B' : 'A')));
    }
  }(&writer));

  int torn_values = 0;
  int reads_done = 0;
  engine_.Spawn([](PilafClient* r, int* torn, int* done) -> sim::Task<void> {
    std::vector<std::byte> value(1024);
    for (int i = 0; i < 2000; ++i) {
      auto size = co_await r->Get(Bytes("hot"), value);
      if (!size.has_value()) {
        continue;  // transiently invisible mid-update is acceptable
      }
      EXPECT_EQ(*size, 64u);
      const char first = static_cast<char>(value[0]);
      bool uniform = first == 'A' || first == 'B';
      for (size_t b = 1; b < *size && uniform; ++b) {
        uniform = static_cast<char>(value[b]) == first;
      }
      if (!uniform) {
        ++*torn;
      }
      ++*done;
    }
  }(&reader, &torn_values, &reads_done));

  engine_.RunUntil(sim::Millis(100));
  server->Stop();
  EXPECT_GT(reads_done, 1000);
  EXPECT_EQ(torn_values, 0) << "CRC64 must filter every torn read";
  EXPECT_GT(reader.stats().crc_failures, 0u)
      << "with a 3 us race window and a hammering writer, some reads must race";
}

TEST_F(PilafTest, ValueTooLargeForBufferThrows) {
  PilafServer* server = MakeServer();
  ASSERT_TRUE(server->Preload(Bytes("big"), Bytes(std::string(512, 'x'))));
  PilafClient client(fabric_, *client_node_, *server, 0);
  server->Start();
  engine_.Spawn([](PilafClient* c) -> sim::Task<void> {
    std::vector<std::byte> small(16);
    co_await c->Get(Bytes("big"), small);
  }(&client));
  EXPECT_THROW(engine_.RunUntil(sim::Millis(5)), std::length_error);
}

}  // namespace
}  // namespace kv
