#include "src/kv/farm_store.h"

#include "src/kv/crc64.h"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace kv {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

std::string Str(std::span<const std::byte> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

class FarmStoreTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node& node_{fabric_.AddNode("server")};
};

TEST_F(FarmStoreTest, PutGetRoundTrip) {
  FarmConfig config;
  config.num_buckets = 64;
  FarmStore store(node_, config);
  EXPECT_TRUE(store.Put(Bytes("key"), Bytes("value")));
  auto v = store.Get(Bytes("key"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(Str(*v), "value");
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(FarmStoreTest, EntriesStayWithinNeighborhood) {
  FarmConfig config;
  config.num_buckets = 256;  // x4 slots = 1024 capacity
  config.neighborhood = 8;
  FarmStore store(node_, config);
  sim::Rng rng(3);
  std::map<std::string, std::string> oracle;
  for (int i = 0; i < 900; ++i) {  // ~88% fill: displacements will happen
    const std::string key = "key" + std::to_string(i);
    const std::string value = "v" + std::to_string(rng.Next() & 0xfff);
    if (store.Put(Bytes(key), Bytes(value))) {
      oracle[key] = value;
    }
  }
  EXPECT_GT(store.stats().displacements, 0u);
  // Every stored entry must be retrievable (i.e., within its neighborhood —
  // Get only scans the H home cells).
  for (const auto& [key, value] : oracle) {
    auto got = store.Get(Bytes(key));
    ASSERT_TRUE(got.has_value()) << key;
    EXPECT_EQ(Str(*got), value);
  }
}

TEST_F(FarmStoreTest, UpdateInPlace) {
  FarmConfig config;
  config.num_buckets = 16;
  FarmStore store(node_, config);
  store.Put(Bytes("k"), Bytes("old"));
  store.Put(Bytes("k"), Bytes("new!"));
  EXPECT_EQ(Str(*store.Get(Bytes("k"))), "new!");
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().updates, 1u);
}

TEST_F(FarmStoreTest, EraseFreesTheCell) {
  FarmConfig config;
  config.num_buckets = 16;
  FarmStore store(node_, config);
  store.Put(Bytes("k"), Bytes("v"));
  EXPECT_TRUE(store.Erase(Bytes("k")));
  EXPECT_FALSE(store.Get(Bytes("k")).has_value());
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(FarmStoreTest, OversizeValueThrows) {
  FarmConfig config;
  config.num_buckets = 16;
  config.max_value_bytes = 16;
  FarmStore store(node_, config);
  EXPECT_THROW(store.Put(Bytes("k"), Bytes(std::string(17, 'x'))), std::invalid_argument);
}

TEST_F(FarmStoreTest, StagedCellIsTornUntilPublished) {
  FarmConfig config;
  config.num_buckets = 16;
  FarmStore store(node_, config);
  store.Put(Bytes("key"), Bytes("AAAA"));
  auto pending = store.StageCell(Bytes("key"), Bytes("BBBB"));
  ASSERT_TRUE(pending.has_value());
  // Old header + new bytes: the CRC must mismatch until publication.
  rdma::MemoryRegion* mr = fabric_.FindRemote(store.view().rkey);
  const auto cell_span =
      mr->bytes().subspan(pending->cell_index * store.cell_bytes(), store.cell_bytes());
  const FarmStore::DecodedCell old_header = FarmStore::DecodeCell(cell_span);
  const auto record = cell_span.subspan(FarmStore::kCellHeaderBytes,
                                        old_header.key_size + old_header.value_size);
  EXPECT_NE(Crc64(record), old_header.crc);
  store.PublishCell(*pending);
  EXPECT_EQ(Str(*store.Get(Bytes("key"))), "BBBB");
}

class FarmEndToEndTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node* server_node_{&fabric_.AddNode("server")};
  rdma::Node* client_node_{&fabric_.AddNode("client")};
};

TEST_F(FarmEndToEndTest, OneSidedGetReadsExactlyOneNeighborhood) {
  FarmConfig config;
  config.num_buckets = 1024;
  FarmServer server(fabric_, *server_node_, config);
  ASSERT_TRUE(server.Preload(Bytes("hello"), Bytes("world")));
  FarmClient client(fabric_, *client_node_, server, 0);
  server.Start();

  std::string got;
  engine_.Spawn([](FarmClient* c, std::string* out) -> sim::Task<void> {
    std::vector<std::byte> value(1024);
    auto size = co_await c->Get(Bytes("hello"), value);
    EXPECT_TRUE(size.has_value());
    out->assign(reinterpret_cast<const char*>(value.data()), *size);
  }(&client, &got));
  engine_.RunUntil(sim::Millis(2));
  server.Stop();
  EXPECT_EQ(got, "world");
  EXPECT_EQ(client.stats().neighborhood_reads, 1u);
  // The single READ fetched H cells — N x (cell bytes) on the wire.
  EXPECT_EQ(client.stats().bytes_read,
            static_cast<uint64_t>(config.neighborhood) *
                static_cast<uint64_t>(config.slots_per_bucket) *
                (FarmStore::kCellHeaderBytes + config.max_key_bytes + config.max_value_bytes));
  EXPECT_GT(client.stats().WasteFactor(), 6.0);  // the paper's "N usually > 6"
}

TEST_F(FarmEndToEndTest, PutThenGetThroughTheFullStack) {
  FarmServer server(fabric_, *server_node_, FarmConfig{});
  FarmClient client(fabric_, *client_node_, server, 0);
  server.Start();
  bool done = false;
  engine_.Spawn([](FarmClient* c, bool* out) -> sim::Task<void> {
    std::vector<std::byte> value(1024);
    EXPECT_TRUE(co_await c->Put(Bytes("k1"), Bytes("via-rpc")));
    auto size = co_await c->Get(Bytes("k1"), value);
    EXPECT_TRUE(size.has_value());
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(value.data()), *size), "via-rpc");
    EXPECT_FALSE((co_await c->Get(Bytes("missing"), value)).has_value());
    *out = true;
  }(&client, &done));
  engine_.RunUntil(sim::Millis(2));
  server.Stop();
  EXPECT_TRUE(done);
}

TEST_F(FarmEndToEndTest, ConcurrentWriterNeverYieldsTornValues) {
  FarmConfig config;
  config.put_process_ns = 3000;
  FarmServer server(fabric_, *server_node_, config);
  ASSERT_TRUE(server.Preload(Bytes("hot"), Bytes(std::string(32, 'A'))));
  FarmClient writer(fabric_, *client_node_, server, 0);
  rdma::Node* reader_node = &fabric_.AddNode("reader");
  FarmClient reader(fabric_, *reader_node, server, 1);
  server.Start();

  engine_.Spawn([](FarmClient* w) -> sim::Task<void> {
    for (int i = 0; i < 200; ++i) {
      co_await w->Put(Bytes("hot"), Bytes(std::string(32, i % 2 == 0 ? 'B' : 'A')));
    }
  }(&writer));

  int torn = 0;
  engine_.Spawn([](FarmClient* r, int* bad) -> sim::Task<void> {
    std::vector<std::byte> value(1024);
    for (int i = 0; i < 1500; ++i) {
      auto size = co_await r->Get(Bytes("hot"), value);
      if (!size.has_value()) {
        continue;
      }
      const char first = static_cast<char>(value[0]);
      bool uniform = first == 'A' || first == 'B';
      for (size_t b = 1; b < *size && uniform; ++b) {
        uniform = static_cast<char>(value[b]) == first;
      }
      if (!uniform) {
        ++*bad;
      }
    }
  }(&reader, &torn));

  engine_.RunUntil(sim::Millis(60));
  server.Stop();
  EXPECT_EQ(torn, 0);
  EXPECT_GT(reader.stats().crc_failures, 0u);
}

}  // namespace
}  // namespace kv
