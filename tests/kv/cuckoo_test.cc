#include "src/kv/cuckoo.h"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/kv/common.h"
#include "src/kv/crc64.h"
#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"

namespace kv {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

std::string Str(std::span<const std::byte> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

class CuckooTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node& node_{fabric_.AddNode("server")};
};

TEST_F(CuckooTest, PutGetRoundTrip) {
  CuckooTable table(node_, 1024, 1 << 20, 1);
  EXPECT_TRUE(table.Put(Bytes("key"), Bytes("value")));
  auto v = table.Get(Bytes("key"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(Str(*v), "value");
  EXPECT_EQ(table.size(), 1u);
}

TEST_F(CuckooTest, MissingKeyNotFound) {
  CuckooTable table(node_, 1024, 1 << 20, 1);
  EXPECT_FALSE(table.Get(Bytes("ghost")).has_value());
}

TEST_F(CuckooTest, UpdateReusesExtentWhenItFits) {
  CuckooTable table(node_, 1024, 1 << 20, 1);
  table.Put(Bytes("key"), Bytes("12345678"));
  table.Put(Bytes("key"), Bytes("1234"));  // shorter: reuse in place
  auto v = table.Get(Bytes("key"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(Str(*v), "1234");
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.stats().updates, 1u);
}

TEST_F(CuckooTest, EraseRemoves) {
  CuckooTable table(node_, 1024, 1 << 20, 1);
  table.Put(Bytes("key"), Bytes("value"));
  EXPECT_TRUE(table.Erase(Bytes("key")));
  EXPECT_FALSE(table.Get(Bytes("key")).has_value());
  EXPECT_FALSE(table.Erase(Bytes("key")));
}

TEST_F(CuckooTest, FillsToSeventyFivePercent) {
  // The paper quotes Pilaf at a 75%-filled 3-way table; inserts must keep
  // succeeding (with kicks) well past naive single-choice occupancy.
  CuckooTable table(node_, 4096, 8 << 20, 7);
  const int target = 3072;  // 75%
  for (int i = 0; i < target; ++i) {
    ASSERT_TRUE(table.Put(Bytes("key" + std::to_string(i)), Bytes("v" + std::to_string(i))))
        << "insert " << i << " failed at fill " << table.fill();
  }
  EXPECT_DOUBLE_EQ(table.fill(), 0.75);
  EXPECT_GT(table.stats().kicks, 0u) << "75% fill requires cuckoo kicks";
  for (int i = 0; i < target; ++i) {
    auto v = table.Get(Bytes("key" + std::to_string(i)));
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(Str(*v), "v" + std::to_string(i));
  }
}

TEST_F(CuckooTest, SlotEncodeDecodeRoundTrip) {
  CuckooTable table(node_, 64, 1 << 16, 1);
  table.Put(Bytes("abc"), Bytes("defgh"));
  // Find the non-empty slot and decode it like a remote client would.
  const CuckooTable::View view = table.view();
  rdma::MemoryRegion* meta = fabric_.FindRemote(view.meta_rkey);
  ASSERT_NE(meta, nullptr);
  bool found = false;
  for (uint64_t i = 0; i < table.num_slots(); ++i) {
    // Remote clients add the view's base offsets: the rkeys name whole pool
    // arenas, and the table lives at a span inside them.
    auto slot = CuckooTable::DecodeSlot(meta->bytes().subspan(
        view.meta_base + CuckooTable::SlotOffset(i), CuckooTable::kSlotBytes));
    if (slot.empty()) {
      continue;
    }
    found = true;
    EXPECT_EQ(slot.key_size, 3u);
    EXPECT_EQ(slot.value_size, 5u);
    rdma::MemoryRegion* extent = fabric_.FindRemote(view.extent_rkey);
    auto record = extent->bytes().subspan(view.extent_base + slot.extent_offset, 8);
    EXPECT_EQ(Str(record), "abcdefgh");
    EXPECT_EQ(Crc64(record), slot.crc);
  }
  EXPECT_TRUE(found);
}

TEST_F(CuckooTest, StagedUpdateIsTornUntilPublished) {
  CuckooTable table(node_, 64, 1 << 16, 1);
  table.Put(Bytes("key"), Bytes("AAAA"));
  // Stage a new value: extent bytes change, slot still carries the old CRC.
  auto pending = table.StageExtent(Bytes("key"), Bytes("BBBB"));
  ASSERT_TRUE(pending.has_value());
  const CuckooTable::View view = table.view();
  rdma::MemoryRegion* extent = fabric_.FindRemote(view.extent_rkey);
  rdma::MemoryRegion* meta = fabric_.FindRemote(view.meta_rkey);
  auto old_slot = CuckooTable::DecodeSlot(meta->bytes().subspan(
      view.meta_base + CuckooTable::SlotOffset(pending->slot_index), CuckooTable::kSlotBytes));
  auto record = extent->bytes().subspan(view.extent_base + old_slot.extent_offset,
                                        old_slot.key_size + old_slot.value_size);
  EXPECT_NE(Crc64(record), old_slot.crc) << "torn window must be CRC-detectable";
  // Publishing restores consistency.
  table.PublishSlot(*pending);
  auto new_slot = CuckooTable::DecodeSlot(meta->bytes().subspan(
      view.meta_base + CuckooTable::SlotOffset(pending->slot_index), CuckooTable::kSlotBytes));
  auto new_record = extent->bytes().subspan(view.extent_base + new_slot.extent_offset,
                                            new_slot.key_size + new_slot.value_size);
  EXPECT_EQ(Crc64(new_record), new_slot.crc);
  EXPECT_EQ(Str(*table.Get(Bytes("key"))), "BBBB");
}

TEST_F(CuckooTest, PositionsAreDeterministicAndInRange) {
  uint64_t a[3];
  uint64_t b[3];
  CuckooTable::Positions(0x12345, 1024, a);
  CuckooTable::Positions(0x12345, 1024, b);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_LT(a[i], 1024u);
  }
}

TEST_F(CuckooTest, ExtentExhaustionFailsCleanly) {
  CuckooTable table(node_, 1024, 64, 1);  // tiny extent: ~2 records
  EXPECT_TRUE(table.Put(Bytes("k1"), Bytes(std::string(20, 'a'))));
  EXPECT_TRUE(table.Put(Bytes("k2"), Bytes(std::string(20, 'b'))));
  EXPECT_FALSE(table.Put(Bytes("k3"), Bytes(std::string(20, 'c'))));
  EXPECT_EQ(table.stats().failed_inserts, 1u);
  // Existing data is unharmed.
  EXPECT_EQ(Str(*table.Get(Bytes("k1"))), std::string(20, 'a'));
}

TEST_F(CuckooTest, MatchesOracleUnderRandomOps) {
  CuckooTable table(node_, 4096, 8 << 20, 11);
  std::map<std::string, std::string> oracle;
  sim::Rng rng(99);
  for (int step = 0; step < 10000; ++step) {
    const std::string key = "key" + std::to_string(rng.NextBounded(2000));
    const uint64_t action = rng.NextBounded(10);
    if (action < 5) {
      const std::string value = "value" + std::to_string(rng.Next() & 0xffff);
      if (table.Put(Bytes(key), Bytes(value))) {
        oracle[key] = value;
      }
    } else if (action < 8) {
      auto got = table.Get(Bytes(key));
      auto expect = oracle.find(key);
      if (expect == oracle.end()) {
        EXPECT_FALSE(got.has_value()) << key;
      } else {
        ASSERT_TRUE(got.has_value()) << key;
        EXPECT_EQ(Str(*got), expect->second);
      }
    } else {
      EXPECT_EQ(table.Erase(Bytes(key)), oracle.erase(key) > 0) << key;
    }
  }
  EXPECT_EQ(table.size(), oracle.size());
}

}  // namespace
}  // namespace kv
