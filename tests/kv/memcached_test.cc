#include "src/kv/memcached_store.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace kv {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

class MemcachedTest : public ::testing::Test {
 protected:
  MemcachedServer* MakeServer(MemcachedConfig config = {}) {
    server_ = std::make_unique<MemcachedServer>(fabric_, *server_node_, config);
    return server_.get();
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node* server_node_{&fabric_.AddNode("server")};
  rdma::Node* client_node_{&fabric_.AddNode("client")};
  std::unique_ptr<MemcachedServer> server_;
};

TEST_F(MemcachedTest, PutGetRoundTrip) {
  MemcachedServer* server = MakeServer();
  MemcachedClient client(*server, *client_node_, 0);
  server->Start();
  std::string got;
  engine_.Spawn([](MemcachedClient* c, std::string* out) -> sim::Task<void> {
    std::vector<std::byte> value(1024);
    EXPECT_TRUE(co_await c->Put(Bytes("key"), Bytes("cached")));
    auto size = co_await c->Get(Bytes("key"), value);
    EXPECT_TRUE(size.has_value());
    out->assign(reinterpret_cast<const char*>(value.data()), *size);
  }(&client, &got));
  engine_.RunUntil(sim::Millis(5));
  server->Stop();
  EXPECT_EQ(got, "cached");
  EXPECT_EQ(server->stats().hits, 1u);
}

TEST_F(MemcachedTest, MissReported) {
  MemcachedServer* server = MakeServer();
  MemcachedClient client(*server, *client_node_, 0);
  server->Start();
  bool checked = false;
  engine_.Spawn([](MemcachedClient* c, bool* out) -> sim::Task<void> {
    std::vector<std::byte> value(64);
    EXPECT_FALSE((co_await c->Get(Bytes("ghost"), value)).has_value());
    *out = true;
  }(&client, &checked));
  engine_.RunUntil(sim::Millis(5));
  server->Stop();
  EXPECT_TRUE(checked);
  EXPECT_EQ(server->stats().misses, 1u);
}

TEST_F(MemcachedTest, GlobalLruEvictsOldest) {
  MemcachedConfig config;
  config.capacity_items = 3;
  MemcachedServer* server = MakeServer(config);
  server->Preload(Bytes("a"), Bytes("1"));
  server->Preload(Bytes("b"), Bytes("2"));
  server->Preload(Bytes("c"), Bytes("3"));
  MemcachedClient client(*server, *client_node_, 0);
  server->Start();
  engine_.Spawn([](MemcachedClient* c) -> sim::Task<void> {
    std::vector<std::byte> value(64);
    // Touch "a" so "b" is the global LRU victim.
    EXPECT_TRUE((co_await c->Get(Bytes("a"), value)).has_value());
    EXPECT_TRUE(co_await c->Put(Bytes("d"), Bytes("4")));
    EXPECT_FALSE((co_await c->Get(Bytes("b"), value)).has_value());
    EXPECT_TRUE((co_await c->Get(Bytes("a"), value)).has_value());
    EXPECT_TRUE((co_await c->Get(Bytes("d"), value)).has_value());
  }(&client));
  engine_.RunUntil(sim::Millis(5));
  server->Stop();
  EXPECT_EQ(server->stats().evictions, 1u);
  EXPECT_EQ(server->size(), 3u);
}

TEST_F(MemcachedTest, RepeatedKeyHitsHotSet) {
  MemcachedServer* server = MakeServer();
  server->Preload(Bytes("hot"), Bytes("v"));
  MemcachedClient client(*server, *client_node_, 0);
  server->Start();
  engine_.Spawn([](MemcachedClient* c) -> sim::Task<void> {
    std::vector<std::byte> value(64);
    for (int i = 0; i < 20; ++i) {
      co_await c->Get(Bytes("hot"), value);
    }
  }(&client));
  engine_.RunUntil(sim::Millis(5));
  server->Stop();
  // First access installs the key; the remaining 19 hit the hot set.
  EXPECT_EQ(server->stats().hot_hits, 19u);
}

TEST_F(MemcachedTest, HotKeysAreServedFaster) {
  // CPU-cache locality model: repeated access to one key must have lower
  // latency than scattered access (drives the paper's Fig 19 behaviour).
  MemcachedConfig config;
  config.hot_set_size = 4;
  MemcachedServer* server = MakeServer(config);
  for (int i = 0; i < 200; ++i) {
    server->Preload(Bytes("key" + std::to_string(i)), Bytes("v"));
  }
  MemcachedClient hot_client(*server, *client_node_, 0);
  server->Start();

  sim::Time hot_elapsed = 0;
  sim::Time cold_elapsed = 0;
  engine_.Spawn([](sim::Engine& eng, MemcachedClient* c, sim::Time* hot,
                   sim::Time* cold) -> sim::Task<void> {
    std::vector<std::byte> value(64);
    sim::Time start = eng.now();
    for (int i = 0; i < 50; ++i) {
      co_await c->Get(Bytes("key0"), value);  // always the same key
    }
    *hot = eng.now() - start;
    start = eng.now();
    for (int i = 0; i < 50; ++i) {
      co_await c->Get(Bytes("key" + std::to_string(i * 4 + 1)), value);  // scattered
    }
    *cold = eng.now() - start;
  }(engine_, &hot_client, &hot_elapsed, &cold_elapsed));
  engine_.RunUntil(sim::Millis(50));
  server->Stop();
  EXPECT_LT(static_cast<double>(hot_elapsed), 0.75 * static_cast<double>(cold_elapsed));
}

TEST_F(MemcachedTest, SharedLockSerializesThreads) {
  // Two clients on two server threads: the shared cache lock means total
  // time exceeds what two independent partitions would take.
  MemcachedConfig config;
  config.server_threads = 2;
  config.get_cpu_ns = 100;     // make the lock the dominant cost
  config.get_lock_ns = 5000;
  MemcachedServer* server = MakeServer(config);
  server->Preload(Bytes("x"), Bytes("1"));
  MemcachedClient c1(*server, *client_node_, 0);
  rdma::Node* client_node2 = &fabric_.AddNode("client2");
  MemcachedClient c2(*server, *client_node2, 1);
  server->Start();

  int done = 0;
  auto driver = [](MemcachedClient* c, int* out) -> sim::Task<void> {
    std::vector<std::byte> value(64);
    for (int i = 0; i < 20; ++i) {
      co_await c->Get(Bytes("x"), value);
    }
    ++*out;
  };
  engine_.Spawn(driver(&c1, &done));
  engine_.Spawn(driver(&c2, &done));
  engine_.RunUntil(sim::Millis(50));
  server->Stop();
  EXPECT_EQ(done, 2);
  // 40 gets x 5 us lock hold = 200 us of serialized lock time minimum.
  EXPECT_GE(engine_.now(), sim::Micros(200));
}

}  // namespace
}  // namespace kv
