#include "src/kv/crc64.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace kv {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

TEST(Crc64Test, EmptyInputIsZero) {
  EXPECT_EQ(Crc64({}), 0u);
}

TEST(Crc64Test, KnownVector) {
  // CRC-64/XZ ("123456789") = 0x995DC9BBDF1939FA.
  EXPECT_EQ(Crc64(AsBytes("123456789")), 0x995DC9BBDF1939FAULL);
}

TEST(Crc64Test, Deterministic) {
  const std::string data = "remote fetching paradigm";
  EXPECT_EQ(Crc64(AsBytes(data)), Crc64(AsBytes(data)));
}

TEST(Crc64Test, SingleBitFlipChangesChecksum) {
  std::string data(256, 'a');
  const uint64_t base = Crc64(AsBytes(data));
  for (size_t i = 0; i < data.size(); i += 37) {
    std::string mutated = data;
    mutated[i] ^= 1;
    EXPECT_NE(Crc64(AsBytes(mutated)), base) << "flip at " << i;
  }
}

TEST(Crc64Test, DistinguishesKeyValueSplits) {
  // The torn-read detector must tell [k1|v1] from [k1|v2].
  EXPECT_NE(Crc64(AsBytes("key1value1")), Crc64(AsBytes("key1value2")));
}

TEST(Crc64Test, ChainingMatchesConcatenation) {
  const std::string a = "hello ";
  const std::string b = "world";
  const uint64_t chained = Crc64(AsBytes(b), Crc64(AsBytes(a)));
  EXPECT_EQ(chained, Crc64(AsBytes("hello world")));
}

}  // namespace
}  // namespace kv
