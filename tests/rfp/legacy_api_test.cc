#include "src/rfp/legacy_api.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace rfp {
namespace {

// The paper's Figure 8(a): implementing a key-value GET at the client with
// the Table 2 primitives — send the request, fetch the result. This test
// pins that calling convention end to end.
TEST(LegacyApiTest, Table2CallingConventionRoundTrips) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");

  Channel channel(fabric, client_node, server_node, RfpOptions{});
  Endpoint client_ep(client_node);
  Endpoint server_ep(server_node);
  const int kServerId = 0;
  const int kClientId = 0;
  client_ep.Bind(kServerId, &channel);
  server_ep.Bind(kClientId, &channel);

  // Server actor: poll with server_recv, answer with server_send.
  engine.Spawn([](sim::Engine& eng, Endpoint& ep) -> sim::Task<void> {
    BufferPool::Buffer buf = malloc_buf(ep, 4096);
    int served = 0;
    while (served < 2) {
      size_t n = 0;
      if (server_recv(ep, 0, buf, &n)) {
        // "process": uppercase in place.
        for (size_t i = 0; i < n; ++i) {
          buf.bytes[i] = static_cast<std::byte>(
              std::toupper(static_cast<unsigned char>(std::to_integer<char>(buf.bytes[i]))));
        }
        co_await eng.Sleep(sim::Nanos(300));
        co_await server_send(ep, 0, buf, n);
        ++served;
      } else {
        co_await eng.Sleep(sim::Nanos(200));
      }
    }
    free_buf(ep, buf);
  }(engine, server_ep));

  // Client actor: exactly the paper's GET stub shape.
  std::string first;
  std::string second;
  engine.Spawn([](Endpoint& ep, std::string* out1, std::string* out2) -> sim::Task<void> {
    BufferPool::Buffer r_buf = malloc_buf(ep, 4096);
    const char* msg1 = "get key alpha";
    std::memcpy(r_buf.bytes.data(), msg1, std::strlen(msg1));
    co_await client_send(ep, 0, r_buf, std::strlen(msg1));
    size_t size = co_await client_recv(ep, 0, r_buf);
    out1->assign(reinterpret_cast<const char*>(r_buf.bytes.data()), size);

    const char* msg2 = "get key beta";
    std::memcpy(r_buf.bytes.data(), msg2, std::strlen(msg2));
    co_await client_send(ep, 0, r_buf, std::strlen(msg2));
    size = co_await client_recv(ep, 0, r_buf);
    out2->assign(reinterpret_cast<const char*>(r_buf.bytes.data()), size);
    free_buf(ep, r_buf);
  }(client_ep, &first, &second));

  engine.RunUntil(sim::Millis(1));
  EXPECT_EQ(first, "GET KEY ALPHA");
  EXPECT_EQ(second, "GET KEY BETA");
}

TEST(LegacyApiTest, UnknownPeerIdThrows) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& node = fabric.AddNode("n");
  Endpoint ep(node);
  EXPECT_THROW(ep.channel(0), std::out_of_range);
  EXPECT_THROW(ep.Bind(-1, nullptr), std::invalid_argument);
}

TEST(LegacyApiTest, BuffersComeFromTheRegisteredPool) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& node = fabric.AddNode("n");
  Endpoint ep(node);
  BufferPool::Buffer buf = malloc_buf(ep, 128);
  EXPECT_TRUE(buf.valid());
  EXPECT_EQ(fabric.FindRemote(buf.mr->remote_key()), buf.mr);
  free_buf(ep, buf);
  BufferPool::Buffer again = malloc_buf(ep, 128);
  EXPECT_EQ(again.mr, buf.mr);  // recycled registration
}

}  // namespace
}  // namespace rfp
