#include "src/rfp/options.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"

namespace rfp {
namespace {

TEST(OptionsValidationTest, DefaultsAreValid) {
  EXPECT_NO_THROW(ValidateOptions(RfpOptions{}));
  EXPECT_NO_THROW(ValidateOptions(ServerOptions{}));
}

TEST(OptionsValidationTest, RejectsBadChannelCoreOptions) {
  for (auto mutate : {
           +[](RfpOptions& o) { o.retry_threshold = -1; },
           +[](RfpOptions& o) { o.fetch_size = 0; },
           +[](RfpOptions& o) { o.slow_calls_before_switch = 0; },
           +[](RfpOptions& o) { o.fast_calls_before_switch_back = 0; },
           +[](RfpOptions& o) { o.max_message_bytes = 0; },
           +[](RfpOptions& o) { o.reply_poll_interval_ns = 0; },
       }) {
    RfpOptions options;
    mutate(options);
    EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
  }
}

TEST(OptionsValidationTest, RejectsBadPipelineOptions) {
  for (auto mutate : {
           +[](RfpOptions& o) { o.window = 0; },
           +[](RfpOptions& o) { o.window = -1; },
           +[](RfpOptions& o) { o.window = kMaxWindow + 1; },
           +[](RfpOptions& o) { o.max_registered_bytes = 0; },
           // Both rings must fit the registration budget.
           +[](RfpOptions& o) {
             o.window = kMaxWindow;
             o.max_registered_bytes = 64 * 1024;
           },
       }) {
    RfpOptions options;
    mutate(options);
    EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
  }
  {
    RfpOptions options;
    options.window = kMaxWindow;  // fits the default 2 MB budget
    EXPECT_NO_THROW(ValidateOptions(options));
  }
}

TEST(OptionsValidationTest, RejectsBadFaultToleranceOptions) {
  for (auto mutate : {
           +[](RfpOptions& o) { o.fetch_timeout_ns = -1; },
           +[](RfpOptions& o) { o.fetch_backoff_initial_ns = -1; },
           +[](RfpOptions& o) { o.fetch_backoff_max_ns = -1; },
           +[](RfpOptions& o) { o.corrupt_fetches_before_reissue = 0; },
           +[](RfpOptions& o) { o.max_reconnect_attempts = -1; },
           +[](RfpOptions& o) { o.reconnect_delay_ns = -1; },
           +[](RfpOptions& o) { o.max_reissue_attempts = 0; },
       }) {
    RfpOptions options;
    mutate(options);
    EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
  }
}

TEST(OptionsValidationTest, RejectsBadOverloadOptions) {
  for (auto mutate : {
           +[](RfpOptions& o) { o.call_deadline_ns = -1; },
           +[](RfpOptions& o) { o.breaker_window = 0; },
           +[](RfpOptions& o) { o.breaker_failure_rate = 0.0; },
           +[](RfpOptions& o) { o.breaker_failure_rate = 1.5; },
           +[](RfpOptions& o) { o.breaker_failure_rate = -0.5; },
           +[](RfpOptions& o) { o.breaker_open_ns = -1; },
           +[](RfpOptions& o) { o.busy_backoff_max_ns = -1; },
           +[](RfpOptions& o) { o.overload_override_calls = -1; },
       }) {
    RfpOptions options;
    mutate(options);
    EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
  }
  {
    // NaN must not slip through the (0, 1] comparison.
    RfpOptions options;
    options.breaker_failure_rate = std::nan("");
    EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
  }
}

TEST(OptionsValidationTest, RejectsBadServerOptions) {
  for (auto mutate : {
           +[](ServerOptions& o) { o.max_message_bytes = 0; },
           +[](ServerOptions& o) { o.dispatch_cpu_ns = -1; },
           +[](ServerOptions& o) { o.straggler_prob = -0.1; },
           +[](ServerOptions& o) { o.straggler_prob = 1.1; },
           +[](ServerOptions& o) { o.straggler_extra_ns = -1; },
           +[](ServerOptions& o) { o.poll_cpu_per_channel_ns = -1; },
           +[](ServerOptions& o) { o.idle_sleep_ns = 0; },  // would wedge the sim
           +[](ServerOptions& o) { o.copy_cpu_ns_per_byte = -0.01; },
           +[](ServerOptions& o) { o.admission_budget = 0; },
           +[](ServerOptions& o) { o.overload_hi_watermark_ns = -1; },
           +[](ServerOptions& o) { o.overload_lo_watermark_ns = -1; },
           +[](ServerOptions& o) { o.process_ewma_alpha = 0.0; },
           +[](ServerOptions& o) { o.process_ewma_alpha = 1.5; },
           +[](ServerOptions& o) { o.shed_cpu_ns = -1; },
       }) {
    ServerOptions options;
    mutate(options);
    EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
  }
}

TEST(OptionsValidationTest, RejectsInvertedWatermarks) {
  ServerOptions options;
  options.overload_hi_watermark_ns = 5000;
  options.overload_lo_watermark_ns = 10000;  // lo > hi
  EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
  options.overload_lo_watermark_ns = 5000;  // lo == hi is allowed
  EXPECT_NO_THROW(ValidateOptions(options));
}

TEST(OptionsValidationTest, ConstructorsFailLoudly) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& client = fabric.AddNode("client");
  rdma::Node& server = fabric.AddNode("server");

  RfpOptions bad_channel;
  bad_channel.breaker_failure_rate = 2.0;
  EXPECT_THROW(Channel(fabric, client, server, bad_channel), std::invalid_argument);

  ServerOptions bad_server;
  bad_server.overload_lo_watermark_ns = bad_server.overload_hi_watermark_ns + 1;
  EXPECT_THROW(RpcServer(fabric, server, 2, bad_server), std::invalid_argument);

  // The error message names the layer, mirroring "rdma config: ...".
  try {
    RpcServer srv(fabric, server, 2, bad_server);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("rfp options"), std::string::npos) << e.what();
  }
}

// The pool-cap cross-check: window x slot ring footprint is validated
// against the node's registered-memory cap up front, instead of surfacing
// later as an opaque mem::ExhaustedError mid-AcceptChannel.
TEST(OptionsValidationTest, RejectsRingsThatOverflowThePoolCap) {
  // Cap 0 = unbounded: anything the base validation accepts passes.
  EXPECT_NO_THROW(ValidateOptions(RfpOptions{}, /*pool_cap_bytes=*/0, "server"));

  // Default rings (~16.5 KB) cannot fit a 4 KB cap; the message must name
  // the node and say what to do about it.
  try {
    ValidateOptions(RfpOptions{}, /*pool_cap_bytes=*/4096, "server");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("server"), std::string::npos) << what;
    EXPECT_NE(what.find("shrink window or max_message_bytes"), std::string::npos) << what;
  }
}

TEST(OptionsValidationTest, ChannelRejectsRingFootprintOverNodeCapUpFront) {
  // A 16 MiB node cap (exactly one pool arena) with a window x message-size
  // combination whose rings need ~19 MB. The channel constructor must reject
  // with the actionable message, not let the pool throw ExhaustedError.
  rdma::FabricConfig config;
  config.nic.mem_max_registered_bytes = size_t{16} << 20;
  sim::Engine engine;
  rdma::Fabric fabric(engine, config);
  rdma::Node& client = fabric.AddNode("client");
  rdma::Node& server = fabric.AddNode("server");

  RfpOptions options;
  options.window = 32;
  options.max_message_bytes = 300'000;
  options.max_registered_bytes = 64u << 20;  // channel's own budget is fine
  try {
    Channel channel(fabric, client, server, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("mem_max_registered_bytes"), std::string::npos)
        << e.what();
  }

  // The same cap with default-sized rings is fine.
  EXPECT_NO_THROW(Channel(fabric, client, server, RfpOptions{}));
}

}  // namespace
}  // namespace rfp
