// Multi-core server dispatch (docs/multicore.md): worker/core pinning via
// rdma::Node::ReserveWorkerCore, work stealing around worker crashes and
// restarts, doorbell-batched reply publication, coalesced fetch sweeps, the
// backlog-derived BUSY retry hint without admission control, and pipelined
// latency accounting across slot reuse.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace rfp {
namespace {

constexpr uint16_t kEcho = 1;

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

void RegisterEcho(RpcServer& server) {
  server.RegisterHandler(kEcho, [](const HandlerContext&, std::span<const std::byte> req,
                                   std::span<std::byte> resp) {
    std::memcpy(resp.data(), req.data(), req.size());
    return HandlerResult{req.size(), sim::Nanos(300)};
  });
}

// Sequential call loop; bumps *done after every completed call.
sim::Task<void> CallLoop(Channel* channel, int calls, uint64_t* done) {
  RpcClient client(channel);
  std::vector<std::byte> resp(16384);
  for (int i = 0; i < calls; ++i) {
    co_await client.Call(kEcho, AsBytes("payload-" + std::to_string(i)), resp);
    ++*done;
  }
}

class MulticoreTest : public ::testing::Test {
 protected:
  MulticoreTest() {
    rdma::FabricConfig fc;
    fc.nic.cores = 4;
    fc.nic.nic_station_cores = 2;
    fabric_ = std::make_unique<rdma::Fabric>(engine_, fc);
    server_node_ = &fabric_->AddNode("server");
    client_node_ = &fabric_->AddNode("client");
  }

  sim::Engine engine_;
  std::unique_ptr<rdma::Fabric> fabric_;
  rdma::Node* server_node_ = nullptr;
  rdma::Node* client_node_ = nullptr;
};

// Workers pin round-robin over the compute range [nic_station_cores, cores),
// never onto the cores reserved for the NIC stations; with more workers than
// compute cores they time-share. Legacy servers report no pinning.
TEST_F(MulticoreTest, WorkersPinAboveNicStationCores) {
  ServerOptions so;
  so.multicore = true;
  RpcServer server(*fabric_, *server_node_, 4, so);
  EXPECT_EQ(server.thread_core(0), 2);
  EXPECT_EQ(server.thread_core(1), 3);
  EXPECT_EQ(server.thread_core(2), 2);  // wrapped: shares core 2 with worker 0
  EXPECT_EQ(server.thread_core(3), 3);

  RpcServer legacy(*fabric_, *server_node_, 2);
  EXPECT_EQ(legacy.thread_core(0), -1);
  EXPECT_EQ(legacy.thread_core(1), -1);
}

// Two pinned workers each sweep their own channels and all traffic
// completes; CPU flows through the per-core resources, so the worker cores
// show utilization while the NIC-station cores stay clear of sweep work.
TEST_F(MulticoreTest, MulticoreSweepServesAcrossWorkers) {
  ServerOptions so;
  so.multicore = true;
  RpcServer server(*fabric_, *server_node_, 2, so);
  RegisterEcho(server);
  Channel* ch0 = server.AcceptChannel(*client_node_, RfpOptions{}, 0);
  Channel* ch1 = server.AcceptChannel(*client_node_, RfpOptions{}, 1);
  server.Start();
  uint64_t done0 = 0;
  uint64_t done1 = 0;
  engine_.Spawn(CallLoop(ch0, 50, &done0));
  engine_.Spawn(CallLoop(ch1, 50, &done1));
  engine_.RunUntil(sim::Millis(10));
  server.Stop();
  EXPECT_EQ(done0, 50u);
  EXPECT_EQ(done1, 50u);
  EXPECT_GT(server.requests_served_by(0), 0u);
  EXPECT_GT(server.requests_served_by(1), 0u);
  // Sweep CPU ran on the pinned compute cores, not the NIC-station cores.
  EXPECT_GT(server_node_->cpus().CoreUtilization(2, 0, engine_.now()), 0.0);
  EXPECT_GT(server_node_->cpus().CoreUtilization(3, 0, engine_.now()), 0.0);
  EXPECT_EQ(server_node_->cpus().CoreUtilization(0, 0, engine_.now()), 0.0);
  EXPECT_EQ(server_node_->cpus().CoreUtilization(1, 0, engine_.now()), 0.0);
}

// Crash one of two workers mid-traffic: the survivor claims the orphaned
// channel and serves it (the dark window lasts sweeps, not the outage), and
// after restart the crashed worker steals its way back into the rotation.
TEST_F(MulticoreTest, CrashedWorkerChannelsAreStolenServedAndRejoinAfterRestart) {
  ServerOptions so;
  so.multicore = true;
  so.steal_min_backlog = 1;  // single-call channels: any pending request is worth stealing
  RpcServer server(*fabric_, *server_node_, 2, so);
  RegisterEcho(server);
  Channel* ch0 = server.AcceptChannel(*client_node_, RfpOptions{}, 0);
  Channel* ch1 = server.AcceptChannel(*client_node_, RfpOptions{}, 1);
  server.Start();
  uint64_t done0 = 0;
  uint64_t done1 = 0;
  engine_.Spawn(CallLoop(ch0, 200, &done0));
  engine_.Spawn(CallLoop(ch1, 200, &done1));
  engine_.ScheduleAt(sim::Micros(20), [&server] { server.CrashThread(0); });
  uint64_t served_by_0_at_restart = 0;
  engine_.ScheduleAt(sim::Micros(200), [&server, &served_by_0_at_restart] {
    served_by_0_at_restart = server.requests_served_by(0);
    server.RestartThread(0);
  });
  engine_.RunUntil(sim::Millis(20));
  server.Stop();
  // All traffic completed despite the crash — no client-visible failures.
  EXPECT_EQ(done0, 200u);
  EXPECT_EQ(done1, 200u);
  // The survivor claimed the orphaned channel...
  EXPECT_GE(server.channel_steals(), 1u);
  EXPECT_GE(server.thread_steals(1), 1u);
  // ...and the restarted worker stole its way back to serving.
  EXPECT_GT(server.requests_served_by(0), served_by_0_at_restart);
}

// With multicore batch_reply_publication, a visit that completes a window of
// reply-mode slots publishes them in one doorbell batch instead of one WRITE
// posting per slot.
TEST_F(MulticoreTest, BatchedReplyPublicationCoalescesDoorbells) {
  ServerOptions so;
  so.multicore = true;  // batch_reply_publication defaults on
  RpcServer server(*fabric_, *server_node_, 1, so);
  RegisterEcho(server);
  RfpOptions opts;
  opts.window = 4;
  opts.force_mode = RfpOptions::ForceMode::kForceReply;
  Channel* ch = server.AcceptChannel(*client_node_, opts, 0);
  server.Start();
  engine_.Spawn([](Channel* channel) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<Channel::CallHandle> handles;
    for (int i = 0; i < 4; ++i) {
      handles.push_back(co_await client.SubmitCall(kEcho, AsBytes("m" + std::to_string(i))));
    }
    std::vector<std::byte> out(16384);
    for (int i = 0; i < 4; ++i) {
      const size_t got = co_await client.AwaitCall(handles[static_cast<size_t>(i)], out);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), got),
                "m" + std::to_string(i));
    }
  }(ch));
  engine_.RunUntil(sim::Millis(5));
  server.Stop();
  EXPECT_EQ(ch->stats().reply_pushes, 4u);
  // One doorbell batch for the client's submit burst, at least one for the
  // server's deferred reply publication.
  EXPECT_GE(ch->stats().doorbell_batches, 2u);
  EXPECT_GE(ch->stats().batched_ops, 4u);
}

// Coalesced fetch: with >= 2 slots awaiting responses, a sweep issues one
// spanning READ over the pending span instead of one READ per slot, and the
// payloads still come back intact per slot.
TEST_F(MulticoreTest, CoalescedFetchSpansPendingSlots) {
  ServerOptions so;
  so.multicore = true;
  RpcServer server(*fabric_, *server_node_, 1, so);
  RegisterEcho(server);
  RfpOptions opts;
  opts.window = 4;
  opts.coalesced_fetch = true;
  opts.force_mode = RfpOptions::ForceMode::kForceFetch;
  Channel* ch = server.AcceptChannel(*client_node_, opts, 0);
  server.Start();
  engine_.Spawn([](Channel* channel) -> sim::Task<void> {
    RpcClient client(channel);
    for (int round = 0; round < 5; ++round) {
      std::vector<Channel::CallHandle> handles;
      for (int i = 0; i < 4; ++i) {
        handles.push_back(co_await client.SubmitCall(
            kEcho, AsBytes("r" + std::to_string(round) + "-m" + std::to_string(i))));
      }
      std::vector<std::byte> out(16384);
      for (int i = 0; i < 4; ++i) {
        const size_t got = co_await client.AwaitCall(handles[static_cast<size_t>(i)], out);
        EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), got),
                  "r" + std::to_string(round) + "-m" + std::to_string(i));
      }
    }
  }(ch));
  engine_.RunUntil(sim::Millis(10));
  server.Stop();
  EXPECT_GE(ch->stats().coalesced_fetches, 1u);
  EXPECT_GE(ch->stats().coalesced_slots, 2u);
}

// The BUSY(deadline) retry hint must reflect the backlog even when
// admission_control is off: deadline shedding is live on its own, and the
// old hard-coded 1 us hint told clients to retry straight into the backlog.
TEST_F(MulticoreTest, DeadlineShedHintReflectsBacklogWithoutAdmissionControl) {
  ServerOptions so;
  so.dispatch_cpu_ns = 2000;  // per-request floor: 4 pending => 8 us of work
  ASSERT_FALSE(so.admission_control);
  RpcServer server(*fabric_, *server_node_, 1, so);
  RegisterEcho(server);
  RfpOptions opts;
  opts.window = 4;
  opts.force_mode = RfpOptions::ForceMode::kForceFetch;
  opts.call_deadline_ns = 1;  // dead on arrival: every request is shed
  Channel* ch = server.AcceptChannel(*client_node_, opts, 0);
  server.Start();
  engine_.Spawn([](Channel* channel) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<Channel::CallHandle> handles;
    for (int i = 0; i < 4; ++i) {
      handles.push_back(co_await client.SubmitCall(kEcho, AsBytes("doomed")));
    }
    std::vector<std::byte> out(16384);
    for (int i = 0; i < 4; ++i) {
      try {
        (void)co_await client.AwaitCall(handles[static_cast<size_t>(i)], out);
      } catch (const DeadlineExceeded&) {
      }
    }
  }(ch));
  engine_.RunUntil(sim::Millis(5));
  server.Stop();
  EXPECT_GE(server.requests_shed_deadline(), 1u);
  // Backlog-derived hint: >= 2 us (4 pending x 2 us each), never the
  // hard-coded 1 us the bug produced with admission control off.
  EXPECT_GE(ch->last_retry_after_us(), 2);
}

// Pipelined latency accounting across slot reuse: a slot's submit timestamp
// must be overwritten on resubmit, so a call staged into a recycled slot
// after a long idle gap reports its own latency, not the gap.
TEST_F(MulticoreTest, AwaitCallLatencyCorrectAcrossSlotReuse) {
  RpcServer server(*fabric_, *server_node_, 1);
  RegisterEcho(server);
  RfpOptions opts;
  opts.window = 2;
  Channel* ch = server.AcceptChannel(*client_node_, opts, 0);
  server.Start();
  sim::Histogram latencies;
  engine_.Spawn([](sim::Engine& eng, Channel* channel, sim::Histogram* out) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(16384);
    // Out-of-order await across both slots.
    const Channel::CallHandle a = co_await client.SubmitCall(kEcho, AsBytes("a"));
    const Channel::CallHandle b = co_await client.SubmitCall(kEcho, AsBytes("b"));
    (void)co_await client.AwaitCall(b, resp);
    (void)co_await client.AwaitCall(a, resp);
    // Long idle gap, then resubmit into the recycled slots: the gap must not
    // leak into the new calls' latency.
    co_await eng.Sleep(sim::Millis(2));
    const Channel::CallHandle c = co_await client.SubmitCall(kEcho, AsBytes("c"));
    (void)co_await client.AwaitCall(c, resp);
    *out = client.latency();
  }(engine_, ch, &latencies));
  engine_.RunUntil(sim::Millis(10));
  server.Stop();
  EXPECT_EQ(latencies.count(), 3u);
  EXPECT_LT(latencies.max(), sim::Millis(1));
}

// Per-worker overload detectors: only the loaded worker's watermark machine
// trips; its neighbor on the other core stays clear.
TEST_F(MulticoreTest, OverloadStateIsPerWorkerUnderMulticore) {
  ServerOptions so;
  so.multicore = true;
  so.admission_control = true;
  so.dispatch_cpu_ns = 2000;
  so.overload_hi_watermark_ns = 4000;
  so.overload_lo_watermark_ns = 1000;
  so.admission_budget = 1;
  RpcServer server(*fabric_, *server_node_, 2, so);
  RegisterEcho(server);
  RfpOptions opts;
  opts.window = 8;
  opts.force_mode = RfpOptions::ForceMode::kForceFetch;
  Channel* hot = server.AcceptChannel(*client_node_, opts, 0);
  server.Start();
  engine_.Spawn([](Channel* channel) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<Channel::CallHandle> handles;
    for (int i = 0; i < 8; ++i) {
      handles.push_back(co_await client.SubmitCall(kEcho, AsBytes("burst")));
    }
    std::vector<std::byte> out(16384);
    for (int i = 0; i < 8; ++i) {
      (void)co_await client.AwaitCall(handles[static_cast<size_t>(i)], out);
    }
  }(hot));
  engine_.RunUntil(sim::Millis(5));
  server.Stop();
  EXPECT_GE(server.overload_enters(), 1u);
  EXPECT_GE(server.requests_shed_admission(), 1u);
  // The idle worker never tripped its detector.
  EXPECT_FALSE(server.thread_overloaded(1));
}

}  // namespace
}  // namespace rfp
