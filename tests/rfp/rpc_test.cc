#include "src/rfp/rpc.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace rfp {
namespace {

constexpr uint16_t kEcho = 1;
constexpr uint16_t kUpper = 2;
constexpr uint16_t kSlow = 3;

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : server_node_(&fabric_.AddNode("server")) {}

  RpcServer* MakeServer(int threads) {
    server_ = std::make_unique<RpcServer>(fabric_, *server_node_, threads);
    server_->RegisterHandler(kEcho, [](const HandlerContext&, std::span<const std::byte> req,
                                       std::span<std::byte> resp) {
      std::memcpy(resp.data(), req.data(), req.size());
      return HandlerResult{req.size(), sim::Nanos(300)};
    });
    server_->RegisterHandler(kUpper, [](const HandlerContext&, std::span<const std::byte> req,
                                        std::span<std::byte> resp) {
      for (size_t i = 0; i < req.size(); ++i) {
        resp[i] = static_cast<std::byte>(
            std::toupper(static_cast<unsigned char>(std::to_integer<char>(req[i]))));
      }
      return HandlerResult{req.size(), sim::Nanos(300)};
    });
    server_->RegisterHandler(kSlow, [](const HandlerContext&, std::span<const std::byte> req,
                                       std::span<std::byte> resp) {
      std::memcpy(resp.data(), req.data(), req.size());
      return HandlerResult{req.size(), sim::Micros(20)};
    });
    return server_.get();
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node* server_node_;
  std::unique_ptr<RpcServer> server_;
};

TEST_F(RpcTest, SingleCallRoundTrip) {
  RpcServer* server = MakeServer(1);
  rdma::Node& client_node = fabric_.AddNode("client");
  Channel* ch = server->AcceptChannel(client_node, RfpOptions{}, 0);
  server->Start();

  std::string got;
  engine_.Spawn([](Channel* channel, std::string* out) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    size_t n = co_await client.Call(kUpper, AsBytes("hello rfp"), resp);
    out->assign(reinterpret_cast<const char*>(resp.data()), n);
  }(ch, &got));
  engine_.RunUntil(sim::Millis(5));
  server->Stop();
  EXPECT_EQ(got, "HELLO RFP");
  EXPECT_EQ(server->requests_served(), 1u);
}

TEST_F(RpcTest, MultipleClientsAcrossThreads) {
  RpcServer* server = MakeServer(2);
  const int clients = 6;
  const int calls = 25;
  std::vector<Channel*> channels;
  for (int i = 0; i < clients; ++i) {
    rdma::Node& node = fabric_.AddNode("client" + std::to_string(i));
    channels.push_back(server->AcceptChannel(node, RfpOptions{}, i % 2));
  }
  server->Start();

  int completed = 0;
  for (int i = 0; i < clients; ++i) {
    engine_.Spawn([](Channel* channel, int id, int n, int* done) -> sim::Task<void> {
      RpcClient client(channel);
      std::vector<std::byte> resp(1024);
      for (int k = 0; k < n; ++k) {
        std::string msg = "c" + std::to_string(id) + "-m" + std::to_string(k);
        size_t got = co_await client.Call(kEcho, AsBytes(msg), resp);
        EXPECT_EQ(std::string(reinterpret_cast<const char*>(resp.data()), got), msg);
      }
      ++*done;
    }(channels[static_cast<size_t>(i)], i, calls, &completed));
  }
  engine_.RunUntil(sim::Millis(50));
  server->Stop();
  EXPECT_EQ(completed, clients);
  EXPECT_EQ(server->requests_served(), static_cast<uint64_t>(clients * calls));
  // EREW: each thread served only its own channels.
  EXPECT_EQ(server->requests_served_by(0) + server->requests_served_by(1),
            server->requests_served());
  EXPECT_GT(server->requests_served_by(0), 0u);
  EXPECT_GT(server->requests_served_by(1), 0u);
}

TEST_F(RpcTest, HandlerProcessTimeVisibleInResponseHeader) {
  RpcServer* server = MakeServer(1);
  rdma::Node& client_node = fabric_.AddNode("client");
  Channel* ch = server->AcceptChannel(client_node, RfpOptions{}, 0);
  server->Start();

  engine_.Spawn([](Channel* channel) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    co_await client.Call(kSlow, AsBytes("x"), resp);
  }(ch));
  engine_.RunUntil(sim::Millis(5));
  server->Stop();
  EXPECT_GE(ch->last_server_time_us(), 20);
  EXPECT_LE(ch->last_server_time_us(), 23);
}

TEST_F(RpcTest, SlowHandlerDrivesChannelToReplyMode) {
  RpcServer* server = MakeServer(1);
  rdma::Node& client_node = fabric_.AddNode("client");
  Channel* ch = server->AcceptChannel(client_node, RfpOptions{}, 0);
  server->Start();

  engine_.Spawn([](Channel* channel) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    for (int i = 0; i < 5; ++i) {
      co_await client.Call(kSlow, AsBytes("x"), resp);
    }
  }(ch));
  engine_.RunUntil(sim::Millis(5));
  server->Stop();
  EXPECT_EQ(ch->client_mode(), Mode::kServerReply);
}

// A request for an unregistered rpc id must not kill the sweep actor: it is
// a counted drop, and the server keeps serving well-formed traffic on its
// other channels for the rest of the run.
TEST_F(RpcTest, UnknownRpcIdIsCountedDropNotFatal) {
  RpcServer* server = MakeServer(1);
  rdma::Node& client_node = fabric_.AddNode("client");
  Channel* bad = server->AcceptChannel(client_node, RfpOptions{}, 0);
  Channel* good = server->AcceptChannel(client_node, RfpOptions{}, 0);
  server->Start();
  engine_.Spawn([](Channel* channel) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    // The drop means no response ever lands; the call just stays pending
    // until the run ends.
    co_await client.Call(999, AsBytes("x"), resp);
  }(bad));
  uint64_t good_calls = 0;
  engine_.Spawn([](Channel* channel, uint64_t* out) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    for (int i = 0; i < 20; ++i) {
      co_await client.Call(kEcho, AsBytes("payload"), resp);
    }
    *out = client.calls();
  }(good, &good_calls));
  EXPECT_NO_THROW(engine_.RunUntil(sim::Millis(5)));
  server->Stop();
  EXPECT_EQ(server->malformed_requests(), 1u);
  EXPECT_EQ(good_calls, 20u);
}

// A runt request (shorter than the rpc id) is likewise dropped and counted,
// not thrown out of ServeLoop.
TEST_F(RpcTest, RuntRequestIsCountedDropNotFatal) {
  RpcServer* server = MakeServer(1);
  rdma::Node& client_node = fabric_.AddNode("client");
  Channel* bad = server->AcceptChannel(client_node, RfpOptions{}, 0);
  Channel* good = server->AcceptChannel(client_node, RfpOptions{}, 0);
  server->Start();
  engine_.Spawn([](Channel* channel) -> sim::Task<void> {
    // Below RpcClient: a raw one-byte frame, shorter than the uint16 rpc id.
    const std::byte runt{0x7f};
    co_await channel->SubmitCall(std::span<const std::byte>(&runt, 1), {});
    co_await channel->FlushCalls();
  }(bad));
  uint64_t good_calls = 0;
  engine_.Spawn([](Channel* channel, uint64_t* out) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    for (int i = 0; i < 20; ++i) {
      co_await client.Call(kEcho, AsBytes("payload"), resp);
    }
    *out = client.calls();
  }(good, &good_calls));
  EXPECT_NO_THROW(engine_.RunUntil(sim::Millis(5)));
  server->Stop();
  EXPECT_EQ(server->malformed_requests(), 1u);
  EXPECT_EQ(good_calls, 20u);
}

// Worker trace-track ids must be distinct across servers and threads; the
// old this-pointer-plus-thread scheme let server A's thread k alias server
// B's thread 0 whenever the heap laid the objects k bytes apart.
TEST_F(RpcTest, WorkerTrackIdsAreDistinctAcrossServersAndThreads) {
  RpcServer* a = MakeServer(2);
  rdma::Node& other = fabric_.AddNode("server2");
  RpcServer b(fabric_, other, 2);
  const uint64_t ids[] = {a->worker_track_id(0), a->worker_track_id(1),
                          b.worker_track_id(0), b.worker_track_id(1)};
  for (size_t i = 0; i < std::size(ids); ++i) {
    for (size_t j = i + 1; j < std::size(ids); ++j) {
      EXPECT_NE(ids[i], ids[j]) << "i=" << i << " j=" << j;
    }
  }
}

TEST_F(RpcTest, LatencyHistogramPopulated) {
  RpcServer* server = MakeServer(1);
  rdma::Node& client_node = fabric_.AddNode("client");
  Channel* ch = server->AcceptChannel(client_node, RfpOptions{}, 0);
  server->Start();
  sim::Histogram latencies;
  engine_.Spawn([](Channel* channel, sim::Histogram* out) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    for (int i = 0; i < 30; ++i) {
      co_await client.Call(kEcho, AsBytes("payload"), resp);
    }
    *out = client.latency();
  }(ch, &latencies));
  engine_.RunUntil(sim::Millis(10));
  server->Stop();
  EXPECT_EQ(latencies.count(), 30u);
  // Echo with 0.3 us process time: latency in the single-digit microseconds.
  EXPECT_GT(latencies.mean(), 2000.0);
  EXPECT_LT(latencies.mean(), 10000.0);
}

TEST_F(RpcTest, OversizedChannelRejectedAtAccept) {
  RpcServer* server = MakeServer(1);
  rdma::Node& client_node = fabric_.AddNode("client");
  RfpOptions big;
  big.max_message_bytes = ServerOptions{}.max_message_bytes + 1;
  // Dispatch buffers are fixed-size; a channel that could outgrow them must
  // be rejected up front, not corrupt memory later.
  EXPECT_THROW(server->AcceptChannel(client_node, big, 0), std::invalid_argument);
}

TEST_F(RpcTest, ChannelsAcceptedMidRunAreServed) {
  RpcServer* server = MakeServer(1);
  rdma::Node& first_node = fabric_.AddNode("client0");
  Channel* first = server->AcceptChannel(first_node, RfpOptions{}, 0);
  server->Start();

  int first_done = 0;
  int late_done = 0;
  engine_.Spawn([](Channel* channel, int* done) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    for (int i = 0; i < 50; ++i) {
      co_await client.Call(kEcho, AsBytes("early"), resp);
    }
    ++*done;
  }(first, &first_done));

  // A second client joins while the serve loop is live (exercises the
  // suspension-safe channel iteration).
  rdma::Node& late_node = fabric_.AddNode("client1");
  engine_.ScheduleAt(sim::Micros(50), [&] {
    Channel* late = server->AcceptChannel(late_node, RfpOptions{}, 0);
    engine_.Spawn([](Channel* channel, int* done) -> sim::Task<void> {
      RpcClient client(channel);
      std::vector<std::byte> resp(1024);
      for (int i = 0; i < 50; ++i) {
        size_t n = co_await client.Call(kEcho, AsBytes("late"), resp);
        EXPECT_EQ(std::string(reinterpret_cast<const char*>(resp.data()), n), "late");
      }
      ++*done;
    }(late, &late_done));
  });

  engine_.RunUntil(sim::Millis(10));
  server->Stop();
  EXPECT_EQ(first_done, 1);
  EXPECT_EQ(late_done, 1);
}

}  // namespace
}  // namespace rfp
