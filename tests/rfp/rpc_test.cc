#include "src/rfp/rpc.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace rfp {
namespace {

constexpr uint16_t kEcho = 1;
constexpr uint16_t kUpper = 2;
constexpr uint16_t kSlow = 3;

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : server_node_(&fabric_.AddNode("server")) {}

  RpcServer* MakeServer(int threads) {
    server_ = std::make_unique<RpcServer>(fabric_, *server_node_, threads);
    server_->RegisterHandler(kEcho, [](const HandlerContext&, std::span<const std::byte> req,
                                       std::span<std::byte> resp) {
      std::memcpy(resp.data(), req.data(), req.size());
      return HandlerResult{req.size(), sim::Nanos(300)};
    });
    server_->RegisterHandler(kUpper, [](const HandlerContext&, std::span<const std::byte> req,
                                        std::span<std::byte> resp) {
      for (size_t i = 0; i < req.size(); ++i) {
        resp[i] = static_cast<std::byte>(
            std::toupper(static_cast<unsigned char>(std::to_integer<char>(req[i]))));
      }
      return HandlerResult{req.size(), sim::Nanos(300)};
    });
    server_->RegisterHandler(kSlow, [](const HandlerContext&, std::span<const std::byte> req,
                                       std::span<std::byte> resp) {
      std::memcpy(resp.data(), req.data(), req.size());
      return HandlerResult{req.size(), sim::Micros(20)};
    });
    return server_.get();
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node* server_node_;
  std::unique_ptr<RpcServer> server_;
};

TEST_F(RpcTest, SingleCallRoundTrip) {
  RpcServer* server = MakeServer(1);
  rdma::Node& client_node = fabric_.AddNode("client");
  Channel* ch = server->AcceptChannel(client_node, RfpOptions{}, 0);
  server->Start();

  std::string got;
  engine_.Spawn([](Channel* channel, std::string* out) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    size_t n = co_await client.Call(kUpper, AsBytes("hello rfp"), resp);
    out->assign(reinterpret_cast<const char*>(resp.data()), n);
  }(ch, &got));
  engine_.RunUntil(sim::Millis(5));
  server->Stop();
  EXPECT_EQ(got, "HELLO RFP");
  EXPECT_EQ(server->requests_served(), 1u);
}

TEST_F(RpcTest, MultipleClientsAcrossThreads) {
  RpcServer* server = MakeServer(2);
  const int clients = 6;
  const int calls = 25;
  std::vector<Channel*> channels;
  for (int i = 0; i < clients; ++i) {
    rdma::Node& node = fabric_.AddNode("client" + std::to_string(i));
    channels.push_back(server->AcceptChannel(node, RfpOptions{}, i % 2));
  }
  server->Start();

  int completed = 0;
  for (int i = 0; i < clients; ++i) {
    engine_.Spawn([](Channel* channel, int id, int n, int* done) -> sim::Task<void> {
      RpcClient client(channel);
      std::vector<std::byte> resp(1024);
      for (int k = 0; k < n; ++k) {
        std::string msg = "c" + std::to_string(id) + "-m" + std::to_string(k);
        size_t got = co_await client.Call(kEcho, AsBytes(msg), resp);
        EXPECT_EQ(std::string(reinterpret_cast<const char*>(resp.data()), got), msg);
      }
      ++*done;
    }(channels[static_cast<size_t>(i)], i, calls, &completed));
  }
  engine_.RunUntil(sim::Millis(50));
  server->Stop();
  EXPECT_EQ(completed, clients);
  EXPECT_EQ(server->requests_served(), static_cast<uint64_t>(clients * calls));
  // EREW: each thread served only its own channels.
  EXPECT_EQ(server->requests_served_by(0) + server->requests_served_by(1),
            server->requests_served());
  EXPECT_GT(server->requests_served_by(0), 0u);
  EXPECT_GT(server->requests_served_by(1), 0u);
}

TEST_F(RpcTest, HandlerProcessTimeVisibleInResponseHeader) {
  RpcServer* server = MakeServer(1);
  rdma::Node& client_node = fabric_.AddNode("client");
  Channel* ch = server->AcceptChannel(client_node, RfpOptions{}, 0);
  server->Start();

  engine_.Spawn([](Channel* channel) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    co_await client.Call(kSlow, AsBytes("x"), resp);
  }(ch));
  engine_.RunUntil(sim::Millis(5));
  server->Stop();
  EXPECT_GE(ch->last_server_time_us(), 20);
  EXPECT_LE(ch->last_server_time_us(), 23);
}

TEST_F(RpcTest, SlowHandlerDrivesChannelToReplyMode) {
  RpcServer* server = MakeServer(1);
  rdma::Node& client_node = fabric_.AddNode("client");
  Channel* ch = server->AcceptChannel(client_node, RfpOptions{}, 0);
  server->Start();

  engine_.Spawn([](Channel* channel) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    for (int i = 0; i < 5; ++i) {
      co_await client.Call(kSlow, AsBytes("x"), resp);
    }
  }(ch));
  engine_.RunUntil(sim::Millis(5));
  server->Stop();
  EXPECT_EQ(ch->client_mode(), Mode::kServerReply);
}

TEST_F(RpcTest, UnknownRpcIdFailsLoudly) {
  RpcServer* server = MakeServer(1);
  rdma::Node& client_node = fabric_.AddNode("client");
  Channel* ch = server->AcceptChannel(client_node, RfpOptions{}, 0);
  server->Start();
  engine_.Spawn([](Channel* channel) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    co_await client.Call(999, AsBytes("x"), resp);
  }(ch));
  EXPECT_THROW(engine_.RunUntil(sim::Millis(5)), std::runtime_error);
}

TEST_F(RpcTest, LatencyHistogramPopulated) {
  RpcServer* server = MakeServer(1);
  rdma::Node& client_node = fabric_.AddNode("client");
  Channel* ch = server->AcceptChannel(client_node, RfpOptions{}, 0);
  server->Start();
  sim::Histogram latencies;
  engine_.Spawn([](Channel* channel, sim::Histogram* out) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    for (int i = 0; i < 30; ++i) {
      co_await client.Call(kEcho, AsBytes("payload"), resp);
    }
    *out = client.latency();
  }(ch, &latencies));
  engine_.RunUntil(sim::Millis(10));
  server->Stop();
  EXPECT_EQ(latencies.count(), 30u);
  // Echo with 0.3 us process time: latency in the single-digit microseconds.
  EXPECT_GT(latencies.mean(), 2000.0);
  EXPECT_LT(latencies.mean(), 10000.0);
}

TEST_F(RpcTest, OversizedChannelRejectedAtAccept) {
  RpcServer* server = MakeServer(1);
  rdma::Node& client_node = fabric_.AddNode("client");
  RfpOptions big;
  big.max_message_bytes = ServerOptions{}.max_message_bytes + 1;
  // Dispatch buffers are fixed-size; a channel that could outgrow them must
  // be rejected up front, not corrupt memory later.
  EXPECT_THROW(server->AcceptChannel(client_node, big, 0), std::invalid_argument);
}

TEST_F(RpcTest, ChannelsAcceptedMidRunAreServed) {
  RpcServer* server = MakeServer(1);
  rdma::Node& first_node = fabric_.AddNode("client0");
  Channel* first = server->AcceptChannel(first_node, RfpOptions{}, 0);
  server->Start();

  int first_done = 0;
  int late_done = 0;
  engine_.Spawn([](Channel* channel, int* done) -> sim::Task<void> {
    RpcClient client(channel);
    std::vector<std::byte> resp(1024);
    for (int i = 0; i < 50; ++i) {
      co_await client.Call(kEcho, AsBytes("early"), resp);
    }
    ++*done;
  }(first, &first_done));

  // A second client joins while the serve loop is live (exercises the
  // suspension-safe channel iteration).
  rdma::Node& late_node = fabric_.AddNode("client1");
  engine_.ScheduleAt(sim::Micros(50), [&] {
    Channel* late = server->AcceptChannel(late_node, RfpOptions{}, 0);
    engine_.Spawn([](Channel* channel, int* done) -> sim::Task<void> {
      RpcClient client(channel);
      std::vector<std::byte> resp(1024);
      for (int i = 0; i < 50; ++i) {
        size_t n = co_await client.Call(kEcho, AsBytes("late"), resp);
        EXPECT_EQ(std::string(reinterpret_cast<const char*>(resp.data()), n), "late");
      }
      ++*done;
    }(late, &late_done));
  });

  engine_.RunUntil(sim::Millis(10));
  server->Stop();
  EXPECT_EQ(first_done, 1);
  EXPECT_EQ(late_done, 1);
}

}  // namespace
}  // namespace rfp
