// Overload-protection behavior: admission shedding, deadline propagation,
// the client circuit breaker, and the overload override of the R-based
// paradigm switch. See docs/overload.md; the full open-loop degradation
// sweep lives in bench/bench_ext_overload.cc.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace rfp {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

// ---- Admission control through the real RpcServer sweep ----------------------

struct ClusterCounts {
  uint64_t completed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t mismatches = 0;
};

sim::Task<void> ClosedLoopDriver(RpcClient* client, int calls, ClusterCounts* counts) {
  std::vector<std::byte> req(8, std::byte{0x5a});
  std::vector<std::byte> resp(256);
  for (int i = 0; i < calls; ++i) {
    req[0] = static_cast<std::byte>(i);
    try {
      const size_t got = co_await client->Call(1, req, resp);
      ++counts->completed;
      if (got != req.size() || std::memcmp(resp.data(), req.data(), got) != 0) {
        ++counts->mismatches;
      }
    } catch (const DeadlineExceeded&) {
      ++counts->deadline_exceeded;
    }
  }
}

TEST(OverloadTest, AdmissionControlShedsAndRequestsStillComplete) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");

  ServerOptions server_options;
  server_options.admission_control = true;
  server_options.admission_budget = 1;
  // est-work >= one dispatch (150 ns) trips the detector: any pending
  // request beyond the budget is shed while another is in flight.
  server_options.overload_hi_watermark_ns = 1;
  server_options.overload_lo_watermark_ns = 0;
  RpcServer server(fabric, server_node, 1, server_options);
  server.RegisterHandler(1, [](const HandlerContext&, std::span<const std::byte> req,
                               std::span<std::byte> resp) -> HandlerResult {
    std::memcpy(resp.data(), req.data(), req.size());
    return HandlerResult{req.size(), sim::Micros(5)};
  });

  constexpr int kChannels = 4;
  constexpr int kCallsPerChannel = 5;
  std::vector<Channel*> channels;
  std::vector<std::unique_ptr<RpcClient>> stubs;
  ClusterCounts counts;
  for (int c = 0; c < kChannels; ++c) {
    channels.push_back(server.AcceptChannel(client_node, RfpOptions{}, 0));
    stubs.push_back(std::make_unique<RpcClient>(channels.back()));
  }
  server.Start();
  for (int c = 0; c < kChannels; ++c) {
    engine.Spawn(ClosedLoopDriver(stubs[static_cast<size_t>(c)].get(), kCallsPerChannel, &counts));
  }
  engine.RunUntil(sim::Millis(50));
  server.Stop();

  // No client set a deadline, so every shed request was retried after the
  // BUSY backoff until it was admitted: nothing is lost, nothing corrupted.
  EXPECT_EQ(counts.completed, static_cast<uint64_t>(kChannels * kCallsPerChannel));
  EXPECT_EQ(counts.deadline_exceeded, 0u);
  EXPECT_EQ(counts.mismatches, 0u);

  // With 4 channels competing for a budget of 1, the sweep had to shed.
  EXPECT_GT(server.requests_shed_admission(), 0u);
  EXPECT_EQ(server.requests_shed_deadline(), 0u);
  EXPECT_GE(server.overload_enters(), 1u);

  uint64_t busy = 0;
  uint64_t shed_admission = 0;
  for (Channel* ch : channels) {
    busy += ch->stats().busy_responses;
    shed_admission += ch->stats().shed_admission;
  }
  EXPECT_EQ(busy, server.requests_shed_admission());
  EXPECT_EQ(shed_admission, server.requests_shed_admission());
}

TEST(OverloadTest, ExpiredRequestIsShedBeforeDispatch) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");

  // Deadline shedding is independent of admission_control: default server.
  RpcServer server(fabric, server_node, 1, ServerOptions{});
  server.RegisterHandler(1, [](const HandlerContext&, std::span<const std::byte> req,
                               std::span<std::byte> resp) -> HandlerResult {
    std::memcpy(resp.data(), req.data(), req.size());
    // Long enough that a request queued behind it expires first.
    return HandlerResult{req.size(), sim::Micros(50)};
  });

  Channel* slow = server.AcceptChannel(client_node, RfpOptions{}, 0);
  RfpOptions deadline_options;
  deadline_options.call_deadline_ns = sim::Micros(10);
  Channel* expiring = server.AcceptChannel(client_node, deadline_options, 0);
  RpcClient slow_stub(slow);
  RpcClient expiring_stub(expiring);
  server.Start();

  ClusterCounts slow_counts;
  ClusterCounts expiring_counts;
  engine.Spawn(ClosedLoopDriver(&slow_stub, 1, &slow_counts));
  engine.Spawn([](sim::Engine& eng, RpcClient* stub, ClusterCounts* counts) -> sim::Task<void> {
    // Land the second request while the first is mid-handler; its 10 us
    // deadline expires ~40 us before the sweep reaches it.
    co_await eng.Sleep(sim::Micros(2));
    co_await ClosedLoopDriver(stub, 1, counts);
  }(engine, &expiring_stub, &expiring_counts));
  engine.RunUntil(sim::Millis(5));
  server.Stop();

  EXPECT_EQ(slow_counts.completed, 1u);
  EXPECT_EQ(expiring_counts.completed, 0u);
  EXPECT_EQ(expiring_counts.deadline_exceeded, 1u);
  EXPECT_EQ(server.requests_shed_deadline(), 1u);
  EXPECT_EQ(expiring->stats().shed_deadline, 1u);
  // The client abandoned the call at its own deadline (~12 us) before the
  // server's BUSY(deadline) header was even published (~52 us), so it never
  // *observed* a busy response — the shed is booked server-side only.
  EXPECT_EQ(expiring->stats().busy_responses, 0u);
}

// ---- Client-side deadline against a dark server -------------------------------

TEST(OverloadTest, ClientDeadlineFiresWhenServerNeverAnswers) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& client_node = fabric.AddNode("client");
  rdma::Node& server_node = fabric.AddNode("server");

  RfpOptions options;
  options.call_deadline_ns = sim::Micros(20);
  Channel channel(fabric, client_node, server_node, options);

  bool threw = false;
  sim::Time threw_at = 0;
  engine.Spawn([](sim::Engine& eng, Channel* ch, bool* out_threw,
                  sim::Time* out_at) -> sim::Task<void> {
    std::vector<std::byte> out(256);
    co_await ch->ClientSend(AsBytes("ping"));
    try {
      co_await ch->ClientRecv(out);
    } catch (const DeadlineExceeded&) {
      *out_threw = true;
      *out_at = eng.now();
    }
  }(engine, &channel, &threw, &threw_at));
  engine.RunUntil(sim::Millis(2));

  // Nobody ever serves the request: the fetch loop must give up at the
  // deadline instead of spinning forever (crashed-server composition).
  EXPECT_TRUE(threw);
  EXPECT_GE(threw_at, sim::Micros(20));
  EXPECT_LT(threw_at, sim::Micros(40));
}

// ---- Circuit breaker ----------------------------------------------------------

// Server actor over a raw channel: sheds the first `shed_first` requests
// with BUSY(admission), then echoes.
sim::Task<void> SheddingServer(sim::Engine& eng, Channel* ch, int shed_first, int serve,
                               uint16_t retry_after_us) {
  std::vector<std::byte> buf(1024);
  int shed = 0;
  int served = 0;
  while (served < serve) {
    size_t n = 0;
    if (ch->TryServerRecv(buf, &n)) {
      if (shed < shed_first) {
        ++shed;
        co_await ch->ServerSendBusy(BusyReason::kAdmission, retry_after_us);
      } else {
        co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
        ++served;
      }
    } else {
      co_await eng.Sleep(sim::Nanos(200));
    }
  }
}

TEST(OverloadTest, BreakerOpensOnBusyBurstAndRecloses) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& client_node = fabric.AddNode("client");
  rdma::Node& server_node = fabric.AddNode("server");

  RfpOptions options;
  options.breaker_enabled = true;
  options.breaker_window = 4;
  options.breaker_failure_rate = 0.5;
  options.breaker_open_ns = sim::Micros(30);
  Channel channel(fabric, client_node, server_node, options);

  // 6 sheds then 3 served calls: the BUSY burst fills the 4-outcome window
  // with failures (opens the breaker), the successes close it again.
  engine.Spawn(SheddingServer(engine, &channel, /*shed_first=*/6, /*serve=*/3,
                              /*retry_after_us=*/2));
  int completed = 0;
  engine.Spawn([](Channel* ch, int* done) -> sim::Task<void> {
    std::vector<std::byte> out(256);
    for (int i = 0; i < 3; ++i) {
      co_await ch->ClientSend(AsBytes("payload"));
      const size_t got = co_await ch->ClientRecv(out);
      EXPECT_EQ(got, 7u);
      ++*done;
    }
  }(&channel, &completed));
  engine.RunUntil(sim::Millis(10));

  EXPECT_EQ(completed, 3);
  EXPECT_GE(channel.stats().breaker_opens, 1u);
  EXPECT_EQ(channel.stats().busy_responses, 6u);
  // The successful tail re-closed it.
  EXPECT_EQ(channel.breaker_state(), Channel::BreakerState::kClosed);
}

TEST(OverloadTest, BusyReplyReachesForcedReplyClient) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& client_node = fabric.AddNode("client");
  rdma::Node& server_node = fabric.AddNode("server");

  // Server-reply mode: the BUSY header is *pushed* to the client's landing
  // block instead of being fetched — the other half of the shed protocol.
  RfpOptions options;
  options.force_mode = RfpOptions::ForceMode::kForceReply;
  Channel channel(fabric, client_node, server_node, options);

  engine.Spawn(SheddingServer(engine, &channel, /*shed_first=*/2, /*serve=*/2,
                              /*retry_after_us=*/1));
  int completed = 0;
  engine.Spawn([](Channel* ch, int* done) -> sim::Task<void> {
    std::vector<std::byte> out(256);
    for (int i = 0; i < 2; ++i) {
      co_await ch->ClientSend(AsBytes("payload"));
      const size_t got = co_await ch->ClientRecv(out);
      EXPECT_EQ(got, 7u);
      ++*done;
    }
  }(&channel, &completed));
  engine.RunUntil(sim::Millis(10));

  EXPECT_EQ(completed, 2);
  EXPECT_EQ(channel.stats().busy_responses, 2u);
  EXPECT_EQ(channel.stats().reply_pushes, 2u + 2u);  // 2 BUSY headers + 2 results
}

// ---- Overload override of the R-based switch ----------------------------------

// One BUSY, then `serve` slow echoes whose process time exceeds the fetch
// retry budget — the classic switch-to-reply trigger.
int SwitchesAfterBusyThenSlow(int override_calls) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& client_node = fabric.AddNode("client");
  rdma::Node& server_node = fabric.AddNode("server");

  RfpOptions options;
  options.overload_override_calls = override_calls;
  Channel channel(fabric, client_node, server_node, options);

  constexpr int kServe = 6;
  engine.Spawn([](sim::Engine& eng, Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> buf(1024);
    int shed = 1;
    int served = 0;
    while (served < kServe) {
      if (ch->NeedsReplyResend()) {
        co_await ch->MaybeResendAfterSwitch();
      }
      size_t n = 0;
      if (ch->TryServerRecv(buf, &n)) {
        if (shed > 0) {
          --shed;
          co_await ch->ServerSendBusy(BusyReason::kAdmission, 1);
        } else {
          co_await eng.Sleep(sim::Micros(15));  // slow: many failed fetches
          co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
          ++served;
        }
      } else {
        co_await eng.Sleep(sim::Nanos(200));
      }
    }
  }(engine, &channel));
  engine.Spawn([](Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> out(256);
    for (int i = 0; i < kServe; ++i) {
      co_await ch->ClientSend(AsBytes("x"));
      co_await ch->ClientRecv(out);
    }
  }(&channel));
  engine.RunUntil(sim::Millis(20));
  return static_cast<int>(channel.stats().switches_to_reply);
}

TEST(OverloadTest, BusyResponseSuppressesSwitchToReply) {
  // Control: with the override disabled, two slow calls after the BUSY trip
  // the hysteresis and the channel falls back to server-reply.
  EXPECT_GE(SwitchesAfterBusyThenSlow(/*override_calls=*/0), 1);
  // Override: the BUSY pins remote fetching for the next 8 calls — the six
  // slow calls of this run never switch, sparing the server the out-bound
  // WRITE per response exactly while it is saturated.
  EXPECT_EQ(SwitchesAfterBusyThenSlow(/*override_calls=*/8), 0);
}

// ---- Graceful degradation (mini version of bench_ext_overload) ----------------

struct MiniOutcome {
  uint64_t completed = 0;
  uint64_t shed = 0;
  sim::Time max_latency = 0;  // scheduled arrival -> completion
  uint64_t served = 0;
  uint64_t shed_server = 0;
};

// Open-loop driver as in the bench: fixed arrival schedule, latency charged
// from the scheduled arrival, dead-on-arrival requests shed client-side
// when a deadline is configured.
sim::Task<void> OpenLoopDriver(sim::Engine& eng, RpcClient* client, sim::Time interarrival,
                               sim::Time first, sim::Time deadline, sim::Time until,
                               MiniOutcome* out) {
  std::vector<std::byte> req(8, std::byte{0x42});
  std::vector<std::byte> resp(256);
  sim::Time scheduled = first;
  while (scheduled < until) {
    if (eng.now() < scheduled) {
      co_await eng.Sleep(scheduled - eng.now());
    }
    if (deadline > 0 && eng.now() >= scheduled + deadline) {
      ++out->shed;
      scheduled += interarrival;
      continue;
    }
    try {
      co_await client->Call(1, req, resp);
      ++out->completed;
      if (eng.now() - scheduled > out->max_latency) {
        out->max_latency = eng.now() - scheduled;
      }
    } catch (const DeadlineExceeded&) {
      ++out->shed;
    }
    scheduled += interarrival;
  }
}

MiniOutcome RunMiniOverload(bool protect, uint64_t seed) {
  sim::Engine engine;
  rdma::FabricConfig fc;
  fc.seed = seed;
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");

  ServerOptions server_options;
  server_options.admission_control = protect;
  if (protect) {
    server_options.overload_hi_watermark_ns = sim::Micros(15);
    server_options.overload_lo_watermark_ns = sim::Micros(5);
  }
  RpcServer server(fabric, server_node, 1, server_options);
  server.RegisterHandler(1, [](const HandlerContext&, std::span<const std::byte> req,
                               std::span<std::byte> resp) -> HandlerResult {
    std::memcpy(resp.data(), req.data(), req.size());
    return HandlerResult{req.size(), sim::Micros(10)};
  });

  RfpOptions options;
  if (protect) {
    options.call_deadline_ns = sim::Micros(150);
    options.breaker_enabled = true;
  }

  constexpr int kChannels = 8;
  // ~0.095 Mops capacity (10 us process + dispatch), ~0.28 Mops offered.
  const sim::Time interarrival = sim::Micros(28);
  const sim::Time until = sim::Millis(20);
  std::vector<std::unique_ptr<RpcClient>> stubs;
  std::vector<MiniOutcome> outs(kChannels);
  for (int c = 0; c < kChannels; ++c) {
    stubs.push_back(std::make_unique<RpcClient>(server.AcceptChannel(client_node, options, 0)));
  }
  server.Start();
  for (int c = 0; c < kChannels; ++c) {
    engine.Spawn(OpenLoopDriver(engine, stubs[static_cast<size_t>(c)].get(), interarrival,
                                interarrival * c / kChannels, options.call_deadline_ns, until,
                                &outs[static_cast<size_t>(c)]));
  }
  engine.RunUntil(until);
  server.Stop();

  MiniOutcome total;
  for (const MiniOutcome& o : outs) {
    total.completed += o.completed;
    total.shed += o.shed;
    if (o.max_latency > total.max_latency) {
      total.max_latency = o.max_latency;
    }
  }
  total.served = server.requests_served();
  total.shed_server = server.requests_shed_admission() + server.requests_shed_deadline();
  return total;
}

TEST(OverloadTest, GracefulDegradationAtThreeTimesSaturation) {
  const MiniOutcome protected_run = RunMiniOverload(/*protect=*/true, /*seed=*/13);
  const MiniOutcome unprotected_run = RunMiniOverload(/*protect=*/false, /*seed=*/13);

  // Both keep the server busy: the protected run serves within 15% of the
  // unprotected one (shedding costs a little capacity, never most of it).
  EXPECT_GT(protected_run.completed, 0u);
  EXPECT_GE(static_cast<double>(protected_run.completed),
            0.85 * static_cast<double>(unprotected_run.completed));

  // The protected run sheds the excess explicitly and bounds the latency of
  // what it admits (deadline + one service time + issue slack)...
  EXPECT_GT(protected_run.shed, 0u);
  EXPECT_LT(protected_run.max_latency, sim::Micros(400));
  // ...while the unprotected run sheds nothing and lets queueing delay grow
  // toward the length of the run.
  EXPECT_EQ(unprotected_run.shed, 0u);
  EXPECT_EQ(unprotected_run.shed_server, 0u);
  EXPECT_GT(unprotected_run.max_latency, sim::Millis(1));
}

TEST(OverloadTest, OverloadRunsAreDeterministic) {
  const MiniOutcome a = RunMiniOverload(/*protect=*/true, /*seed=*/99);
  const MiniOutcome b = RunMiniOverload(/*protect=*/true, /*seed=*/99);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.shed_server, b.shed_server);
}

}  // namespace
}  // namespace rfp
