#include "src/rfp/buffer.h"

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"

namespace rfp {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node& node_{fabric_.AddNode("n0")};
};

TEST_F(BufferPoolTest, MallocReturnsUsableRegisteredMemory) {
  BufferPool pool(node_);
  BufferPool::Buffer buf = pool.MallocBuf(100);
  ASSERT_TRUE(buf.valid());
  EXPECT_EQ(buf.bytes.size(), 100u);
  EXPECT_GE(buf.mr->size(), 100u);
  // The region is registered: it resolves fabric-wide by rkey.
  EXPECT_EQ(fabric_.FindRemote(buf.mr->remote_key()), buf.mr);
}

TEST_F(BufferPoolTest, FreeThenMallocReusesRegion) {
  BufferPool pool(node_);
  BufferPool::Buffer a = pool.MallocBuf(100);
  rdma::MemoryRegion* mr = a.mr;
  pool.FreeBuf(a);
  BufferPool::Buffer b = pool.MallocBuf(90);  // same 128-byte size class
  EXPECT_EQ(b.mr, mr);
  EXPECT_EQ(pool.registrations(), 1u);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST_F(BufferPoolTest, DifferentSizeClassesDoNotMix) {
  BufferPool pool(node_);
  BufferPool::Buffer small = pool.MallocBuf(100);
  pool.FreeBuf(small);
  BufferPool::Buffer large = pool.MallocBuf(1000);
  EXPECT_NE(large.mr, small.mr);
  EXPECT_EQ(pool.registrations(), 2u);
}

TEST_F(BufferPoolTest, SizesRoundUpToPowerOfTwo) {
  BufferPool pool(node_);
  BufferPool::Buffer buf = pool.MallocBuf(33);
  EXPECT_EQ(buf.mr->size(), 64u);
  BufferPool::Buffer exact = pool.MallocBuf(64);
  EXPECT_EQ(exact.mr->size(), 64u);
}

TEST_F(BufferPoolTest, ZeroSizeAllocationsWork) {
  BufferPool pool(node_);
  BufferPool::Buffer buf = pool.MallocBuf(0);
  EXPECT_TRUE(buf.valid());
}

TEST_F(BufferPoolTest, FreeingInvalidBufferThrows) {
  BufferPool pool(node_);
  EXPECT_THROW(pool.FreeBuf(BufferPool::Buffer{}), std::invalid_argument);
}

}  // namespace
}  // namespace rfp
