#include "src/rfp/buffer.h"

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"

namespace rfp {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node& node_{fabric_.AddNode("n0")};
};

TEST_F(BufferPoolTest, MallocReturnsUsableRegisteredMemory) {
  BufferPool pool(node_);
  BufferPool::Buffer buf = pool.MallocBuf(100);
  ASSERT_TRUE(buf.valid());
  EXPECT_EQ(buf.bytes.size(), 100u);
  EXPECT_GE(buf.mr->size(), 100u);
  // The region is registered: it resolves fabric-wide by rkey.
  EXPECT_EQ(fabric_.FindRemote(buf.mr->remote_key()), buf.mr);
}

TEST_F(BufferPoolTest, FreeThenMallocReusesRegion) {
  BufferPool pool(node_);
  BufferPool::Buffer a = pool.MallocBuf(100);
  const size_t offset = a.span.offset;
  rdma::MemoryRegion* mr = a.mr;
  pool.FreeBuf(a);
  BufferPool::Buffer b = pool.MallocBuf(90);  // same 128-byte size class
  EXPECT_EQ(b.mr, mr);
  EXPECT_EQ(b.span.offset, offset);  // the freed chunk itself came back
  EXPECT_EQ(pool.registrations(), 1u);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST_F(BufferPoolTest, DifferentSizeClassesDoNotMix) {
  BufferPool pool(node_);
  BufferPool::Buffer small = pool.MallocBuf(100);
  const size_t small_offset = small.span.offset;
  pool.FreeBuf(small);
  // The freed 128-byte chunk is not handed out for a 1024-byte request —
  // but both classes draw from the same registered arena (the whole point
  // of the pool: no second registration).
  BufferPool::Buffer large = pool.MallocBuf(1000);
  EXPECT_NE(large.span.offset, small_offset);
  EXPECT_EQ(pool.registrations(), 1u);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST_F(BufferPoolTest, SizesRoundUpToPowerOfTwo) {
  BufferPool pool(node_);
  // 33 rounds up to the 64-byte class: freeing it and asking for exactly 64
  // hands the same chunk back.
  BufferPool::Buffer buf = pool.MallocBuf(33);
  const size_t offset = buf.span.offset;
  pool.FreeBuf(buf);
  BufferPool::Buffer exact = pool.MallocBuf(64);
  EXPECT_EQ(exact.span.offset, offset);
}

TEST_F(BufferPoolTest, ZeroSizeAllocationsWork) {
  BufferPool pool(node_);
  BufferPool::Buffer buf = pool.MallocBuf(0);
  EXPECT_TRUE(buf.valid());
}

TEST_F(BufferPoolTest, FreeingInvalidBufferThrows) {
  BufferPool pool(node_);
  EXPECT_THROW(pool.FreeBuf(BufferPool::Buffer{}), std::invalid_argument);
}

TEST_F(BufferPoolTest, PoolIsSharedAcrossConsumersOfOneNode) {
  BufferPool a(node_);
  BufferPool b(node_);
  BufferPool::Buffer from_a = a.MallocBuf(256);
  BufferPool::Buffer from_b = b.MallocBuf(256);
  // Same node => same mem::Pool => same backing arena MR.
  EXPECT_EQ(from_a.mr, from_b.mr);
  EXPECT_EQ(b.registrations(), 0u);  // a's arena served b
  EXPECT_EQ(b.reuses(), 1u);
}

}  // namespace
}  // namespace rfp
