#include "src/rfp/wire.h"

#include <cstring>

#include <gtest/gtest.h>

namespace rfp {
namespace {

TEST(WireTest, PackUnpackRoundTrips) {
  const uint32_t packed = wire::PackSizeStatus(12345, true);
  EXPECT_TRUE(wire::UnpackStatus(packed));
  EXPECT_EQ(wire::UnpackSize(packed), 12345u);
  const uint32_t unset = wire::PackSizeStatus(7, false);
  EXPECT_FALSE(wire::UnpackStatus(unset));
  EXPECT_EQ(wire::UnpackSize(unset), 7u);
}

TEST(WireTest, SizeUsesThirtyOneBits) {
  const uint32_t max_size = wire::kSizeMask;
  const uint32_t packed = wire::PackSizeStatus(max_size, false);
  EXPECT_EQ(wire::UnpackSize(packed), max_size);
  EXPECT_FALSE(wire::UnpackStatus(packed));
}

TEST(WireTest, HeaderSizesArePinned) {
  // The request header grew to 16 bytes for the propagated deadline;
  // responses keep the paper's 8-byte layout.
  EXPECT_EQ(sizeof(RequestHeader), 16u);
  EXPECT_EQ(sizeof(ResponseHeader), 8u);
  EXPECT_EQ(kHeaderBytes, 8u);
  EXPECT_EQ(kReqHeaderBytes, 16u);
}

TEST(WireTest, ModeByteOffsetMatchesLayout) {
  RequestHeader h;
  h.mode = 0xAB;
  const auto* raw = reinterpret_cast<const uint8_t*>(&h);
  EXPECT_EQ(raw[kRequestModeOffset], 0xAB);
}

TEST(WireTest, SlotByteOffsetMatchesLayout) {
  // The pipelining slot index rides the byte after the mode flag; window=1
  // traffic always carries slot 0 (the pre-pipelining wire image).
  RequestHeader h;
  h.slot = 0xC4;
  const auto* raw = reinterpret_cast<const uint8_t*>(&h);
  EXPECT_EQ(raw[kRequestSlotOffset], 0xC4);
  EXPECT_EQ(kRequestSlotOffset, kRequestModeOffset + 1);
  RequestHeader fresh;
  EXPECT_EQ(fresh.slot, 0);
}

TEST(WireTest, MaxWindowFitsTheSlotByte) {
  EXPECT_EQ(kMaxWindow, 64);
  static_assert(kMaxWindow <= 256, "slot index must fit its u8 wire field");
}

TEST(WireTest, DeadlineFieldOffsetMatchesLayout) {
  RequestHeader h;
  h.deadline_ns = 0x1122334455667788ull;
  uint64_t stored = 0;
  std::memcpy(&stored, reinterpret_cast<const uint8_t*>(&h) + 8, sizeof(stored));
  EXPECT_EQ(stored, 0x1122334455667788ull);
}

TEST(WireTest, BusyPackUnpackRoundTrips) {
  const uint32_t admission = wire::PackBusy(BusyReason::kAdmission);
  EXPECT_TRUE(wire::UnpackStatus(admission));  // BUSY is a ready response
  EXPECT_TRUE(wire::UnpackBusy(admission));
  EXPECT_EQ(wire::UnpackBusyReason(admission), BusyReason::kAdmission);
  const uint32_t deadline = wire::PackBusy(BusyReason::kDeadline);
  EXPECT_TRUE(wire::UnpackBusy(deadline));
  EXPECT_EQ(wire::UnpackBusyReason(deadline), BusyReason::kDeadline);
}

TEST(WireTest, OrdinaryResponsesAreNeverBusy) {
  // Payload sizes stay below bit 30 (max_message_bytes is ~8 KB), so a real
  // response can never alias the BUSY flag.
  EXPECT_FALSE(wire::UnpackBusy(wire::PackSizeStatus(12345, true)));
  EXPECT_FALSE(wire::UnpackBusy(wire::PackSizeStatus(0, false)));
}

TEST(WireTest, BusyReasonNames) {
  EXPECT_STREQ(BusyReasonName(BusyReason::kAdmission), "admission");
  EXPECT_STREQ(BusyReasonName(BusyReason::kDeadline), "deadline");
}

TEST(WireTest, TimeSaturatesAtSixteenBits) {
  EXPECT_EQ(SaturateTimeUs(0), 0);
  EXPECT_EQ(SaturateTimeUs(1500), 1);          // 1.5 us -> 1
  EXPECT_EQ(SaturateTimeUs(7'000), 7);
  EXPECT_EQ(SaturateTimeUs(65'535'000), 65535);
  EXPECT_EQ(SaturateTimeUs(1'000'000'000), 65535);  // 1 s saturates
  EXPECT_EQ(SaturateTimeUs(-5), 0);
}

TEST(WireTest, ModeNames) {
  EXPECT_STREQ(ModeName(Mode::kRemoteFetch), "remote-fetch");
  EXPECT_STREQ(ModeName(Mode::kServerReply), "server-reply");
}

}  // namespace
}  // namespace rfp
