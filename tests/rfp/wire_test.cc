#include "src/rfp/wire.h"

#include <gtest/gtest.h>

namespace rfp {
namespace {

TEST(WireTest, PackUnpackRoundTrips) {
  const uint32_t packed = wire::PackSizeStatus(12345, true);
  EXPECT_TRUE(wire::UnpackStatus(packed));
  EXPECT_EQ(wire::UnpackSize(packed), 12345u);
  const uint32_t unset = wire::PackSizeStatus(7, false);
  EXPECT_FALSE(wire::UnpackStatus(unset));
  EXPECT_EQ(wire::UnpackSize(unset), 7u);
}

TEST(WireTest, SizeUsesThirtyOneBits) {
  const uint32_t max_size = wire::kSizeMask;
  const uint32_t packed = wire::PackSizeStatus(max_size, false);
  EXPECT_EQ(wire::UnpackSize(packed), max_size);
  EXPECT_FALSE(wire::UnpackStatus(packed));
}

TEST(WireTest, HeadersAreEightBytes) {
  EXPECT_EQ(sizeof(RequestHeader), 8u);
  EXPECT_EQ(sizeof(ResponseHeader), 8u);
  EXPECT_EQ(kHeaderBytes, 8u);
}

TEST(WireTest, ModeByteOffsetMatchesLayout) {
  RequestHeader h;
  h.mode = 0xAB;
  const auto* raw = reinterpret_cast<const uint8_t*>(&h);
  EXPECT_EQ(raw[kRequestModeOffset], 0xAB);
}

TEST(WireTest, TimeSaturatesAtSixteenBits) {
  EXPECT_EQ(SaturateTimeUs(0), 0);
  EXPECT_EQ(SaturateTimeUs(1500), 1);          // 1.5 us -> 1
  EXPECT_EQ(SaturateTimeUs(7'000), 7);
  EXPECT_EQ(SaturateTimeUs(65'535'000), 65535);
  EXPECT_EQ(SaturateTimeUs(1'000'000'000), 65535);  // 1 s saturates
  EXPECT_EQ(SaturateTimeUs(-5), 0);
}

TEST(WireTest, ModeNames) {
  EXPECT_STREQ(ModeName(Mode::kRemoteFetch), "remote-fetch");
  EXPECT_STREQ(ModeName(Mode::kServerReply), "server-reply");
}

}  // namespace
}  // namespace rfp
