#include "src/rfp/ud_rpc.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace rfp {
namespace {

constexpr uint16_t kEcho = 1;

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

Handler EchoHandler() {
  return [](const HandlerContext&, std::span<const std::byte> req,
            std::span<std::byte> resp) -> HandlerResult {
    std::memcpy(resp.data(), req.data(), req.size());
    return HandlerResult{req.size(), sim::Nanos(300)};
  };
}

class UdRpcTest : public ::testing::Test {
 protected:
  explicit UdRpcTest(double loss = 0.0) {
    rdma::FabricConfig config;
    config.unreliable_loss_prob = loss;
    fabric_ = std::make_unique<rdma::Fabric>(engine_, config);
    server_node_ = &fabric_->AddNode("server");
    client_node_ = &fabric_->AddNode("client");
  }

  UdRpcServer* MakeServer(int threads = 1) {
    server_ = std::make_unique<UdRpcServer>(*fabric_, *server_node_, threads);
    server_->RegisterHandler(kEcho, EchoHandler());
    server_->Start();
    return server_.get();
  }

  sim::Engine engine_;
  std::unique_ptr<rdma::Fabric> fabric_;
  rdma::Node* server_node_ = nullptr;
  rdma::Node* client_node_ = nullptr;
  std::unique_ptr<UdRpcServer> server_;
};

TEST_F(UdRpcTest, LosslessEchoRoundTrip) {
  UdRpcServer* server = MakeServer();
  UdRpcClient client(*fabric_, *client_node_, server->address(0));
  std::string got;
  engine_.Spawn([](UdRpcClient* c, std::string* out) -> sim::Task<void> {
    std::vector<std::byte> resp(1024);
    size_t n = co_await c->Call(kEcho, AsBytes("datagram rpc"), resp);
    out->assign(reinterpret_cast<const char*>(resp.data()), n);
  }(&client, &got));
  engine_.RunUntil(sim::Millis(2));
  server->Stop();
  EXPECT_EQ(got, "datagram rpc");
  EXPECT_EQ(client.stats().retransmits, 0u);
  EXPECT_EQ(server->requests_served(), 1u);
}

TEST_F(UdRpcTest, ManySequentialCalls) {
  UdRpcServer* server = MakeServer(2);
  UdRpcClient c0(*fabric_, *client_node_, server->address(0));
  UdRpcClient c1(*fabric_, *client_node_, server->address(1));
  int done = 0;
  auto driver = [](UdRpcClient* c, int n, int* out) -> sim::Task<void> {
    std::vector<std::byte> resp(1024);
    for (int i = 0; i < n; ++i) {
      std::string msg = "m" + std::to_string(i);
      size_t got = co_await c->Call(kEcho, AsBytes(msg), resp);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(resp.data()), got), msg);
    }
    ++*out;
  };
  engine_.Spawn(driver(&c0, 50, &done));
  engine_.Spawn(driver(&c1, 50, &done));
  engine_.RunUntil(sim::Millis(10));
  server->Stop();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(server->requests_served(), 100u);
}

class LossyUdRpcTest : public UdRpcTest {
 protected:
  LossyUdRpcTest() : UdRpcTest(0.2) {}  // 20% loss each way
};

TEST_F(LossyUdRpcTest, RetransmitsRecoverFromHeavyLoss) {
  UdRpcServer* server = MakeServer();
  UdRpcClient client(*fabric_, *client_node_, server->address(0));
  int completed = 0;
  engine_.Spawn([](UdRpcClient* c, int* out) -> sim::Task<void> {
    std::vector<std::byte> resp(1024);
    for (int i = 0; i < 100; ++i) {
      std::string msg = "lossy" + std::to_string(i);
      size_t got = co_await c->Call(kEcho, AsBytes(msg), resp);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(resp.data()), got), msg);
      ++*out;
    }
  }(&client, &completed));
  engine_.RunUntil(sim::Millis(100));
  server->Stop();
  EXPECT_EQ(completed, 100);
  // With ~36% round-trip loss, retransmits are unavoidable.
  EXPECT_GT(client.stats().retransmits, 10u);
  EXPECT_EQ(client.stats().failures, 0u);
  // Duplicate replies (server re-served a retransmitted request whose first
  // reply also arrived) must have been filtered, not surfaced.
  // (count depends on timing; the assertion is that the calls above all
  // matched their own sequence numbers.)
}

TEST_F(LossyUdRpcTest, LatencyTailReflectsRetransmitTimeouts) {
  UdRpcServer* server = MakeServer();
  UdRpcClient client(*fabric_, *client_node_, server->address(0));
  engine_.Spawn([](UdRpcClient* c) -> sim::Task<void> {
    std::vector<std::byte> resp(1024);
    for (int i = 0; i < 200; ++i) {
      co_await c->Call(kEcho, AsBytes("x"), resp);
    }
  }(&client));
  engine_.RunUntil(sim::Millis(200));
  server->Stop();
  // Median is a clean round trip; the tail carries >= one 20 us timeout.
  EXPECT_LT(client.latency().Percentile(0.5), 10'000);
  EXPECT_GT(client.latency().Percentile(0.99), 20'000);
}

TEST(UdRpcTotalLossTest, CallFailsAfterMaxRetransmits) {
  sim::Engine engine;
  rdma::FabricConfig config;
  config.unreliable_loss_prob = 1.0;  // black hole
  rdma::Fabric fabric(engine, config);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");
  UdRpcServer server(fabric, server_node, 1);
  server.RegisterHandler(kEcho, EchoHandler());
  server.Start();
  UdRpcOptions options;
  options.max_retransmits = 3;
  options.retry_timeout_ns = 5'000;
  UdRpcClient client(fabric, client_node, server.address(0), options);
  engine.Spawn([](UdRpcClient* c) -> sim::Task<void> {
    std::vector<std::byte> resp(64);
    co_await c->Call(kEcho, AsBytes("void"), resp);
  }(&client));
  EXPECT_THROW(engine.RunUntil(sim::Millis(5)), std::runtime_error);
  EXPECT_EQ(client.stats().failures, 1u);
}

TEST(UdRpcLinkFaultTest, BudgetExhaustsUnderSustainedPairLossThenRecovers) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);  // no global loss: only the pair fault drops
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");
  UdRpcServer server(fabric, server_node, 1);
  server.RegisterHandler(kEcho, EchoHandler());
  server.Start();

  rdma::LinkFault burst;
  burst.loss_prob = 1.0;  // sustained black hole on this pair only
  fabric.SetLinkFault(server_node.id(), client_node.id(), burst);
  engine.ScheduleAt(sim::Micros(50),
                    [&] { fabric.ClearLinkFault(server_node.id(), client_node.id()); });

  UdRpcOptions options;
  options.retry_timeout_ns = 5'000;
  options.max_retransmits = 3;
  UdRpcClient client(fabric, client_node, server.address(0), options);
  bool first_failed = false;
  std::string second;
  engine.Spawn([](sim::Engine* eng, UdRpcClient* c, bool* failed,
                  std::string* out) -> sim::Task<void> {
    std::vector<std::byte> resp(64);
    try {
      co_await c->Call(kEcho, AsBytes("void"), resp);
    } catch (const std::runtime_error&) {
      *failed = true;  // budget exhausted: 1 send + 3 retransmits, all lost
    }
    co_await eng->Sleep(sim::Micros(100));  // outlive the burst
    const size_t n = co_await c->Call(kEcho, AsBytes("back"), resp);
    out->assign(reinterpret_cast<const char*>(resp.data()), n);
  }(&engine, &client, &first_failed, &second));
  engine.RunUntil(sim::Millis(2));
  server.Stop();

  EXPECT_TRUE(first_failed);
  EXPECT_EQ(client.stats().failures, 1u);
  EXPECT_EQ(client.stats().retransmits, 3u);
  // The same client works again once the burst clears: datagram transports
  // carry no connection state to repair.
  EXPECT_EQ(second, "back");
}

TEST(UdRpcDuplicateTest, LateOriginalReplyAfterRetransmitIsFiltered) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");
  UdRpcServer server(fabric, server_node, 1);
  server.RegisterHandler(kEcho, EchoHandler());
  server.Start();

  // Delay (not drop) the first exchange past the retry timeout: the client
  // retransmits, the server serves the request twice, and both replies
  // eventually arrive. The second one targets an already-completed sequence
  // and must be filtered, never surfaced as another call's response.
  rdma::LinkFault slow;
  slow.extra_delay_ns = sim::Micros(30);
  fabric.SetLinkFault(server_node.id(), client_node.id(), slow);
  engine.ScheduleAt(sim::Micros(25),
                    [&] { fabric.ClearLinkFault(server_node.id(), client_node.id()); });

  UdRpcClient client(fabric, client_node, server.address(0));  // 20 us retry timeout
  int correct = 0;
  engine.Spawn([](UdRpcClient* c, int* out) -> sim::Task<void> {
    std::vector<std::byte> resp(64);
    for (int i = 0; i < 10; ++i) {
      std::string msg = "dup" + std::to_string(i);
      const size_t n = co_await c->Call(kEcho, AsBytes(msg), resp);
      if (std::string(reinterpret_cast<const char*>(resp.data()), n) == msg) {
        ++*out;
      }
    }
  }(&client, &correct));
  engine.RunUntil(sim::Millis(2));
  server.Stop();

  EXPECT_EQ(correct, 10);  // every call matched its own sequence
  EXPECT_GE(client.stats().retransmits, 1u);
  EXPECT_GE(client.stats().duplicates, 1u);  // the late original reply
  EXPECT_EQ(client.stats().failures, 0u);
  EXPECT_GE(server.requests_served(), 11u);  // the duplicate was re-served
}

TEST(UdRpcBurstTest, RecvPoolOverflowDropsRequestsSilently) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  UdRpcOptions tiny;
  tiny.recv_pool = 1;  // overflow on any concurrency
  UdRpcServer server(fabric, server_node, 1, tiny);
  server.RegisterHandler(kEcho, EchoHandler());
  server.Start();

  // 8 clients hammer the single recv slot: drops happen, retransmits heal.
  std::vector<std::unique_ptr<UdRpcClient>> clients;
  std::vector<rdma::Node*> nodes;
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(&fabric.AddNode("client" + std::to_string(i)));
    UdRpcOptions copts;
    copts.retry_timeout_ns = 5'000;
    copts.max_retransmits = 100;
    clients.push_back(
        std::make_unique<UdRpcClient>(fabric, *nodes.back(), server.address(0), copts));
    engine.Spawn([](UdRpcClient* c, int* out) -> sim::Task<void> {
      std::vector<std::byte> resp(64);
      for (int k = 0; k < 20; ++k) {
        co_await c->Call(kEcho, AsBytes("b"), resp);
      }
      ++*out;
    }(clients.back().get(), &done));
  }
  engine.RunUntil(sim::Millis(50));
  server.Stop();
  EXPECT_EQ(done, 8);
  EXPECT_GT(server.recv_overflows(), 0u);
}

}  // namespace
}  // namespace rfp
