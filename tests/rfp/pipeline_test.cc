// Pipelined multi-slot channel tests (docs/pipelining.md): slot-ring round
// trips, doorbell-batching stats, the window=1 degeneracy of the async
// surface (SubmitCall/AwaitCall must be schedule-identical to
// ClientSend/ClientRecv), per-call CallOptions knobs, window-full and
// stale-handle errors, the Table-2 legacy API riding slot 0 of a windowed
// channel, and the pipelined Jakiro MultiGet.

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/kv/jakiro.h"
#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/legacy_api.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace rfp {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

// Polls the channel and echoes until `count` requests are served. Works for
// any window: TryServerRecv hands out one ready slot per call and ServerSend
// answers the slot it came from.
sim::Task<void> EchoServer(sim::Engine& eng, Channel* ch, int count) {
  std::vector<std::byte> buf(16384);
  int served = 0;
  while (served < count) {
    if (ch->NeedsReplyResend()) {
      co_await ch->MaybeResendAfterSwitch();
    }
    size_t n = 0;
    if (ch->TryServerRecv(buf, &n)) {
      co_await eng.Sleep(sim::Nanos(300));
      co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
      ++served;
    } else {
      co_await eng.Sleep(sim::Nanos(200));
    }
  }
}

class PipelineTest : public ::testing::Test {
 protected:
  Channel* MakeChannel(const RfpOptions& options) {
    channels_.push_back(
        std::make_unique<Channel>(fabric_, *client_node_, *server_node_, options));
    return channels_.back().get();
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node* client_node_{&fabric_.AddNode("client")};
  rdma::Node* server_node_{&fabric_.AddNode("server")};
  std::vector<std::unique_ptr<Channel>> channels_;
};

TEST_F(PipelineTest, Window4EchoInOrder) {
  RfpOptions options;
  options.window = 4;
  Channel* ch = MakeChannel(options);
  engine_.Spawn(EchoServer(engine_, ch, 4));
  engine_.Spawn([](Channel* c) -> sim::Task<void> {
    std::vector<Channel::CallHandle> handles;
    for (int i = 0; i < 4; ++i) {
      handles.push_back(co_await c->SubmitCall(AsBytes("slot-" + std::to_string(i))));
    }
    std::vector<std::byte> out(16384);
    for (int i = 0; i < 4; ++i) {
      const size_t got = co_await c->AwaitCall(handles[static_cast<size_t>(i)], out);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), got),
                "slot-" + std::to_string(i));
    }
  }(ch));
  engine_.Run();
  EXPECT_EQ(ch->stats().calls, 4u);
  // The four staged requests went out in one doorbell batch.
  EXPECT_GE(ch->stats().doorbell_batches, 1u);
  EXPECT_GT(ch->stats().batch_occupancy.mean(), 1.0);
  EXPECT_EQ(ch->stats().submit_window.count(), 4u);
}

TEST_F(PipelineTest, Window4AwaitOutOfOrder) {
  RfpOptions options;
  options.window = 4;
  Channel* ch = MakeChannel(options);
  engine_.Spawn(EchoServer(engine_, ch, 4));
  engine_.Spawn([](Channel* c) -> sim::Task<void> {
    std::vector<Channel::CallHandle> handles;
    for (int i = 0; i < 4; ++i) {
      handles.push_back(co_await c->SubmitCall(AsBytes("ooo-" + std::to_string(i))));
    }
    std::vector<std::byte> out(16384);
    for (int i = 3; i >= 0; --i) {  // awaits need not match submit order
      const size_t got = co_await c->AwaitCall(handles[static_cast<size_t>(i)], out);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), got),
                "ooo-" + std::to_string(i));
    }
  }(ch));
  engine_.Run();
  EXPECT_EQ(ch->stats().calls, 4u);
}

TEST_F(PipelineTest, SlotsAreReusedAcrossGenerations) {
  RfpOptions options;
  options.window = 2;
  Channel* ch = MakeChannel(options);
  static constexpr int kRounds = 8;
  engine_.Spawn(EchoServer(engine_, ch, kRounds * 2));
  engine_.Spawn([](Channel* c) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    for (int r = 0; r < kRounds; ++r) {
      const Channel::CallHandle a =
          co_await c->SubmitCall(AsBytes("a" + std::to_string(r)));
      const Channel::CallHandle b =
          co_await c->SubmitCall(AsBytes("b" + std::to_string(r)));
      size_t got = co_await c->AwaitCall(a, out);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), got),
                "a" + std::to_string(r));
      got = co_await c->AwaitCall(b, out);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), got),
                "b" + std::to_string(r));
    }
  }(ch));
  engine_.Run();
  EXPECT_EQ(ch->stats().calls, static_cast<uint64_t>(kRounds * 2));
  // retries_per_call records one sample per issued call: Table-3 semantics
  // (RoundTripsPerCall divides by stats.calls) survive pipelining.
  EXPECT_EQ(ch->stats().retries_per_call.count(), static_cast<uint64_t>(kRounds * 2));
}

// The async surface on a default (window=1) channel is the legacy path:
// same virtual-time schedule, same wire counters.
TEST_F(PipelineTest, Window1SubmitAwaitMatchesClientSendRecv) {
  struct Result {
    sim::Time end = 0;
    uint64_t calls = 0;
    uint64_t request_writes = 0;
    uint64_t fetch_reads = 0;
  };
  auto run = [](bool async_surface) {
    sim::Engine engine;
    rdma::Fabric fabric(engine);
    rdma::Node& client = fabric.AddNode("client");
    rdma::Node& server = fabric.AddNode("server");
    Channel ch(fabric, client, server, RfpOptions{});
    engine.Spawn(EchoServer(engine, &ch, 6));
    engine.Spawn([](Channel* c, bool async) -> sim::Task<void> {
      std::vector<std::byte> out(16384);
      for (int i = 0; i < 6; ++i) {
        const std::string msg = "same-" + std::to_string(i);
        if (async) {
          const Channel::CallHandle h = co_await c->SubmitCall(AsBytes(msg));
          const size_t got = co_await c->AwaitCall(h, out);
          EXPECT_EQ(got, msg.size());
        } else {
          co_await c->ClientSend(AsBytes(msg));
          const size_t got = co_await c->ClientRecv(out);
          EXPECT_EQ(got, msg.size());
        }
      }
    }(&ch, async_surface));
    engine.Run();
    return Result{engine.now(), ch.stats().calls, ch.stats().request_writes,
                  ch.stats().fetch_reads};
  };
  const Result legacy = run(false);
  const Result async = run(true);
  EXPECT_EQ(async.end, legacy.end);  // bit-for-bit: same event schedule
  EXPECT_EQ(async.calls, legacy.calls);
  EXPECT_EQ(async.request_writes, legacy.request_writes);
  EXPECT_EQ(async.fetch_reads, legacy.fetch_reads);
}

TEST_F(PipelineTest, PerCallFetchSizeOverrideSkipsRemainderFetch) {
  RfpOptions options;
  options.window = 4;
  options.fetch_size = 64;  // deliberately smaller than the echoed payload
  Channel* ch = MakeChannel(options);
  const std::string big(1000, 'z');
  engine_.Spawn(EchoServer(engine_, ch, 2));
  engine_.Spawn([](Channel* c, const std::string* msg) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    // Default fetch size undershoots: the payload needs a remainder fetch.
    Channel::CallHandle h = co_await c->SubmitCall(AsBytes(*msg));
    (void)co_await c->AwaitCall(h, out);
    EXPECT_EQ(c->stats().extra_fetches, 1u);
    // The per-call override covers header + payload in the first READ.
    CallOptions opts;
    opts.fetch_size = 4096;
    h = co_await c->SubmitCall(AsBytes(*msg), opts);
    (void)co_await c->AwaitCall(h, out);
    EXPECT_EQ(c->stats().extra_fetches, 1u);  // unchanged
  }(ch, &big));
  engine_.Run();
  EXPECT_EQ(ch->stats().calls, 2u);
}

TEST_F(PipelineTest, SubmitBeyondWindowThrows) {
  RfpOptions options;
  options.window = 2;
  Channel* ch = MakeChannel(options);
  engine_.Spawn([](Channel* c) -> sim::Task<void> {
    (void)co_await c->SubmitCall(AsBytes("one"));
    (void)co_await c->SubmitCall(AsBytes("two"));
    bool threw = false;
    try {
      (void)co_await c->SubmitCall(AsBytes("three"));
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(ch));
  engine_.Run();
}

TEST_F(PipelineTest, StaleHandleThrows) {
  RfpOptions options;
  options.window = 2;
  Channel* ch = MakeChannel(options);
  engine_.Spawn(EchoServer(engine_, ch, 1));
  engine_.Spawn([](Channel* c) -> sim::Task<void> {
    const Channel::CallHandle h = co_await c->SubmitCall(AsBytes("once"));
    std::vector<std::byte> out(16384);
    (void)co_await c->AwaitCall(h, out);
    bool threw = false;
    try {
      (void)co_await c->AwaitCall(h, out);  // slot already freed
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(ch));
  engine_.Run();
}

// Table 2's Endpoint wrappers drive ClientSend/ClientRecv, which on a
// windowed channel is exactly the slot-0 path: legacy code keeps working on
// a pipelined channel with no recompilation of its call sites.
TEST_F(PipelineTest, LegacyEndpointRidesSlotZeroOfWindowedChannel) {
  RfpOptions options;
  options.window = 4;
  Channel* ch = MakeChannel(options);
  engine_.Spawn(EchoServer(engine_, ch, 3));
  engine_.Spawn([](rdma::Node* node, Channel* c) -> sim::Task<void> {
    Endpoint ep(*node);
    ep.Bind(0, c);
    BufferPool::Buffer buf = malloc_buf(ep, 4096);
    for (int i = 0; i < 3; ++i) {
      const std::string msg = "legacy-" + std::to_string(i);
      std::memcpy(buf.bytes.data(), msg.data(), msg.size());
      co_await client_send(ep, 0, buf, msg.size());
      const size_t got = co_await client_recv(ep, 0, buf);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(buf.bytes.data()), got), msg);
    }
    free_buf(ep, std::move(buf));
  }(client_node_, ch));
  engine_.Run();
  EXPECT_EQ(ch->stats().calls, 3u);
  // Slot-0 sequential calls never stage more than one request, so no
  // doorbell batch ever forms.
  EXPECT_EQ(ch->stats().doorbell_batches, 0u);
}

// ---- RpcClient surface --------------------------------------------------------

class PipelineRpcTest : public ::testing::Test {
 protected:
  void StartEcho(const RfpOptions& channel_options) {
    server_ = std::make_unique<RpcServer>(fabric_, *server_node_, 1);
    server_->RegisterHandler(
        7, [](const HandlerContext&, std::span<const std::byte> req,
              std::span<std::byte> resp) -> HandlerResult {
          std::memcpy(resp.data(), req.data(), req.size());
          return HandlerResult{req.size(), sim::Nanos(300)};
        });
    channel_ = server_->AcceptChannel(*client_node_, channel_options, 0);
    client_ = std::make_unique<RpcClient>(channel_);
    server_->Start();
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node* client_node_{&fabric_.AddNode("client")};
  rdma::Node* server_node_{&fabric_.AddNode("server")};
  std::unique_ptr<RpcServer> server_;
  Channel* channel_ = nullptr;
  std::unique_ptr<RpcClient> client_;
};

TEST_F(PipelineRpcTest, SubmitAwaitPipelinesThroughTheStub) {
  RfpOptions options;
  options.window = 4;
  StartEcho(options);
  engine_.Spawn([](RpcServer* srv, RpcClient* cl) -> sim::Task<void> {
    std::vector<Channel::CallHandle> handles;
    for (int i = 0; i < 4; ++i) {
      const std::string msg = "rpc-" + std::to_string(i);
      handles.push_back(co_await cl->SubmitCall(7, AsBytes(msg)));
    }
    std::vector<std::byte> out(16384);
    for (int i = 0; i < 4; ++i) {
      const size_t got = co_await cl->AwaitCall(handles[static_cast<size_t>(i)], out);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), got),
                "rpc-" + std::to_string(i));
    }
    srv->Stop();
  }(server_.get(), client_.get()));
  engine_.Run();
  EXPECT_EQ(client_->calls(), 4u);
  EXPECT_EQ(client_->latency().count(), 4u);  // per-slot submit->await latency
  EXPECT_GE(channel_->stats().doorbell_batches, 1u);
}

TEST_F(PipelineRpcTest, CallOptionsCarryTheDeadline) {
  RfpOptions options;
  StartEcho(options);
  engine_.Spawn([](sim::Engine& eng, RpcServer* srv, RpcClient* cl) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    CallOptions opts;
    opts.deadline_ns = eng.now() + sim::Millis(5);  // generous: must not fire
    const size_t got = co_await cl->Call(7, AsBytes("deadline"), out, opts);
    EXPECT_EQ(got, 8u);
    srv->Stop();
  }(engine_, server_.get(), client_.get()));
  engine_.Run();
  EXPECT_EQ(client_->calls(), 1u);
}

// The positional-deadline overload is gone (deprecated in the pipelining PR,
// removed once the last caller migrated); designated-initializer CallOptions
// is the single way to pass a deadline and behaves identically.
TEST_F(PipelineRpcTest, CallOptionsDesignatedInitializerReplacesOldOverload) {
  RfpOptions options;
  StartEcho(options);
  engine_.Spawn([](sim::Engine& eng, RpcServer* srv, RpcClient* cl) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    const size_t got = co_await cl->Call(7, AsBytes("old-style"), out,
                                         CallOptions{.deadline_ns = eng.now() + sim::Millis(5)});
    EXPECT_EQ(got, 9u);
    srv->Stop();
  }(engine_, server_.get(), client_.get()));
  engine_.Run();
  EXPECT_EQ(client_->calls(), 1u);
}

// ---- Pipelined Jakiro ---------------------------------------------------------

TEST(PipelineJakiroTest, PipelinedMultiGetMatchesSequential) {
  auto run = [](const kv::JakiroConfig& config, std::vector<std::optional<std::string>>* got) {
    sim::Engine engine;
    rdma::Fabric fabric(engine);
    rdma::Node& server_node = fabric.AddNode("server");
    rdma::Node& client_node = fabric.AddNode("client");
    kv::JakiroServer server(fabric, server_node, config);
    kv::JakiroClient client(server, client_node);
    server.Start();
    engine.Spawn([](sim::Engine& eng, kv::JakiroServer* srv, kv::JakiroClient* cl,
                    std::vector<std::optional<std::string>>* out) -> sim::Task<void> {
      // 12 keys across the partitions; key-9 is left absent.
      for (int i = 0; i < 12; ++i) {
        if (i == 9) {
          continue;
        }
        const std::string key = "key-" + std::to_string(i);
        const std::string value = "value-" + std::to_string(i * 7);
        EXPECT_TRUE(co_await cl->Put(AsBytes(key), AsBytes(value)));
      }
      std::vector<std::string> key_store;
      for (int i = 0; i < 12; ++i) {
        key_store.push_back("key-" + std::to_string(i));
      }
      std::vector<std::span<const std::byte>> keys;
      for (const std::string& k : key_store) {
        keys.push_back(AsBytes(k));
      }
      std::vector<std::byte> arena(1 << 16);
      std::vector<std::optional<std::span<const std::byte>>> values(keys.size());
      co_await cl->MultiGet(keys, arena, values);
      for (const auto& v : values) {
        if (v.has_value()) {
          out->emplace_back(std::string(reinterpret_cast<const char*>(v->data()), v->size()));
        } else {
          out->emplace_back(std::nullopt);
        }
      }
      srv->Stop();
      (void)eng;
    }(engine, &server, &client, got));
    engine.Run();
    return client.MergedChannelStats();
  };

  kv::JakiroConfig sequential;
  sequential.server_threads = 3;
  std::vector<std::optional<std::string>> seq_values;
  const Channel::Stats seq_stats = run(sequential, &seq_values);

  std::vector<std::optional<std::string>> pipe_values;
  const Channel::Stats pipe_stats =
      run(kv::JakiroConfig::Build(sequential).Pipelined(4), &pipe_values);

  ASSERT_EQ(pipe_values.size(), 12u);
  EXPECT_EQ(pipe_values, seq_values);  // identical results, different transport
  EXPECT_FALSE(pipe_values[9].has_value());
  EXPECT_EQ(pipe_values[0], std::optional<std::string>("value-0"));
  // The pipelined run split owners' batches across the window and batched
  // the submissions; the sequential run never formed a batch.
  EXPECT_EQ(seq_stats.doorbell_batches, 0u);
  EXPECT_GE(pipe_stats.calls, seq_stats.calls);  // chunking adds calls
}

}  // namespace
}  // namespace rfp
