// S1 regression: installing an explicit FifoPolicy must reproduce the
// engine's built-in FIFO fast path bit-for-bit on a realistic dataplane
// scenario. The scenario mirrors the Fig 9 bench shape (bench::RunEcho):
// an echo RPC with controlled server process time, swept across process
// times under both forced paradigms. Equality is asserted on engine
// virtual time, events processed, and every observable counter — if the
// policy-dispatch slow path ever reorders a same-instant ready set
// differently from the historical heap order, this test catches it.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/schedule.h"
#include "src/sim/time.h"

namespace rfp {
namespace {

constexpr uint16_t kEcho = 1;

// One fig09-shaped run: `clients` echo clients against a 2-thread server,
// each issuing `calls` requests of `process_ns` server compute. Returns
// every observable the run produces, for exact comparison.
struct Fig09Observables {
  sim::Time final_now = 0;
  uint64_t events = 0;
  uint64_t served = 0;
  uint64_t served_t0 = 0;
  uint64_t served_t1 = 0;
  int completed = 0;

  bool operator==(const Fig09Observables&) const = default;
};

Fig09Observables RunFig09Scenario(sim::SchedulePolicy* policy,
                                  RfpOptions::ForceMode mode, sim::Time process_ns) {
  sim::Engine engine;
  engine.set_schedule_policy(policy);
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  RpcServer server(fabric, server_node, 2);
  server.RegisterHandler(kEcho, [process_ns](const HandlerContext&,
                                             std::span<const std::byte> req,
                                             std::span<std::byte> resp) {
    std::memcpy(resp.data(), req.data(), req.size());
    return HandlerResult{req.size(), process_ns};
  });

  RfpOptions options;
  options.force_mode = mode;
  const int clients = 4;
  const int calls = 12;
  std::vector<Channel*> channels;
  for (int i = 0; i < clients; ++i) {
    rdma::Node& node = fabric.AddNode("client" + std::to_string(i));
    channels.push_back(server.AcceptChannel(node, options, i % 2));
  }
  server.Start();

  Fig09Observables out;
  for (int i = 0; i < clients; ++i) {
    engine.Spawn([](Channel* channel, int id, int n, int* done) -> sim::Task<void> {
      RpcClient client(channel);
      std::vector<std::byte> resp(256);
      for (int k = 0; k < n; ++k) {
        std::string msg = "c" + std::to_string(id) + "-" + std::to_string(k);
        std::span<const std::byte> req = std::as_bytes(std::span(msg.data(), msg.size()));
        size_t got = co_await client.Call(kEcho, req, resp);
        EXPECT_EQ(std::string(reinterpret_cast<const char*>(resp.data()), got), msg);
      }
      ++*done;
    }(channels[static_cast<size_t>(i)], i, calls, &out.completed));
  }
  engine.RunUntil(sim::Millis(20));
  server.Stop();

  out.final_now = engine.now();
  out.events = engine.events_processed();
  out.served = server.requests_served();
  out.served_t0 = server.requests_served_by(0);
  out.served_t1 = server.requests_served_by(1);
  return out;
}

TEST(ScheduleFifoRegressionTest, ExplicitFifoReproducesFastPathOnFig09Scenario) {
  // Sweep the paper's process-time axis under both forced paradigms, the
  // same grid shape Fig 9 plots.
  const sim::Time process_sweep[] = {sim::Nanos(300), sim::Micros(2), sim::Micros(8)};
  const RfpOptions::ForceMode modes[] = {RfpOptions::ForceMode::kForceFetch,
                                         RfpOptions::ForceMode::kForceReply};
  for (RfpOptions::ForceMode mode : modes) {
    for (sim::Time p : process_sweep) {
      const Fig09Observables fast = RunFig09Scenario(nullptr, mode, p);
      sim::FifoPolicy fifo;
      const Fig09Observables policied = RunFig09Scenario(&fifo, mode, p);
      EXPECT_EQ(fast, policied)
          << "mode=" << static_cast<int>(mode) << " process_ns=" << p
          << " fast={now=" << fast.final_now << ", events=" << fast.events
          << "} policied={now=" << policied.final_now
          << ", events=" << policied.events << "}";
      EXPECT_EQ(fast.completed, 4);
      EXPECT_EQ(fast.served, 48u);
    }
  }
}

TEST(ScheduleFifoRegressionTest, FifoRunsAreReplayableFromTheirOwnTrace) {
  // A FIFO run's recorded decisions, replayed, land on the same observables
  // — the trace format is lossless over a full dataplane scenario.
  sim::FifoPolicy fifo;
  const Fig09Observables recorded =
      RunFig09Scenario(&fifo, RfpOptions::ForceMode::kAdaptive, sim::Micros(1));
  ASSERT_FALSE(fifo.decisions().empty());
  sim::ReplayPolicy replay(fifo.choices());
  replay.set_strict(true);
  const Fig09Observables replayed =
      RunFig09Scenario(&replay, RfpOptions::ForceMode::kAdaptive, sim::Micros(1));
  EXPECT_EQ(recorded, replayed);
}

}  // namespace
}  // namespace rfp
