#include "src/rfp/channel.h"

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace rfp {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

// Test server actor: polls the channel, sleeps the per-request process time
// given by `process`, echoes the request back, and exits after `count`
// requests.
sim::Task<void> EchoServer(sim::Engine& eng, Channel* ch, int count,
                           std::function<sim::Time(int)> process) {
  std::vector<std::byte> buf(16384);
  int served = 0;
  while (served < count) {
    if (ch->NeedsReplyResend()) {
      co_await ch->MaybeResendAfterSwitch();
    }
    size_t n = 0;
    if (ch->TryServerRecv(buf, &n)) {
      co_await eng.Sleep(process(served));
      co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
      ++served;
    } else {
      co_await eng.Sleep(sim::Nanos(200));
    }
  }
}

class ChannelTest : public ::testing::Test {
 protected:
  Channel* MakeChannel(const RfpOptions& options) {
    channels_.push_back(std::make_unique<Channel>(fabric_, *client_node_, *server_node_, options));
    return channels_.back().get();
  }

  void RunEcho(Channel* ch, int calls, sim::Time process,
               const std::string& payload = "payload") {
    engine_.Spawn(EchoServer(engine_, ch, calls, [process](int) { return process; }));
    engine_.Spawn([](sim::Engine& eng, Channel* c, int n, std::string msg) -> sim::Task<void> {
      std::vector<std::byte> out(16384);
      for (int i = 0; i < n; ++i) {
        co_await c->ClientSend(AsBytes(msg));
        size_t got = co_await c->ClientRecv(out);
        EXPECT_EQ(got, msg.size());
        EXPECT_EQ(std::memcmp(out.data(), msg.data(), got), 0);
      }
      (void)eng;
    }(engine_, ch, calls, payload));
    engine_.Run();
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node* client_node_{&fabric_.AddNode("client")};
  rdma::Node* server_node_{&fabric_.AddNode("server")};
  std::vector<std::unique_ptr<Channel>> channels_;
};

TEST_F(ChannelTest, EchoRoundTrip) {
  Channel* ch = MakeChannel(RfpOptions{});
  RunEcho(ch, 1, sim::Nanos(300));
  EXPECT_EQ(ch->stats().calls, 1u);
  EXPECT_EQ(ch->client_mode(), Mode::kRemoteFetch);
  EXPECT_EQ(ch->stats().reply_pushes, 0u);  // pure remote fetching
  EXPECT_GE(ch->stats().fetch_reads, 1u);
}

TEST_F(ChannelTest, ManySequentialCallsMatchSequence) {
  Channel* ch = MakeChannel(RfpOptions{});
  const int n = 200;
  engine_.Spawn(EchoServer(engine_, ch, n, [](int) { return sim::Nanos(300); }));
  engine_.Spawn([](Channel* c, int count) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    for (int i = 0; i < count; ++i) {
      std::string msg = "call-" + std::to_string(i);
      co_await c->ClientSend(AsBytes(msg));
      size_t got = co_await c->ClientRecv(out);
      // Every call must see exactly its own echo, never a stale one.
      // (EXPECT, not ASSERT: gtest's ASSERT returns, which coroutines forbid.)
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), got), msg);
    }
  }(ch, n));
  engine_.Run();
  EXPECT_EQ(ch->stats().calls, static_cast<uint64_t>(n));
}

TEST_F(ChannelTest, SmallResponseNeedsSingleFetch) {
  RfpOptions options;
  options.fetch_size = 256;
  Channel* ch = MakeChannel(options);
  RunEcho(ch, 10, sim::Nanos(300), std::string(100, 'x'));  // 100+8 <= 256
  EXPECT_EQ(ch->stats().extra_fetches, 0u);
}

TEST_F(ChannelTest, LargeResponseTriggersRemainderFetch) {
  RfpOptions options;
  options.fetch_size = 256;
  Channel* ch = MakeChannel(options);
  RunEcho(ch, 10, sim::Nanos(300), std::string(1000, 'y'));  // 1000+8 > 256
  EXPECT_EQ(ch->stats().extra_fetches, 10u);
}

TEST_F(ChannelTest, FetchSizeClampedToBlock) {
  RfpOptions options;
  options.fetch_size = 1 << 30;
  Channel* ch = MakeChannel(options);
  // The block (and so the clamp ceiling) is sized by the 16-byte request
  // header even though fetches only ever need response bytes.
  EXPECT_LE(ch->options().fetch_size, options.max_message_bytes + kReqHeaderBytes);
  ch->set_fetch_size(1);
  EXPECT_EQ(ch->options().fetch_size, kHeaderBytes);
}

TEST_F(ChannelTest, ForcedReplyUsesServerPush) {
  RfpOptions options;
  options.force_mode = RfpOptions::ForceMode::kForceReply;
  Channel* ch = MakeChannel(options);
  RunEcho(ch, 5, sim::Nanos(300));
  EXPECT_EQ(ch->client_mode(), Mode::kServerReply);
  EXPECT_EQ(ch->stats().fetch_reads, 0u);   // the client never READs
  EXPECT_EQ(ch->stats().reply_pushes, 5u);  // the server WRITEs every reply
}

TEST_F(ChannelTest, ForcedReplyNeverSwitchesBack) {
  RfpOptions options;
  options.force_mode = RfpOptions::ForceMode::kForceReply;
  Channel* ch = MakeChannel(options);
  RunEcho(ch, 10, sim::Nanos(100));  // fast server would normally trigger switch-back
  EXPECT_EQ(ch->client_mode(), Mode::kServerReply);
  EXPECT_EQ(ch->stats().switches_to_fetch, 0u);
}

TEST_F(ChannelTest, SlowServerTriggersSwitchToReply) {
  RfpOptions options;
  options.retry_threshold = 5;
  options.slow_calls_before_switch = 2;
  Channel* ch = MakeChannel(options);
  // 30 us process time: every call exhausts its 5 retries.
  RunEcho(ch, 4, sim::Micros(30));
  EXPECT_EQ(ch->client_mode(), Mode::kServerReply);
  EXPECT_EQ(ch->stats().switches_to_reply, 1u);
  // The first slow call completed by fetching; from the second the channel
  // is in reply mode.
  EXPECT_GT(ch->stats().reply_pushes, 0u);
}

TEST_F(ChannelTest, SingleSlowCallDoesNotSwitch) {
  RfpOptions options;
  options.retry_threshold = 5;
  options.slow_calls_before_switch = 2;
  Channel* ch = MakeChannel(options);
  // One 30 us call between fast ones: hysteresis must hold the mode.
  engine_.Spawn(EchoServer(engine_, ch, 9, [](int i) {
    return i == 4 ? sim::Micros(30) : sim::Nanos(300);
  }));
  engine_.Spawn([](Channel* c) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    for (int i = 0; i < 9; ++i) {
      co_await c->ClientSend(AsBytes("m"));
      co_await c->ClientRecv(out);
    }
  }(ch));
  engine_.Run();
  EXPECT_EQ(ch->client_mode(), Mode::kRemoteFetch);
  EXPECT_EQ(ch->stats().switches_to_reply, 0u);
}

TEST_F(ChannelTest, FastRepliesSwitchBackToFetching) {
  RfpOptions options;
  options.retry_threshold = 5;
  options.slow_calls_before_switch = 2;
  options.switch_back_us = 7;
  options.fast_calls_before_switch_back = 2;
  Channel* ch = MakeChannel(options);
  // Phase 1 (calls 0-3): slow, driving the channel into reply mode.
  // Phase 2 (calls 4+): fast, driving it back to remote fetching.
  engine_.Spawn(EchoServer(engine_, ch, 12, [](int i) {
    return i < 4 ? sim::Micros(30) : sim::Micros(1);
  }));
  engine_.Spawn([](Channel* c) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    for (int i = 0; i < 12; ++i) {
      co_await c->ClientSend(AsBytes("m"));
      co_await c->ClientRecv(out);
    }
  }(ch));
  engine_.Run();
  EXPECT_EQ(ch->stats().switches_to_reply, 1u);
  EXPECT_EQ(ch->stats().switches_to_fetch, 1u);
  EXPECT_EQ(ch->client_mode(), Mode::kRemoteFetch);
}

TEST_F(ChannelTest, ServerSeesModeFromRequestHeader) {
  Channel* ch = MakeChannel(RfpOptions{});
  RunEcho(ch, 1, sim::Nanos(300));
  EXPECT_EQ(ch->server_visible_mode(), Mode::kRemoteFetch);
}

TEST_F(ChannelTest, RetryHistogramRecordsFailures) {
  Channel* ch = MakeChannel(RfpOptions{});
  RunEcho(ch, 20, sim::Micros(2));  // ~2 us process: a couple of failed fetches
  const auto& hist = ch->stats().retries_per_call;
  EXPECT_EQ(hist.count(), 20u);
  EXPECT_GT(hist.max(), 0);  // some retries happened
  EXPECT_LT(hist.max(), 6);  // but nowhere near the switch threshold
}

TEST_F(ChannelTest, ServerTimeFieldReportsProcessTime) {
  Channel* ch = MakeChannel(RfpOptions{});
  RunEcho(ch, 3, sim::Micros(4));
  EXPECT_GE(ch->last_server_time_us(), 4);
  EXPECT_LE(ch->last_server_time_us(), 6);
}

TEST_F(ChannelTest, ClientBusyHighWhileFetching) {
  Channel* ch = MakeChannel(RfpOptions{});
  RunEcho(ch, 50, sim::Micros(2));
  const double util = ch->client_busy().Utilization(0, engine_.now());
  EXPECT_GT(util, 0.9);  // remote fetching spins the client at ~100% CPU
}

TEST_F(ChannelTest, ClientBusyLowInReplyMode) {
  RfpOptions options;
  options.force_mode = RfpOptions::ForceMode::kForceReply;
  Channel* ch = MakeChannel(options);
  RunEcho(ch, 50, sim::Micros(10));
  const double util = ch->client_busy().Utilization(0, engine_.now());
  EXPECT_LT(util, 0.3);  // paper Fig 15: below 30% after the switch
}

TEST_F(ChannelTest, OversizeRequestThrows) {
  Channel* ch = MakeChannel(RfpOptions{});
  std::vector<std::byte> huge(RfpOptions{}.max_message_bytes + 1);
  engine_.Spawn([](Channel* c, std::span<const std::byte> msg) -> sim::Task<void> {
    co_await c->ClientSend(msg);
  }(ch, huge));
  EXPECT_THROW(engine_.Run(), std::invalid_argument);
}

TEST_F(ChannelTest, SequenceWrapAroundStaysCorrect) {
  // 70k calls push the 16-bit sequence tag through a full wrap; stale
  // responses must never match across the wrap boundary.
  Channel* ch = MakeChannel(RfpOptions{});
  const int n = 70'000;
  engine_.Spawn(EchoServer(engine_, ch, n, [](int) { return sim::Nanos(100); }));
  uint64_t mismatches = 0;
  engine_.Spawn([](Channel* c, int count, uint64_t* bad) -> sim::Task<void> {
    std::vector<std::byte> out(256);
    std::vector<std::byte> msg(4);
    for (int i = 0; i < count; ++i) {
      std::memcpy(msg.data(), &i, 4);
      co_await c->ClientSend(msg);
      size_t got = co_await c->ClientRecv(out);
      int echoed = -1;
      if (got == 4) {
        std::memcpy(&echoed, out.data(), 4);
      }
      if (echoed != i) {
        ++*bad;
      }
    }
  }(ch, n, &mismatches));
  engine_.Run();
  EXPECT_EQ(mismatches, 0u);
  EXPECT_EQ(ch->stats().calls, static_cast<uint64_t>(n));
}

TEST_F(ChannelTest, ZeroLengthMessagesRoundTrip) {
  Channel* ch = MakeChannel(RfpOptions{});
  engine_.Spawn(EchoServer(engine_, ch, 3, [](int) { return sim::Nanos(100); }));
  int done = 0;
  engine_.Spawn([](Channel* c, int* out) -> sim::Task<void> {
    std::vector<std::byte> recv(64);
    for (int i = 0; i < 3; ++i) {
      co_await c->ClientSend({});
      size_t got = co_await c->ClientRecv(recv);
      EXPECT_EQ(got, 0u);
      ++*out;
    }
  }(ch, &done));
  engine_.Run();
  EXPECT_EQ(done, 3);
}

TEST_F(ChannelTest, MaxSizeMessagesRoundTrip) {
  RfpOptions options;
  Channel* ch = MakeChannel(options);
  const std::string big(options.max_message_bytes, 'Z');
  RunEcho(ch, 2, sim::Nanos(300), big);
  EXPECT_EQ(ch->stats().extra_fetches, 2u);  // far beyond any fetch size
}

TEST_F(ChannelTest, FetchSizeRetunedMidRunStaysCorrect) {
  // The autotuner may call set_fetch_size while traffic is flowing; calls
  // before and after must both complete with intact payloads.
  RfpOptions options;
  options.fetch_size = 64;
  Channel* ch = MakeChannel(options);
  const std::string payload(200, 'q');  // needs a remainder fetch at F=64
  engine_.Spawn(EchoServer(engine_, ch, 40, [](int) { return sim::Nanos(300); }));
  engine_.Spawn([](Channel* c, std::string msg) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    for (int i = 0; i < 40; ++i) {
      if (i == 20) {
        c->set_fetch_size(512);  // now one fetch suffices
      }
      co_await c->ClientSend(AsBytes(msg));
      size_t got = co_await c->ClientRecv(out);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), got), msg);
    }
  }(ch, payload));
  engine_.Run();
  // Remainder fetches happened only while F=64 (first 20 calls).
  EXPECT_EQ(ch->stats().extra_fetches, 20u);
}

TEST_F(ChannelTest, SwitchBoundaryImmediateWithMinimalThresholds) {
  // R = 1, slow_calls_before_switch = 1: the very first failed fetch of the
  // very first call must switch mid-call — the mid-call check fires at
  // failed == R with slow_streak_ + 1 >= slow_calls_before_switch.
  RfpOptions options;
  options.retry_threshold = 1;
  options.slow_calls_before_switch = 1;
  Channel* ch = MakeChannel(options);
  RunEcho(ch, 3, sim::Micros(30));
  EXPECT_EQ(ch->stats().switches_to_reply, 1u);
  EXPECT_EQ(ch->client_mode(), Mode::kServerReply);
  // The switch happened on the first failed fetch: exactly one READ went out
  // and it is the only failure ever recorded. Calls 2-3 ran in reply mode,
  // which records nothing on the fetch path, so the histogram holds the one
  // switching call.
  EXPECT_EQ(ch->stats().fetch_reads, 1u);
  EXPECT_EQ(ch->stats().failed_fetches, 1u);
  EXPECT_EQ(ch->stats().retries_per_call.count(), 1u);
  EXPECT_EQ(ch->stats().retries_per_call.min(), 1);
  EXPECT_EQ(ch->stats().retries_per_call.max(), 1);
}

TEST_F(ChannelTest, MidCallAndPostSuccessSlowCountsAgree) {
  // Boundary audit: a call is counted slow exactly once, whether it crosses
  // R mid-call (the `failed == R` check) or completes with >= R failures
  // (the post-success `failed >= R` streak update).
  //
  // With R = 1 and slow_calls_before_switch = 2, the first slow call cannot
  // switch (streak is 0 when it hits failed == 1) and completes by fetching,
  // overshooting R by many failures — but the equality check fires only once
  // per call, and post-success the call still counts as ONE slow call. The
  // second slow call then switches on its first failed fetch. If the two
  // paths double-counted, the first call alone would switch; if the
  // post-success check used `> R`, the overshooting call would be the only
  // one counted and the switch would need a third call.
  RfpOptions options;
  options.retry_threshold = 1;
  options.slow_calls_before_switch = 2;
  Channel* ch = MakeChannel(options);
  RunEcho(ch, 4, sim::Micros(30));
  EXPECT_EQ(ch->stats().switches_to_reply, 1u);
  EXPECT_EQ(ch->client_mode(), Mode::kServerReply);
  // Call 1 recorded its full failure count at success; call 2 recorded
  // exactly 1 failure at the mid-call switch; calls 3-4 ran in reply mode
  // and recorded nothing on the fetch path.
  EXPECT_EQ(ch->stats().retries_per_call.count(), 2u);
  EXPECT_EQ(ch->stats().retries_per_call.min(), 1);
  EXPECT_GT(ch->stats().retries_per_call.max(), 1);
}

TEST_F(ChannelTest, RoundTripsPerCallNearTwoWhenTuned) {
  // The headline accounting of Section 4.3: a request WRITE plus ~1 fetch
  // READ, i.e. ~2.005 round trips per call.
  RfpOptions options;
  options.fetch_size = 256;
  Channel* ch = MakeChannel(options);
  RunEcho(ch, 100, sim::Nanos(300), std::string(32, 'v'));
  EXPECT_GE(ch->stats().RoundTripsPerCall(), 2.0);
  EXPECT_LT(ch->stats().RoundTripsPerCall(), 2.6);
}

}  // namespace
}  // namespace rfp
