#include "src/rfp/params.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/config.h"
#include "src/sim/time.h"

namespace rfp {
namespace {

// A synthetic envelope shaped like the paper's ConnectX-3 (Fig 5):
// flat ~11.2 MOPS to 256 B, bandwidth decay beyond, out-bound 2.11 MOPS.
HardwareProfile PaperLikeProfile() {
  HardwareProfile p;
  p.inbound_read = {{16, 11.2}, {32, 11.2},  {64, 11.2},  {128, 11.2}, {256, 11.2},
                    {384, 10.9}, {512, 8.8},  {640, 7.0},  {768, 5.9},  {1024, 4.4},
                    {1536, 2.9}, {2048, 2.2}, {4096, 1.1}, {8192, 0.55}};
  p.outbound_write_mops = 2.11;
  p.fetch_rtt_ns = 1300.0;
  return p;
}

TEST(ProfileTest, InterpolationIsMonotoneAndClamped) {
  HardwareProfile p = PaperLikeProfile();
  EXPECT_DOUBLE_EQ(p.InboundMopsAt(8), 11.2);     // clamped below
  EXPECT_DOUBLE_EQ(p.InboundMopsAt(16384), 0.55); // clamped above
  EXPECT_DOUBLE_EQ(p.InboundMopsAt(256), 11.2);
  const double mid = p.InboundMopsAt(448);        // between 384 and 512
  EXPECT_LT(mid, 10.9);
  EXPECT_GT(mid, 8.8);
}

TEST(KneeTest, DetectLFindsTheFlatRegionEdge) {
  // Paper Section 3.2: L = 256 bytes on their RNIC.
  EXPECT_EQ(DetectL(PaperLikeProfile()), 256u);
}

TEST(KneeTest, DetectHFindsTheAdvantageEdge) {
  // Paper Section 3.2: H = 1024 bytes; at 1 KB in-bound (4.4) still beats
  // out-bound (2.11) by >10%, at 1.5 KB it does not.
  EXPECT_EQ(DetectH(PaperLikeProfile()), 1024u);
}

TEST(KneeTest, RetryBoundMatchesPaperScale) {
  // P* = 16 / (2.11 * 1.1) ~ 6.9 us; at ~1.3 us per fetch, N ~ 5.
  const int n = DeriveRetryBound(PaperLikeProfile(), 16);
  EXPECT_GE(n, 4);
  EXPECT_LE(n, 6);
}

TEST(KneeTest, IncompleteProfileThrows) {
  HardwareProfile empty;
  EXPECT_THROW(DetectL(empty), std::invalid_argument);
  EXPECT_THROW(DetectH(empty), std::invalid_argument);
  EXPECT_THROW(DeriveRetryBound(empty), std::invalid_argument);
}

TEST(SelectorTest, SmallUniformResultsPickSmallestUsefulF) {
  HardwareProfile p = PaperLikeProfile();
  std::vector<uint32_t> sizes(100, 32);  // 32 B values: 40 B with header
  ParamChoice choice = SelectParameters(p, sizes);
  // Everything fits at F = L = 256 and I(F) is maximal there.
  EXPECT_EQ(choice.fetch_size, 256u);
  EXPECT_GE(choice.retry_threshold, 1);
}

TEST(SelectorTest, LargerResultsPushFUp) {
  HardwareProfile p = PaperLikeProfile();
  std::vector<uint32_t> sizes(100, 500);  // needs 508 B fetched
  ParamChoice choice = SelectParameters(p, sizes);
  EXPECT_GE(choice.fetch_size, 508u);
  EXPECT_LE(choice.fetch_size, 1024u);
}

TEST(SelectorTest, MixedSizesTradeOffCoverageAgainstIops) {
  HardwareProfile p = PaperLikeProfile();
  // Bimodal: mostly small, some mid-size results.
  std::vector<uint32_t> sizes;
  for (int i = 0; i < 80; ++i) {
    sizes.push_back(32);
  }
  for (int i = 0; i < 20; ++i) {
    sizes.push_back(600);
  }
  ParamChoice choice = SelectParameters(p, sizes);
  // The selector lands inside [L, H] and beats both extremes' scores.
  EXPECT_GE(choice.fetch_size, 256u);
  EXPECT_LE(choice.fetch_size, 1024u);
  EXPECT_GT(choice.predicted_score, 0.0);
}

TEST(SelectorTest, FStaysWithinExplicitBounds) {
  HardwareProfile p = PaperLikeProfile();
  std::vector<uint32_t> sizes(10, 5000);  // larger than H: two fetches always
  SelectorConfig cfg;
  cfg.l = 256;
  cfg.h = 1024;
  ParamChoice choice = SelectParameters(p, sizes, {}, cfg);
  EXPECT_GE(choice.fetch_size, 256u);
  EXPECT_LE(choice.fetch_size, 1024u);
  // Nothing fits: the selector minimizes waste by staying at L.
  EXPECT_EQ(choice.fetch_size, 256u);
}

TEST(SelectorTest, LongProcessTimesReduceChosenR) {
  HardwareProfile p = PaperLikeProfile();
  std::vector<uint32_t> sizes(50, 32);
  std::vector<sim::Time> slow_times(50, sim::Micros(50));  // all beyond N retries
  ParamChoice with_slow = SelectParameters(p, sizes, slow_times);
  // All calls fall back to reply mode regardless of R: the enumeration is
  // indifferent, so it keeps the smallest R (cheapest client CPU).
  EXPECT_EQ(with_slow.retry_threshold, 1);
}

TEST(SelectorTest, ShortProcessTimesKeepLargerRUseful) {
  HardwareProfile p = PaperLikeProfile();
  std::vector<uint32_t> sizes(50, 32);
  // ~4 fetch RTTs of process time: calls complete by fetching only if
  // R >= 4, so the selector must pick a large R.
  std::vector<sim::Time> times(50, sim::Nanos(5000));
  ParamChoice choice = SelectParameters(p, sizes, times);
  EXPECT_GE(choice.retry_threshold, 4);
}

TEST(SelectorTest, EmptySamplesThrow) {
  EXPECT_THROW(SelectParameters(PaperLikeProfile(), {}), std::invalid_argument);
}

TEST(SamplerTest, FillsToCapacityThenReplaces) {
  OnlineSampler sampler(10, 42);
  for (uint32_t i = 0; i < 1000; ++i) {
    sampler.Record(i, sim::Nanos(i));
  }
  EXPECT_EQ(sampler.observed(), 1000u);
  EXPECT_EQ(sampler.sizes().size(), 10u);
  // Reservoir property: late observations do appear.
  bool has_late = false;
  for (uint32_t s : sampler.sizes()) {
    has_late |= s >= 500;
  }
  EXPECT_TRUE(has_late);
}

TEST(MeasureProfileTest, DefaultFabricMatchesPaperEnvelope) {
  rdma::FabricConfig config;
  ProfileOptions opts;
  opts.sizes = {32, 256, 512, 1024, 2048};
  HardwareProfile p = MeasureProfile(config, opts);
  EXPECT_NEAR(p.InboundMopsAt(32), 11.2, 0.7);
  EXPECT_NEAR(p.outbound_write_mops, 2.11, 0.2);
  EXPECT_GT(p.fetch_rtt_ns, 800.0);
  EXPECT_LT(p.fetch_rtt_ns, 2000.0);
  EXPECT_EQ(DetectL(p), 256u);
  const int n = DeriveRetryBound(p, 16);
  EXPECT_GE(n, 4);
  EXPECT_LE(n, 7);
}

}  // namespace
}  // namespace rfp
