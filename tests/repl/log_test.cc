// Record wire codec and ReplLog shipping-window unit tests.

#include "src/repl/log.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/kv/common.h"

namespace repl {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

TEST(ReplRecordTest, EncodeDecodeRoundTrip) {
  Record record;
  record.lsn = 42;
  record.rpc_id = kv::kRpcPut;
  record.key = Bytes("door");
  record.value = Bytes("bell");

  std::vector<std::byte> wire(EncodedSize(record));
  EXPECT_EQ(EncodeRecord(wire, record), wire.size());
  auto decoded = DecodeRecord(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->lsn, 42u);
  EXPECT_EQ(decoded->rpc_id, kv::kRpcPut);
  EXPECT_EQ(decoded->key, record.key);
  EXPECT_EQ(decoded->value, record.value);
}

TEST(ReplRecordTest, DeleteRecordHasEmptyValue) {
  Record record;
  record.lsn = 7;
  record.rpc_id = kv::kRpcDelete;
  record.key = Bytes("k");

  std::vector<std::byte> wire(EncodedSize(record));
  EncodeRecord(wire, record);
  auto decoded = DecodeRecord(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rpc_id, kv::kRpcDelete);
  EXPECT_TRUE(decoded->value.empty());
}

TEST(ReplRecordTest, DecodeRejectsTruncation) {
  Record record;
  record.lsn = 1;
  record.rpc_id = kv::kRpcPut;
  record.key = Bytes("key");
  record.value = Bytes("value");
  std::vector<std::byte> wire(EncodedSize(record));
  EncodeRecord(wire, record);

  // Truncated header and truncated body are both rejected, at every length.
  for (size_t n = 0; n < wire.size(); ++n) {
    EXPECT_FALSE(DecodeRecord(std::span<const std::byte>(wire.data(), n)).has_value()) << n;
  }
}

TEST(ReplLogTest, LsnsStartAtOneAndShipInOrder) {
  ReplLog log;
  EXPECT_EQ(log.last_lsn(), 0u);
  EXPECT_EQ(log.NextToShip(), nullptr);

  EXPECT_EQ(log.Append(kv::kRpcPut, Bytes("a"), Bytes("1")), 1u);
  EXPECT_EQ(log.Append(kv::kRpcPut, Bytes("b"), Bytes("2")), 2u);
  EXPECT_EQ(log.Append(kv::kRpcDelete, Bytes("a"), {}), 3u);
  EXPECT_EQ(log.last_lsn(), 3u);
  EXPECT_EQ(log.unshipped(), 3u);

  ASSERT_NE(log.NextToShip(), nullptr);
  EXPECT_EQ(log.NextToShip()->lsn, 1u);
  log.MarkShipped();
  EXPECT_EQ(log.NextToShip()->lsn, 2u);
  log.MarkShipped();
  log.MarkShipped();
  EXPECT_EQ(log.NextToShip(), nullptr);
  EXPECT_EQ(log.unshipped(), 0u);
}

TEST(ReplLogTest, AckDropsPrefixAndTracksLag) {
  ReplLog log;
  for (int i = 0; i < 5; ++i) {
    log.Append(kv::kRpcPut, Bytes("k"), Bytes("v"));
  }
  log.MarkShipped();
  log.MarkShipped();
  EXPECT_EQ(log.lag(), 5u);

  log.OnAcked(2);
  EXPECT_EQ(log.acked_lsn(), 2u);
  EXPECT_EQ(log.lag(), 3u);
  // The ship cursor survives the prefix drop: lsn 3 is still next.
  ASSERT_NE(log.NextToShip(), nullptr);
  EXPECT_EQ(log.NextToShip()->lsn, 3u);

  // Stale (already-covered) acks are ignored.
  log.OnAcked(1);
  EXPECT_EQ(log.acked_lsn(), 2u);

  log.MarkShipped();
  log.MarkShipped();
  log.MarkShipped();
  log.OnAcked(5);
  EXPECT_EQ(log.lag(), 0u);
  EXPECT_EQ(log.NextToShip(), nullptr);
  // New appends after a fully-drained window keep the LSN sequence.
  EXPECT_EQ(log.Append(kv::kRpcPut, Bytes("k"), Bytes("v")), 6u);
}

}  // namespace
}  // namespace repl
