// Replication-stream semantics on a healthy cluster: sync acks imply the
// backup applied (or queued-then-applied) the mutation, deletes replicate,
// snapshot bootstrap transfers pre-existing data, and async mode bounds the
// log lag instead of blocking every reply.

#include "src/repl/cluster.h"

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/kv/common.h"
#include "src/rdma/fabric.h"
#include "src/repl/replicator.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace repl {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

std::string ToString(std::span<const std::byte> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

ClusterConfig FastConfig() {
  ClusterConfig config = DefaultClusterConfig();
  config.kv.server_threads = 2;
  config.kv.buckets_per_partition = 256;
  config.repl.lease_interval_ns = sim::Micros(150);
  config.repl.probe_interval_ns = sim::Micros(20);
  config.repl.channel.fetch_timeout_ns = sim::Micros(50);
  return config;
}

// Reads `key` straight out of the backup's partition tables.
std::optional<std::string> BackupValue(Cluster& cluster, const std::string& key) {
  const auto kb = Bytes(key);
  auto got = cluster.backup().partition(cluster.backup().OwnerThread(kb)).Get(kb);
  if (!got.has_value()) {
    return std::nullopt;
  }
  return ToString(*got);
}

TEST(ReplicationTest, SyncPutAndDeleteReachTheBackup) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  Cluster cluster(fabric, FastConfig());
  rdma::Node& client_node = fabric.AddNode("client");
  Client client(cluster, client_node);
  cluster.Start();

  bool done = false;
  engine.Spawn([](sim::Engine& eng, Cluster* cl, Client* c, bool* finished) -> sim::Task<void> {
    // Let the (empty-table) bootstrap finish so the puts are sync-acked.
    while (!cl->replicator().attached()) {
      co_await eng.Sleep(sim::Micros(10));
    }
    EXPECT_TRUE(co_await c->Put(Bytes("alpha"), Bytes("one")));
    EXPECT_TRUE(co_await c->Put(Bytes("beta"), Bytes("two")));
    // Sync mode: the ack precedes the reply, so the records are at least
    // queued on the backup; give the apply actor a couple of ticks.
    co_await eng.Sleep(sim::Micros(20));
    EXPECT_EQ(cl->sink().queued(), 0u);
    EXPECT_TRUE(co_await c->Delete(Bytes("alpha")));
    co_await eng.Sleep(sim::Micros(20));
    *finished = true;
  }(engine, &cluster, &client, &done));
  engine.RunUntil(sim::Millis(5));
  cluster.Stop();

  ASSERT_TRUE(done);
  EXPECT_TRUE(cluster.replicator().attached());
  EXPECT_EQ(BackupValue(cluster, "alpha"), std::nullopt);  // deleted everywhere
  EXPECT_EQ(BackupValue(cluster, "beta"), std::optional<std::string>("two"));
  EXPECT_GE(cluster.sink().applied(), 3u);  // two puts + one delete
  EXPECT_EQ(cluster.replicator().log().lag(), 0u);
  EXPECT_GE(cluster.replicator().shipped(), 3u);
}

TEST(ReplicationTest, SnapshotBootstrapTransfersExistingData) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  ClusterConfig config = FastConfig();
  config.repl.snapshot_chunk_buckets = 16;  // force a multi-chunk sweep
  Cluster cluster(fabric, config);

  constexpr int kKeys = 300;
  for (int i = 0; i < kKeys; ++i) {
    const auto key = Bytes("key" + std::to_string(i));
    const auto value = Bytes("val" + std::to_string(i));
    kv::JakiroServer& primary = cluster.primary();
    primary.partition(primary.OwnerThread(key)).Put(key, value);
  }

  cluster.Start();
  engine.RunUntil(sim::Millis(2));
  cluster.Stop();

  EXPECT_TRUE(cluster.replicator().attached());
  EXPECT_TRUE(cluster.sink().bootstrapped());
  EXPECT_EQ(cluster.sink().snapshot_items(), static_cast<uint64_t>(kKeys));
  for (int i = 0; i < kKeys; i += 37) {
    EXPECT_EQ(BackupValue(cluster, "key" + std::to_string(i)),
              std::optional<std::string>("val" + std::to_string(i)))
        << "key" << i;
  }
}

TEST(ReplicationTest, AsyncModeBoundsLagWithoutBlockingEachPut) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  ClusterConfig config = FastConfig();
  config.repl.ack_mode = ReplOptions::AckMode::kAsync;
  config.repl.max_async_lag = 4;
  Cluster cluster(fabric, config);
  rdma::Node& client_node = fabric.AddNode("client");
  Client client(cluster, client_node);
  cluster.Start();

  constexpr int kPuts = 40;
  bool done = false;
  engine.Spawn([](sim::Engine& eng, Cluster* cl, Client* c, bool* finished) -> sim::Task<void> {
    while (!cl->replicator().attached()) {
      co_await eng.Sleep(sim::Micros(10));
    }
    for (int i = 0; i < kPuts; ++i) {
      EXPECT_TRUE(co_await c->Put(Bytes("k" + std::to_string(i % 8)),
                                  Bytes("v" + std::to_string(i))));
      // The bounded-lag watermark: a producer is released only while the
      // unacked window is within max_async_lag.
      EXPECT_LE(cl->replicator().log().lag(), cl->config().repl.max_async_lag);
    }
    // The shipper drains the tail in the background.
    co_await eng.Sleep(sim::Micros(500));
    EXPECT_EQ(cl->replicator().log().lag(), 0u);
    *finished = true;
  }(engine, &cluster, &client, &done));
  engine.RunUntil(sim::Millis(5));
  cluster.Stop();

  ASSERT_TRUE(done);
  EXPECT_GE(cluster.replicator().shipped(), static_cast<uint64_t>(kPuts));
  EXPECT_GE(cluster.sink().applied(), static_cast<uint64_t>(kPuts));
  EXPECT_EQ(BackupValue(cluster, "k7"), std::optional<std::string>("v39"));
}

}  // namespace
}  // namespace repl
