// ValidateOptions coverage for ReplOptions: every inconsistent knob set is
// rejected with std::invalid_argument, and the shipped defaults (plus the
// cluster defaults built on them) validate.

#include "src/repl/options.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "src/repl/cluster.h"
#include "src/sim/time.h"

namespace repl {
namespace {

TEST(ReplOptionsTest, DefaultsValidate) {
  EXPECT_NO_THROW(ValidateOptions(ReplOptions{}));
  EXPECT_NO_THROW(ValidateOptions(DefaultClusterConfig().repl));
}

TEST(ReplOptionsTest, RejectsInvalidAckMode) {
  ReplOptions options;
  options.ack_mode = static_cast<ReplOptions::AckMode>(7);
  EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
}

TEST(ReplOptionsTest, RejectsNonPositiveLease) {
  ReplOptions options;
  options.lease_interval_ns = 0;
  EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
  options.lease_interval_ns = -1;
  EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
}

TEST(ReplOptionsTest, RejectsNonPositiveProbeInterval) {
  ReplOptions options;
  options.probe_interval_ns = 0;
  EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
}

TEST(ReplOptionsTest, RejectsProbeSlowerThanLease) {
  ReplOptions options;
  options.lease_interval_ns = sim::Micros(500);
  options.probe_interval_ns = sim::Micros(501);
  options.channel.fetch_timeout_ns = 0;  // isolate the probe/lease rule
  EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
}

TEST(ReplOptionsTest, RejectsNegativeProbeDeadline) {
  ReplOptions options;
  options.probe_deadline_ns = -1;
  EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
}

TEST(ReplOptionsTest, RejectsZeroAsyncLag) {
  ReplOptions options;
  options.max_async_lag = 0;
  EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
}

TEST(ReplOptionsTest, RejectsZeroSnapshotChunk) {
  ReplOptions options;
  options.snapshot_chunk_buckets = 0;
  EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
}

TEST(ReplOptionsTest, RejectsNonPositiveApplyInterval) {
  ReplOptions options;
  options.apply_interval_ns = 0;
  EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
}

// The failover-safety rule: a lease at or below 2x the replication channel's
// fetch timeout could expire while one healthy probe is still retrying its
// fetch, promoting the backup under a live primary.
TEST(ReplOptionsTest, RejectsLeaseNotAboveTwiceFetchTimeout) {
  ReplOptions options;
  options.channel.fetch_timeout_ns = sim::Micros(200);
  options.probe_interval_ns = sim::Micros(100);

  options.lease_interval_ns = 2 * options.channel.fetch_timeout_ns;  // == 2x: rejected
  EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
  options.lease_interval_ns = sim::Micros(300);  // below 2x: rejected
  EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
  options.lease_interval_ns = 2 * options.channel.fetch_timeout_ns + 1;  // above: fine
  EXPECT_NO_THROW(ValidateOptions(options));
  options.channel.fetch_timeout_ns = 0;  // no fetch timeout, no rule
  options.lease_interval_ns = sim::Micros(100);
  EXPECT_NO_THROW(ValidateOptions(options));
}

// Channel misconfiguration propagates through the nested rfp validation.
TEST(ReplOptionsTest, RejectsInvalidChannelOptions) {
  ReplOptions options;
  options.channel.window = 0;
  EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
}

}  // namespace
}  // namespace repl
