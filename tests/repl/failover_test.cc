// Crash-driven failover under the schedule explorer (12-schedule CI budget,
// strict checker mode):
//
//   * a whole-node primary kill mid-workload promotes the backup within the
//     lease and loses zero acknowledged PUTs (per-key linearizability oracle
//     across the promotion, plus an explicit last-acked-value check);
//   * two racing coordinators promote exactly once (gate-authoritative
//     idempotence — the epoch advances a single step);
//   * a crash during the snapshot transfer refuses to promote the
//     half-copied backup, re-bootstraps after the primary restarts, and
//     fails over cleanly on a second kill with all data intact.

#include "src/repl/failover.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/checker.h"
#include "src/explore/explorer.h"
#include "src/explore/history.h"
#include "src/fault/injector.h"
#include "src/rdma/fabric.h"
#include "src/repl/cluster.h"
#include "src/rfp/channel.h"
#include "src/sim/engine.h"
#include "src/sim/schedule.h"
#include "src/sim/time.h"

namespace repl {
namespace {

using explore::Outcome;
using explore::ScenarioRun;

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

std::string ToString(std::span<const std::byte> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

std::string TraceOf(sim::Engine& engine) {
  return engine.schedule_policy() != nullptr
             ? sim::FormatDecisionTrace(engine.schedule_policy()->choices())
             : std::string();
}

ClusterConfig FastConfig() {
  ClusterConfig config = DefaultClusterConfig();
  config.kv.server_threads = 2;
  config.kv.buckets_per_partition = 256;
  config.repl.lease_interval_ns = sim::Micros(150);
  config.repl.probe_interval_ns = sim::Micros(20);
  config.repl.channel.fetch_timeout_ns = sim::Micros(50);
  return config;
}

explore::Options Budget(const std::string& label) {
  explore::Options options;
  options.max_schedules = 12;  // the CI budget, same as the corpus
  options.exhaustive_share_pct = 50;
  options.seed = 1;
  options.label = label;
  return options;
}

void ExpectCleanUnderBudget(const explore::Scenario& scenario, const std::string& label) {
  explore::Report report = explore::Explorer(Budget(label)).Run(scenario);
  EXPECT_FALSE(report.failed) << report.failure_message;
  EXPECT_EQ(report.violations, 0u);
}

// Kill the primary at 350us while closed-loop writers are mid-workload; the
// backup must take over within the lease and every acknowledged PUT must
// survive the promotion.
Outcome KillPrimaryScenario(ScenarioRun& run) {
  check::ScopedMode strict(check::Mode::kStrict);
  sim::Engine& eng = run.engine;
  rdma::Fabric fabric(eng);
  Cluster cluster(fabric, FastConfig());
  rdma::Node& client_node = fabric.AddNode("client");
  Client client(cluster, client_node);
  explore::HistoryRecorder rec;
  client.set_history_recorder(&rec);
  cluster.Start();

  fault::FaultInjector injector(fabric);
  injector.BindServer(cluster.primary().node().id(), &cluster.primary().rpc());
  fault::FaultPlan plan;
  plan.ServerCrashAll(sim::Micros(350), cluster.primary().node().id(), sim::Millis(20));
  injector.Arm(plan);

  std::string failure;
  bool done = false;
  eng.Spawn([](sim::Engine& engine, Client* c, std::string* error,
               bool* finished) -> sim::Task<void> {
    const std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};
    std::map<std::string, std::string> acked;
    try {
      // Rounds at a 100us cadence straddle the 350us kill: rounds 0-3 land
      // on the primary, the round in flight at the kill retries across the
      // failover, the rest land on the promoted backup.
      for (int round = 0; round < 6; ++round) {
        for (const std::string& key : keys) {
          const std::string value = "r" + std::to_string(round);
          if (co_await c->Put(Bytes(key), Bytes(value))) {
            acked[key] = value;
          }
        }
        co_await engine.Sleep(sim::Micros(100));
      }
      std::vector<std::byte> buf(256);
      for (const std::string& key : keys) {
        auto got = co_await c->Get(Bytes(key), buf);
        if (!got.has_value()) {
          *error = "acked key '" + key + "' lost across the failover";
          break;
        }
        const std::string value = ToString({buf.data(), *got});
        if (value != acked[key]) {
          *error = "key '" + key + "': acked '" + acked[key] + "' but read '" + value + "'";
          break;
        }
      }
    } catch (const std::exception& e) {
      *error = e.what();
    }
    *finished = true;
  }(eng, &client, &failure, &done));

  eng.RunUntil(sim::Millis(8));
  cluster.Stop();
  if (!done) {
    return Outcome::Fail("client actor wedged");
  }
  if (!failure.empty()) {
    return Outcome::Fail(failure);
  }
  if (cluster.coordinator().promotions() != 1) {
    return Outcome::Fail("expected exactly one promotion, saw " +
                         std::to_string(cluster.coordinator().promotions()));
  }
  if (cluster.leader_index() != 1 || cluster.epoch() != 2) {
    return Outcome::Fail("backup is not the epoch-2 leader after the kill");
  }
  rec.CheckStrict(TraceOf(eng));  // zero lost acked PUTs, oracle-verified
  return Outcome::Pass(rec.completed_ops());
}

// Two coordinators watch the same primary; after the kill both leases expire
// and both race Promote(). The backup's gate is the authority: the epoch
// must advance exactly once.
Outcome DoublePromotionScenario(ScenarioRun& run) {
  check::ScopedMode strict(check::Mode::kStrict);
  sim::Engine& eng = run.engine;
  rdma::Fabric fabric(eng);
  ClusterConfig config = FastConfig();
  Cluster cluster(fabric, config);
  FailoverCoordinator rival(cluster.primary(), cluster.backup(), cluster.replicator(),
                            cluster.sink(), cluster.group_key(), config.repl,
                            /*backup_leader_hint=*/1);
  cluster.Start();
  rival.Start();

  fault::FaultInjector injector(fabric);
  injector.BindServer(cluster.primary().node().id(), &cluster.primary().rpc());
  fault::FaultPlan plan;
  plan.ServerCrashAll(sim::Micros(100), cluster.primary().node().id(), sim::Millis(20));
  injector.Arm(plan);

  eng.RunUntil(sim::Millis(2));
  rival.Stop();
  cluster.Stop();

  if (cluster.leader_index() != 1) {
    return Outcome::Fail("backup was never promoted");
  }
  if (cluster.epoch() != 2) {
    return Outcome::Fail("epoch advanced to " + std::to_string(cluster.epoch()) +
                         ", expected exactly one step to 2");
  }
  const uint64_t total =
      cluster.coordinator().promotions() + rival.promotions();
  if (total != 1) {
    return Outcome::Fail("racing coordinators promoted " + std::to_string(total) + " times");
  }
  if (!cluster.coordinator().promoted() || !rival.promoted()) {
    return Outcome::Fail("a coordinator never observed the promotion");
  }
  return Outcome::Pass(cluster.epoch() * 10 + total);
}

// Crash the primary 5us into a multi-chunk snapshot sweep: the half-copied
// backup must refuse promotion (unavailable, but no split brain and no
// serving from partial state), re-bootstrap when the primary restarts, and
// fail over for real on a second kill with every key intact.
Outcome CrashDuringSnapshotScenario(ScenarioRun& run) {
  check::ScopedMode strict(check::Mode::kStrict);
  sim::Engine& eng = run.engine;
  rdma::Fabric fabric(eng);
  ClusterConfig config = FastConfig();
  config.repl.snapshot_chunk_buckets = 4;  // many chunks: a long sweep window
  Cluster cluster(fabric, config);

  constexpr int kKeys = 400;
  for (int i = 0; i < kKeys; ++i) {
    const auto key = Bytes("key" + std::to_string(i));
    const auto value = Bytes("val" + std::to_string(i));
    kv::JakiroServer& primary = cluster.primary();
    primary.partition(primary.OwnerThread(key)).Put(key, value);
  }

  rdma::Node& client_node = fabric.AddNode("client");
  Client client(cluster, client_node);
  cluster.Start();

  fault::FaultInjector injector(fabric);
  injector.BindServer(cluster.primary().node().id(), &cluster.primary().rpc());
  fault::FaultPlan plan;
  // First kill lands mid-sweep; the node restarts at 500us, re-attaches,
  // and the second kill at 1.2ms drives the real promotion.
  plan.ServerCrashAll(sim::Micros(5), cluster.primary().node().id(), sim::Micros(495));
  plan.ServerCrashAll(sim::Micros(1200), cluster.primary().node().id(), sim::Millis(20));
  injector.Arm(plan);

  std::string failure;
  bool refused_while_dark = false;
  bool done = false;
  eng.Spawn([](sim::Engine& engine, Cluster* cl, Client* c, bool* refused, std::string* error,
               bool* finished) -> sim::Task<void> {
    try {
      // During the first dark window the lease expires but the un-bootstrapped
      // backup must not take over.
      co_await engine.Sleep(sim::Micros(400));
      *refused = cl->coordinator().promotions_refused() > 0 &&
                 cl->coordinator().promotions() == 0 && cl->leader_index() == 0;
      // Wait out restart + re-bootstrap + second kill + promotion.
      co_await engine.Sleep(sim::Micros(1600) - engine.now());
      std::vector<std::byte> buf(256);
      for (int i = 0; i < kKeys; i += 29) {
        const std::string key = "key" + std::to_string(i);
        auto got = co_await c->Get(Bytes(key), buf);
        if (!got.has_value()) {
          *error = "prefilled key '" + key + "' missing after failover";
          break;
        }
        if (ToString({buf.data(), *got}) != "val" + std::to_string(i)) {
          *error = "prefilled key '" + key + "' has the wrong value";
          break;
        }
      }
      if (error->empty() && (co_await c->Get(Bytes("never-written"), buf)).has_value()) {
        *error = "phantom key appeared on the promoted backup";
      }
    } catch (const std::exception& e) {
      *error = e.what();
    }
    *finished = true;
  }(eng, &cluster, &client, &refused_while_dark, &failure, &done));

  eng.RunUntil(sim::Millis(8));
  cluster.Stop();
  if (!done) {
    return Outcome::Fail("client actor wedged");
  }
  if (!failure.empty()) {
    return Outcome::Fail(failure);
  }
  if (!refused_while_dark) {
    return Outcome::Fail("un-bootstrapped backup was not refused promotion during the "
                         "mid-snapshot dark window");
  }
  if (!cluster.sink().bootstrapped()) {
    return Outcome::Fail("backup never finished its re-bootstrap");
  }
  if (cluster.coordinator().promotions() != 1 || cluster.leader_index() != 1) {
    return Outcome::Fail("expected exactly one (post-re-bootstrap) promotion");
  }
  return Outcome::Pass(cluster.sink().snapshot_items() + cluster.coordinator().promotions());
}

TEST(ReplFailoverTest, KillPrimaryLosesNoAckedWrites) {
  ExpectCleanUnderBudget(&KillPrimaryScenario, "repl_kill_primary");
}

TEST(ReplFailoverTest, RacingCoordinatorsPromoteExactlyOnce) {
  ExpectCleanUnderBudget(&DoublePromotionScenario, "repl_double_promotion");
}

TEST(ReplFailoverTest, CrashDuringSnapshotRefusesThenRecovers) {
  ExpectCleanUnderBudget(&CrashDuringSnapshotScenario, "repl_crash_during_snapshot");
}

}  // namespace
}  // namespace repl
