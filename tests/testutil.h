// Shared helpers for the test suites.

#ifndef TESTS_TESTUTIL_H_
#define TESTS_TESTUTIL_H_

#include <optional>
#include <utility>

#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace rfptest {

// Runs a coroutine task to completion on `engine` and returns its result.
// The engine processes every pending event, so side effects of other spawned
// actors are visible afterwards.
template <typename T>
T RunSync(sim::Engine& engine, sim::Task<T> task) {
  std::optional<T> result;
  engine.Spawn([](sim::Task<T> t, std::optional<T>* out) -> sim::Task<void> {
    *out = co_await std::move(t);
  }(std::move(task), &result));
  engine.Run();
  return std::move(*result);
}

inline void RunSync(sim::Engine& engine, sim::Task<void> task) {
  engine.Spawn(std::move(task));
  engine.Run();
}

}  // namespace rfptest

#endif  // TESTS_TESTUTIL_H_
