// Smoke test of bench_ext_overload's --json output (path injected by
// CMake): the open-loop sweep table lands row for row in the dump, and the
// overload counters (BUSY responses, admission sheds) flush into the
// metrics snapshot. Companion to bench_json_smoke_test.cc.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "tests/obs/json_test_util.h"

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(BenchOverloadJsonSmokeTest, OverloadBenchProducesSchemaValidJson) {
  const std::string json_path = ::testing::TempDir() + "/bench_overload_smoke.json";
  std::remove(json_path.c_str());
  const std::string cmd = std::string("'") + BENCH_EXT_OVERLOAD_PATH + "' --json=" + json_path +
                          " --seed=7 > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  const std::string text = ReadFile(json_path);
  ASSERT_FALSE(text.empty()) << "no JSON written to " << json_path;
  const testjson::Value v = testjson::Parse(text);

  EXPECT_EQ(v.at("bench").string, "bench_ext_overload");
  EXPECT_EQ(v.at("schema_version").number, 1.0);

  // 6 offered loads x {protected, unprotected} + 1 crash-composition row.
  ASSERT_EQ(v.at("rows").array.size(), 13u);
  const testjson::Value& row0 = *v.at("rows").array[0];
  EXPECT_TRUE(row0.at("values").has("config"));
  EXPECT_TRUE(row0.at("values").has("offered"));
  EXPECT_TRUE(row0.at("values").has("goodput"));
  EXPECT_TRUE(row0.at("values").has("shed%"));
  EXPECT_TRUE(row0.at("values").has("p99_us"));
  EXPECT_TRUE(row0.at("values").has("busy"));

  // The protected runs shed under overload, so the conditional flushes must
  // have produced the overload instruments with nonzero totals.
  const testjson::Value& metrics = v.at("metrics");
  ASSERT_TRUE(metrics.is_array());
  bool saw_busy = false;
  bool saw_shed_admission = false;
  for (const auto& m : metrics.array) {
    if (m->at("name").string == "rfp.channel.busy_responses") {
      saw_busy = true;
      EXPECT_GT(m->at("value").number, 0.0);
    }
    if (m->at("name").string == "rfp.rpc.shed_admission") {
      saw_shed_admission = true;
      EXPECT_GT(m->at("value").number, 0.0);
    }
  }
  EXPECT_TRUE(saw_busy);
  EXPECT_TRUE(saw_shed_admission);

  std::remove(json_path.c_str());
}

}  // namespace
