#include "src/obs/json.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "tests/obs/json_test_util.h"

namespace obs {
namespace {

TEST(JsonEscapeTest, EscapesSpecialsAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, WritesNestedContainers) {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Field("name", "bench");
  w.Field("n", 42);
  w.Key("xs");
  w.BeginArray();
  w.Int(1);
  w.Double(2.5);
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(out, "{\"name\":\"bench\",\"n\":42,\"xs\":[1,2.5,true,null]}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::string out;
  JsonWriter w(&out);
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(out, "[null,null]");
}

TEST(JsonWriterTest, MisuseThrows) {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  EXPECT_THROW(w.Int(1), std::logic_error);       // value without a key
  EXPECT_THROW(w.EndArray(), std::logic_error);   // wrong closer
  w.Key("k");
  EXPECT_THROW(w.Key("k2"), std::logic_error);    // two keys in a row
  EXPECT_THROW(w.EndObject(), std::logic_error);  // key left dangling
}

// Round trip: everything the writer emits must parse back to the same
// structure through the test parser.
TEST(JsonWriterTest, RoundTripsThroughParser) {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Field("text", "line1\nline2 \"quoted\" back\\slash");
  w.Field("count", uint64_t{18446744073709551615ull});
  w.Field("ratio", 0.125);
  w.Field("flag", false);
  w.Key("nested");
  w.BeginObject();
  w.Key("empty_array");
  w.BeginArray();
  w.EndArray();
  w.Key("empty_object");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  w.EndObject();
  ASSERT_TRUE(w.complete());

  const testjson::Value v = testjson::Parse(out);
  EXPECT_EQ(v.at("text").string, "line1\nline2 \"quoted\" back\\slash");
  EXPECT_EQ(v.at("count").number, 18446744073709551615.0);
  EXPECT_EQ(v.at("ratio").number, 0.125);
  EXPECT_FALSE(v.at("flag").boolean);
  EXPECT_TRUE(v.at("nested").at("empty_array").array.empty());
  EXPECT_TRUE(v.at("nested").at("empty_object").object.empty());
}

TEST(JsonWriterTest, ControlCharacterRoundTrips) {
  std::string out;
  JsonWriter w(&out);
  w.String(std::string("a\x02") + "b");
  const testjson::Value v = testjson::Parse(out);
  EXPECT_EQ(v.string, std::string("a\x02") + "b");
}

}  // namespace
}  // namespace obs
