// End-to-end smoke test of the bench --json plumbing: runs the real
// bench_fig09_fetch_vs_reply binary (path injected by CMake) with a tiny
// RFP_BENCH_SCALE, then checks the dump is valid JSON with the documented
// schema. Guards the whole chain — flag parsing, row capture, the metrics
// flush on component destruction, and the atexit writer.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "tests/obs/json_test_util.h"

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(BenchJsonSmokeTest, Fig09ProducesSchemaValidJson) {
  const std::string json_path = ::testing::TempDir() + "/bench_fig09_smoke.json";
  std::remove(json_path.c_str());
  // 2% of the normal simulated window: seconds of wall clock, same code path.
  const std::string cmd = std::string("RFP_BENCH_SCALE=0.02 '") + BENCH_FIG09_PATH +
                          "' --json=" + json_path + " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  const std::string text = ReadFile(json_path);
  ASSERT_FALSE(text.empty()) << "no JSON written to " << json_path;
  const testjson::Value v = testjson::Parse(text);  // throws if not valid JSON

  EXPECT_EQ(v.at("bench").string, "bench_fig09_fetch_vs_reply");
  EXPECT_EQ(v.at("schema_version").number, 1.0);

  // config: argv echo, the scale we set, and one entry per simulated run
  // (fig09 sweeps P over 15 points x 2 modes = 30 echo runs).
  const testjson::Value& config = v.at("config");
  EXPECT_FALSE(config.at("argv").array.empty());
  EXPECT_EQ(config.at("bench_scale").number, 0.02);
  ASSERT_EQ(config.at("runs").array.size(), 30u);
  const testjson::Value& run0 = *config.at("runs").array[0];
  EXPECT_EQ(run0.at("label").string, "echo");
  EXPECT_TRUE(run0.at("params").has("process_ns"));

  // rows: the printed table cell for cell — 15 rows of 4 named columns.
  ASSERT_EQ(v.at("rows").array.size(), 15u);
  const testjson::Value& row0 = *v.at("rows").array[0];
  EXPECT_FALSE(row0.at("table").string.empty());
  EXPECT_TRUE(row0.at("values").has("P_us"));
  EXPECT_TRUE(row0.at("values").has("fetching"));
  EXPECT_TRUE(row0.at("values").has("server-reply"));

  // metrics: the registry snapshot; the echo runs must have flushed NIC and
  // channel instruments with labels.
  const testjson::Value& metrics = v.at("metrics");
  ASSERT_TRUE(metrics.is_array());
  ASSERT_FALSE(metrics.array.empty());
  bool saw_channel_calls = false;
  bool saw_nic_ops = false;
  for (const auto& m : metrics.array) {
    EXPECT_TRUE(m->has("name"));
    EXPECT_TRUE(m->has("kind"));
    EXPECT_TRUE(m->has("labels"));
    if (m->at("name").string == "rfp.channel.calls") {
      saw_channel_calls = true;
      EXPECT_GT(m->at("value").number, 0.0);
    }
    if (m->at("name").string == "rdma.nic.inbound_ops") {
      saw_nic_ops = true;
    }
  }
  EXPECT_TRUE(saw_channel_calls);
  EXPECT_TRUE(saw_nic_ops);

  std::remove(json_path.c_str());
}

}  // namespace
