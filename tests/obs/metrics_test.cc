#include "src/obs/metrics.h"

#include <string>

#include <gtest/gtest.h>

#include "tests/obs/json_test_util.h"

namespace obs {
namespace {

TEST(MetricsRegistryTest, SameNameAndLabelsShareInstrument) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("ops", {{"node", "server"}});
  Counter* b = reg.GetCounter("ops", {{"node", "server"}});
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotMatter) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("ops", {{"node", "n0"}, {"store", "jakiro"}});
  Counter* b = reg.GetCounter("ops", {{"store", "jakiro"}, {"node", "n0"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, DifferentLabelsGetDifferentInstruments) {
  MetricsRegistry reg;
  EXPECT_NE(reg.GetCounter("ops", {{"node", "n0"}}), reg.GetCounter("ops", {{"node", "n1"}}));
  EXPECT_NE(reg.GetCounter("ops"), reg.GetCounter("ops", {{"node", "n0"}}));
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistryTest, KindsAreNamespacedSeparately) {
  MetricsRegistry reg;
  reg.GetCounter("x")->Add(1);
  reg.GetGauge("x")->Set(2.0);
  reg.GetHistogram("x")->Record(3);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.GetCounter("x")->value(), 1u);
  EXPECT_EQ(reg.GetGauge("x")->value(), 2.0);
  EXPECT_EQ(reg.GetHistogram("x")->count(), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByNameThenLabels) {
  MetricsRegistry reg;
  reg.GetCounter("b");
  reg.GetCounter("a", {{"node", "n1"}});
  reg.GetCounter("a", {{"node", "n0"}});
  const auto samples = reg.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a");
  EXPECT_EQ(samples[0].labels, (Labels{{"node", "n0"}}));
  EXPECT_EQ(samples[1].name, "a");
  EXPECT_EQ(samples[1].labels, (Labels{{"node", "n1"}}));
  EXPECT_EQ(samples[2].name, "b");
}

TEST(MetricsRegistryTest, ResetValuesKeepsPointersValid) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("ops");
  sim::Histogram* h = reg.GetHistogram("lat");
  c->Add(5);
  h->Record(100);
  reg.ResetValues();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.GetCounter("ops"), c);  // same instrument, just zeroed
}

TEST(MetricsRegistryTest, WriteJsonRoundTrips) {
  MetricsRegistry reg;
  reg.GetCounter("ops", {{"node", "server"}})->Add(7);
  reg.GetGauge("load")->Set(0.5);
  sim::Histogram* h = reg.GetHistogram("lat_ns", {{"store", "jakiro"}});
  h->Record(10);
  h->Record(1000);

  std::string out;
  JsonWriter w(&out);
  reg.WriteJson(w);
  ASSERT_TRUE(w.complete());

  const testjson::Value v = testjson::Parse(out);
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array.size(), 3u);
  // Snapshot order: lat_ns, load, ops.
  const testjson::Value& lat = *v.array[0];
  EXPECT_EQ(lat.at("name").string, "lat_ns");
  EXPECT_EQ(lat.at("kind").string, "histogram");
  EXPECT_EQ(lat.at("labels").at("store").string, "jakiro");
  EXPECT_EQ(lat.at("count").number, 2.0);
  EXPECT_EQ(lat.at("min").number, 10.0);
  EXPECT_GE(lat.at("p99").number, 1000.0);
  const testjson::Value& load = *v.array[1];
  EXPECT_EQ(load.at("kind").string, "gauge");
  EXPECT_EQ(load.at("value").number, 0.5);
  const testjson::Value& ops = *v.array[2];
  EXPECT_EQ(ops.at("kind").string, "counter");
  EXPECT_EQ(ops.at("value").number, 7.0);
  EXPECT_EQ(ops.at("labels").at("node").string, "server");
}

TEST(MetricsRegistryTest, DefaultIsProcessWideSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

}  // namespace
}  // namespace obs
