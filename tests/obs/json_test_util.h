// Minimal recursive-descent JSON parser for tests.
//
// The production code only ever *writes* JSON (src/obs/json.h), so the tests
// bring their own reader to round-trip what the exporters produce. Supports
// the full value grammar the writer can emit (objects, arrays, strings with
// \uXXXX escapes, numbers, booleans, null); throws std::runtime_error on any
// syntax error, which makes "this file is valid JSON" a one-line assertion.

#ifndef TESTS_OBS_JSON_TEST_UTIL_H_
#define TESTS_OBS_JSON_TEST_UTIL_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace testjson {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  // Object member access; throws when absent or not an object.
  const Value& at(const std::string& key) const {
    if (kind != Kind::kObject) {
      throw std::runtime_error("json: not an object");
    }
    auto it = object.find(key);
    if (it == object.end()) {
      throw std::runtime_error("json: missing key " + key);
    }
    return *it->second;
  }
  bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value Parse() {
    Value v = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) {
      Fail("trailing characters");
    }
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw std::runtime_error("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) {
      Fail("unexpected end");
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Literal(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  Value ParseValue() {
    SkipSpace();
    Value v;
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        v.kind = Value::Kind::kString;
        v.string = ParseString();
        return v;
      case 't':
        if (!Literal("true")) Fail("bad literal");
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!Literal("false")) Fail("bad literal");
        v.kind = Value::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!Literal("null")) Fail("bad literal");
        v.kind = Value::Kind::kNull;
        return v;
      default:
        return ParseNumber();
    }
  }

  Value ParseObject() {
    Value v;
    v.kind = Value::Kind::kObject;
    Expect('{');
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipSpace();
      std::string key = ParseString();
      SkipSpace();
      Expect(':');
      v.object[key] = std::make_shared<Value>(ParseValue());
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  Value ParseArray() {
    Value v;
    v.kind = Value::Kind::kArray;
    Expect('[');
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(std::make_shared<Value>(ParseValue()));
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
      }
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("short \\u escape");
          }
          const unsigned code =
              static_cast<unsigned>(std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          // The writer only emits \u00XX for control characters; decode the
          // low byte and reject anything the writer cannot have produced.
          if (code > 0xff) {
            Fail("unexpected non-latin \\u escape");
          }
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          Fail("bad escape");
      }
    }
  }

  Value ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected value");
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline Value Parse(const std::string& text) { return Parser(text).Parse(); }

}  // namespace testjson

#endif  // TESTS_OBS_JSON_TEST_UTIL_H_
