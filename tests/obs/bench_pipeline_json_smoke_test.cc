// Smoke test of bench_ext_pipeline's --json output (path injected by
// CMake): the window x value-size sweep lands row for row in the dump, the
// window>1 rows report doorbell-batch occupancy above 1, and the pipelining
// instruments flush into the metrics snapshot. Companion to
// bench_json_smoke_test.cc.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "tests/obs/json_test_util.h"

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Table cells replay the printed strings verbatim; numeric columns parse.
double Cell(const testjson::Value& values, const std::string& key) {
  return std::stod(values.at(key).string);
}

TEST(BenchPipelineJsonSmokeTest, PipelineBenchProducesSchemaValidJson) {
  const std::string json_path = ::testing::TempDir() + "/bench_pipeline_smoke.json";
  std::remove(json_path.c_str());
  const std::string cmd = std::string("'") + BENCH_EXT_PIPELINE_PATH + "' --json=" + json_path +
                          " --seed=7 > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  const std::string text = ReadFile(json_path);
  ASSERT_FALSE(text.empty()) << "no JSON written to " << json_path;
  const testjson::Value v = testjson::Parse(text);

  EXPECT_EQ(v.at("bench").string, "bench_ext_pipeline");
  EXPECT_EQ(v.at("schema_version").number, 1.0);

  // 5 windows x 3 value sizes, plus 3 multicore worker-sweep rows.
  ASSERT_EQ(v.at("rows").array.size(), 18u);
  bool saw_batched_row = false;
  for (const auto& row : v.at("rows").array) {
    const testjson::Value& values = row->at("values");
    EXPECT_TRUE(values.has("window"));
    EXPECT_TRUE(values.has("workers"));
    EXPECT_TRUE(values.has("mops"));
    EXPECT_TRUE(values.has("speedup"));
    EXPECT_TRUE(values.has("doorbells"));
    EXPECT_TRUE(values.has("occupancy"));
    EXPECT_TRUE(values.has("errors"));
    EXPECT_EQ(Cell(values, "errors"), 0.0);
    if (Cell(values, "window") > 1.0) {
      // Every pipelined row actually batched its postings.
      EXPECT_GT(Cell(values, "doorbells"), 0.0);
      EXPECT_GT(Cell(values, "occupancy"), 1.0);
      saw_batched_row = true;
    } else {
      // window=1 is the pre-pipelining channel: no batch ever forms.
      EXPECT_EQ(Cell(values, "doorbells"), 0.0);
    }
  }
  EXPECT_TRUE(saw_batched_row);

  // The conditional flushes must have produced the pipelining instruments
  // with meaningful totals (batching happened, mean occupancy > 1).
  const testjson::Value& metrics = v.at("metrics");
  ASSERT_TRUE(metrics.is_array());
  bool saw_doorbells = false;
  bool saw_occupancy = false;
  for (const auto& m : metrics.array) {
    if (m->at("name").string == "rfp.channel.doorbell_batches") {
      saw_doorbells = true;
      EXPECT_GT(m->at("value").number, 0.0);
    }
    if (m->at("name").string == "rfp.channel.batch_occupancy") {
      saw_occupancy = true;
      EXPECT_EQ(m->at("kind").string, "histogram");
      EXPECT_GT(m->at("count").number, 0.0);
      EXPECT_GT(m->at("mean").number, 1.0);
    }
  }
  EXPECT_TRUE(saw_doorbells);
  EXPECT_TRUE(saw_occupancy);

  std::remove(json_path.c_str());
}

}  // namespace
