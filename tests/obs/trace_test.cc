#include "src/obs/trace.h"

#include <string>

#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/sim/time.h"
#include "tests/obs/json_test_util.h"

namespace obs {
namespace {

// Finds the first event object matching (ph, name); nullptr when absent.
const testjson::Value* FindEvent(const testjson::Value& trace, const std::string& ph,
                                 const std::string& name) {
  for (const auto& e : trace.at("traceEvents").array) {
    if (e->at("ph").string == ph && e->at("name").string == name) {
      return e.get();
    }
  }
  return nullptr;
}

TEST(TracerTest, SpanAndInstantRoundTrip) {
  Tracer tracer;
  tracer.NameTrack(7, "nic:outbound");
  tracer.Span("rdma", "READ", 7, sim::Nanos(1000), sim::Nanos(3500));
  tracer.Instant("rfp", "switch_to_reply", 7, sim::Nanos(4000));

  const testjson::Value v = testjson::Parse(tracer.ToJson());
  EXPECT_EQ(v.at("displayTimeUnit").string, "ns");

  const testjson::Value* span = FindEvent(v, "X", "READ");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->at("cat").string, "rdma");
  EXPECT_EQ(span->at("tid").number, 7.0);
  EXPECT_EQ(span->at("ts").number, 1.0);   // trace ts is microseconds
  EXPECT_EQ(span->at("dur").number, 2.5);

  const testjson::Value* instant = FindEvent(v, "i", "switch_to_reply");
  ASSERT_NE(instant, nullptr);
  EXPECT_EQ(instant->at("s").string, "t");

  const testjson::Value* track_name = FindEvent(v, "M", "thread_name");
  ASSERT_NE(track_name, nullptr);
  EXPECT_EQ(track_name->at("args").at("name").string, "nic:outbound");
}

TEST(TracerTest, BeginRunSeparatesPids) {
  Tracer tracer;
  tracer.BeginRun("run-a");
  tracer.Span("c", "x", 1, 0, 10);
  tracer.BeginRun("run-b");
  tracer.Span("c", "y", 1, 0, 10);

  const testjson::Value v = testjson::Parse(tracer.ToJson());
  const testjson::Value* a = FindEvent(v, "X", "x");
  const testjson::Value* b = FindEvent(v, "X", "y");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->at("pid").number, 1.0);
  EXPECT_EQ(b->at("pid").number, 2.0);
  // Both runs got process_name metadata.
  int process_names = 0;
  for (const auto& e : v.at("traceEvents").array) {
    if (e->at("ph").string == "M" && e->at("name").string == "process_name") {
      ++process_names;
    }
  }
  EXPECT_EQ(process_names, 2);
}

TEST(TracerTest, CapDropsAndCounts) {
  Tracer tracer(/*max_events=*/2);
  tracer.Span("c", "a", 1, 0, 1);
  tracer.Span("c", "b", 1, 0, 1);
  tracer.Span("c", "overflow", 1, 0, 1);
  tracer.Instant("c", "overflow2", 1, 0);
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped_events(), 2u);
  const testjson::Value v = testjson::Parse(tracer.ToJson());
  EXPECT_EQ(v.at("droppedEventCount").number, 2.0);
  EXPECT_EQ(FindEvent(v, "X", "overflow"), nullptr);
}

// Engine integration: with a sink attached, actor lifetimes and sleeps show
// up as spans; without one, nothing is recorded (the gate is a null check).
TEST(TracerTest, EngineEmitsActorAndSleepSpans) {
  Tracer tracer;
  sim::Engine engine;
  engine.set_trace_sink(&tracer);
  tracer.BeginRun("test");
  engine.Spawn([](sim::Engine& eng) -> sim::Task<void> {
    co_await eng.Sleep(sim::Nanos(500));
  }(engine));
  engine.Run();

  const testjson::Value v = testjson::Parse(tracer.ToJson());
  const testjson::Value* sleep = FindEvent(v, "X", "sleep");
  ASSERT_NE(sleep, nullptr);
  EXPECT_EQ(sleep->at("dur").number, 0.5);
  EXPECT_NE(FindEvent(v, "X", "actor-1"), nullptr);
}

TEST(TracerTest, EngineWithoutSinkRecordsNothing) {
  sim::Engine engine;
  engine.Spawn([](sim::Engine& eng) -> sim::Task<void> {
    co_await eng.Sleep(sim::Nanos(500));
  }(engine));
  engine.Run();  // must not crash; there is simply no tracer to check
  EXPECT_EQ(engine.trace_sink(), nullptr);
}

}  // namespace
}  // namespace obs
