// Smoke test of bench_ext_multicore's --json output (path injected by
// CMake). Pins the headline of docs/multicore.md: the MOPS-vs-workers sweep
// crosses from cpu-bound to nic_inbound-bound, and some 32-byte row clears
// 9 MOPS (>= 80% of the 11.26 MOPS in-bound envelope) while the bottleneck
// column attributes the plateau to the NIC model. Companion to
// bench_pipeline_json_smoke_test.cc.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "tests/obs/json_test_util.h"

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

double Cell(const testjson::Value& values, const std::string& key) {
  return std::stod(values.at(key).string);
}

TEST(BenchMulticoreJsonSmokeTest, WorkerSweepReachesNicBoundHeadline) {
  const std::string json_path = ::testing::TempDir() + "/bench_multicore_smoke.json";
  std::remove(json_path.c_str());
  const std::string cmd = std::string("'") + BENCH_EXT_MULTICORE_PATH + "' --json=" + json_path +
                          " --seed=7 > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  const std::string text = ReadFile(json_path);
  ASSERT_FALSE(text.empty()) << "no JSON written to " << json_path;
  const testjson::Value v = testjson::Parse(text);

  EXPECT_EQ(v.at("bench").string, "bench_ext_multicore");
  EXPECT_EQ(v.at("schema_version").number, 1.0);

  // 5 worker counts x 3 windows.
  ASSERT_EQ(v.at("rows").array.size(), 15u);
  bool saw_cpu_bound = false;
  bool saw_headline = false;  // >= 9 MOPS attributed to the NIC model
  for (const auto& row : v.at("rows").array) {
    const testjson::Value& values = row->at("values");
    EXPECT_TRUE(values.has("workers"));
    EXPECT_TRUE(values.has("window"));
    EXPECT_TRUE(values.has("mops"));
    EXPECT_TRUE(values.has("inbound_util"));
    EXPECT_TRUE(values.has("cpu_util"));
    EXPECT_TRUE(values.has("bottleneck"));
    EXPECT_TRUE(values.has("coalesced"));
    EXPECT_TRUE(values.has("steals"));
    EXPECT_EQ(Cell(values, "errors"), 0.0);
    EXPECT_GT(Cell(values, "coalesced"), 0.0);  // every row ran coalesced sweeps
    const std::string& bottleneck = values.at("bottleneck").string;
    if (Cell(values, "workers") == 1.0) {
      // One worker cannot outrun the in-bound engine: CPU is the bottleneck
      // and its pinned core is saturated.
      EXPECT_EQ(bottleneck, "cpu");
      EXPECT_GT(Cell(values, "cpu_util"), 0.9);
      saw_cpu_bound = true;
    }
    if (Cell(values, "mops") >= 9.0 && bottleneck == "nic_inbound") {
      EXPECT_GT(Cell(values, "inbound_util"), 0.9);
      saw_headline = true;
    }
  }
  EXPECT_TRUE(saw_cpu_bound);
  EXPECT_TRUE(saw_headline)
      << "no row reached >= 9 MOPS with the plateau attributed to the NIC model";

  // The coalesced-fetch instruments flushed into the metrics snapshot.
  const testjson::Value& metrics = v.at("metrics");
  ASSERT_TRUE(metrics.is_array());
  bool saw_coalesced = false;
  for (const auto& m : metrics.array) {
    if (m->at("name").string == "rfp.channel.coalesced_fetches") {
      saw_coalesced = true;
      EXPECT_GT(m->at("value").number, 0.0);
    }
  }
  EXPECT_TRUE(saw_coalesced);

  std::remove(json_path.c_str());
}

}  // namespace
