// Smoke test of bench_ext_memory's --json output (path injected by CMake):
// the staged/zerocopy value sweep and the channel-churn table land row for
// row in the dump, the zero-copy acceptance bar holds (>= 1.5x staged at
// 64 KiB), churn rounds after the warm round perform zero re-registrations,
// and the allocator instruments flush into the metrics snapshot. Companion
// to bench_json_smoke_test.cc.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "tests/obs/json_test_util.h"

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Table cells replay the printed strings verbatim; numeric columns parse.
double Cell(const testjson::Value& values, const std::string& key) {
  return std::stod(values.at(key).string);
}

TEST(BenchMemoryJsonSmokeTest, MemoryBenchProducesSchemaValidJson) {
  const std::string json_path = ::testing::TempDir() + "/bench_memory_smoke.json";
  std::remove(json_path.c_str());
  const std::string cmd = std::string("'") + BENCH_EXT_MEMORY_PATH + "' --json=" + json_path +
                          " --seed=7 > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  const std::string text = ReadFile(json_path);
  ASSERT_FALSE(text.empty()) << "no JSON written to " << json_path;
  const testjson::Value v = testjson::Parse(text);

  EXPECT_EQ(v.at("bench").string, "bench_ext_memory");
  EXPECT_EQ(v.at("schema_version").number, 1.0);

  // 6 value sizes x 2 modes, plus 5 churn rounds.
  ASSERT_EQ(v.at("rows").array.size(), 17u);
  int sweep_rows = 0;
  int churn_rows = 0;
  bool saw_64k_zerocopy = false;
  for (const auto& row : v.at("rows").array) {
    const testjson::Value& values = row->at("values");
    if (values.has("mode")) {
      ++sweep_rows;
      EXPECT_TRUE(values.has("mops"));
      EXPECT_TRUE(values.has("speedup"));
      EXPECT_TRUE(values.has("reg_mib"));
      EXPECT_TRUE(values.has("zc_fetches"));
      EXPECT_EQ(Cell(values, "errors"), 0.0);
      EXPECT_EQ(Cell(values, "fallbacks"), 0.0);
      const bool zerocopy = values.at("mode").string == "zerocopy";
      if (zerocopy) {
        // Every zerocopy row actually took the indirect-descriptor path.
        EXPECT_GT(Cell(values, "zc_fetches"), 0.0);
      } else {
        EXPECT_EQ(Cell(values, "zc_fetches"), 0.0);
      }
      if (zerocopy && Cell(values, "value") == 65536.0) {
        saw_64k_zerocopy = true;
        // The acceptance bar: zero-copy beats the staged copy path by at
        // least 1.5x once the value is 64 KiB.
        EXPECT_GE(Cell(values, "speedup"), 1.5);
      }
    } else {
      ASSERT_TRUE(values.has("round"));
      ++churn_rows;
      EXPECT_TRUE(values.has("reg_kib"));
      if (Cell(values, "round") > 0.0) {
        // Steady-state churn: rings recycle through the pools, the fabric
        // census stays flat.
        EXPECT_EQ(Cell(values, "new_regs"), 0.0);
        EXPECT_EQ(Cell(values, "dereg"), 0.0);
        EXPECT_GT(Cell(values, "mr_reuses"), 0.0);
        EXPECT_GE(Cell(values, "reconnects"), Cell(values, "round"));
      }
    }
  }
  EXPECT_EQ(sweep_rows, 12);
  EXPECT_EQ(churn_rows, 5);
  EXPECT_TRUE(saw_64k_zerocopy);

  // The pools flush their books on teardown: allocator counters and the
  // registered-footprint gauge must be present with meaningful totals.
  const testjson::Value& metrics = v.at("metrics");
  ASSERT_TRUE(metrics.is_array());
  bool saw_mr_reuse = false;
  bool saw_registered = false;
  for (const auto& m : metrics.array) {
    if (m->at("name").string == "mem.mr_reuse") {
      saw_mr_reuse = true;
      EXPECT_GT(m->at("value").number, 0.0);
    }
    if (m->at("name").string == "mem.registered_bytes") {
      saw_registered = true;
      EXPECT_GT(m->at("value").number, 0.0);
    }
  }
  EXPECT_TRUE(saw_mr_reuse);
  EXPECT_TRUE(saw_registered);

  std::remove(json_path.c_str());
}

}  // namespace
