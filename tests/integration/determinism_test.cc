// End-to-end determinism: a full KV cluster run is bit-identical for
// identical seeds — the property that makes every number in
// EXPERIMENTS.md reproducible.

#include <gtest/gtest.h>

#include "src/kv/jakiro.h"
#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/sim/time.h"
#include "src/workload/ycsb.h"

namespace kv {
namespace {

struct RunFingerprint {
  uint64_t ops = 0;
  uint64_t fetch_reads = 0;
  uint64_t failed_fetches = 0;
  sim::Time final_time = 0;
  uint64_t latency_checksum = 0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint RunCluster(uint64_t workload_seed) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  JakiroConfig config;
  config.server_threads = 3;
  JakiroServer server(fabric, server_node, config);

  workload::WorkloadSpec spec;
  spec.num_keys = 4096;
  spec.get_fraction = 0.9;
  spec.seed = workload_seed;
  std::vector<std::byte> key(16);
  std::vector<std::byte> value(64);
  for (uint64_t id = 0; id < spec.num_keys; ++id) {
    workload::MakeKey(id, key);
    workload::FillValue(id, std::span<std::byte>(value.data(), 32));
    server.partition(server.OwnerThread(key)).Put(key,
                                                  std::span<const std::byte>(value.data(), 32));
  }

  RunFingerprint fp;
  const int kClients = 9;
  std::vector<rdma::Node*> nodes;
  std::vector<std::unique_ptr<JakiroClient>> clients;
  for (int t = 0; t < kClients; ++t) {
    if (t < 3) {
      nodes.push_back(&fabric.AddNode("client" + std::to_string(t)));
    }
    clients.push_back(std::make_unique<JakiroClient>(server, *nodes[static_cast<size_t>(t % 3)]));
    engine.Spawn([](sim::Engine& eng, JakiroClient* c, workload::WorkloadSpec sp, int id,
                    RunFingerprint* out) -> sim::Task<void> {
      workload::Generator gen(sp, static_cast<uint64_t>(id));
      std::vector<std::byte> k(16);
      std::vector<std::byte> v(256);
      std::vector<std::byte> o(256);
      while (eng.now() < sim::Millis(2)) {
        const workload::Op op = gen.Next();
        workload::MakeKey(op.key_id, k);
        const sim::Time start = eng.now();
        if (op.type == workload::OpType::kGet) {
          co_await c->Get(k, o);
        } else {
          workload::FillValue(op.key_id, std::span<std::byte>(v.data(), 32));
          co_await c->Put(k, std::span<const std::byte>(v.data(), 32));
        }
        ++out->ops;
        out->latency_checksum = sim::Mix64(out->latency_checksum ^
                                           static_cast<uint64_t>(eng.now() - start));
      }
    }(engine, clients.back().get(), spec, t, &fp));
  }
  server.Start();
  engine.RunUntil(sim::Millis(2));
  server.Stop();
  for (const auto& client : clients) {
    const auto stats = client->MergedChannelStats();
    fp.fetch_reads += stats.fetch_reads;
    fp.failed_fetches += stats.failed_fetches;
  }
  fp.final_time = engine.now();
  return fp;
}

TEST(DeterminismTest, IdenticalSeedsGiveIdenticalClusterRuns) {
  const RunFingerprint a = RunCluster(7);
  const RunFingerprint b = RunCluster(7);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.ops, 1000u);
}

TEST(DeterminismTest, DifferentWorkloadSeedsDiverge) {
  const RunFingerprint a = RunCluster(7);
  const RunFingerprint c = RunCluster(8);
  EXPECT_NE(a.latency_checksum, c.latency_checksum);
}

}  // namespace
}  // namespace kv
