// Cross-system integration tests: the four KV systems must agree
// functionally (same operations -> same results) even though their
// transports and data structures differ completely.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/kv/jakiro.h"
#include "src/kv/memcached_store.h"
#include "src/kv/pilaf_store.h"
#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/sim/time.h"
#include "src/workload/ycsb.h"

namespace kv {
namespace {

// A deterministic op script: (is_put, key_id, value_payload-id).
struct ScriptOp {
  bool put;
  uint64_t key_id;
  uint64_t value_id;
};

std::vector<ScriptOp> MakeScript(int n, uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<ScriptOp> script;
  for (int i = 0; i < n; ++i) {
    script.push_back(
        ScriptOp{rng.NextBernoulli(0.4), rng.NextBounded(64), rng.NextBounded(1 << 20)});
  }
  return script;
}

// Outcome of a script: for each GET, the observed value id (or miss).
using Observations = std::vector<std::optional<uint64_t>>;

Observations ReferenceRun(const std::vector<ScriptOp>& script) {
  std::map<uint64_t, uint64_t> state;
  Observations obs;
  for (const ScriptOp& op : script) {
    if (op.put) {
      state[op.key_id] = op.value_id;
    } else {
      auto it = state.find(op.key_id);
      obs.push_back(it == state.end() ? std::nullopt : std::make_optional(it->second));
    }
  }
  return obs;
}

std::optional<uint64_t> DecodeValue(std::span<const std::byte> bytes) {
  // The script stores the value id in the first 8 bytes (EncodeValueId).
  if (bytes.size() < 8) {
    return std::nullopt;
  }
  uint64_t id = 0;
  std::memcpy(&id, bytes.data(), sizeof(id));
  return id;
}

void EncodeValueId(uint64_t value_id, std::vector<std::byte>& out) {
  out.assign(32, std::byte{0});
  std::memcpy(out.data(), &value_id, sizeof(value_id));
}

template <typename Client>
sim::Task<void> RunScript(const std::vector<ScriptOp>* script, Client* client,
                          Observations* obs) {
  std::vector<std::byte> key(16);
  std::vector<std::byte> value;
  std::vector<std::byte> out(4096);
  for (const ScriptOp& op : *script) {
    workload::MakeKey(op.key_id, key);
    if (op.put) {
      EncodeValueId(op.value_id, value);
      co_await client->Put(key, value);
    } else {
      auto got = co_await client->Get(key, out);
      if (!got.has_value()) {
        obs->push_back(std::nullopt);
      } else {
        obs->push_back(DecodeValue(std::span<const std::byte>(out.data(), *got)));
      }
    }
  }
}

TEST(KvEquivalenceTest, JakiroMatchesReference) {
  const auto script = MakeScript(600, 11);
  const Observations expected = ReferenceRun(script);

  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");
  JakiroServer server(fabric, server_node, JakiroConfig{});
  JakiroClient client(server, client_node);
  server.Start();
  Observations observed;
  engine.Spawn(RunScript(&script, &client, &observed));
  engine.RunUntil(sim::Millis(50));
  server.Stop();
  EXPECT_EQ(observed, expected);
}

TEST(KvEquivalenceTest, ServerReplyVariantMatchesReference) {
  const auto script = MakeScript(600, 12);
  const Observations expected = ReferenceRun(script);

  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");
  JakiroServer server(fabric, server_node, JakiroConfig::Build().ServerReply());
  JakiroClient client(server, client_node);
  server.Start();
  Observations observed;
  engine.Spawn(RunScript(&script, &client, &observed));
  engine.RunUntil(sim::Millis(50));
  server.Stop();
  EXPECT_EQ(observed, expected);
}

TEST(KvEquivalenceTest, MemcachedMatchesReference) {
  const auto script = MakeScript(400, 13);
  const Observations expected = ReferenceRun(script);

  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");
  MemcachedServer server(fabric, server_node, MemcachedConfig{});
  MemcachedClient client(server, client_node, 0);
  server.Start();
  Observations observed;
  engine.Spawn(RunScript(&script, &client, &observed));
  engine.RunUntil(sim::Millis(100));
  server.Stop();
  EXPECT_EQ(observed, expected);
}

TEST(KvEquivalenceTest, PilafMatchesReferenceWithSingleClient) {
  // With one client there are no read/write races, so Pilaf must agree
  // exactly too (its CRC machinery only kicks in under concurrency).
  const auto script = MakeScript(400, 14);
  const Observations expected = ReferenceRun(script);

  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");
  PilafServer server(fabric, server_node, PilafConfig{});
  PilafClient client(fabric, client_node, server, 0);
  server.Start();
  Observations observed;
  engine.Spawn(RunScript(&script, &client, &observed));
  engine.RunUntil(sim::Millis(100));
  server.Stop();
  EXPECT_EQ(observed, expected);
}

// Paper Section 4.3: "the overhead of adding/reducing clients in Jakiro is
// minimal" — dynamically joining clients mid-run must work and scale.
TEST(ClientChurnTest, ClientsJoinMidRun) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  JakiroConfig config;
  config.server_threads = 2;
  JakiroServer server(fabric, server_node, config);
  server.Start();

  std::vector<std::unique_ptr<JakiroClient>> clients;
  std::vector<rdma::Node*> nodes;
  std::vector<uint64_t> ops(6, 0);

  auto driver = [](sim::Engine& eng, JakiroClient* client, int id, sim::Time deadline,
                   uint64_t* count) -> sim::Task<void> {
    workload::WorkloadSpec spec;
    spec.num_keys = 1000;
    spec.get_fraction = 0.5;
    workload::Generator gen(spec, static_cast<uint64_t>(id));
    std::vector<std::byte> key(16);
    std::vector<std::byte> value(64);
    std::vector<std::byte> out(4096);
    while (eng.now() < deadline) {
      const workload::Op op = gen.Next();
      workload::MakeKey(op.key_id, key);
      if (op.type == workload::OpType::kGet) {
        co_await client->Get(key, out);
      } else {
        workload::FillValue(op.key_id, std::span<std::byte>(value.data(), 32));
        co_await client->Put(key, std::span<const std::byte>(value.data(), 32));
      }
      ++*count;
    }
  };

  const sim::Time deadline = sim::Millis(4);
  // Three clients from the start.
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(&fabric.AddNode("early" + std::to_string(i)));
    clients.push_back(std::make_unique<JakiroClient>(server, *nodes.back()));
    engine.Spawn(driver(engine, clients.back().get(), i, deadline, &ops[static_cast<size_t>(i)]));
  }
  // Three more join at t = 2 ms.
  engine.ScheduleAt(sim::Millis(2), [&] {
    for (int i = 3; i < 6; ++i) {
      nodes.push_back(&fabric.AddNode("late" + std::to_string(i)));
      clients.push_back(std::make_unique<JakiroClient>(server, *nodes.back()));
      engine.Spawn(
          driver(engine, clients.back().get(), i, deadline, &ops[static_cast<size_t>(i)]));
    }
  });

  engine.RunUntil(deadline);
  server.Stop();
  for (int i = 0; i < 6; ++i) {
    EXPECT_GT(ops[static_cast<size_t>(i)], 100u) << "client " << i;
  }
  // Late joiners ran for half the time: roughly half the ops.
  const double early = static_cast<double>(ops[0] + ops[1] + ops[2]);
  const double late = static_cast<double>(ops[3] + ops[4] + ops[5]);
  EXPECT_NEAR(late / early, 0.5, 0.15);
}

}  // namespace
}  // namespace kv
