// Cross-module property tests for the paradigm itself, running full
// client/server clusters on the fabric.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace rfp {
namespace {

struct EchoOutcome {
  double mops = 0;
  uint64_t server_outbound_ops = 0;
  uint64_t server_inbound_ops = 0;
  uint64_t calls = 0;
};

// Runs a small echo cluster (7 client threads on 7 nodes, 4 server threads)
// and reports throughput plus the server NIC's op counters.
EchoOutcome RunEchoCluster(RfpOptions::ForceMode mode, sim::Time process_ns,
                           uint32_t result_size, int retry, uint32_t fetch_size) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rfp::RpcServer server(fabric, server_node, 4);
  server.RegisterHandler(1, [process_ns, result_size](const HandlerContext&,
                                                      std::span<const std::byte>,
                                                      std::span<std::byte>) -> HandlerResult {
    return HandlerResult{result_size, process_ns};
  });

  RfpOptions options;
  options.force_mode = mode;
  options.retry_threshold = retry;
  options.fetch_size = fetch_size;
  const int kClients = 7;
  std::vector<Channel*> channels;
  std::vector<std::unique_ptr<RpcClient>> stubs;
  std::vector<uint64_t> ops(kClients, 0);
  for (int t = 0; t < kClients; ++t) {
    rdma::Node& node = fabric.AddNode("client" + std::to_string(t));
    channels.push_back(server.AcceptChannel(node, options, t % 4));
    stubs.push_back(std::make_unique<RpcClient>(channels.back()));
  }
  server.Start();

  const sim::Time warmup = sim::Millis(1);
  const sim::Time end = sim::Millis(4);
  for (int t = 0; t < kClients; ++t) {
    engine.Spawn([](sim::Engine& eng, RpcClient* client, sim::Time w, sim::Time e,
                    uint64_t* count) -> sim::Task<void> {
      std::vector<std::byte> req(1);
      std::vector<std::byte> resp(16384);
      while (eng.now() < e) {
        const sim::Time start = eng.now();
        co_await client->Call(1, req, resp);
        if (start >= w && eng.now() <= e) {
          ++*count;
        }
      }
    }(engine, stubs[static_cast<size_t>(t)].get(), warmup, end, &ops[static_cast<size_t>(t)]));
  }
  engine.RunUntil(end);
  server.Stop();

  EchoOutcome outcome;
  for (uint64_t o : ops) {
    outcome.calls += o;
  }
  outcome.mops = static_cast<double>(outcome.calls) / sim::ToSeconds(end - warmup) / 1e6;
  outcome.server_outbound_ops = server_node.nic().outbound_ops();
  outcome.server_inbound_ops = server_node.nic().inbound_ops();
  return outcome;
}

// Paper Table 1, validated by op accounting: in RFP the server is involved
// in processing but issues NO out-bound RDMA; in server-reply it issues one
// out-bound WRITE per call; in both, requests arrive as in-bound ops.
TEST(ParadigmMatrixTest, RfpServerHandlesOnlyInbound) {
  const EchoOutcome rfp =
      RunEchoCluster(RfpOptions::ForceMode::kForceFetch, sim::Nanos(400), 32, 5, 256);
  EXPECT_EQ(rfp.server_outbound_ops, 0u);
  // Requests + fetches all hit the in-bound engine: >= 2 per call.
  EXPECT_GE(rfp.server_inbound_ops, 2 * rfp.calls);
}

TEST(ParadigmMatrixTest, ServerReplyIssuesOneOutboundPerCall) {
  const EchoOutcome reply =
      RunEchoCluster(RfpOptions::ForceMode::kForceReply, sim::Nanos(400), 32, 5, 256);
  // One reply WRITE per call (plus warmup traffic; compare loosely).
  EXPECT_GT(reply.server_outbound_ops, reply.calls);
  EXPECT_LT(reply.server_outbound_ops, reply.calls * 2);
}

// The paper's safety claims: with the hybrid switch, RFP "at least has the
// same performance with the server-reply paradigm when the server load
// becomes extremely high", and with an *adequate* R it tracks the better of
// the two pure modes. With an inadequate R (fewer retries than the process
// time needs — Section 1's "using inappropriate parameters may offset the
// performance advantage"), the machine deliberately degenerates to
// server-reply to save client CPU. Property-swept over (R, F, P, S).
class AdaptiveDominanceTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t, int64_t, uint32_t>> {};

TEST_P(AdaptiveDominanceTest, AdaptiveTracksTheBetterParadigm) {
  const auto [retry, fetch, process_us, result_size] = GetParam();
  const sim::Time p = sim::Micros(process_us);
  const EchoOutcome fetch_mode =
      RunEchoCluster(RfpOptions::ForceMode::kForceFetch, p, result_size, retry, fetch);
  const EchoOutcome reply_mode =
      RunEchoCluster(RfpOptions::ForceMode::kForceReply, p, result_size, retry, fetch);
  const EchoOutcome adaptive =
      RunEchoCluster(RfpOptions::ForceMode::kAdaptive, p, result_size, retry, fetch);
  // R is adequate when R fetch round trips (~1.3 us each) cover P.
  const bool r_adequate = static_cast<double>(retry) * 1.3 >= static_cast<double>(process_us);
  const double best = std::max(fetch_mode.mops, reply_mode.mops);
  const double floor = r_adequate ? best : reply_mode.mops;
  // Within 12% of the applicable bound (switching costs a little).
  EXPECT_GE(adaptive.mops, floor * 0.88)
      << "R=" << retry << " F=" << fetch << " P=" << process_us << "us S=" << result_size
      << " (fetch=" << fetch_mode.mops << " reply=" << reply_mode.mops
      << " adequate=" << r_adequate << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdaptiveDominanceTest,
    ::testing::Combine(::testing::Values(2, 5),                 // R
                       ::testing::Values(256u, 640u),           // F
                       ::testing::Values(1, 4, 12),             // P (us)
                       ::testing::Values(16u, 600u)));          // S

// Responses larger than F must still complete (remainder fetch) for any
// (F, S) combination, including S straddling the fetch boundary.
class RemainderFetchTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(RemainderFetchTest, AllSizesComplete) {
  const auto [fetch, result_size] = GetParam();
  const EchoOutcome out =
      RunEchoCluster(RfpOptions::ForceMode::kForceFetch, sim::Nanos(300), result_size, 5, fetch);
  EXPECT_GT(out.calls, 100u) << "F=" << fetch << " S=" << result_size;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RemainderFetchTest,
                         ::testing::Combine(::testing::Values(16u, 256u, 1024u),
                                            ::testing::Values(1u, 247u, 248u, 249u, 4096u)));

// Accounting identities that must hold for any run: every call issues
// exactly one request WRITE, and every fetch READ is either the successful
// final fetch, a failed retry, or a remainder fetch.
TEST(AccountingInvariantTest, ChannelCountersBalance) {
  for (int64_t p_us : {1, 5, 9}) {
    const EchoOutcome outcome = RunEchoCluster(RfpOptions::ForceMode::kAdaptive,
                                               sim::Micros(p_us), 32, 5, 256);
    EXPECT_GT(outcome.calls, 0u) << "P=" << p_us;
  }
  // The identity itself is checked against a single channel where the full
  // Stats struct is visible.
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  RpcServer server(fabric, server_node, 1);
  server.RegisterHandler(1, [](const HandlerContext&, std::span<const std::byte>,
                               std::span<std::byte>) -> HandlerResult {
    return HandlerResult{600, sim::Micros(2)};  // forces retries AND remainders
  });
  rdma::Node& client_node = fabric.AddNode("client");
  RfpOptions options;
  options.fetch_size = 256;
  Channel* channel = server.AcceptChannel(client_node, options, 0);
  server.Start();
  engine.Spawn([](Channel* ch) -> sim::Task<void> {
    RpcClient client(ch);
    std::vector<std::byte> resp(4096);
    for (int i = 0; i < 200; ++i) {
      co_await client.Call(1, {}, resp);
    }
  }(channel));
  engine.RunUntil(sim::Millis(20));
  server.Stop();

  const Channel::Stats& stats = channel->stats();
  EXPECT_EQ(stats.request_writes, stats.calls);
  // fetch reads = successful final fetches (= calls completed by fetching)
  //             + failed retries + remainder fetches.
  EXPECT_EQ(stats.fetch_reads,
            stats.calls + stats.failed_fetches + stats.extra_fetches);
  EXPECT_GT(stats.failed_fetches, 0u);  // 2 us process time forces retries
  EXPECT_EQ(stats.extra_fetches, stats.calls);  // 600 B > F=256 every time
  EXPECT_EQ(stats.retries_per_call.count(), stats.calls);
}

}  // namespace
}  // namespace rfp
