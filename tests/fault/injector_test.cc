#include "src/fault/injector.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/plan.h"
#include "src/rdma/fabric.h"
#include "src/rdma/memory.h"
#include "src/rdma/nic.h"
#include "src/rdma/node.h"
#include "src/rdma/qp.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace fault {
namespace {

class InjectorTest : public ::testing::Test {
 protected:
  InjectorTest() : fabric_(engine_) {
    server_ = &fabric_.AddNode("server");
    client_ = &fabric_.AddNode("client");
  }

  sim::Engine engine_;
  rdma::Fabric fabric_;
  rdma::Node* server_ = nullptr;
  rdma::Node* client_ = nullptr;
};

TEST_F(InjectorTest, NicDegradeAppliesAndRestores) {
  FaultInjector injector(fabric_);
  FaultPlan plan;
  plan.NicDegrade(sim::Micros(10), server_->id(), /*inbound=*/true, 5.0, sim::Micros(40));
  injector.Arm(plan);

  double during = 0;
  engine_.ScheduleAt(sim::Micros(30), [&] { during = server_->nic().inbound_degrade(); });
  engine_.RunUntil(sim::Micros(100));
  EXPECT_DOUBLE_EQ(during, 5.0);
  EXPECT_DOUBLE_EQ(server_->nic().inbound_degrade(), 1.0);  // restored after window
  EXPECT_EQ(injector.injected(FaultKind::kNicDegrade), 1u);
}

TEST_F(InjectorTest, NicStallDelaysInboundService) {
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  (void)sqp;
  rdma::MemoryRegion* local = client_->RegisterMemory(4096, rdma::kAccessLocal);
  rdma::MemoryRegion* remote = server_->RegisterMemory(4096, rdma::kAccessRemoteRead);

  FaultInjector injector(fabric_);
  FaultPlan plan;
  plan.NicStall(0, server_->id(), /*inbound=*/true, sim::Micros(50));
  injector.Arm(plan);

  sim::Time read_done = 0;
  engine_.ScheduleAt(sim::Micros(1), [&] {
    engine_.Spawn([](rdma::QueuePair* qp, rdma::MemoryRegion* l, rdma::MemoryRegion* r,
                     sim::Engine* eng, sim::Time* done) -> sim::Task<void> {
      rdma::WorkCompletion wc = co_await qp->Read(*l, 0, r->remote_key(), 0, 64);
      EXPECT_TRUE(wc.ok());
      *done = eng->now();
    }(cqp, local, remote, &engine_, &read_done));
  });
  engine_.RunUntil(sim::Millis(1));
  // The READ issued at 1 us cannot be served before the in-bound engine is
  // released at 50 us.
  EXPECT_GE(read_done, sim::Micros(50));
  EXPECT_EQ(injector.injected(FaultKind::kNicStall), 1u);
}

TEST_F(InjectorTest, LinkBurstInstallsAndClearsPairFault) {
  FaultInjector injector(fabric_);
  FaultPlan plan;
  plan.LinkBurst(sim::Micros(5), server_->id(), client_->id(), 0.4, sim::Micros(3),
                 sim::Micros(20));
  injector.Arm(plan);

  bool installed = false;
  engine_.ScheduleAt(sim::Micros(10), [&] {
    const rdma::LinkFault* fault = fabric_.FindLinkFault(client_->id(), server_->id());
    installed = fault != nullptr && fault->loss_prob == 0.4 &&
                fault->extra_delay_ns == sim::Micros(3);
  });
  engine_.RunUntil(sim::Micros(100));
  EXPECT_TRUE(installed);
  EXPECT_EQ(fabric_.FindLinkFault(client_->id(), server_->id()), nullptr);  // cleared
}

TEST_F(InjectorTest, QpErrorFailsConnectedPairsAndReadsComplete) {
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  rdma::MemoryRegion* local = client_->RegisterMemory(4096, rdma::kAccessLocal);
  rdma::MemoryRegion* remote = server_->RegisterMemory(4096, rdma::kAccessRemoteRead);

  FaultInjector injector(fabric_);
  FaultPlan plan;
  plan.QpError(sim::Micros(5), server_->id(), client_->id());
  injector.Arm(plan);

  rdma::WcStatus status = rdma::WcStatus::kSuccess;
  engine_.ScheduleAt(sim::Micros(10), [&] {
    engine_.Spawn([](rdma::QueuePair* qp, rdma::MemoryRegion* l, rdma::MemoryRegion* r,
                     rdma::WcStatus* out) -> sim::Task<void> {
      rdma::WorkCompletion wc = co_await qp->Read(*l, 0, r->remote_key(), 0, 64);
      *out = wc.status;
    }(cqp, local, remote, &status));
  });
  engine_.RunUntil(sim::Micros(100));
  EXPECT_TRUE(cqp->in_error());
  EXPECT_TRUE(sqp->in_error());
  // The op completes (with an error status) instead of hanging.
  EXPECT_EQ(status, rdma::WcStatus::kQpError);
}

TEST_F(InjectorTest, ServerCrashAndRestartToggleThreadState) {
  rfp::RpcServer server(fabric_, *server_, 2);
  FaultInjector injector(fabric_);
  injector.BindServer(server_->id(), &server);
  FaultPlan plan;
  plan.ServerCrash(sim::Micros(10), server_->id(), /*thread=*/1, sim::Micros(40));
  injector.Arm(plan);

  bool crashed_mid_window = false;
  engine_.ScheduleAt(sim::Micros(30), [&] { crashed_mid_window = server.thread_crashed(1); });
  engine_.RunUntil(sim::Micros(100));
  EXPECT_TRUE(crashed_mid_window);
  EXPECT_FALSE(server.thread_crashed(1));  // restarted after the window
  EXPECT_FALSE(server.thread_crashed(0));  // the other worker was untouched
  EXPECT_EQ(server.thread_crashes(), 1u);
}

TEST_F(InjectorTest, CorruptRegionFlipsExactWindowDeterministically) {
  rdma::MemoryRegion* mr = server_->RegisterMemory(256, rdma::kAccessRemoteRead);
  for (size_t i = 0; i < 256; ++i) {
    mr->bytes()[i] = static_cast<std::byte>(static_cast<uint8_t>(i));
  }
  const std::vector<std::byte> before(mr->bytes().begin(), mr->bytes().end());

  FaultInjector injector(fabric_);
  FaultPlan plan;
  plan.CorruptRegion(sim::Micros(1), mr->remote_key().rkey, 32, 16, /*seed=*/42);
  injector.Arm(plan);
  engine_.RunUntil(sim::Micros(10));

  for (size_t i = 0; i < 256; ++i) {
    if (i >= 32 && i < 48) {
      EXPECT_NE(mr->bytes()[i], before[i]) << "byte " << i << " must be flipped";
    } else {
      EXPECT_EQ(mr->bytes()[i], before[i]) << "byte " << i << " must be untouched";
    }
  }
  EXPECT_EQ(injector.injected(FaultKind::kCorruptRegion), 1u);

  // Same seed, same flips: re-corrupting an identical buffer reproduces the
  // exact bytes (the property the matrix test's trace-identity relies on).
  sim::Engine engine2;
  rdma::Fabric fabric2(engine2);
  rdma::Node& node2 = fabric2.AddNode("server");
  rdma::MemoryRegion* mr2 = node2.RegisterMemory(256, rdma::kAccessRemoteRead);
  for (size_t i = 0; i < 256; ++i) {
    mr2->bytes()[i] = static_cast<std::byte>(static_cast<uint8_t>(i));
  }
  FaultInjector injector2(fabric2);
  FaultPlan plan2;
  plan2.CorruptRegion(sim::Micros(1), mr2->remote_key().rkey, 32, 16, /*seed=*/42);
  injector2.Arm(plan2);
  engine2.RunUntil(sim::Micros(10));
  for (size_t i = 32; i < 48; ++i) {
    EXPECT_EQ(mr2->bytes()[i], mr->bytes()[i]);
  }
}

TEST_F(InjectorTest, CorruptRegionClampsToRegionBounds) {
  rdma::MemoryRegion* mr = server_->RegisterMemory(64, rdma::kAccessRemoteRead);
  FaultInjector injector(fabric_);
  FaultPlan plan;
  // Window starts inside the region but extends past its end: clamped.
  plan.CorruptRegion(sim::Micros(1), mr->remote_key().rkey, 60, 1000, 1);
  // Window entirely past the region: a no-op, not an error.
  plan.CorruptRegion(sim::Micros(2), mr->remote_key().rkey, 9999, 8, 1);
  injector.Arm(plan);
  EXPECT_NO_THROW(engine_.RunUntil(sim::Micros(10)));
  EXPECT_EQ(injector.injected(), 2u);
}

TEST_F(InjectorTest, ArmRejectsTargetsOutsideTheFabric) {
  FaultInjector injector(fabric_);
  {
    FaultPlan plan;
    plan.NicStall(0, /*node=*/99, true, sim::Micros(10));
    EXPECT_THROW(injector.Arm(plan), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.QpError(0, server_->id(), /*peer=*/99);
    EXPECT_THROW(injector.Arm(plan), std::invalid_argument);
  }
  {
    // Crash on a node with no bound RpcServer.
    FaultPlan plan;
    plan.ServerCrash(0, server_->id(), 0, sim::Micros(10));
    EXPECT_THROW(injector.Arm(plan), std::invalid_argument);
  }
  {
    rfp::RpcServer server(fabric_, *server_, 2);
    injector.BindServer(server_->id(), &server);
    FaultPlan plan;
    plan.ServerCrash(0, server_->id(), /*thread=*/5, sim::Micros(10));  // out of range
    EXPECT_THROW(injector.Arm(plan), std::invalid_argument);
  }
}

}  // namespace
}  // namespace fault
