// Composition: circuit breaker x crash-driven fetch timeouts x QP-error
// reconnect while the breaker is open.
//
// The half-open verdict must come from the half-open probe. A call that was
// already in flight when the breaker opened (stuck retrying, possibly across
// a reconnect) can deliver its own timeout verdict right after the breaker
// goes half-open; counting that stale verdict re-opens the breaker a second
// time for the same outage — breaker_opens double-counts the episode and the
// real probe's success is then ignored, extending the outage onto a healthy
// server. These tests pin the fixed accounting: one outage, one breaker
// open, and the probe's verdict decides.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/injector.h"
#include "src/fault/plan.h"
#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace fault {
namespace {

constexpr uint32_t kResponseBytes = 16;

// Collects instant events so the test can line up breaker transitions
// against fetch timeouts and reconnects in virtual time.
class InstantLog : public sim::TraceSink {
 public:
  void Span(std::string_view, std::string_view, uint64_t, sim::Time, sim::Time) override {}
  void NameTrack(uint64_t, std::string_view) override {}
  void Instant(std::string_view, std::string_view name, uint64_t, sim::Time at) override {
    events_.emplace_back(std::string(name), at);
  }

  size_t Count(std::string_view name) const {
    size_t n = 0;
    for (const auto& [ev, _] : events_) {
      if (ev == name) {
        ++n;
      }
    }
    return n;
  }

  const std::vector<std::pair<std::string, sim::Time>>& events() const { return events_; }

 private:
  std::vector<std::pair<std::string, sim::Time>> events_;
};

struct RunResult {
  uint64_t breaker_opens = 0;
  uint64_t reconnects = 0;
  uint64_t fetch_timeouts = 0;
  int completed = 0;
  rfp::Channel::BreakerState final_state = rfp::Channel::BreakerState::kClosed;
  sim::Time second_call_latency = 0;
  sim::Time final_time = 0;
  size_t half_opens = 0;
  size_t breaker_closes = 0;

  bool operator==(const RunResult&) const = default;
};

// One channel (window 4, forced remote-fetch so timeouts reissue instead of
// switching), one server thread, breaker tuned so four straight fetch
// timeouts open it. Call A is submitted just before the crash and spends the
// whole outage retrying (its QP also gets shot mid-outage, so it crosses a
// reconnect); call B arrives while the breaker is open, waits out the
// interval, and becomes the half-open probe against a server that has
// recovered by then.
RunResult RunScenario(sim::Time crash_end, bool print_events) {
  sim::Engine engine;
  InstantLog log;
  engine.set_trace_sink(&log);
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");

  rfp::RpcServer server(fabric, server_node, /*threads=*/1);
  server.RegisterHandler(1, [](const rfp::HandlerContext&, std::span<const std::byte>,
                               std::span<std::byte> resp) -> rfp::HandlerResult {
    for (size_t i = 0; i < kResponseBytes; ++i) {
      resp[i] = std::byte{0x5a};
    }
    return rfp::HandlerResult{kResponseBytes, sim::Micros(1)};
  });

  rfp::RfpOptions options;
  options.window = 4;
  options.force_mode = rfp::RfpOptions::ForceMode::kForceFetch;
  options.fetch_timeout_ns = sim::Micros(10);
  options.reconnect_delay_ns = sim::Micros(2);
  options.breaker_enabled = true;
  options.breaker_window = 4;
  options.breaker_failure_rate = 0.9;
  options.breaker_open_ns = sim::Micros(50);
  rfp::Channel* channel = server.AcceptChannel(client_node, options, 0);
  rfp::RpcClient stub(channel);
  server.Start();

  FaultInjector injector(fabric);
  injector.BindServer(server_node.id(), &server);
  FaultPlan plan;
  plan.ServerCrash(sim::Micros(2), server_node.id(), /*thread=*/0, crash_end - sim::Micros(2));
  plan.QpError(sim::Micros(60), server_node.id(), client_node.id());
  injector.Arm(plan);

  RunResult out;
  engine.Spawn([](sim::Engine& eng, rfp::RpcClient* client, RunResult* res) -> sim::Task<void> {
    std::vector<std::byte> req(8, std::byte{0x11});
    std::vector<std::byte> resp(64);
    // Call A: in flight across the whole outage (and the QP error).
    co_await eng.Sleep(sim::Micros(5));
    const auto a = co_await client->SubmitCall(1, req);
    if (co_await client->AwaitCall(a, resp) == kResponseBytes) {
      ++res->completed;
    }
  }(engine, &stub, &out));
  engine.Spawn([](sim::Engine& eng, rfp::RpcClient* client, RunResult* res) -> sim::Task<void> {
    std::vector<std::byte> req(8, std::byte{0x22});
    std::vector<std::byte> resp(64);
    // Call B: arrives while the breaker is open, becomes the probe.
    co_await eng.Sleep(sim::Micros(55));
    if (co_await client->Call(1, req, resp) == kResponseBytes) {
      ++res->completed;
    }
    // Call B2: a healthy server should serve this promptly; a spuriously
    // re-opened breaker stalls it for another open interval.
    const sim::Time start = eng.now();
    if (co_await client->Call(1, req, resp) == kResponseBytes) {
      ++res->completed;
    }
    res->second_call_latency = eng.now() - start;
  }(engine, &stub, &out));

  engine.RunUntil(sim::Millis(2));
  server.Stop();

  out.breaker_opens = channel->stats().breaker_opens;
  out.reconnects = channel->stats().reconnects;
  out.fetch_timeouts = channel->stats().fetch_timeouts;
  out.final_state = channel->breaker_state();
  out.final_time = engine.now();
  out.half_opens = log.Count("breaker_half_open");
  out.breaker_closes = log.Count("breaker_close");
  if (print_events) {
    for (const auto& [name, at] : log.events()) {
      printf("%8lld  %s\n", static_cast<long long>(at), name.c_str());
    }
  }
  return out;
}

// The pinned timeline (deterministic; timings measured from the trace):
// A's timeouts open the breaker at ~52us; the QP error at 60us sends A
// through a reconnect during the open window; B (arrived at 55us) goes
// half-open at ~97us and probes; A's next stale timeout verdict lands at
// ~101us — before the probe resolves — and the server restarts at 102us, so
// the probe succeeds at ~105us. Before the fix the stale verdict re-opened
// the breaker at 101us (breaker_opens = 2 for one outage) and the probe's
// success was discarded, stalling B's next call for a whole extra open
// interval (~52us) against a healthy server.
TEST(BreakerReconnectCompositionTest, StaleVerdictDoesNotReopenBreaker) {
  const RunResult r = RunScenario(/*crash_end=*/sim::Micros(102), /*print_events=*/false);
  EXPECT_EQ(r.completed, 3);
  // One outage, one open: the stale in-flight call's verdict is not the
  // probe's, so the episode is counted once.
  EXPECT_EQ(r.breaker_opens, 1u);
  EXPECT_EQ(r.half_opens, 1u);
  EXPECT_EQ(r.breaker_closes, 1u);
  EXPECT_EQ(r.final_state, rfp::Channel::BreakerState::kClosed);
  // The QP error during the open window produced exactly one reconnect.
  EXPECT_EQ(r.reconnects, 1u);
  // The call after the probe ran against a healthy server with a closed
  // breaker; a spurious re-open would stall it ~50us.
  EXPECT_LT(r.second_call_latency, sim::Micros(10));
}

// The same composition where the server recovers before the half-open flip:
// the probe finds it healthy immediately and the accounting is identical.
TEST(BreakerReconnectCompositionTest, EarlyRecoveryAlsoCountsOneOpen) {
  const RunResult r = RunScenario(/*crash_end=*/sim::Micros(93), /*print_events=*/false);
  EXPECT_EQ(r.completed, 3);
  EXPECT_EQ(r.breaker_opens, 1u);
  EXPECT_EQ(r.breaker_closes, 1u);
  EXPECT_EQ(r.final_state, rfp::Channel::BreakerState::kClosed);
  EXPECT_EQ(r.reconnects, 1u);
}

// Breaker accounting across crash + reconnect is deterministic: identical
// runs produce identical counters and virtual times.
TEST(BreakerReconnectCompositionTest, CompositionIsDeterministic) {
  const RunResult a = RunScenario(/*crash_end=*/sim::Micros(102), /*print_events=*/false);
  const RunResult b = RunScenario(/*crash_end=*/sim::Micros(102), /*print_events=*/false);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fault
