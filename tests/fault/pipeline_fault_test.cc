// Failure semantics of pipelined (window > 1) channels: deadlines, BUSY
// shedding, and crash-reissue must work per slot while other slots of the
// same channel are in flight (docs/pipelining.md §5). The channel-level
// behaviors are pinned by tests/rfp/ and tests/fault/fault_matrix_test.cc
// for window=1; these cases interleave them across a slot ring.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace fault {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

class PipelineFaultTest : public ::testing::Test {
 protected:
  rfp::Channel* MakeChannel(const rfp::RfpOptions& options) {
    channels_.push_back(std::make_unique<rfp::Channel>(fabric_, *client_node_, *server_node_,
                                                       options));
    return channels_.back().get();
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node* client_node_{&fabric_.AddNode("client")};
  rdma::Node* server_node_{&fabric_.AddNode("server")};
  std::vector<std::unique_ptr<rfp::Channel>> channels_;
};

// Four calls with a per-call deadline against a server that stays dark past
// it: each await must throw DeadlineExceeded for its own slot, and the freed
// slots must carry fresh (deadline-free) calls once the server wakes. The
// fresh requests overwrite the expired ones slot for slot, so the late
// server only ever sees the live window.
TEST_F(PipelineFaultTest, DeadlineExpiresPerSlot) {
  rfp::RfpOptions options;
  options.window = 4;
  options.force_mode = rfp::RfpOptions::ForceMode::kForceFetch;
  rfp::Channel* ch = MakeChannel(options);
  engine_.Spawn([](sim::Engine& eng, rfp::Channel* c) -> sim::Task<void> {
    co_await eng.Sleep(sim::Micros(60));  // well past the doomed deadlines
    std::vector<std::byte> buf(16384);
    int served = 0;
    while (served < 4) {
      size_t n = 0;
      if (c->TryServerRecv(buf, &n)) {
        co_await c->ServerSend(std::span<const std::byte>(buf.data(), n));
        ++served;
      } else {
        co_await eng.Sleep(sim::Nanos(200));
      }
    }
  }(engine_, ch));
  engine_.Spawn([](sim::Engine& eng, rfp::Channel* c) -> sim::Task<void> {
    rfp::CallOptions doomed;
    doomed.deadline_ns = eng.now() + sim::Micros(30);
    std::vector<rfp::Channel::CallHandle> handles;
    for (int i = 0; i < 4; ++i) {
      handles.push_back(
          co_await c->SubmitCall(AsBytes("doomed-" + std::to_string(i)), doomed));
    }
    std::vector<std::byte> out(16384);
    int expired = 0;
    for (const rfp::Channel::CallHandle& h : handles) {
      try {
        (void)co_await c->AwaitCall(h, out);
      } catch (const rfp::DeadlineExceeded&) {
        ++expired;
      }
    }
    EXPECT_EQ(expired, 4);
    // Every slot was freed by its expired call: a full new window fits.
    std::vector<rfp::Channel::CallHandle> fresh;
    for (int i = 0; i < 4; ++i) {
      fresh.push_back(co_await c->SubmitCall(AsBytes("fresh-" + std::to_string(i))));
    }
    for (int i = 0; i < 4; ++i) {
      const size_t got = co_await c->AwaitCall(fresh[static_cast<size_t>(i)], out);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), got),
                "fresh-" + std::to_string(i));
    }
  }(engine_, ch));
  engine_.Run();
  // `calls` counts issued requests (as in the window=1 ClientSend path), so
  // the expired window and the fresh one both show up.
  EXPECT_EQ(ch->stats().calls, 8u);
}

// The server sheds the first two slots with BUSY(admission) and serves the
// rest; the shed calls back off, re-issue into their own slots, and all four
// complete with the right payloads.
TEST_F(PipelineFaultTest, BusyShedsInterleaveWithServedSlots) {
  rfp::RfpOptions options;
  options.window = 4;
  options.force_mode = rfp::RfpOptions::ForceMode::kForceFetch;
  rfp::Channel* ch = MakeChannel(options);
  engine_.Spawn([](sim::Engine& eng, rfp::Channel* c) -> sim::Task<void> {
    std::vector<std::byte> buf(16384);
    int seen = 0;
    int served = 0;
    while (served < 6) {  // 4 originals (2 shed) + 2 re-issues
      size_t n = 0;
      if (c->TryServerRecv(buf, &n)) {
        if (seen < 2) {
          ++seen;
          co_await c->ServerSendBusy(rfp::BusyReason::kAdmission, /*retry_after_us=*/2);
        } else {
          co_await c->ServerSend(std::span<const std::byte>(buf.data(), n));
        }
        ++served;
      } else {
        co_await eng.Sleep(sim::Nanos(200));
      }
    }
  }(engine_, ch));
  engine_.Spawn([](rfp::Channel* c) -> sim::Task<void> {
    std::vector<rfp::Channel::CallHandle> handles;
    for (int i = 0; i < 4; ++i) {
      handles.push_back(co_await c->SubmitCall(AsBytes("busy-" + std::to_string(i))));
    }
    std::vector<std::byte> out(16384);
    for (int i = 0; i < 4; ++i) {
      const size_t got = co_await c->AwaitCall(handles[static_cast<size_t>(i)], out);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), got),
                "busy-" + std::to_string(i));
    }
  }(ch));
  engine_.Run();
  EXPECT_EQ(ch->stats().calls, 4u);
  EXPECT_GE(ch->stats().busy_responses, 2u);
  EXPECT_GE(ch->stats().reissues, 2u);
}

// A server-thread crash while a whole window is in flight: the fetch
// timeouts re-issue each slot's request, and after the restart the pending
// headers are swept up — every call completes without client-visible errors.
TEST_F(PipelineFaultTest, CrashReissueAcrossSlots) {
  rfp::RpcServer server(fabric_, *server_node_, 1);
  server.RegisterHandler(3, [](const rfp::HandlerContext&, std::span<const std::byte> req,
                               std::span<std::byte> resp) -> rfp::HandlerResult {
    std::memcpy(resp.data(), req.data(), req.size());
    return rfp::HandlerResult{req.size(), sim::Nanos(300)};
  });
  rfp::RfpOptions options;
  options.window = 4;
  options.force_mode = rfp::RfpOptions::ForceMode::kForceFetch;
  options.fetch_timeout_ns = sim::Micros(50);
  options.fetch_backoff_initial_ns = sim::Micros(1);
  rfp::Channel* channel = server.AcceptChannel(*client_node_, options, 0);
  rfp::RpcClient client(channel);
  server.Start();

  // Crash before the first sweep: the whole first window lands on a dark
  // server, forcing every slot onto the timeout/re-issue path until the
  // restart sweeps up the pending headers.
  server.CrashThread(0);
  engine_.Spawn([](sim::Engine& eng, rfp::RpcServer* srv) -> sim::Task<void> {
    co_await eng.Sleep(sim::Micros(200));
    srv->RestartThread(0);
  }(engine_, &server));
  engine_.Spawn([](rfp::RpcServer* srv, rfp::RpcClient* cl) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    for (int round = 0; round < 3; ++round) {
      std::vector<rfp::Channel::CallHandle> handles;
      for (int i = 0; i < 4; ++i) {
        const std::string msg = "crash-" + std::to_string(round) + "-" + std::to_string(i);
        handles.push_back(co_await cl->SubmitCall(3, AsBytes(msg)));
      }
      for (int i = 0; i < 4; ++i) {
        const size_t got = co_await cl->AwaitCall(handles[static_cast<size_t>(i)], out);
        EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), got),
                  "crash-" + std::to_string(round) + "-" + std::to_string(i));
      }
    }
    srv->Stop();
  }(&server, &client));
  engine_.Run();
  EXPECT_EQ(client.calls(), 12u);
  EXPECT_EQ(server.thread_crashes(), 1u);
  // The dark window forced at least one slot onto the re-issue path.
  EXPECT_GE(channel->stats().fetch_timeouts + channel->stats().reissues, 1u);
}

}  // namespace
}  // namespace fault
