// The fault matrix (ISSUE acceptance criteria): for every fault class of
// src/fault/, a cluster of fault-tolerant channels must
//   (a) complete every outstanding request with a correct, uncorrupted
//       response (drivers re-derive the expected payload and count
//       mismatches — always zero), and
//   (b) be deterministic: two runs with the same seed produce identical
//       fingerprints (op counts, recovery stats, per-call latency stream,
//       final virtual time).
// A Jakiro KV case repeats the same property end-to-end through the store.

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/injector.h"
#include "src/fault/plan.h"
#include "src/kv/jakiro.h"
#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/rpc.h"
#include "src/rfp/wire.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/sim/time.h"
#include "src/workload/ycsb.h"

namespace fault {
namespace {

constexpr int kServerThreads = 2;
constexpr int kClients = 4;
constexpr int kCallsPerClient = 100;
constexpr uint32_t kResponseBytes = 32;
const sim::Time kFaultStart = sim::Micros(50);
const sim::Time kFaultWindow = sim::Micros(150);

std::byte ExpectedByte(std::span<const std::byte> req, size_t i) {
  return req[i % req.size()] ^ static_cast<std::byte>(static_cast<uint8_t>(i * 73 + 11));
}

struct Fingerprint {
  int completed = 0;
  uint64_t mismatches = 0;
  uint64_t injected = 0;
  uint64_t calls = 0;
  uint64_t reconnects = 0;
  uint64_t reissues = 0;
  uint64_t corrupt_fetches = 0;
  uint64_t fetch_timeouts = 0;
  uint64_t switches_to_reply = 0;
  uint64_t latency_checksum = 0;
  sim::Time final_time = 0;

  bool operator==(const Fingerprint&) const = default;
};

sim::Task<void> Driver(sim::Engine& eng, rfp::RpcClient* client, Fingerprint* fp) {
  std::vector<std::byte> req(8);
  std::vector<std::byte> resp(256);
  for (int n = 1; n <= kCallsPerClient; ++n) {
    for (size_t i = 0; i < req.size(); ++i) {
      req[i] = static_cast<std::byte>(static_cast<uint8_t>(static_cast<uint64_t>(n) >> (8 * i)));
    }
    const sim::Time start = eng.now();
    const size_t got = co_await client->Call(1, req, resp);
    if (got != kResponseBytes) {
      ++fp->mismatches;
    } else {
      for (size_t i = 0; i < kResponseBytes; ++i) {
        if (resp[i] != ExpectedByte(req, i)) {
          ++fp->mismatches;
          break;
        }
      }
    }
    fp->latency_checksum =
        sim::Mix64(fp->latency_checksum ^ static_cast<uint64_t>(eng.now() - start));
  }
  ++fp->completed;
}

Fingerprint RunMatrix(FaultKind kind, uint64_t seed) {
  sim::Engine engine;
  rdma::FabricConfig fc;
  fc.seed = seed;
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_a = fabric.AddNode("client_a");
  rdma::Node& client_b = fabric.AddNode("client_b");
  rdma::Node* client_nodes[2] = {&client_a, &client_b};

  rfp::RpcServer server(fabric, server_node, kServerThreads);
  server.RegisterHandler(1, [](const rfp::HandlerContext&, std::span<const std::byte> req,
                               std::span<std::byte> resp) -> rfp::HandlerResult {
    for (size_t i = 0; i < kResponseBytes; ++i) {
      resp[i] = ExpectedByte(req, i);
    }
    return rfp::HandlerResult{kResponseBytes, sim::Nanos(800)};
  });

  rfp::RfpOptions options;
  options.fetch_timeout_ns = sim::Micros(40);
  options.fetch_backoff_initial_ns = sim::Micros(1);
  options.checksum_responses = true;

  std::vector<rfp::Channel*> channels;
  std::vector<std::unique_ptr<rfp::RpcClient>> stubs;
  for (int t = 0; t < kClients; ++t) {
    channels.push_back(server.AcceptChannel(*client_nodes[t % 2], options, t % kServerThreads));
    stubs.push_back(std::make_unique<rfp::RpcClient>(channels.back()));
  }
  server.Start();

  FaultInjector injector(fabric);
  injector.BindServer(server_node.id(), &server);
  FaultPlan plan;
  switch (kind) {
    case FaultKind::kNicStall:
      plan.NicStall(kFaultStart, server_node.id(), true, sim::Micros(30))
          .NicStall(kFaultStart + sim::Micros(60), server_node.id(), false, sim::Micros(30));
      break;
    case FaultKind::kNicDegrade:
      plan.NicDegrade(kFaultStart, server_node.id(), true, 8.0, kFaultWindow);
      break;
    case FaultKind::kLinkBurst:
      plan.LinkBurst(kFaultStart, server_node.id(), client_a.id(), 0.5, sim::Micros(2),
                     kFaultWindow)
          .LinkBurst(kFaultStart, server_node.id(), client_b.id(), 0.5, sim::Micros(2),
                     kFaultWindow);
      break;
    case FaultKind::kServerCrash:
      plan.ServerCrash(kFaultStart, server_node.id(), /*thread=*/0, kFaultWindow);
      break;
    case FaultKind::kQpError:
      plan.QpError(kFaultStart, server_node.id(), client_a.id())
          .QpError(kFaultStart, server_node.id(), client_b.id())
          .QpError(kFaultStart + sim::Micros(80), server_node.id(), client_a.id());
      break;
    case FaultKind::kCorruptRegion:
      for (int i = 0; i < 15; ++i) {
        for (size_t c = 0; c < channels.size(); ++c) {
          plan.CorruptRegion(kFaultStart + i * sim::Micros(10), channels[c]->server_rkey(),
                             channels[c]->response_offset() + rfp::kHeaderBytes, 16,
                             /*seed=*/seed + static_cast<uint64_t>(i) * 100 + c);
        }
      }
      break;
  }
  injector.Arm(plan);

  Fingerprint fp;
  for (int t = 0; t < kClients; ++t) {
    engine.Spawn(Driver(engine, stubs[static_cast<size_t>(t)].get(), &fp));
  }
  engine.RunUntil(sim::Millis(50));
  server.Stop();

  for (rfp::Channel* channel : channels) {
    const rfp::Channel::Stats& s = channel->stats();
    fp.calls += s.calls;
    fp.reconnects += s.reconnects;
    fp.reissues += s.reissues;
    fp.corrupt_fetches += s.corrupt_fetches;
    fp.fetch_timeouts += s.fetch_timeouts;
    fp.switches_to_reply += s.switches_to_reply;
  }
  fp.injected = injector.injected();
  fp.final_time = engine.now();
  return fp;
}

class FaultMatrixTest : public ::testing::TestWithParam<FaultKind> {};

TEST_P(FaultMatrixTest, AllRequestsCompleteCorrectlyAndDeterministically) {
  const FaultKind kind = GetParam();
  const Fingerprint a = RunMatrix(kind, 17);

  // (a) No lost or corrupted responses: every driver finished its full call
  // budget and every response validated byte-for-byte.
  EXPECT_EQ(a.completed, kClients);
  EXPECT_EQ(a.mismatches, 0u);
  EXPECT_GT(a.injected, 0u);
  EXPECT_EQ(a.calls, static_cast<uint64_t>(kClients) * kCallsPerClient);

  // Per-class recovery evidence: the fault was actually felt, not scheduled
  // into dead air.
  switch (kind) {
    case FaultKind::kQpError:
      EXPECT_GT(a.reconnects, 0u);
      break;
    case FaultKind::kCorruptRegion:
      EXPECT_GT(a.corrupt_fetches, 0u);
      EXPECT_GT(a.reissues, 0u);
      break;
    case FaultKind::kServerCrash:
      EXPECT_GT(a.fetch_timeouts, 0u);
      EXPECT_GT(a.switches_to_reply, 0u);
      break;
    default:
      break;  // stall/degrade/burst only slow the fabric down
  }

  // (b) Bit-identical replay: same seed, same fingerprint (including the
  // per-call latency stream and the final virtual clock).
  const Fingerprint b = RunMatrix(kind, 17);
  EXPECT_EQ(a, b);

  // A different seed must perturb the schedule (service jitter draws).
  const Fingerprint c = RunMatrix(kind, 18);
  EXPECT_NE(a.latency_checksum, c.latency_checksum);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, FaultMatrixTest,
                         ::testing::Values(FaultKind::kNicStall, FaultKind::kNicDegrade,
                                           FaultKind::kLinkBurst, FaultKind::kServerCrash,
                                           FaultKind::kQpError, FaultKind::kCorruptRegion),
                         [](const ::testing::TestParamInfo<FaultKind>& param_info) {
                           return FaultKindName(param_info.param);
                         });

// Corrupting the REQUEST ring (size/seq of the request header) makes the
// server read garbage sizes and phantom frames. Those must become counted
// malformed drops — never a throw out of ServeLoop that kills the sweep
// actor — and every call must still complete through the client's
// timeout/re-issue repair (a fresh WRITE rewrites the header). Determinism
// of the recovery schedule is pinned like the other matrix classes.
struct MalformedFingerprint {
  int completed = 0;
  uint64_t mismatches = 0;
  uint64_t malformed = 0;
  uint64_t reissues = 0;
  uint64_t latency_checksum = 0;
  sim::Time final_time = 0;

  bool operator==(const MalformedFingerprint&) const = default;
};

MalformedFingerprint RunRequestCorruption(uint64_t seed) {
  sim::Engine engine;
  rdma::FabricConfig fc;
  fc.seed = seed;
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_a = fabric.AddNode("client_a");
  rdma::Node& client_b = fabric.AddNode("client_b");
  rdma::Node* client_nodes[2] = {&client_a, &client_b};

  rfp::RpcServer server(fabric, server_node, kServerThreads);
  server.RegisterHandler(1, [](const rfp::HandlerContext&, std::span<const std::byte> req,
                               std::span<std::byte> resp) -> rfp::HandlerResult {
    for (size_t i = 0; i < kResponseBytes; ++i) {
      resp[i] = ExpectedByte(req, i);
    }
    return rfp::HandlerResult{kResponseBytes, sim::Nanos(800)};
  });

  rfp::RfpOptions options;
  // Forced fetch: a destroyed request header is repaired by the timeout
  // re-issue path, without the adaptive fall-back dance.
  options.force_mode = rfp::RfpOptions::ForceMode::kForceFetch;
  options.fetch_timeout_ns = sim::Micros(40);
  options.fetch_backoff_initial_ns = sim::Micros(1);
  options.checksum_responses = true;

  std::vector<rfp::Channel*> channels;
  std::vector<std::unique_ptr<rfp::RpcClient>> stubs;
  for (int t = 0; t < kClients; ++t) {
    channels.push_back(server.AcceptChannel(*client_nodes[t % 2], options, t % kServerThreads));
    stubs.push_back(std::make_unique<rfp::RpcClient>(channels.back()));
  }
  server.Start();

  FaultInjector injector(fabric);
  injector.BindServer(server_node.id(), &server);
  FaultPlan plan;
  for (int i = 0; i < 15; ++i) {
    for (size_t c = 0; c < channels.size(); ++c) {
      // First 6 bytes of request slot 0: size_status + seq (not the mode
      // byte, which carries the paradigm and has its own 1-byte-WRITE path).
      plan.CorruptRegion(kFaultStart + i * sim::Micros(10), channels[c]->server_rkey(),
                         /*offset=*/channels[c]->request_offset(), /*length=*/6,
                         /*seed=*/seed + static_cast<uint64_t>(i) * 100 + c);
    }
  }
  injector.Arm(plan);

  Fingerprint fp;
  for (int t = 0; t < kClients; ++t) {
    engine.Spawn(Driver(engine, stubs[static_cast<size_t>(t)].get(), &fp));
  }
  engine.RunUntil(sim::Millis(50));
  server.Stop();

  MalformedFingerprint out;
  out.completed = fp.completed;
  out.mismatches = fp.mismatches;
  out.malformed = server.malformed_requests();
  for (rfp::Channel* channel : channels) {
    out.reissues += channel->stats().reissues;
  }
  out.latency_checksum = fp.latency_checksum;
  out.final_time = engine.now();
  return out;
}

TEST(FaultMatrixMalformedTest, RequestCorruptionIsCountedDropAndServerSurvives) {
  const MalformedFingerprint a = RunRequestCorruption(17);
  EXPECT_EQ(a.completed, kClients);
  EXPECT_EQ(a.mismatches, 0u);
  // The corruption was felt as malformed frames, and the repair path ran.
  EXPECT_GT(a.malformed, 0u);
  EXPECT_GT(a.reissues, 0u);
  // Same seed, same recovery schedule.
  const MalformedFingerprint b = RunRequestCorruption(17);
  EXPECT_EQ(a, b);
}

// End-to-end through the KV store: a fault-tolerant Jakiro cluster under a
// mixed scripted plan returns only verified values and replays bit-identically.
struct KvFingerprint {
  int completed = 0;
  uint64_t verify_failures = 0;
  uint64_t ops = 0;
  uint64_t reconnects = 0;
  uint64_t reissues = 0;
  uint64_t corrupt_fetches = 0;
  sim::Time final_time = 0;

  bool operator==(const KvFingerprint&) const = default;
};

KvFingerprint RunKvMatrix(uint64_t seed) {
  sim::Engine engine;
  rdma::FabricConfig fc;
  fc.seed = seed;
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");

  kv::JakiroConfig config;
  config.server_threads = kServerThreads;
  config = kv::JakiroConfig::Build(config).FaultTolerant();
  kv::JakiroServer server(fabric, server_node, config);

  workload::WorkloadSpec spec;
  spec.num_keys = 2048;
  spec.get_fraction = 0.9;
  spec.seed = seed;
  std::vector<std::byte> key(16);
  std::vector<std::byte> value(64);
  for (uint64_t id = 0; id < spec.num_keys; ++id) {
    workload::MakeKey(id, key);
    workload::FillValue(id, std::span<std::byte>(value.data(), 32));
    server.partition(server.OwnerThread(key)).Put(key,
                                                  std::span<const std::byte>(value.data(), 32));
  }

  std::vector<std::unique_ptr<kv::JakiroClient>> clients;
  KvFingerprint fp;
  for (int t = 0; t < 2; ++t) {
    clients.push_back(std::make_unique<kv::JakiroClient>(server, client_node));
    engine.Spawn([](kv::JakiroClient* c, workload::WorkloadSpec sp, int id,
                    KvFingerprint* out) -> sim::Task<void> {
      workload::Generator gen(sp, static_cast<uint64_t>(id));
      std::vector<std::byte> k(16);
      std::vector<std::byte> v(256);
      std::vector<std::byte> o(256);
      for (int i = 0; i < 150; ++i) {
        const workload::Op op = gen.Next();
        workload::MakeKey(op.key_id, k);
        if (op.type == workload::OpType::kGet) {
          std::optional<size_t> got = co_await c->Get(k, o);
          if (got.has_value() &&
              !workload::CheckValue(op.key_id, std::span<const std::byte>(o.data(), *got))) {
            ++out->verify_failures;
          }
        } else {
          workload::FillValue(op.key_id, std::span<std::byte>(v.data(), 32));
          co_await c->Put(k, std::span<const std::byte>(v.data(), 32));
        }
        ++out->ops;
      }
      ++out->completed;
    }(clients.back().get(), spec, t, &fp));
  }
  server.Start();

  FaultInjector injector(fabric);
  injector.BindServer(server_node.id(), &server.rpc());
  FaultPlan plan;
  plan.QpError(sim::Micros(60), server_node.id(), client_node.id())
      .NicDegrade(sim::Micros(120), server_node.id(), true, 6.0, sim::Micros(100))
      .ServerCrash(sim::Micros(300), server_node.id(), 0, sim::Micros(120));
  for (int i = 0; i < 10; ++i) {
    rfp::Channel* target = clients[0]->channel(i % kServerThreads);
    plan.CorruptRegion(sim::Micros(60) + i * sim::Micros(30), target->server_rkey(),
                       target->response_offset() + rfp::kHeaderBytes, 16, seed + static_cast<uint64_t>(i));
  }
  injector.Arm(plan);

  engine.RunUntil(sim::Millis(100));
  server.Stop();

  for (const auto& client : clients) {
    const rfp::Channel::Stats stats = client->MergedChannelStats();
    fp.reconnects += stats.reconnects;
    fp.reissues += stats.reissues;
    fp.corrupt_fetches += stats.corrupt_fetches;
  }
  fp.final_time = engine.now();
  return fp;
}

TEST(FaultMatrixKvTest, JakiroSurvivesMixedPlanWithVerifiedValues) {
  const KvFingerprint a = RunKvMatrix(23);
  EXPECT_EQ(a.completed, 2);
  EXPECT_EQ(a.verify_failures, 0u);
  EXPECT_EQ(a.ops, 300u);
  EXPECT_GT(a.reconnects, 0u);

  const KvFingerprint b = RunKvMatrix(23);
  EXPECT_EQ(a, b);
}

// Recovery-traffic accounting: a timed-out forced-fetch call re-issues its
// request, but RoundTripsPerCall keeps its Table-3 meaning — one primary
// WRITE per call; the re-issue and the abandoned attempt's READs move to the
// recovery counters instead of inflating the primary metric.
TEST(FaultRecoveryAccountingTest, ReissuesDoNotInflateRoundTripsPerCall) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& client_node = fabric.AddNode("client");
  rdma::Node& server_node = fabric.AddNode("server");

  rfp::RfpOptions options;
  options.force_mode = rfp::RfpOptions::ForceMode::kForceFetch;
  options.fetch_timeout_ns = sim::Micros(20);
  rfp::Channel channel(fabric, client_node, server_node, options);

  // The server is dark for the first 60 us — past the client's 20 us fetch
  // deadline, forcing re-issues — then serves normally. Polling only after
  // the outage means it reads the *latest* re-issued request (current seq),
  // exactly like a restarted RpcServer sweep would.
  engine.Spawn([](sim::Engine& eng, rfp::Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> buf(1024);
    co_await eng.Sleep(sim::Micros(60));
    int served = 0;
    while (served < 2) {
      size_t n = 0;
      if (ch->TryServerRecv(buf, &n)) {
        co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
        ++served;
      } else {
        co_await eng.Sleep(sim::Nanos(200));
      }
    }
  }(engine, &channel));
  engine.Spawn([](rfp::Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> out(256);
    for (int i = 0; i < 2; ++i) {
      std::byte msg[4] = {std::byte{1}, std::byte{2}, std::byte{3}, std::byte{4}};
      co_await ch->ClientSend(msg);
      const size_t got = co_await ch->ClientRecv(out);
      EXPECT_EQ(got, 4u);
    }
  }(&channel));
  engine.RunUntil(sim::Millis(5));

  const rfp::Channel::Stats& s = channel.stats();
  EXPECT_EQ(s.calls, 2u);
  EXPECT_GE(s.fetch_timeouts, 1u);
  EXPECT_GE(s.reissues, 1u);
  // The pinned invariant: exactly one primary WRITE per issued call, with
  // the re-issued WRITEs and the abandoned attempts' READs accounted apart.
  EXPECT_EQ(s.request_writes, s.calls);
  EXPECT_EQ(s.recovery_request_writes, s.reissues);
  EXPECT_GT(s.recovery_fetch_reads, 0u);
  EXPECT_GT(s.RecoveryRoundTripsPerCall(), 0.0);
  // Primary round trips stay at sane echo-call magnitude: 1 WRITE + a
  // bounded number of fetch READs per call, nowhere near the ~4 extra
  // READs/call the 60 us outage generated in recovery traffic.
  EXPECT_LT(s.RoundTripsPerCall(),
            1.0 + static_cast<double>(options.retry_threshold) + 2.0);
}

// The switch race under a crash: call 1 completes in fetch mode, so the
// server still holds its response un-pushed; the serving thread then
// crashes, call 2's WRITE lands into the dark thread, the client times out
// and switches to server-reply mid-call. After restart the server first
// resends the *stale* call-1 response (NeedsReplyResend / post-switch
// resend), which the client must ignore by sequence before call 2's real
// response arrives.
TEST(FaultSwitchRaceTest, StaleResendAfterCrashAndSwitchIsIgnored) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");

  rfp::RpcServer server(fabric, server_node, 1);
  server.RegisterHandler(1, [](const rfp::HandlerContext&, std::span<const std::byte> req,
                               std::span<std::byte> resp) -> rfp::HandlerResult {
    // Echo with a marker so call 1 and call 2 responses are distinguishable.
    std::memcpy(resp.data(), req.data(), req.size());
    return rfp::HandlerResult{req.size(), sim::Nanos(500)};
  });

  rfp::RfpOptions options;
  options.fetch_timeout_ns = sim::Micros(20);  // timeout-driven switch path
  rfp::Channel* channel = server.AcceptChannel(client_node, options, 0);
  rfp::RpcClient stub(channel);
  server.Start();

  engine.ScheduleAt(sim::Micros(10), [&server] { server.CrashThread(0); });
  engine.ScheduleAt(sim::Micros(80), [&server] { server.RestartThread(0); });

  std::vector<size_t> got_sizes;
  std::vector<std::byte> first_bytes;
  engine.Spawn([](sim::Engine& eng, rfp::RpcClient* client, std::vector<size_t>* sizes,
                  std::vector<std::byte>* firsts) -> sim::Task<void> {
    std::vector<std::byte> resp(256);
    for (int call = 1; call <= 2; ++call) {
      std::byte req[8];
      for (size_t i = 0; i < 8; ++i) {
        req[i] = static_cast<std::byte>(static_cast<uint8_t>(static_cast<size_t>(call * 16) + i));
      }
      const size_t got = co_await client->Call(1, req, resp);
      sizes->push_back(got);
      firsts->push_back(resp[0]);
      if (call == 1) {
        // Issue call 2 only once the thread is dark, so its request sits
        // pending across the crash window.
        co_await eng.Sleep(sim::Micros(12));
      }
    }
  }(engine, &stub, &got_sizes, &first_bytes));
  engine.RunUntil(sim::Millis(5));
  server.Stop();

  ASSERT_EQ(got_sizes.size(), 2u);
  EXPECT_EQ(got_sizes[0], 8u);
  EXPECT_EQ(got_sizes[1], 8u);
  // Each call saw its own response: the stale post-switch resend of call 1
  // carried a dead sequence number and was dropped by the client.
  EXPECT_EQ(first_bytes[0], std::byte{16});
  EXPECT_EQ(first_bytes[1], std::byte{32});
  const rfp::Channel::Stats& s = channel->stats();
  EXPECT_GE(s.fetch_timeouts, 1u);
  EXPECT_GE(s.switches_to_reply, 1u);
  EXPECT_EQ(server.thread_crashes(), 1u);
}

// Composition: a crash in the middle of an overloaded, admission-controlled
// run. Shedding continues on the surviving side, client deadlines bound the
// damage on the dark one, and the whole thing replays deterministically.
struct OverloadCrashFingerprint {
  uint64_t completed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t mismatches = 0;
  uint64_t shed_admission = 0;
  uint64_t shed_deadline = 0;
  uint64_t busy_responses = 0;
  uint64_t crashes = 0;
  sim::Time final_time = 0;

  bool operator==(const OverloadCrashFingerprint&) const = default;
};

OverloadCrashFingerprint RunOverloadCrash(uint64_t seed) {
  sim::Engine engine;
  rdma::FabricConfig fc;
  fc.seed = seed;
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");

  rfp::ServerOptions server_options;
  server_options.admission_control = true;
  server_options.admission_budget = 1;
  server_options.overload_hi_watermark_ns = sim::Micros(10);
  server_options.overload_lo_watermark_ns = sim::Micros(2);
  rfp::RpcServer server(fabric, server_node, kServerThreads, server_options);
  server.RegisterHandler(1, [](const rfp::HandlerContext&, std::span<const std::byte> req,
                               std::span<std::byte> resp) -> rfp::HandlerResult {
    for (size_t i = 0; i < kResponseBytes; ++i) {
      resp[i] = ExpectedByte(req, i);
    }
    return rfp::HandlerResult{kResponseBytes, sim::Micros(8)};
  });

  rfp::RfpOptions options;
  options.call_deadline_ns = sim::Micros(120);
  options.breaker_enabled = true;

  std::vector<rfp::Channel*> channels;
  std::vector<std::unique_ptr<rfp::RpcClient>> stubs;
  for (int t = 0; t < 6; ++t) {
    channels.push_back(server.AcceptChannel(client_node, options, t % kServerThreads));
    stubs.push_back(std::make_unique<rfp::RpcClient>(channels.back()));
  }
  server.Start();

  FaultInjector injector(fabric);
  injector.BindServer(server_node.id(), &server);
  FaultPlan plan;
  plan.ServerCrash(sim::Micros(200), server_node.id(), /*thread=*/0, sim::Micros(150));
  injector.Arm(plan);

  OverloadCrashFingerprint fp;
  for (int t = 0; t < 6; ++t) {
    engine.Spawn([](rfp::RpcClient* client, OverloadCrashFingerprint* out) -> sim::Task<void> {
      std::vector<std::byte> req(8, std::byte{0x7e});
      std::vector<std::byte> resp(256);
      for (int i = 0; i < 40; ++i) {
        try {
          const size_t got = co_await client->Call(1, req, resp);
          ++out->completed;
          if (got != kResponseBytes) {
            ++out->mismatches;
          } else {
            for (size_t b = 0; b < kResponseBytes; ++b) {
              if (resp[b] != ExpectedByte(req, b)) {
                ++out->mismatches;
                break;
              }
            }
          }
        } catch (const rfp::DeadlineExceeded&) {
          ++out->deadline_exceeded;
        }
      }
    }(stubs[static_cast<size_t>(t)].get(), &fp));
  }
  engine.RunUntil(sim::Millis(50));
  server.Stop();

  for (rfp::Channel* channel : channels) {
    fp.busy_responses += channel->stats().busy_responses;
  }
  fp.shed_admission = server.requests_shed_admission();
  fp.shed_deadline = server.requests_shed_deadline();
  fp.crashes = server.thread_crashes();
  fp.final_time = engine.now();
  return fp;
}

TEST(FaultOverloadCompositionTest, CrashMidOverloadShedsAndReplaysDeterministically) {
  const OverloadCrashFingerprint a = RunOverloadCrash(31);
  // Every driver resolved all 40 calls one way or the other, correctly.
  EXPECT_EQ(a.completed + a.deadline_exceeded, 240u);
  EXPECT_GT(a.completed, 0u);
  EXPECT_EQ(a.mismatches, 0u);
  // Overload protection and the fault both actually bit.
  EXPECT_GT(a.shed_admission, 0u);
  EXPECT_GT(a.busy_responses, 0u);
  EXPECT_EQ(a.crashes, 1u);
  // The dark thread's channels hit their deadlines instead of hanging.
  EXPECT_GT(a.deadline_exceeded, 0u);

  const OverloadCrashFingerprint b = RunOverloadCrash(31);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fault
