#include "src/fault/plan.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "src/sim/time.h"

namespace fault {
namespace {

TEST(FaultPlanTest, BuildersProduceValidEvents) {
  FaultPlan plan;
  plan.NicStall(sim::Micros(10), 0, true, sim::Micros(50))
      .NicDegrade(sim::Micros(20), 1, false, 4.0, sim::Micros(100))
      .LinkBurst(sim::Micros(30), 0, 1, 0.25, sim::Micros(2), sim::Micros(80))
      .ServerCrash(sim::Micros(40), 0, 2, sim::Micros(500))
      .QpError(sim::Micros(50), 0, 1)
      .CorruptRegion(sim::Micros(60), 7, 8, 16, 3);
  EXPECT_EQ(plan.size(), 6u);
  EXPECT_NO_THROW(plan.Validate());
  // Horizon covers the longest window: crash at 40 us for 500 us.
  EXPECT_EQ(plan.Horizon(), sim::Micros(540));
}

TEST(FaultPlanTest, ValidateRejectsBadEvents) {
  {
    FaultPlan p;
    p.NicStall(0, 0, true, 0);  // zero-length stall
    EXPECT_THROW(p.Validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.NicDegrade(0, 0, true, 0.5, sim::Micros(10));  // factor < 1
    EXPECT_THROW(p.Validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.LinkBurst(0, 0, 0, 0.5, 0, sim::Micros(10));  // same node twice
    EXPECT_THROW(p.Validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.LinkBurst(0, 0, 1, 1.5, 0, sim::Micros(10));  // loss > 1
    EXPECT_THROW(p.Validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.QpError(0, 2, 2);  // same node twice
    EXPECT_THROW(p.Validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.CorruptRegion(0, 7, 0, 0, 1);  // zero-length corruption
    EXPECT_THROW(p.Validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.NicStall(-1, 0, true, sim::Micros(10));  // negative fire time
    EXPECT_THROW(p.Validate(), std::invalid_argument);
  }
}

TEST(FaultPlanTest, RandomPlanIsDeterministicPerSeed) {
  RandomPlanOptions options;
  options.events = 32;
  options.nodes = 4;
  options.server_threads = 2;
  const FaultPlan a = RandomPlan(123, options);
  const FaultPlan b = RandomPlan(123, options);
  const FaultPlan c = RandomPlan(124, options);

  ASSERT_EQ(a.size(), 32u);
  ASSERT_EQ(b.size(), 32u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].duration, b.events[i].duration);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
    EXPECT_EQ(a.events[i].peer, b.events[i].peer);
    EXPECT_EQ(a.events[i].severity, b.events[i].severity);
  }
  // A different seed produces a structurally different schedule.
  bool differs = c.size() != a.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.events[i].at != c.events[i].at || a.events[i].kind != c.events[i].kind;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, RandomPlanIsSortedValidAndInHorizon) {
  RandomPlanOptions options;
  options.events = 64;
  options.start = sim::Micros(100);
  options.horizon = sim::Millis(4);
  options.nodes = 3;
  const FaultPlan plan = RandomPlan(9, options);
  EXPECT_NO_THROW(plan.Validate());
  for (size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].at, plan.events[i].at);
  }
  for (const FaultEvent& e : plan.events) {
    EXPECT_GE(e.at, options.start);
    EXPECT_LT(e.at, options.horizon);
    EXPECT_LT(e.node, static_cast<uint32_t>(options.nodes));
  }
}

TEST(FaultPlanTest, RandomPlanRespectsKindToggles) {
  RandomPlanOptions options;
  options.events = 40;
  options.enable_nic_stall = false;
  options.enable_nic_degrade = false;
  options.enable_server_crash = false;
  options.enable_qp_error = false;  // only link bursts remain
  const FaultPlan plan = RandomPlan(5, options);
  for (const FaultEvent& e : plan.events) {
    EXPECT_EQ(e.kind, FaultKind::kLinkBurst);
  }

  RandomPlanOptions none = options;
  none.enable_link_burst = false;
  EXPECT_THROW(RandomPlan(5, none), std::invalid_argument);
}

TEST(FaultPlanTest, KindNamesAreStable) {
  EXPECT_STREQ(FaultKindName(FaultKind::kNicStall), "nic_stall");
  EXPECT_STREQ(FaultKindName(FaultKind::kNicDegrade), "nic_degrade");
  EXPECT_STREQ(FaultKindName(FaultKind::kLinkBurst), "link_burst");
  EXPECT_STREQ(FaultKindName(FaultKind::kServerCrash), "server_crash");
  EXPECT_STREQ(FaultKindName(FaultKind::kQpError), "qp_error");
  EXPECT_STREQ(FaultKindName(FaultKind::kCorruptRegion), "corrupt_region");
}

}  // namespace
}  // namespace fault
