// Regression suite for the zero-re-registration contract (docs/memory.md):
// channel setup/teardown and reconnects recycle pooled MRs, so the fabric's
// per-node registration census stays flat once the pools are warm. This is
// the control-plane cost the allocator subsystem exists to remove — the seed
// code registered (and on reconnect, re-registered) fresh rings per channel.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/mem/pool.h"
#include "src/obs/metrics.h"
#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/sim/engine.h"

namespace mem {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

class ChurnTest : public ::testing::Test {
 protected:
  // One echo call over `channel`, serving from an inline server loop.
  void Echo(rfp::Channel& channel) {
    engine_.Spawn([](sim::Engine& eng, rfp::Channel* ch) -> sim::Task<void> {
      std::vector<std::byte> buf(16384);
      size_t n = 0;
      while (!ch->TryServerRecv(buf, &n)) {
        co_await eng.Sleep(sim::Nanos(200));
      }
      co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
    }(engine_, &channel));
    bool done = false;
    engine_.Spawn([](rfp::Channel* ch, bool* out) -> sim::Task<void> {
      std::vector<std::byte> reply(16384);
      co_await ch->ClientSend(AsBytes("ping"));
      const size_t got = co_await ch->ClientRecv(reply);
      EXPECT_EQ(got, 4u);
      *out = true;
    }(&channel, &done));
    engine_.Run();
    EXPECT_TRUE(done);
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node& client_{fabric_.AddNode("client")};
  rdma::Node& server_{fabric_.AddNode("server")};
};

TEST_F(ChurnTest, ChannelChurnPerformsZeroReRegistrations) {
  // Warm the pools: the first channel registers the arenas its rings and
  // buffers live in.
  {
    rfp::Channel warm(fabric_, client_, server_, rfp::RfpOptions{});
    Echo(warm);
  }
  const uint64_t client_regs = fabric_.RegistrationCount(client_);
  const uint64_t server_regs = fabric_.RegistrationCount(server_);
  const size_t client_bytes = fabric_.RegisteredBytes(client_);
  const size_t server_bytes = fabric_.RegisteredBytes(server_);

  // Steady-state churn: every ring allocation must be served from the pooled
  // arenas registered by the warm-up channel.
  for (int i = 0; i < 25; ++i) {
    rfp::Channel channel(fabric_, client_, server_, rfp::RfpOptions{});
    Echo(channel);
  }
  EXPECT_EQ(fabric_.RegistrationCount(client_), client_regs);
  EXPECT_EQ(fabric_.RegistrationCount(server_), server_regs);
  EXPECT_EQ(fabric_.RegisteredBytes(client_), client_bytes);
  EXPECT_EQ(fabric_.RegisteredBytes(server_), server_bytes);
  EXPECT_EQ(fabric_.DeregistrationCount(client_), 0u);
  EXPECT_EQ(fabric_.DeregistrationCount(server_), 0u);
}

TEST_F(ChurnTest, PipelinedChannelChurnStaysFlatToo) {
  rfp::RfpOptions options;
  options.window = 4;
  {
    rfp::Channel warm(fabric_, client_, server_, options);
    Echo(warm);
  }
  const uint64_t client_regs = fabric_.RegistrationCount(client_);
  const uint64_t server_regs = fabric_.RegistrationCount(server_);
  for (int i = 0; i < 10; ++i) {
    rfp::Channel channel(fabric_, client_, server_, options);
    Echo(channel);
  }
  EXPECT_EQ(fabric_.RegistrationCount(client_), client_regs);
  EXPECT_EQ(fabric_.RegistrationCount(server_), server_regs);
}

TEST_F(ChurnTest, ReconnectNeverReRegistersMemory) {
  rfp::RfpOptions options;
  options.max_reconnect_attempts = 4;
  rfp::Channel channel(fabric_, client_, server_, options);
  Echo(channel);  // warm: rings allocated, pools registered

  const uint64_t client_regs = fabric_.RegistrationCount(client_);
  const uint64_t server_regs = fabric_.RegistrationCount(server_);

  // Kill every RC QP between the nodes three times; each subsequent call
  // forces a reconnect. QPs are rebuilt — memory must not be.
  for (int round = 0; round < 3; ++round) {
    fabric_.FailRcQps(client_.id(), server_.id());
    Echo(channel);
  }
  EXPECT_GE(channel.stats().reconnects, 3u);
  EXPECT_EQ(fabric_.RegistrationCount(client_), client_regs);
  EXPECT_EQ(fabric_.RegistrationCount(server_), server_regs);
  EXPECT_EQ(fabric_.DeregistrationCount(client_), 0u);
  EXPECT_EQ(fabric_.DeregistrationCount(server_), 0u);
}

TEST_F(ChurnTest, FabricCensusMatchesPoolAccounting) {
  // Two sequential channels: the first registers the arenas, the second's
  // ring allocations must be pure reuse.
  for (int i = 0; i < 2; ++i) {
    rfp::Channel channel(fabric_, client_, server_, rfp::RfpOptions{});
    Echo(channel);
  }
  // Every registration on these nodes came through their shared pools, so
  // the fabric census and the allocator's own books must agree.
  std::shared_ptr<Pool> client_pool = Pool::Shared(client_);
  std::shared_ptr<Pool> server_pool = Pool::Shared(server_);
  EXPECT_EQ(fabric_.RegisteredBytes(client_), client_pool->registered_bytes());
  EXPECT_EQ(fabric_.RegisteredBytes(server_), server_pool->registered_bytes());
  EXPECT_EQ(fabric_.RegistrationCount(client_), client_pool->registrations());
  EXPECT_EQ(fabric_.RegistrationCount(server_), server_pool->registrations());
  EXPECT_GT(client_pool->mr_reuses(), 0u);
}

}  // namespace
}  // namespace mem
