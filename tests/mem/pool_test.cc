// Unit suite for the registered-memory allocator (docs/memory.md): buddy
// split/coalesce round-trips, slab reuse, the huge path, exhaustion under a
// max_registered_bytes cap, alignment, and the registration accounting that
// the zero-re-registration contract rests on.

#include "src/mem/pool.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"

namespace mem {
namespace {

class PoolTest : public ::testing::Test {
 protected:
  // Small geometry so tests exercise arena growth without megabytes:
  // 4 KiB blocks, 4 orders => 32 KiB arenas, 3 slab classes (512/1k/2k).
  static PoolOptions SmallOptions() {
    PoolOptions options;
    options.block_bytes = 4096;
    options.pool_level = 4;
    options.slab_classes = 3;
    options.slab_magazine = 2;
    return options;
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node& node_{fabric_.AddNode("n")};
};

// ---- Options validation -------------------------------------------------------

TEST(PoolOptionsTest, DefaultsAreValid) {
  EXPECT_NO_THROW(ValidateOptions(PoolOptions{}));
}

TEST(PoolOptionsTest, RejectsBadGeometry) {
  for (auto mutate : {
           +[](PoolOptions& o) { o.block_bytes = 3000; },    // not a power of two
           +[](PoolOptions& o) { o.block_bytes = 32; },      // below the floor
           +[](PoolOptions& o) { o.pool_level = 0; },
           +[](PoolOptions& o) { o.pool_level = 33; },
           +[](PoolOptions& o) {
             // block_bytes << (pool_level - 1) overflows size_t.
             o.block_bytes = size_t{1} << 60;
             o.pool_level = 10;
           },
           +[](PoolOptions& o) { o.slab_classes = -1; },
           +[](PoolOptions& o) { o.slab_classes = 8; },      // 4096 >> 8 = 16 < 32
           +[](PoolOptions& o) { o.slab_magazine = -1; },
           +[](PoolOptions& o) {
             // Cap below a single arena can never satisfy any allocation.
             o.max_registered_bytes = (o.block_bytes << (o.pool_level - 1)) - 1;
           },
       }) {
    PoolOptions options;
    mutate(options);
    EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
  }
}

TEST(PoolOptionsTest, FromNicConfigMirrorsKnobs) {
  rdma::NicConfig config;
  config.mem_block_bytes = 8192;
  config.mem_pool_level = 5;
  config.mem_slab_classes = 2;
  config.mem_slab_magazine = 7;
  config.mem_max_registered_bytes = 8192u << 8;
  const PoolOptions options = PoolOptionsFrom(config);
  EXPECT_EQ(options.block_bytes, 8192u);
  EXPECT_EQ(options.pool_level, 5);
  EXPECT_EQ(options.slab_classes, 2);
  EXPECT_EQ(options.slab_magazine, 7);
  EXPECT_EQ(options.max_registered_bytes, 8192u << 8);
}

TEST_F(PoolTest, ConstructorValidatesOptions) {
  PoolOptions bad = SmallOptions();
  bad.pool_level = 0;
  EXPECT_THROW(Pool(node_, bad), std::invalid_argument);
}

// ---- Buddy split / coalesce ---------------------------------------------------

TEST_F(PoolTest, ConstructionRegistersNothing) {
  Pool pool(node_, SmallOptions());
  EXPECT_EQ(pool.registrations(), 0u);
  EXPECT_EQ(pool.registered_bytes(), 0u);
  EXPECT_EQ(pool.arena_count(), 0u);
}

TEST_F(PoolTest, BuddySplitAndCoalesceRoundTrip) {
  Pool pool(node_, SmallOptions());
  const size_t arena = pool.arena_bytes();

  // Fill the arena with leaf blocks: repeated splits down to order 0.
  std::vector<Span> blocks;
  for (size_t i = 0; i < arena / 4096; ++i) {
    blocks.push_back(pool.Alloc(4096));
  }
  EXPECT_EQ(pool.registrations(), 1u) << "one arena must satisfy all leaf blocks";
  EXPECT_EQ(pool.in_use_bytes(), arena);

  // Freeing every block must coalesce all the way back up: a full-arena
  // allocation fits again without registering a second arena.
  for (const Span& s : blocks) {
    pool.Free(s);
  }
  EXPECT_EQ(pool.in_use_bytes(), 0u);
  const Span whole = pool.Alloc(arena);
  EXPECT_EQ(pool.registrations(), 1u) << "coalescing failed: buddies did not merge";
  EXPECT_EQ(whole.offset, 0u);
  pool.Free(whole);
}

TEST_F(PoolTest, FreedBuddyBlocksAreReused) {
  Pool pool(node_, SmallOptions());
  const Span a = pool.Alloc(8192);
  pool.Free(a);
  const Span b = pool.Alloc(8192);
  EXPECT_EQ(b.mr, a.mr);
  EXPECT_EQ(b.offset, a.offset);
  EXPECT_EQ(pool.mr_reuses(), 1u);
  pool.Free(b);
}

TEST_F(PoolTest, SecondArenaOnlyWhenFirstIsFull) {
  Pool pool(node_, SmallOptions());
  const Span first = pool.Alloc(pool.arena_bytes());
  EXPECT_EQ(pool.registrations(), 1u);
  const Span second = pool.Alloc(4096);  // no room left: new arena
  EXPECT_EQ(pool.registrations(), 2u);
  EXPECT_NE(second.mr, first.mr);
  pool.Free(first);
  pool.Free(second);
}

// ---- Slab front-end -----------------------------------------------------------

TEST_F(PoolTest, SlabChunksComeFromOneLeafBlock) {
  Pool pool(node_, SmallOptions());
  // 512-byte class: 8 chunks per 4 KiB leaf block.
  std::vector<Span> chunks;
  for (int i = 0; i < 8; ++i) {
    chunks.push_back(pool.Alloc(400));
  }
  EXPECT_EQ(pool.registrations(), 1u);
  for (size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].mr, chunks[0].mr);
  }
  // Chunks tile the block without overlap.
  std::vector<size_t> offsets;
  for (const Span& s : chunks) {
    offsets.push_back(s.offset);
  }
  std::sort(offsets.begin(), offsets.end());
  for (size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i] - offsets[i - 1], 512u);
  }
  for (const Span& s : chunks) {
    pool.Free(s);
  }
}

TEST_F(PoolTest, SlabFreeRecyclesWithoutRegistration) {
  Pool pool(node_, SmallOptions());
  for (int cycle = 0; cycle < 100; ++cycle) {
    const Span s = pool.Alloc(1000);
    pool.Free(s);
  }
  EXPECT_EQ(pool.registrations(), 1u);
  EXPECT_EQ(pool.allocs(), 100u);
  EXPECT_EQ(pool.frees(), 100u);
  EXPECT_EQ(pool.mr_reuses(), 99u) << "every alloc after the first reuses the MR";
  EXPECT_EQ(pool.in_use_bytes(), 0u);
}

TEST_F(PoolTest, MagazineOverflowCoalescesSlabsBackToBuddy) {
  PoolOptions options = SmallOptions();
  options.slab_magazine = 0;  // no cached fully-free slabs
  Pool pool(node_, options);
  const Span s = pool.Alloc(500);
  pool.Free(s);
  // With the slab dissolved back into the buddy, the whole arena is one free
  // extent again: a full-arena alloc fits in the same registration.
  const Span whole = pool.Alloc(pool.arena_bytes());
  EXPECT_EQ(pool.registrations(), 1u);
  pool.Free(whole);
}

TEST_F(PoolTest, ZeroByteAllocIsServed) {
  Pool pool(node_, SmallOptions());
  const Span s = pool.Alloc(0);
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(s.size, 0u);
  EXPECT_EQ(s.bytes().size(), 0u);
  pool.Free(s);
  EXPECT_EQ(pool.in_use_bytes(), 0u);
}

// ---- Huge path ----------------------------------------------------------------

TEST_F(PoolTest, HugeAllocationGetsDedicatedRegionAndReuse) {
  Pool pool(node_, SmallOptions());
  const size_t huge = pool.arena_bytes() * 2;
  const Span a = pool.Alloc(huge);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(pool.registrations(), 1u);
  pool.Free(a);
  // Same-size reallocation reuses the cached region: no new registration.
  const Span b = pool.Alloc(huge);
  EXPECT_EQ(b.mr, a.mr);
  EXPECT_EQ(pool.registrations(), 1u);
  EXPECT_EQ(pool.mr_reuses(), 1u);
  pool.Free(b);
}

// ---- Exhaustion and misuse ----------------------------------------------------

TEST_F(PoolTest, ExhaustionThrowsCleanlyAndPoolStaysUsable) {
  PoolOptions options = SmallOptions();
  options.max_registered_bytes = options.block_bytes << (options.pool_level - 1);
  Pool pool(node_, options);

  const Span whole = pool.Alloc(pool.arena_bytes());  // fills the one allowed arena
  EXPECT_THROW(pool.Alloc(4096), ExhaustedError) << "second arena exceeds the cap";
  EXPECT_THROW(pool.Alloc(pool.arena_bytes() * 4), ExhaustedError) << "huge path too";

  // The failure is a clean resource condition: freeing makes room again.
  pool.Free(whole);
  const Span retry = pool.Alloc(4096);
  EXPECT_TRUE(retry.valid());
  EXPECT_EQ(pool.registrations(), 1u);
  pool.Free(retry);
}

TEST_F(PoolTest, FreeingInvalidSpanIsNoOp) {
  Pool pool(node_, SmallOptions());
  EXPECT_NO_THROW(pool.Free(Span{}));
  EXPECT_EQ(pool.frees(), 0u);
}

TEST_F(PoolTest, FreeingForeignSpanThrows) {
  Pool pool(node_, SmallOptions());
  rdma::MemoryRegion* foreign = node_.RegisterMemory(4096, rdma::kAccessLocal);
  EXPECT_THROW(pool.Free(Span{foreign, 0, 64}), std::invalid_argument);
}

TEST_F(PoolTest, FreeingUnallocatedBuddyOffsetThrows) {
  Pool pool(node_, SmallOptions());
  const Span s = pool.Alloc(8192);
  // Same arena MR, but an offset the buddy never handed out.
  EXPECT_THROW(pool.Free(Span{s.mr, s.offset + 8192, 8192}), std::invalid_argument);
  pool.Free(s);
}

// ---- Alignment ----------------------------------------------------------------

TEST_F(PoolTest, SpansAlignToTheirRoundedSize) {
  Pool pool(node_, SmallOptions());
  const size_t min_chunk = SmallOptions().block_bytes >> SmallOptions().slab_classes;
  std::vector<Span> spans;
  for (size_t size : {size_t{1}, size_t{100}, size_t{512}, size_t{900}, size_t{2048},
                      size_t{4096}, size_t{6000}, size_t{16384}}) {
    const Span s = pool.Alloc(size);
    const size_t align = std::bit_ceil(std::max(size, min_chunk));
    EXPECT_EQ(s.offset % align, 0u) << "size " << size;
    EXPECT_EQ(s.size, size);
    EXPECT_EQ(s.bytes().size(), size);
    spans.push_back(s);
  }
  for (const Span& s : spans) {
    pool.Free(s);
  }
}

// ---- Fragmentation stress -----------------------------------------------------

TEST_F(PoolTest, SeededChurnStaysConsistentAndRecyclesMemory) {
  Pool pool(node_, SmallOptions());
  sim::Rng rng(20260808);
  std::vector<Span> live;
  // Mixed-size churn across slab, buddy, and (rarely) huge paths.
  for (int step = 0; step < 4000; ++step) {
    if (live.empty() || rng.NextBounded(3) < 2) {
      const size_t size = 1 + rng.NextBounded(pool.arena_bytes() / 2);
      Span s = pool.Alloc(size);
      // Touch both ends: the span must be fully inside its MR.
      s.bytes().front() = std::byte{0xAB};
      s.bytes().back() = std::byte{0xCD};
      live.push_back(s);
    } else {
      const size_t victim = rng.NextBounded(live.size());
      pool.Free(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(pool.allocs(), pool.frees() + live.size());

  // Utilization snapshot is well-formed under fragmentation.
  for (const Pool::ArenaStats& stats : pool.ArenaUtilization()) {
    EXPECT_GE(stats.occupancy_pct, 0.0);
    EXPECT_LE(stats.occupancy_pct, 100.0);
    EXPECT_GE(stats.fragmentation_pct, 0.0);
    EXPECT_LE(stats.fragmentation_pct, 100.0);
  }

  // Draining the survivors returns every byte; arenas stay registered for
  // reuse (never deregistered), and a fresh full-arena alloc proves the free
  // space coalesced rather than leaking into fragments.
  for (const Span& s : live) {
    pool.Free(s);
  }
  EXPECT_EQ(pool.in_use_bytes(), 0u);
  const uint64_t registrations_before = pool.registrations();
  const Span whole = pool.Alloc(pool.arena_bytes());
  EXPECT_EQ(pool.registrations(), registrations_before);
  pool.Free(whole);
}

// ---- Shared per-node pool -----------------------------------------------------

TEST_F(PoolTest, SharedReturnsOneInstancePerNode) {
  std::shared_ptr<Pool> a = Pool::Shared(node_);
  std::shared_ptr<Pool> b = Pool::Shared(node_);
  EXPECT_EQ(a.get(), b.get());
  rdma::Node& other = fabric_.AddNode("m");
  EXPECT_NE(Pool::Shared(other).get(), a.get());
}

TEST_F(PoolTest, SharedPoolFollowsNodeNicConfig) {
  std::shared_ptr<Pool> pool = Pool::Shared(node_);
  const rdma::NicConfig& config = node_.nic().config();
  EXPECT_EQ(pool->options().block_bytes, config.mem_block_bytes);
  EXPECT_EQ(pool->options().pool_level, config.mem_pool_level);
}

}  // namespace
}  // namespace mem
