#include "src/rdma/memory.h"

#include <cstring>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"

namespace rdma {
namespace {

class MemoryTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  Fabric fabric_{engine_};
};

TEST_F(MemoryTest, RegistrationAssignsUniqueKeys) {
  Node& node = fabric_.AddNode("n0");
  MemoryRegion* a = node.RegisterMemory(1024, kAccessRemoteRead);
  MemoryRegion* b = node.RegisterMemory(1024, kAccessRemoteRead);
  EXPECT_NE(a->remote_key().rkey, b->remote_key().rkey);
  EXPECT_EQ(fabric_.FindRemote(a->remote_key()), a);
  EXPECT_EQ(fabric_.FindRemote(b->remote_key()), b);
}

TEST_F(MemoryTest, UnknownRkeyResolvesToNull) {
  EXPECT_EQ(fabric_.FindRemote(RemoteKey{9999}), nullptr);
}

TEST_F(MemoryTest, AccessFlagsReported) {
  Node& node = fabric_.AddNode("n0");
  MemoryRegion* ro = node.RegisterMemory(64, kAccessRemoteRead);
  MemoryRegion* rw = node.RegisterMemory(64, kAccessRemoteRead | kAccessRemoteWrite);
  MemoryRegion* local = node.RegisterMemory(64, kAccessLocal);
  EXPECT_TRUE(ro->AllowsRemoteRead());
  EXPECT_FALSE(ro->AllowsRemoteWrite());
  EXPECT_TRUE(rw->AllowsRemoteWrite());
  EXPECT_FALSE(local->AllowsRemoteRead());
  EXPECT_FALSE(local->AllowsRemoteWrite());
}

TEST_F(MemoryTest, InBoundsChecks) {
  Node& node = fabric_.AddNode("n0");
  MemoryRegion* mr = node.RegisterMemory(100, kAccessLocal);
  EXPECT_TRUE(mr->InBounds(0, 100));
  EXPECT_TRUE(mr->InBounds(100, 0));
  EXPECT_TRUE(mr->InBounds(50, 50));
  EXPECT_FALSE(mr->InBounds(50, 51));
  EXPECT_FALSE(mr->InBounds(101, 0));
}

TEST_F(MemoryTest, TypedLoadStoreRoundTrips) {
  Node& node = fabric_.AddNode("n0");
  MemoryRegion* mr = node.RegisterMemory(64, kAccessLocal);
  mr->Store<uint64_t>(8, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(mr->Load<uint64_t>(8), 0xdeadbeefcafef00dULL);
  mr->Store<uint16_t>(0, 42);
  EXPECT_EQ(mr->Load<uint16_t>(0), 42);
}

TEST_F(MemoryTest, ByteCopiesRoundTrip) {
  Node& node = fabric_.AddNode("n0");
  MemoryRegion* mr = node.RegisterMemory(32, kAccessLocal);
  const char msg[] = "remote fetching paradigm";
  mr->WriteBytes(4, std::as_bytes(std::span(msg, sizeof(msg))));
  char out[sizeof(msg)] = {};
  mr->ReadBytes(4, std::as_writable_bytes(std::span(out, sizeof(out))));
  EXPECT_STREQ(out, msg);
}

TEST_F(MemoryTest, RegionsZeroInitialized) {
  Node& node = fabric_.AddNode("n0");
  MemoryRegion* mr = node.RegisterMemory(256, kAccessLocal);
  for (std::byte b : mr->bytes()) {
    EXPECT_EQ(b, std::byte{0});
  }
}

}  // namespace
}  // namespace rdma
