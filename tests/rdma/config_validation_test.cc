#include "src/rdma/config.h"

#include <limits>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"

namespace rdma {
namespace {

TEST(ConfigValidationTest, DefaultsAreValid) {
  EXPECT_NO_THROW(ValidateConfig(NicConfig{}));
  EXPECT_NO_THROW(ValidateConfig(FabricConfig{}));
}

TEST(ConfigValidationTest, RejectsNegativeServiceTimes) {
  for (auto mutate : {
           +[](NicConfig& c) { c.outbound_issue_ns = -1.0; },
           +[](NicConfig& c) { c.read_state_cpu_ns = -0.5; },
           +[](NicConfig& c) { c.post_cpu_ns = -1.0; },
           +[](NicConfig& c) { c.completion_cpu_ns = -1.0; },
           +[](NicConfig& c) { c.post_lock_ns = -1.0; },
           +[](NicConfig& c) { c.inbound_min_gap_ns = -1.0; },
           +[](NicConfig& c) { c.outbound_batch_marginal_ns = -1.0; },
           +[](NicConfig& c) { c.two_sided_tx_ns = -1.0; },
           +[](NicConfig& c) { c.two_sided_rx_ns = -1.0; },
       }) {
    NicConfig config;
    mutate(config);
    EXPECT_THROW(ValidateConfig(config), std::invalid_argument);
  }
}

TEST(ConfigValidationTest, RejectsBadScalingParameters) {
  {
    NicConfig c;
    c.outbound_free_threads = -1;
    EXPECT_THROW(ValidateConfig(c), std::invalid_argument);
  }
  {
    NicConfig c;
    c.outbound_read_thread_factor = -0.1;
    EXPECT_THROW(ValidateConfig(c), std::invalid_argument);
  }
  {
    NicConfig c;
    c.bandwidth_bytes_per_ns = 0.0;  // division by zero in serialization time
    EXPECT_THROW(ValidateConfig(c), std::invalid_argument);
  }
  {
    NicConfig c;
    c.cores = 0;
    EXPECT_THROW(ValidateConfig(c), std::invalid_argument);
  }
}

TEST(ConfigValidationTest, RejectsBadMemoryPoolKnobs) {
  for (auto mutate : {
           +[](NicConfig& c) { c.mem_block_bytes = 3000; },  // not a power of two
           +[](NicConfig& c) { c.mem_block_bytes = 32; },    // below the 64-byte floor
           +[](NicConfig& c) { c.mem_pool_level = 0; },
           +[](NicConfig& c) { c.mem_pool_level = 33; },
           +[](NicConfig& c) {
             // mem_block_bytes << (mem_pool_level - 1) overflows size_t.
             c.mem_block_bytes = size_t{1} << 60;
             c.mem_pool_level = 10;
           },
           +[](NicConfig& c) { c.mem_slab_classes = -1; },
           +[](NicConfig& c) { c.mem_slab_classes = 8; },  // 4096 >> 8 = 16 < 32
           +[](NicConfig& c) { c.mem_slab_magazine = -1; },
           +[](NicConfig& c) {
             // Cap below one arena: the pool could never register anything.
             c.mem_max_registered_bytes =
                 (c.mem_block_bytes << (c.mem_pool_level - 1)) - 1;
           },
       }) {
    NicConfig config;
    mutate(config);
    EXPECT_THROW(ValidateConfig(config), std::invalid_argument);
  }
  // The cap is legal at exactly one arena, and 0 means unbounded.
  {
    NicConfig c;
    c.mem_max_registered_bytes = c.mem_block_bytes << (c.mem_pool_level - 1);
    EXPECT_NO_THROW(ValidateConfig(c));
  }
  {
    NicConfig c;
    c.mem_max_registered_bytes = 0;
    EXPECT_NO_THROW(ValidateConfig(c));
  }
}

TEST(ConfigValidationTest, RejectsOutOfRangeJitterAndNan) {
  {
    NicConfig c;
    c.service_jitter = 1.5;  // would allow negative service times
    EXPECT_THROW(ValidateConfig(c), std::invalid_argument);
  }
  {
    NicConfig c;
    c.service_jitter = -0.1;
    EXPECT_THROW(ValidateConfig(c), std::invalid_argument);
  }
  {
    NicConfig c;
    c.outbound_issue_ns = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(ValidateConfig(c), std::invalid_argument);
  }
}

TEST(ConfigValidationTest, RejectsBadFabricValues) {
  {
    FabricConfig c;
    c.wire_latency_ns = -1;
    EXPECT_THROW(ValidateConfig(c), std::invalid_argument);
  }
  {
    FabricConfig c;
    c.unreliable_loss_prob = -0.01;
    EXPECT_THROW(ValidateConfig(c), std::invalid_argument);
  }
  {
    FabricConfig c;
    c.unreliable_loss_prob = 1.01;
    EXPECT_THROW(ValidateConfig(c), std::invalid_argument);
  }
  {
    // A bad nested NIC config fails fabric validation too.
    FabricConfig c;
    c.nic.cores = -3;
    EXPECT_THROW(ValidateConfig(c), std::invalid_argument);
  }
}

TEST(ConfigValidationTest, ConstructorsFailLoudly) {
  sim::Engine engine;
  FabricConfig bad;
  bad.unreliable_loss_prob = 2.0;
  EXPECT_THROW(Fabric(engine, bad), std::invalid_argument);

  // The error message names the layer and the offending field family.
  try {
    Fabric fabric(engine, bad);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("rdma config"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace rdma
