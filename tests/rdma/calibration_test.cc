// End-to-end calibration checks: running real client/server actor loops on
// the fabric must reproduce the paper's measured hardware envelope
// (Section 2.2). These are small versions of the Fig 3/4/5 benchmarks with
// assertions instead of tables.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace rdma {
namespace {

struct LoopStats {
  uint64_t ops = 0;
};

// An actor that issues back-to-back synchronous READs of `size` bytes until
// `deadline`, counting completions (the paper's in-bound IOPS pattern).
sim::Task<void> ReadLoop(sim::Engine& eng, QueuePair* qp, MemoryRegion* local,
                         MemoryRegion* remote, uint32_t size, sim::Time deadline,
                         LoopStats* stats) {
  while (eng.now() < deadline) {
    WorkCompletion wc = co_await qp->Read(*local, 0, remote->remote_key(), 0, size);
    if (!wc.ok()) {
      break;
    }
    ++stats->ops;
  }
}

// An actor that issues back-to-back synchronous WRITEs (the out-bound IOPS
// pattern: the server writes to client memory).
sim::Task<void> WriteLoop(sim::Engine& eng, QueuePair* qp, MemoryRegion* local,
                          MemoryRegion* remote, uint32_t size, sim::Time deadline,
                          LoopStats* stats) {
  while (eng.now() < deadline) {
    WorkCompletion wc = co_await qp->Write(*local, 0, remote->remote_key(), 0, size);
    if (!wc.ok()) {
      break;
    }
    ++stats->ops;
  }
}

double MeasureInboundMops(int client_nodes, int threads_per_node, uint32_t size) {
  sim::Engine engine;
  Fabric fabric(engine);
  Node& server = fabric.AddNode("server");
  MemoryRegion* remote = server.RegisterMemory(8192, kAccessRemoteRead);
  const sim::Time duration = sim::Millis(3);
  std::vector<LoopStats> stats(static_cast<size_t>(client_nodes * threads_per_node));
  size_t idx = 0;
  for (int n = 0; n < client_nodes; ++n) {
    Node& client = fabric.AddNode("client" + std::to_string(n));
    for (int t = 0; t < threads_per_node; ++t) {
      auto [cqp, sqp] = fabric.ConnectRc(client, server);
      MemoryRegion* local = client.RegisterMemory(8192, kAccessLocal);
      engine.Spawn(ReadLoop(engine, cqp, local, remote, size, duration, &stats[idx++]));
      (void)sqp;
    }
  }
  engine.Run();
  uint64_t total = 0;
  for (const auto& s : stats) {
    total += s.ops;
  }
  return static_cast<double>(total) / sim::ToSeconds(duration) / 1e6;
}

double MeasureOutboundMops(int server_threads, uint32_t size) {
  sim::Engine engine;
  Fabric fabric(engine);
  Node& server = fabric.AddNode("server");
  const sim::Time duration = sim::Millis(3);
  std::vector<LoopStats> stats(static_cast<size_t>(server_threads));
  // 7 client machines, as in the paper's testbed.
  std::vector<Node*> clients;
  std::vector<MemoryRegion*> client_mem;
  for (int n = 0; n < 7; ++n) {
    clients.push_back(&fabric.AddNode("client" + std::to_string(n)));
    client_mem.push_back(clients.back()->RegisterMemory(8192, kAccessRemoteWrite));
  }
  for (int t = 0; t < server_threads; ++t) {
    // Each server thread writes to one client (round-robin).
    auto [sqp, cqp] = fabric.ConnectRc(server, *clients[static_cast<size_t>(t) % 7]);
    MemoryRegion* local = server.RegisterMemory(8192, kAccessLocal);
    engine.Spawn(WriteLoop(engine, sqp, local, client_mem[static_cast<size_t>(t) % 7], size,
                           duration, &stats[static_cast<size_t>(t)]));
    (void)cqp;
  }
  engine.Run();
  uint64_t total = 0;
  for (const auto& s : stats) {
    total += s.ops;
  }
  return static_cast<double>(total) / sim::ToSeconds(duration) / 1e6;
}

TEST(CalibrationTest, InboundPeaksNearPaperValue) {
  // 7 clients x 4 threads, 32 B: paper measures ~11.26 MOPS.
  const double mops = MeasureInboundMops(7, 4, 32);
  EXPECT_GT(mops, 10.0);
  EXPECT_LT(mops, 12.0);
}

TEST(CalibrationTest, OutboundSaturatesNearPaperValue) {
  // >= 4 server threads, 32 B: paper measures ~2.11 MOPS.
  const double mops = MeasureOutboundMops(4, 32);
  EXPECT_GT(mops, 1.9);
  EXPECT_LT(mops, 2.3);
}

TEST(CalibrationTest, SingleThreadOutboundWellBelowSaturation) {
  const double mops = MeasureOutboundMops(1, 32);
  EXPECT_GT(mops, 0.5);
  EXPECT_LT(mops, 1.2);
}

TEST(CalibrationTest, AsymmetryRatioAboutFive) {
  const double in = MeasureInboundMops(7, 4, 32);
  const double out = MeasureOutboundMops(4, 32);
  EXPECT_GT(in / out, 4.0);
  EXPECT_LT(in / out, 6.5);
}

TEST(CalibrationTest, InboundScalesUpThenDeclines) {
  // Fig 4's shape: rising with thread count, peaking around 28-35 total
  // client threads, declining by the 70-thread mark.
  const double at7 = MeasureInboundMops(7, 1, 32);
  const double at28 = MeasureInboundMops(7, 4, 32);
  const double at70 = MeasureInboundMops(7, 10, 32);
  EXPECT_LT(at7, at28);
  EXPECT_LT(at70, at28);
  EXPECT_GT(at70, at28 * 0.7);  // decline is moderate, not a collapse
}

TEST(CalibrationTest, LargePayloadsEraseTheAsymmetry) {
  // Fig 5: at >= 2 KB both directions are bandwidth-bound and equal.
  const double in = MeasureInboundMops(7, 4, 2048);
  const double out = MeasureOutboundMops(4, 2048);
  EXPECT_NEAR(in / out, 1.0, 0.15);
}

TEST(CalibrationTest, InboundFlatUpTo256Bytes) {
  const double at32 = MeasureInboundMops(7, 4, 32);
  const double at256 = MeasureInboundMops(7, 4, 256);
  EXPECT_NEAR(at256 / at32, 1.0, 0.05);
  const double at1k = MeasureInboundMops(7, 4, 1024);
  EXPECT_LT(at1k, at256 * 0.6);  // bandwidth knee in effect
}

}  // namespace
}  // namespace rdma
