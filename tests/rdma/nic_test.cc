#include "src/rdma/nic.h"

#include <gtest/gtest.h>

#include "src/rdma/config.h"
#include "src/sim/engine.h"

namespace rdma {
namespace {

class NicTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  NicConfig config_;
};

TEST_F(NicTest, OutboundBaseServiceMatchesSaturationRate) {
  Nic nic(engine_, config_);
  // 474 ns service <=> 2.11 MOPS saturated pipeline.
  EXPECT_EQ(nic.OutboundServiceTime(Opcode::kRead, 0), 474);
}

TEST_F(NicTest, ReadAndWriteShareThePipelineCapWhenUncontended) {
  // The saturated out-bound rate is the same for READ and WRITE (the
  // paper's 2.11 MOPS is measured with WRITEs); latency differences live on
  // the requester-state path, not the pipeline.
  Nic nic(engine_, config_);
  EXPECT_EQ(nic.OutboundServiceTime(Opcode::kWrite, 32),
            nic.OutboundServiceTime(Opcode::kRead, 0));
}

TEST_F(NicTest, InboundGapMatchesPeakRate) {
  Nic nic(engine_, config_);
  // 89 ns gap <=> ~11.24 MOPS peak in-bound.
  EXPECT_EQ(nic.InboundServiceTime(32), 89);
  EXPECT_EQ(nic.InboundServiceTime(256), 89);
}

TEST_F(NicTest, InboundBecomesBandwidthBoundForLargePayloads) {
  Nic nic(engine_, config_);
  // 4096 B / 4.5 B/ns = 910 ns, far above the 89 ns gap.
  EXPECT_NEAR(static_cast<double>(nic.InboundServiceTime(4096)), 4096 / 4.5, 1.0);
}

TEST_F(NicTest, InboundAndOutboundConvergeAtTwoKilobytes) {
  Nic nic(engine_, config_);
  // At >= 2 KB both directions are bandwidth-bound (paper Fig 5).
  const sim::Time in = nic.InboundServiceTime(2048);
  const sim::Time out = nic.OutboundServiceTime(Opcode::kWrite, 2048);
  EXPECT_NEAR(static_cast<double>(in), static_cast<double>(out), 32.0);
}

TEST_F(NicTest, AsymmetryRatioAboutFiveForSmallPayloads) {
  Nic nic(engine_, config_);
  const double ratio = static_cast<double>(nic.OutboundServiceTime(Opcode::kRead, 0)) /
                       static_cast<double>(nic.InboundServiceTime(32));
  // Paper: 11.26 / 2.11 ~ 5.3x.
  EXPECT_GT(ratio, 4.5);
  EXPECT_LT(ratio, 6.0);
}

TEST_F(NicTest, OutboundContentionInflatesBeyondFreeThreads) {
  Nic nic(engine_, config_);
  const sim::Time base = nic.OutboundServiceTime(Opcode::kRead, 0);
  for (int i = 0; i < config_.outbound_free_threads; ++i) {
    nic.BeginOutbound();
  }
  EXPECT_EQ(nic.OutboundServiceTime(Opcode::kRead, 0), base);
  for (int i = 0; i < 10; ++i) {
    nic.BeginOutbound();
  }
  EXPECT_GT(nic.OutboundServiceTime(Opcode::kRead, 0), base);
}

TEST_F(NicTest, ReadIssueInflatesFasterThanWriteIssue) {
  // The client-side contention that drives Fig 4's decline is READ-specific
  // (requesters hold per-READ state); WRITE issue degrades only mildly
  // (Fig 3 near-flat, Fig 12's gentle ServerReply decline).
  Nic nic(engine_, config_);
  for (int i = 0; i < config_.outbound_free_threads + 4; ++i) {
    nic.BeginOutbound();
  }
  const sim::Time read = nic.OutboundServiceTime(Opcode::kRead, 0);
  const sim::Time write = nic.OutboundServiceTime(Opcode::kWrite, 32);
  EXPECT_GT(read, write);
  // 4 extra posters: read x1.4, write x1.08.
  EXPECT_NEAR(static_cast<double>(read), 474.0 * 1.4, 2.0);
  EXPECT_NEAR(static_cast<double>(write), 474.0 * 1.08, 2.0);
}

TEST_F(NicTest, InboundServiceIgnoresQpCount) {
  // In-bound serving is pure hardware: QP count on the node is
  // informational only.
  Nic nic(engine_, config_);
  const sim::Time base = nic.InboundServiceTime(32);
  nic.AddActiveQps(500);
  EXPECT_EQ(nic.InboundServiceTime(32), base);
  EXPECT_EQ(nic.active_qps(), 500);
}

TEST_F(NicTest, TwoSidedCostsAreSymmetric) {
  Nic nic(engine_, config_);
  // Issue and serve of a SEND share the same base cost: no asymmetry
  // (the paper's circumstantial evidence in Section 2.2).
  EXPECT_EQ(nic.OutboundServiceTime(Opcode::kSend, 32),
            static_cast<sim::Time>(config_.two_sided_tx_ns + 0.5));
  EXPECT_EQ(config_.two_sided_tx_ns, config_.two_sided_rx_ns);
}

TEST_F(NicTest, CountersTrackOps) {
  Nic nic(engine_, config_);
  engine_.Spawn(nic.IssueOneSided(Opcode::kRead, 0));
  engine_.Spawn(nic.ServeInboundOneSided(32));
  engine_.Run();
  EXPECT_EQ(nic.outbound_ops(), 1u);
  EXPECT_EQ(nic.inbound_ops(), 1u);
}

TEST_F(NicTest, PostOverheadSerializedByPostLock) {
  Nic nic(engine_, config_);
  engine_.Spawn(nic.PostOverhead());
  engine_.Spawn(nic.PostOverhead());
  engine_.Run();
  // Two posts: lock section is serialized (2 * 20ns), CPU portions overlap.
  EXPECT_GE(engine_.now(), static_cast<sim::Time>(2 * config_.post_lock_ns));
}

}  // namespace
}  // namespace rdma
