#include "src/rdma/fabric.h"

#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "tests/testutil.h"

namespace rdma {
namespace {

TEST(FabricTest, NodesGetSequentialIds) {
  sim::Engine engine;
  Fabric fabric(engine);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  EXPECT_EQ(a.id(), 0u);
  EXPECT_EQ(b.id(), 1u);
  EXPECT_EQ(fabric.node_count(), 2u);
  EXPECT_EQ(&fabric.node(0), &a);
}

TEST(FabricTest, ConnectRcWiresPeers) {
  sim::Engine engine;
  Fabric fabric(engine);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [qa, qb] = fabric.ConnectRc(a, b);
  EXPECT_EQ(qa->local_node(), &a);
  EXPECT_EQ(qa->peer_node(), &b);
  EXPECT_EQ(qb->local_node(), &b);
  EXPECT_EQ(qb->peer_node(), &a);
  EXPECT_EQ(qa->type(), QpType::kRc);
  EXPECT_NE(qa->qp_num(), qb->qp_num());
}

TEST(FabricTest, ConnectionsCountTowardsQpPressure) {
  sim::Engine engine;
  Fabric fabric(engine);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  EXPECT_EQ(a.nic().active_qps(), 0);
  fabric.ConnectRc(a, b);
  fabric.ConnectRc(a, b);
  EXPECT_EQ(a.nic().active_qps(), 2);
  EXPECT_EQ(b.nic().active_qps(), 2);
  fabric.CreateUd(a);
  EXPECT_EQ(a.nic().active_qps(), 3);
}

TEST(FabricTest, FindQpResolvesAddresses) {
  sim::Engine engine;
  Fabric fabric(engine);
  Node& a = fabric.AddNode("a");
  QueuePair* ud = fabric.CreateUd(a);
  EXPECT_EQ(fabric.FindQp(a.id(), ud->qp_num()), ud);
  EXPECT_EQ(fabric.FindQp(a.id(), 9999), nullptr);
  EXPECT_EQ(fabric.FindQp(77, ud->qp_num()), nullptr);
}

TEST(FabricTest, WireLatencyScalesRoundTrip) {
  sim::Engine engine;
  FabricConfig slow;
  slow.wire_latency_ns = 10'000;
  Fabric fabric(engine, slow);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [qa, qb] = fabric.ConnectRc(a, b);
  MemoryRegion* local = a.RegisterMemory(64, kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(64, kAccessRemoteRead);
  rfptest::RunSync(engine, qa->Read(*local, 0, remote->remote_key(), 0, 8));
  EXPECT_GT(engine.now(), sim::Nanos(20'000));  // two hops dominate
  (void)qb;
}

TEST(FabricTest, UnreliableLossDropsUcWrites) {
  sim::Engine engine;
  FabricConfig lossy;
  lossy.unreliable_loss_prob = 1.0;  // drop everything
  Fabric fabric(engine, lossy);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [qa, qb] = fabric.ConnectUc(a, b);
  MemoryRegion* local = a.RegisterMemory(64, kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(64, kAccessRemoteWrite);
  local->Store<uint32_t>(0, 0x1234);
  WorkCompletion wc = rfptest::RunSync(engine, qa->Write(*local, 0, remote->remote_key(), 0, 4));
  EXPECT_TRUE(wc.ok());  // the sender cannot tell
  engine.Run();
  EXPECT_EQ(remote->Load<uint32_t>(0), 0u);  // but nothing arrived
  (void)qb;
}

TEST(FabricTest, RcIsNeverLossyEvenWhenConfigured) {
  sim::Engine engine;
  FabricConfig lossy;
  lossy.unreliable_loss_prob = 1.0;
  Fabric fabric(engine, lossy);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [qa, qb] = fabric.ConnectRc(a, b);
  MemoryRegion* local = a.RegisterMemory(64, kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(64, kAccessRemoteWrite);
  local->Store<uint32_t>(0, 0x1234);
  WorkCompletion wc = rfptest::RunSync(engine, qa->Write(*local, 0, remote->remote_key(), 0, 4));
  EXPECT_TRUE(wc.ok());
  EXPECT_EQ(remote->Load<uint32_t>(0), 0x1234u);
  (void)qb;
}

TEST(FabricTest, PartialLossRateApproximatelyHonored) {
  sim::Engine engine;
  FabricConfig lossy;
  lossy.unreliable_loss_prob = 0.3;
  Fabric fabric(engine, lossy);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [qa, qb] = fabric.ConnectUc(a, b);
  MemoryRegion* local = a.RegisterMemory(64, kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(64, kAccessRemoteWrite);
  int delivered = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    remote->Store<uint32_t>(0, 0);
    local->Store<uint32_t>(0, 1);
    rfptest::RunSync(engine, qa->Write(*local, 0, remote->remote_key(), 0, 4));
    engine.Run();
    delivered += remote->Load<uint32_t>(0) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / trials, 0.7, 0.05);
  (void)qb;
}

}  // namespace
}  // namespace rdma
