// Stress and determinism tests for the fabric: many concurrent actors doing
// mixed one-sided traffic with full data verification, and bit-identical
// reproducibility across runs.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace rdma {
namespace {

// Each worker owns a disjoint window of the server region and continuously
// writes a stamped pattern and reads it back, verifying every byte.
sim::Task<void> VerifyingWorker(sim::Engine& eng, QueuePair* qp, MemoryRegion* local,
                                MemoryRegion* remote, size_t window_off, sim::Time deadline,
                                uint64_t* ops, uint64_t* corruptions) {
  sim::Rng rng(window_off);
  uint64_t stamp = 0;
  while (eng.now() < deadline) {
    const uint32_t len = static_cast<uint32_t>(8 + rng.NextBounded(120));
    ++stamp;
    for (uint32_t i = 0; i < len; ++i) {
      local->bytes()[i] = static_cast<std::byte>((stamp + i) & 0xff);
    }
    WorkCompletion w = co_await qp->Write(*local, 0, remote->remote_key(), window_off, len);
    EXPECT_TRUE(w.ok());
    // Scribble over the local buffer, then read back and verify.
    std::memset(local->bytes().data(), 0xEE, 256);
    WorkCompletion r = co_await qp->Read(*local, 0, remote->remote_key(), window_off, len);
    EXPECT_TRUE(r.ok());
    for (uint32_t i = 0; i < len; ++i) {
      if (local->bytes()[i] != static_cast<std::byte>((stamp + i) & 0xff)) {
        ++*corruptions;
        break;
      }
    }
    ++*ops;
  }
}

TEST(FabricStressTest, ConcurrentMixedTrafficNeverCorrupts) {
  sim::Engine engine;
  Fabric fabric(engine);
  Node& server = fabric.AddNode("server");
  MemoryRegion* remote =
      server.RegisterMemory(64 * 256, kAccessRemoteRead | kAccessRemoteWrite);
  const int kWorkers = 48;
  std::vector<uint64_t> ops(kWorkers, 0);
  std::vector<uint64_t> corruptions(kWorkers, 0);
  std::vector<Node*> nodes;
  for (int n = 0; n < 8; ++n) {
    nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }
  for (int w = 0; w < kWorkers; ++w) {
    Node* node = nodes[static_cast<size_t>(w % 8)];
    auto [cqp, sqp] = fabric.ConnectRc(*node, server);
    (void)sqp;
    MemoryRegion* local = node->RegisterMemory(256, kAccessLocal);
    engine.Spawn(VerifyingWorker(engine, cqp, local, remote, static_cast<size_t>(w) * 256,
                                 sim::Millis(3), &ops[static_cast<size_t>(w)],
                                 &corruptions[static_cast<size_t>(w)]));
  }
  engine.Run();
  uint64_t total = 0;
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_GT(ops[static_cast<size_t>(w)], 100u) << "worker " << w << " starved";
    EXPECT_EQ(corruptions[static_cast<size_t>(w)], 0u) << "worker " << w;
    total += ops[static_cast<size_t>(w)];
  }
  EXPECT_GT(total, 10'000u);
}

uint64_t RunDeterministicWorkload(uint64_t seed) {
  sim::Engine engine;
  FabricConfig config;
  config.seed = seed;
  Fabric fabric(engine, config);
  Node& server = fabric.AddNode("server");
  MemoryRegion* remote = server.RegisterMemory(4096, kAccessRemoteRead | kAccessRemoteWrite);
  uint64_t checksum = 0;
  for (int w = 0; w < 8; ++w) {
    Node& client = fabric.AddNode("client" + std::to_string(w));
    auto [cqp, sqp] = fabric.ConnectRc(client, server);
    (void)sqp;
    MemoryRegion* local = client.RegisterMemory(256, kAccessLocal);
    engine.Spawn([](sim::Engine& eng, QueuePair* qp, MemoryRegion* l, MemoryRegion* r, int id,
                    uint64_t* sum) -> sim::Task<void> {
      sim::Rng rng(static_cast<uint64_t>(id));
      while (eng.now() < sim::Millis(1)) {
        const uint32_t len = static_cast<uint32_t>(8 + rng.NextBounded(64));
        co_await qp->Write(*l, 0, r->remote_key(), static_cast<size_t>(id) * 256, len);
        // Fold the completion time into the checksum: any divergence in
        // event ordering or service times changes it.
        *sum = sim::Mix64(*sum ^ static_cast<uint64_t>(eng.now()) ^ len);
      }
    }(engine, cqp, local, remote, w, &checksum));
  }
  engine.Run();
  return checksum;
}

TEST(FabricStressTest, IdenticalSeedsYieldBitIdenticalRuns) {
  const uint64_t a = RunDeterministicWorkload(1234);
  const uint64_t b = RunDeterministicWorkload(1234);
  EXPECT_EQ(a, b) << "simulation must be fully deterministic";
  const uint64_t c = RunDeterministicWorkload(9999);
  EXPECT_NE(a, c) << "different fabric seeds must perturb timing";
}

TEST(FabricStressTest, AsyncPipelineDrainsCompletely) {
  // Post a deep pipeline of async WRITEs and drain the CQ: every wr_id must
  // complete exactly once.
  sim::Engine engine;
  Fabric fabric(engine);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [qa, qb] = fabric.ConnectRc(a, b);
  (void)qb;
  MemoryRegion* local = a.RegisterMemory(4096, kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(4096, kAccessRemoteWrite);
  const int kOps = 200;
  for (int i = 0; i < kOps; ++i) {
    qa->PostWrite(static_cast<uint64_t>(i), *local, 0, remote->remote_key(),
                  static_cast<size_t>(i % 64) * 64, 32);
  }
  engine.Run();
  std::vector<int> seen(kOps, 0);
  while (auto wc = qa->send_cq()->Poll()) {
    EXPECT_TRUE(wc->ok());
    seen[static_cast<size_t>(wc->wr_id)]++;
  }
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], 1) << "wr_id " << i;
  }
}

}  // namespace
}  // namespace rdma
