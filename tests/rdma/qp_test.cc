#include "src/rdma/qp.h"

#include <cstring>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "src/check/checker.h"
#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "tests/testutil.h"

namespace rdma {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

class QpTest : public ::testing::Test {
 protected:
  QpTest() {
    client_ = &fabric_.AddNode("client");
    server_ = &fabric_.AddNode("server");
  }

  sim::Engine engine_;
  Fabric fabric_{engine_};
  Node* client_;
  Node* server_;
};

TEST_F(QpTest, WriteTransfersBytes) {
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  MemoryRegion* local = client_->RegisterMemory(64, kAccessLocal);
  MemoryRegion* remote = server_->RegisterMemory(64, kAccessRemoteWrite);
  const std::string msg = "hello rdma";
  local->WriteBytes(0, AsBytes(msg));

  WorkCompletion wc = rfptest::RunSync(
      engine_, cqp->Write(*local, 0, remote->remote_key(), 16, static_cast<uint32_t>(msg.size())));
  EXPECT_TRUE(wc.ok());
  EXPECT_EQ(wc.opcode, Opcode::kWrite);
  EXPECT_EQ(wc.byte_len, msg.size());
  EXPECT_EQ(std::memcmp(remote->bytes().data() + 16, msg.data(), msg.size()), 0);
  (void)sqp;
}

TEST_F(QpTest, ReadFetchesBytes) {
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  MemoryRegion* local = client_->RegisterMemory(64, kAccessLocal);
  MemoryRegion* remote = server_->RegisterMemory(64, kAccessRemoteRead);
  const std::string msg = "server data";
  remote->WriteBytes(8, AsBytes(msg));

  WorkCompletion wc = rfptest::RunSync(
      engine_, cqp->Read(*local, 4, remote->remote_key(), 8, static_cast<uint32_t>(msg.size())));
  EXPECT_TRUE(wc.ok());
  EXPECT_EQ(std::memcmp(local->bytes().data() + 4, msg.data(), msg.size()), 0);
  (void)sqp;
}

TEST_F(QpTest, ReadTakesAboutOneRoundTrip) {
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  MemoryRegion* local = client_->RegisterMemory(64, kAccessLocal);
  MemoryRegion* remote = server_->RegisterMemory(64, kAccessRemoteRead);
  rfptest::RunSync(engine_, cqp->Read(*local, 0, remote->remote_key(), 0, 32));
  // post 200+20 + issue 474 + wire 150 + serve 89 + wire 150 + absorb 7 +
  // completion 150 ~= 1.24 us.
  EXPECT_GT(engine_.now(), sim::Nanos(1000));
  EXPECT_LT(engine_.now(), sim::Nanos(1600));
  (void)sqp;
}

TEST_F(QpTest, WrongRkeyFailsWithRemoteAccessError) {
  // Deliberately illegal: keep the checker counting instead of throwing.
  check::ScopedReportOnly tolerate_violations;
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  MemoryRegion* local = client_->RegisterMemory(64, kAccessLocal);
  WorkCompletion wc =
      rfptest::RunSync(engine_, cqp->Read(*local, 0, RemoteKey{4242}, 0, 8));
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(wc.byte_len, 0u);
  (void)sqp;
}

TEST_F(QpTest, RkeyFromThirdNodeRejected) {
  // Deliberately illegal: keep the checker counting instead of throwing.
  check::ScopedReportOnly tolerate_violations;
  Node* third = &fabric_.AddNode("third");
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  MemoryRegion* local = client_->RegisterMemory(64, kAccessLocal);
  MemoryRegion* other = third->RegisterMemory(64, kAccessRemoteRead);
  // The rkey is valid fabric-wide but belongs to a node this RC QP is not
  // connected to.
  WorkCompletion wc =
      rfptest::RunSync(engine_, cqp->Read(*local, 0, other->remote_key(), 0, 8));
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
  (void)sqp;
}

TEST_F(QpTest, MissingRemoteWritePermissionRejected) {
  // Deliberately illegal: keep the checker counting instead of throwing.
  check::ScopedReportOnly tolerate_violations;
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  MemoryRegion* local = client_->RegisterMemory(64, kAccessLocal);
  MemoryRegion* read_only = server_->RegisterMemory(64, kAccessRemoteRead);
  WorkCompletion wc = rfptest::RunSync(
      engine_, cqp->Write(*local, 0, read_only->remote_key(), 0, 8));
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
  // And the bytes were not touched.
  EXPECT_EQ(read_only->bytes()[0], std::byte{0});
  (void)sqp;
}

TEST_F(QpTest, RemoteOutOfBoundsRejected) {
  // Deliberately illegal: keep the checker counting instead of throwing.
  check::ScopedReportOnly tolerate_violations;
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  MemoryRegion* local = client_->RegisterMemory(64, kAccessLocal);
  MemoryRegion* remote = server_->RegisterMemory(64, kAccessRemoteWrite);
  WorkCompletion wc =
      rfptest::RunSync(engine_, cqp->Write(*local, 0, remote->remote_key(), 60, 8));
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
  (void)sqp;
}

TEST_F(QpTest, LocalOutOfBoundsRejectedImmediately) {
  // Deliberately illegal: keep the checker counting instead of throwing.
  check::ScopedReportOnly tolerate_violations;
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  MemoryRegion* local = client_->RegisterMemory(16, kAccessLocal);
  MemoryRegion* remote = server_->RegisterMemory(64, kAccessRemoteWrite);
  WorkCompletion wc =
      rfptest::RunSync(engine_, cqp->Write(*local, 8, remote->remote_key(), 0, 16));
  EXPECT_EQ(wc.status, WcStatus::kLocalProtError);
  EXPECT_EQ(engine_.now(), 0);  // rejected at post time, no network activity
  (void)sqp;
}

TEST_F(QpTest, SendDeliversIntoPostedRecv) {
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  MemoryRegion* src = client_->RegisterMemory(64, kAccessLocal);
  MemoryRegion* dst = server_->RegisterMemory(64, kAccessLocal);
  const std::string msg = "two-sided";
  src->WriteBytes(0, AsBytes(msg));
  sqp->PostRecv(77, *dst, 0, 64);

  WorkCompletion wc =
      rfptest::RunSync(engine_, cqp->Send(*src, 0, static_cast<uint32_t>(msg.size())));
  EXPECT_TRUE(wc.ok());
  auto rwc = sqp->recv_cq()->Poll();
  ASSERT_TRUE(rwc.has_value());
  EXPECT_EQ(rwc->wr_id, 77u);
  EXPECT_EQ(rwc->opcode, Opcode::kRecv);
  EXPECT_EQ(rwc->byte_len, msg.size());
  EXPECT_EQ(rwc->src_qp_num, cqp->qp_num());
  EXPECT_EQ(std::memcmp(dst->bytes().data(), msg.data(), msg.size()), 0);
}

TEST_F(QpTest, RcSendWithoutRecvFailsRnr) {
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  MemoryRegion* src = client_->RegisterMemory(64, kAccessLocal);
  WorkCompletion wc = rfptest::RunSync(engine_, cqp->Send(*src, 0, 8));
  EXPECT_EQ(wc.status, WcStatus::kRnrRetryExceeded);
  (void)sqp;
}

TEST_F(QpTest, RecvBufferTooSmallErrorsOnReceiverSide) {
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  MemoryRegion* src = client_->RegisterMemory(64, kAccessLocal);
  MemoryRegion* dst = server_->RegisterMemory(64, kAccessLocal);
  sqp->PostRecv(1, *dst, 0, 4);
  rfptest::RunSync(engine_, cqp->Send(*src, 0, 32));
  auto rwc = sqp->recv_cq()->Poll();
  ASSERT_TRUE(rwc.has_value());
  EXPECT_EQ(rwc->status, WcStatus::kLocalProtError);
}

TEST_F(QpTest, UdSendRoutesByAddressHandle) {
  QueuePair* cud = fabric_.CreateUd(*client_);
  QueuePair* sud = fabric_.CreateUd(*server_);
  MemoryRegion* src = client_->RegisterMemory(64, kAccessLocal);
  MemoryRegion* dst = server_->RegisterMemory(64, kAccessLocal);
  const std::string msg = "datagram";
  src->WriteBytes(0, AsBytes(msg));
  sud->PostRecv(5, *dst, 0, 64);

  AddressHandle ah{server_->id(), sud->qp_num()};
  WorkCompletion wc = rfptest::RunSync(
      engine_, cud->SendTo(ah, *src, 0, static_cast<uint32_t>(msg.size())));
  EXPECT_TRUE(wc.ok());
  engine_.Run();  // let the detached delivery finish
  auto rwc = sud->recv_cq()->Poll();
  ASSERT_TRUE(rwc.has_value());
  EXPECT_EQ(std::memcmp(dst->bytes().data(), msg.data(), msg.size()), 0);
}

TEST_F(QpTest, UdSendToUnknownDestinationCompletesLocally) {
  QueuePair* cud = fabric_.CreateUd(*client_);
  MemoryRegion* src = client_->RegisterMemory(64, kAccessLocal);
  WorkCompletion wc =
      rfptest::RunSync(engine_, cud->SendTo(AddressHandle{99, 12345}, *src, 0, 8));
  // Fire-and-forget: the sender cannot observe the black hole.
  EXPECT_TRUE(wc.ok());
}

TEST_F(QpTest, UcWriteCompletesBeforeDelivery) {
  auto [cqp, sqp] = fabric_.ConnectUc(*client_, *server_);
  MemoryRegion* local = client_->RegisterMemory(64, kAccessLocal);
  MemoryRegion* remote = server_->RegisterMemory(64, kAccessRemoteWrite);
  local->Store<uint32_t>(0, 0xabcd);

  bool delivered_at_completion = false;
  sim::Time completion_time = 0;
  engine_.Spawn([](QueuePair* qp, MemoryRegion* l, MemoryRegion* r, bool* seen,
                   sim::Time* when, sim::Engine* eng) -> sim::Task<void> {
    WorkCompletion wc = co_await qp->Write(*l, 0, r->remote_key(), 0, 4);
    EXPECT_TRUE(wc.ok());
    *seen = r->Load<uint32_t>(0) == 0xabcd;
    *when = eng->now();
  }(cqp, local, remote, &delivered_at_completion, &completion_time, &engine_));
  engine_.Run();
  // Completion fired before the payload landed (no ACK on UC)...
  EXPECT_FALSE(delivered_at_completion);
  // ...but the payload did land eventually.
  EXPECT_EQ(remote->Load<uint32_t>(0), 0xabcdu);
  (void)sqp;
}

TEST_F(QpTest, AsyncPostsDeliverToSendCq) {
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  MemoryRegion* local = client_->RegisterMemory(64, kAccessLocal);
  MemoryRegion* remote = server_->RegisterMemory(64, kAccessRemoteRead | kAccessRemoteWrite);
  cqp->PostWrite(11, *local, 0, remote->remote_key(), 0, 16);
  cqp->PostRead(12, *local, 16, remote->remote_key(), 0, 16);
  engine_.Run();
  EXPECT_EQ(cqp->send_cq()->total_completions(), 2u);
  auto wc1 = cqp->send_cq()->Poll();
  auto wc2 = cqp->send_cq()->Poll();
  ASSERT_TRUE(wc1 && wc2);
  EXPECT_TRUE(wc1->ok());
  EXPECT_TRUE(wc2->ok());
  EXPECT_EQ(wc1->wr_id + wc2->wr_id, 23u);
  (void)sqp;
}

TEST_F(QpTest, CqWaitSuspendsUntilCompletionArrives) {
  auto [cqp, sqp] = fabric_.ConnectRc(*client_, *server_);
  (void)sqp;
  MemoryRegion* local = client_->RegisterMemory(64, kAccessLocal);
  MemoryRegion* remote = server_->RegisterMemory(64, kAccessRemoteWrite);
  // Post asynchronously AFTER a waiter is already suspended on the CQ.
  sim::Time woke_at = -1;
  engine_.Spawn([](sim::Engine& eng, QueuePair* qp, sim::Time* when) -> sim::Task<void> {
    WorkCompletion wc = co_await qp->send_cq()->Wait();
    EXPECT_TRUE(wc.ok());
    EXPECT_EQ(wc.wr_id, 99u);
    *when = eng.now();
  }(engine_, cqp, &woke_at));
  engine_.ScheduleAt(sim::Micros(5), [&] {
    cqp->PostWrite(99, *local, 0, remote->remote_key(), 0, 16);
  });
  engine_.Run();
  // The waiter woke only after the posted op completed (> post time + RTT).
  EXPECT_GT(woke_at, sim::Micros(5));
}

// Operation-support matrix (paper Section 5, Table-style): RC supports
// READ+WRITE+SEND, UC supports WRITE+SEND, UD supports neither one-sided op.
class OpMatrixTest : public ::testing::TestWithParam<std::tuple<QpType, Opcode>> {};

TEST_P(OpMatrixTest, SupportMatrixEnforced) {
  // Deliberately illegal: keep the checker counting instead of throwing.
  check::ScopedReportOnly tolerate_violations;
  const auto [type, op] = GetParam();
  sim::Engine engine;
  Fabric fabric(engine);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  MemoryRegion* local = a.RegisterMemory(64, kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(64, kAccessRemoteRead | kAccessRemoteWrite);

  QueuePair* qp = nullptr;
  if (type == QpType::kUd) {
    qp = fabric.CreateUd(a);
  } else {
    qp = (type == QpType::kRc ? fabric.ConnectRc(a, b) : fabric.ConnectUc(a, b)).first;
  }

  WorkCompletion wc;
  switch (op) {
    case Opcode::kRead:
      wc = rfptest::RunSync(engine, qp->Read(*local, 0, remote->remote_key(), 0, 8));
      break;
    case Opcode::kWrite:
      wc = rfptest::RunSync(engine, qp->Write(*local, 0, remote->remote_key(), 0, 8));
      break;
    case Opcode::kSend:
      wc = rfptest::RunSync(engine, qp->Send(*local, 0, 8));
      break;
    case Opcode::kRecv:
      GTEST_SKIP() << "RECV is not posted to the send queue";
  }

  const bool supported = (type == QpType::kRc) ||
                         (type == QpType::kUc && op != Opcode::kRead);
  if (supported) {
    EXPECT_NE(wc.status, WcStatus::kUnsupportedOp)
        << QpTypeName(type) << " should support " << OpcodeName(op);
  } else {
    EXPECT_EQ(wc.status, WcStatus::kUnsupportedOp)
        << QpTypeName(type) << " must reject " << OpcodeName(op);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, OpMatrixTest,
    ::testing::Combine(::testing::Values(QpType::kRc, QpType::kUc, QpType::kUd),
                       ::testing::Values(Opcode::kRead, Opcode::kWrite, Opcode::kSend)));

}  // namespace
}  // namespace rdma
