// Violation corpus for the invariant checker (src/check/): each test builds
// the smallest scenario that trips exactly one checker class and asserts the
// precise `check.violation{kind}` accounting, plus pinning tests for the
// latent bugs the checkers originally uncovered (ServerSend publication
// order, reconnect QP retirement, RC completion ordering under faults).

#include "src/check/checker.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/kv/bucket_table.h"
#include "src/obs/metrics.h"
#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/wire.h"
#include "src/sim/engine.h"
#include "src/sim/schedule.h"
#include "tests/testutil.h"

namespace check {
namespace {

using rdma::Fabric;
using rdma::MemoryRegion;
using rdma::Node;
using rdma::QueuePair;
using rdma::RemoteKey;
using rdma::WorkCompletion;

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

// Saves/restores the global limits so per-test tightening cannot leak.
class ScopedLimits {
 public:
  explicit ScopedLimits(const Limits& limits) : saved_(CurrentLimits()) { SetLimits(limits); }
  ~ScopedLimits() { SetLimits(saved_); }

 private:
  Limits saved_;
};

// All corpus tests run in report mode so violations count instead of throw;
// the fixture's mode is active before any Fabric is constructed (the fabric
// attaches its checker at construction time).
class CheckerCorpusTest : public ::testing::Test {
 protected:
  uint64_t MetricValue(ViolationKind kind) {
    return obs::MetricsRegistry::Default()
        .GetCounter("check.violation", {{"kind", ViolationKindName(kind)}})
        ->value();
  }

  // Asserts `kind` fired exactly `n` times on `fabric`'s checker and that the
  // metrics registry counter moved by the same amount since `metric_before`.
  void ExpectViolations(Fabric& fabric, ViolationKind kind, uint64_t n,
                        uint64_t metric_before) {
    ASSERT_NE(fabric.checker(), nullptr);
    EXPECT_EQ(fabric.checker()->violations(kind), n) << ViolationKindName(kind);
    EXPECT_EQ(MetricValue(kind) - metric_before, n) << ViolationKindName(kind);
  }

  ScopedMode mode_{Mode::kReport};
  sim::Engine engine_;
};

// ---- QP state machine ---------------------------------------------------------

TEST_F(CheckerCorpusTest, PostAfterErrorFlagged) {
  Fabric fabric(engine_);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [cqp, sqp] = fabric.ConnectRc(a, b);
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(64, rdma::kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(64, rdma::kAccessRemoteRead);
  const uint64_t before = MetricValue(ViolationKind::kQpPostAfterError);

  cqp->SetError();
  // First post discovers the error via the kQpError completion — legal.
  WorkCompletion wc =
      rfptest::RunSync(engine_, cqp->Read(*local, 0, remote->remote_key(), 0, 8));
  EXPECT_EQ(wc.status, rdma::WcStatus::kQpError);
  ExpectViolations(fabric, ViolationKind::kQpPostAfterError, 0, before);

  // Second post without Recover() means the completion status was ignored.
  wc = rfptest::RunSync(engine_, cqp->Read(*local, 0, remote->remote_key(), 0, 8));
  EXPECT_EQ(wc.status, rdma::WcStatus::kQpError);
  ExpectViolations(fabric, ViolationKind::kQpPostAfterError, 1, before);

  // Recovery resets the discovery state: the next post is clean again.
  cqp->Recover();
  wc = rfptest::RunSync(engine_, cqp->Read(*local, 0, remote->remote_key(), 0, 8));
  EXPECT_EQ(wc.status, rdma::WcStatus::kSuccess);
  ExpectViolations(fabric, ViolationKind::kQpPostAfterError, 1, before);
}

TEST_F(CheckerCorpusTest, PostOnRetiredFlagged) {
  Fabric fabric(engine_);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [cqp, sqp] = fabric.ConnectRc(a, b);
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(64, rdma::kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(64, rdma::kAccessRemoteRead);
  const uint64_t before = MetricValue(ViolationKind::kQpPostOnRetired);

  fabric.RetireQp(cqp);
  EXPECT_TRUE(cqp->retired());
  WorkCompletion wc =
      rfptest::RunSync(engine_, cqp->Read(*local, 0, remote->remote_key(), 0, 8));
  EXPECT_EQ(wc.status, rdma::WcStatus::kQpError);
  ExpectViolations(fabric, ViolationKind::kQpPostOnRetired, 1, before);
}

TEST_F(CheckerCorpusTest, UnsupportedOpFlagged) {
  Fabric fabric(engine_);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [cqp, sqp] = fabric.ConnectUc(a, b);  // UC cannot READ
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(64, rdma::kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(64, rdma::kAccessRemoteRead);
  const uint64_t before = MetricValue(ViolationKind::kQpUnsupportedOp);

  WorkCompletion wc =
      rfptest::RunSync(engine_, cqp->Read(*local, 0, remote->remote_key(), 0, 8));
  EXPECT_EQ(wc.status, rdma::WcStatus::kUnsupportedOp);
  ExpectViolations(fabric, ViolationKind::kQpUnsupportedOp, 1, before);
}

TEST_F(CheckerCorpusTest, WrCapExceededFlagged) {
  Limits tight = CurrentLimits();
  tight.max_outstanding_wr = 2;
  ScopedLimits limits(tight);
  Fabric fabric(engine_);  // checker snapshots the limits at construction
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [cqp, sqp] = fabric.ConnectRc(a, b);
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(64, rdma::kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(64, rdma::kAccessRemoteWrite);
  const uint64_t before = MetricValue(ViolationKind::kQpWrCapExceeded);

  // Four synchronous-post issues before any completes: in-flight peaks at 4,
  // two posts above the cap of 2.
  for (uint64_t wr = 1; wr <= 4; ++wr) {
    cqp->PostWrite(wr, *local, 0, remote->remote_key(), 0, 8);
  }
  engine_.Run();
  ExpectViolations(fabric, ViolationKind::kQpWrCapExceeded, 2, before);
}

// ---- CQ ----------------------------------------------------------------------

TEST_F(CheckerCorpusTest, CqOverflowFlagged) {
  Limits tight = CurrentLimits();
  tight.cq_capacity = 2;
  ScopedLimits limits(tight);
  Fabric fabric(engine_);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [cqp, sqp] = fabric.ConnectRc(a, b);
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(64, rdma::kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(64, rdma::kAccessRemoteWrite);
  const uint64_t before = MetricValue(ViolationKind::kCqOverflow);

  // Four completions land on the send CQ with nobody polling: depths 3 and 4
  // exceed the capacity of 2.
  for (uint64_t wr = 1; wr <= 4; ++wr) {
    cqp->PostWrite(wr, *local, 0, remote->remote_key(), 0, 8);
  }
  engine_.Run();
  ExpectViolations(fabric, ViolationKind::kCqOverflow, 2, before);
}

TEST_F(CheckerCorpusTest, CompletionOrderFlagged) {
  // Unit-level: feed the checker a reordered completion stream directly (the
  // QP's ticket gate makes this unreachable through the public API — which is
  // exactly what RcCompletionsStayInPostOrderUnderLinkFaults pins).
  FabricChecker checker(nullptr, Mode::kReport);
  checker.OnQpCreated(7, rdma::QpType::kRc);
  checker.OnAsyncPost(7, /*wr_id=*/101);  // post #0
  checker.OnAsyncPost(7, /*wr_id=*/102);  // post #1

  WorkCompletion wc;
  wc.qp_num = 7;
  wc.opcode = rdma::Opcode::kWrite;
  wc.status = rdma::WcStatus::kSuccess;

  wc.wr_id = 102;
  checker.OnCqPush(nullptr, wc, 1);  // post #1 completes first
  EXPECT_EQ(checker.violations(ViolationKind::kCqCompletionOrder), 0u);
  wc.wr_id = 101;
  checker.OnCqPush(nullptr, wc, 2);  // post #0 completes after #1: overtaken
  EXPECT_EQ(checker.violations(ViolationKind::kCqCompletionOrder), 1u);
}

TEST_F(CheckerCorpusTest, ErrorCompletionsMayJumpTheQueue) {
  FabricChecker checker(nullptr, Mode::kReport);
  checker.OnQpCreated(7, rdma::QpType::kRc);
  checker.OnAsyncPost(7, /*wr_id=*/101);  // post #0
  checker.OnAsyncPost(7, /*wr_id=*/102);  // post #1
  checker.OnAsyncPost(7, /*wr_id=*/103);  // post #2

  WorkCompletion wc;
  wc.qp_num = 7;
  wc.opcode = rdma::Opcode::kWrite;

  // Post #1 flushes with an error ahead of #0 — legal (flush semantics).
  wc.wr_id = 102;
  wc.status = rdma::WcStatus::kQpError;
  checker.OnCqPush(nullptr, wc, 1);
  // The successful completions still arrive in post order around the gap.
  wc.status = rdma::WcStatus::kSuccess;
  wc.wr_id = 101;
  checker.OnCqPush(nullptr, wc, 2);
  wc.wr_id = 103;
  checker.OnCqPush(nullptr, wc, 3);
  EXPECT_EQ(checker.violations(ViolationKind::kCqCompletionOrder), 0u);
}

// ---- MR bounds & rkey ---------------------------------------------------------

TEST_F(CheckerCorpusTest, BadRkeyFlagged) {
  Fabric fabric(engine_);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [cqp, sqp] = fabric.ConnectRc(a, b);
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(64, rdma::kAccessLocal);
  const uint64_t before = MetricValue(ViolationKind::kMrBadRkey);

  WorkCompletion wc = rfptest::RunSync(engine_, cqp->Read(*local, 0, RemoteKey{4242}, 0, 8));
  EXPECT_EQ(wc.status, rdma::WcStatus::kRemoteAccessError);
  ExpectViolations(fabric, ViolationKind::kMrBadRkey, 1, before);
}

TEST_F(CheckerCorpusTest, OutOfBoundsReadFlagged) {
  Fabric fabric(engine_);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [cqp, sqp] = fabric.ConnectRc(a, b);
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(64, rdma::kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(64, rdma::kAccessRemoteRead);
  const uint64_t before = MetricValue(ViolationKind::kMrOutOfBounds);

  WorkCompletion wc =
      rfptest::RunSync(engine_, cqp->Read(*local, 0, remote->remote_key(), 60, 8));
  EXPECT_EQ(wc.status, rdma::WcStatus::kRemoteAccessError);
  ExpectViolations(fabric, ViolationKind::kMrOutOfBounds, 1, before);
}

TEST_F(CheckerCorpusTest, AccessRightsFlagged) {
  Fabric fabric(engine_);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [cqp, sqp] = fabric.ConnectRc(a, b);
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(64, rdma::kAccessLocal);
  MemoryRegion* read_only = b.RegisterMemory(64, rdma::kAccessRemoteRead);
  const uint64_t before = MetricValue(ViolationKind::kMrAccessRights);

  WorkCompletion wc =
      rfptest::RunSync(engine_, cqp->Write(*local, 0, read_only->remote_key(), 0, 8));
  EXPECT_EQ(wc.status, rdma::WcStatus::kRemoteAccessError);
  ExpectViolations(fabric, ViolationKind::kMrAccessRights, 1, before);
}

TEST_F(CheckerCorpusTest, WrongNodeFlagged) {
  Fabric fabric(engine_);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  Node& c = fabric.AddNode("c");
  auto [cqp, sqp] = fabric.ConnectRc(a, b);
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(64, rdma::kAccessLocal);
  MemoryRegion* other = c.RegisterMemory(64, rdma::kAccessRemoteRead);
  const uint64_t before = MetricValue(ViolationKind::kMrWrongNode);

  WorkCompletion wc =
      rfptest::RunSync(engine_, cqp->Read(*local, 0, other->remote_key(), 0, 8));
  EXPECT_EQ(wc.status, rdma::WcStatus::kRemoteAccessError);
  ExpectViolations(fabric, ViolationKind::kMrWrongNode, 1, before);
}

TEST_F(CheckerCorpusTest, LocalOutOfBoundsFlagged) {
  Fabric fabric(engine_);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [cqp, sqp] = fabric.ConnectRc(a, b);
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(16, rdma::kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(64, rdma::kAccessRemoteWrite);
  const uint64_t before = MetricValue(ViolationKind::kMrLocalOutOfBounds);

  WorkCompletion wc =
      rfptest::RunSync(engine_, cqp->Write(*local, 8, remote->remote_key(), 0, 16));
  EXPECT_EQ(wc.status, rdma::WcStatus::kLocalProtError);
  ExpectViolations(fabric, ViolationKind::kMrLocalOutOfBounds, 1, before);
}

TEST_F(CheckerCorpusTest, UseAfterDeregisterFlagged) {
  Fabric fabric(engine_);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [cqp, sqp] = fabric.ConnectRc(a, b);
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(64, rdma::kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(64, rdma::kAccessRemoteRead);
  const RemoteKey stale = remote->remote_key();
  const uint64_t before = MetricValue(ViolationKind::kMrDeregistered);

  fabric.DeregisterMemory(remote);
  WorkCompletion wc = rfptest::RunSync(engine_, cqp->Read(*local, 0, stale, 0, 8));
  EXPECT_EQ(wc.status, rdma::WcStatus::kRemoteAccessError);
  ExpectViolations(fabric, ViolationKind::kMrDeregistered, 1, before);
  // Distinct from a never-registered rkey.
  EXPECT_EQ(fabric.checker()->violations(ViolationKind::kMrBadRkey), 0u);
}

// ---- Race detector ------------------------------------------------------------

// One echo exchange over a channel where the server scribbles into the
// response block AFTER publishing — the stored bytes reach the client's
// accepted fetch window with no publication point covering them.
TEST_F(CheckerCorpusTest, FetchStoreRaceFlagged) {
  Fabric fabric(engine_);
  Node& client = fabric.AddNode("client");
  Node& server = fabric.AddNode("server");
  rfp::Channel channel(fabric, client, server, rfp::RfpOptions{});
  const uint64_t before = MetricValue(ViolationKind::kRaceFetchStore);

  engine_.Spawn([](sim::Engine& eng, Fabric& fab, rfp::Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> buf(16384);
    size_t n = 0;
    while (!ch->TryServerRecv(buf, &n)) {
      co_await eng.Sleep(sim::Nanos(200));
    }
    co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
    // The bug under test: the server thread reuses the response buffer
    // before the client has fetched it. Model the store both in the bytes
    // and at the checker hook, exactly as Channel::ServerSend does.
    MemoryRegion* mr = fab.FindRemote(RemoteKey{ch->server_rkey()});
    const size_t victim = ch->response_offset() + rfp::kHeaderBytes;
    mr->bytes()[victim] = std::byte{0xEE};
    fab.checker()->OnCpuStore(ch->server_rkey(), victim, 1);
  }(engine_, fabric, &channel));

  engine_.Spawn([](sim::Engine& eng, rfp::Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    co_await ch->ClientSend(AsBytes("payload"));
    // Let the server publish AND scribble before the first fetch, so the
    // accepted fetch deterministically snapshots the dirty byte.
    co_await eng.Sleep(sim::Micros(20));
    (void)co_await ch->ClientRecv(out);
  }(engine_, &channel));

  engine_.Run();
  ExpectViolations(fabric, ViolationKind::kRaceFetchStore, 1, before);
}

// The server-side mirror: a local CPU store lands in the request block
// between the client's request WRITE and the server accepting it.
TEST_F(CheckerCorpusTest, RecvStoreRaceFlagged) {
  Fabric fabric(engine_);
  Node& client = fabric.AddNode("client");
  Node& server = fabric.AddNode("server");
  rfp::Channel channel(fabric, client, server, rfp::RfpOptions{});
  const uint64_t before = MetricValue(ViolationKind::kRaceRecvStore);
  const std::string payload = "payload";

  engine_.Spawn([](sim::Engine& eng, Fabric& fab, rfp::Channel* ch,
                   size_t psize) -> sim::Task<void> {
    // Wait until the request has landed, then scribble the last payload byte
    // (the header stays intact so the poll still matches the sequence).
    co_await eng.Sleep(sim::Micros(5));
    MemoryRegion* mr = fab.FindRemote(RemoteKey{ch->server_rkey()});
    const size_t victim = ch->request_offset() + rfp::kReqHeaderBytes + psize - 1;
    mr->bytes()[victim] = std::byte{0xEE};
    fab.checker()->OnCpuStore(ch->server_rkey(), victim, 1);
    std::vector<std::byte> buf(16384);
    size_t n = 0;
    while (!ch->TryServerRecv(buf, &n)) {
      co_await eng.Sleep(sim::Nanos(200));
    }
    co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
  }(engine_, fabric, &channel, payload.size()));

  engine_.Spawn([](rfp::Channel* ch, std::string msg) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    co_await ch->ClientSend(AsBytes(msg));
    (void)co_await ch->ClientRecv(out);
  }(&channel, payload));

  engine_.Run();
  ExpectViolations(fabric, ViolationKind::kRaceRecvStore, 1, before);
}

// A PUT that mutates a pinned zero-copy entry in place is the entry-reuse
// lifetime bug the pin contract exists to prevent: the descriptor was
// published, the client's entry READ is in flight, and the store scribbles
// the value bytes under it. BucketTable's test-only unsafe_inplace_put knob
// simulates the buggy store; the race detector must attribute exactly one
// race.fetch_store to the entry range.
TEST_F(CheckerCorpusTest, PinnedEntryOverwriteFlagged) {
  Fabric fabric(engine_);
  Node& client = fabric.AddNode("client");
  Node& server = fabric.AddNode("server");
  rfp::Channel channel(fabric, client, server, rfp::RfpOptions{});
  kv::BucketTable table(64, server);
  table.set_unsafe_inplace_put(true);
  const uint64_t before = MetricValue(ViolationKind::kRaceFetchStore);

  engine_.Spawn([](sim::Engine& eng, rfp::Channel* ch,
                   kv::BucketTable* store) -> sim::Task<void> {
    store->Put(AsBytes("k"), AsBytes("AAAA"));
    std::vector<std::byte> buf(16384);
    size_t n = 0;
    while (!ch->TryServerRecv(buf, &n)) {
      co_await eng.Sleep(sim::Nanos(200));
    }
    auto pinned = store->GetPinned(AsBytes("k"));
    EXPECT_TRUE(pinned.has_value());
    if (!pinned.has_value()) {
      co_return;
    }
    rfp::ZeroCopyRef ref;
    ref.rkey = pinned->rkey;
    ref.offset = pinned->offset;
    ref.len = pinned->len;
    ref.epoch = pinned->epoch;
    ref.pin = std::move(pinned->pin);
    co_await ch->ServerSendZeroCopy({}, ref);
    // The bug under test: the channel still pins the entry (the client has
    // not fetched it), yet the store overwrites the value bytes in place.
    store->Put(AsBytes("k"), AsBytes("BBBB"));
  }(engine_, &channel, &table));

  engine_.Spawn([](sim::Engine& eng, rfp::Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    co_await ch->ClientSend(AsBytes("get k"));
    // Let the server publish AND overwrite before the fetch, so the entry
    // READ deterministically snapshots the dirty bytes.
    co_await eng.Sleep(sim::Micros(20));
    (void)co_await ch->ClientRecv(out);
  }(engine_, &channel));

  engine_.Run();
  ExpectViolations(fabric, ViolationKind::kRaceFetchStore, 1, before);
  EXPECT_EQ(table.stats().cow_puts, 0u) << "unsafe knob must suppress the COW";
}

// The safe counterpart pins the fix: with the contract honored, the same
// PUT-while-pinned races nothing. The store copies on write (cow_puts), the
// published entry stays frozen, and the client reads the pre-PUT value —
// clean under strict, where any entry-range race would throw.
TEST_F(CheckerCorpusTest, PinnedEntryCowPutIsRaceFreeUnderStrict) {
  ScopedMode strict(Mode::kStrict);
  Fabric fabric(engine_);
  Node& client = fabric.AddNode("client");
  Node& server = fabric.AddNode("server");
  rfp::Channel channel(fabric, client, server, rfp::RfpOptions{});
  kv::BucketTable table(64, server);

  engine_.Spawn([](sim::Engine& eng, rfp::Channel* ch,
                   kv::BucketTable* store) -> sim::Task<void> {
    store->Put(AsBytes("k"), AsBytes("AAAA"));
    std::vector<std::byte> buf(16384);
    size_t n = 0;
    while (!ch->TryServerRecv(buf, &n)) {
      co_await eng.Sleep(sim::Nanos(200));
    }
    auto pinned = store->GetPinned(AsBytes("k"));
    EXPECT_TRUE(pinned.has_value());
    if (!pinned.has_value()) {
      co_return;
    }
    rfp::ZeroCopyRef ref;
    ref.rkey = pinned->rkey;
    ref.offset = pinned->offset;
    ref.len = pinned->len;
    ref.epoch = pinned->epoch;
    ref.pin = std::move(pinned->pin);
    co_await ch->ServerSendZeroCopy({}, ref);
    store->Put(AsBytes("k"), AsBytes("BBBB"));  // pinned: must copy-on-write
  }(engine_, &channel, &table));

  size_t got = 0;
  std::vector<std::byte> out(16384);
  engine_.Spawn([](sim::Engine& eng, rfp::Channel* ch, std::vector<std::byte>* buf,
                   size_t* n) -> sim::Task<void> {
    co_await ch->ClientSend(AsBytes("get k"));
    co_await eng.Sleep(sim::Micros(20));
    *n = co_await ch->ClientRecv(*buf);
  }(engine_, &channel, &out, &got));

  engine_.Run();  // strict: an in-place overwrite would have thrown here
  EXPECT_EQ(fabric.checker()->violations(ViolationKind::kRaceFetchStore), 0u);
  EXPECT_EQ(table.stats().cow_puts, 1u);
  ASSERT_EQ(got, 4u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), got), "AAAA")
      << "the pinned (pre-PUT) value must be what the client assembled";
  // The store itself moved on: a fresh read sees the new value.
  auto now = table.Get(AsBytes("k"));
  ASSERT_TRUE(now.has_value());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(now->data()), now->size()), "BBBB");
}

// ---- RFP protocol pairing -----------------------------------------------------

TEST_F(CheckerCorpusTest, OverlappingCallFlagged) {
  Fabric fabric(engine_);
  Node& client = fabric.AddNode("client");
  Node& server = fabric.AddNode("server");
  rfp::Channel channel(fabric, client, server, rfp::RfpOptions{});
  const uint64_t before = MetricValue(ViolationKind::kRfpOverlappingCall);

  engine_.Spawn([](rfp::Channel* ch) -> sim::Task<void> {
    co_await ch->ClientSend(AsBytes("first"));
    co_await ch->ClientSend(AsBytes("second"));  // previous call never received
  }(&channel));
  engine_.Run();
  ExpectViolations(fabric, ViolationKind::kRfpOverlappingCall, 1, before);
}

TEST_F(CheckerCorpusTest, RecvWithoutSendFlagged) {
  FabricChecker checker(nullptr, Mode::kReport);
  int channel_tag = 0;
  checker.OnClientRecvStart(&channel_tag);
  EXPECT_EQ(checker.violations(ViolationKind::kRfpRecvWithoutSend), 1u);
  // A paired send/recv is clean.
  checker.OnClientSend(&channel_tag);
  checker.OnClientRecvStart(&channel_tag);
  checker.OnClientRecvDone(&channel_tag);
  EXPECT_EQ(checker.violations(ViolationKind::kRfpRecvWithoutSend), 1u);
  EXPECT_EQ(checker.violations(ViolationKind::kRfpOverlappingCall), 0u);
}

// A pipelined channel declares its window: that many concurrent submits are
// clean, one more is the overlap violation (slot-granular pairing).
TEST_F(CheckerCorpusTest, SubmitBeyondWindowFlagged) {
  FabricChecker checker(nullptr, Mode::kReport);
  int channel_tag = 0;
  checker.OnChannelWindow(&channel_tag, 2);
  checker.OnClientSend(&channel_tag);
  checker.OnClientSend(&channel_tag);
  EXPECT_EQ(checker.violations(ViolationKind::kRfpOverlappingCall), 0u);
  checker.OnClientSend(&channel_tag);
  EXPECT_EQ(checker.violations(ViolationKind::kRfpOverlappingCall), 1u);
}

// The fetch/store race on a *pipelined* channel, slot-granular: the server
// scribbles slot 1's response region after publishing it; slot 0's region
// stays clean. The batched fetch sweep snapshots both slots, and only the
// accept of slot 1's bytes must flag the race.
TEST_F(CheckerCorpusTest, OverlappingSlotStoreFlagged) {
  Fabric fabric(engine_);
  Node& client = fabric.AddNode("client");
  Node& server = fabric.AddNode("server");
  rfp::RfpOptions options;
  options.window = 2;
  rfp::Channel channel(fabric, client, server, options);
  const uint64_t before = MetricValue(ViolationKind::kRaceFetchStore);

  engine_.Spawn([](sim::Engine& eng, Fabric& fab, rfp::Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> buf(16384);
    int served = 0;
    while (served < 2) {
      size_t n = 0;
      if (ch->TryServerRecv(buf, &n)) {
        co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
        ++served;
      } else {
        co_await eng.Sleep(sim::Nanos(200));
      }
    }
    // The bug under test: after publishing both responses the server thread
    // reuses slot 1's response block before the client fetched it.
    MemoryRegion* mr = fab.FindRemote(RemoteKey{ch->server_rkey()});
    const size_t victim =
        ch->response_offset() + ch->response_block_bytes() + rfp::kHeaderBytes;
    mr->bytes()[victim] = std::byte{0xEE};
    fab.checker()->OnCpuStore(ch->server_rkey(), victim, 1);
  }(engine_, fabric, &channel));

  engine_.Spawn([](sim::Engine& eng, rfp::Channel* ch) -> sim::Task<void> {
    const rfp::Channel::CallHandle a = co_await ch->SubmitCall(AsBytes("slot-zero"));
    const rfp::Channel::CallHandle b = co_await ch->SubmitCall(AsBytes("slot-one"));
    co_await ch->FlushCalls();  // post both requests without fetching yet
    // Let the server publish AND scribble before the first fetch, so the
    // sweep deterministically snapshots slot 1's dirty byte.
    co_await eng.Sleep(sim::Micros(20));
    std::vector<std::byte> out(16384);
    (void)co_await ch->AwaitCall(a, out);
    (void)co_await ch->AwaitCall(b, out);
  }(engine_, &channel));

  engine_.Run();
  ExpectViolations(fabric, ViolationKind::kRaceFetchStore, 1, before);
}

TEST_F(CheckerCorpusTest, SameInstantSlotScribblesFlaggedUnderShuffledPolicy) {
  // Two CPU stores clobber both pipelined response slots at the identical
  // virtual instant, with a shuffled tie-break policy permuting their order.
  // Whatever order the policy picks, both slots are dirty when the client's
  // sweep snapshots them: the verdict must be order-independent, and every
  // violation must carry the decision trace that produced its interleaving.
  for (uint64_t seed : {11u, 12u, 13u}) {
    sim::Engine engine;
    sim::RandomShufflePolicy policy(seed);
    engine.set_schedule_policy(&policy);
    Fabric fabric(engine);
    Node& client = fabric.AddNode("client");
    Node& server = fabric.AddNode("server");
    rfp::RfpOptions options;
    options.window = 2;
    rfp::Channel channel(fabric, client, server, options);
    const uint64_t before = MetricValue(ViolationKind::kRaceFetchStore);

    engine.Spawn([](sim::Engine& eng, Fabric& fab, rfp::Channel* ch) -> sim::Task<void> {
      std::vector<std::byte> buf(16384);
      int served = 0;
      while (served < 2) {
        size_t n = 0;
        if (ch->TryServerRecv(buf, &n)) {
          co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
          ++served;
        } else {
          co_await eng.Sleep(sim::Nanos(200));
        }
      }
      // Both scribbles land at the same instant; the shuffle decides which
      // store the checker's logical clock orders first.
      for (int slot = 0; slot < 2; ++slot) {
        eng.ScheduleAt(eng.now() + sim::Micros(1), [&fab, ch, slot] {
          MemoryRegion* mr = fab.FindRemote(RemoteKey{ch->server_rkey()});
          const size_t victim = ch->response_offset() +
                                static_cast<size_t>(slot) * ch->response_block_bytes() +
                                rfp::kHeaderBytes;
          mr->bytes()[victim] = std::byte{0xEE};
          fab.checker()->OnCpuStore(ch->server_rkey(), victim, 1);
        });
      }
    }(engine, fabric, &channel));

    engine.Spawn([](sim::Engine& eng, rfp::Channel* ch) -> sim::Task<void> {
      const rfp::Channel::CallHandle a = co_await ch->SubmitCall(AsBytes("slot-zero"));
      const rfp::Channel::CallHandle b = co_await ch->SubmitCall(AsBytes("slot-one"));
      co_await ch->FlushCalls();
      co_await eng.Sleep(sim::Micros(20));
      std::vector<std::byte> out(16384);
      (void)co_await ch->AwaitCall(a, out);
      (void)co_await ch->AwaitCall(b, out);
    }(engine, &channel));

    engine.Run();
    ASSERT_NE(fabric.checker(), nullptr);
    EXPECT_EQ(fabric.checker()->violations(ViolationKind::kRaceFetchStore), 2u)
        << "seed " << seed;
    EXPECT_EQ(MetricValue(ViolationKind::kRaceFetchStore) - before, 2u);
    // With a policy installed, each recorded violation is replayable.
    for (const Violation& v : fabric.checker()->recent()) {
      EXPECT_FALSE(v.schedule_trace.empty()) << v.detail;
      EXPECT_NE(v.detail.find("[schedule="), std::string::npos) << v.detail;
    }
  }
}

// ---- Modes --------------------------------------------------------------------

TEST_F(CheckerCorpusTest, StrictModeThrowsOutOfTheActor) {
  ScopedMode strict(Mode::kStrict);
  Fabric fabric(engine_);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [cqp, sqp] = fabric.ConnectRc(a, b);
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(64, rdma::kAccessLocal);

  EXPECT_THROW(rfptest::RunSync(engine_, cqp->Read(*local, 0, RemoteKey{4242}, 0, 8)),
               ViolationError);
  EXPECT_EQ(fabric.checker()->violations(ViolationKind::kMrBadRkey), 1u);
}

TEST_F(CheckerCorpusTest, ScopedReportOnlyDowngradesStrict) {
  ScopedMode strict(Mode::kStrict);
  Fabric fabric(engine_);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [cqp, sqp] = fabric.ConnectRc(a, b);
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(64, rdma::kAccessLocal);

  ScopedReportOnly tolerate;
  WorkCompletion wc = rfptest::RunSync(engine_, cqp->Read(*local, 0, RemoteKey{4242}, 0, 8));
  EXPECT_EQ(wc.status, rdma::WcStatus::kRemoteAccessError);
  EXPECT_EQ(fabric.checker()->violations(ViolationKind::kMrBadRkey), 1u);
  EXPECT_EQ(fabric.checker()->recent().back().kind, ViolationKind::kMrBadRkey);
}

TEST_F(CheckerCorpusTest, OffModeAttachesNoChecker) {
  ScopedMode off(Mode::kOff);
  Fabric fabric(engine_);
  EXPECT_EQ(fabric.checker(), nullptr);
}

// ---- Pinning tests for the latent bugs the checkers uncovered -----------------

// ServerSend must store payload and checksum BEFORE the header that doubles
// as the publication flag; header-first ordering is exactly the race the
// detector exists to catch. A clean strict echo run pins the fixed order.
TEST_F(CheckerCorpusTest, ServerSendPublicationOrderIsRaceFree) {
  ScopedMode strict(Mode::kStrict);
  Fabric fabric(engine_);
  Node& client = fabric.AddNode("client");
  Node& server = fabric.AddNode("server");
  rfp::RfpOptions options;
  options.checksum_responses = true;  // widest store window: payload + trailer
  rfp::Channel channel(fabric, client, server, options);

  engine_.Spawn([](sim::Engine& eng, rfp::Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> buf(16384);
    int served = 0;
    while (served < 4) {
      size_t n = 0;
      if (ch->TryServerRecv(buf, &n)) {
        co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
        ++served;
      } else {
        co_await eng.Sleep(sim::Nanos(200));
      }
    }
  }(engine_, &channel));
  engine_.Spawn([](rfp::Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    for (int i = 0; i < 4; ++i) {
      co_await ch->ClientSend(AsBytes("ordered"));
      size_t got = co_await ch->ClientRecv(out);
      EXPECT_EQ(got, 7u);
    }
  }(&channel));
  engine_.Run();  // strict: any fetch/store race would throw here
  EXPECT_EQ(fabric.checker()->violations(ViolationKind::kRaceFetchStore), 0u);
  EXPECT_EQ(channel.stats().calls, 4u);
}

// A reconnect must retire the replaced QP pair: the NIC's active-QP census
// stays level (new pair replaces old pair) instead of growing by two per
// reconnect, and the stale endpoints reject posts.
TEST_F(CheckerCorpusTest, ReconnectRetiresReplacedQps) {
  Fabric fabric(engine_);
  Node& client = fabric.AddNode("client");
  Node& server = fabric.AddNode("server");
  rfp::RfpOptions options;
  options.max_reconnect_attempts = 4;
  rfp::Channel channel(fabric, client, server, options);
  const int census_before = client.nic().active_qps();

  engine_.Spawn([](sim::Engine& eng, rfp::Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> buf(16384);
    int served = 0;
    while (served < 2) {
      size_t n = 0;
      if (ch->TryServerRecv(buf, &n)) {
        co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
        ++served;
      } else {
        co_await eng.Sleep(sim::Nanos(200));
      }
    }
  }(engine_, &channel));
  engine_.Spawn([](sim::Engine& eng, Fabric& fab, rfp::Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    co_await ch->ClientSend(AsBytes("one"));
    (void)co_await ch->ClientRecv(out);
    // Fail every RC QP between the two nodes; the channel reconnects on the
    // next call and must retire the dead pair.
    fab.FailRcQps(0, 1);
    co_await eng.Sleep(sim::Nanos(100));
    co_await ch->ClientSend(AsBytes("two"));
    (void)co_await ch->ClientRecv(out);
  }(engine_, fabric, &channel));
  engine_.Run();

  EXPECT_GE(channel.stats().reconnects, 1u);
  EXPECT_EQ(client.nic().active_qps(), census_before);
  EXPECT_EQ(fabric.checker()->violations(ViolationKind::kQpPostOnRetired), 0u);
}

// RC completions must be delivered in post order even when a faulted link's
// retransmissions reorder packet arrivals (the AwaitTicket sequencer). Pins
// both the ordering and the checker staying quiet about it.
TEST_F(CheckerCorpusTest, RcCompletionsStayInPostOrderUnderLinkFaults) {
  Fabric fabric(engine_);
  Node& a = fabric.AddNode("a");
  Node& b = fabric.AddNode("b");
  auto [cqp, sqp] = fabric.ConnectRc(a, b);
  (void)sqp;
  MemoryRegion* local = a.RegisterMemory(1024, rdma::kAccessLocal);
  MemoryRegion* remote = b.RegisterMemory(1024, rdma::kAccessRemoteRead | rdma::kAccessRemoteWrite);

  // Heavy loss: per-op retransmit counts differ wildly, so without the
  // sequencer later posts would overtake earlier ones.
  rdma::LinkFault fault;
  fault.loss_prob = 0.5;
  fault.rc_retransmit_ns = 4000;
  fabric.SetLinkFault(a.id(), b.id(), fault);

  constexpr int kOps = 16;
  for (uint64_t wr = 1; wr <= kOps; ++wr) {
    cqp->PostWrite(wr, *local, 0, remote->remote_key(), 0, 64);
  }
  std::vector<uint64_t> completion_order;
  engine_.Spawn([](QueuePair* qp, std::vector<uint64_t>* order) -> sim::Task<void> {
    for (int i = 0; i < kOps; ++i) {
      WorkCompletion wc = co_await qp->send_cq()->Wait();
      EXPECT_TRUE(wc.ok());
      order->push_back(wc.wr_id);
    }
  }(cqp, &completion_order));
  engine_.Run();

  ASSERT_EQ(completion_order.size(), static_cast<size_t>(kOps));
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(completion_order[static_cast<size_t>(i)], static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(fabric.checker()->violations(ViolationKind::kCqCompletionOrder), 0u);
}

// Clean traffic stays clean: a strict-mode echo workload with faults off
// produces zero violations of any kind.
TEST_F(CheckerCorpusTest, NormalTrafficCleanUnderStrict) {
  ScopedMode strict(Mode::kStrict);
  Fabric fabric(engine_);
  Node& client = fabric.AddNode("client");
  Node& server = fabric.AddNode("server");
  rfp::Channel channel(fabric, client, server, rfp::RfpOptions{});

  engine_.Spawn([](sim::Engine& eng, rfp::Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> buf(16384);
    int served = 0;
    while (served < 8) {
      size_t n = 0;
      if (ch->TryServerRecv(buf, &n)) {
        co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
        ++served;
      } else {
        co_await eng.Sleep(sim::Nanos(200));
      }
    }
  }(engine_, &channel));
  engine_.Spawn([](rfp::Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> out(16384);
    for (int i = 0; i < 8; ++i) {
      co_await ch->ClientSend(AsBytes("clean"));
      (void)co_await ch->ClientRecv(out);
    }
  }(&channel));
  engine_.Run();
  EXPECT_EQ(fabric.checker()->total_violations(), 0u);
}

// ---- RaceTracker unit tests ---------------------------------------------------

TEST(RaceTrackerTest, StoreThenPublishIsClean) {
  RaceTracker tracker(64);
  tracker.Store(0, 16, 1);
  tracker.Publish(0, 16, 2);
  EXPECT_FALSE(tracker.FirstDirty(0, 16, 3).has_value());
}

TEST(RaceTrackerTest, StoreAfterPublishIsDirty) {
  RaceTracker tracker(64);
  tracker.Publish(0, 16, 1);
  tracker.Store(4, 4, 2);
  auto dirty = tracker.FirstDirty(0, 16, 3);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(dirty->off, 4u);
  EXPECT_EQ(dirty->len, 4u);
  EXPECT_EQ(dirty->store_tick, 2u);
}

TEST(RaceTrackerTest, StoreAfterSnapshotIsInvisible) {
  RaceTracker tracker(64);
  tracker.Publish(0, 16, 1);
  tracker.Store(0, 16, 5);
  // The reader snapshotted at tick 3; the later store cannot have torn it.
  EXPECT_FALSE(tracker.FirstDirty(0, 16, 3).has_value());
  EXPECT_TRUE(tracker.FirstDirty(0, 16, 5).has_value());
}

TEST(RaceTrackerTest, RemoteWriteCleansBytes) {
  RaceTracker tracker(64);
  tracker.Store(0, 16, 1);
  tracker.RemoteWrite(0, 16, 2);
  EXPECT_FALSE(tracker.FirstDirty(0, 16, 3).has_value());
}

TEST(RaceTrackerTest, PartialPublishLeavesRestDirty) {
  RaceTracker tracker(64);
  tracker.Store(0, 16, 1);
  tracker.Publish(0, 8, 2);  // only the first half is published
  auto dirty = tracker.FirstDirty(0, 16, 3);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(dirty->off, 8u);
}

TEST(RaceTrackerTest, RemoteWriteRacingPublicationCleansOnlyItsBytes) {
  // A NIC WRITE lands mid-range while the surrounding bytes sit dirty from a
  // CPU store after the last publication point: the atomic store+publish of
  // the WRITE must not launder its neighbors.
  RaceTracker tracker(64);
  tracker.Publish(0, 16, 1);
  tracker.Store(0, 16, 2);     // whole range dirty again
  tracker.RemoteWrite(4, 4, 3);  // lands atomically inside it
  auto dirty = tracker.FirstDirty(0, 16, 4);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(dirty->off, 0u);  // bytes before the WRITE are still dirty
  EXPECT_EQ(dirty->len, 4u);
  // The WRITE's own bytes are clean; the tail beyond it is not.
  EXPECT_FALSE(tracker.FirstDirty(4, 4, 4).has_value());
  ASSERT_TRUE(tracker.FirstDirty(8, 8, 4).has_value());
}

TEST(RaceTrackerTest, RemoteWriteAfterSnapshotCannotRetroactivelyClean) {
  // The reader snapshotted at tick 3; a WRITE landing at tick 5 is no
  // publication for that earlier read — the dirty store must still surface.
  RaceTracker tracker(64);
  tracker.Publish(0, 8, 1);
  tracker.Store(0, 8, 2);
  tracker.RemoteWrite(0, 8, 5);
  ASSERT_TRUE(tracker.FirstDirty(0, 8, 3).has_value());
  EXPECT_EQ(tracker.FirstDirty(0, 8, 3)->store_tick, 2u);
  EXPECT_FALSE(tracker.FirstDirty(0, 8, 5).has_value());
}

TEST(RaceTrackerTest, StoreAfterRemoteWriteRedirties) {
  RaceTracker tracker(64);
  tracker.RemoteWrite(0, 8, 1);
  tracker.Store(2, 2, 2);
  auto dirty = tracker.FirstDirty(0, 8, 3);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(dirty->off, 2u);
  EXPECT_EQ(dirty->len, 2u);
  EXPECT_EQ(dirty->store_tick, 2u);
}

TEST(RaceTrackerTest, IdenticalTickTiesAreDecidedByLogOrder) {
  // Two events on the same bytes at the same tick: the checker's logical
  // clock normally forbids this, but the tracker's contract is defined —
  // the later-appended event decides (newest-to-oldest log scan). Pinned
  // so a future refactor cannot silently flip the tie to "dirty wins".
  RaceTracker store_then_write(64);
  store_then_write.Store(0, 4, 7);
  store_then_write.RemoteWrite(0, 4, 7);
  EXPECT_FALSE(store_then_write.FirstDirty(0, 4, 7).has_value());

  RaceTracker write_then_store(64);
  write_then_store.RemoteWrite(0, 4, 7);
  write_then_store.Store(0, 4, 7);
  ASSERT_TRUE(write_then_store.FirstDirty(0, 4, 7).has_value());
}

TEST(RaceTrackerTest, CompactionPreservesDirtyState) {
  RaceTracker tracker(8);  // tiny cap: force folds
  uint64_t tick = 0;
  tracker.Store(0, 4, ++tick);  // never published: stays dirty through folds
  for (int i = 0; i < 64; ++i) {
    tracker.Store(100, 4, ++tick);
    tracker.Publish(100, 4, ++tick);
  }
  auto dirty = tracker.FirstDirty(0, 4, tick + 1);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(dirty->off, 0u);
  EXPECT_FALSE(tracker.FirstDirty(100, 4, tick + 1).has_value());
}

}  // namespace
}  // namespace check
