// Eviction-under-load composition suite (docs/connections.md): cache
// eviction deliberately fired while other machinery is mid-flight, under the
// 12-schedule explorer budget with the strict checker attached. Detaching a
// pinned victim must look exactly like a fault-injected connection loss —
// every composed protocol (pipelined windows, the circuit breaker's
// half-open probe, failover redirect retries) already survives those, so it
// must survive eviction too:
//
//   * pipelined — a window of in-flight calls crosses a detach; every call
//     completes via reconnect + idempotent re-issue;
//   * breaker — the victim is evicted while the breaker is OPEN; the
//     half-open probe crosses the re-established channel and closes it;
//   * failover — evictions racing the PR-9 primary kill; the linearizability
//     oracle still proves zero lost acked PUTs.

#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/checker.h"
#include "src/conn/connector.h"
#include "src/explore/explorer.h"
#include "src/explore/history.h"
#include "src/fault/injector.h"
#include "src/kv/jakiro.h"
#include "src/rdma/fabric.h"
#include "src/repl/cluster.h"
#include "src/rfp/channel.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/schedule.h"
#include "src/sim/time.h"

namespace conn {
namespace {

using explore::Outcome;
using explore::ScenarioRun;

constexpr uint16_t kEcho = 1;

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

std::string ToString(std::span<const std::byte> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

std::string TraceOf(sim::Engine& engine) {
  return engine.schedule_policy() != nullptr
             ? sim::FormatDecisionTrace(engine.schedule_policy()->choices())
             : std::string();
}

explore::Options Budget(const std::string& label) {
  explore::Options options;
  options.max_schedules = 12;  // the CI budget, same as the corpus
  options.exhaustive_share_pct = 50;
  options.seed = 1;
  options.label = label;
  return options;
}

void ExpectCleanUnderBudget(const explore::Scenario& scenario, const std::string& label) {
  explore::Report report = explore::Explorer(Budget(label)).Run(scenario);
  EXPECT_FALSE(report.failed) << report.failure_message;
  EXPECT_EQ(report.violations, 0u);
}

void RegisterEcho(rfp::RpcServer& server) {
  server.RegisterHandler(kEcho, [](const rfp::HandlerContext&,
                                   std::span<const std::byte> req,
                                   std::span<std::byte> resp) {
    std::memcpy(resp.data(), req.data(), req.size());
    return rfp::HandlerResult{req.size(), sim::Nanos(300)};
  });
}

// ---- 1. Eviction with a window of in-flight pipelined calls -----------------

// Eight calls are submitted into a window-8 channel; with four still
// outstanding the cache detaches the (pinned) victim. The remaining awaits
// must complete through reconnect + re-issue, and a follow-up call over the
// doomed-but-leased channel must transparently re-establish.
Outcome PipelinedEvictionScenario(ScenarioRun& run) {
  check::ScopedMode strict(check::Mode::kStrict);
  sim::Engine& eng = run.engine;
  rdma::Fabric fabric(eng);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");
  rfp::RpcServer server(fabric, server_node, 1);
  RegisterEcho(server);
  server.Start();

  ConnectorOptions copts;
  copts.mode = ConnectorOptions::Mode::kCached;
  Connector connector(copts);

  rfp::RfpOptions options;
  options.window = 8;
  options.fetch_timeout_ns = sim::Micros(50);
  options.fetch_backoff_initial_ns = sim::Micros(2);

  std::string failure;
  bool done = false;
  eng.Spawn([](Connector* conn, rfp::RpcServer* srv, rdma::Node* node,
               rfp::RfpOptions opts, std::string* error, bool* finished) -> sim::Task<void> {
    try {
      ChannelLease lease = conn->Lease(*srv, *node, opts, 0);
      std::vector<rfp::Channel::CallHandle> handles;
      std::vector<std::string> payloads;
      for (int i = 0; i < 8; ++i) {
        payloads.push_back("call-" + std::to_string(i));
        handles.push_back(co_await lease.stub()->SubmitCall(
            kEcho, std::as_bytes(std::span(payloads[static_cast<size_t>(i)].data(),
                                           payloads[static_cast<size_t>(i)].size()))));
      }
      std::vector<std::byte> resp(64);
      for (int i = 0; i < 4; ++i) {
        const size_t n = co_await lease.stub()->AwaitCall(handles[static_cast<size_t>(i)], resp);
        if (ToString({resp.data(), n}) != payloads[static_cast<size_t>(i)]) {
          *error = "early await " + std::to_string(i) + " returned wrong payload";
        }
      }
      // Four calls still outstanding: detach the pinned victim under them.
      conn->cache()->Evict(*srv, *node, 0);
      for (int i = 4; i < 8; ++i) {
        const size_t n = co_await lease.stub()->AwaitCall(handles[static_cast<size_t>(i)], resp);
        if (ToString({resp.data(), n}) != payloads[static_cast<size_t>(i)]) {
          *error = "post-evict await " + std::to_string(i) + " returned wrong payload";
        }
      }
      // A fresh call over the doomed-but-leased channel must reconnect.
      const std::string probe = "after-evict";
      const size_t n = co_await lease.stub()->Call(
          kEcho, std::as_bytes(std::span(probe.data(), probe.size())), resp);
      if (ToString({resp.data(), n}) != probe) {
        *error = "post-evict call returned wrong payload";
      }
      if (lease.channel()->stats().reconnects < 1) {
        *error = "detached channel never reconnected";
      }
    } catch (const std::exception& e) {
      *error = e.what();
    }
    *finished = true;
  }(&connector, &server, &client_node, options, &failure, &done));

  eng.RunUntil(sim::Millis(20));
  server.Stop();
  if (!done) {
    return Outcome::Fail("pipelined client wedged across the eviction");
  }
  if (!failure.empty()) {
    return Outcome::Fail(failure);
  }
  if (connector.cache()->stats().detach_evictions != 1) {
    return Outcome::Fail("expected exactly one detach eviction");
  }
  return Outcome::Pass(9);
}

TEST(EvictionCompositionTest, PipelinedWindowSurvivesEviction) {
  ExpectCleanUnderBudget(&PipelinedEvictionScenario, "conn_evict_pipelined");
}

// ---- 2. Eviction with the circuit breaker open / half-open ------------------

// The shedding-server recipe from tests/rfp/overload_test.cc trips the
// breaker; while the caller is sleeping out the open interval the cache
// detaches the channel. Every half-open probe therefore crosses the
// detached-then-re-established channel — success must still close the
// breaker.
Outcome BreakerEvictionScenario(ScenarioRun& run) {
  check::ScopedMode strict(check::Mode::kStrict);
  sim::Engine& eng = run.engine;
  rdma::Fabric fabric(eng);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");
  // The server is never Start()ed: a manual shedding actor owns the channel
  // (the overload_test recipe), while AcceptChannel still registers it so
  // the cache can lease and close it.
  rfp::RpcServer server(fabric, server_node, 1);

  ConnectorOptions copts;
  copts.mode = ConnectorOptions::Mode::kCached;
  Connector connector(copts);

  rfp::RfpOptions options;
  options.breaker_enabled = true;
  options.breaker_window = 4;
  options.breaker_failure_rate = 0.5;
  options.breaker_open_ns = sim::Micros(300);
  options.fetch_timeout_ns = sim::Micros(50);
  options.fetch_backoff_initial_ns = sim::Micros(2);

  ChannelLease lease = connector.Lease(server, client_node, options, 0);
  rfp::Channel* channel = lease.channel();

  // 6 sheds then 3 serves: four BUSY outcomes open the breaker during the
  // first call; the serves close it again.
  eng.Spawn([](sim::Engine& engine, rfp::Channel* ch) -> sim::Task<void> {
    std::vector<std::byte> buf(1024);
    int shed = 0;
    int served = 0;
    while (served < 3) {
      size_t n = 0;
      if (ch->TryServerRecv(buf, &n)) {
        if (shed < 6) {
          ++shed;
          co_await ch->ServerSendBusy(rfp::BusyReason::kAdmission, /*retry_after_us=*/2);
        } else {
          co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
          ++served;
        }
      } else {
        co_await engine.Sleep(sim::Nanos(200));
      }
    }
  }(eng, channel));

  // Detach the victim at 100us — after the breaker has opened (within a few
  // microseconds of the BUSY burst), before the ~300us half-open probe.
  eng.Spawn([](sim::Engine& engine, Connector* conn, rfp::RpcServer* srv,
               rdma::Node* node) -> sim::Task<void> {
    co_await engine.Sleep(sim::Micros(100));
    conn->cache()->Evict(*srv, *node, 0);
  }(eng, &connector, &server, &client_node));

  // Raw channel calls (the shedding actor echoes unframed payloads): each
  // ClientRecv absorbs BUSY retries, breaker sleeps, and — after the evictor
  // fires — the reconnect of the detached channel.
  int completed = 0;
  std::string failure;
  eng.Spawn([](rfp::Channel* ch, int* done, std::string* error) -> sim::Task<void> {
    std::vector<std::byte> out(256);
    try {
      for (int i = 0; i < 3; ++i) {
        const std::string msg = "payload";
        co_await ch->ClientSend(std::as_bytes(std::span(msg.data(), msg.size())));
        const size_t n = co_await ch->ClientRecv(out);
        if (n != msg.size()) {
          *error = "echo size mismatch";
        }
        ++*done;
      }
    } catch (const std::exception& e) {
      *error = e.what();
    }
  }(channel, &completed, &failure));

  eng.RunUntil(sim::Millis(20));
  if (!failure.empty()) {
    return Outcome::Fail(failure);
  }
  if (completed != 3) {
    return Outcome::Fail("completed " + std::to_string(completed) + "/3 calls");
  }
  if (channel->stats().breaker_opens < 1) {
    return Outcome::Fail("breaker never opened under the BUSY burst");
  }
  if (channel->breaker_state() != rfp::Channel::BreakerState::kClosed) {
    return Outcome::Fail("breaker did not re-close after the half-open probe");
  }
  if (channel->stats().reconnects < 1) {
    return Outcome::Fail("eviction never detached the channel mid-episode");
  }
  if (connector.cache()->stats().detach_evictions != 1) {
    return Outcome::Fail("expected exactly one detach eviction");
  }
  return Outcome::Pass(static_cast<uint64_t>(completed));
}

TEST(EvictionCompositionTest, BreakerHalfOpenProbeCrossesEviction) {
  ExpectCleanUnderBudget(&BreakerEvictionScenario, "conn_evict_breaker");
}

// ---- 3. Eviction racing the PR-9 failover redirect --------------------------

repl::ClusterConfig FastConfig() {
  repl::ClusterConfig config = repl::DefaultClusterConfig();
  config.kv.server_threads = 2;
  config.kv.buckets_per_partition = 256;
  config.repl.lease_interval_ns = sim::Micros(150);
  config.repl.probe_interval_ns = sim::Micros(20);
  config.repl.channel.fetch_timeout_ns = sim::Micros(50);
  return config;
}

// KillPrimaryScenario from tests/repl/failover_test.cc, with the client's
// endpoints resolved through a cached connector and an evictor sweeping all
// four cache keys while the kill, the promotion, and the redirect retries
// are in flight. Acked-PUT durability must be unaffected.
Outcome FailoverEvictionScenario(ScenarioRun& run) {
  check::ScopedMode strict(check::Mode::kStrict);
  sim::Engine& eng = run.engine;
  rdma::Fabric fabric(eng);
  repl::Cluster cluster(fabric, FastConfig());
  rdma::Node& client_node = fabric.AddNode("client");

  ConnectorOptions copts;
  copts.mode = ConnectorOptions::Mode::kCached;
  Connector connector(copts);
  repl::Client client(cluster, client_node, connector);
  explore::HistoryRecorder rec;
  client.set_history_recorder(&rec);
  cluster.Start();

  fault::FaultInjector injector(fabric);
  injector.BindServer(cluster.primary().node().id(), &cluster.primary().rpc());
  fault::FaultPlan plan;
  plan.ServerCrashAll(sim::Micros(350), cluster.primary().node().id(), sim::Millis(20));
  injector.Arm(plan);

  // Sweep evictions across both servers' keys at 300/450/600us — before the
  // kill, during the failover window, and after the promotion.
  eng.Spawn([](sim::Engine& engine, Connector* conn, repl::Cluster* cl,
               rdma::Node* node) -> sim::Task<void> {
    for (const sim::Time at : {sim::Micros(300), sim::Micros(450), sim::Micros(600)}) {
      while (engine.now() < at) {
        co_await engine.Sleep(at - engine.now());
      }
      for (int thread = 0; thread < 2; ++thread) {
        conn->cache()->Evict(cl->primary().rpc(), *node, thread);
        conn->cache()->Evict(cl->backup().rpc(), *node, thread);
      }
    }
  }(eng, &connector, &cluster, &client_node));

  std::string failure;
  bool done = false;
  eng.Spawn([](sim::Engine& engine, repl::Client* c, std::string* error,
               bool* finished) -> sim::Task<void> {
    const std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};
    std::map<std::string, std::string> acked;
    try {
      for (int round = 0; round < 6; ++round) {
        for (const std::string& key : keys) {
          const std::string value = "r" + std::to_string(round);
          if (co_await c->Put(Bytes(key), Bytes(value))) {
            acked[key] = value;
          }
        }
        co_await engine.Sleep(sim::Micros(100));
      }
      std::vector<std::byte> buf(256);
      for (const std::string& key : keys) {
        auto got = co_await c->Get(Bytes(key), buf);
        if (!got.has_value()) {
          *error = "acked key '" + key + "' lost across failover + eviction";
          break;
        }
        const std::string value = ToString({buf.data(), *got});
        if (value != acked[key]) {
          *error = "key '" + key + "': acked '" + acked[key] + "' but read '" + value + "'";
          break;
        }
      }
    } catch (const std::exception& e) {
      *error = e.what();
    }
    *finished = true;
  }(eng, &client, &failure, &done));

  eng.RunUntil(sim::Millis(8));
  cluster.Stop();
  if (!done) {
    return Outcome::Fail("client actor wedged");
  }
  if (!failure.empty()) {
    return Outcome::Fail(failure);
  }
  if (cluster.coordinator().promotions() != 1) {
    return Outcome::Fail("expected exactly one promotion, saw " +
                         std::to_string(cluster.coordinator().promotions()));
  }
  if (connector.cache()->stats().detach_evictions < 1) {
    return Outcome::Fail("no eviction ever landed on a pinned endpoint");
  }
  rec.CheckStrict(TraceOf(eng));  // zero lost acked PUTs, oracle-verified
  return Outcome::Pass(rec.completed_ops());
}

TEST(EvictionCompositionTest, FailoverRedirectSurvivesEvictionSweeps) {
  ExpectCleanUnderBudget(&FailoverEvictionScenario, "conn_evict_failover");
}

}  // namespace
}  // namespace conn
