// conn::Connector — the one client-bringup API (docs/connections.md) — and
// the kv::ConfigBuilder preset surface that rode along in the same redesign.
//
//   * direct mode keeps the legacy lifetime: the channel is server-owned and
//     survives the lease, exactly like the old hand-rolled AcceptChannel
//     blocks it replaced;
//   * cached mode shares channels across leases and works end-to-end under
//     JakiroClient (same answers as a direct-mode client);
//   * ConfigBuilder presets compose, conflicting paradigms are rejected at
//     build time, and the deprecated free-function wrappers still produce
//     identical configs.

#include "src/conn/connector.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/kv/jakiro.h"
#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"
#include "src/workload/ycsb.h"

namespace conn {
namespace {

constexpr uint16_t kEcho = 1;

class ConnectorTest : public ::testing::Test {
 protected:
  ConnectorTest() {
    server_ = std::make_unique<rfp::RpcServer>(fabric_, server_node_, 2);
    server_->RegisterHandler(kEcho, [](const rfp::HandlerContext&,
                                       std::span<const std::byte> req,
                                       std::span<std::byte> resp) {
      std::memcpy(resp.data(), req.data(), req.size());
      return rfp::HandlerResult{req.size(), sim::Nanos(300)};
    });
    server_->Start();
  }

  ~ConnectorTest() override { server_->Stop(); }

  void Echo(rfp::RpcClient* stub) {
    bool done = false;
    engine_.Spawn([](rfp::RpcClient* s, bool* out) -> sim::Task<void> {
      const std::string msg = "ping";
      std::vector<std::byte> resp(64);
      const size_t n = co_await s->Call(
          kEcho, std::as_bytes(std::span(msg.data(), msg.size())), resp);
      EXPECT_EQ(n, 4u);
      *out = true;
    }(stub, &done));
    engine_.RunUntil(engine_.now() + sim::Millis(2));
    ASSERT_TRUE(done);
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node& server_node_{fabric_.AddNode("server")};
  rdma::Node& client_node_{fabric_.AddNode("client")};
  std::unique_ptr<rfp::RpcServer> server_;
  rfp::RfpOptions options_;
};

TEST_F(ConnectorTest, DirectLeaseKeepsLegacyServerOwnedLifetime) {
  Connector connector;  // default mode: kDirect
  EXPECT_EQ(connector.cache(), nullptr);
  rfp::Channel* channel = nullptr;
  {
    ChannelLease lease = connector.Lease(*server_, client_node_, options_, 0);
    ASSERT_TRUE(lease.valid());
    channel = lease.channel();
    Echo(lease.stub());
  }
  // Releasing a direct lease drops the stub but not the channel: the server
  // still owns it, as with the old AcceptChannel bringup.
  EXPECT_EQ(server_->channels_closed(), 0u);
  EXPECT_TRUE(server_->CloseChannel(channel));

  // Each direct lease is a dedicated channel even for the same key.
  ChannelLease a = connector.Lease(*server_, client_node_, options_, 0);
  ChannelLease b = connector.Lease(*server_, client_node_, options_, 0);
  EXPECT_NE(a.channel(), b.channel());
}

TEST_F(ConnectorTest, LeaseAllCoversEveryServerThread) {
  Connector connector;
  std::vector<ChannelLease> leases = connector.LeaseAll(*server_, client_node_, options_);
  ASSERT_EQ(leases.size(), 2u);
  EXPECT_NE(leases[0].channel(), leases[1].channel());
  Echo(leases[0].stub());
  Echo(leases[1].stub());
}

TEST_F(ConnectorTest, CachedModeSharesChannelsAcrossLeases) {
  ConnectorOptions copts;
  copts.mode = ConnectorOptions::Mode::kCached;
  Connector connector(copts);
  ASSERT_NE(connector.cache(), nullptr);

  rfp::Channel* first = nullptr;
  {
    ChannelLease lease = connector.Lease(*server_, client_node_, options_, 0);
    first = lease.channel();
    Echo(lease.stub());
  }
  ChannelLease again = connector.Lease(*server_, client_node_, options_, 0);
  EXPECT_EQ(again.channel(), first);
  EXPECT_EQ(connector.cache()->stats().hits, 1u);
  EXPECT_EQ(connector.cache()->stats().misses, 1u);
  Echo(again.stub());
}

TEST_F(ConnectorTest, JakiroOverCachedConnectorMatchesDirect) {
  kv::JakiroConfig config;
  config.server_threads = 2;
  config.buckets_per_partition = 1 << 8;
  kv::JakiroServer kv_server(fabric_, fabric_.AddNode("kv"), config);
  kv_server.Start();

  ConnectorOptions copts;
  copts.mode = ConnectorOptions::Mode::kCached;
  Connector cached(copts);
  Connector direct;
  kv::JakiroClient cached_client(kv_server, client_node_, cached);
  kv::JakiroClient direct_client(kv_server, fabric_.AddNode("client2"), direct);

  bool done = false;
  engine_.Spawn([](kv::JakiroClient* writer, kv::JakiroClient* reader,
                   bool* out) -> sim::Task<void> {
    std::vector<std::byte> key(16);
    std::vector<std::byte> value(64);
    std::vector<std::byte> got(256);
    for (uint64_t id = 0; id < 32; ++id) {
      workload::MakeKey(id, key);
      workload::FillValue(id, std::span<std::byte>(value.data(), 48));
      co_await writer->Put(key, std::span<const std::byte>(value.data(), 48));
    }
    for (uint64_t id = 0; id < 32; ++id) {
      workload::MakeKey(id, key);
      const auto size = co_await reader->Get(key, got);
      EXPECT_TRUE(size.has_value() && *size == 48u);
      if (!size.has_value() || *size != 48u) {
        co_return;
      }
      workload::FillValue(id, std::span<std::byte>(value.data(), 48));
      EXPECT_EQ(std::memcmp(got.data(), value.data(), 48), 0);
    }
    *out = true;
  }(&cached_client, &direct_client, &done));
  engine_.RunUntil(sim::Millis(20));
  EXPECT_TRUE(done);
  // The cached client's endpoints resolved through the connector's cache.
  EXPECT_EQ(cached.cache()->stats().misses, 2u);  // one per server thread
  kv_server.Stop();
}

// ---- ConfigBuilder ----------------------------------------------------------

TEST(ConfigBuilderTest, PresetsComposeIntoOneConfig) {
  const kv::JakiroConfig config =
      kv::JakiroConfig::Build().FaultTolerant().Pipelined(8).ZeroCopy();
  EXPECT_GT(config.channel_options.fetch_timeout_ns, 0);
  EXPECT_TRUE(config.channel_options.checksum_responses);
  EXPECT_EQ(config.channel_options.window, 8);
  EXPECT_TRUE(config.zero_copy_get);
  // No preset touched the paradigm: the hybrid switch stays adaptive.
  EXPECT_EQ(config.channel_options.force_mode, rfp::RfpOptions::ForceMode::kAdaptive);

  const kv::JakiroConfig guarded = kv::JakiroConfig::Build().OverloadProtected();
  EXPECT_TRUE(guarded.channel_options.breaker_enabled);
  EXPECT_TRUE(guarded.server_options.admission_control);
  EXPECT_GT(guarded.channel_options.call_deadline_ns, 0);
}

TEST(ConfigBuilderTest, BuildFromBasePreservesCallerFields) {
  kv::JakiroConfig base;
  base.server_threads = 3;
  base.get_process_ns = sim::Nanos(999);
  const kv::JakiroConfig config = kv::JakiroConfig::Build(base).ServerReply();
  EXPECT_EQ(config.server_threads, 3);
  EXPECT_EQ(config.get_process_ns, sim::Nanos(999));
  EXPECT_EQ(config.channel_options.force_mode, rfp::RfpOptions::ForceMode::kForceReply);
}

TEST(ConfigBuilderTest, ConflictingParadigmsAreRejectedAtBuildTime) {
  EXPECT_THROW(kv::JakiroConfig::Build().ServerReply().NoSwitch(), std::invalid_argument);
  EXPECT_THROW(kv::JakiroConfig::Build().NoSwitch().ServerReply(), std::invalid_argument);
  // Re-forcing the same paradigm is idempotent, not a conflict.
  EXPECT_NO_THROW(kv::JakiroConfig::Build().ServerReply().ServerReply());
  EXPECT_NO_THROW(kv::JakiroConfig::Build().NoSwitch().Pipelined(4).NoSwitch());
}

TEST(ConfigBuilderTest, DeprecatedWrappersMatchTheBuilder) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const kv::JakiroConfig wrapped = kv::FaultTolerantConfig();
  const kv::JakiroConfig piped = kv::PipelinedConfig({}, 4);
#pragma GCC diagnostic pop
  const kv::JakiroConfig built = kv::JakiroConfig::Build().FaultTolerant();
  EXPECT_EQ(wrapped.channel_options.fetch_timeout_ns,
            built.channel_options.fetch_timeout_ns);
  EXPECT_EQ(wrapped.channel_options.checksum_responses,
            built.channel_options.checksum_responses);
  EXPECT_EQ(piped.channel_options.window, 4);
}

}  // namespace
}  // namespace conn
