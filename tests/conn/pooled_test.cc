// Pooled-QP connection tier (docs/connections.md): M logical clients over N
// server UD QPs. The scaling contracts under test:
//
//   * connection ids are unique while live, and a disconnect frees the id;
//   * the server's QP census (Fabric::LiveQpCount) and registered-memory
//     census stay flat however many logical clients connect — connection
//     state must not grow with client count;
//   * requests from all logical clients dispatch through the one RpcServer
//     handler table and round-trip correctly, including under injected
//     datagram loss (retransmit + duplicate filter);
//   * the checker's cid-scoped invariant flags aliasing/double-release.

#include "src/conn/pooled.h"

#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/checker.h"
#include "src/rdma/fabric.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace conn {
namespace {

constexpr uint16_t kEcho = 1;

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

class PooledTest : public ::testing::Test {
 protected:
  PooledTest() {
    rpc_ = std::make_unique<rfp::RpcServer>(fabric_, server_node_, 2);
    rpc_->RegisterHandler(kEcho, [](const rfp::HandlerContext&, std::span<const std::byte> req,
                                    std::span<std::byte> resp) {
      std::memcpy(resp.data(), req.data(), req.size());
      return rfp::HandlerResult{req.size(), sim::Nanos(300)};
    });
  }

  PooledServer* MakeServer(PooledOptions options = {}) {
    pooled_ = std::make_unique<PooledServer>(fabric_, *rpc_, options);
    pooled_->Start();
    return pooled_.get();
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node& server_node_{fabric_.AddNode("server")};
  std::unique_ptr<rfp::RpcServer> rpc_;
  std::unique_ptr<PooledServer> pooled_;
};

TEST_F(PooledTest, RejectsInconsistentOptions) {
  for (auto mutate : {
           +[](PooledOptions& o) { o.qps = 0; },
           +[](PooledOptions& o) { o.recv_slots = o.qps - 1; },
           +[](PooledOptions& o) { o.client_recv_slots = 0; },
           +[](PooledOptions& o) { o.max_message_bytes = 0; },
           +[](PooledOptions& o) { o.max_message_bytes = 0x10000; },
           +[](PooledOptions& o) { o.retry_timeout_ns = 0; },
           +[](PooledOptions& o) { o.max_retransmits = -1; },
       }) {
    PooledOptions options;
    mutate(options);
    EXPECT_THROW(ValidateOptions(options), std::invalid_argument);
  }
}

TEST_F(PooledTest, ConnectAssignsUniqueCidsAndDisconnectFreesThem) {
  PooledServer* server = MakeServer();
  std::vector<std::unique_ptr<PooledClient>> clients;
  for (int i = 0; i < 8; ++i) {
    rdma::Node& node = fabric_.AddNode("client" + std::to_string(i));
    clients.push_back(std::make_unique<PooledClient>(fabric_, node, *server));
  }
  int done = 0;
  for (auto& client : clients) {
    engine_.Spawn([](PooledClient* c, int* out) -> sim::Task<void> {
      co_await c->Connect();
      ++*out;
    }(client.get(), &done));
  }
  engine_.RunUntil(sim::Millis(1));
  ASSERT_EQ(done, 8);

  std::set<uint32_t> cids;
  for (const auto& client : clients) {
    EXPECT_TRUE(client->connected());
    EXPECT_NE(client->cid(), 0u);
    cids.insert(client->cid());
  }
  EXPECT_EQ(cids.size(), 8u);  // no aliasing
  EXPECT_EQ(server->live_connections(), 8u);
  EXPECT_EQ(server->connects(), 8u);

  for (auto& client : clients) {
    engine_.Spawn([](PooledClient* c) -> sim::Task<void> { co_await c->Disconnect(); }(
        client.get()));
  }
  engine_.RunUntil(sim::Millis(2));
  EXPECT_EQ(server->live_connections(), 0u);
  EXPECT_EQ(server->disconnects(), 8u);
}

TEST_F(PooledTest, ManyClientsShareFewQpsWithFlatServerCensus) {
  PooledOptions options;
  options.qps = 2;
  PooledServer* server = MakeServer(options);
  // The pooled tier itself owns the only server QPs: census == N.
  EXPECT_EQ(fabric_.LiveQpCount(server_node_), 2u);
  const size_t bytes_before = fabric_.RegisteredBytes(server_node_);
  const uint64_t regs_before = fabric_.RegistrationCount(server_node_);

  constexpr int kClients = 12;
  constexpr int kCalls = 5;
  std::vector<std::unique_ptr<PooledClient>> clients;
  int done = 0;
  for (int i = 0; i < kClients; ++i) {
    rdma::Node& node = fabric_.AddNode("client" + std::to_string(i));
    clients.push_back(std::make_unique<PooledClient>(fabric_, node, *server, options));
    engine_.Spawn([](PooledClient* c, int id, int* out) -> sim::Task<void> {
      co_await c->Connect();
      std::vector<std::byte> resp(256);
      for (int k = 0; k < kCalls; ++k) {
        const std::string msg = "c" + std::to_string(id) + "-m" + std::to_string(k);
        const size_t n = co_await c->Call(
            kEcho, std::as_bytes(std::span(msg.data(), msg.size())), resp);
        EXPECT_EQ(std::string(reinterpret_cast<const char*>(resp.data()), n), msg);
      }
      co_await c->Disconnect();
      ++*out;
    }(clients.back().get(), i, &done));
  }
  engine_.RunUntil(sim::Millis(20));
  EXPECT_EQ(done, kClients);
  EXPECT_EQ(server->requests_served(), static_cast<uint64_t>(kClients * kCalls));
  // M clients came and went; the server-side footprint never moved.
  EXPECT_EQ(fabric_.LiveQpCount(server_node_), 2u);
  EXPECT_EQ(fabric_.RegisteredBytes(server_node_), bytes_before);
  EXPECT_EQ(fabric_.RegistrationCount(server_node_), regs_before);
}

TEST_F(PooledTest, OneEndpointPlaysManyLogicalConnectionsSequentially) {
  PooledServer* server = MakeServer();
  rdma::Node& node = fabric_.AddNode("client");
  PooledClient client(fabric_, node, *server);
  const size_t client_bytes = fabric_.RegisteredBytes(node);

  constexpr int kGenerations = 50;
  int done = 0;
  engine_.Spawn([](PooledClient* c, int* out) -> sim::Task<void> {
    std::vector<std::byte> resp(64);
    for (int g = 0; g < kGenerations; ++g) {
      co_await c->Connect();
      const size_t n = co_await c->Call(kEcho, AsBytes("gen"), resp);
      EXPECT_EQ(n, 3u);
      co_await c->Disconnect();
      ++*out;
    }
  }(&client, &done));
  engine_.RunUntil(sim::Millis(20));

  EXPECT_EQ(done, kGenerations);
  EXPECT_EQ(server->connects(), static_cast<uint64_t>(kGenerations));
  EXPECT_EQ(server->live_connections(), 0u);
  // The connect fast path does no MR work: the client's footprint is its
  // construction-time slot span, across all fifty logical connections.
  EXPECT_EQ(fabric_.RegisteredBytes(node), client_bytes);
}

TEST_F(PooledTest, RetransmitsAndFiltersDuplicatesUnderLoss) {
  rdma::FabricConfig fc;
  fc.unreliable_loss_prob = 0.2;
  fc.seed = 7;
  sim::Engine engine;
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");
  rfp::RpcServer rpc(fabric, server_node, 1);
  rpc.RegisterHandler(kEcho, [](const rfp::HandlerContext&, std::span<const std::byte> req,
                                std::span<std::byte> resp) {
    std::memcpy(resp.data(), req.data(), req.size());
    return rfp::HandlerResult{req.size(), sim::Nanos(300)};
  });
  PooledServer server(fabric, rpc, {});
  server.Start();
  PooledClient client(fabric, client_node, server);

  constexpr int kCalls = 100;
  int done = 0;
  engine.Spawn([](PooledClient* c, int* out) -> sim::Task<void> {
    std::vector<std::byte> resp(64);
    co_await c->Connect();
    for (int k = 0; k < kCalls; ++k) {
      const std::string msg = "m" + std::to_string(k);
      const size_t n =
          co_await c->Call(kEcho, std::as_bytes(std::span(msg.data(), msg.size())), resp);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(resp.data()), n), msg);
      ++*out;
    }
  }(&client, &done));
  engine.RunUntil(sim::Millis(100));

  EXPECT_EQ(done, kCalls);
  // 20% loss across ~100 round trips: some retransmits are certain, and the
  // handlers being idempotent means retransmitted executions are harmless.
  EXPECT_GT(client.stats().retransmits, 0u);
  EXPECT_GT(client.stats().sends, client.stats().calls);
}

TEST_F(PooledTest, UnknownRpcIdIsDroppedAndCallFails) {
  PooledOptions options;
  options.max_retransmits = 2;
  options.retry_timeout_ns = sim::Micros(5);
  PooledServer* server = MakeServer(options);
  rdma::Node& node = fabric_.AddNode("client");
  PooledClient client(fabric_, node, *server, options);

  bool threw = false;
  engine_.Spawn([](PooledClient* c, bool* out) -> sim::Task<void> {
    co_await c->Connect();
    std::vector<std::byte> resp(64);
    try {
      co_await c->Call(/*rpc_id=*/999, {}, resp);
    } catch (const std::runtime_error&) {
      *out = true;
    }
  }(&client, &threw));
  engine_.RunUntil(sim::Millis(5));

  EXPECT_TRUE(threw);
  EXPECT_GT(pooled_->dropped_requests(), 0u);
  EXPECT_EQ(client.stats().failures, 1u);
}

TEST_F(PooledTest, StrictCheckerAcceptsTheConnectionLifecycle) {
  check::ScopedMode strict(check::Mode::kStrict);
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");
  rfp::RpcServer rpc(fabric, server_node, 1);
  rpc.RegisterHandler(kEcho, [](const rfp::HandlerContext&, std::span<const std::byte> req,
                                std::span<std::byte> resp) {
    std::memcpy(resp.data(), req.data(), req.size());
    return rfp::HandlerResult{req.size(), sim::Nanos(300)};
  });
  PooledServer server(fabric, rpc, {});
  server.Start();
  PooledClient client(fabric, client_node, server);

  int done = 0;
  engine.Spawn([](PooledClient* c, int* out) -> sim::Task<void> {
    std::vector<std::byte> resp(64);
    for (int g = 0; g < 5; ++g) {
      co_await c->Connect();
      co_await c->Call(kEcho, AsBytes("ok"), resp);
      co_await c->Disconnect();
      ++*out;
    }
  }(&client, &done));
  EXPECT_NO_THROW(engine.RunUntil(sim::Millis(5)));
  EXPECT_EQ(done, 5);
}

TEST_F(PooledTest, CheckerFlagsCidAliasingAndDoubleRelease) {
  check::ScopedMode strict(check::Mode::kStrict);
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  check::FabricChecker* checker = fabric.checker();
  ASSERT_NE(checker, nullptr);

  const int server_tag = 0;  // any stable address stands in for a server
  checker->OnCidAssign(&server_tag, 42);
  EXPECT_THROW(checker->OnCidAssign(&server_tag, 42), check::ViolationError);
  checker->OnCidRelease(&server_tag, 42);
  EXPECT_THROW(checker->OnCidRelease(&server_tag, 42), check::ViolationError);
  // Scoping is per server: the same cid on another server is independent.
  const int other_tag = 0;
  EXPECT_NO_THROW(checker->OnCidAssign(&other_tag, 7));
  EXPECT_NO_THROW(checker->OnCidAssign(&server_tag, 7));
}

}  // namespace
}  // namespace conn
