// LRU channel cache (docs/connections.md). Contracts under test:
//
//   * a lease hit returns the cached channel — no second AcceptChannel;
//   * capacity (channel count or registered bytes) evicts the
//     least-recently-used idle entry, and the next lease for the evicted key
//     re-establishes with ZERO new MR registrations (the churn contract:
//     rings come from the node pools, tests/mem/churn_test.cc);
//   * when every entry is pinned, the LRU victim is detached (alive until
//     its last lease drops) rather than destroyed under a live caller;
//   * forced Evict destroys idle entries immediately and defers pinned ones.

#include "src/conn/cache.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace conn {
namespace {

constexpr uint16_t kEcho = 1;

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() {
    server_ = std::make_unique<rfp::RpcServer>(fabric_, server_node_, 2);
    server_->RegisterHandler(kEcho, [](const rfp::HandlerContext&,
                                       std::span<const std::byte> req,
                                       std::span<std::byte> resp) {
      std::memcpy(resp.data(), req.data(), req.size());
      return rfp::HandlerResult{req.size(), sim::Nanos(300)};
    });
    server_->Start();
  }

  ~CacheTest() override { server_->Stop(); }

  rdma::Node& Client(int i) {
    while (static_cast<size_t>(i) >= client_nodes_.size()) {
      client_nodes_.push_back(
          &fabric_.AddNode("client" + std::to_string(client_nodes_.size())));
    }
    return *client_nodes_[static_cast<size_t>(i)];
  }

  // One echo round trip over `lease`, driven to completion.
  void Echo(ChannelLease& lease) {
    bool done = false;
    engine_.Spawn([](rfp::RpcClient* stub, bool* out) -> sim::Task<void> {
      const std::string msg = "ping";
      std::vector<std::byte> resp(64);
      const size_t n = co_await stub->Call(
          kEcho, std::as_bytes(std::span(msg.data(), msg.size())), resp);
      EXPECT_EQ(n, 4u);
      *out = true;
    }(lease.stub(), &done));
    engine_.RunUntil(engine_.now() + sim::Millis(2));
    ASSERT_TRUE(done);
  }

  sim::Engine engine_;
  rdma::Fabric fabric_{engine_};
  rdma::Node& server_node_{fabric_.AddNode("server")};
  std::unique_ptr<rfp::RpcServer> server_;
  std::vector<rdma::Node*> client_nodes_;
  rfp::RfpOptions options_;
};

TEST_F(CacheTest, HitReturnsTheSameChannel) {
  ChannelCache cache;
  rfp::Channel* first = nullptr;
  {
    ChannelLease lease = cache.Get(*server_, Client(0), options_, 0);
    ASSERT_TRUE(lease.valid());
    first = lease.channel();
    Echo(lease);
  }
  ChannelLease again = cache.Get(*server_, Client(0), options_, 0);
  EXPECT_EQ(again.channel(), first);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);

  // Distinct thread => distinct key => distinct channel.
  ChannelLease other = cache.Get(*server_, Client(0), options_, 1);
  EXPECT_NE(other.channel(), first);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(CacheTest, CountCapacityEvictsLeastRecentlyUsedIdleEntry) {
  CacheOptions copts;
  copts.max_channels = 2;
  ChannelCache cache(copts);

  rfp::Channel* a = nullptr;
  { ChannelLease la = cache.Get(*server_, Client(0), options_, 0); a = la.channel(); }
  { ChannelLease lb = cache.Get(*server_, Client(1), options_, 0); }
  // Touch A so B becomes the LRU entry.
  { ChannelLease la = cache.Get(*server_, Client(0), options_, 0); EXPECT_EQ(la.channel(), a); }

  { ChannelLease lc = cache.Get(*server_, Client(2), options_, 0); }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().detach_evictions, 0u);
  EXPECT_EQ(server_->channels_closed(), 1u);  // B was destroyed outright

  // A survived the eviction — leasing it again is a hit on the same channel.
  const uint64_t misses = cache.stats().misses;
  ChannelLease la = cache.Get(*server_, Client(0), options_, 0);
  EXPECT_EQ(la.channel(), a);
  EXPECT_EQ(cache.stats().misses, misses);
}

TEST_F(CacheTest, ByteCapacityEvictsByRegisteredFootprint) {
  // Learn one channel's footprint, then cap the cache at just under two.
  size_t footprint = 0;
  {
    ChannelCache probe;
    ChannelLease lease = probe.Get(*server_, Client(0), options_, 0);
    footprint = lease.channel()->registered_footprint_bytes();
  }
  ASSERT_GT(footprint, 0u);

  CacheOptions copts;
  copts.max_channels = 0;  // bytes are the only limit
  copts.max_registered_bytes = 2 * footprint - 1;
  ChannelCache cache(copts);
  { ChannelLease la = cache.Get(*server_, Client(0), options_, 0); }
  EXPECT_EQ(cache.registered_bytes(), footprint);
  { ChannelLease lb = cache.Get(*server_, Client(1), options_, 0); }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.registered_bytes(), footprint);
}

TEST_F(CacheTest, ReestablishAfterEvictionDoesZeroRegistrations) {
  CacheOptions copts;
  copts.max_channels = 1;
  ChannelCache cache(copts);

  // Warm both keys once: first-touch arena registration happens here.
  { ChannelLease lease = cache.Get(*server_, Client(0), options_, 0); Echo(lease); }
  { ChannelLease lease = cache.Get(*server_, Client(1), options_, 0); Echo(lease); }

  const uint64_t reg_server = fabric_.RegistrationCount(server_node_);
  const uint64_t dereg_server = fabric_.DeregistrationCount(server_node_);
  const uint64_t reg_c0 = fabric_.RegistrationCount(Client(0));
  const uint64_t reg_c1 = fabric_.RegistrationCount(Client(1));

  // Ping-pong the two keys through the one-slot cache: every Get is a miss
  // that evicts the other entry and re-establishes through the pools.
  for (int round = 0; round < 6; ++round) {
    ChannelLease lease = cache.Get(*server_, Client(round % 2), options_, 0);
    Echo(lease);
  }
  EXPECT_GE(cache.stats().evictions, 6u);

  // The churn contract: connection churn is span recycling, not MR traffic.
  EXPECT_EQ(fabric_.RegistrationCount(server_node_), reg_server);
  EXPECT_EQ(fabric_.DeregistrationCount(server_node_), dereg_server);
  EXPECT_EQ(fabric_.RegistrationCount(Client(0)), reg_c0);
  EXPECT_EQ(fabric_.RegistrationCount(Client(1)), reg_c1);
}

TEST_F(CacheTest, PinnedVictimIsDetachedAndDestroyedOnLastRelease) {
  CacheOptions copts;
  copts.max_channels = 1;
  ChannelCache cache(copts);

  ChannelLease held = cache.Get(*server_, Client(0), options_, 0);
  rfp::Channel* victim = held.channel();
  Echo(held);

  // Capacity forces an eviction but A is pinned: it must be detached, not
  // destroyed — `held` still points at a live (if errored) channel.
  ChannelLease other = cache.Get(*server_, Client(1), options_, 0);
  EXPECT_EQ(cache.stats().detach_evictions, 1u);
  EXPECT_EQ(server_->channels_closed(), 0u);
  EXPECT_EQ(held.channel(), victim);
  // The detached channel reconnects under its next call (PR-2 machinery).
  Echo(held);
  EXPECT_GE(victim->stats().reconnects, 1u);

  held.Release();
  EXPECT_EQ(server_->channels_closed(), 1u);
  EXPECT_TRUE(other.valid());
}

TEST_F(CacheTest, ForcedEvictIsImmediateWhenIdleDeferredWhenPinned) {
  ChannelCache cache;
  { ChannelLease lease = cache.Get(*server_, Client(0), options_, 0); }
  EXPECT_FALSE(cache.Evict(*server_, Client(5), 0));  // unknown key
  EXPECT_TRUE(cache.Evict(*server_, Client(0), 0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(server_->channels_closed(), 1u);

  ChannelLease held = cache.Get(*server_, Client(1), options_, 0);
  EXPECT_TRUE(cache.Evict(*server_, Client(1), 0));
  EXPECT_EQ(cache.stats().detach_evictions, 1u);
  EXPECT_EQ(server_->channels_closed(), 1u);  // deferred past the pin
  held.Release();
  EXPECT_EQ(server_->channels_closed(), 2u);
}

}  // namespace
}  // namespace conn
