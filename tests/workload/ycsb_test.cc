#include "src/workload/ycsb.h"

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace workload {
namespace {

TEST(GeneratorTest, GetFractionApproximatelyHonored) {
  WorkloadSpec spec;
  spec.get_fraction = 0.95;
  Generator gen(spec, 0);
  int gets = 0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    gets += gen.Next().type == OpType::kGet ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(gets) / draws, 0.95, 0.01);
}

TEST(GeneratorTest, WriteOnlyAndReadOnlyExtremes) {
  WorkloadSpec spec;
  spec.get_fraction = 0.0;
  Generator writes(spec, 0);
  spec.get_fraction = 1.0;
  Generator reads(spec, 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(writes.Next().type, OpType::kPut);
    EXPECT_EQ(reads.Next().type, OpType::kGet);
  }
}

TEST(GeneratorTest, KeysStayInRange) {
  WorkloadSpec spec;
  spec.num_keys = 1000;
  Generator gen(spec, 3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.Next().key_id, 1000u);
  }
}

TEST(GeneratorTest, DeterministicPerStream) {
  WorkloadSpec spec;
  Generator a(spec, 7);
  Generator b(spec, 7);
  for (int i = 0; i < 100; ++i) {
    Op oa = a.Next();
    Op ob = b.Next();
    EXPECT_EQ(oa.key_id, ob.key_id);
    EXPECT_EQ(oa.type, ob.type);
  }
}

TEST(GeneratorTest, DistinctStreamsDiffer) {
  WorkloadSpec spec;
  Generator a(spec, 1);
  Generator b(spec, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.Next().key_id == b.Next().key_id ? 1 : 0;
  }
  EXPECT_LT(same, 5);
}

TEST(GeneratorTest, ZipfianSkewsTowardsHotKeys) {
  WorkloadSpec spec;
  spec.num_keys = 100000;
  spec.distribution = KeyDistribution::kZipfian;
  Generator gen(spec, 0);
  std::map<uint64_t, int> counts;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    counts[gen.Next().key_id]++;
  }
  int hottest = 0;
  for (const auto& [k, c] : counts) {
    hottest = std::max(hottest, c);
  }
  // Uniform would give ~1 access per key; zipf .99 gives the hottest key
  // thousands.
  EXPECT_GT(hottest, 1000);
}

TEST(GeneratorTest, FixedValueSize) {
  WorkloadSpec spec;
  spec.get_fraction = 0.0;
  spec.value_size = ValueSizeSpec::Fixed(512);
  Generator gen(spec, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.Next().value_size, 512u);
  }
}

TEST(GeneratorTest, UniformValueSizeInRange) {
  WorkloadSpec spec;
  spec.get_fraction = 0.0;
  spec.value_size = ValueSizeSpec::Uniform(32, 8192);
  Generator gen(spec, 0);
  uint32_t lo = UINT32_MAX;
  uint32_t hi = 0;
  for (int i = 0; i < 20000; ++i) {
    uint32_t v = gen.Next().value_size;
    EXPECT_GE(v, 32u);
    EXPECT_LE(v, 8192u);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 200u);
  EXPECT_GT(hi, 8000u);
}

TEST(GeneratorTest, InvalidSpecsThrow) {
  WorkloadSpec spec;
  spec.num_keys = 0;
  EXPECT_THROW(Generator(spec, 0), std::invalid_argument);
  spec.num_keys = 10;
  spec.get_fraction = 1.5;
  EXPECT_THROW(Generator(spec, 0), std::invalid_argument);
}

TEST(KeyTest, KeysAreDistinctAndDeterministic) {
  std::set<std::vector<std::byte>> seen;
  for (uint64_t id = 0; id < 5000; ++id) {
    std::vector<std::byte> key(16);
    MakeKey(id, key);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate key for id " << id;
  }
  std::vector<std::byte> again(16);
  MakeKey(42, again);
  std::vector<std::byte> first(16);
  MakeKey(42, first);
  EXPECT_EQ(again, first);
}

TEST(KeyTest, OddKeySizesSupported) {
  std::vector<std::byte> key(23);
  MakeKey(7, key);
  std::vector<std::byte> key2(23);
  MakeKey(8, key2);
  EXPECT_NE(key, key2);
}

TEST(ValueTest, FillAndCheckRoundTrip) {
  std::vector<std::byte> value(1024);
  FillValue(99, value);
  EXPECT_TRUE(CheckValue(99, value));
  EXPECT_FALSE(CheckValue(100, value));
  value[512] ^= std::byte{0xff};
  EXPECT_FALSE(CheckValue(99, value));
}

TEST(ValueTest, EmptyValueAlwaysChecks) {
  EXPECT_TRUE(CheckValue(1, {}));
}

TEST(GeneratorTest, LogUniformHitsExactlyThePowerGrid) {
  WorkloadSpec spec;
  spec.get_fraction = 0.0;
  spec.value_size = ValueSizeSpec::LogUniform(32, 8192);
  Generator gen(spec, 0);
  std::map<uint32_t, int> counts;
  const int draws = 90000;
  for (int i = 0; i < draws; ++i) {
    counts[gen.Next().value_size]++;
  }
  // Exactly the 9 powers of two in [32, 8192], roughly equiprobable.
  ASSERT_EQ(counts.size(), 9u);
  for (uint32_t v = 32; v <= 8192; v <<= 1) {
    ASSERT_TRUE(counts.count(v)) << v;
    EXPECT_NEAR(counts[v], draws / 9, draws / 45);  // within 20%
  }
}

TEST(GeneratorTest, LogUniformDegenerateRangeIsFixed) {
  WorkloadSpec spec;
  spec.get_fraction = 0.0;
  spec.value_size = ValueSizeSpec::LogUniform(64, 64);
  Generator gen(spec, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.Next().value_size, 64u);
  }
}

TEST(VersionedValueTest, AnyCompleteVersionVerifies) {
  std::vector<std::byte> value(64);
  for (uint64_t version : {0ull, 1ull, 42ull, 1'000'000ull}) {
    FillValueVersioned(9, version, value);
    EXPECT_TRUE(CheckValueVersioned(9, value)) << version;
    EXPECT_FALSE(CheckValueVersioned(10, value)) << version;
  }
}

TEST(VersionedValueTest, TornMixOfTwoVersionsFails) {
  std::vector<std::byte> a(64);
  std::vector<std::byte> b(64);
  FillValueVersioned(5, 1, a);
  FillValueVersioned(5, 2, b);
  // Splice the head of version 2 onto the tail of version 1.
  std::vector<std::byte> torn(a);
  std::copy(b.begin(), b.begin() + 16, torn.begin());
  EXPECT_FALSE(CheckValueVersioned(5, torn));
}

TEST(VersionedValueTest, TooSmallBuffersRejected) {
  std::vector<std::byte> tiny(4);
  EXPECT_THROW(FillValueVersioned(1, 1, tiny), std::invalid_argument);
  EXPECT_FALSE(CheckValueVersioned(1, tiny));
}

}  // namespace
}  // namespace workload
