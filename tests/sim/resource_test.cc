#include "src/sim/resource.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {
namespace {

TEST(ResourceTest, ImmediateAcquireWhenAvailable) {
  Engine engine;
  Resource res(engine, 2);
  bool acquired = false;
  engine.Spawn([](Resource& r, bool* out) -> Task<void> {
    co_await r.Acquire();
    *out = true;
    r.Release();
  }(res, &acquired));
  engine.Run();
  EXPECT_TRUE(acquired);
  EXPECT_EQ(res.available(), 2);
  EXPECT_EQ(res.total_acquisitions(), 1u);
}

TEST(ResourceTest, CapacityLimitsConcurrency) {
  Engine engine;
  Resource res(engine, 2);
  int concurrent = 0;
  int peak = 0;
  for (int i = 0; i < 6; ++i) {
    engine.Spawn([](Engine& e, Resource& r, int* cur, int* pk) -> Task<void> {
      co_await r.Acquire();
      ++*cur;
      *pk = std::max(*pk, *cur);
      co_await e.Sleep(Micros(10));
      --*cur;
      r.Release();
    }(engine, res, &concurrent, &peak));
  }
  engine.Run();
  EXPECT_EQ(peak, 2);
  // 6 jobs, 2 servers, 10us each -> 30us makespan.
  EXPECT_EQ(engine.now(), Micros(30));
}

TEST(ResourceTest, GrantsAreFifo) {
  Engine engine;
  Resource res(engine, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.Spawn([](Engine& e, Resource& r, std::vector<int>* out, int id) -> Task<void> {
      // Stagger arrival so the queue order is well defined.
      co_await e.Sleep(Nanos(id));
      co_await r.Acquire();
      out->push_back(id);
      co_await e.Sleep(Micros(1));
      r.Release();
    }(engine, res, &order, i));
  }
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ResourceTest, UseHoldsForServiceTime) {
  Engine engine;
  Resource res(engine, 1);
  engine.Spawn(res.Use(Micros(5)));
  engine.Spawn(res.Use(Micros(5)));
  engine.Run();
  EXPECT_EQ(engine.now(), Micros(10));
  EXPECT_EQ(res.total_acquisitions(), 2u);
}

TEST(ResourceTest, WaitTimeAccounted) {
  Engine engine;
  Resource res(engine, 1);
  engine.Spawn(res.Use(Micros(4)));
  engine.Spawn(res.Use(Micros(4)));  // waits 4us
  engine.Spawn(res.Use(Micros(4)));  // waits 8us
  engine.Run();
  EXPECT_EQ(res.total_wait(), Micros(12));
}

TEST(ResourceTest, BusyIntegralMeasuresUtilization) {
  Engine engine;
  Resource res(engine, 2);
  engine.Spawn(res.Use(Micros(10)));
  engine.Run();
  // One of two permits busy for 10us out of 10us elapsed = 50%.
  EXPECT_DOUBLE_EQ(res.Utilization(0, engine.now()), 0.5);
}

TEST(ResourceTest, WatchedWindowExcludesEarlierBusyTime) {
  Engine engine;
  Resource res(engine, 1);
  // Busy 10us, idle 10us, busy 5us. A window armed at 10us must see only the
  // 5us of busy time inside [10us, 25us] — not the 10us from before it.
  res.WatchFrom(Micros(10));
  engine.Spawn([](Engine& e, Resource& r) -> Task<void> {
    co_await r.Use(Micros(10));
    co_await e.Sleep(Micros(10));
    co_await r.Use(Micros(5));
  }(engine, res));
  engine.Run();
  EXPECT_EQ(engine.now(), Micros(25));
  EXPECT_DOUBLE_EQ(res.Utilization(Micros(10), Micros(25)), 5.0 / 15.0);
  // Whole-run queries are unchanged by the watch.
  EXPECT_DOUBLE_EQ(res.Utilization(0, Micros(25)), 15.0 / 25.0);
}

TEST(ResourceTest, WatchBoundaryInsideABusySpanSplitsIt) {
  Engine engine;
  Resource res(engine, 1);
  // One 20us busy span; a window armed at its midpoint sees exactly half.
  res.WatchFrom(Micros(10));
  engine.Spawn(res.Use(Micros(20)));
  engine.Run();
  EXPECT_DOUBLE_EQ(res.Utilization(Micros(10), Micros(20)), 1.0);
  EXPECT_DOUBLE_EQ(res.Utilization(0, Micros(20)), 1.0);
}

TEST(ResourceTest, UnwatchedWindowStartAfterLastChangeIsExact) {
  Engine engine;
  Resource res(engine, 1);
  engine.Spawn(res.Use(Micros(10)));
  engine.Run();
  engine.RunUntil(Micros(40));
  // No watch needed: 20us lies in the idle span since the last transition,
  // so the busy integral there is reconstructible — zero busy in [20, 40].
  EXPECT_DOUBLE_EQ(res.Utilization(Micros(20), Micros(40)), 0.0);
}

TEST(MutexTest, ProvidesMutualExclusion) {
  Engine engine;
  Mutex mu(engine);
  int in_section = 0;
  bool overlapped = false;
  for (int i = 0; i < 4; ++i) {
    engine.Spawn([](Engine& e, Mutex& m, int* in, bool* bad) -> Task<void> {
      co_await m.Lock();
      if (++*in > 1) {
        *bad = true;
      }
      co_await e.Sleep(Micros(3));
      --*in;
      m.Unlock();
    }(engine, mu, &in_section, &overlapped));
  }
  engine.Run();
  EXPECT_FALSE(overlapped);
  EXPECT_EQ(engine.now(), Micros(12));
  EXPECT_EQ(mu.total_acquisitions(), 4u);
}

// Property: for any (capacity, jobs, service), makespan equals the FIFO
// k-server bound ceil(jobs / capacity) * service when all jobs arrive at t=0.
class ResourceMakespanTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ResourceMakespanTest, MatchesKServerBound) {
  const auto [capacity, jobs, service_us] = GetParam();
  Engine engine;
  Resource res(engine, capacity);
  for (int i = 0; i < jobs; ++i) {
    engine.Spawn(res.Use(Micros(service_us)));
  }
  engine.Run();
  const int waves = (jobs + capacity - 1) / capacity;
  EXPECT_EQ(engine.now(), Micros(static_cast<int64_t>(waves) * service_us));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ResourceMakespanTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 8),
                                            ::testing::Values(1, 5, 16, 33),
                                            ::testing::Values(1, 7)));

}  // namespace
}  // namespace sim
