#include "src/sim/signal.h"

#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {
namespace {

TEST(EventTest, WaitCompletesImmediatelyWhenSet) {
  Engine engine;
  Event ev(engine);
  ev.Set();
  bool done = false;
  engine.Spawn([](Event& e, bool* out) -> Task<void> {
    co_await e.Wait();
    *out = true;
  }(ev, &done));
  EXPECT_TRUE(done);  // no suspension needed
  engine.Run();
}

TEST(EventTest, SetReleasesAllWaiters) {
  Engine engine;
  Event ev(engine);
  int released = 0;
  for (int i = 0; i < 3; ++i) {
    engine.Spawn([](Event& e, int* out) -> Task<void> {
      co_await e.Wait();
      ++*out;
    }(ev, &released));
  }
  engine.ScheduleAt(Micros(5), [&] { ev.Set(); });
  engine.Run();
  EXPECT_EQ(released, 3);
  EXPECT_EQ(engine.now(), Micros(5));
}

TEST(EventTest, ResetRearmsTheEvent) {
  Engine engine;
  Event ev(engine);
  ev.Set();
  ev.Reset();
  EXPECT_FALSE(ev.is_set());
  bool done = false;
  engine.Spawn([](Event& e, bool* out) -> Task<void> {
    co_await e.Wait();
    *out = true;
  }(ev, &done));
  EXPECT_FALSE(done);
  ev.Set();
  engine.Run();
  EXPECT_TRUE(done);
}

TEST(NotifierTest, NotifyOneWakesExactlyOne) {
  Engine engine;
  Notifier n(engine);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    engine.Spawn([](Notifier& no, int* out) -> Task<void> {
      co_await no.Wait();
      ++*out;
    }(n, &woken));
  }
  EXPECT_EQ(n.waiters(), 3);
  n.NotifyOne();
  engine.Run();
  EXPECT_EQ(woken, 1);
  n.NotifyAll();
  engine.Run();
  EXPECT_EQ(woken, 3);
}

TEST(NotifierTest, WaitAlwaysSuspends) {
  Engine engine;
  Notifier n(engine);
  n.NotifyAll();  // no waiters: no-op, not sticky
  bool done = false;
  engine.Spawn([](Notifier& no, bool* out) -> Task<void> {
    co_await no.Wait();
    *out = true;
  }(n, &done));
  engine.Run();
  EXPECT_FALSE(done);
  n.NotifyOne();
  engine.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace sim
