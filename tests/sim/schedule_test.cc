// SchedulePolicy unit tests plus the engine's policy-dispatch behavior:
// explicit FIFO matches the built-in fast path, random shuffles are
// seed-deterministic, recorded traces replay exactly, Yield ordering is
// policy-controlled, and ScheduleAt's clamp keeps replays stable.

#include "src/sim/schedule.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {
namespace {

std::vector<int> RunTenSameInstant(SchedulePolicy* policy) {
  Engine engine;
  engine.set_schedule_policy(policy);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.ScheduleAt(Micros(5), [&order, i] { order.push_back(i); });
  }
  engine.Run();
  return order;
}

TEST(SchedulePolicyTest, FormatParseRoundTrip) {
  const DecisionTrace trace{0, 2, 1, 7};
  EXPECT_EQ(FormatDecisionTrace(trace), "0,2,1,7");
  EXPECT_EQ(ParseDecisionTrace("0,2,1,7"), trace);
  EXPECT_TRUE(ParseDecisionTrace("").empty());
  EXPECT_TRUE(ParseDecisionTrace("-").empty());
  EXPECT_EQ(FormatDecisionTrace({}), "");
}

TEST(SchedulePolicyTest, ExplicitFifoMatchesFastPath) {
  FifoPolicy fifo;
  const std::vector<int> with_policy = RunTenSameInstant(&fifo);
  const std::vector<int> fast_path = RunTenSameInstant(nullptr);
  EXPECT_EQ(with_policy, fast_path);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(with_policy[static_cast<size_t>(i)], i);
  }
  // 10 ready events dispatched one at a time: 9 decision points (the last
  // survivor is a singleton), each picking index 0.
  ASSERT_EQ(fifo.decisions().size(), 9u);
  for (const Decision& d : fifo.decisions()) {
    EXPECT_EQ(d.choice, 0u);
  }
  EXPECT_EQ(fifo.decisions().front().arity, 10u);
  EXPECT_EQ(fifo.decisions().back().arity, 2u);
}

TEST(SchedulePolicyTest, RandomShuffleIsSeedDeterministicAndReplayable) {
  RandomShufflePolicy a(1234);
  const std::vector<int> order_a = RunTenSameInstant(&a);
  RandomShufflePolicy b(1234);
  const std::vector<int> order_b = RunTenSameInstant(&b);
  EXPECT_EQ(order_a, order_b);

  RandomShufflePolicy c(99);
  const std::vector<int> order_c = RunTenSameInstant(&c);
  EXPECT_NE(order_a, order_c);  // astronomically unlikely to collide

  // The recorded decisions replay to the identical order.
  ReplayPolicy replay(a.choices());
  EXPECT_EQ(RunTenSameInstant(&replay), order_a);
}

TEST(SchedulePolicyTest, ReplayFallsBackToFifoPastTheTrace) {
  // Force only the first decision (pick the last ready event); the rest run
  // FIFO.
  ReplayPolicy replay(DecisionTrace{9});
  const std::vector<int> order = RunTenSameInstant(&replay);
  ASSERT_EQ(order.size(), 10u);
  EXPECT_EQ(order[0], 9);
  for (int i = 1; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i - 1);
  }
  EXPECT_TRUE(replay.exhausted());
}

TEST(SchedulePolicyTest, ReplayClampsOutOfRangeChoice) {
  ReplayPolicy replay(DecisionTrace{250});
  const std::vector<int> order = RunTenSameInstant(&replay);
  ASSERT_EQ(order.size(), 10u);
  EXPECT_EQ(order[0], 9);  // clamped to the largest index
}

TEST(SchedulePolicyTest, StrictReplayThrowsOnDivergence) {
  ReplayPolicy replay(DecisionTrace{250});
  replay.set_strict(true);
  Engine engine;
  engine.set_schedule_policy(&replay);
  for (int i = 0; i < 3; ++i) {
    engine.ScheduleAt(Micros(1), [] {});
  }
  EXPECT_THROW(engine.Run(), ScheduleDivergence);
}

TEST(SchedulePolicyTest, SingletonInstantsConsumeNoDecisions) {
  FifoPolicy fifo;
  Engine engine;
  engine.set_schedule_policy(&fifo);
  for (int i = 0; i < 5; ++i) {
    engine.ScheduleAt(Micros(i), [] {});  // all at distinct instants
  }
  engine.Run();
  EXPECT_TRUE(fifo.decisions().empty());
}

TEST(SchedulePolicyTest, YieldOrderingIsPolicyControlled) {
  // Two actors yield at the same instant; under FIFO A's continuation runs
  // before B's, and a trace can flip that — proof that Yield() resumption
  // goes through the policy like every other same-instant event.
  auto run = [](SchedulePolicy* policy) {
    Engine engine;
    engine.set_schedule_policy(policy);
    std::string log;
    auto actor = [](Engine& eng, std::string* out, char tag) -> Task<void> {
      out->push_back(tag);
      co_await eng.Yield();
      out->push_back(static_cast<char>(tag + ('x' - 'A')));
    };
    engine.Spawn(actor(engine, &log, 'A'));
    engine.Spawn(actor(engine, &log, 'B'));
    engine.Run();
    return log;
  };
  EXPECT_EQ(run(nullptr), "ABxy");
  ReplayPolicy flip(DecisionTrace{1});
  EXPECT_EQ(run(&flip), "AByx");
}

TEST(SchedulePolicyTest, PastScheduleClampsUnderReplayKeepingTraceStable) {
  // An actor schedules into the past at a contended instant. The clamp pins
  // the event to now(), so the ready sets — and therefore the decision
  // arities — are identical run to run, and a recorded trace replays to the
  // same order.
  auto run = [](SchedulePolicy* policy) {
    Engine engine;
    engine.set_schedule_policy(policy);
    std::vector<int> order;
    engine.ScheduleAt(Micros(10), [&engine, &order] {
      order.push_back(0);
      engine.ScheduleAt(Micros(2), [&order] { order.push_back(1); });  // past: clamped
    });
    engine.ScheduleAt(Micros(10), [&order] { order.push_back(2); });
    engine.ScheduleAt(Micros(10), [&order] { order.push_back(3); });
    engine.Run();
    return order;
  };
  RandomShufflePolicy random(7);
  const std::vector<int> sampled = run(&random);
  ReplayPolicy replay(random.choices());
  EXPECT_EQ(run(&replay), sampled);
}

}  // namespace
}  // namespace sim
