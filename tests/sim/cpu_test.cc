#include "src/sim/cpu.h"

#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {
namespace {

TEST(CpuSetTest, ParallelComputeOnFreeCores) {
  Engine engine;
  CpuSet cpus(engine, 4);
  for (int i = 0; i < 4; ++i) {
    engine.Spawn(cpus.Compute(Micros(10)));
  }
  engine.Run();
  EXPECT_EQ(engine.now(), Micros(10));
}

TEST(CpuSetTest, OversubscriptionSerializes) {
  Engine engine;
  CpuSet cpus(engine, 2);
  for (int i = 0; i < 6; ++i) {
    engine.Spawn(cpus.Compute(Micros(10)));
  }
  engine.Run();
  EXPECT_EQ(engine.now(), Micros(30));
}

TEST(CpuSetTest, UtilizationReflectsLoad) {
  Engine engine;
  CpuSet cpus(engine, 2);
  engine.Spawn(cpus.Compute(Micros(10)));
  engine.Run();
  EXPECT_DOUBLE_EQ(cpus.Utilization(0, engine.now()), 0.5);
}

TEST(CpuSetTest, WatchedWindowReportsPerCoreBusyFractionExactly) {
  Engine engine;
  CpuSet cpus(engine, 2);
  cpus.WatchUtilization(Micros(10));
  engine.Spawn([](Engine& e, CpuSet& c) -> Task<void> {
    co_await c.ComputeOn(0, Micros(10));  // entirely before the window
    co_await e.Sleep(Micros(5));
    co_await c.ComputeOn(1, Micros(5));  // entirely inside it
  }(engine, cpus));
  engine.Run();
  EXPECT_EQ(engine.now(), Micros(20));
  // Core 0's pre-window busy time must not leak into the measure window.
  EXPECT_DOUBLE_EQ(cpus.CoreUtilization(0, Micros(10), Micros(20)), 0.0);
  EXPECT_DOUBLE_EQ(cpus.CoreUtilization(1, Micros(10), Micros(20)), 0.5);
}

TEST(BusyMeterTest, UtilizationIsBusyOverWindow) {
  BusyMeter meter;
  meter.AddBusy(Micros(30));
  EXPECT_DOUBLE_EQ(meter.Utilization(0, Micros(100)), 0.3);
  meter.Reset();
  EXPECT_DOUBLE_EQ(meter.Utilization(0, Micros(100)), 0.0);
}

TEST(BusyMeterTest, UtilizationCapsAtOne) {
  BusyMeter meter;
  meter.AddBusy(Micros(200));
  EXPECT_DOUBLE_EQ(meter.Utilization(0, Micros(100)), 1.0);
}

TEST(BusyMeterTest, EmptyWindowIsZero) {
  BusyMeter meter;
  meter.AddBusy(Micros(5));
  EXPECT_DOUBLE_EQ(meter.Utilization(Micros(10), Micros(10)), 0.0);
}

}  // namespace
}  // namespace sim
