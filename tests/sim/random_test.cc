#include "src/sim/random.h"

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) {
    counts[rng.NextBounded(8)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 8, draws / 80);  // within 10%
  }
}

TEST(ZipfianTest, RanksWithinRange) {
  Rng rng(17);
  ZipfianGenerator zipf(1000, 0.99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(ZipfianTest, SkewConcentratesOnLowRanks) {
  Rng rng(19);
  ZipfianGenerator zipf(100000, 0.99);
  const int draws = 100000;
  int top10 = 0;
  for (int i = 0; i < draws; ++i) {
    if (zipf.Next(rng) < 10) {
      ++top10;
    }
  }
  // With theta=.99 over 100k items the 10 hottest draw ~24% of accesses
  // (sum of 1/i^.99 for i<=10 over zeta(1e5, .99) ~ 0.24). Expect 20-30%.
  EXPECT_GT(top10, draws / 5);
  EXPECT_LT(top10, draws * 3 / 10);
}

TEST(ZipfianTest, HottestKeyVsAverageMatchesPaperScale) {
  Rng rng(23);
  const uint64_t n = 100000;
  ZipfianGenerator zipf(n, 0.99);
  const int draws = 500000;
  std::map<uint64_t, int> counts;
  for (int i = 0; i < draws; ++i) {
    counts[zipf.Next(rng)]++;
  }
  const double average = static_cast<double>(draws) / static_cast<double>(n);
  const double hottest = counts.begin()->second;  // rank 0
  // Theory: hottest/average = n / zeta(n, theta) ~ 7.8e3 for n=1e5, theta=.99.
  // (The paper's ~1e5x figure is for its 128M-key space, where zeta grows
  // slower than n.) Accept within 25% of theory.
  EXPECT_NEAR(hottest / average, 7.8e3, 2e3);
}

TEST(ScrambledZipfianTest, SpreadsHotKeysAcrossSpace) {
  Rng rng(29);
  ScrambledZipfianGenerator gen(1 << 20, 0.99);
  uint64_t min_seen = UINT64_MAX;
  uint64_t max_seen = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = gen.Next(rng);
    min_seen = std::min(min_seen, v);
    max_seen = std::max(max_seen, v);
    EXPECT_LT(v, 1u << 20);
  }
  // Hot ranks land all over the key space, not at the low end.
  EXPECT_GT(max_seen, (1u << 20) * 9 / 10);
  EXPECT_LT(min_seen, (1u << 20) / 10);
}

TEST(Mix64Test, IsABijectionOnSamples) {
  // Distinct inputs must produce distinct outputs (injectivity sample).
  std::map<uint64_t, uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    uint64_t h = Mix64(i);
    EXPECT_EQ(seen.count(h), 0u);
    seen[h] = i;
  }
}

}  // namespace
}  // namespace sim
