#include "src/sim/engine.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/task.h"
#include "src/sim/time.h"
#include "tests/testutil.h"

namespace sim {
namespace {

TEST(EngineTest, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_EQ(engine.events_processed(), 0u);
}

TEST(EngineTest, ScheduledCallbacksRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.ScheduleAt(Micros(3), [&] { order.push_back(3); });
  engine.ScheduleAt(Micros(1), [&] { order.push_back(1); });
  engine.ScheduleAt(Micros(2), [&] { order.push_back(2); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), Micros(3));
}

TEST(EngineTest, SameInstantEventsRunFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.ScheduleAt(Micros(5), [&order, i] { order.push_back(i); });
  }
  engine.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EngineTest, PastScheduleClampsToNow) {
  Engine engine;
  Time observed = -1;
  engine.ScheduleAt(Micros(10), [&] {
    engine.ScheduleAt(Micros(2), [&] { observed = engine.now(); });
  });
  engine.Run();
  EXPECT_EQ(observed, Micros(10));
}

TEST(EngineTest, SleepAdvancesVirtualTime) {
  Engine engine;
  Time woke = 0;
  engine.Spawn([](Engine& e, Time* out) -> Task<void> {
    co_await e.Sleep(Micros(7));
    *out = e.now();
  }(engine, &woke));
  engine.Run();
  EXPECT_EQ(woke, Micros(7));
}

TEST(EngineTest, ZeroSleepDoesNotSuspend) {
  Engine engine;
  bool ran = false;
  engine.Spawn([](Engine& e, bool* out) -> Task<void> {
    co_await e.Sleep(0);
    *out = true;
    co_return;
  }(engine, &ran));
  // Spawn starts the actor inline; a zero sleep must complete synchronously.
  EXPECT_TRUE(ran);
  engine.Run();
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine engine;
  int fired = 0;
  engine.ScheduleAt(Micros(1), [&] { ++fired; });
  engine.ScheduleAt(Micros(100), [&] { ++fired; });
  EXPECT_FALSE(engine.RunUntil(Micros(10)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), Micros(10));
  EXPECT_TRUE(engine.RunUntil(Micros(1000)));
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, RunForIsRelative) {
  Engine engine;
  engine.ScheduleAt(Micros(5), [] {});
  engine.RunUntil(Micros(10));
  int fired = 0;
  engine.ScheduleAt(Micros(15), [&] { ++fired; });
  engine.RunFor(Micros(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), Micros(20));
}

TEST(EngineTest, SpawnTracksLiveActors) {
  Engine engine;
  engine.Spawn([](Engine& e) -> Task<void> { co_await e.Sleep(Micros(1)); }(engine));
  engine.Spawn([](Engine& e) -> Task<void> { co_await e.Sleep(Micros(2)); }(engine));
  EXPECT_EQ(engine.live_actors(), 2);
  engine.Run();
  EXPECT_EQ(engine.live_actors(), 0);
}

TEST(EngineTest, ActorExceptionRethrownFromRun) {
  Engine engine;
  engine.Spawn([](Engine& e) -> Task<void> {
    co_await e.Sleep(Micros(1));
    throw std::runtime_error("actor failed");
  }(engine));
  EXPECT_THROW(engine.Run(), std::runtime_error);
}

TEST(EngineTest, YieldRunsAfterPendingEventsAtSameInstant) {
  Engine engine;
  std::vector<int> order;
  engine.Spawn([](Engine& e, std::vector<int>* out) -> Task<void> {
    co_await e.Sleep(Micros(1));
    out->push_back(1);
    co_await e.Yield();
    out->push_back(3);
  }(engine, &order));
  engine.ScheduleAt(Micros(1), [&] { order.push_back(2); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineTest, NestedTaskAwaitPropagatesValue) {
  Engine engine;
  auto inner = [](Engine& e) -> Task<int> {
    co_await e.Sleep(Micros(2));
    co_return 42;
  };
  auto outer = [&inner](Engine& e) -> Task<int> {
    int v = co_await inner(e);
    co_return v + 1;
  };
  int result = rfptest::RunSync(engine, outer(engine));
  EXPECT_EQ(result, 43);
  EXPECT_EQ(engine.now(), Micros(2));
}

TEST(EngineTest, DeepTaskChainDoesNotOverflowStack) {
  Engine engine;
  // 50k chained awaits exercises symmetric transfer.
  auto leaf = [](Engine& e) -> Task<int> {
    co_await e.Sleep(1);
    co_return 1;
  };
  auto driver = [&leaf](Engine& e) -> Task<int> {
    int total = 0;
    for (int i = 0; i < 50000; ++i) {
      total += co_await leaf(e);
    }
    co_return total;
  };
  EXPECT_EQ(rfptest::RunSync(engine, driver(engine)), 50000);
}

}  // namespace
}  // namespace sim
