#include "src/sim/stats.h"

#include <cstdint>
#include <gtest/gtest.h>

#include "src/sim/random.h"

namespace sim {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MeanVarTest, ComputesMoments) {
  MeanVar mv;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    mv.Record(x);
  }
  EXPECT_EQ(mv.count(), 8u);
  EXPECT_DOUBLE_EQ(mv.mean(), 5.0);
  EXPECT_NEAR(mv.variance(), 32.0 / 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(mv.min(), 2.0);
  EXPECT_DOUBLE_EQ(mv.max(), 9.0);
}

TEST(MeanVarTest, EmptyIsZero) {
  MeanVar mv;
  EXPECT_EQ(mv.mean(), 0.0);
  EXPECT_EQ(mv.variance(), 0.0);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int64_t v = 0; v < 64; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 63);
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(1.0), 63);
  EXPECT_EQ(h.Percentile(0.5), 31);
}

TEST(HistogramTest, LargeValuesBoundedRelativeError) {
  Histogram h;
  const int64_t value = 5'780;  // Jakiro's mean latency, in ns
  h.Record(value);
  const int64_t p = h.Percentile(0.5);
  EXPECT_GE(p, value);
  EXPECT_LE(static_cast<double>(p - value), static_cast<double>(value) / 64.0 + 1);
}

TEST(HistogramTest, MeanIsExactRegardlessOfBinning) {
  Histogram h;
  h.Record(1000);
  h.Record(3000);
  EXPECT_DOUBLE_EQ(h.mean(), 2000.0);
}

TEST(HistogramTest, PercentileMonotonic) {
  Histogram h;
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBounded(1'000'000)));
  }
  int64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    int64_t p = h.Percentile(q);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(HistogramTest, CdfIsCompleteAndMonotone) {
  Histogram h;
  Rng rng(37);
  for (int i = 0; i < 5000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBounded(60'000)));
  }
  auto cdf = h.Cdf();
  ASSERT_FALSE(cdf.empty());
  double prev = 0.0;
  for (const auto& pt : cdf) {
    EXPECT_GE(pt.cumulative, prev);
    prev = pt.cumulative;
  }
  EXPECT_DOUBLE_EQ(cdf.back().cumulative, 1.0);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Record(100);
  b.Record(200);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 100);
  EXPECT_EQ(a.max(), 300);
  EXPECT_DOUBLE_EQ(a.mean(), 200.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Percentile(1.0), 0);
}

// ---- Edge-case regression pins ------------------------------------------------
// These lock down behaviors callers (the metrics exporter, the bench CDF
// printer) rely on: empty histograms read as all-zero, quantiles clamp to
// [0, 1], negative samples clamp to 0, and a zero-count RecordN is a no-op.

TEST(HistogramTest, EmptyReadsAsZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Percentile(1.0), 0);
  EXPECT_TRUE(h.Cdf().empty());
}

TEST(HistogramTest, QuantileBoundariesAndClamping) {
  Histogram h;
  h.Record(1);
  h.Record(100);  // 64 <= 100 < 128: still an exact bucket (shift is 0)
  // q = 0 resolves to the lowest non-empty bucket, q = 1 to the highest.
  EXPECT_EQ(h.Percentile(0.0), 1);
  EXPECT_EQ(h.Percentile(1.0), 100);
  // Out-of-range quantiles clamp instead of reading out of bounds.
  EXPECT_EQ(h.Percentile(-0.5), h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(1.5), h.Percentile(1.0));
}

TEST(HistogramTest, NegativeValuesClampInAllAccessors) {
  Histogram h;
  h.Record(7);
  h.Record(-1000);  // clamped to 0: must drag min to 0, not go negative
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 7);
  EXPECT_EQ(h.mean(), 3.5);  // sum counts the clamped 0, not -1000
  EXPECT_EQ(h.Percentile(0.0), 0);
}

TEST(HistogramTest, RecordNZeroIsNoOp) {
  Histogram h;
  h.RecordN(42, 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);  // min/max must not latch the value of an empty record
  h.RecordN(42, 3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
}

TEST(HistogramTest, MergeWithEmptyPreservesBothDirections) {
  Histogram a;
  a.Record(9);
  Histogram empty;
  a.Merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 9);
  EXPECT_EQ(a.max(), 9);
  Histogram b;
  b.Merge(a);  // merging into an empty histogram adopts min/max
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.min(), 9);
  EXPECT_EQ(b.max(), 9);
}

// Property sweep: percentile error is bounded by 1/64 relative for any value.
class HistogramErrorTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(HistogramErrorTest, RelativeErrorBounded) {
  Histogram h;
  const int64_t v = GetParam();
  h.Record(v);
  const int64_t p = h.Percentile(0.99);
  EXPECT_GE(p, v);
  EXPECT_LE(static_cast<double>(p), static_cast<double>(v) * (1.0 + 1.0 / 64.0) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HistogramErrorTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000, 4096, 100000,
                                           1'000'000, 123'456'789, 10'000'000'000LL));

TEST(FormatMopsTest, FormatsWithPrecision) {
  EXPECT_EQ(FormatMops(5.5234), "5.52");
  EXPECT_EQ(FormatMops(2.1, 1), "2.1");
}

}  // namespace
}  // namespace sim
