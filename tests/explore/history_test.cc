// Linearizability-oracle unit tests: legal and illegal histories, pending
// operations (apply-or-drop), delete semantics, per-key partitioning, the
// per-key DFS bound, and the recorder's bookkeeping.

#include "src/explore/history.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace explore {
namespace {

// Shorthand for hand-assembled histories. Orders are explicit; id is
// positional.
HistoryOp Op(OpKind kind, std::string key, std::string value, bool found,
             uint64_t invoke, uint64_t respond) {
  HistoryOp op;
  op.id = invoke;  // unique enough for tests
  op.kind = kind;
  op.key = std::move(key);
  op.value = std::move(value);
  op.found = found;
  op.invoke_order = invoke;
  op.respond_order = respond;
  return op;
}

TEST(LinCheckerTest, SequentialPutThenGetIsLinearizable) {
  std::vector<HistoryOp> ops{
      Op(OpKind::kPut, "k", "v1", false, 1, 2),
      Op(OpKind::kGet, "k", "v1", true, 3, 4),
  };
  LinResult r = CheckLinearizable(ops);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.keys_checked, 1u);
}

TEST(LinCheckerTest, StaleReadAfterCompletedPutIsNotLinearizable) {
  // GET invoked strictly after PUT responded must observe the write.
  std::vector<HistoryOp> ops{
      Op(OpKind::kPut, "k", "v1", false, 1, 2),
      Op(OpKind::kGet, "k", "", false, 3, 4),  // found=false: stale
  };
  LinResult r = CheckLinearizable(ops);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("key 'k'"), std::string::npos);
  EXPECT_NE(r.message.find("no linearization"), std::string::npos);
}

TEST(LinCheckerTest, ConcurrentGetMaySeeEitherSideOfOverlappingPut) {
  // GET overlaps the PUT: both found=false (before) and found=true "v1"
  // (after) are legal.
  for (bool found : {false, true}) {
    std::vector<HistoryOp> ops{
        Op(OpKind::kPut, "k", "v1", false, 1, 4),
        Op(OpKind::kGet, "k", found ? "v1" : "", found, 2, 3),
    };
    LinResult r = CheckLinearizable(ops);
    EXPECT_TRUE(r.ok) << "found=" << found << ": " << r.message;
  }
}

TEST(LinCheckerTest, ValueNeverWrittenIsNotLinearizable) {
  std::vector<HistoryOp> ops{
      Op(OpKind::kPut, "k", "v1", false, 1, 2),
      Op(OpKind::kGet, "k", "phantom", true, 3, 4),
  };
  EXPECT_FALSE(CheckLinearizable(ops).ok);
}

TEST(LinCheckerTest, PendingPutMayApplyOrDrop) {
  // A PUT with no response may have taken effect — or not. Both observations
  // are legal.
  for (bool saw_it : {false, true}) {
    std::vector<HistoryOp> ops{
        Op(OpKind::kPut, "k", "v1", false, 1, 0),  // pending
        Op(OpKind::kGet, "k", saw_it ? "v1" : "", saw_it, 2, 3),
    };
    LinResult r = CheckLinearizable(ops);
    EXPECT_TRUE(r.ok) << "saw_it=" << saw_it << ": " << r.message;
  }
}

TEST(LinCheckerTest, PendingPutCannotExplainADifferentValue) {
  std::vector<HistoryOp> ops{
      Op(OpKind::kPut, "k", "v1", false, 1, 0),  // pending
      Op(OpKind::kGet, "k", "v2", true, 2, 3),
  };
  EXPECT_FALSE(CheckLinearizable(ops).ok);
}

TEST(LinCheckerTest, DeleteFoundRequiresPresence) {
  // DELETE returning found=true on a key that was never written: illegal.
  std::vector<HistoryOp> bad{
      Op(OpKind::kDelete, "k", "", true, 1, 2),
  };
  EXPECT_FALSE(CheckLinearizable(bad).ok);
  // found=false on the absent key: fine.
  std::vector<HistoryOp> good{
      Op(OpKind::kDelete, "k", "", false, 1, 2),
  };
  EXPECT_TRUE(CheckLinearizable(good).ok);
  // PUT, DELETE(found), GET(absent): the classic legal sequence.
  std::vector<HistoryOp> full{
      Op(OpKind::kPut, "k", "v1", false, 1, 2),
      Op(OpKind::kDelete, "k", "", true, 3, 4),
      Op(OpKind::kGet, "k", "", false, 5, 6),
  };
  EXPECT_TRUE(CheckLinearizable(full).ok);
}

TEST(LinCheckerTest, InitialValuesSeedTheRegister) {
  std::vector<HistoryOp> ops{
      Op(OpKind::kGet, "k", "seeded", true, 1, 2),
  };
  EXPECT_FALSE(CheckLinearizable(ops).ok);  // unseeded keys start absent
  EXPECT_TRUE(CheckLinearizable(ops, {{"k", "seeded"}}).ok);
}

TEST(LinCheckerTest, KeysAreCheckedIndependently) {
  // Key "a" is fine; key "b" carries the violation — the message names it.
  std::vector<HistoryOp> ops{
      Op(OpKind::kPut, "a", "v1", false, 1, 2),
      Op(OpKind::kGet, "a", "v1", true, 3, 4),
      Op(OpKind::kPut, "b", "v1", false, 5, 6),
      Op(OpKind::kGet, "b", "", false, 7, 8),
  };
  LinResult r = CheckLinearizable(ops);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("key 'b'"), std::string::npos);
  EXPECT_EQ(r.message.find("key 'a'"), std::string::npos);
}

TEST(LinCheckerTest, PendingGetsAreDropped) {
  // A GET that never responded constrains nothing.
  std::vector<HistoryOp> ops{
      Op(OpKind::kPut, "k", "v1", false, 1, 2),
      Op(OpKind::kGet, "k", "", false, 3, 0),  // pending GET
      Op(OpKind::kGet, "k", "v1", true, 4, 5),
  };
  EXPECT_TRUE(CheckLinearizable(ops).ok);
}

TEST(LinCheckerTest, OversizedKeyFailsWithBoundMessage) {
  std::vector<HistoryOp> ops;
  for (uint64_t i = 0; i < 5; ++i) {
    ops.push_back(Op(OpKind::kPut, "k", "v" + std::to_string(i), false,
                     2 * i + 1, 2 * i + 2));
  }
  LinResult r = CheckLinearizable(ops, {}, /*max_ops_per_key=*/4);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("DFS bound"), std::string::npos);
}

TEST(LinCheckerTest, ContendedWindowHistoryIsExplored) {
  // Three overlapping PUTs and interleaved GETs — exercises the memoized
  // DFS beyond trivial sizes. Every GET value is one of the written values
  // in an order consistent with real time.
  std::vector<HistoryOp> ops{
      Op(OpKind::kPut, "k", "a", false, 1, 5),
      Op(OpKind::kPut, "k", "b", false, 2, 6),
      Op(OpKind::kPut, "k", "c", false, 3, 7),
      Op(OpKind::kGet, "k", "b", true, 4, 8),
      Op(OpKind::kGet, "k", "c", true, 9, 10),
  };
  LinResult r = CheckLinearizable(ops);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_GT(r.states_explored, 0u);

  // Flip the last read to a value overwritten before its invocation in
  // every legal order: "a" after "c" was read is fine... but reading "b"
  // then "a" then requiring "c" read earlier makes it illegal.
  std::vector<HistoryOp> bad{
      Op(OpKind::kPut, "k", "a", false, 1, 5),
      Op(OpKind::kPut, "k", "b", false, 2, 6),
      Op(OpKind::kGet, "k", "a", true, 7, 8),
      Op(OpKind::kGet, "k", "b", true, 9, 10),
      Op(OpKind::kGet, "k", "a", true, 11, 12),
  };
  // a, b, a with no third write: the register can't oscillate back.
  EXPECT_FALSE(CheckLinearizable(bad).ok);
}

TEST(HistoryRecorderTest, RecordsInvokeResponsePairs) {
  HistoryRecorder rec;
  uint64_t put = rec.OnInvoke(OpKind::kPut, "k", "v1");
  rec.OnPutResponse(put);
  uint64_t get = rec.OnInvoke(OpKind::kGet, "k");
  rec.OnGetResponse(get, true, std::string_view("v1"));
  uint64_t del = rec.OnInvoke(OpKind::kDelete, "k");
  rec.OnDeleteResponse(del, true);

  ASSERT_EQ(rec.ops().size(), 3u);
  EXPECT_EQ(rec.completed_ops(), 3u);
  EXPECT_LT(rec.ops()[0].invoke_order, rec.ops()[0].respond_order);
  EXPECT_LT(rec.ops()[0].respond_order, rec.ops()[1].invoke_order);
  EXPECT_TRUE(rec.CheckLinearizable().ok);

  rec.Clear();
  EXPECT_TRUE(rec.ops().empty());
  EXPECT_EQ(rec.completed_ops(), 0u);
}

TEST(HistoryRecorderTest, UnrespondedOpsStayPending) {
  HistoryRecorder rec;
  rec.OnInvoke(OpKind::kPut, "k", "v1");  // never responded
  ASSERT_EQ(rec.ops().size(), 1u);
  EXPECT_TRUE(rec.ops()[0].pending());
  EXPECT_EQ(rec.completed_ops(), 0u);
  EXPECT_TRUE(rec.CheckLinearizable().ok);
}

TEST(HistoryRecorderTest, ApplyEventsAreDiagnosticsOnly) {
  HistoryRecorder rec;
  rec.OnApply(OpKind::kPut, "k");
  rec.OnApply(OpKind::kGet, "k");
  EXPECT_EQ(rec.applies().size(), 2u);
  EXPECT_TRUE(rec.ops().empty());  // applies never enter the judged history
  EXPECT_TRUE(rec.CheckLinearizable().ok);
}

TEST(HistoryRecorderTest, CheckStrictThrowsWithScheduleTrace) {
  HistoryRecorder rec;
  uint64_t put = rec.OnInvoke(OpKind::kPut, "k", "v1");
  rec.OnPutResponse(put);
  uint64_t get = rec.OnInvoke(OpKind::kGet, "k");
  rec.OnGetResponse(get, false, std::string_view(""));

  try {
    rec.CheckStrict("2,0,1");
    FAIL() << "expected LinearizabilityError";
  } catch (const LinearizabilityError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("not linearizable"), std::string::npos);
    EXPECT_NE(what.find("[schedule=2,0,1]"), std::string::npos);
  }
}

TEST(HistoryRecorderTest, ByteSpanOverloadsMatchStringForm) {
  HistoryRecorder rec;
  const std::string key = "key16bytes_pad__";
  const std::string value = "value";
  auto key_span = std::as_bytes(std::span(key.data(), key.size()));
  auto value_span = std::as_bytes(std::span(value.data(), value.size()));
  uint64_t put = rec.OnInvoke(OpKind::kPut, key_span, value_span);
  rec.OnPutResponse(put);
  uint64_t get = rec.OnInvoke(OpKind::kGet, key_span);
  rec.OnGetResponse(get, true, value_span);
  ASSERT_EQ(rec.ops().size(), 2u);
  EXPECT_EQ(rec.ops()[0].key, key);
  EXPECT_EQ(rec.ops()[0].value, value);
  EXPECT_TRUE(rec.CheckLinearizable().ok);
}

}  // namespace
}  // namespace explore
