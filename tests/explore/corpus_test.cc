// Explorer corpus tests: for every scenario in src/explore/corpus.h the
// suite asserts both directions under one fixed CI budget —
//
//   * with the mutant knob flipped, the explorer finds a failing schedule
//     within the budget and shrinks it to a minimal decision trace that
//     replays to the same failure;
//   * with the real code, the same exploration (same budget, same seeds,
//     plus the linearizability oracle where the scenario is a KV history)
//     passes every schedule.

#include "src/explore/corpus.h"

#include <string>

#include <gtest/gtest.h>

#include "src/explore/explorer.h"
#include "src/fault/plan.h"
#include "src/obs/metrics.h"

namespace explore {
namespace {

using corpus::CowPinnedScenario;
using corpus::LateDuplicateScenario;
using corpus::SplitBrainScenario;
using corpus::StealBusyScenario;
using corpus::StealCrashPlans;
using corpus::SwitchRaceScenario;

Options CorpusOptions(const std::string& label) {
  Options options;
  options.max_schedules = 12;  // the CI budget: small, and it must suffice
  options.exhaustive_share_pct = 50;
  options.seed = 1;
  options.label = label;
  return options;
}

// Runs the mutant side of a corpus entry: exploration must fail within the
// budget, and the shrunk trace must replay to a failure.
void ExpectMutantCaught(const Scenario& scenario, Options options,
                        const fault::FaultPlan& replay_plan = fault::FaultPlan()) {
  Report report = Explorer(options).Run(scenario);
  ASSERT_TRUE(report.failed) << report.Summary();
  EXPECT_EQ(report.violations, 1u);
  EXPECT_FALSE(report.failure_message.empty());
  // The minimal trace is a replayable artifact: replaying it (under the
  // failing plan when the corpus entry crosses fault plans) fails again.
  Outcome replayed = Replay(scenario, report.minimal_trace, replay_plan);
  EXPECT_FALSE(replayed.ok);
  EXPECT_FALSE(replayed.message.empty());
}

void ExpectCleanPasses(const Scenario& scenario, Options options) {
  Report report = Explorer(options).Run(scenario);
  EXPECT_FALSE(report.failed) << report.failure_message;
  EXPECT_EQ(report.violations, 0u);
  // Either the budget was spent, or DFS proved the space smaller than it.
  EXPECT_TRUE(report.exhausted || report.schedules == options.max_schedules)
      << report.Summary();
  EXPECT_GE(report.schedules, 1u);
}

TEST(ExploreCorpusTest, LateDuplicateMutantIsCaught) {
  Report report =
      Explorer(CorpusOptions("late_duplicate_mutant")).Run(LateDuplicateScenario(true));
  ASSERT_TRUE(report.failed) << report.Summary();
  // The lin oracle names the violation and carries the failing schedule.
  EXPECT_NE(report.failure_message.find("not linearizable"), std::string::npos)
      << report.failure_message;
  EXPECT_NE(report.failure_message.find("key 'k'"), std::string::npos);
  EXPECT_NE(report.failure_message.find("[schedule="), std::string::npos);
  Outcome replayed = Replay(LateDuplicateScenario(true), report.minimal_trace);
  EXPECT_FALSE(replayed.ok);
}

TEST(ExploreCorpusTest, LateDuplicateCleanPasses) {
  ExpectCleanPasses(LateDuplicateScenario(false), CorpusOptions("late_duplicate_clean"));
}

TEST(ExploreCorpusTest, StealBusyMutantIsCaught) {
  Options options = CorpusOptions("steal_busy_mutant");
  options.fault_plans = StealCrashPlans();
  Report report = Explorer(options).Run(StealBusyScenario(true));
  ASSERT_TRUE(report.failed) << report.Summary();
  Outcome replayed = Replay(StealBusyScenario(true), report.minimal_trace,
                            options.fault_plans[report.failing_plan_index]);
  EXPECT_FALSE(replayed.ok);
}

TEST(ExploreCorpusTest, StealBusyCleanPasses) {
  Options options = CorpusOptions("steal_busy_clean");
  options.fault_plans = StealCrashPlans();
  ExpectCleanPasses(StealBusyScenario(false), options);
}

TEST(ExploreCorpusTest, CowPinnedMutantIsCaught) {
  Report report = Explorer(CorpusOptions("cow_pinned_mutant")).Run(CowPinnedScenario(true));
  ASSERT_TRUE(report.failed) << report.Summary();
  // The strict checker attributes the race. This bug is schedule-independent
  // (it fires on the FIFO baseline too), so the minimal trace shrinks all the
  // way to empty — and still replays to the same violation.
  EXPECT_NE(report.failure_message.find("race.fetch_store"), std::string::npos)
      << report.failure_message;
  EXPECT_TRUE(report.minimal_trace.empty());
  Outcome replayed = Replay(CowPinnedScenario(true), report.minimal_trace);
  EXPECT_FALSE(replayed.ok);
  EXPECT_NE(replayed.message.find("race.fetch_store"), std::string::npos);
}

TEST(ExploreCorpusTest, CowPinnedCleanPassesAndCopiesOnWrite) {
  ExpectCleanPasses(CowPinnedScenario(false), CorpusOptions("cow_pinned_clean"));
}

TEST(ExploreCorpusTest, SwitchRaceMutantIsCaught) {
  ExpectMutantCaught(SwitchRaceScenario(true), CorpusOptions("switch_race_mutant"));
}

TEST(ExploreCorpusTest, SwitchRaceCleanPasses) {
  ExpectCleanPasses(SwitchRaceScenario(false), CorpusOptions("switch_race_clean"));
}

TEST(ExploreCorpusTest, SplitBrainMutantIsCaught) {
  Report report = Explorer(CorpusOptions("split_brain_mutant")).Run(SplitBrainScenario(true));
  ASSERT_TRUE(report.failed) << report.Summary();
  // Depending on the check mode the failure surfaces as a linearizability
  // violation (the stale write is lost) or as the checker's epoch-regression
  // invariant; either way it is the split brain, not a wedged failover.
  EXPECT_TRUE(report.failure_message.find("not linearizable") != std::string::npos ||
              report.failure_message.find("epoch_regression") != std::string::npos)
      << report.failure_message;
  Outcome replayed = Replay(SplitBrainScenario(true), report.minimal_trace);
  EXPECT_FALSE(replayed.ok);
}

TEST(ExploreCorpusTest, SplitBrainCleanPasses) {
  ExpectCleanPasses(SplitBrainScenario(false), CorpusOptions("split_brain_clean"));
}

// The corpus reports through obs: every entry above left its schedule count
// under its own {scenario=<label>} metric.
TEST(ExploreCorpusTest, ExplorationMetricsAreRecorded) {
  Options options = CorpusOptions("metrics_probe");
  Report report = Explorer(options).Run(LateDuplicateScenario(false));
  auto* schedules = obs::MetricsRegistry::Default().GetCounter(
      "explore.schedules", {{"scenario", "metrics_probe"}});
  EXPECT_EQ(schedules->value(), report.schedules);
  EXPECT_GT(schedules->value(), 0u);
}

// Entries() drives the CI corpus runner; it must cover every scenario above.
TEST(ExploreCorpusTest, EntriesEnumerateTheWholeCorpus) {
  const auto entries = corpus::Entries();
  ASSERT_EQ(entries.size(), 5u);
  for (const auto& entry : entries) {
    EXPECT_NE(entry.make, nullptr) << entry.name;
  }
  EXPECT_EQ(entries[1].name, "steal_busy");
  ASSERT_NE(entries[1].plans, nullptr);
  EXPECT_EQ(entries[1].plans().size(), StealCrashPlans().size());
}

}  // namespace
}  // namespace explore
