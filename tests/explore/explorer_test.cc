// Explorer unit tests: lexicographic DFS stepping (NextTrace), exhaustive
// enumeration counts, seed-deterministic random sampling, shrinking to a
// minimal failing trace, fault-plan cross-product, and Replay.

#include "src/explore/explorer.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "src/sim/schedule.h"
#include "src/sim/time.h"

namespace explore {
namespace {

std::vector<sim::Decision> Decisions(std::initializer_list<std::pair<uint32_t, uint32_t>> list) {
  std::vector<sim::Decision> out;
  for (const auto& [arity, choice] : list) {
    out.push_back(sim::Decision{arity, choice});
  }
  return out;
}

TEST(NextTraceTest, IncrementsDeepestOpenDecision) {
  sim::DecisionTrace next;
  // Tree of arities (3, 2): after leaf {0, 0} the next leaf is {0, 1}.
  ASSERT_TRUE(NextTrace(Decisions({{3, 0}, {2, 0}}), 24, &next));
  EXPECT_EQ(next, (sim::DecisionTrace{0, 1}));
  // After {0, 1} the deepest open decision is the first: {1} (suffix reset).
  ASSERT_TRUE(NextTrace(Decisions({{3, 0}, {2, 1}}), 24, &next));
  EXPECT_EQ(next, (sim::DecisionTrace{1}));
  // Last leaf: nothing left.
  EXPECT_FALSE(NextTrace(Decisions({{3, 2}, {2, 1}}), 24, &next));
}

TEST(NextTraceTest, DepthBoundFreezesDeeperDecisions) {
  sim::DecisionTrace next;
  // With max_depth 1 only the first decision is incremented; the second
  // (arity 5, choice 0) is out of bounds and never stepped.
  ASSERT_TRUE(NextTrace(Decisions({{3, 0}, {5, 0}}), 1, &next));
  EXPECT_EQ(next, (sim::DecisionTrace{1}));
  EXPECT_FALSE(NextTrace(Decisions({{3, 2}, {5, 0}}), 1, &next));
}

TEST(NextTraceTest, NoDecisionsMeansExhausted) {
  sim::DecisionTrace next;
  EXPECT_FALSE(NextTrace({}, 24, &next));
}

// Scenario: three same-instant events append their ids; the outcome hash
// encodes the permutation. 3! = 6 leaves, all distinct.
Scenario PermutationScenario(std::vector<std::vector<int>>* orders = nullptr) {
  return [orders](ScenarioRun& run) {
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
      run.engine.ScheduleAt(sim::Micros(1), [&order, i] { order.push_back(i); });
    }
    run.engine.Run();
    if (orders != nullptr) {
      orders->push_back(order);
    }
    uint64_t hash = 0;
    for (int v : order) {
      hash = hash * 10 + static_cast<uint64_t>(v) + 1;
    }
    return Outcome::Pass(hash);
  };
}

TEST(ExplorerTest, ExhaustiveEnumerationCoversAllPermutations) {
  Options options;
  options.max_schedules = 64;
  options.exhaustive_share_pct = 100;
  options.label = "perm";
  std::vector<std::vector<int>> orders;
  Report report = Explorer(options).Run(PermutationScenario(&orders));
  EXPECT_FALSE(report.failed);
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.schedules, 6u);
  EXPECT_EQ(report.distinct_states, 6u);
  EXPECT_EQ(report.violations, 0u);
  std::set<std::vector<int>> distinct(orders.begin(), orders.end());
  EXPECT_EQ(distinct.size(), 6u);  // every permutation of {0,1,2} reached
  EXPECT_NE(report.Summary().find("6"), std::string::npos);
}

TEST(ExplorerTest, BudgetStopsEnumerationEarly) {
  Options options;
  options.max_schedules = 4;
  options.exhaustive_share_pct = 100;
  Report report = Explorer(options).Run(PermutationScenario());
  EXPECT_EQ(report.schedules, 4u);
  EXPECT_FALSE(report.exhausted);
  EXPECT_FALSE(report.failed);
}

TEST(ExplorerTest, RandomSamplingIsSeedDeterministic) {
  auto run_with_seed = [](uint64_t seed) {
    Options options;
    options.max_schedules = 16;
    options.exhaustive_share_pct = 0;  // purely random
    options.seed = seed;
    std::vector<std::vector<int>> orders;
    Explorer(options).Run(PermutationScenario(&orders));
    return orders;
  };
  const auto a = run_with_seed(42);
  const auto b = run_with_seed(42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 16u);
  const auto c = run_with_seed(43);
  EXPECT_NE(a, c);  // 6^16 orderings; a collision would be astronomical
}

// Fails exactly when event 2 runs first — reachable only off the FIFO path.
Scenario FailIfTwoFirst() {
  return [](ScenarioRun& run) {
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
      run.engine.ScheduleAt(sim::Micros(1), [&order, i] { order.push_back(i); });
    }
    run.engine.Run();
    if (order[0] == 2) {
      return Outcome::Fail("event 2 preempted the queue");
    }
    return Outcome::Pass();
  };
}

TEST(ExplorerTest, FirstFailureIsShrunkToMinimalTrace) {
  Options options;
  options.max_schedules = 64;
  options.exhaustive_share_pct = 100;
  Report report = Explorer(options).Run(FailIfTwoFirst());
  ASSERT_TRUE(report.failed);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_EQ(report.failure_message, "event 2 preempted the queue");
  // Lexicographic DFS steps {} -> {0,1} -> {1} -> {1,1} -> {2}: the failure
  // is reached at the one-decision trace, which is already minimal.
  EXPECT_EQ(report.failing_trace, (sim::DecisionTrace{2}));
  EXPECT_EQ(report.minimal_trace, (sim::DecisionTrace{2}));
  EXPECT_FALSE(report.exhausted);  // stopped at the failure

  // The minimal trace is a replayable artifact.
  Outcome replayed = Replay(FailIfTwoFirst(), report.minimal_trace);
  EXPECT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.message, "event 2 preempted the queue");
  // And the FIFO schedule (empty trace) passes.
  EXPECT_TRUE(Replay(FailIfTwoFirst(), {}).ok);
}

TEST(ExplorerTest, ScenarioExceptionsBecomeFailures) {
  Options options;
  options.max_schedules = 8;
  Report report = Explorer(options).Run([](ScenarioRun& run) -> Outcome {
    run.engine.Run();
    throw std::runtime_error("strict checker tripped");
  });
  ASSERT_TRUE(report.failed);
  EXPECT_NE(report.failure_message.find("strict checker tripped"), std::string::npos);
}

TEST(ExplorerTest, FaultPlansCrossScheduleExploration) {
  Options options;
  options.max_schedules = 12;
  options.exhaustive_share_pct = 100;
  options.fault_plans.emplace_back();  // empty plan
  options.fault_plans.emplace_back();
  options.fault_plans.back().NicStall(sim::Micros(1), 0, true, sim::Micros(2));

  std::set<size_t> plans_seen;
  std::vector<size_t> plan_sizes;
  Report report = Explorer(options).Run([&](ScenarioRun& run) {
    plans_seen.insert(run.plan_index);
    plan_sizes.push_back(run.plan.size());
    run.engine.ScheduleAt(sim::Micros(1), [] {});
    run.engine.ScheduleAt(sim::Micros(1), [] {});
    run.engine.Run();
    return Outcome::Pass(run.plan_index);
  });
  EXPECT_FALSE(report.failed);
  EXPECT_TRUE(report.exhausted);  // 2 leaves per plan, budget 6 each
  EXPECT_EQ(plans_seen, (std::set<size_t>{0, 1}));
  // The handed-in plan matches the index: plan 0 empty, plan 1 has 1 event.
  for (size_t i = 0; i < plan_sizes.size(); ++i) {
    EXPECT_LE(plan_sizes[i], 1u);
  }
  EXPECT_GE(report.distinct_states, 2u);  // state hash separates the plans
}

TEST(ExplorerTest, ExplorationIsRepeatableEndToEnd) {
  // Same options -> identical report (determinism of the whole pipeline).
  Options options;
  options.max_schedules = 20;
  options.exhaustive_share_pct = 50;
  options.seed = 7;
  Report a = Explorer(options).Run(PermutationScenario());
  Report b = Explorer(options).Run(PermutationScenario());
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.distinct_states, b.distinct_states);
  EXPECT_EQ(a.failed, b.failed);
}

}  // namespace
}  // namespace explore
