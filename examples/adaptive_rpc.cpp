// The hybrid paradigm switch, live.
//
// An analytics RPC service whose request cost changes at runtime: cheap
// point queries at first, then a phase of heavy aggregation queries, then
// cheap ones again. Watch the channel switch from remote fetching to
// server-reply when requests become slow (saving client CPU) and back once
// they are fast again — the mechanism of paper Section 3.2 / Figures 14-15.
//
//   $ ./examples/adaptive_rpc

#include <cstdio>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"

namespace {

constexpr uint16_t kQuery = 7;

// Three phases: fast (0.5 us), slow aggregations (20 us), fast again.
sim::Time PhaseCost(int call_index) {
  if (call_index < 40 || call_index >= 80) {
    return sim::Nanos(500);
  }
  return sim::Micros(20);
}

sim::Task<void> AnalyticsClient(sim::Engine& engine, rfp::Channel* channel) {
  rfp::RpcClient client(channel);
  std::vector<std::byte> request(8);
  std::vector<std::byte> response(256);
  rfp::Mode last_mode = channel->client_mode();
  std::printf("[%7.1f us] start in %s mode\n", sim::ToMicros(engine.now()),
              rfp::ModeName(last_mode));
  for (int i = 0; i < 120; ++i) {
    request[0] = static_cast<std::byte>(i);
    const sim::Time start = engine.now();
    co_await client.Call(kQuery, request, response);
    const rfp::Mode mode = channel->client_mode();
    if (mode != last_mode) {
      std::printf("[%7.1f us] call %3d: switched to %s (server time %u us, latency %.1f us)\n",
                  sim::ToMicros(engine.now()), i, rfp::ModeName(mode),
                  channel->last_server_time_us(),
                  sim::ToMicros(engine.now() - start));
      last_mode = mode;
    }
  }
  const rfp::Channel::Stats& stats = channel->stats();
  std::printf("[%7.1f us] done: %llu calls, %llu failed fetches, "
              "%llu switches to reply, %llu back to fetch\n",
              sim::ToMicros(engine.now()), static_cast<unsigned long long>(stats.calls),
              static_cast<unsigned long long>(stats.failed_fetches),
              static_cast<unsigned long long>(stats.switches_to_reply),
              static_cast<unsigned long long>(stats.switches_to_fetch));
}

}  // namespace

int main() {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("analytics-server");
  rdma::Node& client_node = fabric.AddNode("dashboard");

  rfp::RpcServer server(fabric, server_node, 1);
  int served = 0;
  server.RegisterHandler(kQuery, [&served](const rfp::HandlerContext&,
                                           std::span<const std::byte>,
                                           std::span<std::byte> response) -> rfp::HandlerResult {
    response[0] = std::byte{42};
    return rfp::HandlerResult{16, PhaseCost(served++)};
  });

  rfp::RfpOptions options;  // adaptive by default: R=5, switch after 2 slow calls
  rfp::Channel* channel = server.AcceptChannel(client_node, options, 0);
  server.Start();
  engine.Spawn(AnalyticsClient(engine, channel));
  engine.RunUntil(sim::Millis(10));
  server.Stop();
  return 0;
}
