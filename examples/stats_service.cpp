// Beyond key-value: a metrics/statistics service over RFP.
//
// The paper's introduction argues that server-bypass designs are
// application-specific — "a data structure designed for serving GET/PUT
// operations on a key-value store cannot be used for other kinds of
// applications, such as those with simple statistic operations" — while
// RFP, being plain RPC, serves any service unchanged. This example is that
// other kind of application: a telemetry aggregator with INCREMENT,
// RECORD-SAMPLE and QUANTILE-QUERY operations, running over exactly the
// same channels, with the same remote-fetch data path, as Jakiro.
//
//   $ ./examples/stats_service [--json=PATH] [--trace=PATH]
//
// --json dumps the process-wide metrics registry (channel/NIC/RPC counters
// flushed by the simulation) as JSON; --trace writes a Chrome-trace-event
// file of the run, loadable in Perfetto. See docs/observability.md.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rdma/fabric.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace {

constexpr uint16_t kIncrement = 1;  // [u32 counter_id][u64 delta] -> [u64 new_value]
constexpr uint16_t kRecord = 2;     // [u32 series_id][u64 sample] -> []
constexpr uint16_t kQuantile = 3;   // [u32 series_id][u16 permille] -> [u64 value]

// EREW: each server thread owns the counters/series whose id hashes to it.
struct Shard {
  std::unordered_map<uint32_t, uint64_t> counters;
  std::unordered_map<uint32_t, sim::Histogram> series;
};

template <typename T>
T Read(std::span<const std::byte> bytes, size_t offset) {
  T v;
  std::memcpy(&v, bytes.data() + offset, sizeof(T));
  return v;
}

template <typename T>
size_t Write(std::span<std::byte> bytes, size_t offset, T v) {
  std::memcpy(bytes.data() + offset, &v, sizeof(T));
  return offset + sizeof(T);
}

}  // namespace

// The simulation proper; scoped so that every channel/NIC/RPC object has
// been destroyed — and has flushed its metrics — before main exports them.
void RunSimulation(obs::Tracer* tracer) {
  sim::Engine engine;
  if (tracer != nullptr) {
    engine.set_trace_sink(tracer);
    tracer->BeginRun("stats-service");
  }
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("metrics-server");
  const int kThreads = 4;
  rfp::RpcServer server(fabric, server_node, kThreads);
  std::vector<Shard> shards(kThreads);

  server.RegisterHandler(kIncrement, [&shards](const rfp::HandlerContext& ctx,
                                               std::span<const std::byte> req,
                                               std::span<std::byte> resp) -> rfp::HandlerResult {
    const uint32_t id = Read<uint32_t>(req, 0);
    const uint64_t delta = Read<uint64_t>(req, 4);
    const uint64_t value = shards[static_cast<size_t>(ctx.thread_index)].counters[id] += delta;
    Write(resp, 0, value);
    return {8, sim::Nanos(120)};
  });
  server.RegisterHandler(kRecord, [&shards](const rfp::HandlerContext& ctx,
                                            std::span<const std::byte> req,
                                            std::span<std::byte>) -> rfp::HandlerResult {
    const uint32_t id = Read<uint32_t>(req, 0);
    shards[static_cast<size_t>(ctx.thread_index)].series[id].Record(
        static_cast<int64_t>(Read<uint64_t>(req, 4)));
    return {0, sim::Nanos(180)};
  });
  server.RegisterHandler(kQuantile, [&shards](const rfp::HandlerContext& ctx,
                                              std::span<const std::byte> req,
                                              std::span<std::byte> resp) -> rfp::HandlerResult {
    const uint32_t id = Read<uint32_t>(req, 0);
    const double q = Read<uint16_t>(req, 4) / 1000.0;
    auto& series = shards[static_cast<size_t>(ctx.thread_index)].series[id];
    Write(resp, 0, static_cast<uint64_t>(series.Percentile(q)));
    return {8, sim::Nanos(400)};  // quantile scan is the "heavy" op
  });

  // 12 agent clients emit telemetry; one dashboard client queries quantiles.
  const int kAgents = 12;
  std::vector<rdma::Node*> nodes;
  std::vector<std::unique_ptr<rfp::RpcClient>> stubs;
  auto route = [&](uint32_t id) { return static_cast<int>(id % kThreads); };
  std::vector<uint64_t> emitted(kAgents, 0);
  const sim::Time deadline = sim::Millis(10);

  for (int a = 0; a < kAgents; ++a) {
    if (a < 4) {
      nodes.push_back(&fabric.AddNode("agent-host" + std::to_string(a)));
    }
    // Each agent needs a stub per server thread (EREW routing by metric id).
    auto agent_stubs = std::make_shared<std::vector<std::unique_ptr<rfp::RpcClient>>>();
    for (int t = 0; t < kThreads; ++t) {
      agent_stubs->push_back(std::make_unique<rfp::RpcClient>(
          server.AcceptChannel(*nodes[static_cast<size_t>(a % 4)], rfp::RfpOptions{}, t)));
    }
    engine.Spawn([](sim::Engine& eng, std::shared_ptr<std::vector<std::unique_ptr<rfp::RpcClient>>>
                                          stubs_by_thread,
                    int agent_id, int threads, sim::Time end, uint64_t* count) -> sim::Task<void> {
      sim::Rng rng(static_cast<uint64_t>(agent_id) + 100);
      std::vector<std::byte> req(16);
      std::vector<std::byte> resp(64);
      while (eng.now() < end) {
        const uint32_t metric = static_cast<uint32_t>(rng.NextBounded(64));
        const int owner = static_cast<int>(metric % static_cast<uint32_t>(threads));
        if (rng.NextBernoulli(0.5)) {
          Write(req, Write(req, 0, metric), uint64_t{1});
          co_await (*stubs_by_thread)[static_cast<size_t>(owner)]->Call(
              kIncrement, std::span<const std::byte>(req.data(), 12), resp);
        } else {
          Write(req, Write(req, 0, metric), 1000 + rng.NextBounded(9000));  // latency sample
          co_await (*stubs_by_thread)[static_cast<size_t>(owner)]->Call(
              kRecord, std::span<const std::byte>(req.data(), 12), resp);
        }
        ++*count;
      }
    }(engine, agent_stubs, a, kThreads, deadline, &emitted[static_cast<size_t>(a)]));
    (void)stubs;
  }

  // Dashboard: periodically queries p99 of series 7.
  rdma::Node& dash_node = fabric.AddNode("dashboard");
  auto dash_stub = std::make_shared<rfp::RpcClient>(
      server.AcceptChannel(dash_node, rfp::RfpOptions{}, route(7)));
  engine.Spawn([](sim::Engine& eng, std::shared_ptr<rfp::RpcClient> stub,
                  sim::Time end) -> sim::Task<void> {
    std::vector<std::byte> req(8);
    std::vector<std::byte> resp(64);
    while (eng.now() < end) {
      co_await eng.Sleep(sim::Millis(2));
      Write(req, Write(req, 0, uint32_t{7}), uint16_t{990});
      co_await stub->Call(kQuantile, std::span<const std::byte>(req.data(), 6), resp);
      std::printf("[%5.1f ms] dashboard: series 7 p99 = %llu\n", sim::ToMillis(eng.now()),
                  static_cast<unsigned long long>(Read<uint64_t>(resp, 0)));
    }
  }(engine, dash_stub, deadline));

  server.Start();
  engine.RunUntil(deadline);
  server.Stop();

  uint64_t total = 0;
  for (uint64_t e : emitted) {
    total += e;
  }
  std::printf("\n%llu telemetry ops in %.0f ms (%.2f MOPS) over the same RFP channels a\n"
              "key-value store uses — no application-specific remote data structure needed\n",
              static_cast<unsigned long long>(total), sim::ToMillis(engine.now()),
              static_cast<double>(total) / sim::ToSeconds(deadline) / 1e6);
}

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    }
  }
  obs::Tracer tracer;
  RunSimulation(trace_path.empty() ? nullptr : &tracer);

  if (!json_path.empty()) {
    std::string out;
    obs::JsonWriter w(&out);
    w.BeginObject();
    w.Field("example", "stats_service");
    w.Key("metrics");
    obs::MetricsRegistry::Default().WriteJson(w);
    w.EndObject();
    out.push_back('\n');
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "stats_service: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
  }
  if (!trace_path.empty() && !tracer.WriteFile(trace_path)) {
    std::fprintf(stderr, "stats_service: cannot write %s\n", trace_path.c_str());
    return 1;
  }
  return 0;
}
