// A Memcached-style caching tier built on Jakiro (the paper's motivating
// application): a small cluster of web frontends caching session objects in
// an RFP-based in-memory key-value store.
//
// Demonstrates the full public KV API (Put/Get/Delete), EREW partitioning
// across server threads, LRU eviction under pressure, and the throughput
// the paradigm sustains — all observable from the printed statistics.
//
//   $ ./examples/kv_cache

#include <cstdio>
#include <string>
#include <vector>

#include "src/kv/jakiro.h"
#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/workload/ycsb.h"

namespace {

// A frontend worker: caches rendered session blobs, serving a mix of
// lookups and refreshes over its own key range plus a shared hot set.
sim::Task<void> Frontend(sim::Engine& engine, kv::JakiroClient* cache, int id,
                         uint64_t* hits, uint64_t* misses, sim::Time deadline) {
  workload::WorkloadSpec spec;
  spec.num_keys = 50'000;
  spec.get_fraction = 0.90;
  spec.distribution = workload::KeyDistribution::kZipfian;  // sessions are skewed
  spec.value_size = workload::ValueSizeSpec::Fixed(120);    // rendered fragment
  workload::Generator gen(spec, static_cast<uint64_t>(id));

  std::vector<std::byte> key(16);
  std::vector<std::byte> value(4096);
  std::vector<std::byte> out(4096);
  while (engine.now() < deadline) {
    const workload::Op op = gen.Next();
    workload::MakeKey(op.key_id, key);
    if (op.type == workload::OpType::kGet) {
      auto got = co_await cache->Get(key, out);
      if (got.has_value()) {
        ++*hits;
      } else {
        // Cache miss: render (simulated by the generator) and fill.
        ++*misses;
        workload::FillValue(op.key_id, std::span<std::byte>(value.data(), op.value_size));
        co_await cache->Put(key, std::span<const std::byte>(value.data(), op.value_size));
      }
    } else {
      workload::FillValue(op.key_id, std::span<std::byte>(value.data(), op.value_size));
      co_await cache->Put(key, std::span<const std::byte>(value.data(), op.value_size));
    }
  }
}

}  // namespace

int main() {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& cache_node = fabric.AddNode("cache-server");

  // A deliberately small cache so LRU eviction is visible.
  kv::JakiroConfig config;
  config.server_threads = 4;
  config.buckets_per_partition = 1024;  // 4 threads x 8192 slots = 32k entries
  kv::JakiroServer server(fabric, cache_node, config);

  const int kFrontends = 8;
  std::vector<std::unique_ptr<kv::JakiroClient>> clients;
  std::vector<uint64_t> hits(kFrontends, 0);
  std::vector<uint64_t> misses(kFrontends, 0);
  std::vector<rdma::Node*> nodes;
  for (int i = 0; i < kFrontends; ++i) {
    nodes.push_back(&fabric.AddNode("frontend" + std::to_string(i)));
    clients.push_back(std::make_unique<kv::JakiroClient>(server, *nodes.back()));
  }
  server.Start();

  const sim::Time deadline = sim::Millis(20);
  for (int i = 0; i < kFrontends; ++i) {
    engine.Spawn(Frontend(engine, clients[static_cast<size_t>(i)].get(), i,
                          &hits[static_cast<size_t>(i)], &misses[static_cast<size_t>(i)],
                          deadline));
  }
  engine.RunUntil(deadline);
  server.Stop();

  uint64_t total_hits = 0;
  uint64_t total_misses = 0;
  uint64_t total_ops = 0;
  for (int i = 0; i < kFrontends; ++i) {
    total_hits += hits[static_cast<size_t>(i)];
    total_misses += misses[static_cast<size_t>(i)];
    total_ops += clients[static_cast<size_t>(i)]->operations();
  }
  std::printf("cache tier ran %.0f ms of simulated time\n", sim::ToMillis(engine.now()));
  std::printf("ops: %llu (%.2f MOPS), hit rate: %.1f%%\n",
              static_cast<unsigned long long>(total_ops),
              static_cast<double>(total_ops) / sim::ToSeconds(deadline) / 1e6,
              100.0 * static_cast<double>(total_hits) /
                  static_cast<double>(total_hits + total_misses));
  size_t entries = 0;
  uint64_t evictions = 0;
  for (int t = 0; t < server.num_threads(); ++t) {
    entries += server.partition(t).size();
    evictions += server.partition(t).stats().evictions;
  }
  std::printf("cache entries: %zu, LRU evictions: %llu\n", entries,
              static_cast<unsigned long long>(evictions));
  const auto stats = clients[0]->MergedChannelStats();
  std::printf("frontend0 channel mode after run: RDMA round trips per call %.3f\n",
              stats.RoundTripsPerCall());
  return 0;
}
