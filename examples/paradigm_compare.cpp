// Side-by-side comparison of the three RDMA paradigms on the same task:
// GET-heavy key-value serving from 14 clients.
//
//   * server-reply   — classic RPC: the server RDMA-WRITEs results back
//   * server-bypass  — Pilaf-style: clients READ the cuckoo table directly
//   * RFP            — server processes, clients remote-fetch results
//
// Reproduces the paper's headline in one run: RFP wins because the server
// only ever serves cheap in-bound operations AND requests take exactly one
// logical round trip.
//
//   $ ./examples/paradigm_compare

#include <cstdio>
#include <memory>
#include <vector>

#include "src/kv/jakiro.h"
#include "src/kv/pilaf_store.h"
#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/workload/ycsb.h"

namespace {

constexpr int kClients = 14;
constexpr int kClientNodes = 7;
constexpr uint64_t kKeys = 1 << 15;
const sim::Time kDeadline = sim::Millis(8);

workload::WorkloadSpec Spec() {
  workload::WorkloadSpec spec;
  spec.num_keys = kKeys;
  spec.get_fraction = 0.95;
  spec.value_size = workload::ValueSizeSpec::Fixed(32);
  return spec;
}

template <typename Client>
sim::Task<void> Driver(sim::Engine& engine, Client* client, int id, uint64_t* ops) {
  workload::Generator gen(Spec(), static_cast<uint64_t>(id));
  std::vector<std::byte> key(16);
  std::vector<std::byte> value(256);
  std::vector<std::byte> out(256);
  while (engine.now() < kDeadline) {
    const workload::Op op = gen.Next();
    workload::MakeKey(op.key_id, key);
    if (op.type == workload::OpType::kGet) {
      co_await client->Get(key, out);
    } else {
      workload::FillValue(op.key_id, std::span<std::byte>(value.data(), op.value_size));
      co_await client->Put(key, std::span<const std::byte>(value.data(), op.value_size));
    }
    ++*ops;
  }
}

double RunRfpVariant(bool force_reply) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  kv::JakiroConfig config;
  config.server_threads = 4;
  if (force_reply) {
    config = kv::JakiroConfig::Build(config).ServerReply();
  }
  kv::JakiroServer server(fabric, server_node, config);

  std::vector<std::byte> key(16);
  std::vector<std::byte> value(64);
  for (uint64_t id = 0; id < kKeys; ++id) {
    workload::MakeKey(id, key);
    workload::FillValue(id, std::span<std::byte>(value.data(), 32));
    server.partition(server.OwnerThread(key)).Put(key,
                                                  std::span<const std::byte>(value.data(), 32));
  }

  std::vector<std::unique_ptr<kv::JakiroClient>> clients;
  std::vector<uint64_t> ops(kClients, 0);
  std::vector<rdma::Node*> nodes;
  for (int n = 0; n < kClientNodes; ++n) {
    nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<kv::JakiroClient>(server, *nodes[static_cast<size_t>(i % kClientNodes)]));
    engine.Spawn(Driver(engine, clients.back().get(), i, &ops[static_cast<size_t>(i)]));
  }
  server.Start();
  engine.RunUntil(kDeadline);
  server.Stop();
  uint64_t total = 0;
  for (uint64_t o : ops) {
    total += o;
  }
  return static_cast<double>(total) / sim::ToSeconds(kDeadline) / 1e6;
}

double RunBypass() {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  kv::PilafConfig config;
  config.num_slots = kKeys * 2;
  kv::PilafServer server(fabric, server_node, config);

  std::vector<std::byte> key(16);
  std::vector<std::byte> value(64);
  for (uint64_t id = 0; id < kKeys; ++id) {
    workload::MakeKey(id, key);
    workload::FillValueVersioned(id, 0, std::span<std::byte>(value.data(), 32));
    server.Preload(key, std::span<const std::byte>(value.data(), 32));
  }

  std::vector<std::unique_ptr<kv::PilafClient>> clients;
  std::vector<uint64_t> ops(kClients, 0);
  std::vector<rdma::Node*> nodes;
  for (int n = 0; n < kClientNodes; ++n) {
    nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<kv::PilafClient>(fabric, *nodes[static_cast<size_t>(i % kClientNodes)],
                                                        server, i % 2));
    engine.Spawn([](sim::Engine& eng, kv::PilafClient* c, int id,
                    uint64_t* count) -> sim::Task<void> {
      workload::Generator gen(Spec(), static_cast<uint64_t>(id));
      std::vector<std::byte> k(16);
      std::vector<std::byte> v(256);
      std::vector<std::byte> out(256);
      uint64_t version = 0;
      while (eng.now() < kDeadline) {
        const workload::Op op = gen.Next();
        workload::MakeKey(op.key_id, k);
        if (op.type == workload::OpType::kGet) {
          co_await c->Get(k, out);
        } else {
          workload::FillValueVersioned(op.key_id, ++version,
                                       std::span<std::byte>(v.data(), 32));
          co_await c->Put(k, std::span<const std::byte>(v.data(), 32));
        }
        ++*count;
      }
    }(engine, clients.back().get(), i, &ops[static_cast<size_t>(i)]));
  }
  server.Start();
  engine.RunUntil(kDeadline);
  server.Stop();
  uint64_t total = 0;
  for (uint64_t o : ops) {
    total += o;
  }
  return static_cast<double>(total) / sim::ToSeconds(kDeadline) / 1e6;
}

}  // namespace

int main() {
  std::printf("GET-heavy KV serving, %d clients, 32 B values\n\n", kClients);
  const double reply = RunRfpVariant(/*force_reply=*/true);
  const double bypass = RunBypass();
  const double rfp = RunRfpVariant(/*force_reply=*/false);
  std::printf("  server-reply  : %5.2f MOPS   (server out-bound WRITEs are the bottleneck)\n",
              reply);
  std::printf("  server-bypass : %5.2f MOPS   (~3 READs per GET: bypass amplification)\n",
              bypass);
  std::printf("  RFP           : %5.2f MOPS   (in-bound only at the server, 1 fetch per call)\n",
              rfp);
  std::printf("\nRFP vs server-reply: %.1fx, vs server-bypass: %.1fx\n", rfp / reply,
              rfp / bypass);
  return 0;
}
