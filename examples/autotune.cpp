// Parameter auto-tuning, end to end (paper Section 3.2).
//
// A deployment tool would run this once per cluster:
//   1. profile the hardware (in-bound IOPS by size, out-bound rate, fetch
//      RTT) with one-off micro-benchmarks;
//   2. detect the useful fetch-size window [L, H] and the retry bound N;
//   3. sample the application's result sizes and process times
//      (pre-run / on-line sampling);
//   4. enumerate Eq. 2 and configure the channels with the winning (R, F).
//
// The example then demonstrates the payoff: the tuned F against two
// deliberately mistuned ones on the same workload.
//
//   $ ./examples/autotune

#include <cstdio>
#include <memory>
#include <vector>

#include "src/kv/jakiro.h"
#include "src/rdma/fabric.h"
#include "src/rfp/params.h"
#include "src/sim/engine.h"
#include "src/workload/ycsb.h"

namespace {

// The application whose parameters we are tuning: 95% GET, values bimodal
// (mostly 64 B records, some 480 B blobs).
workload::WorkloadSpec AppWorkload() {
  workload::WorkloadSpec spec;
  spec.num_keys = 1 << 15;
  spec.get_fraction = 0.95;
  spec.value_size = workload::ValueSizeSpec::Fixed(64);  // size drawn per-key below
  return spec;
}

uint32_t AppValueSize(uint64_t key_id) { return key_id % 10 == 0 ? 480 : 64; }

double RunWithFetchSize(uint32_t fetch_size) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  kv::JakiroConfig config;
  config.server_threads = 4;
  config.channel_options.fetch_size = fetch_size;
  kv::JakiroServer server(fabric, server_node, config);

  const workload::WorkloadSpec spec = AppWorkload();
  std::vector<std::byte> key(16);
  std::vector<std::byte> value(1024);
  for (uint64_t id = 0; id < spec.num_keys; ++id) {
    workload::MakeKey(id, key);
    const uint32_t vs = AppValueSize(id);
    workload::FillValue(id, std::span<std::byte>(value.data(), vs));
    server.partition(server.OwnerThread(key)).Put(key,
                                                  std::span<const std::byte>(value.data(), vs));
  }

  const int kClients = 21;
  std::vector<rdma::Node*> nodes;
  std::vector<std::unique_ptr<kv::JakiroClient>> clients;
  std::vector<uint64_t> ops(kClients, 0);
  const sim::Time deadline = sim::Millis(6);
  for (int i = 0; i < kClients; ++i) {
    if (i < 7) {
      nodes.push_back(&fabric.AddNode("client" + std::to_string(i)));
    }
    clients.push_back(std::make_unique<kv::JakiroClient>(server, *nodes[static_cast<size_t>(i % 7)]));
    engine.Spawn([](sim::Engine& eng, kv::JakiroClient* c, workload::WorkloadSpec sp, int id,
                    sim::Time e, uint64_t* count) -> sim::Task<void> {
      workload::Generator gen(sp, static_cast<uint64_t>(id));
      std::vector<std::byte> k(16);
      std::vector<std::byte> v(1024);
      std::vector<std::byte> out(1024);
      while (eng.now() < e) {
        const workload::Op op = gen.Next();
        workload::MakeKey(op.key_id, k);
        if (op.type == workload::OpType::kGet) {
          co_await c->Get(k, out);
        } else {
          const uint32_t vs = AppValueSize(op.key_id);
          workload::FillValue(op.key_id, std::span<std::byte>(v.data(), vs));
          co_await c->Put(k, std::span<const std::byte>(v.data(), vs));
        }
        ++*count;
      }
    }(engine, clients.back().get(), spec, i, deadline, &ops[static_cast<size_t>(i)]));
  }
  server.Start();
  engine.RunUntil(deadline);
  server.Stop();
  uint64_t total = 0;
  for (uint64_t o : ops) {
    total += o;
  }
  return static_cast<double>(total) / sim::ToSeconds(deadline) / 1e6;
}

}  // namespace

int main() {
  // Step 1: profile the hardware (a one-off micro-benchmark pass).
  std::printf("profiling the fabric...\n");
  rfp::ProfileOptions popts;
  popts.window = sim::Micros(500);
  const rfp::HardwareProfile profile = rfp::MeasureProfile(rdma::FabricConfig{}, popts);
  std::printf("  in-bound peak %.2f MOPS, out-bound %.2f MOPS, fetch RTT %.0f ns\n",
              profile.InboundMopsAt(32), profile.outbound_write_mops, profile.fetch_rtt_ns);

  // Step 2: hardware knees.
  const uint32_t l = rfp::DetectL(profile);
  const uint32_t h = rfp::DetectH(profile);
  const int n = rfp::DeriveRetryBound(profile);
  std::printf("  window: F in [%u, %u], R in [1, %d]\n", l, h, n);

  // Step 3: sample the application (pre-run): GET responses are
  // 1 status byte + value; process time ~0.3 us.
  rfp::OnlineSampler sampler(256, /*seed=*/7);
  for (uint64_t id = 0; id < 4096; ++id) {
    sampler.Record(1 + AppValueSize(id), sim::Nanos(300));
  }

  // Step 4: Eq. 2 enumeration.
  const rfp::ParamChoice choice =
      rfp::SelectParameters(profile, sampler.sizes(), sampler.times());
  std::printf("  selector picks R=%d, F=%u\n\n", choice.retry_threshold, choice.fetch_size);

  // The payoff: tuned F vs a too-small and a too-large F.
  struct Candidate {
    const char* label;
    uint32_t fetch;
  };
  for (const Candidate& c : {Candidate{"too small (64)", 64},
                             Candidate{"tuned", choice.fetch_size},
                             Candidate{"too large (1024)", 1024}}) {
    const double mops = RunWithFetchSize(c.fetch);
    std::printf("  F=%-5u %-18s -> %.2f MOPS\n", c.fetch, c.label, mops);
  }
  std::printf("\nthe tuned F covers the small responses in one fetch without paying the\n"
              "large-F bandwidth tax — the paper's Eq. 2 trade-off, automated\n");
  return 0;
}
