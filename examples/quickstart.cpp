// Quickstart: a minimal RFP RPC service.
//
// Builds a two-node fabric, registers an "uppercase" RPC handler on the
// server, and calls it from a client — the complete RFP round trip:
// request RDMA-WRITTEN into server memory, processed by the server thread,
// result remote-fetched by the client with RDMA READ.
//
//   $ ./examples/quickstart

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"

namespace {

constexpr uint16_t kUppercase = 1;

sim::Task<void> ClientMain(sim::Engine& engine, rfp::Channel* channel) {
  rfp::RpcClient client(channel);
  std::vector<std::byte> response(256);

  for (const char* message : {"hello rfp", "remote fetching paradigm", "bye"}) {
    const auto request = std::as_bytes(std::span(message, std::strlen(message)));
    const size_t n = co_await client.Call(kUppercase, request, response);
    std::printf("[%6.2f us] call(\"%s\") -> \"%.*s\"  (mode: %s)\n",
                sim::ToMicros(engine.now()), message, static_cast<int>(n),
                reinterpret_cast<const char*>(response.data()),
                rfp::ModeName(channel->client_mode()));
  }

  const rfp::Channel::Stats& stats = channel->stats();
  std::printf("\n%llu calls, %llu request WRITEs, %llu fetch READs, %llu reply pushes\n",
              static_cast<unsigned long long>(stats.calls),
              static_cast<unsigned long long>(stats.request_writes),
              static_cast<unsigned long long>(stats.fetch_reads),
              static_cast<unsigned long long>(stats.reply_pushes));
  std::printf("average RDMA round trips per call: %.3f\n", stats.RoundTripsPerCall());
}

}  // namespace

int main() {
  // 1. Build the simulated fabric: one server, one client machine.
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");

  // 2. Stand up an RPC server with one worker thread and a handler.
  rfp::RpcServer server(fabric, server_node, /*num_threads=*/1);
  server.RegisterHandler(kUppercase, [](const rfp::HandlerContext&,
                                        std::span<const std::byte> request,
                                        std::span<std::byte> response) -> rfp::HandlerResult {
    for (size_t i = 0; i < request.size(); ++i) {
      response[i] = static_cast<std::byte>(
          std::toupper(static_cast<unsigned char>(std::to_integer<char>(request[i]))));
    }
    // The handler reports its simulated compute cost (the paper's P).
    return rfp::HandlerResult{request.size(), sim::Nanos(400)};
  });

  // 3. Connect a client channel (default parameters: R=5, F=256).
  rfp::Channel* channel = server.AcceptChannel(client_node, rfp::RfpOptions{}, /*thread=*/0);
  server.Start();

  // 4. Run the client workload on the virtual clock.
  engine.Spawn(ClientMain(engine, channel));
  engine.RunUntil(sim::Millis(1));
  server.Stop();
  return 0;
}
