// Extension: multi-core server dispatch toward the in-bound ceiling
// (docs/multicore.md).
//
// One echo cluster — 1 server, 2 client nodes, 8 channels of 32-byte
// responses — is driven closed-loop in windowed bursts while the server's
// worker count sweeps {1, 2, 4, 6, 8} x window {16, 32, 64}. Workers are pinned
// to sim::CpuSet cores above the NIC-station reservation and all sweep CPU
// is charged through ComputeOn, so the CPU side of the model saturates for
// real; channels run forced remote-fetch with coalesced fetch sweeps and
// doorbell-batched reply publication.
//
// The point of the sweep is the paper's Fig 12 argument pushed to its
// limit: with few workers the server CPU model is the bottleneck and MOPS
// scales with the worker count; once the workers can drain requests faster
// than the in-bound engine delivers them, throughput pins to the NIC model
// instead. Per call the in-bound engine then serves one request WRITE
// (89 ns min gap) plus a bandwidth-priced share of one spanning response
// READ per burst, so the ceiling sits a little under the raw 11.26 MOPS
// in-bound envelope — and well above the ~5.6 MOPS that per-slot fetches
// (2 in-bound ops/call) top out at.
//
// Each driver paces itself: it posts a whole burst in one doorbell batch,
// sleeps an adaptive estimate of the burst's service time, then awaits —
// so the steady state is ONE spanning READ per burst instead of a retry
// storm of spans that would eat the very in-bound capacity under test.
//
// Columns: inbound_util is rdma::Nic::ServeUtilization over the measure
// window; cpu_util is the busiest worker core's CoreUtilization; the
// bottleneck column names whichever model is nearer saturation. The --json
// smoke test in tests/obs/ pins the headline: some 32-byte row reaches
// >= 9 MOPS with bottleneck == nic_inbound.

#include "bench/common.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"

namespace {

constexpr int kClientNodes = 2;
constexpr int kClients = 8;
constexpr uint32_t kValueBytes = 32;  // the paper's small-value workload
constexpr sim::Time kProcessNs = 150;

const sim::Time kMeasureStart = sim::Millis(1);
const sim::Time kRunEnd = sim::Millis(6);

std::byte ExpectedByte(size_t i) {
  return static_cast<std::byte>(static_cast<uint8_t>(i * 31 + 7));
}

struct DriverCounts {
  uint64_t completed = 0;
  uint64_t mismatches = 0;
  uint64_t failed = 0;
  sim::Histogram latency;  // submit -> completion, ns
};

// Closed-loop windowed driver with adaptive pacing: post the burst in one
// doorbell batch, sleep roughly the burst's service time, then await. The
// controller raises the pace by whatever extra time the awaits took and
// decays it geometrically otherwise, so it hugs the point where one
// mopping-up fetch sweep per burst finds every response landed.
sim::Task<void> Driver(sim::Engine& eng, rfp::RpcClient* client, int window,
                       DriverCounts* counts) {
  std::vector<std::byte> req(8);
  std::vector<std::vector<std::byte>> resp(
      static_cast<size_t>(window), std::vector<std::byte>(kValueBytes));
  std::vector<rfp::Channel::CallHandle> handles(static_cast<size_t>(window));
  sim::Time pace = static_cast<sim::Time>(window) * 400;
  uint64_t n = 0;
  while (eng.now() < kRunEnd) {
    for (int i = 0; i < window; ++i) {
      ++n;
      for (size_t b = 0; b < req.size(); ++b) {
        req[b] = static_cast<std::byte>(static_cast<uint8_t>(n >> (8 * b)));
      }
      handles[static_cast<size_t>(i)] = co_await client->SubmitCall(1, req);
    }
    co_await client->channel()->FlushCalls();
    const sim::Time flushed = eng.now();
    if (pace > 0) co_await eng.Sleep(pace);
    for (int i = 0; i < window; ++i) {
      const sim::Time start = eng.now();
      try {
        const size_t got = co_await client->AwaitCall(
            handles[static_cast<size_t>(i)], resp[static_cast<size_t>(i)]);
        if (eng.now() >= kMeasureStart) {
          ++counts->completed;
          counts->latency.Record(eng.now() - start);
        }
        if (got != kValueBytes) {
          ++counts->mismatches;
        } else if (resp[static_cast<size_t>(i)][0] != ExpectedByte(0) ||
                   resp[static_cast<size_t>(i)][31] != ExpectedByte(31)) {
          ++counts->mismatches;
        }
      } catch (const std::exception&) {
        ++counts->failed;
      }
    }
    // Even a perfectly paced burst pays one mopping-up sweep (span issue +
    // wire round trip, ~2 us); only time beyond that means the pace undershot
    // the burst's service time. Track the measured burst latency with an
    // EWMA (additive ratcheting amplifies backoff noise into runaway pace)
    // and bias it slightly downward so the pace keeps probing for the point
    // where the service time just binds.
    constexpr sim::Time kSweepCostNs = 2000;
    const sim::Time measured = eng.now() - flushed;
    const sim::Time target = measured > kSweepCostNs ? measured - kSweepCostNs : 0;
    pace = (7 * pace + target) / 8;
    pace = pace > 200 ? pace - 200 : 0;
  }
}

struct Outcome {
  double mops = 0;
  double p50_us = 0;
  double p99_us = 0;
  double inbound_util = 0;   // server NIC serve engine, measure window
  double cpu_util = 0;       // busiest worker core, measure window
  const char* bottleneck = "";
  uint64_t steals = 0;
  rfp::Channel::Stats stats;
  uint64_t errors = 0;
};

Outcome RunPoint(int workers, int window) {
  sim::Engine engine;
  rdma::FabricConfig fc;
  fc.seed = bench::SeedOr(fc.seed);
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server_node = fabric.AddNode("server");
  std::vector<rdma::Node*> client_nodes;
  for (int c = 0; c < kClientNodes; ++c) {
    client_nodes.push_back(&fabric.AddNode("client" + std::to_string(c)));
  }

  rfp::ServerOptions server_options;
  server_options.multicore = true;
  rfp::RpcServer server(fabric, server_node, workers, server_options);
  server.RegisterHandler(1, [](const rfp::HandlerContext&, std::span<const std::byte>,
                               std::span<std::byte> out) -> rfp::HandlerResult {
    for (size_t i = 0; i < kValueBytes; ++i) {
      out[i] = ExpectedByte(i);
    }
    return rfp::HandlerResult{kValueBytes, kProcessNs};
  });

  rfp::RfpOptions options;
  options.window = window;
  options.force_mode = rfp::RfpOptions::ForceMode::kForceFetch;
  options.coalesced_fetch = true;
  // Ring blocks price the spanning READ, so size them to the payload.
  options.max_message_bytes = kValueBytes;
  // Straggler insurance: a burst whose pace-sleep undershot retries its
  // fetch sweep on a backoff instead of spinning spans at the NIC.
  options.fetch_backoff_initial_ns = 1000;
  options.fetch_backoff_max_ns = 8000;

  std::vector<rfp::Channel*> channels;
  std::vector<std::unique_ptr<rfp::RpcClient>> stubs;
  std::vector<DriverCounts> counts(kClients);
  for (int t = 0; t < kClients; ++t) {
    rfp::Channel* channel = server.AcceptChannel(
        *client_nodes[static_cast<size_t>(t % kClientNodes)], options, t % workers);
    channels.push_back(channel);
    stubs.push_back(std::make_unique<rfp::RpcClient>(channel));
  }
  server.Start();
  // Arm exact utilization windows so the bottleneck attribution below is the
  // busy fraction of the measure window alone, not of the whole run.
  server_node.nic().WatchUtilization(kMeasureStart);
  server_node.cpus().WatchUtilization(kMeasureStart);
  for (int t = 0; t < kClients; ++t) {
    engine.Spawn(Driver(engine, stubs[static_cast<size_t>(t)].get(), window,
                        &counts[static_cast<size_t>(t)]));
  }
  engine.RunUntil(kRunEnd);

  Outcome out;
  sim::Histogram latency;
  uint64_t completed = 0;
  for (const DriverCounts& c : counts) {
    completed += c.completed;
    out.errors += c.mismatches + c.failed;
    latency.Merge(c.latency);
  }
  out.mops = static_cast<double>(completed) / sim::ToSeconds(kRunEnd - kMeasureStart) / 1e6;
  out.p50_us = static_cast<double>(latency.Percentile(0.50)) / 1000.0;
  out.p99_us = static_cast<double>(latency.Percentile(0.99)) / 1000.0;
  out.inbound_util = server_node.nic().ServeUtilization(kMeasureStart, kRunEnd);
  std::set<int> cores;
  for (int t = 0; t < workers; ++t) {
    cores.insert(server.thread_core(t));
  }
  for (int core : cores) {
    out.cpu_util = std::max(
        out.cpu_util, server_node.cpus().CoreUtilization(core, kMeasureStart, kRunEnd));
  }
  out.bottleneck = out.inbound_util >= out.cpu_util ? "nic_inbound" : "cpu";
  out.steals = server.channel_steals();
  for (rfp::Channel* channel : channels) {
    bench::MergeChannelStats(out.stats, channel->stats());
  }
  server.Stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);

  bench::PrintTitle(
      "Extension: multi-core dispatch, MOPS vs workers (32B echo, forced fetch, coalesced)");
  bench::PrintHeader({"workers", "window", "mops", "p50_us", "p99_us", "inbound_util",
                      "cpu_util", "bottleneck", "coalesced", "steals", "errors"});

  double best_mops = 0;
  const char* best_bottleneck = "";
  for (int window : {16, 32, 64}) {
    for (int workers : {1, 2, 4, 6, 8}) {
      const Outcome out = RunPoint(workers, window);
      if (out.mops > best_mops) {
        best_mops = out.mops;
        best_bottleneck = out.bottleneck;
      }
      bench::PrintRow({bench::FmtInt(static_cast<uint64_t>(workers)),
                       bench::FmtInt(static_cast<uint64_t>(window)), bench::Fmt(out.mops),
                       bench::Fmt(out.p50_us, 1), bench::Fmt(out.p99_us, 1),
                       bench::Fmt(out.inbound_util), bench::Fmt(out.cpu_util),
                       out.bottleneck, bench::FmtInt(out.stats.coalesced_fetches),
                       bench::FmtInt(out.steals), bench::FmtInt(out.errors)});
    }
  }

  std::printf(
      "\nexpected: MOPS scales with workers while cpu_util leads (bottleneck=cpu),\n"
      "then pins near the in-bound envelope once the NIC serve engine saturates\n"
      "(bottleneck=nic_inbound). Peak here: %.2f MOPS (%s) vs the 11.26 MOPS raw\n"
      "in-bound ceiling — coalesced sweeps spend ~1 in-bound op per call where\n"
      "per-slot fetches spend 2, which is the whole headroom story of Fig 12.\n",
      best_mops, best_bottleneck);
  return 0;
}
