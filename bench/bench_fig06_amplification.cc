// Figure 6: bypass access amplification — server-bypass request throughput
// collapses as more RDMA operations are needed per logical request.
//
// Paper (21 client threads): raw IOPS stay near the in-bound peak while
// request throughput falls below 1 MOPS once a request needs ~10+ ops.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 6: server-bypass throughput vs RDMA ops per request");
  bench::PrintHeader({"ops_per_req", "request_mops", "iops_mops"});
  for (int k = 2; k <= 15; ++k) {
    const bench::AmplificationResult r = bench::RunAmplification(k, 21);
    bench::PrintRow({std::to_string(k), bench::Fmt(r.request_mops), bench::Fmt(r.iops)});
  }
  std::printf("\npaper: IOPS stay high; request throughput drops below 1 MOPS at ~11+ ops\n");
  return 0;
}
