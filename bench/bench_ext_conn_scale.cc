// Extension: connection scale-out (docs/connections.md).
//
// Table 1 — pooled connection churn. M logical clients (RDMAvisor's
// million-client regime) are played through 32 pooled endpoints against a
// server running 4 shared UD QPs: every logical client is one
// connect / echo / disconnect generation through conn::PooledServer. The
// scaling claim is the census: however large M grows, the server holds 4
// QPs and one shared slot arena — LiveQpCount and RegisteredBytes are flat,
// and the `dedicated_MB` column shows what the same M clients would pin as
// per-client RC channels (2 rings each). Connection setup is pure fast
// path: the registration-count column stays at its warm-up value, so
// connects/sec is bounded by round trips, not MR work.
//
// Table 2 — steady-state lease throughput. The same echo service driven
// through conn::Connector in three modes: dedicated channels (legacy
// bringup), a warm LRU cache (capacity >= working set: every burst is a
// hit), and a deliberately undersized cache (capacity < working set: every
// burst re-establishes through eviction). Expected shape:
//   * cached-warm lands within 10% of dedicated — the cache's steady-state
//     cost is one map lookup per lease, not per call;
//   * cached-tight pays the reconnect round trips for every burst and drops
//     well below, which is the price the capacity knob trades for memory.
//
//   --clients=N caps the Table-1 sweep (default 1000000).

#include "bench/common.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/conn/connector.h"
#include "src/conn/pooled.h"
#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace {

constexpr uint16_t kEcho = 1;
constexpr int kClientNodes = 4;
constexpr int kEndpointsPerNode = 8;
constexpr int kEndpoints = kClientNodes * kEndpointsPerNode;
constexpr int kServerThreads = 2;
constexpr int kPooledQps = 4;

void RegisterEcho(rfp::RpcServer& server) {
  server.RegisterHandler(kEcho, [](const rfp::HandlerContext&,
                                   std::span<const std::byte> req,
                                   std::span<std::byte> resp) {
    std::memcpy(resp.data(), req.data(), req.size());
    return rfp::HandlerResult{req.size(), sim::Nanos(300)};
  });
}

// ---- Table 1: pooled churn ----------------------------------------------------

struct ScaleResult {
  double conn_per_sec = 0;
  size_t live_qps = 0;
  size_t server_registered = 0;   // bytes, after all M generations
  uint64_t registrations = 0;     // server MR registrations over the whole run
  uint64_t retransmits = 0;
  uint64_t served = 0;
};

sim::Task<void> ChurnDriver(sim::Engine& engine, conn::PooledClient* client,
                            uint64_t generations, uint64_t* done, sim::Time* finish) {
  std::vector<std::byte> resp(64);
  const std::string payload = "scale-echo";
  for (uint64_t g = 0; g < generations; ++g) {
    co_await client->Connect();
    co_await client->Call(kEcho, std::as_bytes(std::span(payload.data(), payload.size())),
                          resp);
    co_await client->Disconnect();
  }
  ++*done;
  if (engine.now() > *finish) {
    *finish = engine.now();
  }
}

ScaleResult RunScale(uint64_t logical_clients) {
  sim::Engine engine;
  rdma::FabricConfig config;
  config.seed = bench::SeedOr(config.seed);
  rdma::Fabric fabric(engine, config);
  rdma::Node& server_node = fabric.AddNode("server");
  rfp::RpcServer rpc(fabric, server_node, kServerThreads);
  RegisterEcho(rpc);

  conn::PooledOptions popts;
  popts.qps = kPooledQps;
  conn::PooledServer server(fabric, rpc, popts);
  server.Start();

  std::vector<rdma::Node*> nodes;
  for (int n = 0; n < kClientNodes; ++n) {
    nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }
  std::vector<std::unique_ptr<conn::PooledClient>> endpoints;
  for (int e = 0; e < kEndpoints; ++e) {
    endpoints.push_back(std::make_unique<conn::PooledClient>(
        fabric, *nodes[static_cast<size_t>(e % kClientNodes)], server, popts));
  }

  uint64_t done = 0;
  sim::Time finish = 0;
  for (int e = 0; e < kEndpoints; ++e) {
    uint64_t quota = logical_clients / kEndpoints;
    if (e == 0) {
      quota += logical_clients % kEndpoints;
    }
    engine.Spawn(ChurnDriver(engine, endpoints[static_cast<size_t>(e)].get(), quota, &done,
                             &finish));
  }
  while (done < kEndpoints) {
    engine.RunUntil(engine.now() + sim::Millis(100));
  }

  ScaleResult r;
  r.conn_per_sec = static_cast<double>(logical_clients) / sim::ToSeconds(finish);
  r.live_qps = fabric.LiveQpCount(server_node);
  r.server_registered = fabric.RegisteredBytes(server_node);
  r.registrations = fabric.RegistrationCount(server_node);
  r.served = server.requests_served();
  for (const auto& ep : endpoints) {
    r.retransmits += ep->stats().retransmits;
  }
  server.Stop();
  rpc.Stop();
  return r;
}

// What M dedicated RC channels would pin on the server: two rings per
// channel, measured from one real AcceptChannel.
size_t DedicatedFootprintPerChannel() {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rdma::Node& client_node = fabric.AddNode("client");
  rfp::RpcServer rpc(fabric, server_node, 1);
  rfp::Channel* channel = rpc.AcceptChannel(client_node, rfp::RfpOptions{}, 0);
  return channel->registered_footprint_bytes();
}

// ---- Table 2: lease throughput ------------------------------------------------

struct LeaseResult {
  double mops = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

// Dedicated mode holds its one channel for the whole run (legacy bringup:
// connect once, call forever). Cached modes go back through the cache for
// every 16-call burst, which is where the hit path earns its keep.
sim::Task<void> BurstDriver(sim::Engine& engine, conn::Connector* connector,
                            rfp::RpcServer* server, rdma::Node* node, int thread,
                            sim::Time deadline, uint64_t* ops) {
  const std::string payload = "burst-echo";
  std::vector<std::byte> resp(64);
  const bool release_per_burst =
      connector->options().mode == conn::ConnectorOptions::Mode::kCached;
  conn::ChannelLease held;
  if (!release_per_burst) {
    held = connector->Lease(*server, *node, rfp::RfpOptions{}, thread);
  }
  while (engine.now() < deadline) {
    conn::ChannelLease burst;
    if (release_per_burst) {
      burst = connector->Lease(*server, *node, rfp::RfpOptions{}, thread);
    }
    rfp::RpcClient* stub = release_per_burst ? burst.stub() : held.stub();
    for (int k = 0; k < 16 && engine.now() < deadline; ++k) {
      co_await stub->Call(
          kEcho, std::as_bytes(std::span(payload.data(), payload.size())), resp);
      ++*ops;
    }
  }
}

LeaseResult RunLeases(const conn::ConnectorOptions& copts) {
  sim::Engine engine;
  rdma::FabricConfig config;
  config.seed = bench::SeedOr(config.seed);
  rdma::Fabric fabric(engine, config);
  rdma::Node& server_node = fabric.AddNode("server");
  rfp::RpcServer server(fabric, server_node, kServerThreads);
  RegisterEcho(server);
  server.Start();

  conn::Connector connector(copts);
  const sim::Time deadline = sim::Millis(4);
  uint64_t ops = 0;
  for (int n = 0; n < kClientNodes; ++n) {
    rdma::Node& node = fabric.AddNode("client" + std::to_string(n));
    for (int t = 0; t < kServerThreads; ++t) {
      engine.Spawn(BurstDriver(engine, &connector, &server, &node, t, deadline, &ops));
    }
  }
  engine.RunUntil(deadline);

  LeaseResult r;
  r.mops = static_cast<double>(ops) / sim::ToSeconds(deadline) / 1e6;
  if (connector.cache() != nullptr) {
    r.hits = connector.cache()->stats().hits;
    r.misses = connector.cache()->stats().misses;
    r.evictions = connector.cache()->stats().evictions;
  }
  server.Stop();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  uint64_t max_clients = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--clients=", 0) == 0) {
      max_clients = std::stoull(arg.substr(10));
    }
  }

  const size_t per_channel = DedicatedFootprintPerChannel();
  bench::PrintTitle("Extension: pooled connection scale-out (" +
                    std::to_string(kEndpoints) + " endpoints, " +
                    std::to_string(kPooledQps) + " server UD QPs)");
  bench::PrintHeader({"clients", "conn_per_sec", "server_qps", "server_KB", "dedicated_MB",
                      "mr_regs", "retransmits"});
  for (const uint64_t clients : {uint64_t{1'000}, uint64_t{10'000}, uint64_t{100'000},
                                 uint64_t{1'000'000}}) {
    if (clients > max_clients) {
      continue;
    }
    const ScaleResult r = RunScale(clients);
    bench::PrintRow({bench::FmtInt(clients), bench::Fmt(r.conn_per_sec / 1e6, 3) + "M",
                     bench::FmtInt(r.live_qps),
                     bench::FmtInt(r.server_registered / 1024),
                     bench::Fmt(static_cast<double>(clients) * static_cast<double>(per_channel) /
                                    (1024.0 * 1024.0),
                                1),
                     bench::FmtInt(r.registrations), bench::FmtInt(r.retransmits)});
  }
  std::printf("\n(server census is flat in M: %d QPs and one shared slot arena serve every\n"
              "row, while per-client RC channels would pin dedicated_MB of rings)\n\n",
              kPooledQps);

  conn::ConnectorOptions dedicated;  // kDirect
  conn::ConnectorOptions warm;
  warm.mode = conn::ConnectorOptions::Mode::kCached;
  warm.cache.max_channels = kClientNodes * kServerThreads;  // working set fits
  conn::ConnectorOptions tight;
  tight.mode = conn::ConnectorOptions::Mode::kCached;
  tight.cache.max_channels = kClientNodes * kServerThreads / 2;  // forced churn

  const LeaseResult base = RunLeases(dedicated);
  const LeaseResult hot = RunLeases(warm);
  const LeaseResult cold = RunLeases(tight);

  bench::PrintTitle("Steady-state echo throughput through conn::Connector");
  bench::PrintHeader({"mode", "mops", "vs_dedicated", "hits", "misses", "evictions"});
  bench::PrintRow({"dedicated", bench::Fmt(base.mops), "1.00x", "-", "-", "-"});
  bench::PrintRow({"cached-warm", bench::Fmt(hot.mops), bench::Fmt(hot.mops / base.mops) + "x",
                   bench::FmtInt(hot.hits), bench::FmtInt(hot.misses),
                   bench::FmtInt(hot.evictions)});
  bench::PrintRow({"cached-tight", bench::Fmt(cold.mops),
                   bench::Fmt(cold.mops / base.mops) + "x", bench::FmtInt(cold.hits),
                   bench::FmtInt(cold.misses), bench::FmtInt(cold.evictions)});
  std::printf("\nexpected: cached-warm within 10%% of dedicated (a lease hit is one map\n"
              "lookup); cached-tight re-establishes every burst and pays the difference\n");
  return 0;
}
