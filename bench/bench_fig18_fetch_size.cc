// Figure 18: Jakiro throughput under different fetch sizes F.
//
// Paper: F = 640 B gives good throughput for the whole 32-640 B value
// range (one fetch covers header+payload) at a small cost for tiny values;
// larger F wastes bandwidth and 1024 B performs worst. This is the
// experiment the Eq-2 parameter selector optimizes.

#include "bench/common.h"

#include "src/rfp/params.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 18: Jakiro throughput vs fetch size F (95% GET)");
  const std::vector<uint32_t> fetch_sizes = {256, 512, 640, 748, 1024};
  std::vector<std::string> header{"value_B"};
  for (uint32_t f : fetch_sizes) {
    header.push_back("F=" + std::to_string(f));
  }
  bench::PrintHeader(header);
  for (uint32_t value : {32u, 64u, 128u, 256u, 384u, 512u, 640u, 1024u, 2048u}) {
    std::vector<std::string> row{std::to_string(value)};
    for (uint32_t f : fetch_sizes) {
      bench::KvRunConfig config;
      config.workload = bench::PaperWorkload();
      config.workload.value_size = workload::ValueSizeSpec::Fixed(value);
      config.channel.fetch_size = f;
      config.measure = sim::Millis(5);
      row.push_back(bench::Fmt(bench::RunKv(config).mops));
    }
    bench::PrintRow(row);
  }

  // What would the paper's selector pick for the mixed 32 B-8 KB workload?
  rfp::HardwareProfile profile = rfp::MeasureProfile(rdma::FabricConfig{});
  std::vector<uint32_t> samples;
  sim::Rng rng(7);
  for (int i = 0; i < 512; ++i) {
    // GET response payload: status byte + value.
    samples.push_back(1 + 32 + static_cast<uint32_t>(rng.NextBounded(8192 - 32 + 1)));
  }
  const rfp::ParamChoice choice = rfp::SelectParameters(profile, samples);
  std::printf("\nEq-2 selector on the mixed 32B-8KB workload: R=%d F=%u"
              " (L=%u H=%u N=%d)\n",
              choice.retry_threshold, choice.fetch_size, rfp::DetectL(profile),
              rfp::DetectH(profile), rfp::DeriveRetryBound(profile));
  std::printf("paper: F=640 best overall for 32-640 B values; 1024 worst; pre-run picks 640\n");
  return 0;
}
