// Extension: batched MULTIGET over RFP.
//
// Batching N keys into one call amortizes the request/fetch round trip
// (per-key in-bound cost drops from 2 ops toward 2/N ops) — but the batched
// response grows with N, so past the bandwidth knee the gain flattens:
// exactly the size/IOPS trade Eq. 2 captures for single GETs, recurring at
// the batch level. F is set per batch size as the selector would.

#include "bench/common.h"

#include <memory>

#include "src/kv/jakiro.h"
#include "src/rdma/fabric.h"
#include "src/sim/engine.h"

namespace {

struct Outcome {
  double key_mops = 0;
  double call_mops = 0;
};

Outcome RunBatched(int batch, uint32_t fetch_size) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  kv::JakiroConfig config;
  config.server_threads = 6;
  config.channel_options.fetch_size = fetch_size;
  kv::JakiroServer server(fabric, server_node, config);

  workload::WorkloadSpec spec = bench::PaperWorkload();
  spec.num_keys = 1 << 17;
  std::vector<std::byte> key(16);
  std::vector<std::byte> value(64);
  for (uint64_t id = 0; id < spec.num_keys; ++id) {
    workload::MakeKey(id, key);
    workload::FillValue(id, std::span<std::byte>(value.data(), 32));
    server.partition(server.OwnerThread(key)).Put(key,
                                                  std::span<const std::byte>(value.data(), 32));
  }

  const int kClients = 35;
  const int kNodes = 7;
  std::vector<rdma::Node*> nodes;
  for (int n = 0; n < kNodes; ++n) {
    nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }
  std::vector<std::unique_ptr<kv::JakiroClient>> clients;
  std::vector<uint64_t> keys_done(kClients, 0);
  const sim::Time warmup = sim::Millis(2);
  const sim::Time end = sim::Millis(6);
  for (int t = 0; t < kClients; ++t) {
    clients.push_back(std::make_unique<kv::JakiroClient>(server, *nodes[static_cast<size_t>(t % kNodes)]));
    engine.Spawn([](sim::Engine& eng, kv::JakiroClient* c, workload::WorkloadSpec sp, int id,
                    int n, sim::Time w, sim::Time e, uint64_t* count) -> sim::Task<void> {
      workload::Generator gen(sp, static_cast<uint64_t>(id));
      std::vector<std::vector<std::byte>> storage(static_cast<size_t>(n),
                                                  std::vector<std::byte>(16));
      std::vector<std::span<const std::byte>> keys(static_cast<size_t>(n));
      std::vector<std::byte> arena(65536);
      std::vector<std::optional<std::span<const std::byte>>> results(static_cast<size_t>(n));
      while (eng.now() < e) {
        for (int i = 0; i < n; ++i) {
          workload::MakeKey(gen.Next().key_id, storage[static_cast<size_t>(i)]);
          keys[static_cast<size_t>(i)] = storage[static_cast<size_t>(i)];
        }
        const sim::Time start = eng.now();
        co_await c->MultiGet(keys, arena, results);
        if (start >= w && eng.now() <= e) {
          *count += static_cast<uint64_t>(n);
        }
      }
    }(engine, clients.back().get(), spec, t, batch, warmup, end,
      &keys_done[static_cast<size_t>(t)]));
  }
  server.Start();
  engine.RunUntil(end);
  server.Stop();
  uint64_t total = 0;
  for (uint64_t k : keys_done) {
    total += k;
  }
  Outcome outcome;
  outcome.key_mops = static_cast<double>(total) / sim::ToSeconds(end - warmup) / 1e6;
  outcome.call_mops = outcome.key_mops / batch;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Extension: batched MULTIGET (95% uniform keys, 32 B values, 6 threads)");
  bench::PrintHeader({"batch", "F", "keys_mops", "calls_mops"});
  for (int batch : {1, 2, 4, 8, 16}) {
    // Size F as the selector would: enough for the batch's whole response
    // (keys spread over 6 owners, so each sub-batch carries ~batch/6 + slack
    // values), clamped into the [L, H] hardware window.
    const uint32_t per_owner = static_cast<uint32_t>(batch / 6 + 2);
    const uint32_t fetch = std::clamp<uint32_t>(16 + per_owner * 36, 256, 1024);
    const Outcome r = RunBatched(batch, fetch);
    bench::PrintRow({std::to_string(batch), std::to_string(fetch), bench::Fmt(r.key_mops),
                     bench::Fmt(r.call_mops)});
  }
  std::printf("\nexpected: per-key throughput rises with batch size as the round trip\n"
              "amortizes, flattening once responses hit the bandwidth knee — Eq. 2's\n"
              "size/IOPS trade, recurring at the batch level\n");
  return 0;
}
