// Figure 9: repeated remote fetching vs server-reply as the server process
// time P varies (F = S = minimal).
//
// Paper: fetching wins below the crossover (~7 us on their hardware, where
// server-reply becomes processing-bound anyway); beyond it the two converge.
// This curve is what bounds the useful retry threshold N.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 9: repeated remote fetching vs server-reply vs process time");
  bench::PrintHeader({"P_us", "fetching", "server-reply", "gain"});
  for (int p = 1; p <= 15; ++p) {
    bench::EchoRunConfig config;
    config.process_ns = sim::Micros(p);
    config.result_size = 1;
    config.channel.fetch_size = 16;
    config.server_threads = 16;
    config.channel.force_mode = rfp::RfpOptions::ForceMode::kForceFetch;
    const bench::EchoRunResult fetch = bench::RunEcho(config);
    config.channel.force_mode = rfp::RfpOptions::ForceMode::kForceReply;
    const bench::EchoRunResult reply = bench::RunEcho(config);
    bench::PrintRow({std::to_string(p), bench::Fmt(fetch.mops), bench::Fmt(reply.mops),
                     bench::Fmt(fetch.mops / reply.mops, 2) + "x"});
  }
  std::printf("\npaper: fetching >> reply for small P; curves converge at P >= ~7 us\n");
  return 0;
}
