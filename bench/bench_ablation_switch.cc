// Ablation: the hybrid-switch hysteresis (DESIGN.md §4).
//
// The paper switches to server-reply only after TWO consecutive calls
// exhaust their retries (Section 3.2), so rare stragglers don't flap the
// channel. This ablation injects a bimodal process time (mostly fast, a few
// slow requests) and sweeps the hysteresis: with hysteresis 1 the channel
// flaps into reply mode on every straggler and throughput drops; with 2+ it
// stays in remote-fetch.

#include "bench/common.h"

#include "src/rdma/fabric.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"

namespace {

struct Result {
  double mops;
  uint64_t switches;
  sim::Histogram latency;
};

Result RunBimodal(int hysteresis, double slow_fraction) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  rfp::RpcServer server(fabric, server_node, 8);
  sim::Rng rng(42);
  server.RegisterHandler(1, [&rng, slow_fraction](const rfp::HandlerContext&,
                                                  std::span<const std::byte>,
                                                  std::span<std::byte>) -> rfp::HandlerResult {
    const bool slow = rng.NextDouble() < slow_fraction;
    return rfp::HandlerResult{32, slow ? sim::Micros(25) : sim::Nanos(400)};
  });

  rfp::RfpOptions options;
  options.slow_calls_before_switch = hysteresis;
  std::vector<rfp::Channel*> channels;
  std::vector<std::unique_ptr<rfp::RpcClient>> stubs;
  std::vector<rdma::Node*> nodes;
  for (int n = 0; n < 7; ++n) {
    nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }
  const int kClients = 21;
  for (int t = 0; t < kClients; ++t) {
    channels.push_back(server.AcceptChannel(*nodes[static_cast<size_t>(t % 7)], options, t % 8));
    stubs.push_back(std::make_unique<rfp::RpcClient>(channels.back()));
  }
  server.Start();

  const sim::Time warmup = sim::Millis(2);
  const sim::Time end = sim::Millis(10);
  std::vector<uint64_t> ops(static_cast<size_t>(kClients), 0);
  std::vector<sim::Histogram> lat(static_cast<size_t>(kClients));
  for (int t = 0; t < kClients; ++t) {
    engine.Spawn([](sim::Engine& eng, rfp::RpcClient* client, sim::Time w, sim::Time e,
                    uint64_t* count, sim::Histogram* hist) -> sim::Task<void> {
      std::vector<std::byte> req(1);
      std::vector<std::byte> resp(256);
      while (eng.now() < e) {
        const sim::Time start = eng.now();
        co_await client->Call(1, req, resp);
        if (start >= w && eng.now() <= e) {
          ++*count;
          hist->Record(eng.now() - start);
        }
      }
    }(engine, stubs[static_cast<size_t>(t)].get(), warmup, end, &ops[static_cast<size_t>(t)],
      &lat[static_cast<size_t>(t)]));
  }
  engine.RunUntil(end);
  server.Stop();

  Result result;
  uint64_t total = 0;
  for (int t = 0; t < kClients; ++t) {
    total += ops[static_cast<size_t>(t)];
    result.latency.Merge(lat[static_cast<size_t>(t)]);
  }
  result.mops = static_cast<double>(total) / sim::ToSeconds(end - warmup) / 1e6;
  for (rfp::Channel* channel : channels) {
    result.switches += channel->stats().switches_to_reply + channel->stats().switches_to_fetch;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Ablation: switch hysteresis under a bimodal workload (0.5% slow requests)");
  bench::PrintHeader({"hysteresis", "mops", "mode_switches", "p50_us", "p95_us"});
  for (int h : {1, 2, 3, 4}) {
    const Result r = RunBimodal(h, 0.005);
    bench::PrintRow({std::to_string(h), bench::Fmt(r.mops), bench::FmtInt(r.switches),
                     bench::Fmt(static_cast<double>(r.latency.Percentile(0.5)) / 1000.0),
                     bench::Fmt(static_cast<double>(r.latency.Percentile(0.95)) / 1000.0)});
  }
  std::printf("\nexpected: hysteresis 1 flaps between modes on every straggler (the paper's\n"
              "\"two continuous slow calls\" rule prevents this); flapped calls pay the\n"
              "reply-mode polling latency, visible in the tail\n");
  return 0;
}
