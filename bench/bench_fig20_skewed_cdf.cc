// Figure 20: latency CDF under the read-intensive skewed workload.
//
// Paper: same ordering as the uniform CDF (Fig 13) — Jakiro has the best
// average latency and the shortest tail.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 20: latency CDF, skewed (Zipf .99) 95% GET, 32 B");
  bench::PrintHeader({"system", "mops", "mean_us", "p50", "p99"});
  std::vector<sim::Histogram> cdfs;
  std::vector<std::string> names;
  struct Setup {
    bench::KvSystem system;
    int threads;
  };
  for (const Setup& s : {Setup{bench::KvSystem::kJakiro, 6},
                         Setup{bench::KvSystem::kServerReply, 6},
                         Setup{bench::KvSystem::kMemcached, 16}}) {
    bench::KvRunConfig config;
    config.system = s.system;
    config.server_threads = s.threads;
    config.workload = bench::PaperWorkload();
    config.workload.distribution = workload::KeyDistribution::kZipfian;
    const bench::KvRunResult r = bench::RunKv(config);
    bench::PrintRow({bench::KvSystemName(s.system), bench::Fmt(r.mops),
                     bench::Fmt(r.latency.mean() / 1000.0),
                     bench::Fmt(static_cast<double>(r.latency.Percentile(0.5)) / 1000.0),
                     bench::Fmt(static_cast<double>(r.latency.Percentile(0.99)) / 1000.0)});
    cdfs.push_back(r.latency);
    names.push_back(bench::KvSystemName(s.system));
  }
  std::printf("\n");
  for (size_t i = 0; i < cdfs.size(); ++i) {
    bench::PrintCdf(names[i], cdfs[i]);
  }
  std::printf("\npaper: Jakiro best mean latency and shortest tail under skew\n");
  return 0;
}
