// Extension: RFP throughput before / during / after injected faults.
//
// One echo cluster (1 server x 4 threads, 8 clients on 2 nodes) runs with
// the channel fault-tolerance options enabled (fetch timeout + backoff,
// response checksums, transparent reconnect). For each fault class of
// src/fault/ a scripted FaultPlan disturbs the middle 2 ms of the run, and
// the table reports throughput in the clean lead-in, the fault window, and
// the recovery tail, plus the recovery events the channels booked.
//
// Expected shape (asserted by tests/fault/fault_matrix_test.cc):
//   * transient faults (stall, degrade, burst, qp error, corruption) recover
//     to within a few percent of the pre-fault baseline;
//   * a server-thread crash degrades throughput for the crash window
//     (1 of 4 workers dark) without deadlocking — the surviving threads keep
//     serving, and the crashed thread's pending requests complete after
//     restart;
//   * every response that completes is bit-correct: the drivers re-derive
//     the expected payload from the request and count mismatches (always 0).

#include "bench/common.h"

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/injector.h"
#include "src/fault/plan.h"
#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"

namespace {

constexpr int kServerThreads = 4;
constexpr int kClientNodes = 2;
constexpr int kClientThreads = 8;
constexpr uint32_t kResponseBytes = 32;

// Phase boundaries: warmup, clean baseline, fault window, recovery tail.
const sim::Time kBaselineStart = sim::Millis(1);
const sim::Time kFaultStart = sim::Millis(3);
const sim::Time kFaultEnd = sim::Millis(5);
const sim::Time kRunEnd = sim::Millis(9);

std::byte ExpectedByte(std::span<const std::byte> req, size_t i) {
  return req[i % req.size()] ^ static_cast<std::byte>(static_cast<uint8_t>(i * 73 + 11));
}

sim::Task<void> Driver(sim::Engine& eng, rfp::RpcClient* client, uint64_t* ops,
                       uint64_t* mismatches) {
  std::vector<std::byte> req(8);
  std::vector<std::byte> resp(256);
  uint64_t n = 0;
  while (eng.now() < kRunEnd) {
    ++n;
    for (size_t i = 0; i < req.size(); ++i) {
      req[i] = static_cast<std::byte>(static_cast<uint8_t>(n >> (8 * i)));
    }
    const size_t got = co_await client->Call(1, req, resp);
    if (got != kResponseBytes) {
      ++*mismatches;
    } else {
      for (size_t i = 0; i < kResponseBytes; ++i) {
        if (resp[i] != ExpectedByte(req, i)) {
          ++*mismatches;
          break;
        }
      }
    }
    ++*ops;
  }
}

struct Outcome {
  double before_mops = 0;
  double during_mops = 0;
  double after_mops = 0;
  rfp::Channel::Stats stats;
  uint64_t mismatches = 0;
  uint64_t injected = 0;
};

// Runs one cluster with `build_plan` supplying the fault schedule once the
// channels exist (corruption events need their rkeys).
Outcome RunClass(
    const std::function<void(fault::FaultPlan&, const std::vector<rfp::Channel*>&)>& build_plan) {
  sim::Engine engine;
  rdma::FabricConfig fc;
  fc.seed = bench::SeedOr(fc.seed);
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server_node = fabric.AddNode("server");
  std::vector<rdma::Node*> client_nodes;
  for (int n = 0; n < kClientNodes; ++n) {
    client_nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }

  rfp::RpcServer server(fabric, server_node, kServerThreads);
  server.RegisterHandler(1, [](const rfp::HandlerContext&, std::span<const std::byte> req,
                               std::span<std::byte> resp) -> rfp::HandlerResult {
    for (size_t i = 0; i < kResponseBytes; ++i) {
      resp[i] = ExpectedByte(req, i);
    }
    return rfp::HandlerResult{kResponseBytes, sim::Nanos(1000)};
  });

  rfp::RfpOptions options;
  options.fetch_timeout_ns = sim::Micros(150);
  options.fetch_backoff_initial_ns = sim::Micros(2);
  options.checksum_responses = true;

  std::vector<rfp::Channel*> channels;
  std::vector<std::unique_ptr<rfp::RpcClient>> stubs;
  std::vector<uint64_t> ops(kClientThreads, 0);
  std::vector<uint64_t> mismatches(kClientThreads, 0);
  for (int t = 0; t < kClientThreads; ++t) {
    rfp::Channel* channel = server.AcceptChannel(*client_nodes[static_cast<size_t>(t % kClientNodes)], options,
                                                 t % kServerThreads);
    channels.push_back(channel);
    stubs.push_back(std::make_unique<rfp::RpcClient>(channel));
  }
  server.Start();

  fault::FaultInjector injector(fabric);
  injector.BindServer(server_node.id(), &server);
  fault::FaultPlan plan;
  build_plan(plan, channels);
  injector.Arm(plan);

  for (int t = 0; t < kClientThreads; ++t) {
    engine.Spawn(Driver(engine, stubs[static_cast<size_t>(t)].get(),
                        &ops[static_cast<size_t>(t)], &mismatches[static_cast<size_t>(t)]));
  }

  const auto total = [&ops] {
    uint64_t sum = 0;
    for (uint64_t o : ops) {
      sum += o;
    }
    return sum;
  };
  uint64_t at_baseline = 0;
  uint64_t at_fault = 0;
  uint64_t at_recovery = 0;
  engine.ScheduleAt(kBaselineStart, [&] { at_baseline = total(); });
  engine.ScheduleAt(kFaultStart, [&] { at_fault = total(); });
  engine.ScheduleAt(kFaultEnd, [&] { at_recovery = total(); });
  engine.RunUntil(kRunEnd);
  server.Stop();

  const auto mops = [](uint64_t n, sim::Time window) {
    return static_cast<double>(n) / sim::ToSeconds(window) / 1e6;
  };
  Outcome out;
  out.before_mops = mops(at_fault - at_baseline, kFaultStart - kBaselineStart);
  out.during_mops = mops(at_recovery - at_fault, kFaultEnd - kFaultStart);
  out.after_mops = mops(total() - at_recovery, kRunEnd - kFaultEnd);
  for (rfp::Channel* channel : channels) {
    const rfp::Channel::Stats& s = channel->stats();
    out.stats.reconnects += s.reconnects;
    out.stats.reissues += s.reissues;
    out.stats.corrupt_fetches += s.corrupt_fetches;
    out.stats.fetch_timeouts += s.fetch_timeouts;
    out.stats.switches_to_reply += s.switches_to_reply;
  }
  for (uint64_t m : mismatches) {
    out.mismatches += m;
  }
  out.injected = injector.injected();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);

  using Builder = std::function<void(fault::FaultPlan&, const std::vector<rfp::Channel*>&)>;
  struct Class {
    const char* name;
    Builder build;
  };
  const sim::Time window = kFaultEnd - kFaultStart;
  const std::vector<Class> classes = {
      {"none", [](fault::FaultPlan&, const std::vector<rfp::Channel*>&) {}},
      {"nic_stall",
       [&](fault::FaultPlan& plan, const std::vector<rfp::Channel*>&) {
         // Four 150 us in-bound stalls of the server NIC across the window.
         for (int i = 0; i < 4; ++i) {
           plan.NicStall(kFaultStart + i * (window / 4), 0, /*inbound=*/true, sim::Micros(150));
         }
       }},
      {"nic_degrade",
       [&](fault::FaultPlan& plan, const std::vector<rfp::Channel*>&) {
         plan.NicDegrade(kFaultStart, 0, /*inbound=*/true, /*factor=*/6.0, window);
       }},
      {"link_burst",
       [&](fault::FaultPlan& plan, const std::vector<rfp::Channel*>&) {
         for (uint32_t client = 1; client <= kClientNodes; ++client) {
           plan.LinkBurst(kFaultStart, 0, client, /*loss_prob=*/0.3,
                          /*extra_delay_ns=*/sim::Micros(2), window);
         }
       }},
      {"server_crash",
       [&](fault::FaultPlan& plan, const std::vector<rfp::Channel*>&) {
         plan.ServerCrash(kFaultStart, 0, /*thread=*/0, window);
       }},
      {"qp_error",
       [&](fault::FaultPlan& plan, const std::vector<rfp::Channel*>&) {
         for (int i = 0; i < 3; ++i) {
           for (uint32_t client = 1; client <= kClientNodes; ++client) {
             plan.QpError(kFaultStart + i * (window / 3), 0, client);
           }
         }
       }},
      {"corrupt_region",
       [&](fault::FaultPlan& plan, const std::vector<rfp::Channel*>& channels) {
         // Flip response-payload bytes of every channel every 100 us.
         for (int i = 0; i < 20; ++i) {
           for (size_t c = 0; c < channels.size(); ++c) {
             plan.CorruptRegion(kFaultStart + i * (window / 20), channels[c]->server_rkey(),
                                channels[c]->response_offset() + rfp::kHeaderBytes, 16,
                                /*seed=*/static_cast<uint64_t>(i) * 100 + c);
           }
         }
       }},
  };

  bench::PrintTitle("Extension: fault tolerance (32 B echo; fault window 3-5 ms)");
  bench::PrintHeader({"fault", "before_mops", "during_mops", "after_mops", "after/before",
                      "timeouts", "reconnects", "reissues", "corrupt", "mismatches"});
  for (const Class& cls : classes) {
    const Outcome out = RunClass(cls.build);
    bench::PrintRow({cls.name, bench::Fmt(out.before_mops), bench::Fmt(out.during_mops),
                     bench::Fmt(out.after_mops),
                     bench::Fmt(out.before_mops > 0 ? out.after_mops / out.before_mops : 0, 3),
                     bench::FmtInt(out.stats.fetch_timeouts), bench::FmtInt(out.stats.reconnects),
                     bench::FmtInt(out.stats.reissues), bench::FmtInt(out.stats.corrupt_fetches),
                     bench::FmtInt(out.mismatches)});
  }
  std::printf(
      "\nexpected: after/before ~1.0 for every transient fault (the channels detect,\n"
      "recover, and resume the pre-fault rate); during the server-thread crash the\n"
      "cluster degrades to roughly 3/4 capacity but never deadlocks, and all rows\n"
      "report 0 payload mismatches\n");
  return 0;
}
