// Table 3: remote-fetch retry counts in Jakiro under four workloads.
//
// Paper: the fraction of calls needing more than one retry is ~0.09-0.13%,
// with occasional worst cases of 4-9 retries — and never two in a row, so
// the hybrid never flaps to server-reply on these workloads.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Table 3: Jakiro remote-fetch retries (32 B values)");
  bench::PrintHeader({"workload", "calls", "pct_N>1", "max_N", "switches"});
  struct Case {
    const char* name;
    workload::KeyDistribution dist;
    double get;
  };
  for (const Case& c : {Case{"uniform/95%GET", workload::KeyDistribution::kUniform, 0.95},
                        Case{"uniform/5%GET", workload::KeyDistribution::kUniform, 0.05},
                        Case{"skewed/95%GET", workload::KeyDistribution::kZipfian, 0.95},
                        Case{"skewed/5%GET", workload::KeyDistribution::kZipfian, 0.05}}) {
    bench::KvRunConfig config;
    config.workload = bench::PaperWorkload();
    config.workload.distribution = c.dist;
    config.workload.get_fraction = c.get;
    config.measure = sim::Millis(15);
    const bench::KvRunResult r = bench::RunKv(config);
    const sim::Histogram& hist = r.channels.retries_per_call;
    // Calls whose retry count exceeded 1.
    uint64_t over_one = 0;
    for (const auto& point : hist.Cdf()) {
      if (point.value <= 1) {
        over_one = hist.count() - static_cast<uint64_t>(point.cumulative *
                                                        static_cast<double>(hist.count()) + 0.5);
      }
    }
    bench::PrintRow({c.name, bench::FmtInt(hist.count()),
                     bench::Fmt(100.0 * static_cast<double>(over_one) /
                                    static_cast<double>(hist.count()),
                                4) + "%",
                     bench::FmtInt(static_cast<uint64_t>(hist.max())),
                     bench::FmtInt(r.channels.switches_to_reply)});
  }
  std::printf("\npaper: P(N>1) ~ 0.09-0.13%%, max N 4-9, and no mode switches\n");
  return 0;
}
