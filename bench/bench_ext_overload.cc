// Extension: graceful degradation under saturation (docs/overload.md).
//
// One echo cluster (1 server x 2 threads, 32 client channels on 4 nodes)
// is driven OPEN-LOOP: every channel fires requests at scheduled arrival
// times regardless of completions, and latency is measured from the
// scheduled arrival — so server-side queueing shows up in the numbers
// instead of silently throttling the offered load, as a closed loop would.
//
// The sweep crosses the saturation point (~1.1 Mops for this cluster) twice,
// once per configuration:
//   * protected: server admission control (watermark detector + per-sweep
//     budget + BUSY shedding), client per-call deadline, circuit breaker,
//     and the overload override of the R-based mode switch;
//   * unprotected: the stock adaptive channel, no deadline, no shedding.
//
// Expected shape (asserted by tests/rfp/overload_test.cc):
//   * below saturation the two configurations are equivalent (protection is
//     behavior-neutral when the watermarks never trip);
//   * at >= 2x saturation the protected cluster keeps goodput within ~10% of
//     its peak and the p99 of *admitted* requests bounded near the call
//     deadline, shedding the excess with cheap BUSY headers;
//   * the unprotected cluster's queue grows without bound: latency from
//     scheduled arrival climbs with the length of the run (the p99 column is
//     a large fraction of the measure window), and the R-based hysteresis
//     stampedes every channel into server-reply mode, paying an out-bound
//     WRITE per response exactly when the server has no cycles to spare.
//
// A final section crashes one of the two server threads in the middle of an
// overloaded window (fault plan from src/fault/) to show the two layers
// compose: shedding continues on the surviving thread, deadlines bound the
// damage on the dark one, and the crashed thread's backlog drains after
// restart.

#include "bench/common.h"

#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/injector.h"
#include "src/fault/plan.h"
#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"

namespace {

constexpr int kServerThreads = 2;
constexpr int kClientNodes = 4;
constexpr int kClients = 32;
constexpr uint32_t kResponseBytes = 32;
constexpr sim::Time kProcessNs = 1500;

const sim::Time kMeasureStart = sim::Millis(1);
const sim::Time kRunEnd = sim::Millis(7);

std::byte ExpectedByte(std::span<const std::byte> req, size_t i) {
  return req[i % req.size()] ^ static_cast<std::byte>(static_cast<uint8_t>(i * 29 + 3));
}

struct DriverCounts {
  uint64_t completed = 0;   // calls finished inside the measure window
  uint64_t shed = 0;        // DeadlineExceeded (server shed or deadline hit)
  uint64_t failed = 0;      // any other call failure
  uint64_t mismatches = 0;
  sim::Histogram latency;   // scheduled arrival -> completion, ns
};

// Open-loop driver: arrivals at fixed interarrival times (staggered per
// channel so the 32 drivers do not phase-lock). A call that overruns its
// interarrival makes the next request late; its latency is still charged
// from the *scheduled* arrival, so backlog is visible as latency. When a
// per-call deadline is configured, a request whose deadline already passed
// before it could even be issued (the channel was busy with earlier calls)
// is dead on arrival: it is shed at the client without touching the wire,
// which is what lets the driver catch back up instead of dragging an
// ever-growing issue backlog behind it.
sim::Task<void> Driver(sim::Engine& eng, rfp::RpcClient* client, sim::Time interarrival,
                       sim::Time first, sim::Time deadline, DriverCounts* counts) {
  std::vector<std::byte> req(8);
  std::vector<std::byte> resp(256);
  uint64_t n = 0;
  sim::Time scheduled = first;
  while (scheduled < kRunEnd) {
    if (eng.now() < scheduled) {
      co_await eng.Sleep(scheduled - eng.now());
    }
    if (deadline > 0 && eng.now() >= scheduled + deadline) {
      if (scheduled >= kMeasureStart) {
        ++counts->shed;
      }
      scheduled += interarrival;
      continue;
    }
    ++n;
    for (size_t i = 0; i < req.size(); ++i) {
      req[i] = static_cast<std::byte>(static_cast<uint8_t>(n >> (8 * i)));
    }
    const bool measured = scheduled >= kMeasureStart;
    try {
      const size_t got = co_await client->Call(1, req, resp);
      if (measured) {
        ++counts->completed;
        counts->latency.Record(eng.now() - scheduled);
      }
      if (got != kResponseBytes) {
        ++counts->mismatches;
      } else {
        for (size_t i = 0; i < kResponseBytes; ++i) {
          if (resp[i] != ExpectedByte(req, i)) {
            ++counts->mismatches;
            break;
          }
        }
      }
    } catch (const rfp::DeadlineExceeded&) {
      if (measured) {
        ++counts->shed;
      }
    } catch (const std::exception&) {
      if (measured) {
        ++counts->failed;
      }
    }
    scheduled += interarrival;
  }
}

struct Outcome {
  double goodput_mops = 0;
  double shed_pct = 0;     // shed / offered-in-window
  double p50_us = 0;
  double p99_us = 0;       // of admitted (completed) requests
  rfp::Channel::Stats stats;
  uint64_t server_shed = 0;
  uint64_t overload_enters = 0;
  uint64_t mismatches = 0;
  uint64_t failed = 0;
  uint64_t crashes = 0;
};

Outcome RunSweepPoint(double offered_mops, bool protect, bool crash) {
  sim::Engine engine;
  rdma::FabricConfig fc;
  fc.seed = bench::SeedOr(fc.seed);
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server_node = fabric.AddNode("server");
  std::vector<rdma::Node*> client_nodes;
  for (int n = 0; n < kClientNodes; ++n) {
    client_nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }

  rfp::ServerOptions server_options;
  server_options.admission_control = protect;
  if (protect) {
    // This cluster runs 16 channels per thread at ~1.7 us per request, so a
    // fully pending sweep holds ~27 us of work: trip the detector well below
    // that and release it once the backlog is mostly drained.
    server_options.overload_hi_watermark_ns = sim::Micros(20);
    server_options.overload_lo_watermark_ns = sim::Micros(5);
  }
  rfp::RpcServer server(fabric, server_node, kServerThreads, server_options);
  server.RegisterHandler(1, [](const rfp::HandlerContext&, std::span<const std::byte> req,
                               std::span<std::byte> resp) -> rfp::HandlerResult {
    for (size_t i = 0; i < kResponseBytes; ++i) {
      resp[i] = ExpectedByte(req, i);
    }
    return rfp::HandlerResult{kResponseBytes, kProcessNs};
  });

  rfp::RfpOptions options;
  if (protect) {
    options.call_deadline_ns = sim::Micros(100);
    options.breaker_enabled = true;
  }

  std::vector<rfp::Channel*> channels;
  std::vector<std::unique_ptr<rfp::RpcClient>> stubs;
  std::vector<DriverCounts> counts(kClients);
  for (int t = 0; t < kClients; ++t) {
    rfp::Channel* channel = server.AcceptChannel(
        *client_nodes[static_cast<size_t>(t % kClientNodes)], options, t % kServerThreads);
    channels.push_back(channel);
    stubs.push_back(std::make_unique<rfp::RpcClient>(channel));
  }
  server.Start();

  fault::FaultInjector injector(fabric);
  injector.BindServer(server_node.id(), &server);
  fault::FaultPlan plan;
  if (crash) {
    // One of the two workers goes dark for 1.5 ms mid-overload.
    plan.ServerCrash(sim::Millis(3), 0, /*thread=*/0, sim::Micros(1500));
  }
  injector.Arm(plan);

  const sim::Time interarrival =
      static_cast<sim::Time>(static_cast<double>(kClients) / (offered_mops * 1e6) * 1e9);
  for (int t = 0; t < kClients; ++t) {
    const sim::Time first = interarrival * t / kClients;
    engine.Spawn(Driver(engine, stubs[static_cast<size_t>(t)].get(), interarrival, first,
                        options.call_deadline_ns, &counts[static_cast<size_t>(t)]));
  }
  engine.RunUntil(kRunEnd);
  server.Stop();

  Outcome out;
  sim::Histogram latency;
  uint64_t completed = 0;
  uint64_t attempted = 0;
  for (const DriverCounts& c : counts) {
    completed += c.completed;
    attempted += c.completed + c.shed + c.failed;
    out.mismatches += c.mismatches;
    out.failed += c.failed;
    latency.Merge(c.latency);
  }
  const sim::Time window = kRunEnd - kMeasureStart;
  out.goodput_mops = static_cast<double>(completed) / sim::ToSeconds(window) / 1e6;
  out.shed_pct =
      attempted > 0
          ? 100.0 * static_cast<double>(attempted - completed) / static_cast<double>(attempted)
          : 0;
  out.p50_us = static_cast<double>(latency.Percentile(0.50)) / 1000.0;
  out.p99_us = static_cast<double>(latency.Percentile(0.99)) / 1000.0;
  for (rfp::Channel* channel : channels) {
    bench::MergeChannelStats(out.stats, channel->stats());
  }
  out.server_shed = server.requests_shed_admission() + server.requests_shed_deadline();
  out.overload_enters = server.overload_enters();
  out.crashes = server.thread_crashes();
  return out;
}

std::vector<std::string> Row(const std::string& config, double offered, const Outcome& out) {
  return {config,
          bench::Fmt(offered),
          bench::Fmt(out.goodput_mops),
          bench::Fmt(out.shed_pct, 1),
          bench::Fmt(out.p50_us, 1),
          bench::Fmt(out.p99_us, 1),
          bench::FmtInt(out.stats.busy_responses),
          bench::FmtInt(out.stats.breaker_opens),
          bench::FmtInt(out.stats.switches_to_reply),
          bench::FmtInt(out.mismatches + out.failed)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);

  const std::vector<double> offered = {0.4, 0.8, 1.2, 1.6, 2.0, 2.4};

  bench::PrintTitle(
      "Extension: overload protection (32 B echo, open-loop; saturation ~1.1 Mops)");
  bench::PrintHeader({"config", "offered", "goodput", "shed%", "p50_us", "p99_us", "busy",
                      "brk_open", "switches", "errors"});
  double protected_peak = 0;
  for (double rate : offered) {
    const Outcome out = RunSweepPoint(rate, /*protect=*/true, /*crash=*/false);
    if (out.goodput_mops > protected_peak) {
      protected_peak = out.goodput_mops;
    }
    bench::PrintRow(Row("protected", rate, out));
  }
  for (double rate : offered) {
    const Outcome out = RunSweepPoint(rate, /*protect=*/false, /*crash=*/false);
    bench::PrintRow(Row("unprotected", rate, out));
  }

  bench::PrintTitle("Composition: thread 0 of 2 crashes 3.0-4.5 ms into a 2x-overloaded run");
  bench::PrintHeader({"config", "offered", "goodput", "shed%", "p50_us", "p99_us", "busy",
                      "brk_open", "switches", "errors"});
  const Outcome crash = RunSweepPoint(2.0, /*protect=*/true, /*crash=*/true);
  bench::PrintRow(Row("protected+crash", 2.0, crash));

  std::printf(
      "\nexpected: protected goodput plateaus near its peak (%.2f Mops here) once\n"
      "offered exceeds saturation, with p99 of admitted requests bounded by the\n"
      "100 us call deadline plus issue slack (latency is charged from the\n"
      "scheduled arrival); unprotected goodput is paid for with queueing delay\n"
      "that grows with the run (p99 a large fraction of the 6 ms window) and a\n"
      "stampede of switches to server-reply; the crash row keeps shedding and\n"
      "recovers without errors\n",
      protected_peak);
  return 0;
}
