// Figure 12: throughput vs number of server threads (32-byte values,
// uniform 95% GET).
//
// Paper: Jakiro reaches 5.5 MOPS with ~2 threads and stays flat (the NIC's
// in-bound path is the bottleneck, not server CPU); ServerReply peaks at
// 2.1 MOPS at 6 threads and declines (out-bound scalability); RDMA-Memcached
// is CPU-bound and climbs slowly to ~1.3 MOPS at 16 threads.
//
// The jakiro-mc column is the multi-core dispatch extension
// (docs/multicore.md): the same store with workers pinned to CpuSet cores,
// coalesced fetch sweeps, and doorbell-batched reply publication. It tracks
// jakiro here — Fig 12's load is in-bound-limited long before dispatch CPU
// matters — and exists to show the dispatch tier does not tax the paper's
// operating point; bench_ext_multicore pushes it to where the extra
// headroom shows.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 12: throughput vs server threads (95% GET, 32 B)");
  bench::PrintHeader({"srv_threads", "jakiro", "jakiro-mc", "server-reply", "rdma-memc"});
  for (int threads : {1, 2, 4, 6, 8, 10, 12, 14, 16}) {
    std::vector<std::string> row{std::to_string(threads)};
    for (int variant = 0; variant < 4; ++variant) {
      bench::KvRunConfig config;
      config.system = variant <= 1   ? bench::KvSystem::kJakiro
                      : variant == 2 ? bench::KvSystem::kServerReply
                                     : bench::KvSystem::kMemcached;
      if (variant == 1) {  // jakiro-mc: the multi-core dispatch tier
        config.server.multicore = true;
        config.channel.coalesced_fetch = true;
      }
      config.server_threads = threads;
      config.workload = bench::PaperWorkload();
      row.push_back(bench::Fmt(bench::RunKv(config).mops));
    }
    bench::PrintRow(row);
  }
  std::printf("\npaper: Jakiro 5.5 flat from ~2 threads; ServerReply peak 2.1 @6 then declines;"
              "\n       RDMA-Memcached CPU-bound, ~1.3 at 16 threads\n");
  return 0;
}
