// Figure 12: throughput vs number of server threads (32-byte values,
// uniform 95% GET).
//
// Paper: Jakiro reaches 5.5 MOPS with ~2 threads and stays flat (the NIC's
// in-bound path is the bottleneck, not server CPU); ServerReply peaks at
// 2.1 MOPS at 6 threads and declines (out-bound scalability); RDMA-Memcached
// is CPU-bound and climbs slowly to ~1.3 MOPS at 16 threads.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 12: throughput vs server threads (95% GET, 32 B)");
  bench::PrintHeader({"srv_threads", "jakiro", "server-reply", "rdma-memc"});
  for (int threads : {1, 2, 4, 6, 8, 10, 12, 14, 16}) {
    std::vector<std::string> row{std::to_string(threads)};
    for (auto system : {bench::KvSystem::kJakiro, bench::KvSystem::kServerReply,
                        bench::KvSystem::kMemcached}) {
      bench::KvRunConfig config;
      config.system = system;
      config.server_threads = threads;
      config.workload = bench::PaperWorkload();
      row.push_back(bench::Fmt(bench::RunKv(config).mops));
    }
    bench::PrintRow(row);
  }
  std::printf("\npaper: Jakiro 5.5 flat from ~2 threads; ServerReply peak 2.1 @6 then declines;"
              "\n       RDMA-Memcached CPU-bound, ~1.3 at 16 threads\n");
  return 0;
}
