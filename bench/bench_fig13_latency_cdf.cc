// Figure 13: latency CDF of the three systems at their peak-throughput
// configurations (uniform 95% GET, 32-byte values).
//
// Paper: Jakiro mean 5.78 us with 99% of calls under ~7 us; ServerReply has
// a *lower* 15th percentile (a single WRITE beats a READ, and no fetch
// delay) but a much worse median/tail once out-bound queueing bites
// (mean 12.06 us); RDMA-Memcached is worst (mean 14.76 us). All three have
// long tails; Jakiro's is shortest.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 13: latency at peak throughput (95% GET, 32 B)");
  bench::PrintHeader({"system", "mops", "mean_us", "p15", "p50", "p99", "max_us"});
  struct Setup {
    bench::KvSystem system;
    int threads;
  };
  std::vector<sim::Histogram> cdfs;
  std::vector<std::string> names;
  for (const Setup& s : {Setup{bench::KvSystem::kJakiro, 6},
                         Setup{bench::KvSystem::kServerReply, 6},
                         Setup{bench::KvSystem::kMemcached, 16}}) {
    bench::KvRunConfig config;
    config.system = s.system;
    config.server_threads = s.threads;
    config.workload = bench::PaperWorkload();
    const bench::KvRunResult r = bench::RunKv(config);
    bench::PrintRow({bench::KvSystemName(s.system), bench::Fmt(r.mops),
                     bench::Fmt(r.latency.mean() / 1000.0),
                     bench::Fmt(static_cast<double>(r.latency.Percentile(0.15)) / 1000.0),
                     bench::Fmt(static_cast<double>(r.latency.Percentile(0.5)) / 1000.0),
                     bench::Fmt(static_cast<double>(r.latency.Percentile(0.99)) / 1000.0),
                     bench::Fmt(static_cast<double>(r.latency.max()) / 1000.0)});
    cdfs.push_back(r.latency);
    names.push_back(bench::KvSystemName(s.system));
  }
  std::printf("\n");
  for (size_t i = 0; i < cdfs.size(); ++i) {
    bench::PrintCdf(names[i], cdfs[i]);
  }
  std::printf("\npaper: Jakiro mean 5.78 us (99%% < ~7 us); ServerReply 12.06 us with lower"
              "\n       15th percentile; RDMA-Memcached 14.76 us; all long-tailed\n");
  return 0;
}
