// Extension: throughput-latency curves (the classic systems view the paper's
// per-point tables imply but never plot).
//
// Sweeping offered load (client threads) maps each system's operating curve:
// Jakiro rides flat latency until the in-bound path saturates; ServerReply
// hits its out-bound wall at a third of the load and queues from there;
// RDMA-Memcached saturates earliest on CPU/locks.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Extension: throughput vs mean latency under offered load (95% GET, 32 B)");
  bench::PrintHeader({"clients", "jak_mops", "jak_us", "rep_mops", "rep_us", "memc_mops",
                      "memc_us"});
  for (int clients : {7, 14, 21, 28, 35, 49, 70}) {
    std::vector<std::string> row{std::to_string(clients)};
    for (auto system : {bench::KvSystem::kJakiro, bench::KvSystem::kServerReply,
                        bench::KvSystem::kMemcached}) {
      bench::KvRunConfig config;
      config.system = system;
      config.server_threads = system == bench::KvSystem::kMemcached ? 16 : 6;
      config.client_threads = clients;
      config.workload = bench::PaperWorkload();
      const bench::KvRunResult r = bench::RunKv(config);
      row.push_back(bench::Fmt(r.mops));
      row.push_back(bench::Fmt(r.latency.mean() / 1000.0, 1));
    }
    bench::PrintRow(row);
  }
  std::printf("\nexpected: each system's throughput plateaus at its bottleneck and further\n"
              "load only buys queueing latency; Jakiro's plateau is ~2.7x higher at lower\n"
              "latency than either baseline\n");
  return 0;
}
