// Extension: lease-based client caching (C-Hint-style) on the skewed
// read-intensive workload — the consistency trade the paper contrasts with
// RFP (Section 5).
//
// A lease lets hot GETs complete locally with zero network ops, multiplying
// read throughput far beyond any NIC bound — at the price of bounded
// staleness: other clients' writes stay invisible for up to the lease. The
// bench sweeps the lease and reports both sides of the trade, with Jakiro
// (linearizable, no application cache logic) as the reference point.

#include "bench/common.h"

#include <memory>

#include "src/kv/lease_cache.h"
#include "src/rdma/fabric.h"
#include "src/sim/engine.h"

namespace {

struct Outcome {
  double mops = 0;
  double hit_rate = 0;
  double stale_fraction = 0;  // GETs that returned a superseded version
};

Outcome RunLeased(sim::Time lease_ns) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  kv::PilafConfig pc;
  pc.num_slots = 1 << 19;
  kv::PilafServer server(fabric, server_node, pc);

  workload::WorkloadSpec spec = bench::PaperWorkload();
  spec.num_keys = 1 << 17;
  spec.distribution = workload::KeyDistribution::kZipfian;
  spec.value_size = workload::ValueSizeSpec::Fixed(32);

  // Preload with version 0; a shared version table tracks the latest
  // committed version per key so readers can detect staleness.
  auto versions = std::make_shared<std::vector<uint64_t>>(spec.num_keys, 0);
  std::vector<std::byte> key(16);
  std::vector<std::byte> value(64);
  for (uint64_t id = 0; id < spec.num_keys; ++id) {
    workload::MakeKey(id, key);
    workload::FillValueVersioned(id, 0, std::span<std::byte>(value.data(), 32));
    if (!server.Preload(key, std::span<const std::byte>(value.data(), 32))) {
      throw std::runtime_error("lease bench preload failed");
    }
  }

  const int kClients = 30;
  const int kNodes = 6;
  std::vector<rdma::Node*> nodes;
  for (int n = 0; n < kNodes; ++n) {
    nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }
  struct ClientPair {
    std::unique_ptr<kv::PilafClient> base;
    std::unique_ptr<kv::LeaseCachedClient> cached;
  };
  std::vector<ClientPair> clients(kClients);
  std::vector<uint64_t> ops(kClients, 0);
  std::vector<uint64_t> stale(kClients, 0);
  const sim::Time warmup = sim::Millis(2);
  const sim::Time end = sim::Millis(8);
  for (int t = 0; t < kClients; ++t) {
    clients[static_cast<size_t>(t)].base = std::make_unique<kv::PilafClient>(
        fabric, *nodes[static_cast<size_t>(t % kNodes)], server, t % pc.server_threads);
    kv::LeaseCacheConfig lc;
    lc.lease_ns = lease_ns;
    lc.capacity = 16384;
    clients[static_cast<size_t>(t)].cached = std::make_unique<kv::LeaseCachedClient>(
        engine, clients[static_cast<size_t>(t)].base.get(), lc);
    engine.Spawn([](sim::Engine& eng, kv::LeaseCachedClient* c, workload::WorkloadSpec sp,
                    std::shared_ptr<std::vector<uint64_t>> vers, int id, sim::Time w,
                    sim::Time e, uint64_t* count, uint64_t* stale_count) -> sim::Task<void> {
      workload::Generator gen(sp, static_cast<uint64_t>(id));
      std::vector<std::byte> k(16);
      std::vector<std::byte> v(64);
      std::vector<std::byte> out(256);
      while (eng.now() < e) {
        const workload::Op op = gen.Next();
        workload::MakeKey(op.key_id, k);
        const sim::Time start = eng.now();
        if (op.type == workload::OpType::kGet) {
          auto size = co_await c->Get(k, out);
          if (start >= w && eng.now() <= e && size.has_value() && *size >= 8) {
            uint64_t seen = 0;
            std::memcpy(&seen, out.data(), sizeof(seen));
            if (seen < (*vers)[op.key_id]) {
              ++*stale_count;
            }
          }
        } else {
          const uint64_t next = (*vers)[op.key_id] + 1;
          workload::FillValueVersioned(op.key_id, next, std::span<std::byte>(v.data(), 32));
          co_await c->Put(k, std::span<const std::byte>(v.data(), 32));
          // Publish the version only after the PUT committed, so "stale"
          // counts cache staleness, not in-flight writes.
          if ((*vers)[op.key_id] < next) {
            (*vers)[op.key_id] = next;
          }
        }
        if (start >= w && eng.now() <= e) {
          ++*count;
        }
      }
    }(engine, clients[static_cast<size_t>(t)].cached.get(), spec, versions, t, warmup, end,
      &ops[static_cast<size_t>(t)], &stale[static_cast<size_t>(t)]));
  }
  server.Start();
  engine.RunUntil(end);
  server.Stop();

  Outcome outcome;
  uint64_t total = 0;
  uint64_t total_stale = 0;
  uint64_t hits = 0;
  uint64_t gets = 0;
  for (int t = 0; t < kClients; ++t) {
    total += ops[static_cast<size_t>(t)];
    total_stale += stale[static_cast<size_t>(t)];
    hits += clients[static_cast<size_t>(t)].cached->stats().cache_hits;
    gets += clients[static_cast<size_t>(t)].cached->stats().gets;
  }
  outcome.mops = static_cast<double>(total) / sim::ToSeconds(end - warmup) / 1e6;
  outcome.hit_rate = gets > 0 ? static_cast<double>(hits) / static_cast<double>(gets) : 0.0;
  outcome.stale_fraction =
      gets > 0 ? static_cast<double>(total_stale) / static_cast<double>(gets) : 0.0;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  // Reference: Jakiro on the same skewed workload (linearizable, no cache).
  bench::KvRunConfig jc;
  jc.workload = bench::PaperWorkload();
  jc.workload.distribution = workload::KeyDistribution::kZipfian;
  const double jakiro = bench::RunKv(jc).mops;

  bench::PrintTitle("Extension: C-Hint-style lease caching (Zipf .99, 95% GET, 32 B)");
  bench::PrintHeader({"lease_us", "mops", "hit_rate", "stale_gets", "vs_jakiro"});
  for (int lease_us : {0, 10, 50, 200, 1000}) {
    const Outcome r = RunLeased(sim::Micros(lease_us));
    bench::PrintRow({std::to_string(lease_us), bench::Fmt(r.mops),
                     bench::Fmt(100.0 * r.hit_rate, 1) + "%",
                     bench::Fmt(100.0 * r.stale_fraction, 3) + "%",
                     bench::Fmt(r.mops / jakiro, 2) + "x"});
  }
  std::printf("\n(jakiro reference: %.2f MOPS, 0%% stale, no per-application cache logic)\n"
              "expected: leases buy hot-read throughput at a bounded-staleness price that\n"
              "grows with the lease — the consistency reasoning the paper says C-Hint-class\n"
              "designs push onto every application, and RFP avoids\n",
              jakiro);
  return 0;
}
