// Extension: UD datagram RPC (HERD/FaSST-style) vs RFP under packet loss.
//
// Section 5: UD "may achieve higher performance than RC-based solutions ...
// but it is at a cost of requiring the applications to handle many subtle
// problems, such as message lost, reorder and duplication. Considering the
// fatal outcome, even if such subtle problems rarely happen in the
// real-world, they cannot be simply ignored." This bench quantifies both
// halves: UD's clean-network behaviour, and what loss does to it while
// RC-based RFP is unaffected.

#include "bench/common.h"

#include <memory>

#include "src/rdma/fabric.h"
#include "src/rfp/ud_rpc.h"
#include "src/sim/engine.h"

namespace {

struct UdOutcome {
  double mops = 0;
  double mean_us = 0;
  double p99_us = 0;
  uint64_t retransmits = 0;
};

UdOutcome RunUd(double loss) {
  sim::Engine engine;
  rdma::FabricConfig fc;
  fc.unreliable_loss_prob = loss;
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server_node = fabric.AddNode("server");
  rfp::UdRpcServer server(fabric, server_node, 8);
  server.RegisterHandler(1, [](const rfp::HandlerContext&, std::span<const std::byte>,
                               std::span<std::byte>) -> rfp::HandlerResult {
    return rfp::HandlerResult{32, sim::Nanos(400)};
  });
  server.Start();

  const int kClients = 35;
  const int kNodes = 7;
  std::vector<rdma::Node*> nodes;
  for (int n = 0; n < kNodes; ++n) {
    nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }
  std::vector<std::unique_ptr<rfp::UdRpcClient>> clients;
  std::vector<uint64_t> ops(kClients, 0);
  std::vector<sim::Histogram> lats(kClients);
  const sim::Time warmup = sim::Millis(2);
  const sim::Time end = sim::Millis(8);
  for (int t = 0; t < kClients; ++t) {
    clients.push_back(std::make_unique<rfp::UdRpcClient>(fabric, *nodes[static_cast<size_t>(t % kNodes)],
                                                         server.address(t % 8)));
    engine.Spawn([](sim::Engine& eng, rfp::UdRpcClient* c, sim::Time w, sim::Time e,
                    uint64_t* count, sim::Histogram* lat) -> sim::Task<void> {
      std::vector<std::byte> req(1);
      std::vector<std::byte> resp(256);
      while (eng.now() < e) {
        const sim::Time start = eng.now();
        co_await c->Call(1, req, resp);
        if (start >= w && eng.now() <= e) {
          ++*count;
          lat->Record(eng.now() - start);
        }
      }
    }(engine, clients.back().get(), warmup, end, &ops[static_cast<size_t>(t)],
      &lats[static_cast<size_t>(t)]));
  }
  engine.RunUntil(end);
  server.Stop();

  UdOutcome outcome;
  uint64_t total = 0;
  sim::Histogram latency;
  for (int t = 0; t < kClients; ++t) {
    total += ops[static_cast<size_t>(t)];
    latency.Merge(lats[static_cast<size_t>(t)]);
    outcome.retransmits += clients[static_cast<size_t>(t)]->stats().retransmits;
  }
  outcome.mops = static_cast<double>(total) / sim::ToSeconds(end - warmup) / 1e6;
  outcome.mean_us = latency.mean() / 1000.0;
  outcome.p99_us = static_cast<double>(latency.Percentile(0.99)) / 1000.0;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  // RFP reference on the same task (RC is loss-free by transport contract).
  bench::EchoRunConfig rc;
  rc.process_ns = sim::Nanos(400);
  rc.result_size = 32;
  const bench::EchoRunResult rfp = bench::RunEcho(rc);

  bench::PrintTitle("Extension: UD datagram RPC vs RFP under packet loss (32 B echo)");
  bench::PrintHeader({"loss", "ud_mops", "ud_mean_us", "ud_p99_us", "retransmits", "rfp_mops"});
  for (double loss : {0.0, 1e-5, 1e-3, 1e-2, 5e-2}) {
    const UdOutcome ud = RunUd(loss);
    char label[32];
    std::snprintf(label, sizeof(label), "%.0e", loss);
    bench::PrintRow({loss == 0.0 ? "0" : label, bench::Fmt(ud.mops), bench::Fmt(ud.mean_us),
                     bench::Fmt(ud.p99_us), bench::FmtInt(ud.retransmits),
                     bench::Fmt(rfp.mops)});
  }
  std::printf("\nexpected: UD matches server-reply-class throughput on a clean network (its\n"
              "replies still pay the server's out-bound cost) and keeps working under loss —\n"
              "but every lost packet costs a full retransmit timeout, exploding the tail,\n"
              "while RC-based RFP is untouched at any loss rate\n");
  return 0;
}
