// Figure 10: Jakiro throughput vs number of client threads.
//
// Paper: 6 server threads, 32-byte values, uniform 95% GET; peak 5.5 MOPS
// at 35 client threads, declining slightly beyond as client-side out-bound
// contention kicks in.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 10: Jakiro throughput vs client threads (95% GET, 32 B)");
  bench::PrintHeader({"clients", "mops", "rtrips/call", "avg_us", "p99_us"});
  for (int clients : {7, 14, 21, 28, 35, 42, 49, 56, 63, 70}) {
    bench::KvRunConfig config;
    config.system = bench::KvSystem::kJakiro;
    config.server_threads = 6;
    config.client_threads = clients;
    config.workload = bench::PaperWorkload();
    const bench::KvRunResult r = bench::RunKv(config);
    bench::PrintRow({std::to_string(clients), bench::Fmt(r.mops),
                     bench::Fmt(r.channels.RoundTripsPerCall(), 3),
                     bench::Fmt(r.latency.mean() / 1000.0),
                     bench::Fmt(static_cast<double>(r.latency.Percentile(0.99)) / 1000.0)});
    if (r.verify_failures != 0) {
      std::printf("!! %llu verification failures\n",
                  static_cast<unsigned long long>(r.verify_failures));
    }
  }
  std::printf("\npaper: peak 5.5 MOPS at 35 client threads, slight decline beyond\n");
  return 0;
}
