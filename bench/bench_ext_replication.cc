// Extension: availability under a primary kill (docs/replication.md).
//
// A two-node replicated Jakiro cluster serves a closed-loop 50/50 PUT/GET
// workload from 4 client nodes. At 2 ms the whole primary node is killed
// (every server thread, for the rest of the run); the FailoverCoordinator's
// lease expires, the backup replays its tail and promotes, and the clients
// chase the redirect to the new leader. The run is scored as an
// availability trace: completed ops per 100 us bucket, the dip around the
// kill, and the time from promotion until goodput is back to >= 90% of the
// pre-kill steady state.
//
// One row per ack mode:
//   * sync  — a PUT acks only after the backup holds it, so the oracle
//             (every actor re-reads its own last-acked value per key after
//             the failover) must find zero lost acked PUTs;
//   * async — PUTs ack immediately and the shipper drains in the background
//             under a bounded lag, trading a (reported) window of acked-but-
//             unshipped writes for lower PUT latency before the kill.
//
// Expected shape (asserted by tests/repl/failover_test.cc): promotion within
// ~2 lease intervals of the kill, goodput back to >= 90% of steady state
// within one lease of the promotion, and lost_acked = 0 in sync mode.

#include "bench/common.h"

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/injector.h"
#include "src/fault/plan.h"
#include "src/rdma/fabric.h"
#include "src/repl/cluster.h"
#include "src/sim/engine.h"

namespace {

constexpr int kClients = 4;
constexpr int kKeysPerClient = 8;

const sim::Time kBucket = sim::Micros(100);
const sim::Time kSteadyStart = sim::Millis(1);
const sim::Time kKill = sim::Millis(2);
const sim::Time kWorkEnd = sim::Millis(5);
const sim::Time kRunEnd = sim::Millis(8);

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

std::string ToString(std::span<const std::byte> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

struct RunOut {
  std::vector<uint64_t> buckets;    // completed ops per kBucket slice
  double steady_kops = 0;           // mean rate over [1 ms, 2 ms)
  double dip_kops = 0;              // worst bucket in [kill, kill + 1 ms)
  sim::Time promoted_at = 0;
  sim::Time recovered_at = -1;      // first bucket back at >= 90% of steady
  uint64_t acked_puts = 0;
  uint64_t lost_acked = 0;          // oracle: last-acked value missing/wrong
  uint64_t redirects = 0;           // redirects + deadline re-resolutions
  uint64_t replayed = 0;            // tail records replayed at promotion
  double mean_lag = 0;              // log lag at append (records)
  int64_t max_lag = 0;
};

// One actor: closed-loop alternating PUT/GET over its own key slice, then —
// after the workload window — the oracle pass re-reading every key it got a
// PUT ack for and comparing against the last acked value.
sim::Task<void> Actor(sim::Engine& eng, repl::Client* client, int id,
                      std::vector<uint64_t>* buckets, uint64_t* acked_puts,
                      uint64_t* lost_acked) {
  std::map<std::string, std::string> acked;
  std::vector<std::byte> buf(256);
  uint64_t seq = 0;
  while (eng.now() < kWorkEnd) {
    const std::string key =
        "a" + std::to_string(id) + "_k" + std::to_string(seq % kKeysPerClient);
    try {
      if (seq % 2 == 0) {
        const std::string value = "v" + std::to_string(seq);
        if (co_await client->Put(Bytes(key), Bytes(value))) {
          acked[key] = value;
          ++*acked_puts;
        }
      } else {
        co_await client->Get(Bytes(key), buf);
      }
      const size_t b = static_cast<size_t>(eng.now() / kBucket);
      if (b < buckets->size()) {
        ++(*buckets)[b];
      }
    } catch (const std::exception&) {
      // Retry budget exhausted mid-failover: the op is simply not goodput.
    }
    ++seq;
  }
  for (const auto& [key, value] : acked) {
    try {
      auto got = co_await client->Get(Bytes(key), buf);
      if (!got.has_value() || ToString({buf.data(), *got}) != value) {
        ++*lost_acked;
      }
    } catch (const std::exception&) {
      ++*lost_acked;  // unreadable counts as lost: the ack promised durability
    }
  }
}

RunOut Run(repl::ReplOptions::AckMode mode) {
  sim::Engine engine;
  rdma::FabricConfig fc;
  fc.seed = bench::SeedOr(fc.seed);
  rdma::Fabric fabric(engine, fc);

  repl::ClusterConfig config = repl::DefaultClusterConfig();
  config.repl.ack_mode = mode;
  config.repl.lease_interval_ns = sim::Micros(500);
  config.repl.probe_interval_ns = sim::Micros(50);
  repl::Cluster cluster(fabric, config);

  std::vector<std::unique_ptr<repl::Client>> clients;
  for (int c = 0; c < kClients; ++c) {
    rdma::Node& node = fabric.AddNode("client" + std::to_string(c));
    clients.push_back(std::make_unique<repl::Client>(cluster, node));
  }
  cluster.Start();

  fault::FaultInjector injector(fabric);
  injector.BindServer(cluster.primary().node().id(), &cluster.primary().rpc());
  fault::FaultPlan plan;
  plan.ServerCrashAll(kKill, cluster.primary().node().id(), kRunEnd);  // dark for good
  injector.Arm(plan);

  RunOut out;
  out.buckets.assign(static_cast<size_t>(kRunEnd / kBucket), 0);
  std::vector<uint64_t> acked(kClients, 0);
  std::vector<uint64_t> lost(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    engine.Spawn(Actor(engine, clients[static_cast<size_t>(c)].get(), c, &out.buckets,
                       &acked[static_cast<size_t>(c)], &lost[static_cast<size_t>(c)]));
  }
  engine.RunUntil(kRunEnd);
  cluster.Stop();

  for (int c = 0; c < kClients; ++c) {
    out.acked_puts += acked[static_cast<size_t>(c)];
    out.lost_acked += lost[static_cast<size_t>(c)];
    out.redirects += clients[static_cast<size_t>(c)]->redirects_seen() +
                     clients[static_cast<size_t>(c)]->deadline_retries();
  }
  out.promoted_at = cluster.coordinator().promoted_at();
  out.replayed = cluster.sink().replayed();
  out.mean_lag = cluster.replicator().lag_histogram().mean();
  out.max_lag = cluster.replicator().lag_histogram().max();

  const auto kops = [](uint64_t n) {
    return static_cast<double>(n) / sim::ToSeconds(kBucket) / 1e3;
  };
  const size_t steady_lo = static_cast<size_t>(kSteadyStart / kBucket);
  const size_t kill_bucket = static_cast<size_t>(kKill / kBucket);
  uint64_t steady_ops = 0;
  for (size_t b = steady_lo; b < kill_bucket; ++b) {
    steady_ops += out.buckets[b];
  }
  out.steady_kops = kops(steady_ops) / static_cast<double>(kill_bucket - steady_lo);

  uint64_t dip = out.buckets[kill_bucket];
  const size_t dip_end = kill_bucket + static_cast<size_t>(sim::Millis(1) / kBucket);
  for (size_t b = kill_bucket; b < dip_end && b < out.buckets.size(); ++b) {
    dip = std::min(dip, out.buckets[b]);
  }
  out.dip_kops = kops(dip);

  for (size_t b = kill_bucket; b < static_cast<size_t>(kWorkEnd / kBucket); ++b) {
    if (kops(out.buckets[b]) >= 0.9 * out.steady_kops) {
      out.recovered_at = static_cast<sim::Time>(b) * kBucket;
      break;
    }
  }
  return out;
}

std::string FmtUs(sim::Time t) {
  return t < 0 ? std::string("never") : bench::Fmt(static_cast<double>(t) / 1000.0, 1);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);

  const repl::ReplOptions::AckMode modes[] = {repl::ReplOptions::AckMode::kSync,
                                              repl::ReplOptions::AckMode::kAsync};
  std::vector<RunOut> runs;

  bench::PrintTitle(
      "Extension: replicated KV availability under a primary kill at 2 ms "
      "(lease 500 us, 4 clients, 50/50 PUT/GET)");
  bench::PrintHeader({"ack_mode", "steady_kops", "dip_kops", "promoted_us", "recovered_us",
                      "recover_dt_us", "within_lease", "acked_puts", "lost_acked",
                      "fo_retries", "replayed", "mean_lag", "max_lag"});
  for (repl::ReplOptions::AckMode mode : modes) {
    const RunOut r = Run(mode);
    const sim::Time after =
        r.recovered_at < 0 || r.promoted_at <= 0 ? -1 : r.recovered_at - r.promoted_at;
    bench::PrintRow({mode == repl::ReplOptions::AckMode::kSync ? "sync" : "async",
                     bench::Fmt(r.steady_kops), bench::Fmt(r.dip_kops), FmtUs(r.promoted_at),
                     FmtUs(r.recovered_at), FmtUs(after),
                     after >= 0 && after <= sim::Micros(500) ? "yes" : "no",
                     bench::FmtInt(r.acked_puts), bench::FmtInt(r.lost_acked),
                     bench::FmtInt(r.redirects), bench::FmtInt(r.replayed),
                     bench::Fmt(r.mean_lag), bench::FmtInt(static_cast<uint64_t>(r.max_lag))});
    runs.push_back(r);
  }

  bench::PrintTitle("Availability trace around the kill (completed ops per 100 us bucket)");
  bench::PrintHeader({"t_us", "sync_ops", "async_ops"});
  const size_t lo = static_cast<size_t>((kKill - sim::Micros(400)) / kBucket);
  const size_t hi = static_cast<size_t>((kKill + sim::Micros(2000)) / kBucket);
  for (size_t b = lo; b <= hi; ++b) {
    bench::PrintRow({bench::FmtInt(static_cast<uint64_t>(b) * 100),
                     bench::FmtInt(runs[0].buckets[b]), bench::FmtInt(runs[1].buckets[b])});
  }

  std::printf(
      "\nexpected: goodput dips to ~0 between the kill and the promotion (about\n"
      "2 lease intervals: a full lease must expire, unrenewed, before the backup\n"
      "takes over), then recovers to >= 90%% of the pre-kill steady state within\n"
      "one lease of promoted_us; sync rows report lost_acked = 0 (every acked PUT\n"
      "survives the failover), async trades that guarantee for a bounded lag\n");
  return 0;
}
