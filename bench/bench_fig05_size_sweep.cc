// Figure 5: in-bound vs out-bound IOPS across payload sizes.
//
// Paper: in-bound is flat (~11.26 MOPS) up to 256 B, declines once
// bandwidth dominates, and meets the out-bound curve at >= 2 KB where both
// are bandwidth-bound. This curve defines the [L, H] fetch-size range
// (L = 256 B, H = 1 KB on the paper's RNIC).

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 5: IOPS vs payload size");
  bench::PrintHeader({"size_B", "inbound", "outbound", "ratio"});
  for (uint32_t size : {32u, 64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    const double in = bench::RawInboundMops(7, 4, size);
    const double out = bench::RawOutboundMops(4, size);
    bench::PrintRow({std::to_string(size), bench::Fmt(in), bench::Fmt(out),
                     bench::Fmt(in / out, 2) + "x"});
  }
  std::printf("\npaper: flat to 256 B, bandwidth knee after, parity at >= 2 KB\n");
  return 0;
}
