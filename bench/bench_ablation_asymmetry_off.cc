// Ablation: what if the RNIC had no in/out-bound asymmetry?
//
// RFP's advantage over server-reply rests on observation 1 (in-bound ops
// are ~5x cheaper to serve than out-bound ops are to issue). Configuring a
// symmetric NIC (out-bound issue as cheap as in-bound serving) should make
// the Jakiro/ServerReply gap collapse — isolating the root cause.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Ablation: RFP gain with and without the in/out-bound asymmetry");
  bench::PrintHeader({"nic", "jakiro", "server-reply", "gain"});

  for (bool symmetric : {false, true}) {
    rdma::FabricConfig fabric;
    if (symmetric) {
      // Out-bound issue as fast as in-bound serving; everything else equal.
      fabric.nic.outbound_issue_ns = fabric.nic.inbound_min_gap_ns;
      fabric.nic.outbound_write_thread_factor = 0.0;
    }
    double mops[2] = {0, 0};
    int i = 0;
    for (auto system : {bench::KvSystem::kJakiro, bench::KvSystem::kServerReply}) {
      bench::KvRunConfig config;
      config.system = system;
      config.workload = bench::PaperWorkload();
      config.fabric = fabric;
      mops[i++] = bench::RunKv(config).mops;
    }
    bench::PrintRow({symmetric ? "symmetric" : "asymmetric", bench::Fmt(mops[0]),
                     bench::Fmt(mops[1]), bench::Fmt(mops[0] / mops[1], 2) + "x"});
  }
  std::printf("\nexpected: ~2.7x gain on the real (asymmetric) NIC, ~1x when symmetric —\n"
              "the asymmetry is the root cause of RFP's win over server-reply\n");
  return 0;
}
