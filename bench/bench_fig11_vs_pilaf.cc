// Figure 11: Jakiro vs Pilaf under a write-heavy (50% GET) uniform workload.
//
// Paper (20 Gbps-class comparison): Pilaf's bypass amplification plus CRC
// retry traffic cap it near 1.3 MOPS, while Jakiro sustains ~5.4 MOPS — a
// ~4x gap that holds across 32-256 B values.

#include "bench/common.h"

#include <algorithm>

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 11: Jakiro vs Pilaf, uniform 50% GET");
  bench::PrintHeader({"value_B", "jakiro", "pilaf", "speedup", "pilaf_rd/get", "crc_fail"});
  for (uint32_t value : {32u, 64u, 128u, 256u}) {
    bench::KvRunConfig jc;
    jc.workload = bench::PaperWorkload();
    jc.workload.get_fraction = 0.5;
    jc.workload.value_size = workload::ValueSizeSpec::Fixed(value);
    // Fetch size as the pre-run selector would choose for this value size.
    jc.channel.fetch_size = std::max<uint32_t>(256, value + 24);
    const bench::KvRunResult jakiro = bench::RunKv(jc);

    bench::PilafRunConfig pc;
    pc.workload = jc.workload;
    pc.workload.num_keys = 1 << 17;  // keep the cuckoo table at ~75% fill
    const bench::PilafRunResult pilaf = bench::RunPilaf(pc);

    bench::PrintRow({std::to_string(value), bench::Fmt(jakiro.mops), bench::Fmt(pilaf.mops),
                     bench::Fmt(jakiro.mops / pilaf.mops, 1) + "x",
                     bench::Fmt(pilaf.reads_per_get, 2),
                     bench::FmtInt(pilaf.crc_failures)});
    if (jakiro.verify_failures + pilaf.verify_failures != 0) {
      std::printf("!! verification failures: jakiro=%llu pilaf=%llu\n",
                  static_cast<unsigned long long>(jakiro.verify_failures),
                  static_cast<unsigned long long>(pilaf.verify_failures));
    }
  }
  std::printf("\npaper: Jakiro ~5.4 MOPS vs Pilaf ~1.3 MOPS (~4x) across 32-256 B\n");
  return 0;
}
