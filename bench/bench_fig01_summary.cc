// Figure 1 (conceptual): measured-performance bars of the three paradigms,
// regenerated as the headline ratios of the evaluation.
//
// Paper abstract: RFP improves throughput by 1.6x-4x over both server-reply
// and server-bypass.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 1 summary: measured paradigm performance (32 B values)");

  bench::KvRunConfig jc;
  jc.workload = bench::PaperWorkload();
  const double jakiro_95 = bench::RunKv(jc).mops;

  jc.system = bench::KvSystem::kServerReply;
  const double reply_95 = bench::RunKv(jc).mops;

  bench::KvRunConfig j50 = jc;
  j50.system = bench::KvSystem::kJakiro;
  j50.workload.get_fraction = 0.5;
  const double jakiro_50 = bench::RunKv(j50).mops;

  bench::PilafRunConfig pc;
  pc.workload = bench::PaperWorkload();
  pc.workload.get_fraction = 0.5;
  pc.workload.num_keys = 1 << 17;
  const double pilaf_50 = bench::RunPilaf(pc).mops;

  bench::PrintHeader({"paradigm", "workload", "mops", "rfp_gain"});
  bench::PrintRow({"RFP(Jakiro)", "95% GET", bench::Fmt(jakiro_95), "1.0x"});
  bench::PrintRow({"server-reply", "95% GET", bench::Fmt(reply_95),
                   bench::Fmt(jakiro_95 / reply_95, 1) + "x"});
  bench::PrintRow({"RFP(Jakiro)", "50% GET", bench::Fmt(jakiro_50), "1.0x"});
  bench::PrintRow({"server-bypass", "50% GET", bench::Fmt(pilaf_50),
                   bench::Fmt(jakiro_50 / pilaf_50, 1) + "x"});
  std::printf("\npaper: RFP 1.6x-4x over both paradigms\n");
  return 0;
}
