#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/check/checker.h"
#include "src/conn/connector.h"
#include "src/kv/jakiro.h"
#include "src/kv/pilaf_store.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/rdma/fabric.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"

namespace bench {

namespace {

constexpr int kColumnWidth = 14;

// ---- --json / --trace harness state -------------------------------------------

// One printed table: PrintTitle opens it, PrintHeader names the columns,
// PrintRow appends. The JSON dump replays these verbatim.
struct CapturedTable {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

// One simulated run (one engine) with the parameters the runner was given.
struct CapturedRun {
  std::string label;
  std::vector<std::pair<std::string, std::string>> params;
};

struct Harness {
  std::string bench_name;
  std::string json_path;   // empty = no JSON dump
  std::string trace_path;  // empty = no trace dump
  std::vector<std::string> argv;
  std::vector<CapturedTable> tables;
  std::vector<CapturedRun> runs;
  std::unique_ptr<obs::Tracer> tracer;
};

// Leaked singleton; nullptr until Init sees at least one harness flag, so the
// capture paths below stay dead (and free) in plain text runs.
Harness* harness = nullptr;

// --seed=N override; consulted by every runner through SeedOr().
uint64_t g_seed = 0;
bool g_seed_set = false;

bool CaptureRows() { return harness != nullptr && !harness->json_path.empty(); }

CapturedTable& CurrentTable() {
  if (harness->tables.empty()) {
    harness->tables.emplace_back();  // rows printed before any PrintTitle
  }
  return harness->tables.back();
}

void WriteHarnessJson(const Harness& h, std::string* out) {
  obs::JsonWriter w(out);
  w.BeginObject();
  w.Field("bench", h.bench_name);
  w.Field("schema_version", 1);
  w.Key("config");
  w.BeginObject();
  w.Key("argv");
  w.BeginArray();
  for (const auto& a : h.argv) {
    w.String(a);
  }
  w.EndArray();
  w.Field("bench_scale", [] {
    const char* env = std::getenv("RFP_BENCH_SCALE");
    return env == nullptr ? 1.0 : std::atof(env);
  }());
  if (g_seed_set) {
    w.Field("seed", std::to_string(g_seed));
  }
  w.Field("check_mode", check::ModeName(check::CurrentMode()));
  w.Key("runs");
  w.BeginArray();
  for (const auto& run : h.runs) {
    w.BeginObject();
    w.Field("label", run.label);
    w.Key("params");
    w.BeginObject();
    for (const auto& [k, v] : run.params) {
      w.Field(k, v);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("rows");
  w.BeginArray();
  for (const auto& table : h.tables) {
    for (const auto& row : table.rows) {
      w.BeginObject();
      w.Field("table", table.title);
      w.Key("values");
      w.BeginObject();
      for (size_t i = 0; i < row.size(); ++i) {
        // Unnamed columns (no PrintHeader, or extra cells) fall back to c<i>.
        const std::string key =
            i < table.columns.size() ? table.columns[i] : "c" + std::to_string(i);
        w.Field(key, row[i]);
      }
      w.EndObject();
      w.EndObject();
    }
  }
  w.EndArray();
  w.Key("metrics");
  obs::MetricsRegistry::Default().WriteJson(w);
  w.EndObject();
}

// atexit hook: by now every runner-scoped server/client/NIC has been
// destroyed, so the metrics registry holds the complete flush.
void WriteHarnessOutputs() {
  if (harness == nullptr) {
    return;
  }
  if (!harness->json_path.empty()) {
    std::string out;
    WriteHarnessJson(*harness, &out);
    out.push_back('\n');
    std::FILE* f = std::fopen(harness->json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write --json file %s\n", harness->json_path.c_str());
    } else {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
    }
  }
  if (!harness->trace_path.empty() && harness->tracer != nullptr) {
    if (!harness->tracer->WriteFile(harness->trace_path)) {
      std::fprintf(stderr, "bench: cannot write --trace file %s\n", harness->trace_path.c_str());
    }
  }
}

// Registers the run with the harness (for the JSON config block) and attaches
// the tracer to the run's fresh engine as its own trace "process". Inert
// without flags.
void BeginBenchRun(sim::Engine& engine, std::string label,
                   std::vector<std::pair<std::string, std::string>> params) {
  if (harness == nullptr) {
    return;
  }
  if (harness->tracer != nullptr) {
    engine.set_trace_sink(harness->tracer.get());
    harness->tracer->BeginRun(label);
  }
  if (!harness->json_path.empty()) {
    harness->runs.push_back(CapturedRun{std::move(label), std::move(params)});
  }
}

std::string TimeParam(sim::Time t) { return std::to_string(t); }

struct LoopCounter {
  uint64_t ops = 0;
};

sim::Task<void> ReadLoop(sim::Engine& eng, rdma::QueuePair* qp, rdma::MemoryRegion* local,
                         rdma::MemoryRegion* remote, uint32_t size, sim::Time deadline,
                         LoopCounter* out) {
  while (eng.now() < deadline) {
    rdma::WorkCompletion wc = co_await qp->Read(*local, 0, remote->remote_key(), 0, size);
    if (!wc.ok()) {
      throw std::runtime_error("bench: read failed");
    }
    ++out->ops;
  }
}

sim::Task<void> WriteLoop(sim::Engine& eng, rdma::QueuePair* qp, rdma::MemoryRegion* local,
                          rdma::MemoryRegion* remote, uint32_t size, sim::Time deadline,
                          LoopCounter* out) {
  while (eng.now() < deadline) {
    rdma::WorkCompletion wc = co_await qp->Write(*local, 0, remote->remote_key(), 0, size);
    if (!wc.ok()) {
      throw std::runtime_error("bench: write failed");
    }
    ++out->ops;
  }
}

// A request that needs k sequential one-sided READs (Fig 6's bypass
// amplification pattern).
sim::Task<void> AmplifiedRequestLoop(sim::Engine& eng, rdma::QueuePair* qp,
                                     rdma::MemoryRegion* local, rdma::MemoryRegion* remote,
                                     uint32_t size, int ops_per_request, sim::Time deadline,
                                     LoopCounter* requests) {
  while (eng.now() < deadline) {
    for (int i = 0; i < ops_per_request; ++i) {
      rdma::WorkCompletion wc = co_await qp->Read(*local, 0, remote->remote_key(),
                                                  static_cast<size_t>(i) * size, size);
      if (!wc.ok()) {
        throw std::runtime_error("bench: amplified read failed");
      }
    }
    ++requests->ops;
  }
}

// RFP_BENCH_SCALE multiplies every warmup/measure window (e.g. 0.2 for a
// quick smoke pass, 4 for tighter confidence intervals).
double BenchScale() {
  static const double scale = [] {
    const char* env = std::getenv("RFP_BENCH_SCALE");
    if (env == nullptr) {
      return 1.0;
    }
    const double parsed = std::atof(env);
    return parsed > 0.0 ? parsed : 1.0;
  }();
  return scale;
}

sim::Time Scaled(sim::Time t) {
  return static_cast<sim::Time>(static_cast<double>(t) * BenchScale());
}

double SumMops(const std::vector<LoopCounter>& counters, sim::Time window) {
  uint64_t total = 0;
  for (const auto& c : counters) {
    total += c.ops;
  }
  return static_cast<double>(total) / sim::ToSeconds(window) / 1e6;
}

struct ThreadCounters {
  uint64_t ops = 0;
  sim::Histogram latency;
  uint64_t verify_failures = 0;
};

// Deterministic per-key value size for preloading under a size distribution.
uint32_t PreloadValueSize(const workload::WorkloadSpec& spec, uint64_t key_id) {
  switch (spec.value_size.kind) {
    case workload::ValueSizeSpec::Kind::kFixed:
      return spec.value_size.fixed;
    case workload::ValueSizeSpec::Kind::kUniformRange:
      return spec.value_size.lo +
             static_cast<uint32_t>(sim::Mix64(key_id) %
                                   (spec.value_size.hi - spec.value_size.lo + 1));
    case workload::ValueSizeSpec::Kind::kLogUniform: {
      int steps = 0;
      for (uint32_t v = spec.value_size.lo; v < spec.value_size.hi; v <<= 1) {
        ++steps;
      }
      return spec.value_size.lo
             << (sim::Mix64(key_id) % (static_cast<uint64_t>(steps) + 1));
    }
  }
  return spec.value_size.fixed;
}

// Generic KV client driver; Client must expose Get(key, out) and Put(key,
// value) coroutines (JakiroClient and MemcachedClient both do).
template <typename Client>
sim::Task<void> KvDriver(sim::Engine& eng, Client* client, workload::Generator gen,
                         bool verify, sim::Time warmup_end, sim::Time measure_end,
                         ThreadCounters* counters) {
  std::vector<std::byte> key(gen.spec().key_size);
  std::vector<std::byte> value(16384);
  std::vector<std::byte> out(16384);
  while (eng.now() < measure_end) {
    const workload::Op op = gen.Next();
    workload::MakeKey(op.key_id, key);
    const sim::Time start = eng.now();
    if (op.type == workload::OpType::kGet) {
      std::optional<size_t> got = co_await client->Get(key, out);
      if (verify && got.has_value() &&
          !workload::CheckValue(op.key_id, std::span<const std::byte>(out.data(), *got))) {
        ++counters->verify_failures;
      }
    } else {
      workload::FillValue(op.key_id, std::span<std::byte>(value.data(), op.value_size));
      co_await client->Put(key, std::span<const std::byte>(value.data(), op.value_size));
    }
    const sim::Time end = eng.now();
    if (start >= warmup_end && end <= measure_end) {
      ++counters->ops;
      counters->latency.Record(end - start);
    }
  }
}

sim::Task<void> EchoDriver(sim::Engine& eng, rfp::RpcClient* client, uint32_t result_size,
                           sim::Time warmup_end, sim::Time measure_end,
                           ThreadCounters* counters) {
  std::vector<std::byte> req(1);
  std::vector<std::byte> resp(result_size + 64);
  while (eng.now() < measure_end) {
    const sim::Time start = eng.now();
    co_await client->Call(1, req, resp);
    const sim::Time end = eng.now();
    if (start >= warmup_end && end <= measure_end) {
      ++counters->ops;
      counters->latency.Record(end - start);
    }
  }
}

sim::Task<void> PilafDriver(sim::Engine& eng, kv::PilafClient* client, workload::Generator gen,
                            sim::Time warmup_end, sim::Time measure_end,
                            ThreadCounters* counters) {
  std::vector<std::byte> key(gen.spec().key_size);
  std::vector<std::byte> value(16384);
  std::vector<std::byte> out(16384);
  uint64_t version = 1;
  while (eng.now() < measure_end) {
    const workload::Op op = gen.Next();
    workload::MakeKey(op.key_id, key);
    const sim::Time start = eng.now();
    if (op.type == workload::OpType::kGet) {
      std::optional<size_t> got = co_await client->Get(key, out);
      if (got.has_value() && !workload::CheckValueVersioned(
                                 op.key_id, std::span<const std::byte>(out.data(), *got))) {
        ++counters->verify_failures;
      }
    } else {
      workload::FillValueVersioned(op.key_id, ++version,
                                   std::span<std::byte>(value.data(), op.value_size));
      co_await client->Put(key, std::span<const std::byte>(value.data(), op.value_size));
    }
    const sim::Time end = eng.now();
    if (start >= warmup_end && end <= measure_end) {
      ++counters->ops;
      counters->latency.Record(end - start);
    }
  }
}

}  // namespace

void MergeChannelStats(rfp::Channel::Stats& into, const rfp::Channel::Stats& from) {
  into.calls += from.calls;
  into.request_writes += from.request_writes;
  into.fetch_reads += from.fetch_reads;
  into.failed_fetches += from.failed_fetches;
  into.extra_fetches += from.extra_fetches;
  into.reply_pushes += from.reply_pushes;
  into.switches_to_reply += from.switches_to_reply;
  into.switches_to_fetch += from.switches_to_fetch;
  into.reconnects += from.reconnects;
  into.reissues += from.reissues;
  into.corrupt_fetches += from.corrupt_fetches;
  into.fetch_timeouts += from.fetch_timeouts;
  into.recovery_request_writes += from.recovery_request_writes;
  into.recovery_fetch_reads += from.recovery_fetch_reads;
  into.busy_responses += from.busy_responses;
  into.shed_admission += from.shed_admission;
  into.shed_deadline += from.shed_deadline;
  into.breaker_opens += from.breaker_opens;
  into.doorbell_batches += from.doorbell_batches;
  into.batched_ops += from.batched_ops;
  into.coalesced_fetches += from.coalesced_fetches;
  into.coalesced_slots += from.coalesced_slots;
  into.zero_copy_sends += from.zero_copy_sends;
  into.zero_copy_fetches += from.zero_copy_fetches;
  into.zero_copy_bytes += from.zero_copy_bytes;
  into.zero_copy_fallbacks += from.zero_copy_fallbacks;
  into.retries_per_call.Merge(from.retries_per_call);
  into.submit_window.Merge(from.submit_window);
  into.batch_occupancy.Merge(from.batch_occupancy);
}

// ---- Flag plumbing -------------------------------------------------------------

void Init(int& argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path = arg + 8;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      g_seed = std::strtoull(arg + 7, nullptr, 0);
      g_seed_set = true;
    } else if (std::strcmp(arg, "--check") == 0 || std::strcmp(arg, "--check=strict") == 0) {
      check::SetMode(check::Mode::kStrict);
    } else if (std::strcmp(arg, "--check=report") == 0) {
      check::SetMode(check::Mode::kReport);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argv[kept] = nullptr;
  argc = kept;
  if (json_path.empty() && trace_path.empty()) {
    return;  // stay inert: no capture state, no atexit hook
  }
  harness = new Harness();
  harness->json_path = std::move(json_path);
  harness->trace_path = std::move(trace_path);
  for (int i = 0; i < argc; ++i) {
    harness->argv.push_back(argv[i]);
  }
  const char* base = argc > 0 ? std::strrchr(argv[0], '/') : nullptr;
  harness->bench_name = argc > 0 ? (base != nullptr ? base + 1 : argv[0]) : "bench";
  if (!harness->trace_path.empty()) {
    harness->tracer = std::make_unique<obs::Tracer>();
  }
  std::atexit(WriteHarnessOutputs);
}

obs::Tracer* GlobalTracer() {
  return harness != nullptr ? harness->tracer.get() : nullptr;
}

bool SeedSet() { return g_seed_set; }

uint64_t SeedOr(uint64_t fallback) { return g_seed_set ? g_seed : fallback; }

// ---- Output helpers ----------------------------------------------------------

void PrintTitle(const std::string& title) {
  if (CaptureRows()) {
    harness->tables.push_back(CapturedTable{title, {}, {}});
  }
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintHeader(const std::vector<std::string>& columns) {
  if (CaptureRows()) {
    CurrentTable().columns = columns;
  }
  for (const auto& c : columns) {
    std::printf("%-*s", kColumnWidth, c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size() * kColumnWidth; ++i) {
    std::printf("-");
  }
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  if (CaptureRows()) {
    CurrentTable().rows.push_back(cells);
  }
  for (const auto& c : cells) {
    std::printf("%-*s", kColumnWidth, c.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtInt(uint64_t value) { return std::to_string(value); }

// ---- Raw fabric micro-benchmarks ----------------------------------------------

double RawInboundMops(int client_nodes, int threads_per_node, uint32_t size, sim::Time window,
                      const rdma::FabricConfig& fabric_config) {
  window = Scaled(window);
  sim::Engine engine;
  BeginBenchRun(engine, "raw-inbound",
                {{"client_nodes", std::to_string(client_nodes)},
                 {"threads_per_node", std::to_string(threads_per_node)},
                 {"size", std::to_string(size)},
                 {"window_ns", TimeParam(window)}});
  rdma::FabricConfig fc = fabric_config;
  fc.seed = SeedOr(fc.seed);
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server = fabric.AddNode("server");
  rdma::MemoryRegion* remote = server.RegisterMemory(65536, rdma::kAccessRemoteRead);
  std::vector<LoopCounter> counters(static_cast<size_t>(client_nodes * threads_per_node));
  size_t idx = 0;
  for (int n = 0; n < client_nodes; ++n) {
    rdma::Node& client = fabric.AddNode("client" + std::to_string(n));
    for (int t = 0; t < threads_per_node; ++t) {
      auto [cqp, sqp] = fabric.ConnectRc(client, server);
      (void)sqp;
      rdma::MemoryRegion* local = client.RegisterMemory(65536, rdma::kAccessLocal);
      engine.Spawn(ReadLoop(engine, cqp, local, remote, size, window, &counters[idx++]));
    }
  }
  engine.Run();
  return SumMops(counters, window);
}

double RawOutboundMops(int server_threads, uint32_t size, sim::Time window,
                       const rdma::FabricConfig& fabric_config) {
  window = Scaled(window);
  sim::Engine engine;
  BeginBenchRun(engine, "raw-outbound",
                {{"server_threads", std::to_string(server_threads)},
                 {"size", std::to_string(size)},
                 {"window_ns", TimeParam(window)}});
  rdma::FabricConfig fc = fabric_config;
  fc.seed = SeedOr(fc.seed);
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server = fabric.AddNode("server");
  std::vector<rdma::Node*> clients;
  std::vector<rdma::MemoryRegion*> client_mem;
  for (int n = 0; n < 7; ++n) {
    clients.push_back(&fabric.AddNode("client" + std::to_string(n)));
    client_mem.push_back(clients.back()->RegisterMemory(65536, rdma::kAccessRemoteWrite));
  }
  std::vector<LoopCounter> counters(static_cast<size_t>(server_threads));
  for (int t = 0; t < server_threads; ++t) {
    auto [sqp, cqp] = fabric.ConnectRc(server, *clients[static_cast<size_t>(t) % 7]);
    (void)cqp;
    rdma::MemoryRegion* local = server.RegisterMemory(65536, rdma::kAccessLocal);
    engine.Spawn(WriteLoop(engine, sqp, local, client_mem[static_cast<size_t>(t) % 7], size,
                           window, &counters[static_cast<size_t>(t)]));
  }
  engine.Run();
  return SumMops(counters, window);
}

AmplificationResult RunAmplification(int ops_per_request, int client_threads, uint32_t size,
                                     sim::Time window) {
  window = Scaled(window);
  sim::Engine engine;
  BeginBenchRun(engine, "amplification",
                {{"ops_per_request", std::to_string(ops_per_request)},
                 {"client_threads", std::to_string(client_threads)},
                 {"size", std::to_string(size)},
                 {"window_ns", TimeParam(window)}});
  rdma::FabricConfig fc;
  fc.seed = SeedOr(fc.seed);
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server = fabric.AddNode("server");
  rdma::MemoryRegion* remote =
      server.RegisterMemory(static_cast<size_t>(ops_per_request) * size + 4096,
                            rdma::kAccessRemoteRead);
  const int nodes = 7;
  std::vector<LoopCounter> counters(static_cast<size_t>(client_threads));
  for (int t = 0; t < client_threads; ++t) {
    rdma::Node& client = fabric.AddNode("client" + std::to_string(t));
    auto [cqp, sqp] = fabric.ConnectRc(client, server);
    (void)sqp;
    rdma::MemoryRegion* local = client.RegisterMemory(65536, rdma::kAccessLocal);
    engine.Spawn(AmplifiedRequestLoop(engine, cqp, local, remote, size, ops_per_request, window,
                                      &counters[static_cast<size_t>(t)]));
  }
  (void)nodes;
  engine.Run();
  AmplificationResult result;
  result.request_mops = SumMops(counters, window);
  result.iops = result.request_mops * ops_per_request;
  return result;
}

// ---- Echo runner ---------------------------------------------------------------

EchoRunResult RunEcho(const EchoRunConfig& config_in) {
  EchoRunConfig config = config_in;
  config.warmup = Scaled(config.warmup);
  config.measure = Scaled(config.measure);
  config.fabric.seed = SeedOr(config.fabric.seed);
  sim::Engine engine;
  BeginBenchRun(engine, "echo",
                {{"process_ns", TimeParam(config.process_ns)},
                 {"result_size", std::to_string(config.result_size)},
                 {"server_threads", std::to_string(config.server_threads)},
                 {"client_nodes", std::to_string(config.client_nodes)},
                 {"client_threads", std::to_string(config.client_threads)},
                 {"warmup_ns", TimeParam(config.warmup)},
                 {"measure_ns", TimeParam(config.measure)}});
  rdma::Fabric fabric(engine, config.fabric);
  rdma::Node& server_node = fabric.AddNode("server");
  rfp::RpcServer server(fabric, server_node, config.server_threads);
  server.RegisterHandler(1, [&config](const rfp::HandlerContext&, std::span<const std::byte>,
                                      std::span<std::byte>) -> rfp::HandlerResult {
    // Result bytes are irrelevant; only the size and process time matter.
    return rfp::HandlerResult{config.result_size, config.process_ns};
  });

  std::vector<rdma::Node*> client_nodes;
  for (int n = 0; n < config.client_nodes; ++n) {
    client_nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }
  conn::Connector connector;
  std::vector<conn::ChannelLease> endpoints;
  std::vector<ThreadCounters> counters(static_cast<size_t>(config.client_threads));
  for (int t = 0; t < config.client_threads; ++t) {
    endpoints.push_back(
        connector.Lease(server, *client_nodes[static_cast<size_t>(t % config.client_nodes)],
                        config.channel, t % config.server_threads));
  }
  server.Start();

  const sim::Time warmup_end = config.warmup;
  const sim::Time measure_end = config.warmup + config.measure;
  for (int t = 0; t < config.client_threads; ++t) {
    engine.Spawn(EchoDriver(engine, endpoints[static_cast<size_t>(t)].stub(),
                            config.result_size, warmup_end, measure_end,
                            &counters[static_cast<size_t>(t)]));
  }

  std::vector<sim::Time> busy_at_warmup(endpoints.size(), 0);
  engine.ScheduleAt(warmup_end, [&] {
    for (size_t i = 0; i < endpoints.size(); ++i) {
      busy_at_warmup[i] = endpoints[i].channel()->client_busy().busy();
    }
  });

  engine.RunUntil(measure_end);
  server.Stop();

  EchoRunResult result;
  for (const auto& c : counters) {
    result.ops += c.ops;
    result.latency.Merge(c.latency);
  }
  result.mops = static_cast<double>(result.ops) / sim::ToSeconds(config.measure) / 1e6;
  double busy_total = 0;
  for (size_t i = 0; i < endpoints.size(); ++i) {
    rfp::Channel* channel = endpoints[i].channel();
    busy_total += static_cast<double>(channel->client_busy().busy() - busy_at_warmup[i]);
    MergeChannelStats(result.channels, channel->stats());
    if (channel->client_mode() == rfp::Mode::kServerReply) {
      ++result.channels_in_reply_mode;
    }
  }
  result.client_cpu =
      busy_total / static_cast<double>(config.client_threads) / static_cast<double>(config.measure);
  if (result.client_cpu > 1.0) {
    result.client_cpu = 1.0;
  }
  return result;
}

// ---- KV runner -----------------------------------------------------------------

const char* KvSystemName(KvSystem system) {
  switch (system) {
    case KvSystem::kJakiro:
      return "Jakiro";
    case KvSystem::kJakiroNoSwitch:
      return "Jakiro-NoSw";
    case KvSystem::kServerReply:
      return "ServerReply";
    case KvSystem::kMemcached:
      return "RDMA-Memc";
  }
  return "?";
}

workload::WorkloadSpec PaperWorkload() {
  workload::WorkloadSpec spec;
  spec.num_keys = 1 << 18;  // scaled-down key space (see DESIGN.md)
  spec.key_size = 16;
  spec.get_fraction = 0.95;
  spec.distribution = workload::KeyDistribution::kUniform;
  spec.value_size = workload::ValueSizeSpec::Fixed(32);
  return spec;
}

KvRunResult RunKv(const KvRunConfig& config_in) {
  KvRunConfig config = config_in;
  config.warmup = Scaled(config.warmup);
  config.measure = Scaled(config.measure);
  config.fabric.seed = SeedOr(config.fabric.seed);
  sim::Engine engine;
  BeginBenchRun(engine, std::string("kv-") + KvSystemName(config.system),
                {{"system", KvSystemName(config.system)},
                 {"server_threads", std::to_string(config.server_threads)},
                 {"client_nodes", std::to_string(config.client_nodes)},
                 {"client_threads", std::to_string(config.client_threads)},
                 {"num_keys", std::to_string(config.workload.num_keys)},
                 {"get_fraction", std::to_string(config.workload.get_fraction)},
                 {"warmup_ns", TimeParam(config.warmup)},
                 {"measure_ns", TimeParam(config.measure)}});
  rdma::Fabric fabric(engine, config.fabric);
  rdma::Node& server_node = fabric.AddNode("server");
  std::vector<rdma::Node*> client_nodes;
  for (int n = 0; n < config.client_nodes; ++n) {
    client_nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }

  const sim::Time warmup_end = config.warmup;
  const sim::Time measure_end = config.warmup + config.measure;
  std::vector<ThreadCounters> counters(static_cast<size_t>(config.client_threads));
  std::vector<rfp::Channel*> all_channels;
  std::vector<std::byte> key(config.workload.key_size);
  std::vector<std::byte> value(16384);

  std::unique_ptr<kv::JakiroServer> jakiro_server;
  std::vector<std::unique_ptr<kv::JakiroClient>> jakiro_clients;
  std::unique_ptr<kv::MemcachedServer> memcached_server;
  std::vector<std::unique_ptr<kv::MemcachedClient>> memcached_clients;

  if (config.system == KvSystem::kMemcached) {
    kv::MemcachedConfig mc = config.memcached;
    mc.server_threads = config.server_threads;
    mc.channel_options = config.channel;
    memcached_server = std::make_unique<kv::MemcachedServer>(fabric, server_node, mc);
    if (config.preload) {
      for (uint64_t id = 0; id < config.workload.num_keys; ++id) {
        workload::MakeKey(id, key);
        const uint32_t vs = PreloadValueSize(config.workload, id);
        workload::FillValue(id, std::span<std::byte>(value.data(), vs));
        memcached_server->Preload(key, std::span<const std::byte>(value.data(), vs));
      }
    }
    for (int t = 0; t < config.client_threads; ++t) {
      memcached_clients.push_back(std::make_unique<kv::MemcachedClient>(
          *memcached_server, *client_nodes[static_cast<size_t>(t % config.client_nodes)],
          t % config.server_threads));
      all_channels.push_back(memcached_clients.back()->channel());
      engine.Spawn(KvDriver(engine, memcached_clients.back().get(),
                            workload::Generator(config.workload,
                                                SeedOr(0) + static_cast<uint64_t>(t)),
                            config.verify_values, warmup_end, measure_end,
                            &counters[static_cast<size_t>(t)]));
    }
    memcached_server->Start();
  } else {
    kv::JakiroConfig jc;
    jc.server_threads = config.server_threads;
    jc.channel_options = config.channel;
    jc.server_options = config.server;
    jc.get_process_ns = config.jakiro_get_ns;
    jc.put_process_ns = config.jakiro_put_ns;
    // Size partitions to hold the whole key space without evictions.
    jc.buckets_per_partition =
        std::max<size_t>(1 << 12, (config.workload.num_keys / static_cast<size_t>(
                                       config.server_threads)) /
                                      4);
    switch (config.system) {
      case KvSystem::kServerReply:
        jc = kv::JakiroConfig::Build(jc).ServerReply();
        break;
      case KvSystem::kJakiroNoSwitch:
        jc = kv::JakiroConfig::Build(jc).NoSwitch();
        break;
      default:
        break;
    }
    jakiro_server = std::make_unique<kv::JakiroServer>(fabric, server_node, jc);
    if (config.preload) {
      for (uint64_t id = 0; id < config.workload.num_keys; ++id) {
        workload::MakeKey(id, key);
        const uint32_t vs = PreloadValueSize(config.workload, id);
        workload::FillValue(id, std::span<std::byte>(value.data(), vs));
        jakiro_server->partition(jakiro_server->OwnerThread(key))
            .Put(key, std::span<const std::byte>(value.data(), vs));
      }
    }
    for (int t = 0; t < config.client_threads; ++t) {
      jakiro_clients.push_back(std::make_unique<kv::JakiroClient>(
          *jakiro_server, *client_nodes[static_cast<size_t>(t % config.client_nodes)]));
      for (int s = 0; s < jakiro_server->num_threads(); ++s) {
        all_channels.push_back(jakiro_clients.back()->channel(s));
      }
      engine.Spawn(KvDriver(engine, jakiro_clients.back().get(),
                            workload::Generator(config.workload,
                                                SeedOr(0) + static_cast<uint64_t>(t)),
                            config.verify_values, warmup_end, measure_end,
                            &counters[static_cast<size_t>(t)]));
    }
    jakiro_server->Start();
  }

  std::vector<sim::Time> busy_at_warmup(all_channels.size(), 0);
  engine.ScheduleAt(warmup_end, [&] {
    for (size_t i = 0; i < all_channels.size(); ++i) {
      busy_at_warmup[i] = all_channels[i]->client_busy().busy();
    }
  });

  engine.RunUntil(measure_end);
  if (jakiro_server != nullptr) {
    jakiro_server->Stop();
  }
  if (memcached_server != nullptr) {
    memcached_server->Stop();
  }

  KvRunResult result;
  for (const auto& c : counters) {
    result.ops += c.ops;
    result.verify_failures += c.verify_failures;
    result.latency.Merge(c.latency);
  }
  result.mops = static_cast<double>(result.ops) / sim::ToSeconds(config.measure) / 1e6;
  double busy_total = 0;
  for (size_t i = 0; i < all_channels.size(); ++i) {
    busy_total += static_cast<double>(all_channels[i]->client_busy().busy() - busy_at_warmup[i]);
    MergeChannelStats(result.channels, all_channels[i]->stats());
  }
  // Busy time sums over channels, but each client thread multiplexes its
  // channels, so normalize by threads.
  result.client_cpu =
      busy_total / static_cast<double>(config.client_threads) / static_cast<double>(config.measure);
  if (result.client_cpu > 1.0) {
    result.client_cpu = 1.0;
  }
  return result;
}

// ---- Pilaf runner ---------------------------------------------------------------

PilafRunResult RunPilaf(const PilafRunConfig& config_in) {
  PilafRunConfig config = config_in;
  config.warmup = Scaled(config.warmup);
  config.measure = Scaled(config.measure);
  config.fabric.seed = SeedOr(config.fabric.seed);
  sim::Engine engine;
  BeginBenchRun(engine, "pilaf",
                {{"client_nodes", std::to_string(config.client_nodes)},
                 {"client_threads", std::to_string(config.client_threads)},
                 {"num_keys", std::to_string(config.workload.num_keys)},
                 {"get_fraction", std::to_string(config.workload.get_fraction)},
                 {"warmup_ns", TimeParam(config.warmup)},
                 {"measure_ns", TimeParam(config.measure)}});
  rdma::Fabric fabric(engine, config.fabric);
  rdma::Node& server_node = fabric.AddNode("server");

  kv::PilafConfig pc;
  pc.put_process_ns = config.put_process_ns;
  // ~75% fill, like the paper's Pilaf configuration.
  pc.num_slots = config.workload.num_keys * 4 / 3 + 64;
  pc.extent_bytes = std::max<size_t>(
      64u << 20, config.workload.num_keys * (config.workload.key_size + 8192 / 4));
  kv::PilafServer server(fabric, server_node, pc);

  std::vector<std::byte> key(config.workload.key_size);
  std::vector<std::byte> value(16384);
  for (uint64_t id = 0; id < config.workload.num_keys; ++id) {
    workload::MakeKey(id, key);
    const uint32_t vs = std::max<uint32_t>(8, PreloadValueSize(config.workload, id));
    workload::FillValueVersioned(id, 0, std::span<std::byte>(value.data(), vs));
    if (!server.Preload(key, std::span<const std::byte>(value.data(), vs))) {
      throw std::runtime_error("pilaf preload failed (table sized too small)");
    }
  }

  std::vector<rdma::Node*> client_nodes;
  for (int n = 0; n < config.client_nodes; ++n) {
    client_nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }
  std::vector<std::unique_ptr<kv::PilafClient>> clients;
  std::vector<ThreadCounters> counters(static_cast<size_t>(config.client_threads));
  const sim::Time warmup_end = config.warmup;
  const sim::Time measure_end = config.warmup + config.measure;
  for (int t = 0; t < config.client_threads; ++t) {
    clients.push_back(std::make_unique<kv::PilafClient>(
        fabric, *client_nodes[static_cast<size_t>(t % config.client_nodes)], server,
        t % pc.server_threads));
    workload::WorkloadSpec spec = config.workload;
    // Pilaf preloads versioned values; PUT sizes must stay >= 8.
    if (spec.value_size.kind == workload::ValueSizeSpec::Kind::kFixed) {
      spec.value_size.fixed = std::max<uint32_t>(8, spec.value_size.fixed);
    }
    engine.Spawn(PilafDriver(engine, clients.back().get(),
                             workload::Generator(spec, SeedOr(0) + static_cast<uint64_t>(t)),
                             warmup_end,
                             measure_end, &counters[static_cast<size_t>(t)]));
  }
  server.Start();
  engine.RunUntil(measure_end);
  server.Stop();

  PilafRunResult result;
  for (const auto& c : counters) {
    result.ops += c.ops;
    result.verify_failures += c.verify_failures;
    result.latency.Merge(c.latency);
  }
  result.mops = static_cast<double>(result.ops) / sim::ToSeconds(config.measure) / 1e6;
  uint64_t gets = 0;
  uint64_t reads = 0;
  for (const auto& client : clients) {
    gets += client->stats().gets;
    reads += client->stats().slot_reads + client->stats().extent_reads;
    result.crc_failures += client->stats().crc_failures;
  }
  result.reads_per_get = gets > 0 ? static_cast<double>(reads) / static_cast<double>(gets) : 0.0;
  return result;
}

void PrintCdf(const std::string& label, const sim::Histogram& latency, int max_points) {
  std::printf("%s latency CDF (us, cumulative):", label.c_str());
  const auto cdf = latency.Cdf();
  const size_t stride = cdf.size() > static_cast<size_t>(max_points)
                            ? cdf.size() / static_cast<size_t>(max_points)
                            : 1;
  for (size_t i = 0; i < cdf.size(); i += stride) {
    std::printf(" %.1f:%.3f", static_cast<double>(cdf[i].value) / 1000.0, cdf[i].cumulative);
  }
  if (!cdf.empty()) {
    std::printf(" %.1f:1.000", static_cast<double>(cdf.back().value) / 1000.0);
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace bench
