// Figure 14: throughput vs request process time, with and without the
// hybrid switch (16 server threads, 35 client threads).
//
// Paper: below the ~7 us crossover Jakiro (adaptive) beats ServerReply by
// 30-320%; at and beyond it RFP switches to server-reply automatically and
// the two match. "Jakiro w/o switch" shows what pure fetching costs.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 14: throughput vs request process time (echo RPC, 32 B results)");
  bench::PrintHeader({"P_us", "jakiro", "server-reply", "no-switch", "reply_chans"});
  for (int p = 1; p <= 12; ++p) {
    bench::EchoRunConfig config;
    config.process_ns = sim::Micros(p);
    config.result_size = 32;
    config.server_threads = 16;

    config.channel.force_mode = rfp::RfpOptions::ForceMode::kAdaptive;
    const bench::EchoRunResult adaptive = bench::RunEcho(config);
    config.channel.force_mode = rfp::RfpOptions::ForceMode::kForceReply;
    const bench::EchoRunResult reply = bench::RunEcho(config);
    config.channel.force_mode = rfp::RfpOptions::ForceMode::kForceFetch;
    const bench::EchoRunResult fetch = bench::RunEcho(config);

    bench::PrintRow({std::to_string(p), bench::Fmt(adaptive.mops), bench::Fmt(reply.mops),
                     bench::Fmt(fetch.mops),
                     std::to_string(adaptive.channels_in_reply_mode) + "/35"});
  }
  std::printf("\npaper: adaptive wins below ~7 us, converges with server-reply beyond\n");
  return 0;
}
