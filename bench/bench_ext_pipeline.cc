// Extension: pipelined multi-slot channels (docs/pipelining.md).
//
// One echo cluster (1 server x 2 threads, 4 client channels on 2 nodes) is
// driven CLOSED-LOOP in windowed batches: each driver submits `window` calls
// back to back (SubmitCall stages them into the channel's slot ring), then
// awaits them all; the first await flushes the staged requests in a single
// doorbell batch. Channels are forced into remote-fetch mode so the sweep
// isolates the pipelining effect on the paper's RFP fast path: request
// WRITEs and response-fetch READs for a whole window coalesce into one
// doorbell each (followers pay NicConfig::outbound_batch_marginal_ns instead
// of the full issue cost), the server serves every ready slot in one sweep
// visit, and the per-call round trip stops being the throughput bound.
//
// The sweep crosses window {1, 2, 4, 8, 16} x value size {32, 256, 1024}.
// window=1 is the pre-pipelining channel, bit for bit — its rows are the
// baseline the speedup column divides by.
//
// Expected shape (asserted by tests/rfp/pipeline_test.cc and the --json
// smoke test in tests/obs/):
//   * small-value throughput at window >= 4 is >= 2x the window=1 baseline
//     (the win saturates once the batch spans the whole fetch round trip);
//   * mean doorbell-batch occupancy is > 1 whenever window > 1;
//   * large values blunt the win: serialization floors the follower cost
//     (Eq. 2's size term), so batching amortizes a smaller share.

#include "bench/common.h"

#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"

namespace {

constexpr int kServerThreads = 2;
constexpr int kClientNodes = 2;
constexpr int kClients = 4;
constexpr sim::Time kProcessNs = 150;  // one hash-lookup's worth of server CPU

const sim::Time kMeasureStart = sim::Millis(1);
const sim::Time kRunEnd = sim::Millis(5);

std::byte ExpectedByte(size_t i) {
  return static_cast<std::byte>(static_cast<uint8_t>(i * 31 + 7));
}

struct DriverCounts {
  uint64_t completed = 0;  // calls finished inside the measure window
  uint64_t mismatches = 0;
  uint64_t failed = 0;
  sim::Histogram latency;  // submit -> completion, ns
};

// Closed-loop windowed driver: submit `window` calls, await them all, repeat.
// Responses land in per-slot buffers because up to `window` are outstanding.
sim::Task<void> Driver(sim::Engine& eng, rfp::RpcClient* client, int window,
                       uint32_t value_bytes, DriverCounts* counts) {
  std::vector<std::byte> req(8);
  std::vector<std::vector<std::byte>> resp(
      static_cast<size_t>(window),
      std::vector<std::byte>(static_cast<size_t>(value_bytes)));
  std::vector<rfp::Channel::CallHandle> handles(static_cast<size_t>(window));
  uint64_t n = 0;
  while (eng.now() < kRunEnd) {
    for (int i = 0; i < window; ++i) {
      ++n;
      for (size_t b = 0; b < req.size(); ++b) {
        req[b] = static_cast<std::byte>(static_cast<uint8_t>(n >> (8 * b)));
      }
      handles[static_cast<size_t>(i)] = co_await client->SubmitCall(1, req);
    }
    for (int i = 0; i < window; ++i) {
      const sim::Time start = eng.now();
      try {
        const size_t got =
            co_await client->AwaitCall(handles[static_cast<size_t>(i)],
                                       resp[static_cast<size_t>(i)]);
        if (eng.now() >= kMeasureStart) {
          ++counts->completed;
          counts->latency.Record(eng.now() - start);
        }
        if (got != value_bytes) {
          ++counts->mismatches;
        } else {
          for (size_t b = 0; b < got; b += 97) {  // sampled content check
            if (resp[static_cast<size_t>(i)][b] != ExpectedByte(b)) {
              ++counts->mismatches;
              break;
            }
          }
        }
      } catch (const std::exception&) {
        ++counts->failed;
      }
    }
  }
}

struct Outcome {
  double mops = 0;
  double p50_us = 0;
  double p99_us = 0;
  double occupancy = 0;  // mean ops per doorbell batch
  rfp::Channel::Stats stats;
  uint64_t mismatches = 0;
  uint64_t failed = 0;
};

// `workers` server threads; `multicore` additionally pins them to CpuSet
// cores and turns on the multicore dispatch extras (coalesced fetch sweeps,
// doorbell-batched reply publication — docs/multicore.md).
Outcome RunSweepPoint(int window, uint32_t value_bytes, int workers, bool multicore) {
  sim::Engine engine;
  rdma::FabricConfig fc;
  fc.seed = bench::SeedOr(fc.seed);
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server_node = fabric.AddNode("server");
  std::vector<rdma::Node*> client_nodes;
  for (int c = 0; c < kClientNodes; ++c) {
    client_nodes.push_back(&fabric.AddNode("client" + std::to_string(c)));
  }

  rfp::ServerOptions server_options;
  server_options.multicore = multicore;
  rfp::RpcServer server(fabric, server_node, workers, server_options);
  server.RegisterHandler(1, [value_bytes](const rfp::HandlerContext&,
                                          std::span<const std::byte>,
                                          std::span<std::byte> resp) -> rfp::HandlerResult {
    for (size_t i = 0; i < value_bytes; ++i) {
      resp[i] = ExpectedByte(i);
    }
    return rfp::HandlerResult{value_bytes, kProcessNs};
  });

  rfp::RfpOptions options;
  options.window = window;
  // Pin remote-fetch so the sweep isolates pipelining on the RFP fast path
  // (no mode switches mid-run).
  options.force_mode = rfp::RfpOptions::ForceMode::kForceFetch;
  options.coalesced_fetch = multicore;
  if (multicore) {
    // Coalesced sweeps read whole response blocks, so block size — not
    // fetch_size — prices the spanning READ. Shrink the ring blocks to the
    // payload and pace retries so failed sweeps back off instead of
    // re-reading the span in a tight loop.
    options.max_message_bytes = value_bytes + 64;
    options.fetch_backoff_initial_ns = 500;
    options.fetch_backoff_max_ns = 4000;
  }

  std::vector<rfp::Channel*> channels;
  std::vector<std::unique_ptr<rfp::RpcClient>> stubs;
  std::vector<DriverCounts> counts(kClients);
  for (int t = 0; t < kClients; ++t) {
    rfp::Channel* channel = server.AcceptChannel(
        *client_nodes[static_cast<size_t>(t % kClientNodes)], options, t % workers);
    channels.push_back(channel);
    stubs.push_back(std::make_unique<rfp::RpcClient>(channel));
  }
  server.Start();

  for (int t = 0; t < kClients; ++t) {
    engine.Spawn(Driver(engine, stubs[static_cast<size_t>(t)].get(), window, value_bytes,
                        &counts[static_cast<size_t>(t)]));
  }
  engine.RunUntil(kRunEnd);
  server.Stop();

  Outcome out;
  sim::Histogram latency;
  uint64_t completed = 0;
  for (const DriverCounts& c : counts) {
    completed += c.completed;
    out.mismatches += c.mismatches;
    out.failed += c.failed;
    latency.Merge(c.latency);
  }
  const sim::Time measure = kRunEnd - kMeasureStart;
  out.mops = static_cast<double>(completed) / sim::ToSeconds(measure) / 1e6;
  out.p50_us = static_cast<double>(latency.Percentile(0.50)) / 1000.0;
  out.p99_us = static_cast<double>(latency.Percentile(0.99)) / 1000.0;
  for (rfp::Channel* channel : channels) {
    bench::MergeChannelStats(out.stats, channel->stats());
  }
  out.occupancy = out.stats.batch_occupancy.count() > 0 ? out.stats.batch_occupancy.mean() : 1.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);

  const std::vector<int> windows = {1, 2, 4, 8, 16};
  const std::vector<uint32_t> values = {32, 256, 1024};

  bench::PrintTitle(
      "Extension: pipelined multi-slot channels (closed-loop windowed echo, forced fetch)");
  bench::PrintHeader({"window", "value", "workers", "mops", "speedup", "p50_us", "p99_us",
                      "doorbells", "occupancy", "errors"});
  double min_small_speedup_w4 = 1e9;
  double baseline_small = 0;  // window=1 at the smallest value: multicore rows reuse it
  for (uint32_t value : values) {
    double baseline = 0;
    for (int window : windows) {
      const Outcome out = RunSweepPoint(window, value, kServerThreads, /*multicore=*/false);
      if (window == 1) {
        baseline = out.mops;
        if (value == values.front()) {
          baseline_small = baseline;
        }
      }
      const double speedup = baseline > 0 ? out.mops / baseline : 0;
      if (value == values.front() && window >= 4 && speedup < min_small_speedup_w4) {
        min_small_speedup_w4 = speedup;
      }
      bench::PrintRow({bench::FmtInt(static_cast<uint64_t>(window)), bench::FmtInt(value),
                       bench::FmtInt(static_cast<uint64_t>(kServerThreads)),
                       bench::Fmt(out.mops), bench::Fmt(speedup), bench::Fmt(out.p50_us, 1),
                       bench::Fmt(out.p99_us, 1), bench::FmtInt(out.stats.doorbell_batches),
                       bench::Fmt(out.occupancy), bench::FmtInt(out.mismatches + out.failed)});
    }
  }

  // Multicore dispatch rows (docs/multicore.md): deepest window, smallest
  // value, workers swept — coalesced fetch + batched reply publication ride
  // along. bench_ext_multicore drives the full MOPS-vs-workers x window grid.
  for (int workers : {1, 2, 4}) {
    const Outcome out =
        RunSweepPoint(windows.back(), values.front(), workers, /*multicore=*/true);
    const double speedup = baseline_small > 0 ? out.mops / baseline_small : 0;
    bench::PrintRow({bench::FmtInt(static_cast<uint64_t>(windows.back())),
                     bench::FmtInt(values.front()),
                     bench::FmtInt(static_cast<uint64_t>(workers)), bench::Fmt(out.mops),
                     bench::Fmt(speedup), bench::Fmt(out.p50_us, 1), bench::Fmt(out.p99_us, 1),
                     bench::FmtInt(out.stats.doorbell_batches), bench::Fmt(out.occupancy),
                     bench::FmtInt(out.mismatches + out.failed)});
  }

  std::printf(
      "\nexpected: small-value throughput at window >= 4 is >= 2x the window=1\n"
      "baseline (measured min here: %.2fx); mean doorbell occupancy exceeds 1\n"
      "for every window > 1 row; large values narrow the win because payload\n"
      "serialization floors the batched follower cost (Eq. 2's size term)\n",
      min_small_speedup_w4);
  return 0;
}
