// Extension: the Section 5 related-work landscape, measured.
//
// The paper argues qualitatively against two alternatives to RFP:
//  * FaRM-style neighborhood reads — fewer round trips than Pilaf but
//    N x (Sk+Sv) bytes fetched per lookup ("a lot of the bandwidth and MOPS
//    will be wasted", N usually > 6); FaRM can post higher raw lookup rates
//    for tiny values, which the paper concedes (8M/server), but the
//    advantage inverts as values grow and PUTs stay server-reply-bound.
//  * UD-based RPC (HERD/FaSST) — two-sided datagrams can be fast, but the
//    server pays out-bound issue cost per reply, and the application owns
//    loss/reorder/duplication.
//
// This bench puts numbers on both, against Jakiro on the same fabric.

#include "bench/common.h"

#include <memory>

#include "src/kv/farm_store.h"
#include "src/rdma/fabric.h"
#include "src/sim/engine.h"

namespace {

struct FarmOutcome {
  double mops = 0;
  double waste = 0;
  double mean_us = 0;
};

FarmOutcome RunFarm(uint32_t value_size, double get_fraction) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server_node = fabric.AddNode("server");
  kv::FarmConfig config;
  // Tight FaRM-like geometry: N = 8 slots fetched per GET (the paper's
  // "N usually larger than 6"), run at ~25% fill where displacement chains
  // stay viable.
  config.num_buckets = 1 << 19;
  config.slots_per_bucket = 2;
  config.neighborhood = 4;
  config.max_value_bytes = static_cast<uint16_t>(value_size);
  kv::FarmServer server(fabric, server_node, config);

  workload::WorkloadSpec spec = bench::PaperWorkload();
  spec.num_keys = 1 << 18;  // 50% fill
  spec.get_fraction = get_fraction;
  spec.value_size = workload::ValueSizeSpec::Fixed(value_size);

  std::vector<std::byte> key(16);
  std::vector<std::byte> value(8192);
  for (uint64_t id = 0; id < spec.num_keys; ++id) {
    workload::MakeKey(id, key);
    workload::FillValue(id, std::span<std::byte>(value.data(), value_size));
    if (!server.Preload(key, std::span<const std::byte>(value.data(), value_size))) {
      throw std::runtime_error("farm preload failed");
    }
  }

  const int kClients = 35;
  const int kNodes = 7;
  std::vector<rdma::Node*> nodes;
  for (int n = 0; n < kNodes; ++n) {
    nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }
  std::vector<std::unique_ptr<kv::FarmClient>> clients;
  std::vector<uint64_t> ops(kClients, 0);
  const sim::Time warmup = sim::Millis(2);
  const sim::Time end = sim::Millis(8);
  sim::Histogram latency;
  std::vector<sim::Histogram> lats(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.push_back(std::make_unique<kv::FarmClient>(fabric, *nodes[static_cast<size_t>(t % kNodes)], server,
                                                       t % config.server_threads));
    engine.Spawn([](sim::Engine& eng, kv::FarmClient* c, workload::WorkloadSpec sp, int id,
                    sim::Time w, sim::Time e, uint64_t* count,
                    sim::Histogram* lat) -> sim::Task<void> {
      workload::Generator gen(sp, static_cast<uint64_t>(id));
      std::vector<std::byte> k(16);
      std::vector<std::byte> v(8192);
      std::vector<std::byte> out(8192);
      while (eng.now() < e) {
        const workload::Op op = gen.Next();
        workload::MakeKey(op.key_id, k);
        const sim::Time start = eng.now();
        if (op.type == workload::OpType::kGet) {
          co_await c->Get(k, out);
        } else {
          workload::FillValue(op.key_id, std::span<std::byte>(v.data(), op.value_size));
          co_await c->Put(k, std::span<const std::byte>(v.data(), op.value_size));
        }
        if (start >= w && eng.now() <= e) {
          ++*count;
          lat->Record(eng.now() - start);
        }
      }
    }(engine, clients.back().get(), spec, t, warmup, end, &ops[static_cast<size_t>(t)],
      &lats[static_cast<size_t>(t)]));
  }
  server.Start();
  engine.RunUntil(end);
  server.Stop();

  FarmOutcome outcome;
  uint64_t total = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_useful = 0;
  for (int t = 0; t < kClients; ++t) {
    total += ops[static_cast<size_t>(t)];
    latency.Merge(lats[static_cast<size_t>(t)]);
    bytes_read += clients[static_cast<size_t>(t)]->stats().bytes_read;
    bytes_useful += clients[static_cast<size_t>(t)]->stats().bytes_useful;
  }
  outcome.mops = static_cast<double>(total) / sim::ToSeconds(end - warmup) / 1e6;
  outcome.waste = bytes_useful > 0
                      ? static_cast<double>(bytes_read) / static_cast<double>(bytes_useful)
                      : 0.0;
  outcome.mean_us = latency.mean() / 1000.0;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Extension: FaRM-style neighborhood reads vs Jakiro (95% GET)");
  bench::PrintHeader({"value_B", "jakiro", "farm", "farm_waste", "farm_us", "jakiro_us"});
  for (uint32_t value : {32u, 64u, 128u, 256u, 512u}) {
    bench::KvRunConfig jc;
    jc.workload = bench::PaperWorkload();
    jc.workload.value_size = workload::ValueSizeSpec::Fixed(value);
    jc.channel.fetch_size = std::max<uint32_t>(256, value + 24);
    const bench::KvRunResult jakiro = bench::RunKv(jc);
    const FarmOutcome farm = RunFarm(value, 0.95);
    bench::PrintRow({std::to_string(value), bench::Fmt(jakiro.mops), bench::Fmt(farm.mops),
                     bench::Fmt(farm.waste, 1) + "x", bench::Fmt(farm.mean_us),
                     bench::Fmt(jakiro.latency.mean() / 1000.0)});
  }
  std::printf("\nexpected: FaRM posts high raw GET rates for tiny values (the 8M/server the\n"
              "paper concedes) but fetches N x (Sk+Sv) bytes per lookup (waste > 6x) and\n"
              "inverts as cells grow; its PUT path is server-reply-bound like Pilaf's\n");
  return 0;
}
