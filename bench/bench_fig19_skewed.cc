// Figure 19: throughput under a skewed (Zipf .99) workload, 32-byte values.
//
// Paper: Jakiro still saturates the in-bound path at 5.5 MOPS for all GET
// ratios (EREW partitions stay balanced enough); ServerReply stays pinned at
// 2.1; RDMA-Memcached *improves* under skew thanks to cache locality,
// reaching ~2.1 MOPS at 95% GET (it saturates out-bound instead of CPU).

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 19: skewed workload (Zipf .99) throughput, 32 B values");
  bench::PrintHeader({"get_pct", "jakiro", "server-reply", "rdma-memc"});
  for (double get : {0.95, 0.5, 0.05}) {
    std::vector<std::string> row{bench::Fmt(get * 100, 0) + "%"};
    for (auto system : {bench::KvSystem::kJakiro, bench::KvSystem::kServerReply,
                        bench::KvSystem::kMemcached}) {
      bench::KvRunConfig config;
      config.system = system;
      config.server_threads = system == bench::KvSystem::kMemcached ? 16 : 6;
      config.workload = bench::PaperWorkload();
      config.workload.distribution = workload::KeyDistribution::kZipfian;
      config.workload.get_fraction = get;
      row.push_back(bench::Fmt(bench::RunKv(config).mops));
    }
    bench::PrintRow(row);
  }
  std::printf("\npaper: Jakiro 5.5 flat; ServerReply 2.1; Memcached benefits from skew"
              "\n       (~2.1 at 95%% GET, saturating out-bound)\n");
  return 0;
}
