// Shared harness for the reproduction benchmarks.
//
// Three runners cover every experiment in the paper:
//  * Raw fabric loops (RawInboundMops / RawOutboundMops / RunAmplification)
//    regenerate the micro-benchmarks of Figs 3-6.
//  * RunEcho drives a controlled-process-time echo RPC over RFP channels
//    (Figs 9, 14, 15 and the switch ablation).
//  * RunKv drives a full 1-server/7-client cluster of one of the four KV
//    systems with a YCSB workload (Figs 10-13, 16-20, Table 3).
//
// Every bench binary prints one aligned table whose rows mirror the paper's
// figure series; EXPERIMENTS.md quotes them directly.

#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kv/memcached_store.h"
#include "src/obs/trace.h"
#include "src/rdma/config.h"
#include "src/rfp/channel.h"
#include "src/rfp/options.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"
#include "src/workload/ycsb.h"

namespace bench {

// ---- Observability flags (--json / --trace) -----------------------------------
//
// Call first in every bench main. Strips the harness's own flags from argv
// before anything else (google-benchmark included) parses it:
//
//   --json=PATH    additionally write a machine-readable dump of the run:
//                  {bench, schema_version, config, rows, metrics} — the rows
//                  mirror the printed table cell for cell, and the metrics
//                  are the process-wide obs::MetricsRegistry snapshot.
//   --trace=PATH   write a Chrome-trace-event (Perfetto-loadable) file with
//                  virtual-time spans of every simulated run.
//   --seed=N       override the fabric RNG seed and the workload generators'
//                  base seed in every runner, so two invocations with the
//                  same seed replay the identical event schedule. Recorded
//                  in the --json config block when both flags are given.
//   --check[=strict|report]
//                  attach the protocol invariant checker (src/check/) to
//                  every fabric the bench builds: strict (the default form)
//                  aborts the run on the first violation, report counts
//                  violations into check.violation{kind} and keeps going.
//                  Equivalent to RFP_CHECK=...; the resolved mode lands in
//                  the --json config block. See docs/static_analysis.md.
//
// Without any flag the harness is inert: nothing is captured and the text
// output is byte-identical to a build without this layer. Both files are
// written by an atexit hook after all runs (and their destructor-time metric
// flushes) finish. See docs/observability.md for the schemas.
void Init(int& argc, char** argv);

// The shared tracer when --trace is active, nullptr otherwise.
obs::Tracer* GlobalTracer();

// True when --seed=N was given.
bool SeedSet();

// The --seed value when set, `fallback` otherwise. Runners resolve their
// fabric seed as SeedOr(config.fabric.seed) and derive per-thread workload
// seeds from SeedOr's base, so one flag pins the whole run.
uint64_t SeedOr(uint64_t fallback);

// ---- Output helpers ----------------------------------------------------------

void PrintTitle(const std::string& title);
void PrintHeader(const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);
std::string Fmt(double value, int precision = 2);
std::string FmtInt(uint64_t value);

// Accumulates one channel's counters into a run-wide aggregate (all the
// runners' result structs carry such an aggregate).
void MergeChannelStats(rfp::Channel::Stats& into, const rfp::Channel::Stats& from);

// ---- Raw fabric micro-benchmarks (Figs 3-6) -----------------------------------

// Saturated in-bound READ IOPS at the server with `client_nodes x
// threads_per_node` synchronous readers of `size` bytes.
double RawInboundMops(int client_nodes, int threads_per_node, uint32_t size,
                      sim::Time window = sim::Millis(3),
                      const rdma::FabricConfig& fabric = {});

// Out-bound WRITE IOPS of one server issuing to 7 clients with
// `server_threads` synchronous writers.
double RawOutboundMops(int server_threads, uint32_t size, sim::Time window = sim::Millis(3),
                       const rdma::FabricConfig& fabric = {});

// Server-bypass amplification (Fig 6): every request needs `ops_per_request`
// sequential one-sided READs. Returns {request MOPS, raw IOPS}.
struct AmplificationResult {
  double request_mops = 0;
  double iops = 0;
};
AmplificationResult RunAmplification(int ops_per_request, int client_threads,
                                     uint32_t size = 32, sim::Time window = sim::Millis(3));

// ---- Echo RPC runner (Figs 9, 14, 15) -----------------------------------------

struct EchoRunConfig {
  rfp::RfpOptions channel;          // R, F, force mode, hysteresis
  sim::Time process_ns = 1000;      // server process time P per request
  uint32_t result_size = 1;        // S
  int server_threads = 16;
  int client_nodes = 7;
  int client_threads = 35;
  sim::Time warmup = sim::Millis(2);
  sim::Time measure = sim::Millis(8);
  rdma::FabricConfig fabric;
};

struct EchoRunResult {
  double mops = 0;
  uint64_t ops = 0;
  sim::Histogram latency;
  double client_cpu = 0;            // mean utilization over the measure window
  rfp::Channel::Stats channels;     // merged over all channels (whole run)
  int channels_in_reply_mode = 0;   // at the end of the run
};

EchoRunResult RunEcho(const EchoRunConfig& config);

// ---- KV cluster runner (Figs 10-13, 16-20, Table 3) ---------------------------

enum class KvSystem {
  kJakiro,          // RFP with adaptive switching
  kJakiroNoSwitch,  // RFP, remote fetching only ("Jakiro w/o switch")
  kServerReply,     // same store, server-reply transport
  kMemcached,       // shared-structure baseline
};

const char* KvSystemName(KvSystem system);

struct KvRunConfig {
  KvSystem system = KvSystem::kJakiro;
  int server_threads = 6;
  int client_nodes = 7;
  int client_threads = 35;
  workload::WorkloadSpec workload;
  bool preload = true;
  bool verify_values = true;
  rfp::RfpOptions channel;          // force mode is overridden per system
  rfp::ServerOptions server;        // dispatch tier (multicore, stealing, ...)
  sim::Time jakiro_get_ns = 150;
  sim::Time jakiro_put_ns = 250;
  kv::MemcachedConfig memcached;    // cost model for the memcached baseline
  sim::Time warmup = sim::Millis(2);
  sim::Time measure = sim::Millis(8);
  rdma::FabricConfig fabric;
};

struct KvRunResult {
  double mops = 0;
  uint64_t ops = 0;
  sim::Histogram latency;
  double client_cpu = 0;
  rfp::Channel::Stats channels;
  uint64_t verify_failures = 0;
};

KvRunResult RunKv(const KvRunConfig& config);

// ---- Pilaf (server-bypass) runner (Figs 6 context, 11) ------------------------

struct PilafRunConfig {
  int client_nodes = 6;   // the paper's Pilaf comparison used 6 machines
  int client_threads = 30;
  workload::WorkloadSpec workload;
  sim::Time put_process_ns = 1500;
  sim::Time warmup = sim::Millis(2);
  sim::Time measure = sim::Millis(8);
  rdma::FabricConfig fabric;
};

struct PilafRunResult {
  double mops = 0;
  uint64_t ops = 0;
  sim::Histogram latency;
  double reads_per_get = 0;
  uint64_t crc_failures = 0;
  uint64_t verify_failures = 0;
};

PilafRunResult RunPilaf(const PilafRunConfig& config);

// Prints a latency CDF as rows of (microseconds, cumulative %), decimated
// to at most `max_points` points.
void PrintCdf(const std::string& label, const sim::Histogram& latency, int max_points = 25);

// Standard workload of the paper: 16-byte keys, fixed 32-byte values,
// uniform keys, 95% GET.
workload::WorkloadSpec PaperWorkload();

}  // namespace bench

#endif  // BENCH_COMMON_H_
