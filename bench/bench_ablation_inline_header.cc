// Ablation: inlined size header vs a separate size-probe READ.
//
// The paper's second challenge (Section 3.2): fetching the result size with
// its own RDMA READ wastes half the RNIC's IOPS. RFP inlines the size in
// the first F bytes. Setting F = 8 (header only) degenerates RFP into the
// probe-then-fetch design: every call needs two READs.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Ablation: inlined header+payload fetch vs separate size probe");
  bench::PrintHeader({"design", "F", "mops", "reads/call"});
  for (uint32_t fetch : {8u, 256u}) {
    bench::KvRunConfig config;
    config.system = bench::KvSystem::kJakiroNoSwitch;
    config.workload = bench::PaperWorkload();
    config.channel.fetch_size = fetch;
    const bench::KvRunResult r = bench::RunKv(config);
    const double reads = static_cast<double>(r.channels.fetch_reads) /
                         static_cast<double>(r.channels.calls);
    bench::PrintRow({fetch == 8 ? "size-probe" : "inlined", std::to_string(fetch),
                     bench::Fmt(r.mops), bench::Fmt(reads, 3)});
  }
  std::printf("\nexpected: the probe design needs ~2 READs per call and loses ~1/3 of the\n"
              "in-bound budget; inlining recovers it (paper: \"wastes half of the IOPS\")\n");
  return 0;
}
