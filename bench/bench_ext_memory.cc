// Extension: registered-memory allocator + zero-copy GET (docs/memory.md).
//
// Table 1 — value sweep. One KV cluster (1 server thread, 4 client channels
// on 2 nodes, forced remote-fetch, 400 Gbps NIC profile) serves GETs from a
// pool-backed kv::BucketTable in two server modes:
//   * staged:   the handler copies the value into the response ring and the
//               copy is priced on the server CPU (kCopyNsPerByte per byte) —
//               the seed code's path, where every GET crosses the server
//               core once more than it has to;
//   * zerocopy: the handler returns a ZeroCopyRef straight into the store's
//               registered slab entry; the server publishes an indirect
//               descriptor and only the 1-byte status prefix is staged. The
//               client fetches descriptor + value (one extra READ).
// Both modes answer [status byte][value], so the client sees identical
// bytes. The speedup column divides zerocopy MOPS by the staged MOPS at the
// same value size.
//
// Table 2 — channel churn. One node pair, rounds of create/echo/destroy
// plus a forced QP failure + reconnect per round. Ring buffers come from the
// nodes' shared mem::Pools, so after the warm round the fabric registration
// census must stay flat: new_regs = 0, dereg = 0, steady registered
// footprint, and the pools' mr_reuses counters absorb all the churn.
//
// Expected shape (asserted by the --json smoke test in tests/obs/):
//   * zerocopy is >= 1.5x staged at 64 KiB (copy CPU dominates the server
//     budget long before serialization does at 400 Gbps);
//   * at tiny values zerocopy is the slower path — the descriptor costs an
//     extra round trip that no saved copy pays back (the paper's Fig. 1
//     trade-off, now visible inside one store);
//   * churn rounds after the first perform zero re-registrations.

#include "bench/common.h"

#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "src/kv/bucket_table.h"
#include "src/mem/pool.h"
#include "src/rdma/fabric.h"
#include "src/rdma/memory.h"
#include "src/rfp/channel.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"

namespace {

constexpr int kServerThreads = 1;  // single core: copy CPU is the contended resource
constexpr int kClientNodes = 2;
constexpr int kClients = 4;
constexpr int kKeys = 16;
constexpr sim::Time kProcessNs = 200;      // lookup cost, both modes
constexpr double kCopyNsPerByte = 0.08;    // staged mode: server memcpy, ~12.5 GB/s
constexpr double kBandwidthBytesPerNs = 45.0;  // 400 Gbps wire

const sim::Time kMeasureStart = sim::Millis(1);

std::byte ExpectedByte(size_t i) {
  return static_cast<std::byte>(static_cast<uint8_t>(i * 31 + 7));
}

std::vector<std::byte> KeyBytes(uint64_t idx) {
  std::vector<std::byte> key(8);
  std::memcpy(key.data(), &idx, sizeof(idx));
  return key;
}

struct DriverCounts {
  uint64_t completed = 0;
  uint64_t mismatches = 0;
  uint64_t failed = 0;
  sim::Histogram latency;
};

// Closed-loop GET driver: each call asks for key (n % kKeys) and checks the
// assembled [status][value] bytes, sampled.
sim::Task<void> Driver(sim::Engine& eng, rfp::RpcClient* client, uint32_t value_bytes,
                       sim::Time run_end, DriverCounts* counts) {
  std::vector<std::byte> req(8);
  std::vector<std::byte> resp(1 + static_cast<size_t>(value_bytes));
  uint64_t n = 0;
  while (eng.now() < run_end) {
    const uint64_t idx = n++ % kKeys;
    std::memcpy(req.data(), &idx, sizeof(idx));
    const sim::Time start = eng.now();
    try {
      const rfp::Channel::CallHandle handle = co_await client->SubmitCall(1, req);
      const size_t got = co_await client->AwaitCall(handle, resp);
      if (eng.now() >= kMeasureStart) {
        ++counts->completed;
        counts->latency.Record(eng.now() - start);
      }
      if (got != resp.size() || resp[0] != std::byte{1}) {
        ++counts->mismatches;
      } else {
        for (size_t b = 0; b < value_bytes; b += 251) {  // sampled content check
          if (resp[1 + b] != ExpectedByte(b)) {
            ++counts->mismatches;
            break;
          }
        }
      }
    } catch (const std::exception&) {
      ++counts->failed;
    }
  }
}

struct Outcome {
  double mops = 0;
  double gbps = 0;  // client-observed value goodput
  double p50_us = 0;
  double p99_us = 0;
  double reg_mib = 0;  // registered bytes across all nodes at end of run
  rfp::Channel::Stats stats;
  uint64_t mismatches = 0;
  uint64_t failed = 0;
};

Outcome RunSweepPoint(uint32_t value_bytes, bool zero_copy) {
  sim::Engine engine;
  rdma::FabricConfig fc;
  fc.seed = bench::SeedOr(fc.seed);
  fc.nic.bandwidth_bytes_per_ns = kBandwidthBytesPerNs;
  rdma::Fabric fabric(engine, fc);
  rdma::Node& server_node = fabric.AddNode("server");
  std::vector<rdma::Node*> client_nodes;
  for (int c = 0; c < kClientNodes; ++c) {
    client_nodes.push_back(&fabric.AddNode("client" + std::to_string(c)));
  }

  // Pool-backed store, preloaded: every key holds the same deterministic
  // value pattern, so the driver's content check is key-independent.
  kv::BucketTable table(64, server_node);
  {
    std::vector<std::byte> value(value_bytes);
    for (size_t i = 0; i < value.size(); ++i) {
      value[i] = ExpectedByte(i);
    }
    for (uint64_t k = 0; k < kKeys; ++k) {
      table.Put(KeyBytes(k), value);
    }
  }

  rfp::ServerOptions server_options;
  if (!zero_copy) {
    // Staged responses ride in the slot rings, so both the channel and the
    // server dispatch cap must admit the full value.
    server_options.max_message_bytes = value_bytes + 128;
  }
  rfp::RpcServer server(fabric, server_node, kServerThreads, server_options);
  server.RegisterHandler(1, [&table, value_bytes](const rfp::HandlerContext&,
                                                  std::span<const std::byte> req,
                                                  std::span<std::byte> resp) -> rfp::HandlerResult {
    uint64_t idx = 0;
    std::memcpy(&idx, req.data(), sizeof(idx));
    const std::vector<std::byte> key = KeyBytes(idx % kKeys);
    resp[0] = std::byte{1};  // status: found
    if (value_bytes == 0) {
      return {1, kProcessNs};
    }
    // Staged path: memcpy into the response ring, priced at kCopyNsPerByte
    // on the server CPU — the cost the zero-copy handler below avoids.
    const auto value = table.Get(key);
    if (!value.has_value() || value->size() != value_bytes) {
      return {1, kProcessNs};
    }
    rdma::CopyBytes(resp.subspan(1, value_bytes), *value);
    const sim::Time copy_ns =
        static_cast<sim::Time>(static_cast<double>(value_bytes) * kCopyNsPerByte);
    return {1 + static_cast<size_t>(value_bytes), kProcessNs + copy_ns};
  });
  if (zero_copy) {
    server.RegisterHandler(1, [&table](const rfp::HandlerContext&, std::span<const std::byte> req,
                                       std::span<std::byte> resp) -> rfp::HandlerResult {
      uint64_t idx = 0;
      std::memcpy(&idx, req.data(), sizeof(idx));
      auto pinned = table.GetPinned(KeyBytes(idx % kKeys));
      resp[0] = std::byte{1};
      if (!pinned.has_value()) {
        return {1, kProcessNs};
      }
      rfp::ZeroCopyRef ref;
      ref.rkey = pinned->rkey;
      ref.offset = pinned->offset;
      ref.len = pinned->len;
      ref.epoch = pinned->epoch;
      ref.pin = std::move(pinned->pin);
      return {1, kProcessNs, std::move(ref)};
    });
  }

  rfp::RfpOptions options;
  options.force_mode = rfp::RfpOptions::ForceMode::kForceFetch;
  if (!zero_copy) {
    // Staged responses travel through the slot rings, so the rings must be
    // sized for the full value. Zero-copy keeps the default small rings —
    // that difference is the reg_mib column.
    options.max_message_bytes = static_cast<size_t>(value_bytes) + 128;
    options.max_registered_bytes =
        std::max<uint32_t>(2u << 20, 4 * (value_bytes + 8192));
  }

  std::vector<rfp::Channel*> channels;
  std::vector<std::unique_ptr<rfp::RpcClient>> stubs;
  std::vector<DriverCounts> counts(kClients);
  for (int t = 0; t < kClients; ++t) {
    rfp::Channel* channel = server.AcceptChannel(
        *client_nodes[static_cast<size_t>(t % kClientNodes)], options, 0);
    channels.push_back(channel);
    stubs.push_back(std::make_unique<rfp::RpcClient>(channel));
  }
  server.Start();

  // Large values complete few ops per millisecond; stretch the run so the
  // percentile columns rest on a usable sample.
  const sim::Time run_end = value_bytes >= (1u << 20) ? sim::Millis(30) : sim::Millis(5);
  for (int t = 0; t < kClients; ++t) {
    engine.Spawn(Driver(engine, stubs[static_cast<size_t>(t)].get(), value_bytes, run_end,
                        &counts[static_cast<size_t>(t)]));
  }
  engine.RunUntil(run_end);
  server.Stop();

  Outcome out;
  sim::Histogram latency;
  uint64_t completed = 0;
  for (const DriverCounts& c : counts) {
    completed += c.completed;
    out.mismatches += c.mismatches;
    out.failed += c.failed;
    latency.Merge(c.latency);
  }
  const sim::Time measure = run_end - kMeasureStart;
  const double seconds = sim::ToSeconds(measure);
  out.mops = static_cast<double>(completed) / seconds / 1e6;
  out.gbps = static_cast<double>(completed) * value_bytes * 8.0 / seconds / 1e9;
  out.p50_us = static_cast<double>(latency.Percentile(0.50)) / 1000.0;
  out.p99_us = static_cast<double>(latency.Percentile(0.99)) / 1000.0;
  size_t reg = fabric.RegisteredBytes(server_node);
  for (rdma::Node* n : client_nodes) {
    reg += fabric.RegisteredBytes(*n);
  }
  out.reg_mib = static_cast<double>(reg) / (1024.0 * 1024.0);
  for (rfp::Channel* channel : channels) {
    bench::MergeChannelStats(out.stats, channel->stats());
  }
  return out;
}

// ---- Table 2: channel churn over pooled MRs --------------------------------

struct ChurnRow {
  uint64_t new_regs = 0;
  uint64_t dereg = 0;
  uint64_t reconnects = 0;
  uint64_t mr_reuses = 0;
  double reg_kib = 0;
};

class ChurnBench {
 public:
  ChurnBench() {
    rdma::FabricConfig fc;
    fc.seed = bench::SeedOr(fc.seed);
    fabric_ = std::make_unique<rdma::Fabric>(engine_, fc);
    client_ = &fabric_->AddNode("client");
    server_ = &fabric_->AddNode("server");
  }

  // One churn round: `channels` create/echo/destroy cycles, plus one forced
  // QP failure + reconnect on a persistent channel. Returns the round's
  // registration deltas.
  ChurnRow Round(int channels, bool fail_qps) {
    const uint64_t regs_before = TotalRegistrations();
    if (!persistent_) {
      rfp::RfpOptions options;
      options.max_reconnect_attempts = 4;
      persistent_ = std::make_unique<rfp::Channel>(*fabric_, *client_, *server_, options);
      Echo(*persistent_);
    }
    for (int i = 0; i < channels; ++i) {
      rfp::Channel channel(*fabric_, *client_, *server_, rfp::RfpOptions{});
      Echo(channel);
    }
    if (fail_qps) {
      fabric_->FailRcQps(client_->id(), server_->id());
      Echo(*persistent_);  // forces the reconnect path — QPs rebuilt, MRs reused
    }
    ChurnRow row;
    row.new_regs = TotalRegistrations() - regs_before;
    row.dereg = fabric_->DeregistrationCount(*client_) + fabric_->DeregistrationCount(*server_);
    row.reconnects = persistent_->stats().reconnects;
    row.reg_kib = static_cast<double>(fabric_->RegisteredBytes(*client_) +
                                      fabric_->RegisteredBytes(*server_)) /
                  1024.0;
    row.mr_reuses =
        mem::Pool::Shared(*client_)->mr_reuses() + mem::Pool::Shared(*server_)->mr_reuses();
    return row;
  }

 private:
  uint64_t TotalRegistrations() {
    return fabric_->RegistrationCount(*client_) + fabric_->RegistrationCount(*server_);
  }

  void Echo(rfp::Channel& channel) {
    engine_.Spawn([](sim::Engine& eng, rfp::Channel* ch) -> sim::Task<void> {
      std::vector<std::byte> buf(16384);
      size_t n = 0;
      while (!ch->TryServerRecv(buf, &n)) {
        co_await eng.Sleep(sim::Nanos(200));
      }
      co_await ch->ServerSend(std::span<const std::byte>(buf.data(), n));
    }(engine_, &channel));
    engine_.Spawn([](rfp::Channel* ch) -> sim::Task<void> {
      std::vector<std::byte> reply(16384);
      const std::string ping = "ping";
      co_await ch->ClientSend(std::as_bytes(std::span(ping.data(), ping.size())));
      co_await ch->ClientRecv(reply);
    }(&channel));
    engine_.Run();
  }

  sim::Engine engine_;
  std::unique_ptr<rdma::Fabric> fabric_;
  rdma::Node* client_ = nullptr;
  rdma::Node* server_ = nullptr;
  std::unique_ptr<rfp::Channel> persistent_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);

  const std::vector<uint32_t> values = {32, 1024, 16384, 65536, 1u << 20, 4u << 20};

  bench::PrintTitle(
      "Extension: zero-copy GET from registered slabs vs staged copy (400 Gbps, 1 server core)");
  bench::PrintHeader({"mode", "value", "mops", "gbps", "speedup", "p50_us", "p99_us", "reg_mib",
                      "zc_fetches", "fallbacks", "errors"});
  double speedup_64k = 0;
  for (uint32_t value : values) {
    double staged_mops = 0;
    for (const bool zero_copy : {false, true}) {
      const Outcome out = RunSweepPoint(value, zero_copy);
      if (!zero_copy) {
        staged_mops = out.mops;
      }
      const double speedup = staged_mops > 0 ? out.mops / staged_mops : 0;
      if (zero_copy && value == 65536) {
        speedup_64k = speedup;
      }
      bench::PrintRow({zero_copy ? "zerocopy" : "staged", bench::FmtInt(value),
                       bench::Fmt(out.mops, 3), bench::Fmt(out.gbps), bench::Fmt(speedup),
                       bench::Fmt(out.p50_us, 1), bench::Fmt(out.p99_us, 1),
                       bench::Fmt(out.reg_mib), bench::FmtInt(out.stats.zero_copy_fetches),
                       bench::FmtInt(out.stats.zero_copy_fallbacks),
                       bench::FmtInt(out.mismatches + out.failed)});
    }
  }

  bench::PrintTitle("Channel churn over pooled MRs (create/echo/destroy + forced reconnect)");
  bench::PrintHeader(
      {"round", "channels", "reconnects", "new_regs", "dereg", "reg_kib", "mr_reuses"});
  ChurnBench churn;
  uint64_t steady_new_regs = 0;
  for (int round = 0; round < 5; ++round) {
    const ChurnRow row = churn.Round(/*channels=*/8, /*fail_qps=*/round > 0);
    if (round > 0) {
      steady_new_regs += row.new_regs;
    }
    bench::PrintRow({bench::FmtInt(static_cast<uint64_t>(round)), bench::FmtInt(8),
                     bench::FmtInt(row.reconnects), bench::FmtInt(row.new_regs),
                     bench::FmtInt(row.dereg), bench::Fmt(row.reg_kib, 1),
                     bench::FmtInt(row.mr_reuses)});
  }

  std::printf(
      "\nexpected: zerocopy >= 1.5x staged at 64 KiB (measured: %.2fx) — the\n"
      "server stops paying kCopyNsPerByte per GET; at 32 B the extra entry READ\n"
      "makes zerocopy the slower path (the paper's copy-vs-round-trip trade).\n"
      "Churn rounds after round 0 perform zero re-registrations (measured\n"
      "steady-state new_regs: %llu) — rings and bounce buffers recycle through\n"
      "the nodes' shared pools.\n",
      speedup_64k, static_cast<unsigned long long>(steady_new_regs));
  return 0;
}
