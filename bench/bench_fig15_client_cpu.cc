// Figure 15: client CPU utilization under RFP as the request process time
// grows.
//
// Paper: while remote fetching, clients spin at 100% CPU; once the process
// time passes the crossover and RFP switches to server-reply, utilization
// drops below 30%.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 15: client CPU utilization vs request process time (adaptive RFP)");
  bench::PrintHeader({"P_us", "cpu_%", "mode"});
  for (int p = 1; p <= 12; ++p) {
    bench::EchoRunConfig config;
    config.process_ns = sim::Micros(p);
    config.result_size = 32;
    config.server_threads = 16;
    const bench::EchoRunResult r = bench::RunEcho(config);
    const bool reply = r.channels_in_reply_mode > config.client_threads / 2;
    bench::PrintRow({std::to_string(p), bench::Fmt(100.0 * r.client_cpu, 1),
                     reply ? "server-reply" : "remote-fetch"});
  }
  std::printf("\npaper: ~100%% while fetching; below 30%% after the switch (~7 us)\n");
  return 0;
}
