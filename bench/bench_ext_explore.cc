// Extension: schedule-exploration sweep of the explorer corpus.
//
// Runs every scenario in src/explore/corpus.h — the real dataplane, no
// mutant knobs — under the explorer at a fixed schedule budget: exhaustive
// DFS for half the budget, seeded-random sampling for the rest, crossed
// with the entry's fault plans where it has any. The table reports the
// schedules executed, distinct outcome states, violations (always 0 on
// healthy code), and whether the schedule space was exhausted within the
// budget. With --json the same numbers land in the metrics snapshot as
// explore.schedules / explore.distinct_states / explore.violations, keyed
// {scenario=<name>} — the CI explorer-corpus job uploads that artifact.
//
// Exit status is the gate: any schedule that fails a scenario (a
// linearizability violation, a strict-mode race, a stranded or mis-routed
// call) prints the failing decision trace and fails the run.

#include "bench/common.h"

#include <cstdio>
#include <string>
#include <vector>

#include "src/explore/corpus.h"
#include "src/explore/explorer.h"
#include "src/sim/schedule.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Extension: explorer corpus, clean dataplane under schedule exploration");
  bench::PrintHeader({"scenario", "plans", "schedules", "distinct", "violations", "exhausted"});

  int failures = 0;
  for (const explore::corpus::Entry& entry : explore::corpus::Entries()) {
    explore::Options options;
    options.max_schedules = 48;  // the fixed CI budget
    options.exhaustive_share_pct = 50;
    options.seed = bench::SeedOr(1);
    options.label = entry.name;
    if (entry.plans != nullptr) {
      options.fault_plans = entry.plans();
    }
    const size_t plans = options.fault_plans.empty() ? 1 : options.fault_plans.size();

    const explore::Report report = explore::Explorer(options).Run(entry.make(false));
    bench::PrintRow({entry.name, bench::FmtInt(plans), bench::FmtInt(report.schedules),
                     bench::FmtInt(report.distinct_states), bench::FmtInt(report.violations),
                     report.exhausted ? "yes" : "no"});
    if (report.failed) {
      ++failures;
      std::fprintf(stderr, "FAIL %s: %s\n  trace: %s\n", entry.name.c_str(),
                   report.failure_message.c_str(),
                   sim::FormatDecisionTrace(report.minimal_trace).c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}
