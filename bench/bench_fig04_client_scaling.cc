// Figure 4: server in-bound IOPS vs total client threads (7 machines).
//
// Paper: rises with thread count, peaks around 28-42 threads, then declines
// past ~50 as client-side software (mutex) and hardware (QP/CQ) contention
// stops the aggregate client out-bound from scaling.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 4: server in-bound IOPS vs client threads (32 B READs)");
  bench::PrintHeader({"clients", "inbound_mops"});
  for (int threads : {7, 14, 21, 28, 35, 42, 49, 56, 63, 70}) {
    const double mops = bench::RawInboundMops(7, threads / 7, 32);
    bench::PrintRow({std::to_string(threads), bench::Fmt(mops)});
  }
  std::printf("\npaper: peak ~11.26 MOPS near 28-42 threads, moderate decline by 70\n");
  return 0;
}
