// Micro-benchmarks of the simulator itself (google-benchmark): event
// dispatch, coroutine round trips, resource handoffs, and a full simulated
// RDMA READ. These track the cost of the substrate — useful when deciding
// how long a simulated window a bench can afford.

#include <benchmark/benchmark.h>

#include "bench/common.h"

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"
#include "src/sim/resource.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

namespace {

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.ScheduleAt(i, [] {});
    }
    engine.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventDispatch);

void BM_CoroutineSleepLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    engine.Spawn([](sim::Engine& eng) -> sim::Task<void> {
      for (int i = 0; i < 1000; ++i) {
        co_await eng.Sleep(1);
      }
    }(engine));
    engine.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineSleepLoop);

void BM_ResourceHandoff(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Resource resource(engine, 1);
    for (int w = 0; w < 4; ++w) {
      engine.Spawn([](sim::Resource& r) -> sim::Task<void> {
        for (int i = 0; i < 250; ++i) {
          co_await r.Use(1);
        }
      }(resource));
    }
    engine.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ResourceHandoff);

void BM_SimulatedRdmaRead(benchmark::State& state) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& a = fabric.AddNode("a");
  rdma::Node& b = fabric.AddNode("b");
  auto [qa, qb] = fabric.ConnectRc(a, b);
  (void)qb;
  rdma::MemoryRegion* local = a.RegisterMemory(4096, rdma::kAccessLocal);
  rdma::MemoryRegion* remote = b.RegisterMemory(4096, rdma::kAccessRemoteRead);
  for (auto _ : state) {
    engine.Spawn([](rdma::QueuePair* qp, rdma::MemoryRegion* l,
                    rdma::MemoryRegion* r) -> sim::Task<void> {
      co_await qp->Read(*l, 0, r->remote_key(), 0, 32);
    }(qa, local, remote));
    engine.Run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedRdmaRead);

void BM_HistogramRecord(benchmark::State& state) {
  sim::Histogram histogram;
  int64_t v = 1;
  for (auto _ : state) {
    histogram.Record(v);
    v = (v * 2862933555777941757LL + 3037000493LL) & 0xffffff;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace

// Custom main so bench::Init can strip --json/--trace before
// google-benchmark sees (and rejects) them.
int main(int argc, char** argv) {
  bench::Init(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
