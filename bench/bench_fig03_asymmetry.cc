// Figure 3: IOPS of out-bound vs in-bound RDMA with 32-byte payloads.
//
// Paper: out-bound (server issuing WRITEs) saturates at ~2.11 MOPS with 4
// server threads; in-bound (7 clients x 4 threads issuing READs served by
// the server NIC) peaks at ~11.26 MOPS, a ~5x asymmetry.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 3: in-bound vs out-bound IOPS, 32-byte payloads");
  bench::PrintHeader({"srv_threads", "outbound", "inbound", "asymmetry"});
  const double inbound = bench::RawInboundMops(7, 4, 32);
  for (int threads : {1, 2, 4, 6, 8, 10, 12, 14, 16}) {
    const double outbound = bench::RawOutboundMops(threads, 32);
    bench::PrintRow({std::to_string(threads), bench::Fmt(outbound), bench::Fmt(inbound),
                     bench::Fmt(inbound / outbound, 1) + "x"});
  }
  std::printf("\npaper: outbound saturates ~2.11 MOPS at 4 threads; inbound ~11.26 MOPS (~5x)\n");
  return 0;
}
