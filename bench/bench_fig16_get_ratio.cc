// Figure 16: throughput under varying GET percentage (uniform, 32 B).
//
// Paper: Jakiro holds 5.5 MOPS at 95/50/5% GET (server threads are not the
// bottleneck either way); ServerReply is pinned at its out-bound 2.1 MOPS;
// RDMA-Memcached degrades as writes grow — at 95% PUT, Jakiro is ~14x.

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 16: throughput vs GET percentage (uniform, 32 B)");
  bench::PrintHeader({"get_pct", "jakiro", "server-reply", "rdma-memc", "jak/memc"});
  for (double get : {0.95, 0.5, 0.05}) {
    double jak = 0;
    double memc = 0;
    std::vector<std::string> row{bench::Fmt(get * 100, 0) + "%"};
    for (auto system : {bench::KvSystem::kJakiro, bench::KvSystem::kServerReply,
                        bench::KvSystem::kMemcached}) {
      bench::KvRunConfig config;
      config.system = system;
      config.server_threads = system == bench::KvSystem::kMemcached ? 16 : 6;
      config.workload = bench::PaperWorkload();
      config.workload.get_fraction = get;
      const double mops = bench::RunKv(config).mops;
      row.push_back(bench::Fmt(mops));
      if (system == bench::KvSystem::kJakiro) {
        jak = mops;
      }
      if (system == bench::KvSystem::kMemcached) {
        memc = mops;
      }
    }
    row.push_back(bench::Fmt(jak / memc, 1) + "x");
    bench::PrintRow(row);
  }
  std::printf("\npaper: Jakiro 5.5 across the board; ServerReply 2.1; Memcached falls with"
              "\n       writes (Jakiro ~14x at 95%% PUT)\n");
  return 0;
}
