// Extension: request batching / pipelining, the optimization the paper
// scopes out (Section 2.2: "batching the requests or issuing several RDMA
// operations without waiting for the notifications of their completion can
// improve the performance. However, these optimizations are not always
// applicable...", citing Kalia et al.).
//
// A single thread posts `depth` WRITEs asynchronously and reaps completions
// from the CQ. Depth 1 is the paper's synchronous discipline; deeper
// pipelines hide the per-op latency until the NIC's issue pipeline is the
// only limit.

#include "bench/common.h"

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"

namespace {

double RunPipelined(int depth, int threads) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  rdma::Node& server = fabric.AddNode("server");
  std::vector<uint64_t> ops(static_cast<size_t>(threads), 0);
  const sim::Time window = sim::Millis(3);
  for (int t = 0; t < threads; ++t) {
    rdma::Node& client = fabric.AddNode("client" + std::to_string(t));
    rdma::MemoryRegion* remote = client.RegisterMemory(4096, rdma::kAccessRemoteWrite);
    auto [sqp, cqp] = fabric.ConnectRc(server, client);
    (void)cqp;
    rdma::MemoryRegion* local = server.RegisterMemory(4096, rdma::kAccessLocal);
    engine.Spawn([](sim::Engine& eng, rdma::QueuePair* qp, rdma::MemoryRegion* l,
                    rdma::MemoryRegion* r, int d, sim::Time end,
                    uint64_t* count) -> sim::Task<void> {
      // Keep `d` WRITEs outstanding; replenish as completions arrive.
      int outstanding = 0;
      uint64_t next_id = 0;
      while (eng.now() < end) {
        while (outstanding < d) {
          qp->PostWrite(next_id++, *l, 0, r->remote_key(), 0, 32);
          ++outstanding;
        }
        rdma::WorkCompletion wc = co_await qp->send_cq()->Wait();
        if (!wc.ok()) {
          throw std::runtime_error("batching bench: write failed");
        }
        --outstanding;
        ++*count;
      }
    }(engine, sqp, local, remote, depth, window, &ops[static_cast<size_t>(t)]));
  }
  engine.RunUntil(window);
  uint64_t total = 0;
  for (uint64_t o : ops) {
    total += o;
  }
  return static_cast<double>(total) / sim::ToSeconds(window) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Extension: out-bound WRITE IOPS vs pipeline depth (32 B)");
  bench::PrintHeader({"depth", "1_thread", "2_threads", "4_threads"});
  for (int depth : {1, 2, 4, 8, 16}) {
    bench::PrintRow({std::to_string(depth), bench::Fmt(RunPipelined(depth, 1)),
                     bench::Fmt(RunPipelined(depth, 2)), bench::Fmt(RunPipelined(depth, 4))});
  }
  std::printf("\nexpected: depth 1 reproduces the paper's per-thread sync rates (Fig 3);\n"
              "deeper pipelines let even one thread saturate the 2.11 MOPS issue pipeline —\n"
              "the Kalia-et-al. optimization the paper treats as orthogonal to the paradigm\n");
  return 0;
}
