// Figure 17: throughput vs value size (uniform 95% GET, F = 640 B as the
// paper's pre-run selects for this sweep).
//
// Paper: Jakiro wins by 60-280% up to 2 KB; at 4 KB+ all three saturate
// bandwidth and converge. A final mixed-size run (values uniform in
// 32 B-8 KB) shows Jakiro at 3.58 MOPS vs 1.49 (ServerReply) and 1.02
// (RDMA-Memcached).

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Figure 17: throughput vs value size (95% GET, F=640)");
  bench::PrintHeader({"value_B", "jakiro", "server-reply", "rdma-memc"});
  for (uint32_t value : {32u, 64u, 128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    std::vector<std::string> row{std::to_string(value)};
    for (auto system : {bench::KvSystem::kJakiro, bench::KvSystem::kServerReply,
                        bench::KvSystem::kMemcached}) {
      bench::KvRunConfig config;
      config.system = system;
      config.server_threads = system == bench::KvSystem::kMemcached ? 16 : 6;
      config.workload = bench::PaperWorkload();
      config.workload.value_size = workload::ValueSizeSpec::Fixed(value);
      config.channel.fetch_size = 640;
      row.push_back(bench::Fmt(bench::RunKv(config).mops));
    }
    bench::PrintRow(row);
  }

  std::printf("\nmixed value sizes, uniform 32 B - 8 KB:\n");
  bench::PrintHeader({"workload", "jakiro", "server-reply", "rdma-memc"});
  std::vector<std::string> row{"mixed"};
  for (auto system : {bench::KvSystem::kJakiro, bench::KvSystem::kServerReply,
                      bench::KvSystem::kMemcached}) {
    bench::KvRunConfig config;
    config.system = system;
    config.server_threads = system == bench::KvSystem::kMemcached ? 16 : 6;
    config.workload = bench::PaperWorkload();
    config.workload.value_size = workload::ValueSizeSpec::LogUniform(32, 8192);
    config.channel.fetch_size = 640;
    row.push_back(bench::Fmt(bench::RunKv(config).mops));
  }
  bench::PrintRow(row);
  std::printf("\npaper: Jakiro wins to 2 KB, convergence at 4 KB; mixed run 3.58 vs 1.49/1.02\n");
  return 0;
}
