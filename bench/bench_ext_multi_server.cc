// Extension: scale-out. Section 4.5: "This setting takes advantage from the
// asymmetry and hence can achieve a better aggregated throughput if the
// number of clients is higher than the number of servers."
//
// Each Jakiro server saturates its own NIC's in-bound path; with the key
// space sharded across servers, aggregate throughput scales linearly until
// clients run out of out-bound capacity.

#include "bench/common.h"

#include <memory>

#include "src/kv/jakiro.h"
#include "src/rdma/fabric.h"
#include "src/sim/engine.h"

namespace {

double RunSharded(int num_servers) {
  sim::Engine engine;
  rdma::Fabric fabric(engine);
  std::vector<rdma::Node*> server_nodes;
  std::vector<std::unique_ptr<kv::JakiroServer>> servers;
  kv::JakiroConfig config;
  config.server_threads = 4;
  for (int s = 0; s < num_servers; ++s) {
    server_nodes.push_back(&fabric.AddNode("server" + std::to_string(s)));
    servers.push_back(std::make_unique<kv::JakiroServer>(fabric, *server_nodes.back(), config));
  }

  workload::WorkloadSpec spec = bench::PaperWorkload();
  spec.num_keys = 1 << 17;

  // Shard by key id; preload each shard into its server.
  std::vector<std::byte> key(16);
  std::vector<std::byte> value(64);
  for (uint64_t id = 0; id < spec.num_keys; ++id) {
    workload::MakeKey(id, key);
    workload::FillValue(id, std::span<std::byte>(value.data(), 32));
    kv::JakiroServer& owner = *servers[id % static_cast<uint64_t>(num_servers)];
    owner.partition(owner.OwnerThread(key)).Put(key, std::span<const std::byte>(value.data(), 32));
  }

  // 14 client machines x 5 threads, each with a client to every server.
  const int kNodes = 14;
  const int kClients = 70;
  std::vector<rdma::Node*> nodes;
  for (int n = 0; n < kNodes; ++n) {
    nodes.push_back(&fabric.AddNode("client" + std::to_string(n)));
  }
  struct MultiClient {
    std::vector<std::unique_ptr<kv::JakiroClient>> per_server;
  };
  std::vector<MultiClient> clients(kClients);
  std::vector<uint64_t> ops(kClients, 0);
  const sim::Time warmup = sim::Millis(2);
  const sim::Time end = sim::Millis(8);
  for (int t = 0; t < kClients; ++t) {
    for (int s = 0; s < num_servers; ++s) {
      clients[static_cast<size_t>(t)].per_server.push_back(
          std::make_unique<kv::JakiroClient>(*servers[static_cast<size_t>(s)],
                                             *nodes[static_cast<size_t>(t % kNodes)]));
    }
    engine.Spawn([](sim::Engine& eng, MultiClient* mc, workload::WorkloadSpec sp, int id,
                    int ns, sim::Time w, sim::Time e, uint64_t* count) -> sim::Task<void> {
      workload::Generator gen(sp, static_cast<uint64_t>(id));
      std::vector<std::byte> k(16);
      std::vector<std::byte> v(256);
      std::vector<std::byte> out(256);
      while (eng.now() < e) {
        const workload::Op op = gen.Next();
        workload::MakeKey(op.key_id, k);
        kv::JakiroClient* client =
            mc->per_server[static_cast<size_t>(op.key_id % static_cast<uint64_t>(ns))].get();
        const sim::Time start = eng.now();
        if (op.type == workload::OpType::kGet) {
          co_await client->Get(k, out);
        } else {
          workload::FillValue(op.key_id, std::span<std::byte>(v.data(), 32));
          co_await client->Put(k, std::span<const std::byte>(v.data(), 32));
        }
        if (start >= w && eng.now() <= e) {
          ++*count;
        }
      }
    }(engine, &clients[static_cast<size_t>(t)], spec, t, num_servers, warmup, end,
      &ops[static_cast<size_t>(t)]));
  }
  for (auto& server : servers) {
    server->Start();
  }
  engine.RunUntil(end);
  for (auto& server : servers) {
    server->Stop();
  }
  uint64_t total = 0;
  for (uint64_t o : ops) {
    total += o;
  }
  return static_cast<double>(total) / sim::ToSeconds(end - warmup) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintTitle("Extension: sharded Jakiro scale-out (70 clients, 95% GET, 32 B)");
  bench::PrintHeader({"servers", "agg_mops", "per_server"});
  for (int servers : {1, 2, 3, 4}) {
    const double mops = RunSharded(servers);
    bench::PrintRow({std::to_string(servers), bench::Fmt(mops),
                     bench::Fmt(mops / servers)});
  }
  std::printf("\nexpected: near-linear aggregate scaling while clients outnumber servers —\n"
              "each server NIC contributes its full in-bound budget (Section 4.5)\n");
  return 0;
}
