#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over every first-party translation
# unit, using a dedicated build tree for the compilation database.
#
# Usage:
#   scripts/run_clang_tidy.sh [build-dir]
#
# Environment:
#   CLANG_TIDY  clang-tidy binary to use (default: clang-tidy)
#   TIDY_JOBS   parallelism (default: nproc)
#
# Exits non-zero if any file produces a finding, so CI can gate on it.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build-tidy}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
TIDY_JOBS="${TIDY_JOBS:-$(nproc)}"

if ! command -v "${CLANG_TIDY}" >/dev/null 2>&1; then
  echo "error: ${CLANG_TIDY} not found (set CLANG_TIDY or install clang-tidy)" >&2
  exit 2
fi

cmake -S "${ROOT}" -B "${BUILD_DIR}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

# Every first-party TU in the compilation database (drops external/GTest
# glue like the gtest_discover_tests probe binaries).
mapfile -t FILES < <(
  python3 - "${BUILD_DIR}/compile_commands.json" "${ROOT}" <<'EOF'
import json, sys
db, root = json.load(open(sys.argv[1])), sys.argv[2]
seen = set()
for entry in db:
    f = entry["file"]
    if f.startswith(root + "/") and ("/src/" in f or "/bench/" in f
                                     or "/tests/" in f or "/examples/" in f):
        seen.add(f)
print("\n".join(sorted(seen)))
EOF
)

echo "clang-tidy over ${#FILES[@]} files (${TIDY_JOBS} jobs)"
printf '%s\n' "${FILES[@]}" |
  xargs -P "${TIDY_JOBS}" -n 4 "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet \
    --warnings-as-errors='*'
echo "clang-tidy: clean"
