#include "src/repl/cluster.h"

#include <utility>

#include "src/check/checker.h"
#include "src/kv/common.h"
#include "src/rfp/channel.h"
#include "src/sim/engine.h"

namespace repl {

ClusterConfig DefaultClusterConfig() {
  ClusterConfig config;
  rfp::RfpOptions& ch = config.kv.channel_options;
  ch.fetch_timeout_ns = sim::Micros(100);
  ch.fetch_backoff_initial_ns = sim::Micros(2);
  ch.call_deadline_ns = sim::Micros(300);
  return config;
}

namespace {

void GateKvRpcs(kv::JakiroServer& server) {
  server.rpc().GateRpc(kv::kRpcGet);
  server.rpc().GateRpc(kv::kRpcPut);
  server.rpc().GateRpc(kv::kRpcDelete);
  server.rpc().GateRpc(kv::kRpcMultiGet);
}

}  // namespace

Cluster::Cluster(rdma::Fabric& fabric, ClusterConfig config)
    : config_(std::move(config)), fabric_(fabric) {
  ValidateOptions(config_.repl);
  primary_node_ = &fabric_.AddNode("primary");
  backup_node_ = &fabric_.AddNode("backup");
  primary_server_ = std::make_unique<kv::JakiroServer>(fabric_, *primary_node_, config_.kv);
  backup_server_ = std::make_unique<kv::JakiroServer>(fabric_, *backup_node_, config_.kv);
  // Stream handlers and channels must exist before either server starts.
  RegisterProbeHandler(primary_server_->rpc());
  sink_ = std::make_unique<ReplSink>(*backup_server_, config_.repl);
  replicator_ = std::make_unique<Replicator>(*primary_server_, *backup_server_, config_.repl);
  coordinator_ = std::make_unique<FailoverCoordinator>(*primary_server_, *backup_server_,
                                                       *replicator_, *sink_, group_key(),
                                                       config_.repl, /*backup_leader_hint=*/1);
  GateKvRpcs(*primary_server_);
  GateKvRpcs(*backup_server_);
  // Epochs start at 1; the backup redirects toward node 0 until promoted.
  primary_server_->rpc().SetReplGate(/*serving=*/true, /*epoch=*/1, /*leader_hint=*/0);
  backup_server_->rpc().SetReplGate(/*serving=*/false, /*epoch=*/1, /*leader_hint=*/0);
}

void Cluster::Start() {
  if (check::FabricChecker* chk = fabric_.checker()) {
    chk->OnEpochAdvance(group_key(), 1);
  }
  primary_server_->Start();
  backup_server_->Start();
  sink_->Start();
  replicator_->Start();
  coordinator_->Start();
  fabric_.engine().Spawn(replicator_->AttachBackup());
}

void Cluster::Stop() {
  coordinator_->Stop();
  replicator_->Stop();
  sink_->StopApply();
  primary_server_->Stop();
  backup_server_->Stop();
}

int Cluster::leader_index() const {
  return backup_server_->rpc().repl_serving() ? 1 : 0;
}

uint32_t Cluster::epoch() const {
  return leader_index() == 1 ? backup_server_->rpc().repl_epoch()
                             : primary_server_->rpc().repl_epoch();
}

// ---- Client -----------------------------------------------------------------

Client::Client(Cluster& cluster, rdma::Node& client_node)
    : Client(cluster, client_node, conn::Connector::Direct()) {}

Client::Client(Cluster& cluster, rdma::Node& client_node, conn::Connector& connector)
    : cluster_(cluster), engine_(client_node.fabric()->engine()) {
  primary_client_ =
      std::make_unique<kv::JakiroClient>(cluster_.primary(), client_node, connector);
  backup_client_ =
      std::make_unique<kv::JakiroClient>(cluster_.backup(), client_node, connector);
  Refresh();
}

void Client::Refresh() {
  leader_ = cluster_.leader_index();
  const uint32_t epoch = cluster_.epoch();
  for (kv::JakiroClient* client : {primary_client_.get(), backup_client_.get()}) {
    for (int t = 0; t < client->num_channels(); ++t) {
      client->channel(t)->set_request_epoch(epoch);
    }
  }
}

void Client::set_history_recorder(explore::HistoryRecorder* recorder) {
  primary_client_->set_history_recorder(recorder);
  backup_client_->set_history_recorder(recorder);
}

sim::Time Client::RetryBackoff() const {
  return cluster_.config().repl.lease_interval_ns / 8;
}

sim::Task<bool> Client::Put(std::span<const std::byte> key, std::span<const std::byte> value) {
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    try {
      co_return co_await client_for(leader_).Put(key, value);
    } catch (const rfp::Redirected&) {
      ++redirects_seen_;
    } catch (const rfp::DeadlineExceeded&) {
      ++deadline_retries_;
    }
    co_await engine_.Sleep(RetryBackoff());
    Refresh();
  }
  throw rfp::DeadlineExceeded("repl client: put retries exhausted");
}

sim::Task<std::optional<size_t>> Client::Get(std::span<const std::byte> key,
                                             std::span<std::byte> value_out) {
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    try {
      co_return co_await client_for(leader_).Get(key, value_out);
    } catch (const rfp::Redirected&) {
      ++redirects_seen_;
    } catch (const rfp::DeadlineExceeded&) {
      ++deadline_retries_;
    }
    co_await engine_.Sleep(RetryBackoff());
    Refresh();
  }
  throw rfp::DeadlineExceeded("repl client: get retries exhausted");
}

sim::Task<bool> Client::Delete(std::span<const std::byte> key) {
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    try {
      co_return co_await client_for(leader_).Delete(key);
    } catch (const rfp::Redirected&) {
      ++redirects_seen_;
    } catch (const rfp::DeadlineExceeded&) {
      ++deadline_retries_;
    }
    co_await engine_.Sleep(RetryBackoff());
    Refresh();
  }
  throw rfp::DeadlineExceeded("repl client: delete retries exhausted");
}

}  // namespace repl
