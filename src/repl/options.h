// Tunables of the primary-backup replication layer (docs/replication.md).

#ifndef SRC_REPL_OPTIONS_H_
#define SRC_REPL_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "src/rfp/options.h"
#include "src/sim/time.h"

namespace repl {

struct ReplOptions {
  // When the primary's PUT/DELETE reply publishes relative to the backup's
  // acknowledgment of the shipped record:
  //   kSync  — reply only after the backup acked (an acked mutation is on two
  //            nodes; zero acked ops are lost across a failover).
  //   kAsync — reply immediately; the shipper drains the log in the
  //            background, stalling producers only when the unacked lag
  //            exceeds max_async_lag (bounded-lag, default-off).
  enum class AckMode : uint8_t { kSync, kAsync };
  AckMode ack_mode = AckMode::kSync;

  // Failover lease: the coordinator renews the lease on every successful
  // probe of the primary; when the lease has been expired for a full
  // interval with no renewal, the backup is promoted. Bounds unavailability
  // after a primary kill to roughly one lease interval.
  sim::Time lease_interval_ns = sim::Millis(1);

  // Cadence of the coordinator's health probes (an ungated RPC to the
  // primary, answered even while the epoch gate rejects client traffic).
  // Must divide into the lease: probe_interval <= lease_interval.
  sim::Time probe_interval_ns = sim::Micros(100);

  // Per-probe deadline. A probe that misses it counts as a failure (no lease
  // renewal). 0 = use probe_interval_ns.
  sim::Time probe_deadline_ns = 0;

  // kAsync only: producers stall once (appended - acked) exceeds this, so an
  // async backup can never fall arbitrarily far behind.
  size_t max_async_lag = 1024;

  // Buckets swept per BucketTable::SnapshotChunk call during backup
  // bootstrap; bounds the memory a single chunk pins.
  size_t snapshot_chunk_buckets = 256;

  // Interval at which the backup's apply actor drains received-but-unapplied
  // records into its partitions. Records still queued at promotion are
  // replayed synchronously (repl.replayed).
  sim::Time apply_interval_ns = sim::Micros(2);

  // Options of the dedicated replication channel (primary -> backup thread
  // 0). Defaults to a pipelined window so the shipper doorbell-batches a
  // burst of records per flush, with a fetch deadline so a dead backup is
  // noticed instead of waited on forever.
  rfp::RfpOptions channel = DefaultChannelOptions();

  static rfp::RfpOptions DefaultChannelOptions() {
    rfp::RfpOptions ch;
    ch.window = 8;
    ch.fetch_timeout_ns = sim::Micros(200);
    ch.fetch_backoff_initial_ns = sim::Micros(2);
    return ch;
  }
};

// Throws std::invalid_argument when an option set is inconsistent: negative
// or zero intervals, probe slower than the lease, a zero lag bound, or a
// lease interval not comfortably above the channel's fetch timeout — a lease
// at or below 2x the fetch timeout could expire while a single healthy probe
// is still retrying its fetch, promoting the backup under a live primary.
void ValidateOptions(const ReplOptions& options);

}  // namespace repl

#endif  // SRC_REPL_OPTIONS_H_
