#include "src/repl/replicator.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/kv/common.h"
#include "src/obs/metrics.h"
#include "src/rdma/fabric.h"
#include "src/sim/engine.h"

namespace repl {

namespace {

// Snapshot item: the record layout with lsn 0 / rpc_id kRpcPut, encoded in
// place (no Record copy per item).
size_t EncodeItem(std::span<std::byte> out, std::span<const std::byte> key,
                  std::span<const std::byte> value) {
  const uint64_t lsn = 0;
  const uint16_t rpc_id = kv::kRpcPut;
  const uint16_t ks = static_cast<uint16_t>(key.size());
  const uint32_t vs = static_cast<uint32_t>(value.size());
  size_t n = 0;
  std::memcpy(out.data() + n, &lsn, sizeof(lsn));
  n += sizeof(lsn);
  std::memcpy(out.data() + n, &rpc_id, sizeof(rpc_id));
  n += sizeof(rpc_id);
  std::memcpy(out.data() + n, &ks, sizeof(ks));
  n += sizeof(ks);
  std::memcpy(out.data() + n, &vs, sizeof(vs));
  n += sizeof(vs);
  std::memcpy(out.data() + n, key.data(), ks);
  n += ks;
  std::memcpy(out.data() + n, value.data(), vs);
  n += vs;
  return n;
}

}  // namespace

void RegisterProbeHandler(rfp::RpcServer& rpc) {
  rpc.RegisterHandler(kRpcReplProbe, [](const rfp::HandlerContext&, std::span<const std::byte>,
                                        std::span<std::byte> resp) -> rfp::HandlerResult {
    resp[0] = std::byte{1};
    return {1, 50};
  });
}

// ---- ReplSink ---------------------------------------------------------------

ReplSink::ReplSink(kv::JakiroServer& server, ReplOptions options)
    : server_(server), options_(options) {
  ValidateOptions(options_);
  RegisterHandlers();
}

ReplSink::~ReplSink() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"node", server_.node().name()}};
  if (applied_ > 0) {
    reg.GetCounter("repl.applied", labels)->Add(applied_);
  }
  if (replayed_ > 0) {
    reg.GetCounter("repl.replayed", labels)->Add(replayed_);
  }
  if (snapshot_items_ > 0) {
    reg.GetCounter("repl.snapshot_items", labels)->Add(snapshot_items_);
  }
  if (rejected_appends_ > 0) {
    reg.GetCounter("repl.rejected_appends", labels)->Add(rejected_appends_);
  }
}

void ReplSink::RegisterHandlers() {
  rfp::RpcServer& rpc = server_.rpc();

  rpc.RegisterHandler(kRpcReplAppend, [this](const rfp::HandlerContext&,
                                             std::span<const std::byte> req,
                                             std::span<std::byte> resp) -> rfp::HandlerResult {
    // Fencing: a node that believes it is the primary takes no appends. A
    // resurrected old primary shipping into a promoted backup is rejected
    // here, which detaches its shipper.
    if (server_.rpc().repl_serving()) {
      ++rejected_appends_;
      resp[0] = std::byte{0};
      return {1, server_.config().put_process_ns};
    }
    auto record = DecodeRecord(req);
    if (!record.has_value()) {
      resp[0] = std::byte{0};
      return {1, server_.config().put_process_ns};
    }
    last_lsn_ = record->lsn;
    queue_.push_back(std::move(*record));
    resp[0] = std::byte{1};
    return {1, server_.config().put_process_ns};
  });

  rpc.RegisterHandler(kRpcReplSnapshot, [this](const rfp::HandlerContext&,
                                               std::span<const std::byte> req,
                                               std::span<std::byte> resp) -> rfp::HandlerResult {
    uint8_t flags = 0;
    uint16_t count = 0;
    if (req.size() < sizeof(flags) + sizeof(count)) {
      resp[0] = std::byte{0};
      return {1, server_.config().put_process_ns};
    }
    std::memcpy(&flags, req.data(), sizeof(flags));
    std::memcpy(&count, req.data() + sizeof(flags), sizeof(count));
    if ((flags & kSnapBegin) != 0) {
      // Fresh bootstrap: partial state from an aborted earlier sweep (and
      // anything queued against it) must not merge with the new snapshot.
      for (int t = 0; t < server_.num_threads(); ++t) {
        server_.partition(t).Clear();
      }
      queue_.clear();
      bootstrapped_ = false;
    }
    std::span<const std::byte> body = req.subspan(sizeof(flags) + sizeof(count));
    for (uint16_t i = 0; i < count; ++i) {
      auto record = DecodeRecord(body);
      if (!record.has_value()) {
        resp[0] = std::byte{0};
        return {1, server_.config().put_process_ns};
      }
      body = body.subspan(EncodedSize(*record));
      ApplyRecord(*record);
      ++snapshot_items_;
    }
    if ((flags & kSnapEnd) != 0) {
      bootstrapped_ = true;
    }
    resp[0] = std::byte{1};
    return {1, server_.config().put_process_ns * std::max<uint16_t>(count, 1)};
  });

  RegisterProbeHandler(rpc);
}

void ReplSink::ApplyRecord(const Record& record) {
  kv::BucketTable& table = server_.partition(server_.OwnerThread(record.key));
  if (record.rpc_id == kv::kRpcDelete) {
    table.Erase(record.key);
  } else {
    table.Put(record.key, record.value);
  }
  ++applied_;
}

sim::Task<void> ReplSink::ApplyLoop() {
  sim::Engine& engine = server_.node().fabric()->engine();
  while (!apply_stop_) {
    co_await engine.Sleep(options_.apply_interval_ns);
    while (!apply_stop_ && !queue_.empty()) {
      ApplyRecord(queue_.front());
      queue_.pop_front();
    }
  }
  apply_running_ = false;
}

void ReplSink::Start() {
  if (apply_running_) {
    return;
  }
  apply_running_ = true;
  apply_stop_ = false;
  server_.node().fabric()->engine().Spawn(ApplyLoop());
}

uint64_t ReplSink::DrainTail() {
  uint64_t drained = 0;
  while (!queue_.empty()) {
    ApplyRecord(queue_.front());
    queue_.pop_front();
    ++drained;
  }
  replayed_ += drained;
  return drained;
}

// ---- Replicator -------------------------------------------------------------

Replicator::Replicator(kv::JakiroServer& primary, kv::JakiroServer& backup, ReplOptions options)
    : primary_(primary),
      backup_(backup),
      options_(options),
      engine_(primary.node().fabric()->engine()),
      work_(engine_),
      acked_(engine_) {
  ValidateOptions(options_);
  channel_ = backup_.rpc().AcceptChannel(primary_.node(), options_.channel, 0);
  stub_ = std::make_unique<rfp::RpcClient>(channel_);
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->NameTrack(reinterpret_cast<uint64_t>(this), "replicator " + primary_.node().name());
  }
}

Replicator::~Replicator() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"node", primary_.node().name()}};
  if (shipped_ > 0) {
    reg.GetCounter("repl.shipped", labels)->Add(shipped_);
  }
  if (ship_failures_ > 0) {
    reg.GetCounter("repl.ship_failures", labels)->Add(ship_failures_);
  }
  if (attach_attempts_ > 0) {
    reg.GetCounter("repl.attach_attempts", labels)->Add(attach_attempts_);
  }
  if (sync_waits_ > 0) {
    reg.GetCounter("repl.sync_waits", labels)->Add(sync_waits_);
  }
  if (lag_.count() > 0) {
    reg.GetHistogram("repl.lag", labels)->Merge(lag_);
  }
}

void Replicator::Start() {
  primary_.set_repl_hook([this](int, uint16_t rpc_id, std::span<const std::byte> key,
                                std::span<const std::byte> value) -> sim::Task<void> {
    return OnMutation(rpc_id, key, value);
  });
  engine_.Spawn(ShipLoop());
}

void Replicator::Stop() {
  stop_ = true;
  work_.NotifyAll();
  acked_.NotifyAll();
}

void Replicator::Detach() {
  if (state_ == State::kDetached) {
    return;
  }
  state_ = State::kDetached;
  work_.NotifyAll();
  acked_.NotifyAll();
}

bool Replicator::PrimaryDark() const {
  for (int t = 0; t < primary_.num_threads(); ++t) {
    if (!primary_.rpc().thread_crashed(t)) {
      return false;
    }
  }
  return true;
}

sim::Task<void> Replicator::OnMutation(uint16_t rpc_id, std::span<const std::byte> key,
                                       std::span<const std::byte> value) {
  if (state_ == State::kDetached) {
    co_return;  // no backup: serve unreplicated
  }
  const uint64_t lsn = log_.Append(rpc_id, key, value);
  lag_.Record(static_cast<int64_t>(log_.lag()));
  work_.NotifyAll();
  if (state_ != State::kAttached) {
    // Mid-snapshot appends ship after the sweep; the sync guarantee starts
    // once the backup is attached (an unfinished backup is not promotable,
    // so nothing acked here can be served stale).
    co_return;
  }
  if (options_.ack_mode == ReplOptions::AckMode::kSync) {
    ++sync_waits_;
    while (log_.acked_lsn() < lsn && state_ == State::kAttached && !stop_) {
      co_await acked_.Wait();
    }
  } else {
    while (log_.lag() > options_.max_async_lag && state_ == State::kAttached && !stop_) {
      co_await acked_.Wait();
    }
  }
}

sim::Task<void> Replicator::ShipLoop() {
  std::vector<std::byte> req(options_.channel.max_message_bytes);
  std::vector<std::byte> resp(16);
  while (!stop_) {
    if (PrimaryDark()) {
      // The shipper is primary CPU: a killed node ships nothing. Poll for
      // restart; appends cannot arrive while every worker is down.
      co_await engine_.Sleep(options_.probe_interval_ns);
      continue;
    }
    if (state_ != State::kAttached || log_.NextToShip() == nullptr) {
      co_await work_.Wait();
      continue;
    }
    const int window = std::max(1, options_.channel.window);
    if (window == 1) {
      const Record* record = log_.NextToShip();
      const uint64_t lsn = record->lsn;
      const size_t n = EncodeRecord(req, *record);
      log_.MarkShipped();
      try {
        const size_t rn =
            co_await stub_->Call(kRpcReplAppend, std::span<const std::byte>(req.data(), n), resp);
        if (rn < 1 || resp[0] != std::byte{1}) {
          Detach();
          continue;
        }
        log_.OnAcked(lsn);
        ++shipped_;
        acked_.NotifyAll();
      } catch (const std::exception&) {
        ++ship_failures_;
        Detach();
      }
      continue;
    }
    // Doorbell-batched: stage up to a window of records, flush in one batch,
    // then collect the acks in order.
    std::vector<std::pair<rfp::Channel::CallHandle, uint64_t>> batch;
    try {
      while (static_cast<int>(batch.size()) < window) {
        const Record* record = log_.NextToShip();
        if (record == nullptr) {
          break;
        }
        const size_t n = EncodeRecord(req, *record);
        auto handle =
            co_await stub_->SubmitCall(kRpcReplAppend, std::span<const std::byte>(req.data(), n));
        batch.emplace_back(handle, record->lsn);
        log_.MarkShipped();
      }
      for (auto& [handle, lsn] : batch) {
        const size_t rn = co_await stub_->AwaitCall(handle, resp);
        if (rn < 1 || resp[0] != std::byte{1}) {
          Detach();
          break;
        }
        log_.OnAcked(lsn);
        ++shipped_;
        acked_.NotifyAll();
      }
    } catch (const std::exception&) {
      ++ship_failures_;
      Detach();
    }
  }
}

sim::Task<bool> Replicator::SendSnapshot(uint8_t flags, std::span<const std::byte> body,
                                         uint16_t count) {
  std::vector<std::byte> msg(sizeof(flags) + sizeof(count) + body.size());
  std::memcpy(msg.data(), &flags, sizeof(flags));
  std::memcpy(msg.data() + sizeof(flags), &count, sizeof(count));
  if (!body.empty()) {
    std::memcpy(msg.data() + sizeof(flags) + sizeof(count), body.data(), body.size());
  }
  std::vector<std::byte> resp(16);
  const size_t rn = co_await stub_->Call(kRpcReplSnapshot, msg, resp);
  co_return rn >= 1 && resp[0] == std::byte{1};
}

sim::Task<void> Replicator::AttachBackup() {
  if (state_ != State::kDetached) {
    co_return;
  }
  state_ = State::kSnapshotting;
  ++attach_attempts_;
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("repl", "attach_begin", reinterpret_cast<uint64_t>(this), engine_.now());
  }
  // Budget per snapshot message: leave headroom for the flags/count prefix.
  const size_t budget = options_.channel.max_message_bytes - 64;
  std::vector<std::byte> body(budget);
  std::vector<kv::BucketTable::SnapshotItem> items;
  try {
    if (!co_await SendSnapshot(kSnapBegin, {}, 0)) {
      state_ = State::kDetached;
      co_return;
    }
    for (int t = 0; t < primary_.num_threads(); ++t) {
      kv::BucketTable& table = primary_.partition(t);
      size_t cursor = 0;
      while (cursor < table.num_buckets()) {
        if (stop_ || PrimaryDark()) {
          // Crash mid-transfer: the sweep dies with the node. The backup
          // stays un-bootstrapped (not promotable); a later probe of the
          // restarted primary re-runs AttachBackup from scratch.
          state_ = State::kDetached;
          co_return;
        }
        items.clear();
        cursor = table.SnapshotChunk(cursor, options_.snapshot_chunk_buckets, &items);
        size_t i = 0;
        while (i < items.size()) {
          size_t used = 0;
          uint16_t count = 0;
          while (i < items.size()) {
            const size_t need =
                kRecordHeaderBytes + items[i].key.size() + items[i].value.size();
            if (used + need > budget) {
              break;
            }
            used += EncodeItem(std::span<std::byte>(body.data() + used, need), items[i].key,
                               items[i].value);
            ++count;
            ++i;
          }
          if (count == 0) {
            throw std::length_error("repl: snapshot item larger than one message");
          }
          if (!co_await SendSnapshot(0, std::span<const std::byte>(body.data(), used), count)) {
            state_ = State::kDetached;
            co_return;
          }
        }
      }
    }
    if (stop_ || PrimaryDark() || !co_await SendSnapshot(kSnapEnd, {}, 0)) {
      state_ = State::kDetached;
      co_return;
    }
  } catch (const std::length_error&) {
    throw;  // configuration error, not a transport fault
  } catch (const std::exception&) {
    ++ship_failures_;
    state_ = State::kDetached;
    co_return;
  }
  state_ = State::kAttached;
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("repl", "attached", reinterpret_cast<uint64_t>(this), engine_.now());
  }
  work_.NotifyAll();
}

}  // namespace repl
