#include "src/repl/failover.h"

#include <exception>

#include "src/check/checker.h"
#include "src/obs/metrics.h"
#include "src/rdma/fabric.h"
#include "src/sim/engine.h"

namespace repl {

FailoverCoordinator::FailoverCoordinator(kv::JakiroServer& primary, kv::JakiroServer& backup,
                                         Replicator& replicator, ReplSink& sink,
                                         const void* group, ReplOptions options,
                                         uint16_t backup_leader_hint)
    : primary_(primary),
      backup_(backup),
      replicator_(replicator),
      sink_(sink),
      group_(group),
      options_(options),
      backup_leader_hint_(backup_leader_hint),
      engine_(backup.node().fabric()->engine()) {
  ValidateOptions(options_);
  rfp::RfpOptions probe_opts;
  probe_opts.window = 1;
  // A probe that outlives its deadline is a failed probe, not a stuck one:
  // the fetch timeout re-issues against a live-but-slow primary, and the
  // call deadline bounds the whole attempt so the loop keeps ticking while
  // the primary is dark.
  const sim::Time probe_deadline = options_.probe_deadline_ns > 0 ? options_.probe_deadline_ns
                                                                  : options_.probe_interval_ns;
  probe_opts.fetch_timeout_ns = probe_deadline;
  probe_opts.fetch_backoff_initial_ns = probe_deadline / 8 > 0 ? probe_deadline / 8 : 1;
  probe_opts.call_deadline_ns = probe_deadline;
  probe_channel_ = primary_.rpc().AcceptChannel(backup_.node(), probe_opts, 0);
  probe_stub_ = std::make_unique<rfp::RpcClient>(probe_channel_);
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->NameTrack(reinterpret_cast<uint64_t>(this), "failover " + backup_.node().name());
  }
}

FailoverCoordinator::~FailoverCoordinator() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"node", backup_.node().name()}};
  if (promotions_ > 0) {
    reg.GetCounter("repl.promotions", labels)->Add(promotions_);
  }
  if (promotions_refused_ > 0) {
    reg.GetCounter("repl.promotions_refused", labels)->Add(promotions_refused_);
  }
  if (probes_ > 0) {
    reg.GetCounter("repl.probes", labels)->Add(probes_);
  }
  if (lease_expiries_ > 0) {
    reg.GetCounter("repl.lease_expiries", labels)->Add(lease_expiries_);
  }
}

void FailoverCoordinator::Start() {
  lease_deadline_ = engine_.now() + options_.lease_interval_ns;
  engine_.Spawn(ProbeLoop());
}

sim::Task<bool> FailoverCoordinator::ProbeOnce() {
  std::byte req[1] = {std::byte{0}};
  std::byte resp[16] = {};
  try {
    const size_t rn = co_await probe_stub_->Call(kRpcReplProbe, req, resp);
    co_return rn >= 1 && resp[0] == std::byte{1};
  } catch (const std::exception&) {
    co_return false;
  }
}

sim::Task<void> FailoverCoordinator::ProbeLoop() {
  while (!stop_) {
    co_await engine_.Sleep(options_.probe_interval_ns);
    if (stop_) {
      break;
    }
    if (!promoted_ && backup_.rpc().repl_serving()) {
      // A racing coordinator promoted this node; fall through to the
      // post-promotion watch.
      promoted_ = true;
    }
    if (!promoted_) {
      ++probes_;
      if (co_await ProbeOnce()) {
        lease_deadline_ = engine_.now() + options_.lease_interval_ns;
        // A live primary with no attached backup (fresh start, aborted
        // snapshot, shipping failure) gets a bootstrap attempt. AttachBackup
        // no-ops unless detached, so repeated spawns are harmless.
        if (replicator_.detached()) {
          engine_.Spawn(replicator_.AttachBackup());
        }
      } else {
        ++probe_failures_;
        if (engine_.now() >= lease_deadline_) {
          ++lease_expiries_;
          Promote();
        }
      }
    } else if (unsafe_skip_demotion_ && !resurrection_reported_ &&
               !primary_.rpc().thread_crashed(0) && primary_.rpc().repl_serving()) {
      // Split-brain mutant: the old primary restarted and — because the
      // promotion skipped its demotion — still serves at the stale epoch.
      // Report that epoch to the checker; it regresses the group history
      // and trips the epoch-monotonicity invariant.
      resurrection_reported_ = true;
      if (check::FabricChecker* chk = primary_.node().fabric()->checker()) {
        chk->OnEpochAdvance(group_, pre_promotion_epoch_);
      }
    }
  }
}

void FailoverCoordinator::Promote() {
  if (backup_.rpc().repl_serving()) {
    // Gate-authoritative idempotence: someone already promoted this node
    // (a racing coordinator, or a re-entrant lease expiry). The epoch must
    // not advance twice.
    promoted_ = true;
    return;
  }
  if (!sink_.bootstrapped()) {
    // A half-copied store must not serve. Stay unavailable until the old
    // primary restarts, resumes as leader, and re-runs the bootstrap.
    ++promotions_refused_;
    return;
  }
  const uint32_t old_epoch = primary_.rpc().repl_epoch();
  const uint32_t new_epoch = old_epoch + 1;
  pre_promotion_epoch_ = old_epoch;
  // Replay the acked-but-unapplied tail before the gate opens — acked
  // always implies applied-before-serving — then stop the apply actor so
  // only this node's own handlers mutate its partitions from here on.
  sink_.DrainTail();
  sink_.StopApply();
  if (check::FabricChecker* chk = backup_.node().fabric()->checker()) {
    chk->OnEpochAdvance(group_, new_epoch);
  }
  backup_.rpc().SetReplGate(/*serving=*/true, new_epoch, backup_leader_hint_);
  if (!unsafe_skip_demotion_) {
    // Fence the old primary: restarted, it rejects stale-epoch requests
    // with a redirect toward the new leader.
    primary_.rpc().SetReplGate(/*serving=*/false, new_epoch, backup_leader_hint_);
  }
  replicator_.Detach();
  promoted_ = true;
  promoted_at_ = engine_.now();
  ++promotions_;
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("repl", "promoted", reinterpret_cast<uint64_t>(this), engine_.now());
  }
}

}  // namespace repl
