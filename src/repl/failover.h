// Crash-driven failover (docs/replication.md).
//
// The FailoverCoordinator runs on behalf of the BACKUP node. It probes the
// primary's thread-0 worker over a dedicated window-1 channel every
// probe_interval; each answered probe renews a lease. When the primary goes
// dark and the lease expires, the coordinator promotes the backup:
//
//   1. refuse if the backup never finished its snapshot bootstrap (a
//      half-copied store must not serve — the cluster stays unavailable
//      until the old primary restarts and resumes as leader);
//   2. replay the queued replication tail (repl.replayed) and stop the
//      apply actor;
//   3. advance the epoch (old + 1), report it to the fabric checker
//      (epoch-monotonicity invariant), and open the backup's gate;
//   4. demote the old primary's gate in the same step, so a restarted
//      primary rejects stale-epoch requests with a redirect to the new
//      leader — unless the unsafe_skip_demotion mutant is armed, which
//      models exactly the split-brain bug the checker exists to catch.
//
// Promotion is idempotent and gate-authoritative: racing coordinators check
// the backup's own gate, not their private flags, so the epoch advances
// exactly once no matter how many coordinators fire.

#ifndef SRC_REPL_FAILOVER_H_
#define SRC_REPL_FAILOVER_H_

#include <cstdint>
#include <memory>

#include "src/kv/jakiro.h"
#include "src/repl/options.h"
#include "src/repl/replicator.h"
#include "src/rfp/rpc.h"

namespace repl {

class FailoverCoordinator {
 public:
  // Opens the probe channel (backup node -> primary thread 0); the primary
  // must not have started yet. `group` keys the checker's per-group epoch
  // history (the cluster passes itself). `backup_leader_hint` is the
  // redirect hint stamped into demoted gates (the new leader's index).
  FailoverCoordinator(kv::JakiroServer& primary, kv::JakiroServer& backup,
                      Replicator& replicator, ReplSink& sink, const void* group,
                      ReplOptions options, uint16_t backup_leader_hint = 1);

  // Flushes repl.promotions / repl.promotions_refused / repl.probes /
  // repl.lease_expiries, labeled {node} by the backup.
  ~FailoverCoordinator();

  FailoverCoordinator(const FailoverCoordinator&) = delete;
  FailoverCoordinator& operator=(const FailoverCoordinator&) = delete;

  // Spawns the probe loop; the first lease starts now.
  void Start();
  void Stop() { stop_ = true; }

  // Promotes the backup now if it is promotable (see file comment). Called
  // by the probe loop on lease expiry; exposed so tests can race two
  // coordinators deliberately.
  void Promote();

  // TEST ONLY: skip step 4 (demoting the old primary's gate). A restarted
  // old primary then still believes it is the leader at the stale epoch —
  // the split-brain mutant the explorer corpus uses to prove the
  // epoch-regression invariant catches exactly this.
  void set_unsafe_skip_demotion(bool unsafe) { unsafe_skip_demotion_ = unsafe; }

  bool promoted() const { return promoted_; }
  sim::Time promoted_at() const { return promoted_at_; }
  uint64_t promotions() const { return promotions_; }
  uint64_t promotions_refused() const { return promotions_refused_; }
  uint64_t probes() const { return probes_; }
  uint64_t probe_failures() const { return probe_failures_; }
  uint64_t lease_expiries() const { return lease_expiries_; }

 private:
  sim::Task<void> ProbeLoop();
  // One probe round-trip; returns whether the primary answered in time.
  sim::Task<bool> ProbeOnce();

  kv::JakiroServer& primary_;
  kv::JakiroServer& backup_;
  Replicator& replicator_;
  ReplSink& sink_;
  const void* group_;
  ReplOptions options_;
  uint16_t backup_leader_hint_;
  sim::Engine& engine_;
  rfp::Channel* probe_channel_ = nullptr;
  std::unique_ptr<rfp::RpcClient> probe_stub_;
  sim::Time lease_deadline_ = 0;
  bool promoted_ = false;
  sim::Time promoted_at_ = 0;
  bool stop_ = false;
  bool unsafe_skip_demotion_ = false;
  bool resurrection_reported_ = false;
  uint32_t pre_promotion_epoch_ = 0;
  uint64_t promotions_ = 0;
  uint64_t promotions_refused_ = 0;
  uint64_t probes_ = 0;
  uint64_t probe_failures_ = 0;
  uint64_t lease_expiries_ = 0;
};

}  // namespace repl

#endif  // SRC_REPL_FAILOVER_H_
