// A two-node replicated Jakiro cluster (docs/replication.md): a primary and
// a backup JakiroServer wired together with the Replicator (primary-side
// shipper), ReplSink (backup-side stream handlers + apply actor), and
// FailoverCoordinator (backup-side lease probing + promotion), plus the
// failover-aware client that follows the leader across a promotion.
//
// Epoch/leader state lives in the servers' RPC gates, never in this object:
// leader_index() and epoch() read the gates, so clients, coordinators, and
// tests all agree on one authority. Epochs start at 1 (wire epoch 0 means
// "legacy client, skip the gate check").

#ifndef SRC_REPL_CLUSTER_H_
#define SRC_REPL_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "src/conn/connector.h"
#include "src/kv/jakiro.h"
#include "src/rdma/fabric.h"
#include "src/repl/failover.h"
#include "src/repl/options.h"
#include "src/repl/replicator.h"

namespace repl {

struct ClusterConfig {
  kv::JakiroConfig kv;
  ReplOptions repl;
};

// Failover-ready defaults: client channels get a fetch timeout (dead-primary
// fetches fail instead of spinning forever) and a call deadline (so a call
// in flight across a kill surfaces as DeadlineExceeded and the client
// re-resolves the leader).
ClusterConfig DefaultClusterConfig();

class Cluster {
 public:
  // Builds both servers on fresh fabric nodes ("primary", "backup") and all
  // replication machinery; nothing starts until Start().
  explicit Cluster(rdma::Fabric& fabric, ClusterConfig config = DefaultClusterConfig());

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Gates the kv RPCs behind the epoch check on both servers, reports the
  // initial epoch to the checker, starts servers/shipper/apply/probing, and
  // kicks off the backup bootstrap.
  void Start();
  void Stop();

  kv::JakiroServer& primary() { return *primary_server_; }
  kv::JakiroServer& backup() { return *backup_server_; }
  Replicator& replicator() { return *replicator_; }
  ReplSink& sink() { return *sink_; }
  FailoverCoordinator& coordinator() { return *coordinator_; }
  const ClusterConfig& config() const { return config_; }

  // Gate-authoritative: 1 once the backup's gate opened (promotion), else 0.
  int leader_index() const;
  kv::JakiroServer& leader() { return leader_index() == 0 ? primary() : backup(); }
  uint32_t epoch() const;

  // Keys the checker's per-group epoch history.
  const void* group_key() const { return this; }

 private:
  ClusterConfig config_;
  rdma::Fabric& fabric_;
  rdma::Node* primary_node_;
  rdma::Node* backup_node_;
  std::unique_ptr<kv::JakiroServer> primary_server_;
  std::unique_ptr<kv::JakiroServer> backup_server_;
  std::unique_ptr<ReplSink> sink_;
  std::unique_ptr<Replicator> replicator_;
  std::unique_ptr<FailoverCoordinator> coordinator_;
};

// Failover-aware kv client: one JakiroClient per cluster node, ops issued
// against the gate-designated leader under the current epoch. A Redirected
// or DeadlineExceeded response triggers backoff (lease/8) + leader
// re-resolution + idempotent re-issue — a re-issued PUT of the same value
// is linearizability-safe, and the first attempt stays pending in the
// history, which the oracle models as apply-anytime-or-never. Throws
// DeadlineExceeded when the retry budget (which spans several lease
// intervals) is exhausted.
class Client {
 public:
  // Channels come from the process-wide direct connector (legacy bringup).
  Client(Cluster& cluster, rdma::Node& client_node);

  // Failover-aware client whose channels resolve through `connector` — with
  // a cached connector both per-node endpoints share the LRU budget, and an
  // eviction mid-failover is absorbed by the same redirect/retry machinery
  // (docs/connections.md). The connector must outlive the client.
  Client(Cluster& cluster, rdma::Node& client_node, conn::Connector& connector);

  sim::Task<bool> Put(std::span<const std::byte> key, std::span<const std::byte> value);
  sim::Task<std::optional<size_t>> Get(std::span<const std::byte> key,
                                       std::span<std::byte> value_out);
  sim::Task<bool> Delete(std::span<const std::byte> key);

  // Re-reads the leader and epoch from the cluster gates and stamps the
  // epoch onto every channel of both underlying clients.
  void Refresh();

  // Forwards to both underlying clients (a failed-over op records its
  // invocations wherever its attempts ran).
  void set_history_recorder(explore::HistoryRecorder* recorder);

  uint64_t redirects_seen() const { return redirects_seen_; }
  uint64_t deadline_retries() const { return deadline_retries_; }
  kv::JakiroClient& client_for(int index) { return index == 0 ? *primary_client_ : *backup_client_; }

 private:
  // Shared retry scaffolding: how many attempts and how long between them.
  static constexpr int kMaxAttempts = 20;
  sim::Time RetryBackoff() const;

  Cluster& cluster_;
  sim::Engine& engine_;
  std::unique_ptr<kv::JakiroClient> primary_client_;
  std::unique_ptr<kv::JakiroClient> backup_client_;
  int leader_ = 0;
  uint64_t redirects_seen_ = 0;
  uint64_t deadline_retries_ = 0;
};

}  // namespace repl

#endif  // SRC_REPL_CLUSTER_H_
