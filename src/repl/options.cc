#include "src/repl/options.h"

#include <stdexcept>
#include <string>

namespace repl {

namespace {

[[noreturn]] void Reject(const std::string& why) {
  throw std::invalid_argument("repl options: " + why);
}

}  // namespace

void ValidateOptions(const ReplOptions& options) {
  if (options.ack_mode != ReplOptions::AckMode::kSync &&
      options.ack_mode != ReplOptions::AckMode::kAsync) {
    Reject("ack_mode is not a valid AckMode");
  }
  if (options.lease_interval_ns <= 0) {
    Reject("lease_interval_ns must be positive");
  }
  if (options.probe_interval_ns <= 0) {
    Reject("probe_interval_ns must be positive");
  }
  if (options.probe_interval_ns > options.lease_interval_ns) {
    Reject("probe_interval_ns must not exceed lease_interval_ns (the lease "
           "could expire between two probes of a healthy primary)");
  }
  if (options.probe_deadline_ns < 0) {
    Reject("probe_deadline_ns must be >= 0");
  }
  if (options.max_async_lag == 0) {
    Reject("max_async_lag must be >= 1 (0 would stall every async append)");
  }
  if (options.snapshot_chunk_buckets == 0) {
    Reject("snapshot_chunk_buckets must be >= 1");
  }
  if (options.apply_interval_ns <= 0) {
    Reject("apply_interval_ns must be positive");
  }
  if (options.channel.fetch_timeout_ns > 0 &&
      options.lease_interval_ns <= 2 * options.channel.fetch_timeout_ns) {
    Reject("lease_interval_ns must exceed 2x the replication channel's "
           "fetch_timeout_ns, or a healthy primary's in-retry probe could "
           "outlive the lease and trigger a spurious promotion");
  }
  rfp::ValidateOptions(options.channel);
}

}  // namespace repl
