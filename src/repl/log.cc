#include "src/repl/log.h"

#include <cstring>

namespace repl {

size_t EncodedSize(const Record& record) {
  return kRecordHeaderBytes + record.key.size() + record.value.size();
}

size_t EncodeRecord(std::span<std::byte> out, const Record& record) {
  const uint16_t ks = static_cast<uint16_t>(record.key.size());
  const uint32_t vs = static_cast<uint32_t>(record.value.size());
  size_t n = 0;
  std::memcpy(out.data() + n, &record.lsn, sizeof(record.lsn));
  n += sizeof(record.lsn);
  std::memcpy(out.data() + n, &record.rpc_id, sizeof(record.rpc_id));
  n += sizeof(record.rpc_id);
  std::memcpy(out.data() + n, &ks, sizeof(ks));
  n += sizeof(ks);
  std::memcpy(out.data() + n, &vs, sizeof(vs));
  n += sizeof(vs);
  std::memcpy(out.data() + n, record.key.data(), ks);
  n += ks;
  std::memcpy(out.data() + n, record.value.data(), vs);
  n += vs;
  return n;
}

std::optional<Record> DecodeRecord(std::span<const std::byte> payload) {
  if (payload.size() < kRecordHeaderBytes) {
    return std::nullopt;
  }
  Record record;
  uint16_t ks = 0;
  uint32_t vs = 0;
  size_t n = 0;
  std::memcpy(&record.lsn, payload.data() + n, sizeof(record.lsn));
  n += sizeof(record.lsn);
  std::memcpy(&record.rpc_id, payload.data() + n, sizeof(record.rpc_id));
  n += sizeof(record.rpc_id);
  std::memcpy(&ks, payload.data() + n, sizeof(ks));
  n += sizeof(ks);
  std::memcpy(&vs, payload.data() + n, sizeof(vs));
  n += sizeof(vs);
  if (payload.size() < n + ks + vs) {
    return std::nullopt;
  }
  record.key.assign(payload.begin() + static_cast<ptrdiff_t>(n),
                    payload.begin() + static_cast<ptrdiff_t>(n + ks));
  record.value.assign(payload.begin() + static_cast<ptrdiff_t>(n + ks),
                      payload.begin() + static_cast<ptrdiff_t>(n + ks + vs));
  return record;
}

uint64_t ReplLog::Append(uint16_t rpc_id, std::span<const std::byte> key,
                         std::span<const std::byte> value) {
  Record record;
  record.lsn = next_lsn_++;
  record.rpc_id = rpc_id;
  record.key.assign(key.begin(), key.end());
  record.value.assign(value.begin(), value.end());
  records_.push_back(std::move(record));
  return records_.back().lsn;
}

const Record* ReplLog::NextToShip() const {
  return ship_cursor_ < records_.size() ? &records_[ship_cursor_] : nullptr;
}

void ReplLog::MarkShipped() {
  if (ship_cursor_ < records_.size()) {
    ++ship_cursor_;
  }
}

void ReplLog::OnAcked(uint64_t lsn) {
  while (!records_.empty() && records_.front().lsn <= lsn) {
    records_.pop_front();
    if (ship_cursor_ > 0) {
      --ship_cursor_;
    }
  }
  if (lsn > acked_lsn_) {
    acked_lsn_ = lsn;
  }
}

}  // namespace repl
