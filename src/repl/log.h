// The primary's sequenced replication log (docs/replication.md).
//
// Every accepted PUT/DELETE appends one record; the shipper drains records
// in LSN order over the dedicated replication channel and advances the acked
// watermark as the backup acknowledges them. Records are dropped once acked
// — the log is a shipping window, not durable storage (the store itself is
// the state; a fresh backup bootstraps via snapshot chunks, not log replay
// from LSN 1).

#ifndef SRC_REPL_LOG_H_
#define SRC_REPL_LOG_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace repl {

struct Record {
  uint64_t lsn = 0;
  uint16_t rpc_id = 0;  // kv::kRpcPut or kv::kRpcDelete
  std::vector<std::byte> key;
  std::vector<std::byte> value;  // empty for deletes
};

// Wire encoding of one shipped record:
//   [u64 lsn][u16 rpc_id][u16 key_size][u32 value_size][key][value]
constexpr size_t kRecordHeaderBytes = 8 + 2 + 2 + 4;

size_t EncodedSize(const Record& record);

// Writes `record` into `out` (which must hold EncodedSize bytes); returns
// the bytes written.
size_t EncodeRecord(std::span<std::byte> out, const Record& record);

// Returns nullopt on a malformed payload (truncated header or body).
std::optional<Record> DecodeRecord(std::span<const std::byte> payload);

class ReplLog {
 public:
  // Appends a record, assigning the next LSN (LSNs start at 1; 0 means
  // "nothing"). Returns the assigned LSN.
  uint64_t Append(uint16_t rpc_id, std::span<const std::byte> key,
                  std::span<const std::byte> value);

  // The oldest record not yet handed to the shipper, or nullptr when
  // everything appended has been shipped. MarkShipped advances the cursor.
  const Record* NextToShip() const;
  void MarkShipped();

  // The backup acknowledged everything up to `lsn`: drop the acked prefix.
  // Acks arrive in LSN order (one channel, FIFO), so a smaller lsn than the
  // watermark is ignored.
  void OnAcked(uint64_t lsn);

  uint64_t last_lsn() const { return next_lsn_ - 1; }
  uint64_t acked_lsn() const { return acked_lsn_; }
  // Appended but not yet acknowledged (the async mode's bounded lag).
  size_t lag() const { return static_cast<size_t>(last_lsn() - acked_lsn_); }
  size_t unshipped() const { return records_.size() - ship_cursor_; }

 private:
  std::deque<Record> records_;  // [acked_lsn_+1, last_lsn()]
  size_t ship_cursor_ = 0;      // records_[ship_cursor_] = next to ship
  uint64_t next_lsn_ = 1;
  uint64_t acked_lsn_ = 0;
};

}  // namespace repl

#endif  // SRC_REPL_LOG_H_
