// Primary-backup replication over a dedicated RFP channel
// (docs/replication.md).
//
// Two halves:
//
//  * Replicator — runs against the PRIMARY JakiroServer. It installs the
//    server's replication hook, so every accepted PUT/DELETE appends a
//    sequenced record to the ReplLog; a shipper actor drains the log over a
//    pipelined channel to the backup's thread-0 worker (Submit/Flush window,
//    doorbell-batched). In sync mode the hook suspends the handler until the
//    backup acked the record's LSN — the client reply publishes only after
//    the op is on both nodes. In async mode the hook returns immediately and
//    producers stall only past a bounded lag watermark.
//
//  * ReplSink — runs against the BACKUP JakiroServer. It registers the
//    replication stream handlers (append, snapshot chunk, health probe) on
//    the backup's RPC server — ungated ids, dispatched even while the epoch
//    gate rejects client traffic. Appends are queued and acknowledged; an
//    apply actor drains the queue into the backup's partitions in LSN order.
//    Records still queued when the failover coordinator promotes the backup
//    are replayed synchronously first (repl.replayed) — acked therefore
//    always implies applied-before-serving.
//
// Backup bootstrap is snapshot-then-tail: AttachBackup sweeps every primary
// partition with BucketTable::SnapshotChunk (begin marker, chunk messages,
// end marker; the begin marker clears any partial state from an aborted
// earlier attempt), while mutations that land between chunks keep appending
// to the log and ship after the sweep — replay is idempotent upsert, so the
// overlap is harmless. The shipper pauses while a snapshot is in flight so
// chunks and appends never interleave on the channel.
//
// Crash model: the shipper and the attach sweep act on behalf of primary
// CPU, so both stall while every primary worker is crashed (a whole-node
// kill must not be masked by a ghost shipper). A backup that answers an
// append while it is itself serving as primary rejects it — the fencing
// that detaches a resurrected old primary's shipper.

#ifndef SRC_REPL_REPLICATOR_H_
#define SRC_REPL_REPLICATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "src/kv/jakiro.h"
#include "src/repl/log.h"
#include "src/repl/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/signal.h"
#include "src/sim/stats.h"

namespace repl {

// Replication-stream RPC ids; clear of the kv ids (1-4) and never gated.
constexpr uint16_t kRpcReplAppend = 240;
constexpr uint16_t kRpcReplSnapshot = 241;
constexpr uint16_t kRpcReplProbe = 242;

// Snapshot message: [u8 flags][u16 count][encoded records x count], where
// records carry lsn 0 / rpc_id kRpcPut. Begin clears the backup's state;
// end marks the bootstrap complete (the backup becomes promotable).
constexpr uint8_t kSnapBegin = 1;
constexpr uint8_t kSnapEnd = 2;

// Registers the kRpcReplProbe handler (1-byte liveness answer) on `rpc`;
// must run before the server starts. ReplSink installs it on the backup as
// part of the stream handlers; the cluster installs it on the primary too,
// since that is the node whose death the coordinator watches for.
void RegisterProbeHandler(rfp::RpcServer& rpc);

class ReplSink {
 public:
  // Registers the stream handlers on `server`'s RPC server; must run before
  // the server starts.
  ReplSink(kv::JakiroServer& server, ReplOptions options);

  // Flushes repl.applied / repl.replayed / repl.snapshot_items /
  // repl.rejected_appends, labeled {node}.
  ~ReplSink();

  ReplSink(const ReplSink&) = delete;
  ReplSink& operator=(const ReplSink&) = delete;

  // Spawns the apply actor; StopApply halts it (promotion does this after
  // draining the tail, so a promoted backup's partitions are mutated only by
  // its own handlers from then on).
  void Start();
  void StopApply() { apply_stop_ = true; }

  // Applies every queued record now, in LSN order; returns how many
  // (counted as repl.replayed). The promotion path.
  uint64_t DrainTail();

  // The snapshot sweep has completed (end marker seen) and the backup is
  // promotable. An aborted re-bootstrap (begin marker) clears it again.
  bool bootstrapped() const { return bootstrapped_; }

  uint64_t applied() const { return applied_; }
  uint64_t replayed() const { return replayed_; }
  uint64_t snapshot_items() const { return snapshot_items_; }
  uint64_t rejected_appends() const { return rejected_appends_; }
  size_t queued() const { return queue_.size(); }
  uint64_t last_lsn() const { return last_lsn_; }

 private:
  void RegisterHandlers();
  void ApplyRecord(const Record& record);
  sim::Task<void> ApplyLoop();

  kv::JakiroServer& server_;
  ReplOptions options_;
  std::deque<Record> queue_;  // received, acked, not yet applied
  bool bootstrapped_ = false;
  bool apply_stop_ = false;
  bool apply_running_ = false;
  uint64_t applied_ = 0;
  uint64_t replayed_ = 0;
  uint64_t snapshot_items_ = 0;
  uint64_t rejected_appends_ = 0;
  uint64_t last_lsn_ = 0;
};

class Replicator {
 public:
  enum class State : uint8_t { kDetached, kSnapshotting, kAttached };

  // Opens the replication channel (primary node -> backup thread 0). Both
  // servers must not have started yet. Validates `options`.
  Replicator(kv::JakiroServer& primary, kv::JakiroServer& backup, ReplOptions options);

  // Flushes repl.shipped / repl.ship_failures / repl.attach_attempts /
  // repl.sync_waits counters and the repl.lag histogram, labeled {node} by
  // the primary.
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  // Installs the primary's replication hook and spawns the shipper.
  void Start();
  void Stop();

  // Snapshot-then-tail bootstrap; returns with state() == kAttached on
  // success, kDetached when the sweep was aborted (primary crashed
  // mid-transfer, shipping failure). No-op unless currently detached.
  sim::Task<void> AttachBackup();

  // Stops shipping and releases every suspended hook waiter un-acked (their
  // replies publish; the backup link is gone, so sync guarantees end here).
  // Promotion detaches the old primary's replicator.
  void Detach();

  State state() const { return state_; }
  bool attached() const { return state_ == State::kAttached; }
  bool detached() const { return state_ == State::kDetached; }
  const ReplLog& log() const { return log_; }
  const ReplOptions& options() const { return options_; }

  uint64_t shipped() const { return shipped_; }
  uint64_t ship_failures() const { return ship_failures_; }
  uint64_t attach_attempts() const { return attach_attempts_; }
  const sim::Histogram& lag_histogram() const { return lag_; }

 private:
  sim::Task<void> OnMutation(uint16_t rpc_id, std::span<const std::byte> key,
                             std::span<const std::byte> value);
  sim::Task<void> ShipLoop();
  // One snapshot message (flags + count + already-encoded records).
  sim::Task<bool> SendSnapshot(uint8_t flags, std::span<const std::byte> body, uint16_t count);
  // Every primary worker is crashed: the node is dark, nothing ships.
  bool PrimaryDark() const;

  kv::JakiroServer& primary_;
  kv::JakiroServer& backup_;
  ReplOptions options_;
  sim::Engine& engine_;
  rfp::Channel* channel_ = nullptr;
  std::unique_ptr<rfp::RpcClient> stub_;
  ReplLog log_;
  sim::Notifier work_;   // wakes the shipper (appends, state changes)
  sim::Notifier acked_;  // wakes hook waiters (acks, detach)
  State state_ = State::kDetached;
  bool stop_ = false;
  sim::Histogram lag_;  // log lag sampled at every append
  uint64_t shipped_ = 0;
  uint64_t ship_failures_ = 0;
  uint64_t attach_attempts_ = 0;
  uint64_t sync_waits_ = 0;
};

}  // namespace repl

#endif  // SRC_REPL_REPLICATOR_H_
