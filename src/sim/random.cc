#include "src/sim/random.h"

#include <cmath>

namespace sim {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void Rng::Seed(uint64_t seed) {
  // SplitMix64 expansion so correlated seeds yield uncorrelated streams.
  uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    word = z ^ (z >> 31);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless bounded draw; the modulo bias is below
  // 2^-64 * bound, negligible for simulation workloads.
  return static_cast<uint64_t>((static_cast<unsigned __int128>(Next()) * bound) >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n),
      theta_(theta),
      alpha_(1.0 / (1.0 - theta)),
      zetan_(Zeta(n, theta)),
      zeta2theta_(Zeta(2, theta)) {
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double raw =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t rank = static_cast<uint64_t>(raw);
  if (rank >= n_) {
    rank = n_ - 1;
  }
  return rank;
}

}  // namespace sim
