// Trace sink interface for virtual-time instrumentation.
//
// The engine and the components built on it (NIC stations, RFP channels)
// emit spans and instant events through this interface when a sink is
// attached to the engine; with no sink attached the cost is one pointer
// check per emission site. The concrete Chrome-trace-event implementation
// lives in src/obs/trace.h — sim only knows the abstract sink, keeping the
// simulator free of any observability dependency.

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <string_view>

#include "src/sim/time.h"

namespace sim {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // A span of virtual time [start, end] on a track (a NIC station, an actor,
  // a channel). `cat` groups events in the viewer ("actor", "nic", "rfp").
  virtual void Span(std::string_view cat, std::string_view name, uint64_t track,
                    Time start, Time end) = 0;

  // A zero-duration marker (mode switches, drops).
  virtual void Instant(std::string_view cat, std::string_view name, uint64_t track,
                       Time at) = 0;

  // Assigns a human-readable name to a track id.
  virtual void NameTrack(uint64_t track, std::string_view name) = 0;
};

}  // namespace sim

#endif  // SRC_SIM_TRACE_H_
