// Pluggable tie-break policies for the simulation engine.
//
// The engine's event queue orders events by (virtual time, sequence number):
// same-timestamp events normally run in FIFO order, so every run explores
// exactly one interleaving. A SchedulePolicy overrides the tie-break: at each
// instant with more than one ready event, the engine hands the policy the
// ready set (in FIFO order) and dispatches whichever event it picks. Every
// pick is recorded as a (ready-set size, chosen index) pair, so the schedule
// that a random policy happened to explore can be replayed exactly with
// ReplayPolicy — a failing interleaving is a portable, diffable artifact.
//
// Policies only see *sizes and indices*, never event contents, which keeps
// the decision space independent of wall-clock state and makes traces stable
// across runs of the same scenario.

#ifndef SRC_SIM_SCHEDULE_H_
#define SRC_SIM_SCHEDULE_H_

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/sim/random.h"

namespace sim {

// One recorded tie-break: the ready set held `arity` same-timestamp events
// (arity >= 2; singletons are dispatched without consulting the policy) and
// the policy picked the event at `choice` (0 = FIFO order, i.e. lowest seq).
struct Decision {
  uint32_t arity;
  uint32_t choice;
};

// A schedule as a sequence of tie-break choices, in decision-point order.
// Arities are not part of the trace: they are a property of the scenario and
// are re-derived on replay (and checked, see ReplayPolicy::strict()).
using DecisionTrace = std::vector<uint32_t>;

// "0,2,1" <-> {0, 2, 1}. Empty trace formats as "" and "-" parses as empty.
std::string FormatDecisionTrace(const DecisionTrace& trace);
DecisionTrace ParseDecisionTrace(const std::string& text);

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;

  // Engine entry point: picks from a ready set of `arity` same-timestamp
  // events (FIFO order; arity >= 2) and records the decision. Out-of-range
  // picks from a policy are clamped to the ready set.
  size_t ChooseAndRecord(size_t arity);

  // Decisions recorded since construction / the last ResetRecording(), in
  // decision-point order. choices() is the replayable DecisionTrace.
  const std::vector<Decision>& decisions() const { return decisions_; }
  DecisionTrace choices() const;
  void ResetRecording() { decisions_.clear(); }

 protected:
  // Returns the index (0 <= i < arity) of the ready-set event to dispatch.
  virtual size_t Choose(size_t arity) = 0;

 private:
  std::vector<Decision> decisions_;
};

// Explicit FIFO: always picks index 0 (lowest sequence number), which is the
// order the engine uses with no policy installed. Exists so tests can prove
// the policy-dispatch path is schedule-equivalent to the built-in fast path.
class FifoPolicy : public SchedulePolicy {
 protected:
  size_t Choose(size_t /*arity*/) override { return 0; }
};

// Seeded uniform shuffle: each tie-break picks uniformly from the ready set.
// Same seed + same scenario => same schedule (the decision sequence depends
// only on the seed and the arity sequence, which the scenario determines).
class RandomShufflePolicy : public SchedulePolicy {
 public:
  explicit RandomShufflePolicy(uint64_t seed) : rng_(seed) {}

 protected:
  size_t Choose(size_t arity) override { return rng_.NextBounded(arity); }

 private:
  Rng rng_;
};

// Replays a recorded trace: decision point k picks forced[k] (clamped to the
// ready set); decision points beyond the trace fall back to FIFO (index 0).
// With strict mode on, a forced choice that exceeds the ready set — i.e. the
// scenario diverged from the run that produced the trace — aborts the replay
// with ScheduleDivergence instead of clamping.
class ReplayPolicy : public SchedulePolicy {
 public:
  explicit ReplayPolicy(DecisionTrace forced) : forced_(std::move(forced)) {}

  void set_strict(bool strict) { strict_ = strict; }

  // Decision points consumed so far (including FIFO fallbacks past the end).
  size_t consumed() const { return consumed_; }
  // True once a decision point past the forced trace has been reached.
  bool exhausted() const { return consumed_ > forced_.size(); }

 protected:
  size_t Choose(size_t arity) override;

 private:
  DecisionTrace forced_;
  size_t consumed_ = 0;
  bool strict_ = false;
};

// Thrown by a strict ReplayPolicy when the scenario's decision points no
// longer match the recorded trace (ready set smaller than the forced choice).
class ScheduleDivergence : public std::runtime_error {
 public:
  explicit ScheduleDivergence(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace sim

#endif  // SRC_SIM_SCHEDULE_H_
