#include "src/sim/schedule.h"

#include <algorithm>
#include <cstdlib>

namespace sim {

std::string FormatDecisionTrace(const DecisionTrace& trace) {
  std::string out;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i != 0) {
      out.push_back(',');
    }
    out += std::to_string(trace[i]);
  }
  return out;
}

DecisionTrace ParseDecisionTrace(const std::string& text) {
  DecisionTrace trace;
  if (text.empty() || text == "-") {
    return trace;
  }
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    const std::string token = text.substr(pos, comma - pos);
    trace.push_back(static_cast<uint32_t>(std::strtoul(token.c_str(), nullptr, 10)));
    pos = comma + 1;
  }
  return trace;
}

size_t SchedulePolicy::ChooseAndRecord(size_t arity) {
  size_t pick = Choose(arity);
  if (pick >= arity) {
    pick = arity - 1;
  }
  decisions_.push_back(
      Decision{static_cast<uint32_t>(arity), static_cast<uint32_t>(pick)});
  return pick;
}

DecisionTrace SchedulePolicy::choices() const {
  DecisionTrace out;
  out.reserve(decisions_.size());
  for (const Decision& d : decisions_) {
    out.push_back(d.choice);
  }
  return out;
}

size_t ReplayPolicy::Choose(size_t arity) {
  const size_t k = consumed_++;
  if (k >= forced_.size()) {
    return 0;  // past the recorded trace: FIFO
  }
  const size_t want = forced_[k];
  if (want >= arity) {
    if (strict_) {
      throw ScheduleDivergence("replay diverged at decision " + std::to_string(k) +
                               ": forced choice " + std::to_string(want) +
                               " but ready set holds " + std::to_string(arity));
    }
    return arity - 1;
  }
  return want;
}

}  // namespace sim
