// Discrete-event simulation engine.
//
// The engine owns a virtual clock and a priority queue of pending events.
// Actors are coroutines (see task.h) that suspend on awaitables — Sleep(),
// Resource::Acquire(), Event::Wait() — and are resumed by the engine when
// their wake-up event fires. Events at equal timestamps run in FIFO order
// (a monotonically increasing sequence number breaks ties), which makes
// every simulation fully deterministic for a given seed.
//
// The FIFO tie-break can be overridden with a SchedulePolicy (schedule.h):
// when a policy is installed, every instant with more than one ready event
// becomes a recorded decision point, which is what explore::Explorer uses to
// search the schedule space. With no policy installed the engine takes a
// fast path that is bit-for-bit identical to the historical FIFO order.

#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/task.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace sim {

class SchedulePolicy;

class Engine {
 public:
  Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Current virtual time.
  Time now() const { return now_; }

  // Total events dispatched so far (useful for progress accounting in tests).
  uint64_t events_processed() const { return events_processed_; }

  // Attaches (or detaches, with nullptr) a trace sink. While attached, the
  // engine emits virtual-time spans for actor lifetimes and sleeps, and
  // components reached through this engine (NIC stations, RFP channels) emit
  // their own service/state spans. The sink must outlive the engine or be
  // detached first.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }
  TraceSink* trace_sink() const { return trace_; }

  // Installs (or removes, with nullptr) a same-timestamp tie-break policy.
  // The policy must outlive the engine or be detached first; it is consulted
  // only at instants with >= 2 ready events, so Yield() ordering and every
  // other same-instant race is policy-controlled. Install before Run(): the
  // decision-point sequence is only a stable replay artifact if the whole
  // run used one policy.
  void set_schedule_policy(SchedulePolicy* policy) { policy_ = policy; }
  SchedulePolicy* schedule_policy() const { return policy_; }

  // Schedules `fn` to run at absolute virtual time `when` (clamped to now()).
  // The clamp is a hard guarantee the schedule explorer relies on: an event
  // can never be queued in the past, so the ready set at each instant — and
  // therefore the decision-point sequence — is a function of prior decisions
  // only, making recorded traces replayable.
  void ScheduleAt(Time when, std::function<void()> fn);

  // Schedules `fn` to run `delay` nanoseconds from now.
  void ScheduleAfter(Time delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Resumes `handle` at absolute virtual time `when`.
  void ResumeAt(Time when, std::coroutine_handle<> handle) {
    ScheduleAt(when, [handle] { handle.resume(); });
  }

  // Awaitable: suspends the current coroutine for `delay` virtual nanoseconds.
  auto Sleep(Time delay) {
    struct Awaiter {
      Engine* engine;
      Time delay;
      bool await_ready() const noexcept { return delay <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        if (engine->trace_ != nullptr) {
          engine->trace_->Span("actor", "sleep",
                               reinterpret_cast<uint64_t>(h.address()), engine->now_,
                               engine->now_ + delay);
        }
        engine->ResumeAt(engine->now_ + delay, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, delay};
  }

  // Awaitable: yields to any other events pending at the current instant.
  auto Yield() {
    struct Awaiter {
      Engine* engine;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { engine->ResumeAt(engine->now_, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  // Launches a detached actor. The engine owns the coroutine frame and reaps
  // it when the actor finishes; exceptions escaping the actor are captured
  // and rethrown from Run()/RunFor()/RunUntil().
  void Spawn(Task<void> task);

  // Number of spawned actors that have not finished yet.
  int live_actors() const { return live_actors_; }

  // Runs until the event queue drains. Rethrows the first actor exception.
  void Run();

  // Runs until the event queue drains or virtual time would exceed `deadline`.
  // Returns true if the queue drained.
  bool RunUntil(Time deadline);

  // Convenience: RunUntil(now() + duration).
  bool RunFor(Time duration) { return RunUntil(now_ + duration); }

  // Internal: invoked by the Spawn wrapper when an actor finishes (with the
  // exception that escaped it, if any).
  void ActorDone(std::exception_ptr e);

 private:
  struct PendingEvent {
    Time when;
    uint64_t seq;
    std::function<void()> fn;
  };

  struct EventOrder {
    bool operator()(const PendingEvent& a, const PendingEvent& b) const {
      if (a.when != b.when) {
        return a.when > b.when;  // min-heap on time
      }
      return a.seq > b.seq;  // FIFO within an instant
    }
  };

  void DispatchOne();
  void DispatchOneWithPolicy();

  Time now_ = 0;
  TraceSink* trace_ = nullptr;
  SchedulePolicy* policy_ = nullptr;
  uint64_t next_actor_id_ = 1;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  int live_actors_ = 0;
  std::exception_ptr actor_failure_;
  std::priority_queue<PendingEvent, std::vector<PendingEvent>, EventOrder> queue_;
  std::vector<PendingEvent> ready_scratch_;  // policy path: same-instant ready set
};

}  // namespace sim

#endif  // SRC_SIM_ENGINE_H_
