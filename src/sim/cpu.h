// CPU modelling helpers.
//
// CpuSet time-shares a fixed number of cores among actor "threads": an actor
// charges compute time with `co_await cpus.Compute(ns)` and is serialized
// against other compute on the same node when all cores are busy. BusyMeter
// accumulates per-actor busy time so client CPU utilization (paper Fig. 15)
// can be reported as busy-time over wall-time.

#ifndef SRC_SIM_CPU_H_
#define SRC_SIM_CPU_H_

#include "src/sim/engine.h"
#include "src/sim/resource.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {

class CpuSet {
 public:
  CpuSet(Engine& engine, int cores) : engine_(engine), cores_(engine, cores) {}

  int cores() const { return cores_.capacity(); }

  // Occupies one core for `cpu_time` of computation (FIFO when oversubscribed).
  Task<void> Compute(Time cpu_time) { return cores_.Use(cpu_time); }

  double Utilization(Time window_start, Time window_end) const {
    return cores_.Utilization(window_start, window_end);
  }

 private:
  Engine& engine_;
  Resource cores_;
};

// Accumulates the virtual time an actor spent busy (computing or spinning).
// Utilization over a window is busy / (end - start); callers snapshot the
// meter at window boundaries.
class BusyMeter {
 public:
  void AddBusy(Time t) { busy_ += t; }
  Time busy() const { return busy_; }

  double Utilization(Time window_start, Time window_end) const {
    if (window_end <= window_start) {
      return 0.0;
    }
    double u = static_cast<double>(busy_) / static_cast<double>(window_end - window_start);
    return u > 1.0 ? 1.0 : u;
  }

  void Reset() { busy_ = 0; }

 private:
  Time busy_ = 0;
};

}  // namespace sim

#endif  // SRC_SIM_CPU_H_
