// CPU modelling helpers.
//
// CpuSet time-shares a fixed number of cores among actor "threads": an actor
// charges compute time with `co_await cpus.Compute(ns)` and is serialized
// against other compute on the same node when all cores are busy. Pinned
// actors instead charge a *specific* core with `ComputeOn(core, ns)`, so two
// workers affinitized to the same core contend while workers on distinct
// cores run in parallel (docs/multicore.md). BusyMeter accumulates per-actor
// busy time so client CPU utilization (paper Fig. 15) can be reported as
// busy-time over wall-time.

#ifndef SRC_SIM_CPU_H_
#define SRC_SIM_CPU_H_

#include <memory>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/resource.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {

class CpuSet {
 public:
  CpuSet(Engine& engine, int cores) : engine_(engine), cores_(engine, cores) {
    per_core_.reserve(static_cast<size_t>(cores));
    for (int i = 0; i < cores; ++i) {
      per_core_.push_back(std::make_unique<Resource>(engine, 1));
    }
  }

  int cores() const { return cores_.capacity(); }

  // Occupies one core for `cpu_time` of computation (FIFO when oversubscribed).
  Task<void> Compute(Time cpu_time) { return cores_.Use(cpu_time); }

  // Occupies core `core` specifically: pinned compute. Actors pinned to the
  // same core serialize in FIFO order; distinct cores never contend. The
  // pooled Compute() and the pinned ComputeOn() draw from separate permit
  // accounting, so a node should charge each actor class through one
  // discipline consistently (pinned server workers vs pooled client threads).
  Task<void> ComputeOn(int core, Time cpu_time) {
    return per_core_.at(static_cast<size_t>(core))->Use(cpu_time);
  }

  double Utilization(Time window_start, Time window_end) const {
    return cores_.Utilization(window_start, window_end);
  }

  // Busy fraction of one pinned core over the window (ComputeOn charges only).
  double CoreUtilization(int core, Time window_start, Time window_end) const {
    return per_core_.at(static_cast<size_t>(core))->Utilization(window_start, window_end);
  }

  // Arms an exact utilization window on the pool and every pinned core
  // (Resource::WatchFrom), so (Core)Utilization(at, end) reports the busy
  // fraction of [at, end] alone.
  void WatchUtilization(Time at) {
    cores_.WatchFrom(at);
    for (const auto& core : per_core_) {
      core->WatchFrom(at);
    }
  }

 private:
  Engine& engine_;
  Resource cores_;
  std::vector<std::unique_ptr<Resource>> per_core_;
};

// Accumulates the virtual time an actor spent busy (computing or spinning).
// Utilization over a window is busy / (end - start); callers snapshot the
// meter at window boundaries.
class BusyMeter {
 public:
  void AddBusy(Time t) { busy_ += t; }
  Time busy() const { return busy_; }

  double Utilization(Time window_start, Time window_end) const {
    if (window_end <= window_start) {
      return 0.0;
    }
    double u = static_cast<double>(busy_) / static_cast<double>(window_end - window_start);
    return u > 1.0 ? 1.0 : u;
  }

  void Reset() { busy_ = 0; }

 private:
  Time busy_ = 0;
};

}  // namespace sim

#endif  // SRC_SIM_CPU_H_
