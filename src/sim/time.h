// Virtual time for the discrete-event simulator.
//
// Simulated time is an integer count of nanoseconds since simulation start.
// All latency/throughput modelling in src/rdma and src/rfp is expressed in
// these units; helpers below keep call sites readable.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace sim {

// Nanoseconds of virtual time. Signed so durations can be subtracted safely.
using Time = int64_t;

constexpr Time kTimeZero = 0;

constexpr Time Nanos(int64_t n) { return n; }
constexpr Time Micros(int64_t u) { return u * 1000; }
constexpr Time Millis(int64_t m) { return m * 1000 * 1000; }
constexpr Time Seconds(int64_t s) { return s * 1000 * 1000 * 1000; }

constexpr double ToMicros(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double ToMillis(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double ToSeconds(Time t) { return static_cast<double>(t) / 1e9; }

// Converts a rate expressed in million operations per second into the
// per-operation service gap, rounding to the nearest nanosecond.
constexpr Time GapFromMops(double mops) {
  return static_cast<Time>(1000.0 / mops + 0.5);
}

// Converts an average per-operation gap back into MOPS (for reporting).
constexpr double MopsFromGap(Time gap_ns) {
  return gap_ns > 0 ? 1000.0 / static_cast<double>(gap_ns) : 0.0;
}

}  // namespace sim

#endif  // SRC_SIM_TIME_H_
