// Coroutine task type for simulator actors.
//
// A Task<T> is a lazily-started coroutine that produces a value of type T.
// Tasks compose with `co_await`: awaiting a task starts it and suspends the
// awaiter until the task completes, at which point control transfers back
// (symmetric transfer, no stack growth). Detached "actors" — e.g. a client
// thread loop — are launched with Engine::Spawn(), which owns the frame and
// reaps it on completion.
//
// Exceptions thrown inside a task propagate to the awaiter; exceptions that
// escape a detached actor are captured by the Engine and rethrown from
// Engine::Run(), so tests fail loudly instead of deadlocking.

#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <utility>

namespace sim {

template <typename T>
class Task;

namespace internal {

class PromiseBase {
 public:
  // Resumes whoever co_awaited this task once the task's body finishes.
  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
      auto& promise = h.promise();
      if (promise.continuation_) {
        return promise.continuation_;
      }
      return std::noop_coroutine();
    }

    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception_ = std::current_exception(); }

  void set_continuation(std::coroutine_handle<> cont) noexcept { continuation_ = cont; }

  void RethrowIfFailed() const {
    if (exception_) {
      std::rethrow_exception(exception_);
    }
  }

 private:
  std::coroutine_handle<> continuation_;
  std::exception_ptr exception_;
};

template <typename T>
class Promise : public PromiseBase {
 public:
  Task<T> get_return_object() noexcept;

  template <typename U>
  void return_value(U&& value) {
    value_ = std::forward<U>(value);
  }

  T&& TakeValue() {
    RethrowIfFailed();
    return std::move(value_);
  }

 private:
  T value_{};
};

template <>
class Promise<void> : public PromiseBase {
 public:
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
  void TakeValue() { RethrowIfFailed(); }
};

}  // namespace internal

// Lazily-started coroutine producing T. Move-only; owns the coroutine frame.
template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = internal::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  // Awaiting a task starts it (symmetric transfer into the task body) and
  // resumes the awaiter when the body completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;

      bool await_ready() const noexcept { return !handle || handle.done(); }

      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        handle.promise().set_continuation(cont);
        return handle;
      }

      T await_resume() { return handle.promise().TakeValue(); }
    };
    return Awaiter{handle_};
  }

  // Releases ownership of the frame (used by Engine::Spawn).
  Handle Release() { return std::exchange(handle_, nullptr); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_;
};

namespace internal {

template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace internal

}  // namespace sim

#endif  // SRC_SIM_TASK_H_
