// FIFO-queued resources for the simulator.
//
// A Resource models a station with `capacity` identical servers (a NIC issue
// pipeline, a DMA engine, a CPU core pool, a lock). Actors acquire a permit,
// hold it for however long they choose (usually via Engine::Sleep), and
// release it; contenders queue in strict FIFO order, which keeps simulations
// deterministic. `Use(service)` wraps the common acquire-hold-release
// pattern. Utilization and queueing statistics are tracked for reporting.

#ifndef SRC_SIM_RESOURCE_H_
#define SRC_SIM_RESOURCE_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {

class Resource {
 public:
  Resource(Engine& engine, int capacity) : engine_(engine), capacity_(capacity), available_(capacity) {}

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  int capacity() const { return capacity_; }
  int available() const { return available_; }
  int queue_length() const { return static_cast<int>(waiters_.size()); }
  uint64_t total_acquisitions() const { return total_acquisitions_; }
  Time total_wait() const { return total_wait_; }

  // Integral of (permits in use) over time; divide by capacity * elapsed to
  // get average utilization.
  Time busy_integral() const {
    return busy_integral_ + static_cast<Time>(in_use()) * (engine_.now() - last_change_);
  }

  double Utilization(Time window_start, Time window_end) const {
    if (window_end <= window_start || capacity_ == 0) {
      return 0.0;
    }
    return static_cast<double>(busy_integral() - BusyIntegralAt(window_start)) /
           static_cast<double>(capacity_ * (window_end - window_start));
  }

  // Arms an exact utilization-window boundary: the busy integral is
  // snapshotted as the simulation crosses `at`, so a later
  // Utilization(at, end) reports the busy fraction of [at, end] alone
  // instead of folding in busy time accumulated before the window.
  // Snapshots resolve lazily on the next permit transition (O(1) amortized).
  // An `at` already in the past clamps to the last transition — the nearest
  // reconstructible instant.
  void WatchFrom(Time at) {
    watches_.push_back(Watch{at, 0, false});
    ResolveWatches();
  }

  // Awaitable that suspends until a permit is granted. Permits are granted
  // in request order.
  auto Acquire() {
    struct Awaiter {
      Resource* resource;
      Time enqueued_at;

      bool await_ready() {
        if (resource->available_ > 0) {
          resource->Grant();
          return true;
        }
        return false;
      }

      void await_suspend(std::coroutine_handle<> h) {
        enqueued_at = resource->engine_.now();
        resource->waiters_.push_back(Waiter{h, enqueued_at});
      }

      void await_resume() const noexcept {}
    };
    return Awaiter{this, 0};
  }

  // Returns a permit. If actors are queued, the permit passes directly to the
  // head of the queue (resumed at the current instant).
  void Release();

  // Acquires a permit, holds it for `service`, then releases it.
  Task<void> Use(Time service);

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    Time enqueued_at;
  };

  struct Watch {
    Time at;
    Time busy;
    bool resolved;
  };

  // A permit handed to a queued waiter (whose resume event is pending) counts
  // as in use: it is already reserved for that waiter.
  int in_use() const { return capacity_ - available_; }

  void AccumulateBusy() {
    ResolveWatches();  // before last_change_ moves past any armed boundary
    busy_integral_ += static_cast<Time>(in_use()) * (engine_.now() - last_change_);
    last_change_ = engine_.now();
  }

  // The permit count is constant on [last_change_, now], so any armed
  // boundary inside that span has an exactly reconstructible busy integral.
  void ResolveWatches() const {
    for (Watch& w : watches_) {
      if (!w.resolved && w.at <= engine_.now()) {
        const Time at = w.at < last_change_ ? last_change_ : w.at;
        w.busy = busy_integral_ + static_cast<Time>(in_use()) * (at - last_change_);
        w.resolved = true;
      }
    }
  }

  Time BusyIntegralAt(Time t) const {
    if (t <= 0) {
      return 0;
    }
    ResolveWatches();
    for (const Watch& w : watches_) {
      if (w.resolved && w.at == t) {
        return w.busy;
      }
    }
    if (t >= last_change_ && t <= engine_.now()) {
      return busy_integral_ + static_cast<Time>(in_use()) * (t - last_change_);
    }
    return 0;  // unwatched past instant: whole-history fallback
  }

  void Grant() {
    AccumulateBusy();
    --available_;
    ++total_acquisitions_;
  }

  Engine& engine_;
  const int capacity_;
  int available_;
  uint64_t total_acquisitions_ = 0;
  Time total_wait_ = 0;
  Time busy_integral_ = 0;
  Time last_change_ = 0;
  std::deque<Waiter> waiters_;
  mutable std::vector<Watch> watches_;
};

// Mutual exclusion: a capacity-1 resource with lock/unlock vocabulary.
class Mutex {
 public:
  explicit Mutex(Engine& engine) : resource_(engine, 1) {}

  auto Lock() { return resource_.Acquire(); }
  void Unlock() { resource_.Release(); }
  bool locked() const { return resource_.available() == 0; }
  int waiters() const { return resource_.queue_length(); }
  Time total_wait() const { return resource_.total_wait(); }
  uint64_t total_acquisitions() const { return resource_.total_acquisitions(); }

 private:
  Resource resource_;
};

}  // namespace sim

#endif  // SRC_SIM_RESOURCE_H_
