// FIFO-queued resources for the simulator.
//
// A Resource models a station with `capacity` identical servers (a NIC issue
// pipeline, a DMA engine, a CPU core pool, a lock). Actors acquire a permit,
// hold it for however long they choose (usually via Engine::Sleep), and
// release it; contenders queue in strict FIFO order, which keeps simulations
// deterministic. `Use(service)` wraps the common acquire-hold-release
// pattern. Utilization and queueing statistics are tracked for reporting.

#ifndef SRC_SIM_RESOURCE_H_
#define SRC_SIM_RESOURCE_H_

#include <coroutine>
#include <cstdint>
#include <deque>

#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {

class Resource {
 public:
  Resource(Engine& engine, int capacity) : engine_(engine), capacity_(capacity), available_(capacity) {}

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  int capacity() const { return capacity_; }
  int available() const { return available_; }
  int queue_length() const { return static_cast<int>(waiters_.size()); }
  uint64_t total_acquisitions() const { return total_acquisitions_; }
  Time total_wait() const { return total_wait_; }

  // Integral of (permits in use) over time; divide by capacity * elapsed to
  // get average utilization.
  Time busy_integral() const {
    return busy_integral_ + static_cast<Time>(in_use()) * (engine_.now() - last_change_);
  }

  double Utilization(Time window_start, Time window_end) const {
    if (window_end <= window_start || capacity_ == 0) {
      return 0.0;
    }
    return static_cast<double>(busy_integral()) /
           static_cast<double>(capacity_ * (window_end - window_start));
  }

  // Awaitable that suspends until a permit is granted. Permits are granted
  // in request order.
  auto Acquire() {
    struct Awaiter {
      Resource* resource;
      Time enqueued_at;

      bool await_ready() {
        if (resource->available_ > 0) {
          resource->Grant();
          return true;
        }
        return false;
      }

      void await_suspend(std::coroutine_handle<> h) {
        enqueued_at = resource->engine_.now();
        resource->waiters_.push_back(Waiter{h, enqueued_at});
      }

      void await_resume() const noexcept {}
    };
    return Awaiter{this, 0};
  }

  // Returns a permit. If actors are queued, the permit passes directly to the
  // head of the queue (resumed at the current instant).
  void Release();

  // Acquires a permit, holds it for `service`, then releases it.
  Task<void> Use(Time service);

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    Time enqueued_at;
  };

  // A permit handed to a queued waiter (whose resume event is pending) counts
  // as in use: it is already reserved for that waiter.
  int in_use() const { return capacity_ - available_; }

  void AccumulateBusy() {
    busy_integral_ += static_cast<Time>(in_use()) * (engine_.now() - last_change_);
    last_change_ = engine_.now();
  }

  void Grant() {
    AccumulateBusy();
    --available_;
    ++total_acquisitions_;
  }

  Engine& engine_;
  const int capacity_;
  int available_;
  uint64_t total_acquisitions_ = 0;
  Time total_wait_ = 0;
  Time busy_integral_ = 0;
  Time last_change_ = 0;
  std::deque<Waiter> waiters_;
};

// Mutual exclusion: a capacity-1 resource with lock/unlock vocabulary.
class Mutex {
 public:
  explicit Mutex(Engine& engine) : resource_(engine, 1) {}

  auto Lock() { return resource_.Acquire(); }
  void Unlock() { resource_.Release(); }
  bool locked() const { return resource_.available() == 0; }
  int waiters() const { return resource_.queue_length(); }
  Time total_wait() const { return resource_.total_wait(); }
  uint64_t total_acquisitions() const { return resource_.total_acquisitions(); }

 private:
  Resource resource_;
};

}  // namespace sim

#endif  // SRC_SIM_RESOURCE_H_
