// Measurement helpers: counters, running moments, and a log-linear latency
// histogram with percentile/CDF extraction (HdrHistogram-style binning:
// constant relative error, O(1) record).

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace sim {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Welford running mean/variance.
class MeanVar {
 public:
  void Record(double x);
  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  void Reset() { *this = MeanVar(); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Log-linear histogram for non-negative integer samples (latencies in ns).
// Values up to kLinearLimit are recorded exactly; above that, buckets have
// kSubBuckets subdivisions per power of two, bounding relative error by
// 1/kSubBuckets.
class Histogram {
 public:
  static constexpr int kSubBuckets = 64;
  static constexpr int64_t kLinearLimit = kSubBuckets;

  Histogram();

  // Records a sample. Negative values clamp to 0 (they can only come from
  // subtracting timestamps across a warmup boundary and mean "effectively
  // instant"); RecordN with n = 0 is a no-op and does not touch min/max.
  void Record(int64_t value);
  void RecordN(int64_t value, uint64_t n);

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  int64_t min() const { return count_ > 0 ? min_ : 0; }
  int64_t max() const { return count_ > 0 ? max_ : 0; }

  // Value at quantile q (q=0.5 is the median). Returns the upper edge of the
  // containing bucket, clamped to the observed max. Edge cases: q outside
  // [0, 1] clamps to the boundary; q=0 resolves to the lowest non-empty
  // bucket; an empty histogram returns 0 for any q.
  int64_t Percentile(double q) const;

  // (value, cumulative fraction) pairs for every non-empty bucket, suitable
  // for plotting a CDF (paper Figs. 13 and 20).
  struct CdfPoint {
    int64_t value;
    double cumulative;
  };
  std::vector<CdfPoint> Cdf() const;

  void Reset();

  // Merges another histogram into this one (same binning by construction).
  void Merge(const Histogram& other);

 private:
  static int BucketIndex(int64_t value);
  static int64_t BucketUpperEdge(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

// Formats a throughput in MOPS with fixed precision, e.g. "5.52".
std::string FormatMops(double mops, int precision = 2);

}  // namespace sim

#endif  // SRC_SIM_STATS_H_
