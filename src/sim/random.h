// Deterministic random number generation for workloads and models.
//
// Rng is xoshiro256** seeded via SplitMix64 — fast, high quality, and fully
// reproducible across platforms (unlike std::default_random_engine).
// ZipfianGenerator implements the YCSB algorithm (Gray et al.), including the
// scrambled variant that spreads hot keys across the key space.

#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cstdint>

namespace sim {

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  // Raw 64 random bits.
  uint64_t Next();

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_[4];
};

// 64-bit avalanche mix (SplitMix64 finalizer); also used for key scrambling.
uint64_t Mix64(uint64_t x);

// Zipfian-distributed values in [0, n). theta is the skew (YCSB default .99).
// Construction is O(n) (zeta precomputation) and Next() is O(1).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  // Draws a rank: 0 is the most popular item.
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

// Zipfian ranks scrambled over the key space with Mix64, so popularity is not
// correlated with key order (YCSB "scrambled zipfian").
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta) : zipf_(n, theta) {}

  uint64_t Next(Rng& rng) { return Mix64(zipf_.Next(rng)) % zipf_.n(); }

 private:
  ZipfianGenerator zipf_;
};

}  // namespace sim

#endif  // SRC_SIM_RANDOM_H_
