#include "src/sim/resource.h"

namespace sim {

void Resource::Release() {
  if (!waiters_.empty()) {
    // Hand the permit directly to the queue head; availability is unchanged
    // (the permit never becomes free). The waiter resumes at this instant,
    // after any events already scheduled for it.
    Waiter next = waiters_.front();
    waiters_.pop_front();
    total_wait_ += engine_.now() - next.enqueued_at;
    ++total_acquisitions_;
    engine_.ResumeAt(engine_.now(), next.handle);
    return;
  }
  AccumulateBusy();
  ++available_;
}

Task<void> Resource::Use(Time service) {
  co_await Acquire();
  co_await engine_.Sleep(service);
  Release();
}

}  // namespace sim
