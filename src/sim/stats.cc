#include "src/sim/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace sim {

void MeanVar::Record(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double MeanVar::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double MeanVar::stddev() const { return std::sqrt(variance()); }

namespace {

// 64 exact buckets, then 64 sub-buckets per power of two up to 2^62.
constexpr int kMaxBuckets = Histogram::kSubBuckets * 64;

}  // namespace

Histogram::Histogram() : buckets_(kMaxBuckets, 0) {}

int Histogram::BucketIndex(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  if (value < kLinearLimit) {
    return static_cast<int>(value);
  }
  const uint64_t v = static_cast<uint64_t>(value);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - 6;  // log2(kSubBuckets)
  const int sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
  const int index = (msb - 5) * kSubBuckets + sub;
  return std::min(index, kMaxBuckets - 1);
}

int64_t Histogram::BucketUpperEdge(int index) {
  if (index < kLinearLimit) {
    return index;
  }
  const int group = index / kSubBuckets;  // >= 1
  const int sub = index % kSubBuckets;
  const int msb = group + 5;
  const int shift = msb - 6;
  return ((static_cast<int64_t>(kSubBuckets) + sub + 1) << shift) - 1;
}

void Histogram::Record(int64_t value) { RecordN(value, 1); }

void Histogram::RecordN(int64_t value, uint64_t n) {
  if (n == 0) {
    return;
  }
  if (value < 0) {
    value = 0;
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  buckets_[static_cast<size_t>(BucketIndex(value))] += n;
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
}

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kMaxBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (static_cast<double>(seen) >= target && seen > 0) {
      return std::min(BucketUpperEdge(i), max_);
    }
  }
  return max_;
}

std::vector<Histogram::CdfPoint> Histogram::Cdf() const {
  std::vector<CdfPoint> points;
  if (count_ == 0) {
    return points;
  }
  uint64_t seen = 0;
  for (int i = 0; i < kMaxBuckets; ++i) {
    if (buckets_[static_cast<size_t>(i)] == 0) {
      continue;
    }
    seen += buckets_[static_cast<size_t>(i)];
    points.push_back(CdfPoint{std::min(BucketUpperEdge(i), max_),
                              static_cast<double>(seen) / static_cast<double>(count_)});
  }
  return points;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kMaxBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }
}

std::string FormatMops(double mops, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, mops);
  return std::string(buf);
}

}  // namespace sim
