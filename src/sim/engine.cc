#include "src/sim/engine.h"

#include <string>
#include <utility>

#include "src/sim/schedule.h"

namespace sim {

namespace {

// Fire-and-forget wrapper coroutine used by Engine::Spawn. It starts eagerly,
// runs the wrapped task to completion, and self-destructs (final_suspend is
// suspend_never), so the engine never has to track frames explicitly.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    // The wrapper body catches everything; reaching here is a logic error.
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

Detached RunDetached(Engine* engine, Task<void> task, uint64_t actor_id, Time spawned_at) {
  std::exception_ptr failure;
  try {
    co_await std::move(task);
  } catch (...) {
    failure = std::current_exception();
  }
  if (TraceSink* trace = engine->trace_sink()) {
    trace->Span("actor", "actor-" + std::to_string(actor_id), actor_id, spawned_at,
                engine->now());
  }
  engine->ActorDone(failure);
}

}  // namespace

void Engine::ScheduleAt(Time when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  queue_.push(PendingEvent{when, next_seq_++, std::move(fn)});
}

void Engine::Spawn(Task<void> task) {
  ++live_actors_;
  RunDetached(this, std::move(task), next_actor_id_++, now_);
}

void Engine::ActorDone(std::exception_ptr e) {
  --live_actors_;
  if (e && !actor_failure_) {
    actor_failure_ = e;
  }
}

void Engine::DispatchOne() {
  if (policy_ != nullptr) {
    DispatchOneWithPolicy();
    return;
  }
  // Moving out of the const top() is not allowed; copy the function handle
  // out through a const_cast-free path by re-popping into a local.
  PendingEvent ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++events_processed_;
  ev.fn();
}

void Engine::DispatchOneWithPolicy() {
  // Drain the full ready set for the next instant. Heap order yields the
  // same-timestamp events in ascending seq, so the ready set the policy sees
  // is indexed in FIFO order: choice 0 always means "what FIFO would do".
  ready_scratch_.clear();
  ready_scratch_.push_back(queue_.top());
  queue_.pop();
  const Time instant = ready_scratch_.front().when;
  while (!queue_.empty() && queue_.top().when == instant) {
    ready_scratch_.push_back(queue_.top());
    queue_.pop();
  }
  size_t pick = 0;
  if (ready_scratch_.size() > 1) {
    pick = policy_->ChooseAndRecord(ready_scratch_.size());
  }
  PendingEvent chosen = std::move(ready_scratch_[pick]);
  // Unchosen events go back with their original seq: relative FIFO order
  // among them is preserved, so the next decision point sees a ready set
  // that differs from this one only by the removal of `chosen` (plus
  // whatever `chosen` itself schedules at this instant).
  for (size_t i = 0; i < ready_scratch_.size(); ++i) {
    if (i != pick) {
      queue_.push(std::move(ready_scratch_[i]));
    }
  }
  ready_scratch_.clear();
  now_ = chosen.when;
  ++events_processed_;
  chosen.fn();
}

void Engine::Run() {
  while (!queue_.empty() && !actor_failure_) {
    DispatchOne();
  }
  if (actor_failure_) {
    std::exception_ptr e = std::exchange(actor_failure_, nullptr);
    std::rethrow_exception(e);
  }
}

bool Engine::RunUntil(Time deadline) {
  while (!queue_.empty() && !actor_failure_) {
    if (queue_.top().when > deadline) {
      now_ = deadline;
      return false;
    }
    DispatchOne();
  }
  if (actor_failure_) {
    std::exception_ptr e = std::exchange(actor_failure_, nullptr);
    std::rethrow_exception(e);
  }
  now_ = deadline;
  return true;
}

}  // namespace sim
