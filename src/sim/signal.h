// Event and notification primitives for simulator actors.

#ifndef SRC_SIM_SIGNAL_H_
#define SRC_SIM_SIGNAL_H_

#include <coroutine>
#include <deque>

#include "src/sim/engine.h"

namespace sim {

// Level-triggered broadcast event. Wait() completes immediately while the
// event is set; Set() releases every current waiter. Reset() re-arms it.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(engine) {}

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const { return set_; }

  void Set() {
    set_ = true;
    WakeAll();
  }

  void Reset() { set_ = false; }

  auto Wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const { return event->set_; }
      void await_suspend(std::coroutine_handle<> h) { event->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  void WakeAll() {
    while (!waiters_.empty()) {
      std::coroutine_handle<> h = waiters_.front();
      waiters_.pop_front();
      engine_.ResumeAt(engine_.now(), h);
    }
  }

  Engine& engine_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Edge-triggered condition: Wait() always suspends until the next
// NotifyOne()/NotifyAll(). Waiters are responsible for re-checking their
// predicate in a loop, exactly like a condition variable.
class Notifier {
 public:
  explicit Notifier(Engine& engine) : engine_(engine) {}

  Notifier(const Notifier&) = delete;
  Notifier& operator=(const Notifier&) = delete;

  int waiters() const { return static_cast<int>(waiters_.size()); }

  auto Wait() {
    struct Awaiter {
      Notifier* notifier;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { notifier->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void NotifyOne() {
    if (!waiters_.empty()) {
      std::coroutine_handle<> h = waiters_.front();
      waiters_.pop_front();
      engine_.ResumeAt(engine_.now(), h);
    }
  }

  void NotifyAll() {
    while (!waiters_.empty()) {
      NotifyOne();
    }
  }

 private:
  Engine& engine_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace sim

#endif  // SRC_SIM_SIGNAL_H_
