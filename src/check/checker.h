// Protocol invariant checking for the simulated RDMA stack.
//
// The checker is an always-compiled, default-off verification layer. When a
// fabric is built while the global mode is not kOff, it owns a FabricChecker
// and every QP/CQ/MR operation reports into it. Three checker families run:
//
//  * QP/CQ state machine — posts are validated against the two-state verb
//    machine (one post on an errored QP is legal discovery, a second post
//    without reconnect/recover is a violation; retired QPs reject all posts),
//    per-QP in-flight work requests are capped, completion queues are bounded,
//    and per-QP completion order of successful async posts must match post
//    order.
//  * MR bounds & rkey — every one-sided access is resolved against the live
//    registration table: rkey known, region on the peer node, offset+len in
//    bounds, access flags allow the op, and the registration has not been
//    torn down (use-after-deregister).
//  * Registered-memory race detector — a happens-before tracker over a
//    process-wide logical tick. CPU stores into a registered region mark
//    bytes dirty; publication points (the RFP status-flag/checksum protocol)
//    and remote WRITE deliveries mark them clean. A remote READ takes a
//    snapshot tick; when the reader *accepts* those bytes, every byte must
//    have been clean as of the snapshot. Symmetrically, a server accepting a
//    request validates the request bytes against local CPU stores.
//
// Violations increment `check.violation{kind}` in the default metrics
// registry, emit a Chrome-trace instant, and — in strict mode — throw
// ViolationError out of the offending simulator actor (the engine rethrows it
// from Run()). Report mode only records. See docs/static_analysis.md.

#ifndef SRC_CHECK_CHECKER_H_
#define SRC_CHECK_CHECKER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/rdma/types.h"

namespace sim {
class Engine;
}
namespace obs {
class Counter;
}

namespace check {

// ---- Global mode -------------------------------------------------------------

enum class Mode : uint8_t {
  kOff,     // no checker is attached to new fabrics
  kReport,  // violations are counted and recorded, execution continues
  kStrict,  // violations throw ViolationError
};

const char* ModeName(Mode mode);

// Resolves the mode from the RFP_CHECK environment variable ("strict",
// "report", "off"/"0"/unset). Called once on first use of CurrentMode().
Mode ModeFromEnv();

// The mode new fabrics adopt; seeded from RFP_CHECK on first call.
Mode CurrentMode();
void SetMode(Mode mode);

// RAII mode override (tests, bench --check flag).
class ScopedMode {
 public:
  explicit ScopedMode(Mode mode);
  ~ScopedMode();

  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Mode saved_;
};

// Downgrades strict to report for a scope. Tests that deliberately exercise
// illegal paths (bad rkeys, unsupported ops) wrap the offending calls so the
// suite still passes under RFP_CHECK=strict while the violations are counted.
class ScopedReportOnly {
 public:
  ScopedReportOnly();
  ~ScopedReportOnly();

  ScopedReportOnly(const ScopedReportOnly&) = delete;
  ScopedReportOnly& operator=(const ScopedReportOnly&) = delete;

 private:
  Mode saved_;
};

// ---- Tunables ----------------------------------------------------------------

struct Limits {
  // Maximum simultaneously in-flight work requests per QP (send side).
  int max_outstanding_wr = 1024;
  // Maximum completions buffered in one CQ before overflow is flagged.
  size_t cq_capacity = 16384;
  // Events retained per region before the race tracker folds history into
  // its baseline interval map.
  size_t race_history = 4096;
};

Limits CurrentLimits();
void SetLimits(const Limits& limits);

// ---- Violations --------------------------------------------------------------

enum class ViolationKind : uint8_t {
  kQpPostAfterError,    // second post on an errored QP without reconnect
  kQpPostOnRetired,     // post on a QP retired by Fabric::RetireQp
  kQpUnsupportedOp,     // op outside the QP type's support matrix
  kQpWrCapExceeded,     // in-flight WRs above Limits::max_outstanding_wr
  kCqOverflow,          // CQ depth above Limits::cq_capacity
  kCqCompletionOrder,   // successful completions out of post order on one QP
  kMrBadRkey,           // rkey not in the live registration table
  kMrDeregistered,      // rkey was valid once but has been deregistered
  kMrWrongNode,         // rkey resolves to a region on a different node
  kMrOutOfBounds,       // remote offset+len outside the registration
  kMrAccessRights,      // region's access flags do not allow the op
  kMrLocalOutOfBounds,  // local offset+len outside the local region
  kRaceFetchStore,      // accepted READ bytes overlapped an unpublished store
  kRaceRecvStore,       // accepted request bytes overlapped a local store
  kRfpOverlappingCall,  // ClientSend while the previous call is outstanding
  kRfpRecvWithoutSend,  // ClientRecv with no call outstanding
  kReplEpochRegression, // replication group's epoch moved backwards
  kConnCidAssign,       // pooled connection id assigned while still live
  kConnCidRelease,      // pooled connection id released while not live
  kNumKinds,
};

// The metric label, e.g. "qp.post_after_error". `check.violation{kind=<this>}`
// is the counter every violation increments.
const char* ViolationKindName(ViolationKind kind);

class ViolationError : public std::runtime_error {
 public:
  ViolationError(ViolationKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  ViolationKind kind() const { return kind_; }

 private:
  ViolationKind kind_;
};

struct Violation {
  ViolationKind kind;
  std::string detail;
  uint64_t tick = 0;
  // Tie-break decisions recorded up to the violation when the run used a
  // sim::SchedulePolicy (empty otherwise). Feeding this to ReplayPolicy /
  // `explore::Replay` reproduces the offending interleaving exactly.
  std::string schedule_trace;
};

// ---- Race tracker ------------------------------------------------------------

// Byte-granular happens-before state for one registered region, keyed by a
// process-wide logical tick. Bounded: once the event log exceeds the history
// limit, the oldest half is folded into a baseline interval map.
class RaceTracker {
 public:
  explicit RaceTracker(size_t history_cap) : history_cap_(history_cap) {}

  void Store(size_t off, size_t len, uint64_t tick);
  void Publish(size_t off, size_t len, uint64_t tick);
  // A remote WRITE delivery is an atomic store+publish: the NIC lands the
  // bytes in one piece, so readers never observe them torn.
  void RemoteWrite(size_t off, size_t len, uint64_t tick);

  // Returns the first [off,len) overlap that was dirty (stored without a
  // later publication) as of tick `as_of`, or nullopt when all bytes were
  // clean. Events with tick > as_of are invisible to the query.
  struct Dirty {
    size_t off;
    size_t len;
    uint64_t store_tick;
  };
  std::optional<Dirty> FirstDirty(size_t off, size_t len, uint64_t as_of) const;

 private:
  enum class EventKind : uint8_t { kStore, kPublish, kRemoteWrite };
  struct Event {
    uint64_t tick;
    EventKind kind;
    size_t off;
    size_t len;
  };
  struct BaseInterval {
    size_t off;
    size_t end;
    bool dirty;
    uint64_t tick;  // tick of the folded store when dirty
  };

  void Append(EventKind kind, size_t off, size_t len, uint64_t tick);
  void Compact();

  size_t history_cap_;
  std::deque<Event> events_;
  // Disjoint, sorted state for everything older than events_. `baseline_tick_`
  // is the newest tick folded in; queries with as_of < baseline_tick_ answer
  // conservatively clean for baseline bytes.
  std::deque<BaseInterval> baseline_;
  uint64_t baseline_tick_ = 0;
};

// ---- The per-fabric checker --------------------------------------------------

class FabricChecker {
 public:
  FabricChecker(sim::Engine* engine, Mode mode);

  Mode mode() const { return mode_; }

  // Logical clock. Bumped on every recorded event so that same-sim-instant
  // operations still have a total order (the sim executes them sequentially).
  uint64_t tick() const { return tick_; }

  // ---- Lifecycle (Fabric) --------------------------------------------------

  void OnQpCreated(uint32_t qp_num, rdma::QpType type);
  void OnQpRetired(uint32_t qp_num);
  void OnQpError(uint32_t qp_num);
  void OnQpRecovered(uint32_t qp_num);
  void OnMrRegistered(uint32_t rkey, const void* node, size_t size, uint32_t access);
  void OnMrDeregistered(uint32_t rkey);

  // ---- QP hooks (QueuePair) ------------------------------------------------

  // Validates a post. `supported` is false when the op falls outside the QP
  // type's matrix; `retired` when the QP was retired by the fabric. In report
  // mode the post proceeds into its error-completion path after the count;
  // strict mode throws out of the posting actor instead. `batch_follower`
  // marks a WR riding an earlier post's doorbell: a whole chain is posted
  // before any completion can be observed, so followers share their leader's
  // error discovery instead of counting as ignore-the-completion reposts.
  void OnPost(uint32_t qp_num, rdma::Opcode op, bool in_error, bool supported, bool retired,
              bool batch_follower = false);
  // Registers an async wr_id under the QP's post sequence so OnCqPush can
  // validate completion order.
  void OnAsyncPost(uint32_t qp_num, uint64_t wr_id);
  void OnOpEnd(uint32_t qp_num);
  // Local-buffer bounds for a post (checked by the QP before issuing).
  void OnLocalBounds(uint32_t qp_num, rdma::Opcode op, size_t off, size_t len, size_t mr_size,
                     bool in_bounds);
  // One-sided remote access resolution: validates `rkey` against the live
  // registration table (known, not deregistered, on `peer_node`, in bounds,
  // access flags allow `op`).
  void OnRemoteAccess(uint32_t qp_num, rdma::Opcode op, uint32_t rkey, size_t off, size_t len,
                      const void* peer_node);

  // ---- CQ hooks (CompletionQueue) ------------------------------------------

  void OnCqPush(const void* cq, const rdma::WorkCompletion& wc, size_t depth_after);

  // ---- Race hooks (memory / channel / fault injector) ----------------------

  void OnCpuStore(uint32_t rkey, size_t off, size_t len);
  void OnPublish(uint32_t rkey, size_t off, size_t len);
  void OnRemoteWrite(uint32_t rkey, size_t off, size_t len);
  // A remote READ snapshots the region; returns the snapshot tick the reader
  // threads through to OnAccept once it decides to trust the bytes.
  uint64_t OnReadSnapshot(uint32_t rkey, size_t off, size_t len);
  // The reader accepted bytes [off,off+len) of `rkey` as a coherent message.
  // `snapshot_tick` is the tick of the READ that fetched them (0 = now).
  // `what` labels the protocol step for the violation detail.
  void OnAccept(ViolationKind kind, uint32_t rkey, size_t off, size_t len,
                uint64_t snapshot_tick, const char* what);

  // ---- Replication epoch hooks (src/repl) ----------------------------------

  // A node in replication group `group` (the coordinator's group key) started
  // serving at `epoch`. Epochs must be monotone per group: a promotion always
  // moves the group forward, so observing a smaller epoch than previously
  // recorded means two nodes believe they lead concurrently (split brain) or
  // a demotion was skipped. Wrap-around (wire epochs are 7 bits) is out of
  // scope — simulated runs promote a handful of times, never 2^7.
  void OnEpochAdvance(const void* group, uint32_t epoch);

  // ---- Pooled connection-id lifecycle (src/conn) ----------------------------

  // `server` (a conn::PooledServer) assigned or released pooled connection
  // id `cid`. Cids are the demux key that lets N QPs serve M >> N logical
  // clients, so their lifecycle is an aliasing invariant: assigning a cid
  // that is already live, or releasing one that is not, would route two
  // logical clients' replies through one connection entry
  // (docs/connections.md).
  void OnCidAssign(const void* server, uint32_t cid);
  void OnCidRelease(const void* server, uint32_t cid);

  // ---- RFP protocol pairing (Channel) --------------------------------------

  // Declares the channel's call window (outstanding-call capacity). Channels
  // call this once at construction when pipelining is enabled; an undeclared
  // channel defaults to window 1 (the classic one-call-at-a-time pairing).
  void OnChannelWindow(const void* channel, int window);
  void OnClientSend(const void* channel);
  void OnClientRecvStart(const void* channel);
  void OnClientRecvDone(const void* channel);

  // ---- Introspection (tests) -----------------------------------------------

  uint64_t violations(ViolationKind kind) const {
    return counts_[static_cast<size_t>(kind)];
  }
  uint64_t total_violations() const { return total_; }
  const std::deque<Violation>& recent() const { return recent_; }

 private:
  struct QpInfo {
    rdma::QpType type = rdma::QpType::kRc;
    bool in_error = false;
    bool error_observed = false;  // a post already discovered the error state
    bool retired = false;
    int in_flight = 0;
    uint64_t next_wr_seq = 0;      // assigned at async post
    uint64_t last_success_seq = 0;  // newest successfully completed post
    bool any_success = false;
  };

  uint64_t NextTick() { return ++tick_; }
  RaceTracker* TrackerFor(uint32_t rkey);
  void Report(ViolationKind kind, std::string detail);

  sim::Engine* engine_;
  Mode mode_;
  Limits limits_;
  uint64_t tick_ = 0;

  std::unordered_map<uint32_t, QpInfo> qps_;
  struct MrInfo {
    const void* node = nullptr;
    size_t size = 0;
    uint32_t access = 0;
    bool live = true;
  };
  std::unordered_map<uint32_t, MrInfo> mrs_;
  std::unordered_map<uint32_t, RaceTracker> trackers_;
  // Async wr_id -> post sequence, for completion-order validation.
  std::unordered_map<uint32_t, std::unordered_map<uint64_t, uint64_t>> wr_seq_;
  // Per-channel send/recv pairing: outstanding calls must never exceed the
  // channel's declared window (1 unless OnChannelWindow raised it).
  struct CallPairing {
    int outstanding = 0;
    int window = 1;
  };
  std::unordered_map<const void*, CallPairing> call_outstanding_;

  // Highest epoch each replication group has served at (OnEpochAdvance).
  std::unordered_map<const void*, uint32_t> repl_epochs_;

  // Live pooled connection ids per conn::PooledServer (OnCidAssign/Release).
  std::unordered_map<const void*, std::unordered_set<uint32_t>> live_cids_;

  uint64_t counts_[static_cast<size_t>(ViolationKind::kNumKinds)] = {};
  obs::Counter* counters_[static_cast<size_t>(ViolationKind::kNumKinds)] = {};
  uint64_t total_ = 0;
  std::deque<Violation> recent_;
};

}  // namespace check

#endif  // SRC_CHECK_CHECKER_H_
