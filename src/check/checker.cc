#include "src/check/checker.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/engine.h"
#include "src/sim/schedule.h"

namespace check {

namespace {

Mode g_mode = Mode::kOff;
bool g_mode_initialized = false;
Limits g_limits;

constexpr size_t kRecentCap = 64;

// Local name helpers: the canonical OpcodeName/QpTypeName live in rfp_rdma,
// which links *against* this library — calling them here would be a cycle.
const char* OpName(rdma::Opcode op) {
  switch (op) {
    case rdma::Opcode::kRead:
      return "READ";
    case rdma::Opcode::kWrite:
      return "WRITE";
    case rdma::Opcode::kSend:
      return "SEND";
    case rdma::Opcode::kRecv:
      return "RECV";
  }
  return "?";
}

const char* TypeName(rdma::QpType type) {
  switch (type) {
    case rdma::QpType::kRc:
      return "RC";
    case rdma::QpType::kUc:
      return "UC";
    case rdma::QpType::kUd:
      return "UD";
  }
  return "?";
}

}  // namespace

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kReport:
      return "report";
    case Mode::kStrict:
      return "strict";
  }
  return "?";
}

Mode ModeFromEnv() {
  const char* env = std::getenv("RFP_CHECK");
  if (env == nullptr) {
    return Mode::kOff;
  }
  if (std::strcmp(env, "strict") == 0 || std::strcmp(env, "1") == 0) {
    return Mode::kStrict;
  }
  if (std::strcmp(env, "report") == 0) {
    return Mode::kReport;
  }
  return Mode::kOff;
}

Mode CurrentMode() {
  if (!g_mode_initialized) {
    g_mode = ModeFromEnv();
    g_mode_initialized = true;
  }
  return g_mode;
}

void SetMode(Mode mode) {
  g_mode_initialized = true;
  g_mode = mode;
}

ScopedMode::ScopedMode(Mode mode) : saved_(CurrentMode()) { SetMode(mode); }
ScopedMode::~ScopedMode() { SetMode(saved_); }

ScopedReportOnly::ScopedReportOnly() : saved_(CurrentMode()) {
  if (saved_ == Mode::kStrict) {
    SetMode(Mode::kReport);
  }
}
ScopedReportOnly::~ScopedReportOnly() { SetMode(saved_); }

Limits CurrentLimits() { return g_limits; }
void SetLimits(const Limits& limits) { g_limits = limits; }

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kQpPostAfterError:
      return "qp.post_after_error";
    case ViolationKind::kQpPostOnRetired:
      return "qp.post_on_retired";
    case ViolationKind::kQpUnsupportedOp:
      return "qp.unsupported_op";
    case ViolationKind::kQpWrCapExceeded:
      return "qp.wr_cap_exceeded";
    case ViolationKind::kCqOverflow:
      return "cq.overflow";
    case ViolationKind::kCqCompletionOrder:
      return "cq.completion_order";
    case ViolationKind::kMrBadRkey:
      return "mr.bad_rkey";
    case ViolationKind::kMrDeregistered:
      return "mr.use_after_deregister";
    case ViolationKind::kMrWrongNode:
      return "mr.wrong_node";
    case ViolationKind::kMrOutOfBounds:
      return "mr.out_of_bounds";
    case ViolationKind::kMrAccessRights:
      return "mr.access_rights";
    case ViolationKind::kMrLocalOutOfBounds:
      return "mr.local_out_of_bounds";
    case ViolationKind::kRaceFetchStore:
      return "race.fetch_store";
    case ViolationKind::kRaceRecvStore:
      return "race.recv_store";
    case ViolationKind::kRfpOverlappingCall:
      return "rfp.overlapping_call";
    case ViolationKind::kRfpRecvWithoutSend:
      return "rfp.recv_without_send";
    case ViolationKind::kReplEpochRegression:
      return "repl.epoch_regression";
    case ViolationKind::kConnCidAssign:
      return "conn.cid_assign";
    case ViolationKind::kConnCidRelease:
      return "conn.cid_release";
    case ViolationKind::kNumKinds:
      break;
  }
  return "?";
}

// ---- RaceTracker --------------------------------------------------------------

void RaceTracker::Store(size_t off, size_t len, uint64_t tick) {
  Append(EventKind::kStore, off, len, tick);
}

void RaceTracker::Publish(size_t off, size_t len, uint64_t tick) {
  Append(EventKind::kPublish, off, len, tick);
}

void RaceTracker::RemoteWrite(size_t off, size_t len, uint64_t tick) {
  Append(EventKind::kRemoteWrite, off, len, tick);
}

void RaceTracker::Append(EventKind kind, size_t off, size_t len, uint64_t tick) {
  if (len == 0) {
    return;
  }
  events_.push_back(Event{tick, kind, off, len});
  if (events_.size() > history_cap_) {
    Compact();
  }
}

void RaceTracker::Compact() {
  // Fold the oldest half of the event log into the baseline interval map,
  // replaying in order so later events override earlier ones.
  size_t fold = events_.size() / 2;
  for (size_t i = 0; i < fold; ++i) {
    const Event& e = events_.front();
    size_t begin = e.off;
    size_t end = e.off + e.len;
    bool dirty = e.kind == EventKind::kStore;

    // Remove the covered span from existing intervals, splitting at the edges.
    std::deque<BaseInterval> next;
    for (const BaseInterval& iv : baseline_) {
      if (iv.end <= begin || iv.off >= end) {
        next.push_back(iv);
        continue;
      }
      if (iv.off < begin) {
        next.push_back(BaseInterval{iv.off, begin, iv.dirty, iv.tick});
      }
      if (iv.end > end) {
        next.push_back(BaseInterval{end, iv.end, iv.dirty, iv.tick});
      }
    }
    next.push_back(BaseInterval{begin, end, dirty, e.tick});
    std::sort(next.begin(), next.end(),
              [](const BaseInterval& a, const BaseInterval& b) { return a.off < b.off; });
    baseline_ = std::move(next);
    baseline_tick_ = e.tick;
    events_.pop_front();
  }
}

std::optional<RaceTracker::Dirty> RaceTracker::FirstDirty(size_t off, size_t len,
                                                          uint64_t as_of) const {
  if (len == 0) {
    return std::nullopt;
  }
  // Undecided byte ranges of the query, shrinking as newer events claim them.
  std::vector<std::pair<size_t, size_t>> undecided = {{off, off + len}};

  // Walk newest -> oldest; the newest event at or before `as_of` touching a
  // byte decides that byte.
  for (auto it = events_.rbegin(); it != events_.rend() && !undecided.empty(); ++it) {
    const Event& e = *it;
    if (e.tick > as_of) {
      continue;
    }
    size_t ebegin = e.off;
    size_t eend = e.off + e.len;
    std::vector<std::pair<size_t, size_t>> next;
    next.reserve(undecided.size() + 1);
    for (const auto& [ubegin, uend] : undecided) {
      size_t obegin = std::max(ubegin, ebegin);
      size_t oend = std::min(uend, eend);
      if (obegin >= oend) {
        next.emplace_back(ubegin, uend);
        continue;
      }
      if (e.kind == EventKind::kStore) {
        return Dirty{obegin, oend - obegin, e.tick};
      }
      // Published or remote-written: clean; drop the overlap.
      if (ubegin < obegin) {
        next.emplace_back(ubegin, obegin);
      }
      if (oend < uend) {
        next.emplace_back(oend, uend);
      }
    }
    undecided = std::move(next);
  }

  // Whatever remains is decided by the baseline — unless the query predates
  // the fold horizon, where we answer conservatively clean.
  if (as_of < baseline_tick_) {
    return std::nullopt;
  }
  for (const auto& [ubegin, uend] : undecided) {
    for (const BaseInterval& iv : baseline_) {
      if (iv.end <= ubegin || iv.off >= uend) {
        continue;
      }
      if (iv.dirty) {
        size_t obegin = std::max(ubegin, iv.off);
        size_t oend = std::min(uend, iv.end);
        return Dirty{obegin, oend - obegin, iv.tick};
      }
    }
  }
  return std::nullopt;
}

// ---- FabricChecker ------------------------------------------------------------

FabricChecker::FabricChecker(sim::Engine* engine, Mode mode)
    : engine_(engine), mode_(mode), limits_(CurrentLimits()) {}

RaceTracker* FabricChecker::TrackerFor(uint32_t rkey) {
  auto it = trackers_.find(rkey);
  if (it == trackers_.end()) {
    it = trackers_.emplace(rkey, RaceTracker(limits_.race_history)).first;
  }
  return &it->second;
}

void FabricChecker::Report(ViolationKind kind, std::string detail) {
  counts_[static_cast<size_t>(kind)]++;
  total_++;
  size_t idx = static_cast<size_t>(kind);
  if (counters_[idx] == nullptr) {
    counters_[idx] = obs::MetricsRegistry::Default().GetCounter(
        "check.violation", {{"kind", ViolationKindName(kind)}});
  }
  counters_[idx]->Add(1);
  if (engine_ != nullptr && engine_->trace_sink() != nullptr) {
    engine_->trace_sink()->Instant("check", ViolationKindName(kind), 0, engine_->now());
  }
  // Under a schedule policy the violation is a property of the explored
  // interleaving, not just the scenario — attach the decision trace so the
  // exact schedule is a replayable artifact (and shows up in the strict-mode
  // exception message).
  std::string schedule_trace;
  if (engine_ != nullptr && engine_->schedule_policy() != nullptr) {
    schedule_trace = sim::FormatDecisionTrace(engine_->schedule_policy()->choices());
  }
  if (!schedule_trace.empty()) {
    detail += " [schedule=" + schedule_trace + "]";
  }
  recent_.push_back(Violation{kind, detail, tick_, std::move(schedule_trace)});
  if (recent_.size() > kRecentCap) {
    recent_.pop_front();
  }
  // The live mode governs, so ScopedReportOnly can downgrade a strict run
  // around deliberately-illegal test traffic.
  Mode live = CurrentMode() == Mode::kOff ? mode_ : CurrentMode();
  if (live == Mode::kStrict) {
    throw ViolationError(kind,
                         std::string(ViolationKindName(kind)) + ": " + recent_.back().detail);
  }
}

void FabricChecker::OnQpCreated(uint32_t qp_num, rdma::QpType type) {
  QpInfo& info = qps_[qp_num];
  info = QpInfo{};
  info.type = type;
}

void FabricChecker::OnQpRetired(uint32_t qp_num) { qps_[qp_num].retired = true; }

void FabricChecker::OnQpError(uint32_t qp_num) {
  QpInfo& info = qps_[qp_num];
  info.in_error = true;
  info.error_observed = false;
}

void FabricChecker::OnQpRecovered(uint32_t qp_num) {
  QpInfo& info = qps_[qp_num];
  info.in_error = false;
  info.error_observed = false;
}

void FabricChecker::OnPost(uint32_t qp_num, rdma::Opcode op, bool in_error, bool supported,
                           bool retired, bool batch_follower) {
  NextTick();
  QpInfo& info = qps_[qp_num];
  if (retired || info.retired) {
    std::ostringstream os;
    os << "post of " << OpName(op) << " on retired qp " << qp_num
       << " (stale endpoint kept across a reconnect?)";
    Report(ViolationKind::kQpPostOnRetired, os.str());
    return;
  }
  if (!supported) {
    std::ostringstream os;
    os << OpName(op) << " posted on " << TypeName(info.type) << " qp " << qp_num
       << " which does not support it";
    Report(ViolationKind::kQpUnsupportedOp, os.str());
    return;
  }
  if (in_error || info.in_error) {
    // First post discovers the error (legal: the poster learns via the
    // kQpError completion). A second post without reconnect/recover means
    // the caller ignored the completion status — unless it rides the same
    // doorbell as the discovering leader: a batch chain is posted whole
    // before any completion is visible, and the NIC flushes it as a unit.
    if (info.error_observed && !batch_follower) {
      std::ostringstream os;
      os << "post of " << OpName(op) << " on errored qp " << qp_num
         << " after the error was already reported; reconnect or Recover() first";
      Report(ViolationKind::kQpPostAfterError, os.str());
    }
    info.in_error = true;
    info.error_observed = true;
    return;
  }
  info.in_flight++;
  if (info.in_flight > limits_.max_outstanding_wr) {
    std::ostringstream os;
    os << "qp " << qp_num << " has " << info.in_flight
       << " in-flight work requests (cap " << limits_.max_outstanding_wr << ")";
    Report(ViolationKind::kQpWrCapExceeded, os.str());
  }
}

void FabricChecker::OnAsyncPost(uint32_t qp_num, uint64_t wr_id) {
  QpInfo& info = qps_[qp_num];
  wr_seq_[qp_num][wr_id] = info.next_wr_seq++;
}

void FabricChecker::OnOpEnd(uint32_t qp_num) {
  QpInfo& info = qps_[qp_num];
  if (info.in_flight > 0) {
    info.in_flight--;
  }
}

void FabricChecker::OnLocalBounds(uint32_t qp_num, rdma::Opcode op, size_t off, size_t len,
                                  size_t mr_size, bool in_bounds) {
  if (in_bounds) {
    return;
  }
  NextTick();
  std::ostringstream os;
  os << OpName(op) << " on qp " << qp_num << ": local [" << off << ", " << off + len
     << ") outside region of " << mr_size << " bytes";
  Report(ViolationKind::kMrLocalOutOfBounds, os.str());
}

void FabricChecker::OnRemoteAccess(uint32_t qp_num, rdma::Opcode op, uint32_t rkey, size_t off,
                                   size_t len, const void* peer_node) {
  NextTick();
  auto it = mrs_.find(rkey);
  if (it == mrs_.end()) {
    std::ostringstream os;
    os << OpName(op) << " on qp " << qp_num << ": rkey " << rkey
       << " was never registered";
    Report(ViolationKind::kMrBadRkey, os.str());
    return;
  }
  const MrInfo& mr = it->second;
  if (!mr.live) {
    std::ostringstream os;
    os << OpName(op) << " on qp " << qp_num << ": rkey " << rkey
       << " was deregistered; one-sided access after teardown";
    Report(ViolationKind::kMrDeregistered, os.str());
    return;
  }
  if (peer_node != nullptr && mr.node != peer_node) {
    std::ostringstream os;
    os << OpName(op) << " on qp " << qp_num << ": rkey " << rkey
       << " belongs to a different node than the QP's peer";
    Report(ViolationKind::kMrWrongNode, os.str());
    return;
  }
  if (off + len > mr.size) {
    std::ostringstream os;
    os << OpName(op) << " on qp " << qp_num << ": remote [" << off << ", " << off + len
       << ") outside region of " << mr.size << " bytes (rkey " << rkey << ")";
    Report(ViolationKind::kMrOutOfBounds, os.str());
    return;
  }
  uint32_t needed = op == rdma::Opcode::kRead ? rdma::kAccessRemoteRead : rdma::kAccessRemoteWrite;
  if ((mr.access & needed) == 0) {
    std::ostringstream os;
    os << OpName(op) << " on qp " << qp_num << ": rkey " << rkey
       << " does not grant " << (op == rdma::Opcode::kRead ? "remote read" : "remote write");
    Report(ViolationKind::kMrAccessRights, os.str());
  }
}

void FabricChecker::OnMrRegistered(uint32_t rkey, const void* node, size_t size,
                                   uint32_t access) {
  mrs_[rkey] = MrInfo{node, size, access, true};
}

void FabricChecker::OnMrDeregistered(uint32_t rkey) {
  auto it = mrs_.find(rkey);
  if (it != mrs_.end()) {
    it->second.live = false;
  }
}

void FabricChecker::OnCqPush(const void* cq, const rdma::WorkCompletion& wc, size_t depth_after) {
  NextTick();
  if (depth_after > limits_.cq_capacity) {
    std::ostringstream os;
    os << "cq holds " << depth_after << " completions (cap " << limits_.cq_capacity
       << "); consumer is not draining";
    Report(ViolationKind::kCqOverflow, os.str());
  }
  (void)cq;
  // Successful async completions on one QP must arrive in post order; error
  // completions may jump the queue (flush semantics), so only successes are
  // checked — their post sequence must be monotonically increasing.
  if (wc.opcode == rdma::Opcode::kRecv) {
    return;
  }
  auto qit = wr_seq_.find(wc.qp_num);
  if (qit == wr_seq_.end()) {
    return;
  }
  auto wit = qit->second.find(wc.wr_id);
  if (wit == qit->second.end()) {
    return;
  }
  uint64_t seq = wit->second;
  qit->second.erase(wit);
  if (wc.status != rdma::WcStatus::kSuccess) {
    return;
  }
  QpInfo& info = qps_[wc.qp_num];
  if (info.any_success && seq <= info.last_success_seq) {
    std::ostringstream os;
    os << "qp " << wc.qp_num << ": completion for post #" << seq << " (wr_id " << wc.wr_id
       << ") arrived after post #" << info.last_success_seq
       << " already completed; RC completions overtook post order";
    Report(ViolationKind::kCqCompletionOrder, os.str());
    return;
  }
  info.any_success = true;
  info.last_success_seq = seq;
}

void FabricChecker::OnCpuStore(uint32_t rkey, size_t off, size_t len) {
  TrackerFor(rkey)->Store(off, len, NextTick());
}

void FabricChecker::OnPublish(uint32_t rkey, size_t off, size_t len) {
  TrackerFor(rkey)->Publish(off, len, NextTick());
}

void FabricChecker::OnRemoteWrite(uint32_t rkey, size_t off, size_t len) {
  TrackerFor(rkey)->RemoteWrite(off, len, NextTick());
}

uint64_t FabricChecker::OnReadSnapshot(uint32_t rkey, size_t off, size_t len) {
  (void)rkey;
  (void)off;
  (void)len;
  return NextTick();
}

void FabricChecker::OnAccept(ViolationKind kind, uint32_t rkey, size_t off, size_t len,
                             uint64_t snapshot_tick, const char* what) {
  uint64_t as_of = snapshot_tick == 0 ? tick_ : snapshot_tick;
  auto dirty = TrackerFor(rkey)->FirstDirty(off, len, as_of);
  if (!dirty.has_value()) {
    return;
  }
  std::ostringstream os;
  os << what << " accepted bytes [" << off << ", " << off + len << ") of rkey " << rkey
     << " but [" << dirty->off << ", " << dirty->off + dirty->len
     << ") was CPU-stored at tick " << dirty->store_tick
     << " with no publication point before the snapshot (tick " << as_of << ")";
  Report(kind, os.str());
}

void FabricChecker::OnEpochAdvance(const void* group, uint32_t epoch) {
  NextTick();
  auto [it, inserted] = repl_epochs_.try_emplace(group, epoch);
  if (inserted) {
    return;
  }
  if (epoch < it->second) {
    std::ostringstream os;
    os << "replication group served at epoch " << epoch << " after epoch " << it->second
       << " — two leaders concurrently (split brain) or a skipped demotion";
    Report(ViolationKind::kReplEpochRegression, os.str());
    return;
  }
  it->second = epoch;
}

void FabricChecker::OnCidAssign(const void* server, uint32_t cid) {
  NextTick();
  auto [it, inserted] = live_cids_[server].insert(cid);
  (void)it;
  if (!inserted) {
    std::ostringstream os;
    os << "pooled connection id " << cid
       << " assigned while still live — two logical clients would alias one "
          "connection entry";
    Report(ViolationKind::kConnCidAssign, os.str());
  }
}

void FabricChecker::OnCidRelease(const void* server, uint32_t cid) {
  NextTick();
  if (live_cids_[server].erase(cid) == 0) {
    std::ostringstream os;
    os << "pooled connection id " << cid << " released while not live";
    Report(ViolationKind::kConnCidRelease, os.str());
  }
}

void FabricChecker::OnChannelWindow(const void* channel, int window) {
  call_outstanding_[channel].window = window < 1 ? 1 : window;
}

void FabricChecker::OnClientSend(const void* channel) {
  NextTick();
  CallPairing& pairing = call_outstanding_[channel];
  if (pairing.outstanding >= pairing.window) {
    Report(ViolationKind::kRfpOverlappingCall,
           pairing.window == 1
               ? "ClientSend while the previous call's ClientRecv is still outstanding"
               : "ClientSend/SubmitCall beyond the channel's declared call window");
    return;
  }
  ++pairing.outstanding;
}

void FabricChecker::OnClientRecvStart(const void* channel) {
  NextTick();
  const CallPairing& pairing = call_outstanding_[channel];
  if (pairing.outstanding == 0) {
    Report(ViolationKind::kRfpRecvWithoutSend,
           "ClientRecv with no ClientSend outstanding on this channel");
  }
}

void FabricChecker::OnClientRecvDone(const void* channel) {
  CallPairing& pairing = call_outstanding_[channel];
  if (pairing.outstanding > 0) {
    --pairing.outstanding;
  }
}

}  // namespace check
