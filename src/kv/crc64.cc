#include "src/kv/crc64.h"

#include <array>

namespace kv {

namespace {

// ECMA-182 polynomial, reflected form.
constexpr uint64_t kPoly = 0xC96C5795D7870F42ULL;

std::array<uint64_t, 256> BuildTable() {
  std::array<uint64_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint64_t, 256>& Table() {
  static const std::array<uint64_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint64_t Crc64(std::span<const std::byte> bytes, uint64_t seed) {
  const auto& table = Table();
  uint64_t crc = ~seed;
  for (std::byte b : bytes) {
    crc = table[(crc ^ static_cast<uint64_t>(b)) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace kv
