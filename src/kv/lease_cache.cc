#include "src/kv/lease_cache.h"

#include <cstring>

#include "src/rdma/memory.h"

namespace kv {

namespace {

std::string KeyString(std::span<const std::byte> key) {
  return std::string(reinterpret_cast<const char*>(key.data()), key.size());
}

}  // namespace

LeaseCachedClient::LeaseCachedClient(sim::Engine& engine, PilafClient* base,
                                     LeaseCacheConfig config)
    : engine_(engine), base_(base), config_(config) {}

void LeaseCachedClient::Install(std::string key, std::span<const std::byte> value) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->value.assign(value.begin(), value.end());
    it->second->fetched_at = engine_.now();
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (entries_.size() >= config_.capacity) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, std::vector<std::byte>(value.begin(), value.end()), engine_.now()});
  entries_[std::move(key)] = lru_.begin();
}

sim::Task<std::optional<size_t>> LeaseCachedClient::Get(std::span<const std::byte> key,
                                                        std::span<std::byte> value_out) {
  ++stats_.gets;
  const std::string key_str = KeyString(key);
  auto it = entries_.find(key_str);
  if (it != entries_.end()) {
    if (Fresh(*it->second)) {
      // Lease still valid: serve locally, no network traffic at all.
      ++stats_.cache_hits;
      const std::vector<std::byte>& value = it->second->value;
      if (value.size() > value_out.size()) {
        throw std::length_error("lease cache: value larger than output buffer");
      }
      rdma::CopyBytes(value_out.subspan(0, value.size()), std::span<const std::byte>(value));
      lru_.splice(lru_.begin(), lru_, it->second);
      co_return value.size();
    }
    // Present but past its lease: drop and refetch.
    ++stats_.lease_expired;
    lru_.erase(it->second);
    entries_.erase(it);
  } else {
    ++stats_.cache_misses;
  }

  const std::optional<size_t> fetched = co_await base_->Get(key, value_out);
  if (fetched.has_value()) {
    Install(key_str, std::span<const std::byte>(value_out.data(), *fetched));
  }
  co_return fetched;
}

sim::Task<bool> LeaseCachedClient::Put(std::span<const std::byte> key,
                                       std::span<const std::byte> value) {
  ++stats_.puts;
  const bool ok = co_await base_->Put(key, value);
  if (ok) {
    // Read-your-writes for this client; other clients stay bounded-stale.
    Install(KeyString(key), value);
  }
  co_return ok;
}

}  // namespace kv
