#include "src/kv/jakiro.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/explore/history.h"
#include "src/kv/common.h"
#include "src/obs/metrics.h"
#include "src/rdma/memory.h"

namespace kv {

void ConfigBuilder::ForceParadigm(rfp::RfpOptions::ForceMode mode, const char* preset) {
  if (paradigm_forced_ && config_.channel_options.force_mode != mode) {
    throw std::invalid_argument(std::string("jakiro config: ") + preset +
                                " conflicts with the previously forced paradigm — a channel "
                                "cannot force both server-reply and remote-fetch");
  }
  paradigm_forced_ = true;
  config_.channel_options.force_mode = mode;
}

ConfigBuilder& ConfigBuilder::ServerReply() {
  ForceParadigm(rfp::RfpOptions::ForceMode::kForceReply, "ServerReply()");
  return *this;
}

ConfigBuilder& ConfigBuilder::NoSwitch() {
  ForceParadigm(rfp::RfpOptions::ForceMode::kForceFetch, "NoSwitch()");
  return *this;
}

ConfigBuilder& ConfigBuilder::FaultTolerant() {
  rfp::RfpOptions& ch = config_.channel_options;
  ch.fetch_timeout_ns = sim::Micros(200);
  ch.fetch_backoff_initial_ns = sim::Micros(2);
  ch.checksum_responses = true;
  return *this;
}

ConfigBuilder& ConfigBuilder::OverloadProtected() {
  rfp::RfpOptions& ch = config_.channel_options;
  ch.call_deadline_ns = sim::Millis(2);
  ch.breaker_enabled = true;
  config_.server_options.admission_control = true;
  return *this;
}

ConfigBuilder& ConfigBuilder::Pipelined(int window) {
  config_.channel_options.window = window;
  return *this;
}

ConfigBuilder& ConfigBuilder::ZeroCopy() {
  config_.zero_copy_get = true;
  return *this;
}

// Deprecated wrapper definitions (declarations carry the attribute; defining
// them is not a "use", so this file stays warning-clean under -Werror).

JakiroConfig ServerReplyConfig(JakiroConfig base) {
  return JakiroConfig::Build(std::move(base)).ServerReply();
}

JakiroConfig NoSwitchConfig(JakiroConfig base) {
  return JakiroConfig::Build(std::move(base)).NoSwitch();
}

JakiroConfig FaultTolerantConfig(JakiroConfig base) {
  return JakiroConfig::Build(std::move(base)).FaultTolerant();
}

JakiroConfig OverloadProtectedConfig(JakiroConfig base) {
  return JakiroConfig::Build(std::move(base)).OverloadProtected();
}

JakiroConfig PipelinedConfig(JakiroConfig base, int window) {
  return JakiroConfig::Build(std::move(base)).Pipelined(window);
}

JakiroConfig ZeroCopyConfig(JakiroConfig base) {
  return JakiroConfig::Build(std::move(base)).ZeroCopy();
}

JakiroServer::JakiroServer(rdma::Fabric& fabric, rdma::Node& node, JakiroConfig config)
    : config_(config), rpc_(fabric, node, config.server_threads, config.server_options) {
  for (int t = 0; t < config_.server_threads; ++t) {
    partitions_.push_back(config_.zero_copy_get
                              ? std::make_unique<BucketTable>(config_.buckets_per_partition, node)
                              : std::make_unique<BucketTable>(config_.buckets_per_partition));
  }
  RegisterHandlers();
}

JakiroServer::~JakiroServer() {
  BucketTable::Stats total;
  for (const auto& partition : partitions_) {
    total.hits += partition->stats().hits;
    total.misses += partition->stats().misses;
    total.inserts += partition->stats().inserts;
    total.updates += partition->stats().updates;
    total.evictions += partition->stats().evictions;
    total.erases += partition->stats().erases;
    total.cow_puts += partition->stats().cow_puts;
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"store", "jakiro"}, {"node", rpc_.node().name()}};
  reg.GetCounter("kv.store.hits", labels)->Add(total.hits);
  reg.GetCounter("kv.store.misses", labels)->Add(total.misses);
  reg.GetCounter("kv.store.inserts", labels)->Add(total.inserts);
  reg.GetCounter("kv.store.updates", labels)->Add(total.updates);
  reg.GetCounter("kv.store.evictions", labels)->Add(total.evictions);
  reg.GetCounter("kv.store.erases", labels)->Add(total.erases);
  reg.GetCounter("kv.store.cow_puts", labels)->Add(total.cow_puts);
}

int JakiroServer::OwnerThread(std::span<const std::byte> key) const {
  // Mix the hash before reducing: the low bits also pick the bucket inside
  // the partition, and reusing them directly would alias.
  return static_cast<int>(sim::Mix64(HashBytes(key)) % static_cast<uint64_t>(num_threads()));
}

void JakiroServer::RegisterHandlers() {
  rpc_.RegisterHandler(kRpcGet, [this](const rfp::HandlerContext& ctx,
                                       std::span<const std::byte> req,
                                       std::span<std::byte> resp) -> rfp::HandlerResult {
    const auto get = DecodeGet(req);
    if (!get.has_value()) {
      return {EncodeStatus(resp, Status::kError), config_.get_process_ns};
    }
    BucketTable& table = partition(ctx.thread_index);
    if (config_.zero_copy_get) {
      // Zero-copy: the prefix is just the 1-byte status; the value travels
      // as an indirect descriptor into the pinned, store-owned entry. The
      // assembled client bytes ([status][value]) match EncodeGetResponse
      // exactly, so the decode path below needs no mode awareness.
      auto pinned = table.GetPinned(get->key);
      if (!pinned.has_value()) {
        return {EncodeStatus(resp, Status::kNotFound), config_.get_process_ns};
      }
      rfp::ZeroCopyRef ref;
      ref.rkey = pinned->rkey;
      ref.offset = pinned->offset;
      ref.len = pinned->len;
      ref.epoch = pinned->epoch;
      ref.pin = std::move(pinned->pin);
      return {EncodeStatus(resp, Status::kOk), config_.get_process_ns, std::move(ref)};
    }
    const auto value = table.Get(get->key);
    if (!value.has_value()) {
      return {EncodeStatus(resp, Status::kNotFound), config_.get_process_ns};
    }
    return {EncodeGetResponse(resp, Status::kOk, *value), config_.get_process_ns};
  });

  // PUT and DELETE are coroutine handlers so the replication hook can
  // suspend them between the local apply and the reply (ship-then-ack:
  // in sync mode the backup holds the op before the client ever sees OK).
  rpc_.RegisterAsyncHandler(
      kRpcPut, [this](const rfp::HandlerContext& ctx, std::span<const std::byte> req,
                      std::span<std::byte> resp) -> sim::Task<rfp::HandlerResult> {
        const auto put = DecodePut(req);
        if (!put.has_value()) {
          co_return rfp::HandlerResult{EncodeStatus(resp, Status::kError),
                                       config_.put_process_ns};
        }
        partition(ctx.thread_index).Put(put->key, put->value);
        if (repl_hook_) {
          co_await repl_hook_(ctx.thread_index, kRpcPut, put->key, put->value);
        }
        co_return rfp::HandlerResult{EncodeStatus(resp, Status::kOk), config_.put_process_ns};
      });

  rpc_.RegisterHandler(kRpcMultiGet, [this](const rfp::HandlerContext& ctx,
                                            std::span<const std::byte> req,
                                            std::span<std::byte> resp) -> rfp::HandlerResult {
    uint16_t count = 0;
    if (req.size() < sizeof(count)) {
      return {EncodeStatus(resp, Status::kError), config_.get_process_ns};
    }
    std::memcpy(&count, req.data(), sizeof(count));
    BucketTable& table = partition(ctx.thread_index);
    size_t in = sizeof(count);
    size_t out = 1 + sizeof(count);
    resp[0] = static_cast<std::byte>(Status::kOk);
    std::memcpy(resp.data() + 1, &count, sizeof(count));
    for (uint16_t i = 0; i < count; ++i) {
      uint16_t key_size = 0;
      if (req.size() < in + sizeof(key_size)) {
        return {EncodeStatus(resp, Status::kError), config_.get_process_ns};
      }
      std::memcpy(&key_size, req.data() + in, sizeof(key_size));
      in += sizeof(key_size);
      if (req.size() < in + key_size) {
        return {EncodeStatus(resp, Status::kError), config_.get_process_ns};
      }
      const auto value = table.Get(req.subspan(in, key_size));
      in += key_size;
      const uint32_t size =
          value.has_value() ? static_cast<uint32_t>(value->size()) : kMultiGetMiss;
      std::memcpy(resp.data() + out, &size, sizeof(size));
      out += sizeof(size);
      if (value.has_value()) {
        rdma::CopyBytes(resp.subspan(out, value->size()), *value);
        out += value->size();
      }
    }
    // One hash-table lookup's worth of CPU per key.
    return {out, config_.get_process_ns * count};
  });

  rpc_.RegisterAsyncHandler(
      kRpcDelete, [this](const rfp::HandlerContext& ctx, std::span<const std::byte> req,
                         std::span<std::byte> resp) -> sim::Task<rfp::HandlerResult> {
        const auto del = DecodeGet(req);
        if (!del.has_value()) {
          co_return rfp::HandlerResult{EncodeStatus(resp, Status::kError),
                                       config_.put_process_ns};
        }
        const bool erased = partition(ctx.thread_index).Erase(del->key);
        // Only applied mutations replicate: a miss changed nothing, so the
        // backup has nothing to learn from it.
        if (erased && repl_hook_) {
          co_await repl_hook_(ctx.thread_index, kRpcDelete, del->key, {});
        }
        co_return rfp::HandlerResult{EncodeStatus(resp, erased ? Status::kOk : Status::kNotFound),
                                     config_.put_process_ns};
      });
}

JakiroClient::JakiroClient(JakiroServer& server, rdma::Node& client_node)
    : JakiroClient(server, client_node, conn::Connector::Direct()) {}

JakiroClient::JakiroClient(JakiroServer& server, rdma::Node& client_node,
                           conn::Connector& connector)
    : server_(server) {
  endpoints_ = connector.LeaseAll(server.rpc(), client_node, server.config().channel_options);
  scratch_.resize(server.config().channel_options.max_message_bytes);
}

sim::Task<std::optional<size_t>> JakiroClient::Get(std::span<const std::byte> key,
                                                   std::span<std::byte> value_out) {
  const int owner = server_.OwnerThread(key);
  const uint64_t hid =
      recorder_ == nullptr ? 0 : recorder_->OnInvoke(explore::OpKind::kGet, key);
  const size_t req = EncodeGet(scratch_, key);
  const size_t n = co_await endpoints_[static_cast<size_t>(owner)].stub()->Call(
      kRpcGet, std::span<const std::byte>(scratch_.data(), req), scratch_);
  ++operations_;
  if (n < 1 || DecodeStatus(std::span<const std::byte>(scratch_.data(), n)) != Status::kOk) {
    if (recorder_ != nullptr) {
      recorder_->OnGetResponse(hid, false, std::span<const std::byte>());
    }
    co_return std::nullopt;
  }
  const size_t value_size = n - 1;
  if (value_size > value_out.size()) {
    throw std::length_error("jakiro: value larger than output buffer");
  }
  rdma::CopyBytes(value_out.subspan(0, value_size),
                  std::span<const std::byte>(scratch_.data() + 1, value_size));
  if (recorder_ != nullptr) {
    recorder_->OnGetResponse(hid, true, std::span<const std::byte>(value_out.data(), value_size));
  }
  co_return value_size;
}

sim::Task<bool> JakiroClient::Put(std::span<const std::byte> key,
                                  std::span<const std::byte> value) {
  const int owner = server_.OwnerThread(key);
  const uint64_t hid =
      recorder_ == nullptr ? 0 : recorder_->OnInvoke(explore::OpKind::kPut, key, value);
  const size_t req = EncodePut(scratch_, key, value);
  const size_t n = co_await endpoints_[static_cast<size_t>(owner)].stub()->Call(
      kRpcPut, std::span<const std::byte>(scratch_.data(), req), scratch_);
  ++operations_;
  const bool ok = n >= 1 &&
      DecodeStatus(std::span<const std::byte>(scratch_.data(), n)) == Status::kOk;
  // A rejected PUT stays pending in the history: the store may or may not
  // have applied it, which is exactly the oracle's model for pending ops.
  if (recorder_ != nullptr && ok) {
    recorder_->OnPutResponse(hid);
  }
  co_return ok;
}

sim::Task<bool> JakiroClient::Delete(std::span<const std::byte> key) {
  const int owner = server_.OwnerThread(key);
  const uint64_t hid =
      recorder_ == nullptr ? 0 : recorder_->OnInvoke(explore::OpKind::kDelete, key);
  const size_t req = EncodeDelete(scratch_, key);
  const size_t n = co_await endpoints_[static_cast<size_t>(owner)].stub()->Call(
      kRpcDelete, std::span<const std::byte>(scratch_.data(), req), scratch_);
  ++operations_;
  const bool found = n >= 1 &&
      DecodeStatus(std::span<const std::byte>(scratch_.data(), n)) == Status::kOk;
  if (recorder_ != nullptr) {
    recorder_->OnDeleteResponse(hid, found);
  }
  co_return found;
}

sim::Task<void> JakiroClient::MultiGet(
    std::span<const std::span<const std::byte>> keys, std::span<std::byte> value_arena,
    std::span<std::optional<std::span<const std::byte>>> values_out) {
  if (values_out.size() < keys.size()) {
    throw std::invalid_argument("jakiro multiget: values_out smaller than keys");
  }
  // Group key indices by owning server thread (EREW routing).
  std::vector<std::vector<size_t>> by_owner(static_cast<size_t>(server_.num_threads()));
  for (size_t i = 0; i < keys.size(); ++i) {
    by_owner[static_cast<size_t>(server_.OwnerThread(keys[i]))].push_back(i);
  }
  if (server_.config().channel_options.window > 1) {
    co_await MultiGetPipelined(keys, by_owner, value_arena, values_out);
    co_return;
  }
  size_t arena_used = 0;
  for (size_t owner = 0; owner < by_owner.size(); ++owner) {
    const std::vector<size_t>& batch = by_owner[owner];
    if (batch.empty()) {
      continue;
    }
    // Encode the sub-batch request.
    const uint16_t count = static_cast<uint16_t>(batch.size());
    size_t n = 0;
    std::memcpy(scratch_.data(), &count, sizeof(count));
    n += sizeof(count);
    std::vector<uint64_t> hids;
    for (size_t idx : batch) {
      const uint16_t key_size = static_cast<uint16_t>(keys[idx].size());
      std::memcpy(scratch_.data() + n, &key_size, sizeof(key_size));
      n += sizeof(key_size);
      std::memcpy(scratch_.data() + n, keys[idx].data(), key_size);
      n += key_size;
      if (recorder_ != nullptr) {
        hids.push_back(recorder_->OnInvoke(explore::OpKind::kGet, keys[idx]));
      }
    }
    const size_t resp_size = co_await endpoints_[owner].stub()->Call(
        kRpcMultiGet, std::span<const std::byte>(scratch_.data(), n), scratch_);
    ++operations_;
    if (resp_size < 3 ||
        DecodeStatus(std::span<const std::byte>(scratch_.data(), resp_size)) != Status::kOk) {
      throw std::runtime_error("jakiro multiget: malformed response");
    }
    // Decode results back into caller order, copying values into the arena.
    size_t out = 1 + sizeof(uint16_t);
    for (size_t b = 0; b < batch.size(); ++b) {
      const size_t idx = batch[b];
      uint32_t size = 0;
      std::memcpy(&size, scratch_.data() + out, sizeof(size));
      out += sizeof(size);
      if (size == kMultiGetMiss) {
        values_out[idx] = std::nullopt;
        if (recorder_ != nullptr) {
          recorder_->OnGetResponse(hids[b], false, std::span<const std::byte>());
        }
        continue;
      }
      if (arena_used + size > value_arena.size()) {
        throw std::length_error("jakiro multiget: value arena exhausted");
      }
      rdma::CopyBytes(value_arena.subspan(arena_used, size),
                      std::span<const std::byte>(scratch_.data() + out, size));
      values_out[idx] = std::span<const std::byte>(value_arena.data() + arena_used, size);
      if (recorder_ != nullptr) {
        recorder_->OnGetResponse(hids[b], true, *values_out[idx]);
      }
      arena_used += size;
      out += size;
    }
  }
}

sim::Task<void> JakiroClient::MultiGetPipelined(
    std::span<const std::span<const std::byte>> keys,
    const std::vector<std::vector<size_t>>& by_owner, std::span<std::byte> value_arena,
    std::span<std::optional<std::span<const std::byte>>> values_out) {
  struct Pending {
    size_t stub = 0;
    rfp::Channel::CallHandle handle;
    std::vector<size_t> idxs;        // key indices in this chunk, caller order
    std::vector<uint64_t> hids;      // history op ids (when recording)
    std::vector<std::byte> resp;     // landing buffer: responses overlap, so
                                     // the shared scratch_ cannot hold them
  };
  const size_t window = static_cast<size_t>(server_.config().channel_options.window);
  std::vector<Pending> pending;
  for (size_t owner = 0; owner < by_owner.size(); ++owner) {
    const std::vector<size_t>& batch = by_owner[owner];
    if (batch.empty()) {
      continue;
    }
    // Split the owner's keys into up to `window` contiguous chunks and stage
    // one MultiGet call per chunk. The staged requests go out in a single
    // doorbell batch when the first await flushes the channel, and their
    // server-side lookups and response fetches overlap across slots.
    const size_t chunks = std::min(batch.size(), window);
    const size_t per_chunk = (batch.size() + chunks - 1) / chunks;
    for (size_t begin = 0; begin < batch.size(); begin += per_chunk) {
      const size_t end = std::min(begin + per_chunk, batch.size());
      Pending p;
      p.stub = owner;
      p.idxs.assign(batch.begin() + static_cast<ptrdiff_t>(begin),
                    batch.begin() + static_cast<ptrdiff_t>(end));
      const uint16_t count = static_cast<uint16_t>(p.idxs.size());
      size_t n = 0;
      std::memcpy(scratch_.data(), &count, sizeof(count));
      n += sizeof(count);
      for (size_t idx : p.idxs) {
        const uint16_t key_size = static_cast<uint16_t>(keys[idx].size());
        std::memcpy(scratch_.data() + n, &key_size, sizeof(key_size));
        n += sizeof(key_size);
        std::memcpy(scratch_.data() + n, keys[idx].data(), key_size);
        n += key_size;
        if (recorder_ != nullptr) {
          p.hids.push_back(recorder_->OnInvoke(explore::OpKind::kGet, keys[idx]));
        }
      }
      p.handle = co_await endpoints_[owner].stub()->SubmitCall(
          kRpcMultiGet, std::span<const std::byte>(scratch_.data(), n));
      p.resp.resize(server_.config().channel_options.max_message_bytes);
      pending.push_back(std::move(p));
    }
  }
  size_t arena_used = 0;
  for (Pending& p : pending) {
    const size_t resp_size = co_await endpoints_[p.stub].stub()->AwaitCall(p.handle, p.resp);
    ++operations_;
    if (resp_size < 3 ||
        DecodeStatus(std::span<const std::byte>(p.resp.data(), resp_size)) != Status::kOk) {
      throw std::runtime_error("jakiro multiget: malformed response");
    }
    // Decode this chunk's results back into caller order.
    size_t out = 1 + sizeof(uint16_t);
    for (size_t b = 0; b < p.idxs.size(); ++b) {
      const size_t idx = p.idxs[b];
      uint32_t size = 0;
      std::memcpy(&size, p.resp.data() + out, sizeof(size));
      out += sizeof(size);
      if (size == kMultiGetMiss) {
        values_out[idx] = std::nullopt;
        if (recorder_ != nullptr) {
          recorder_->OnGetResponse(p.hids[b], false, std::span<const std::byte>());
        }
        continue;
      }
      if (arena_used + size > value_arena.size()) {
        throw std::length_error("jakiro multiget: value arena exhausted");
      }
      rdma::CopyBytes(value_arena.subspan(arena_used, size),
                      std::span<const std::byte>(p.resp.data() + out, size));
      values_out[idx] = std::span<const std::byte>(value_arena.data() + arena_used, size);
      if (recorder_ != nullptr) {
        recorder_->OnGetResponse(p.hids[b], true, *values_out[idx]);
      }
      arena_used += size;
      out += size;
    }
  }
}

sim::Histogram JakiroClient::MergedLatency() const {
  sim::Histogram merged;
  for (const conn::ChannelLease& endpoint : endpoints_) {
    merged.Merge(endpoint.stub()->latency());
  }
  return merged;
}

rfp::Channel::Stats JakiroClient::MergedChannelStats() const {
  rfp::Channel::Stats merged;
  for (const conn::ChannelLease& endpoint : endpoints_) {
    const rfp::Channel::Stats& s = endpoint.channel()->stats();
    merged.calls += s.calls;
    merged.request_writes += s.request_writes;
    merged.fetch_reads += s.fetch_reads;
    merged.failed_fetches += s.failed_fetches;
    merged.extra_fetches += s.extra_fetches;
    merged.reply_pushes += s.reply_pushes;
    merged.switches_to_reply += s.switches_to_reply;
    merged.switches_to_fetch += s.switches_to_fetch;
    merged.reconnects += s.reconnects;
    merged.reissues += s.reissues;
    merged.corrupt_fetches += s.corrupt_fetches;
    merged.fetch_timeouts += s.fetch_timeouts;
    merged.doorbell_batches += s.doorbell_batches;
    merged.batched_ops += s.batched_ops;
    merged.zero_copy_sends += s.zero_copy_sends;
    merged.zero_copy_fetches += s.zero_copy_fetches;
    merged.zero_copy_bytes += s.zero_copy_bytes;
    merged.zero_copy_fallbacks += s.zero_copy_fallbacks;
    merged.redirects += s.redirects;
    merged.shed_redirect += s.shed_redirect;
    merged.retries_per_call.Merge(s.retries_per_call);
    merged.submit_window.Merge(s.submit_window);
    merged.batch_occupancy.Merge(s.batch_occupancy);
  }
  return merged;
}

sim::Time JakiroClient::TotalBusy() const {
  sim::Time total = 0;
  for (const conn::ChannelLease& endpoint : endpoints_) {
    total += endpoint.channel()->client_busy().busy();
  }
  return total;
}

}  // namespace kv
