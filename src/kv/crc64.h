// CRC64 (ECMA-182 polynomial), the checksum Pilaf uses to detect races
// between server-side writes and client-side one-sided READs (paper
// Sections 1 and 2.3).

#ifndef SRC_KV_CRC64_H_
#define SRC_KV_CRC64_H_

#include <cstdint>
#include <span>

namespace kv {

// CRC of `bytes`, continuing from `seed` (pass the previous result to chain
// discontiguous buffers; start with 0).
uint64_t Crc64(std::span<const std::byte> bytes, uint64_t seed = 0);

}  // namespace kv

#endif  // SRC_KV_CRC64_H_
