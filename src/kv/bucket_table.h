// Jakiro's in-memory key-value structure (paper Section 4.1):
// a fixed array of buckets, eight 8-byte slots per bucket (one cache line),
// strict per-bucket LRU eviction, and EREW partitioning — each server
// thread owns one BucketTable instance and nobody else touches it.

#ifndef SRC_KV_BUCKET_TABLE_H_
#define SRC_KV_BUCKET_TABLE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace kv {

class BucketTable {
 public:
  static constexpr int kSlotsPerBucket = 8;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t updates = 0;
    uint64_t evictions = 0;
    uint64_t erases = 0;
  };

  // `num_buckets` is rounded up to a power of two.
  explicit BucketTable(size_t num_buckets);

  BucketTable(const BucketTable&) = delete;
  BucketTable& operator=(const BucketTable&) = delete;
  BucketTable(BucketTable&&) = default;

  // Returns a view of the stored value (valid until the next mutation) and
  // refreshes the entry's LRU position.
  std::optional<std::span<const std::byte>> Get(std::span<const std::byte> key);

  // Inserts or overwrites. When the bucket is full, the least recently used
  // slot in that bucket is evicted (strict LRU, paper Section 4.1).
  void Put(std::span<const std::byte> key, std::span<const std::byte> value);

  // Removes the key; returns whether it was present.
  bool Erase(std::span<const std::byte> key);

  size_t size() const { return size_; }
  size_t num_buckets() const { return buckets_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  // 8 bytes, like the paper's slot: a tag for fast rejection, the LRU rank
  // within the bucket, and the index of the out-of-line entry.
  struct Slot {
    uint16_t tag = 0;
    uint8_t lru = 0;   // 0 = most recent among used slots
    uint8_t used = 0;
    uint32_t entry = 0;
  };
  static_assert(sizeof(Slot) == 8, "slot must stay 8 bytes (bucket = cache line)");

  struct Bucket {
    std::array<Slot, kSlotsPerBucket> slots;
  };

  struct Entry {
    std::vector<std::byte> key;
    std::vector<std::byte> value;
  };

  size_t BucketIndex(uint64_t hash) const { return hash & (buckets_.size() - 1); }
  static uint16_t Tag(uint64_t hash) { return static_cast<uint16_t>(hash >> 48); }

  // Moves slot `idx` to LRU rank 0, shifting younger slots down.
  void Touch(Bucket& bucket, int idx);

  int FindSlot(const Bucket& bucket, uint16_t tag, std::span<const std::byte> key) const;

  uint32_t AllocEntry();
  void FreeEntry(uint32_t idx);

  std::vector<Bucket> buckets_;
  std::vector<Entry> entries_;
  std::vector<uint32_t> free_entries_;
  size_t size_ = 0;
  Stats stats_;
};

}  // namespace kv

#endif  // SRC_KV_BUCKET_TABLE_H_
