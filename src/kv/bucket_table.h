// Jakiro's in-memory key-value structure (paper Section 4.1):
// a fixed array of buckets, eight 8-byte slots per bucket (one cache line),
// strict per-bucket LRU eviction, and EREW partitioning — each server
// thread owns one BucketTable instance and nobody else touches it.
//
// Two storage modes. Heap mode (the original): values live in plain
// std::vector entries and GETs copy through the response ring. Pool mode
// (the two-argument ctor): values live in registered slabs drawn from the
// node's shared mem::Pool, so a GET handler can answer zero-copy — GetPinned
// hands out the entry's (rkey, offset, len, epoch) plus a pin that keeps the
// registered bytes alive until the client's fetch is proven consumed. A PUT
// that lands while an entry is pinned copies-on-write into a fresh cell
// (the old span is freed when the last pin drops), never overwriting bytes a
// client may still READ; docs/memory.md spells out the lifetime rules.

#ifndef SRC_KV_BUCKET_TABLE_H_
#define SRC_KV_BUCKET_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/mem/pool.h"
#include "src/rdma/node.h"

namespace explore {
class HistoryRecorder;
}

namespace kv {

class BucketTable {
 public:
  static constexpr int kSlotsPerBucket = 8;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t updates = 0;
    uint64_t evictions = 0;
    uint64_t erases = 0;
    // Pool mode: PUTs that hit a pinned entry and had to allocate a fresh
    // cell instead of overwriting in place (the zero-copy safety path).
    uint64_t cow_puts = 0;
  };

  // A pinned view of a pool-backed entry, for zero-copy GET responses. The
  // coordinates name the value inside the node's registered memory; `pin`
  // keeps the cell (and its span) alive even if a later PUT or eviction
  // replaces the entry — the span returns to the pool when the last pin
  // drops. `epoch` counts overwrites of the key, so a descriptor can be
  // told apart from a reused cell.
  struct PinnedValue {
    uint32_t rkey = 0;
    size_t offset = 0;
    uint32_t len = 0;
    uint32_t epoch = 0;
    std::shared_ptr<const void> pin;
  };

  // `num_buckets` is rounded up to a power of two. Heap mode: values in
  // plain vectors, GetPinned unavailable.
  explicit BucketTable(size_t num_buckets);

  // Pool mode: values live in registered slabs from `node`'s shared
  // mem::Pool (created on first use), enabling GetPinned / zero-copy GET.
  BucketTable(size_t num_buckets, rdma::Node& node);

  BucketTable(const BucketTable&) = delete;
  BucketTable& operator=(const BucketTable&) = delete;
  BucketTable(BucketTable&&) = default;

  // Returns a view of the stored value (valid until the next mutation) and
  // refreshes the entry's LRU position.
  std::optional<std::span<const std::byte>> Get(std::span<const std::byte> key);

  // Pool mode only (throws std::logic_error otherwise): like Get — refreshes
  // LRU, counts hit/miss — but returns the entry's registered coordinates
  // plus a pin instead of a byte view.
  std::optional<PinnedValue> GetPinned(std::span<const std::byte> key);

  // Inserts or overwrites. When the bucket is full, the least recently used
  // slot in that bucket is evicted (strict LRU, paper Section 4.1).
  void Put(std::span<const std::byte> key, std::span<const std::byte> value);

  // Removes the key; returns whether it was present.
  bool Erase(std::span<const std::byte> key);

  // Drops every entry (stats and mode are kept). Used when a backup
  // re-bootstraps: an aborted snapshot transfer leaves partial state that a
  // fresh sweep must not merge with. Pool-mode cells honor the usual
  // deferred-free rule — a pinned cell's span returns to the pool when its
  // last pin drops.
  void Clear();

  // One live (key, value) pair copied out of the table by SnapshotChunk.
  struct SnapshotItem {
    std::vector<std::byte> key;
    std::vector<std::byte> value;
  };

  // Cursor-driven snapshot sweep for backup bootstrap (docs/replication.md):
  // appends every live pair in buckets [cursor, cursor + max_buckets) to
  // `out` and returns the next cursor (num_buckets() = sweep complete).
  // Values are copied, so the chunk stays stable while it is shipped; the
  // sweep does not touch LRU state or hit/miss counters, and mutations
  // between chunks are legal — the replication log replays whatever raced
  // the sweep (snapshot-then-tail, not a frozen table).
  size_t SnapshotChunk(size_t cursor, size_t max_buckets,
                       std::vector<SnapshotItem>* out) const;

  size_t size() const { return size_; }
  size_t num_buckets() const { return buckets_.size(); }
  const Stats& stats() const { return stats_; }
  bool pool_backed() const { return pool_ != nullptr; }

  // TEST ONLY: disables the copy-on-write pin check, modelling a buggy store
  // that overwrites a pinned entry in place. Exists so the race-detector
  // corpus can prove the checker catches exactly that bug
  // (tests/check/ zero-copy reuse case); never set in production paths.
  void set_unsafe_inplace_put(bool unsafe) { unsafe_inplace_put_ = unsafe; }

  // Attaches (or detaches, with nullptr) a history recorder: Get/GetPinned/
  // Put/Erase report store-side apply events (explore::ApplyEvent) used to
  // diagnose linearizability failures. The recorder must outlive this table
  // or be detached first.
  void set_history_recorder(explore::HistoryRecorder* recorder) { recorder_ = recorder; }

 private:
  // 8 bytes, like the paper's slot: a tag for fast rejection, the LRU rank
  // within the bucket, and the index of the out-of-line entry.
  struct Slot {
    uint16_t tag = 0;
    uint8_t lru = 0;   // 0 = most recent among used slots
    uint8_t used = 0;
    uint32_t entry = 0;
  };
  static_assert(sizeof(Slot) == 8, "slot must stay 8 bytes (bucket = cache line)");

  struct Bucket {
    std::array<Slot, kSlotsPerBucket> slots;
  };

  // Pool mode value storage: one registered span plus the reuse epoch. The
  // cell is shared between the table and any outstanding zero-copy pins; the
  // dtor returns the span to the pool, so replaced cells are freed exactly
  // when the last pin drops (deferred free, never while a client may READ).
  struct ValueCell {
    std::shared_ptr<mem::Pool> pool;
    mem::Span span;
    uint32_t len = 0;    // live bytes (<= span.size after an in-place shrink)
    uint32_t epoch = 0;  // overwrite count for this key
    ~ValueCell() {
      if (span.valid()) {
        pool->Free(span);
      }
    }
    std::span<std::byte> bytes() const { return span.mr->bytes().subspan(span.offset, len); }
  };

  struct Entry {
    std::vector<std::byte> key;
    std::vector<std::byte> value;            // heap mode
    std::shared_ptr<ValueCell> cell;         // pool mode
  };

  size_t BucketIndex(uint64_t hash) const { return hash & (buckets_.size() - 1); }
  static uint16_t Tag(uint64_t hash) { return static_cast<uint16_t>(hash >> 48); }

  // Moves slot `idx` to LRU rank 0, shifting younger slots down.
  void Touch(Bucket& bucket, int idx);

  int FindSlot(const Bucket& bucket, uint16_t tag, std::span<const std::byte> key) const;

  uint32_t AllocEntry();
  void FreeEntry(uint32_t idx);

  // Pool mode: allocates a cell, copies `value` in, and reports the CPU
  // store to the fabric's race checker (the bytes stay "dirty" until a
  // zero-copy send republishes them).
  std::shared_ptr<ValueCell> MakeCell(std::span<const std::byte> value, uint32_t epoch);
  void NoteCpuStore(const ValueCell& cell);

  std::vector<Bucket> buckets_;
  std::vector<Entry> entries_;
  std::vector<uint32_t> free_entries_;
  size_t size_ = 0;
  Stats stats_;
  std::shared_ptr<mem::Pool> pool_;  // null = heap mode
  rdma::Node* node_ = nullptr;
  bool unsafe_inplace_put_ = false;
  explore::HistoryRecorder* recorder_ = nullptr;
};

}  // namespace kv

#endif  // SRC_KV_BUCKET_TABLE_H_
