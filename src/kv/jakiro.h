// Jakiro: the RFP-based in-memory key-value store (paper Section 4.1).
//
// Server: one BucketTable partition per server thread (EREW — no sharing,
// no locks), GET/PUT/DELETE exported as RPC handlers over RFP channels.
// Client: one channel per server thread; requests route to the partition
// that owns the key (hash % threads), so a server thread only ever touches
// its own data.
//
// The ServerReply baseline of the paper ("extended from Jakiro, differs in
// that the server thread directly sends the result back") is this same
// store with the channels forced into server-reply mode — see
// ServerReplyConfig(). "Jakiro w/o switch" (Fig 14) forces remote-fetch.

#ifndef SRC_KV_JAKIRO_H_
#define SRC_KV_JAKIRO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "src/conn/connector.h"
#include "src/kv/bucket_table.h"
#include "src/rdma/fabric.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/stats.h"

namespace explore {
class HistoryRecorder;
}

namespace kv {

class ConfigBuilder;

struct JakiroConfig {
  int server_threads = 6;
  size_t buckets_per_partition = 1 << 15;  // x8 slots each
  // CPU cost of one hash-table operation (lookup / insert+LRU update).
  sim::Time get_process_ns = 150;
  sim::Time put_process_ns = 250;
  // Zero-copy GET (docs/memory.md): partitions store values in registered
  // slabs from the node's shared mem::Pool, and the GET handler answers with
  // an indirect descriptor — the client READs the value straight out of the
  // store-owned entry, so it never crosses the server's CPU. PUTs that race
  // a pinned entry copy-on-write (BucketTable::Stats::cow_puts).
  bool zero_copy_get = false;
  rfp::RfpOptions channel_options;
  rfp::ServerOptions server_options;

  // The one entry point for configuring Jakiro variants — presets compose
  // instead of nesting free-function calls:
  //
  //   kv::JakiroConfig cfg =
  //       kv::JakiroConfig::Build().FaultTolerant().Pipelined(8).ZeroCopy();
  //
  // Mutually exclusive presets (ServerReply vs NoSwitch force opposite
  // transport paradigms) are rejected with std::invalid_argument at build
  // time rather than silently last-writer-wins.
  static ConfigBuilder Build();
  static ConfigBuilder Build(JakiroConfig base);
};

// Chainable preset builder, obtained from JakiroConfig::Build(). Each preset
// mutates the config in place and returns the builder; the result converts
// implicitly to JakiroConfig (or call Done() to be explicit).
class ConfigBuilder {
 public:
  explicit ConfigBuilder(JakiroConfig base = {}) : config_(std::move(base)) {}

  // The paper's ServerReply system: identical store, reply-only transport.
  ConfigBuilder& ServerReply();
  // "Jakiro w/o switch": remote fetching with the hybrid fallback disabled.
  ConfigBuilder& NoSwitch();
  // Channel recovery machinery: fetch deadline with bounded backoff,
  // response checksums with reissue-on-corrupt, transparent RC reconnection.
  // Throughput-neutral on a healthy fabric (docs/fault_injection.md).
  ConfigBuilder& FaultTolerant();
  // Server-side admission control with deadline shedding plus the client
  // circuit breaker and a per-call deadline (docs/overload.md).
  ConfigBuilder& OverloadProtected();
  // Multi-slot channels with doorbell-batched posting (docs/pipelining.md).
  ConfigBuilder& Pipelined(int window = 8);
  // Pool-backed partitions plus indirect GET responses (docs/memory.md).
  ConfigBuilder& ZeroCopy();

  JakiroConfig Done() const { return config_; }
  // Implicit by design: Build() chains read as the config they produce.
  operator JakiroConfig() const { return config_; }  // NOLINT

 private:
  // Rejects ServerReply + NoSwitch composition (conflicting force modes).
  void ForceParadigm(rfp::RfpOptions::ForceMode mode, const char* preset);

  JakiroConfig config_;
  bool paradigm_forced_ = false;
};

inline ConfigBuilder JakiroConfig::Build() { return ConfigBuilder(JakiroConfig{}); }

inline ConfigBuilder JakiroConfig::Build(JakiroConfig base) {
  return ConfigBuilder(std::move(base));
}

// Deprecated preset wrappers, kept one release for out-of-tree callers.
// Each is exactly Build(base).<Preset>().

[[deprecated("use kv::JakiroConfig::Build().ServerReply()")]]
JakiroConfig ServerReplyConfig(JakiroConfig base = {});

[[deprecated("use kv::JakiroConfig::Build().NoSwitch()")]]
JakiroConfig NoSwitchConfig(JakiroConfig base = {});

[[deprecated("use kv::JakiroConfig::Build().FaultTolerant()")]]
JakiroConfig FaultTolerantConfig(JakiroConfig base = {});

[[deprecated("use kv::JakiroConfig::Build().OverloadProtected()")]]
JakiroConfig OverloadProtectedConfig(JakiroConfig base = {});

[[deprecated("use kv::JakiroConfig::Build().Pipelined(window)")]]
JakiroConfig PipelinedConfig(JakiroConfig base = {}, int window = 8);

[[deprecated("use kv::JakiroConfig::Build().ZeroCopy()")]]
JakiroConfig ZeroCopyConfig(JakiroConfig base = {});

class JakiroServer {
 public:
  JakiroServer(rdma::Fabric& fabric, rdma::Node& node, JakiroConfig config = {});

  // Flushes aggregated partition-table stats into the default metrics
  // registry, labeled {store: "jakiro", node}.
  ~JakiroServer();

  JakiroServer(const JakiroServer&) = delete;
  JakiroServer& operator=(const JakiroServer&) = delete;

  const JakiroConfig& config() const { return config_; }
  rfp::RpcServer& rpc() { return rpc_; }
  rdma::Node& node() { return rpc_.node(); }
  int num_threads() const { return rpc_.num_threads(); }
  BucketTable& partition(int thread) { return *partitions_[static_cast<size_t>(thread)]; }

  // Which server thread owns `key` (clients route with the same function).
  int OwnerThread(std::span<const std::byte> key) const;

  void Start() { rpc_.Start(); }
  void Stop() { rpc_.Stop(); }

  // Replication hook (docs/replication.md): when set, every PUT/DELETE
  // handler co_awaits it after the mutation applied to the local partition
  // and before the reply publishes — the suspension point where a
  // synchronous replicator ships the op and waits for the backup's ack.
  // `rpc_id` is kRpcPut or kRpcDelete; `value` is empty for deletes. The
  // spans point into the dispatch buffer and are valid only until the hook
  // returns. A throwing hook fails the request (the client sees no reply
  // and recovers via its own machinery), so an acked PUT is always a
  // replicated PUT in sync mode.
  using ReplHook = std::function<sim::Task<void>(int thread, uint16_t rpc_id,
                                                 std::span<const std::byte> key,
                                                 std::span<const std::byte> value)>;
  void set_repl_hook(ReplHook hook) { repl_hook_ = std::move(hook); }

 private:
  void RegisterHandlers();

  JakiroConfig config_;
  rfp::RpcServer rpc_;
  std::vector<std::unique_ptr<BucketTable>> partitions_;
  ReplHook repl_hook_;
};

class JakiroClient {
 public:
  // Opens one channel per server thread from `client_node` through the
  // process-wide direct connector (dedicated server-owned channels — the
  // legacy bringup).
  JakiroClient(JakiroServer& server, rdma::Node& client_node);

  // Same, but resolving every endpoint through `connector` — a cached
  // connector gives this client LRU-managed channels that survive eviction
  // via transparent re-establish (docs/connections.md). The connector must
  // outlive the client.
  JakiroClient(JakiroServer& server, rdma::Node& client_node, conn::Connector& connector);

  // GET: returns the value size, or nullopt when the key is absent.
  sim::Task<std::optional<size_t>> Get(std::span<const std::byte> key,
                                       std::span<std::byte> value_out);

  sim::Task<bool> Put(std::span<const std::byte> key, std::span<const std::byte> value);

  sim::Task<bool> Delete(std::span<const std::byte> key);

  // Batched GET (extension): groups the keys by owning server thread, issues
  // one RPC per owner, and fills `values_out[i]` with the i-th key's value
  // size (nullopt = miss). Amortizes the per-call round trip; note that the
  // batched response grows with the batch, interacting with the fetch-size
  // parameter exactly as Eq. 2 predicts.
  sim::Task<void> MultiGet(std::span<const std::span<const std::byte>> keys,
                           std::span<std::byte> value_arena,
                           std::span<std::optional<std::span<const std::byte>>> values_out);

  uint64_t operations() const { return operations_; }

  // Attaches (or detaches, with nullptr) a history recorder: every Get/Put/
  // Delete/MultiGet records its invocation and response so the explorer's
  // linearizability oracle can judge the run (src/explore/history.h). Calls
  // that never complete — deadline, crash, strict-mode throw — stay pending
  // in the history, which is exactly what the oracle expects. The recorder
  // must outlive this client or be detached first.
  void set_history_recorder(explore::HistoryRecorder* recorder) { recorder_ = recorder; }

  // Merged latency distribution across the per-thread stubs.
  sim::Histogram MergedLatency() const;

  // Aggregated channel statistics (retries, round trips, mode switches).
  rfp::Channel::Stats MergedChannelStats() const;

  // Aggregate client CPU busy time across this client's channels.
  sim::Time TotalBusy() const;

  rfp::Channel* channel(int thread) { return endpoints_[static_cast<size_t>(thread)].channel(); }
  int num_channels() const { return static_cast<int>(endpoints_.size()); }

 private:
  // MultiGet over pipelined channels (RfpOptions::window > 1): each owner's
  // sub-batch is split into up to `window` chunks submitted back to back.
  sim::Task<void> MultiGetPipelined(std::span<const std::span<const std::byte>> keys,
                                    const std::vector<std::vector<size_t>>& by_owner,
                                    std::span<std::byte> value_arena,
                                    std::span<std::optional<std::span<const std::byte>>> values_out);

  JakiroServer& server_;
  // One leased channel + stub per server thread, from the constructor's
  // Connector (lease release, not this client, decides channel lifetime).
  std::vector<conn::ChannelLease> endpoints_;
  std::vector<std::byte> scratch_;
  uint64_t operations_ = 0;
  explore::HistoryRecorder* recorder_ = nullptr;
};

}  // namespace kv

#endif  // SRC_KV_JAKIRO_H_
