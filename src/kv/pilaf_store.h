// Pilaf-style server-bypass key-value store (Mitchell et al., ATC'13), the
// paper's server-bypass comparison point (Sections 2.3 and 4.3).
//
// GETs bypass the server CPU entirely: the client READs candidate Cuckoo
// slots one-sidedly, follows the winning slot's pointer with a second READ
// into the extent log, and validates CRC64 — retrying the whole lookup when
// a concurrent server-side PUT tore the entry. PUTs go through RPC in
// server-reply mode, and the server deliberately updates the extent before
// publishing the slot, holding the torn window open for a fraction of the
// PUT's process time (exactly the race Pilaf's CRCs exist to catch).

#ifndef SRC_KV_PILAF_STORE_H_
#define SRC_KV_PILAF_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/kv/cuckoo.h"
#include "src/rdma/fabric.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/resource.h"
#include "src/sim/stats.h"

namespace kv {

struct PilafConfig {
  uint64_t num_slots = 1 << 20;       // sized so benches stay <= ~75% full
  size_t extent_bytes = 256u << 20;   // bump-allocated record log
  // Server-side PUT cost: cuckoo maintenance plus a CRC64 pass over the
  // record (Pilaf computes checksums on every update).
  sim::Time put_process_ns = 1500;
  // Fraction of put_process_ns during which the extent is newer than the
  // published slot (the CRC race window).
  double race_window_fraction = 0.6;
  int max_get_retries = 64;
  int server_threads = 2;             // PUT service only; GETs never hit CPU
  rfp::RfpOptions channel_options;    // forced to server-reply in the ctor
  rfp::ServerOptions server_options;
  uint64_t seed = 0x50494c41;         // "PILA"
};

class PilafServer {
 public:
  PilafServer(rdma::Fabric& fabric, rdma::Node& node, PilafConfig config = {});

  PilafServer(const PilafServer&) = delete;
  PilafServer& operator=(const PilafServer&) = delete;

  const PilafConfig& config() const { return config_; }
  CuckooTable& table() { return table_; }
  CuckooTable::View view() const { return table_.view(); }
  rfp::RpcServer& rpc() { return rpc_; }
  rdma::Node& node() { return rpc_.node(); }

  void Start() { rpc_.Start(); }
  void Stop() { rpc_.Stop(); }

  // Loads a key-value pair without simulated time passing (test/bench
  // pre-fill). Returns false when the table is full.
  bool Preload(std::span<const std::byte> key, std::span<const std::byte> value) {
    return table_.Put(key, value);
  }

 private:
  void RegisterHandlers();

  PilafConfig config_;
  rfp::RpcServer rpc_;
  CuckooTable table_;
  sim::Mutex put_lock_;  // Cuckoo mutation is serialized on the server
};

class PilafClient {
 public:
  struct Stats {
    uint64_t gets = 0;
    uint64_t puts = 0;
    uint64_t slot_reads = 0;    // one-sided READs of metadata slots
    uint64_t extent_reads = 0;  // one-sided READs of extent records
    uint64_t crc_failures = 0;  // torn entries detected and retried
    uint64_t hash_misses = 0;   // probed slots that did not hold the key
    uint64_t retries = 0;       // whole-lookup retries
    uint64_t not_found = 0;

    double ReadsPerGet() const {
      return gets == 0 ? 0.0
                       : static_cast<double>(slot_reads + extent_reads) / static_cast<double>(gets);
    }
  };

  // `put_thread` selects which server thread serves this client's PUTs.
  PilafClient(rdma::Fabric& fabric, rdma::Node& client_node, PilafServer& server,
              int put_thread);

  // Flushes Stats and the GET latency histogram into the default metrics
  // registry ({store: "pilaf", client}).
  ~PilafClient();

  // One-sided GET. Returns the value size, or nullopt when absent.
  sim::Task<std::optional<size_t>> Get(std::span<const std::byte> key,
                                       std::span<std::byte> value_out);

  // RPC PUT (server-reply, as in Pilaf).
  sim::Task<bool> Put(std::span<const std::byte> key, std::span<const std::byte> value);

  const Stats& stats() const { return stats_; }
  const sim::Histogram& get_latency() const { return get_latency_; }

 private:
  std::span<std::byte> read_buf() const { return read_span_.bytes(); }

  PilafServer& server_;
  CuckooTable::View view_;
  rdma::QueuePair* qp_;  // client endpoint for one-sided READs
  std::shared_ptr<mem::Pool> pool_;
  mem::Span read_span_;  // pooled landing area for slot + extent READs
  std::unique_ptr<rfp::RpcClient> put_stub_;
  std::vector<std::byte> scratch_;
  Stats stats_;
  sim::Histogram get_latency_;
};

}  // namespace kv

#endif  // SRC_KV_PILAF_STORE_H_
