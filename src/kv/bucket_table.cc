#include "src/kv/bucket_table.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "src/kv/common.h"

namespace kv {

BucketTable::BucketTable(size_t num_buckets) {
  if (num_buckets == 0) {
    throw std::invalid_argument("bucket table: need at least one bucket");
  }
  buckets_.resize(std::bit_ceil(num_buckets));
}

void BucketTable::Touch(Bucket& bucket, int idx) {
  const uint8_t old_rank = bucket.slots[static_cast<size_t>(idx)].lru;
  for (Slot& slot : bucket.slots) {
    if (slot.used != 0 && slot.lru < old_rank) {
      ++slot.lru;
    }
  }
  bucket.slots[static_cast<size_t>(idx)].lru = 0;
}

int BucketTable::FindSlot(const Bucket& bucket, uint16_t tag,
                          std::span<const std::byte> key) const {
  for (int i = 0; i < kSlotsPerBucket; ++i) {
    const Slot& slot = bucket.slots[static_cast<size_t>(i)];
    if (slot.used == 0 || slot.tag != tag) {
      continue;
    }
    const Entry& entry = entries_[slot.entry];
    if (entry.key.size() == key.size() &&
        std::equal(entry.key.begin(), entry.key.end(), key.begin())) {
      return i;
    }
  }
  return -1;
}

uint32_t BucketTable::AllocEntry() {
  if (!free_entries_.empty()) {
    const uint32_t idx = free_entries_.back();
    free_entries_.pop_back();
    return idx;
  }
  entries_.emplace_back();
  return static_cast<uint32_t>(entries_.size() - 1);
}

void BucketTable::FreeEntry(uint32_t idx) {
  entries_[idx].key.clear();
  entries_[idx].value.clear();
  free_entries_.push_back(idx);
}

std::optional<std::span<const std::byte>> BucketTable::Get(std::span<const std::byte> key) {
  const uint64_t hash = HashBytes(key);
  Bucket& bucket = buckets_[BucketIndex(hash)];
  const int idx = FindSlot(bucket, Tag(hash), key);
  if (idx < 0) {
    ++stats_.misses;
    return std::nullopt;
  }
  Touch(bucket, idx);
  ++stats_.hits;
  return std::span<const std::byte>(entries_[bucket.slots[static_cast<size_t>(idx)].entry].value);
}

void BucketTable::Put(std::span<const std::byte> key, std::span<const std::byte> value) {
  const uint64_t hash = HashBytes(key);
  Bucket& bucket = buckets_[BucketIndex(hash)];
  const uint16_t tag = Tag(hash);

  int idx = FindSlot(bucket, tag, key);
  if (idx >= 0) {
    // Overwrite in place.
    Entry& entry = entries_[bucket.slots[static_cast<size_t>(idx)].entry];
    entry.value.assign(value.begin(), value.end());
    Touch(bucket, idx);
    ++stats_.updates;
    return;
  }

  // Free slot, or strict-LRU eviction within the bucket.
  int victim = -1;
  for (int i = 0; i < kSlotsPerBucket; ++i) {
    if (bucket.slots[static_cast<size_t>(i)].used == 0) {
      victim = i;
      break;
    }
  }
  if (victim < 0) {
    uint8_t oldest = 0;
    for (int i = 0; i < kSlotsPerBucket; ++i) {
      if (bucket.slots[static_cast<size_t>(i)].lru >= oldest) {
        oldest = bucket.slots[static_cast<size_t>(i)].lru;
        victim = i;
      }
    }
    FreeEntry(bucket.slots[static_cast<size_t>(victim)].entry);
    --size_;
    ++stats_.evictions;
  }

  Slot& slot = bucket.slots[static_cast<size_t>(victim)];
  const uint32_t entry_idx = AllocEntry();
  entries_[entry_idx].key.assign(key.begin(), key.end());
  entries_[entry_idx].value.assign(value.begin(), value.end());
  const bool was_used = slot.used != 0;
  slot.tag = tag;
  slot.entry = entry_idx;
  slot.used = 1;
  if (!was_used) {
    // Fresh slot starts as oldest; Touch below promotes it.
    slot.lru = kSlotsPerBucket - 1;
  }
  Touch(bucket, victim);
  ++size_;
  ++stats_.inserts;
}

bool BucketTable::Erase(std::span<const std::byte> key) {
  const uint64_t hash = HashBytes(key);
  Bucket& bucket = buckets_[BucketIndex(hash)];
  const int idx = FindSlot(bucket, Tag(hash), key);
  if (idx < 0) {
    return false;
  }
  Slot& slot = bucket.slots[static_cast<size_t>(idx)];
  FreeEntry(slot.entry);
  // Keep remaining ranks dense: demote nothing, just age out the hole.
  const uint8_t gone_rank = slot.lru;
  slot = Slot{};
  for (Slot& s : bucket.slots) {
    if (s.used != 0 && s.lru > gone_rank) {
      --s.lru;
    }
  }
  --size_;
  ++stats_.erases;
  return true;
}

}  // namespace kv
